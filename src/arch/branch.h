// Branch predictor simulators: bimodal, gshare, and a tournament chooser.
//
// The paper attributes the ThunderX's losses on bt/ep/mg/sp to branch
// mispredictions (Fig 8); we model the microarchitectural difference as a
// small bimodal predictor (short-pipeline design per the Octeon lineage)
// versus the A57's history-based predictor, and let the miss rates emerge
// from simulation over the workloads' branch streams.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace soc::arch {

struct BranchStats {
  std::uint64_t branches = 0;
  std::uint64_t mispredictions = 0;

  double misprediction_ratio() const {
    return branches > 0 ? static_cast<double>(mispredictions) /
                              static_cast<double>(branches)
                        : 0.0;
  }
};

/// Common predictor interface: predict, then update with the outcome.
class BranchPredictor {
 public:
  virtual ~BranchPredictor() = default;

  /// Predicted direction for the branch at `pc`.
  virtual bool predict(std::uint64_t pc) const = 0;

  /// Trains with the actual outcome and updates the stats.
  void record(std::uint64_t pc, bool taken);

  const BranchStats& stats() const { return stats_; }
  void reset_stats() { stats_ = BranchStats{}; }

 protected:
  virtual void update(std::uint64_t pc, bool taken) = 0;

 private:
  BranchStats stats_;
};

/// Table of 2-bit saturating counters indexed by pc.
class BimodalPredictor : public BranchPredictor {
 public:
  explicit BimodalPredictor(std::size_t entries);
  bool predict(std::uint64_t pc) const override;

 protected:
  void update(std::uint64_t pc, bool taken) override;

 private:
  std::size_t index(std::uint64_t pc) const;
  std::vector<std::uint8_t> table_;
};

/// Global-history predictor: pc XOR history indexes the counter table.
class GsharePredictor : public BranchPredictor {
 public:
  GsharePredictor(std::size_t entries, int history_bits);
  bool predict(std::uint64_t pc) const override;

 protected:
  void update(std::uint64_t pc, bool taken) override;

 private:
  std::size_t index(std::uint64_t pc) const;
  std::vector<std::uint8_t> table_;
  std::uint64_t history_ = 0;
  std::uint64_t history_mask_;
};

/// Tournament: a chooser table arbitrates bimodal vs. gshare per branch.
class TournamentPredictor : public BranchPredictor {
 public:
  TournamentPredictor(std::size_t entries, int history_bits);
  bool predict(std::uint64_t pc) const override;

 protected:
  void update(std::uint64_t pc, bool taken) override;

 private:
  std::size_t chooser_index(std::uint64_t pc) const;
  BimodalPredictor bimodal_;
  GsharePredictor gshare_;
  std::vector<std::uint8_t> chooser_;  ///< ≥2 favors gshare.
};

/// Predictor families used by machine configs.
enum class PredictorKind { kBimodal, kGshare, kTournament };

/// Factory keyed by machine configuration.
std::unique_ptr<BranchPredictor> make_predictor(PredictorKind kind,
                                                std::size_t entries,
                                                int history_bits);

}  // namespace soc::arch
