// Deterministic synthetic instruction streams.
//
// Expands a WorkloadProfile into memory-address and branch-outcome events.
// The same profile always produces the same streams (seeded by the profile
// name), so characterization results are reproducible and comparable
// across machine models — exactly what the paper's cross-system PMU
// methodology requires.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/profile.h"
#include "common/rng.h"

namespace soc::arch {

struct MemoryAccess {
  std::uint64_t address = 0;
  bool is_store = false;
};

struct BranchEvent {
  std::uint64_t pc = 0;
  bool taken = false;
};

/// Generates `count` memory accesses following the profile's locality mix.
std::vector<MemoryAccess> generate_memory_stream(const WorkloadProfile& profile,
                                                 std::size_t count);

/// Generates `count` branch events following the profile's branch mix.
std::vector<BranchEvent> generate_branch_stream(const WorkloadProfile& profile,
                                                std::size_t count);

}  // namespace soc::arch
