// Analytic CPU core timing model over simulated cache/predictor outcomes.
//
// characterize() expands a WorkloadProfile into deterministic streams,
// drives them through the machine's branch predictor and cache hierarchy,
// and composes a CPI stack from the resulting miss rates.  The result is
// a per-instruction cost and a per-kilo-instruction PMU counter vector —
// the inputs to op timing (cluster/) and to the Table VI / Fig 8 analysis.
#pragma once

#include <cstddef>
#include <string>

#include "arch/branch.h"
#include "arch/cache.h"
#include "arch/pmu.h"
#include "arch/profile.h"
#include "arch/tlb.h"

namespace soc::arch {

/// One CPU core of a concrete machine.
struct CoreConfig {
  std::string name;
  double frequency_hz = 1.73e9;
  double issue_width = 3.0;          ///< Sustained issue rate (IPC ceiling).

  PredictorKind predictor = PredictorKind::kTournament;
  std::size_t predictor_entries = 4096;
  int predictor_history_bits = 12;
  double mispredict_penalty = 15.0;  ///< Pipeline-flush cycles.

  CacheConfig l1d{32 * kKiB, 2, 64};
  CacheConfig l2{512 * kKiB, 16, 64};  ///< This core's effective L2 share.
  /// Extra capacity pressure from co-running threads: the effective L2 is
  /// divided by this (≥ 1).  Models the ThunderX's shared-L2 contention.
  double l2_contention = 1.0;

  double l2_hit_latency = 20.0;      ///< Cycles, L1-miss/L2-hit.
  double dram_latency = 180.0;       ///< Cycles, L2 miss to DRAM.
  double memory_level_parallelism = 2.5;  ///< Overlap divisor for stalls.
  double fp_extra_cpi = 0.15;        ///< Extra cycles per FP instruction.

  TlbConfig dtlb{512, 4, 4 * kKiB};  ///< Unified second-level data TLB.
  double tlb_walk_penalty = 28.0;    ///< Cycles per page walk (overlapped
                                     ///< with the MLP divisor like misses).

  bool operator==(const CoreConfig&) const = default;
};

/// Outcome of running a profile's streams through a core's structures.
struct Characterization {
  double cpi = 1.0;
  double branch_misprediction_ratio = 0.0;
  double l1d_miss_ratio = 0.0;   ///< Per L1 access.
  double l2d_miss_ratio = 0.0;   ///< Per L2 access.
  double dtlb_miss_ratio = 0.0;  ///< Per memory access.
  CounterSet per_instruction;    ///< Raw PMU events per retired instruction.
  double dram_bytes_per_instruction = 0.0;

  /// Wall-clock seconds to retire `instructions` on this core.
  double seconds_for(double instructions, double frequency_hz) const {
    return instructions * cpi / frequency_hz;
  }
};

/// Characterizes `profile` on `core` using `sample_instructions` synthetic
/// instructions (the streams scale down proportionally to the mix).
Characterization characterize(const CoreConfig& core,
                              const WorkloadProfile& profile,
                              std::size_t sample_instructions = 1'000'000);

}  // namespace soc::arch
