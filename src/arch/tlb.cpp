#include "arch/tlb.h"

#include <bit>

#include "common/error.h"

namespace soc::arch {

Tlb::Tlb(TlbConfig config) : config_(config) {
  SOC_CHECK(config_.entries > 0 && config_.associativity > 0,
            "invalid TLB config");
  SOC_CHECK(config_.entries % config_.associativity == 0,
            "entries must divide into ways");
  SOC_CHECK(std::has_single_bit(static_cast<std::uint64_t>(config_.page_size)),
            "page size must be a power of two");
  sets_ = config_.entries / config_.associativity;
  SOC_CHECK(std::has_single_bit(static_cast<unsigned>(sets_)),
            "set count must be a power of two");
  page_shift_ =
      std::countr_zero(static_cast<std::uint64_t>(config_.page_size));
  entries_.assign(static_cast<std::size_t>(config_.entries), Entry{});
}

bool Tlb::access(std::uint64_t address) {
  ++stats_.accesses;
  const std::uint64_t vpn = address >> page_shift_;
  const std::size_t set =
      static_cast<std::size_t>(vpn & static_cast<std::uint64_t>(sets_ - 1));
  Entry* base = &entries_[set * static_cast<std::size_t>(config_.associativity)];

  Entry* victim = base;
  for (int w = 0; w < config_.associativity; ++w) {
    Entry& e = base[w];
    if (e.valid && e.vpn == vpn) {
      e.lru = ++tick_;
      return true;
    }
    if (!e.valid) {
      victim = &e;
    } else if (victim->valid && e.lru < victim->lru) {
      victim = &e;
    }
  }
  ++stats_.misses;
  victim->valid = true;
  victim->vpn = vpn;
  victim->lru = ++tick_;
  return false;
}

}  // namespace soc::arch
