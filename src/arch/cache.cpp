#include "arch/cache.h"

#include <bit>

#include "common/error.h"

namespace soc::arch {

int CacheConfig::sets() const {
  SOC_CHECK(size > 0 && associativity > 0 && line_size > 0,
            "invalid cache config");
  const Bytes per_way = size / associativity;
  SOC_CHECK(per_way % line_size == 0, "size not divisible into lines");
  return static_cast<int>(per_way / line_size);
}

Cache::Cache(CacheConfig config) : config_(config) {
  const int sets = config_.sets();
  SOC_CHECK(std::has_single_bit(static_cast<std::uint64_t>(sets)),
            "set count must be a power of two");
  SOC_CHECK(std::has_single_bit(static_cast<std::uint64_t>(config_.line_size)),
            "line size must be a power of two");
  line_shift_ = std::countr_zero(static_cast<std::uint64_t>(config_.line_size));
  ways_.assign(static_cast<std::size_t>(sets) *
                   static_cast<std::size_t>(config_.associativity),
               Way{});
}

std::size_t Cache::set_index(std::uint64_t address) const {
  const std::uint64_t line = address >> line_shift_;
  return static_cast<std::size_t>(line &
                                  (static_cast<std::uint64_t>(config_.sets()) - 1));
}

std::uint64_t Cache::tag_of(std::uint64_t address) const {
  return address >> line_shift_;
}

void Cache::allocate(std::uint64_t address) {
  const std::size_t set = set_index(address);
  const std::uint64_t tag = tag_of(address);
  Way* base = &ways_[set * static_cast<std::size_t>(config_.associativity)];
  Way* victim = base;
  for (int w = 0; w < config_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) return;  // already resident
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = ++tick_;
}

bool Cache::access(std::uint64_t address) {
  ++stats_.accesses;
  const std::size_t set = set_index(address);
  const std::uint64_t tag = tag_of(address);
  Way* base = &ways_[set * static_cast<std::size_t>(config_.associativity)];

  Way* victim = base;
  for (int w = 0; w < config_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = ++tick_;
      return true;
    }
    if (!way.valid) {
      victim = &way;  // prefer an invalid way as victim
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  ++stats_.misses;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = ++tick_;
  // Next-line prefetch: pull the following lines in after a demand miss.
  for (int n = 1; n <= config_.prefetch_lines; ++n) {
    allocate(address + static_cast<std::uint64_t>(n) *
                           static_cast<std::uint64_t>(config_.line_size));
    ++stats_.prefetches;
  }
  return false;
}

bool Cache::probe(std::uint64_t address) const {
  const std::size_t set = set_index(address);
  const std::uint64_t tag = tag_of(address);
  const Way* base = &ways_[set * static_cast<std::size_t>(config_.associativity)];
  for (int w = 0; w < config_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

CacheHierarchy::CacheHierarchy(CacheConfig l1, CacheConfig l2)
    : l1_(l1), l2_(l2) {}

int CacheHierarchy::access(std::uint64_t address) {
  if (l1_.access(address)) return 1;
  if (l2_.access(address)) return 2;
  return 3;
}

void CacheHierarchy::reset_stats() {
  l1_.reset_stats();
  l2_.reset_stats();
}

}  // namespace soc::arch
