// ARMv8 PMUv3-style performance counter set.
//
// The paper's cross-system analysis deliberately restricts itself to the
// twelve architecturally-defined PMUv3 events available on both the
// Cortex-A57 and the ThunderX (footnote 3), plus derived metrics (miss
// ratios, IPC).  We mirror that: CounterSet carries the raw events; the
// derived metrics are computed on demand.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace soc::arch {

/// Raw PMUv3-style events collected by the core model.
enum class PmuEvent : std::uint8_t {
  kCpuCycles = 0,
  kInstRetired,
  kInstSpec,        ///< Speculatively executed instructions.
  kBrRetired,
  kBrMisPred,
  kL1dCache,        ///< L1 data cache accesses.
  kL1dCacheRefill,  ///< L1 data cache misses.
  kL2dCache,        ///< L2 cache accesses.
  kL2dCacheRefill,  ///< L2 cache misses.
  kMemAccess,       ///< Memory accesses issued.
  kStallFrontend,   ///< Cycles stalled for instruction supply.
  kStallBackend,    ///< Cycles stalled for data supply.
  kCount,
};

inline constexpr std::size_t kPmuEventCount =
    static_cast<std::size_t>(PmuEvent::kCount);

/// Human-readable PMUv3-style event name.
const char* pmu_event_name(PmuEvent e);

/// A sampled set of the twelve raw counters.
class CounterSet {
 public:
  double& operator[](PmuEvent e) {
    return values_[static_cast<std::size_t>(e)];
  }
  double operator[](PmuEvent e) const {
    return values_[static_cast<std::size_t>(e)];
  }

  CounterSet& operator+=(const CounterSet& rhs);
  CounterSet scaled(double s) const;

  // -- Derived metrics (the paper's "additional metrics") --
  double ipc() const;
  double branch_misprediction_ratio() const;
  double l1d_miss_ratio() const;
  /// The paper's LD_MISS_RATIO: L2 refill per L2 access.
  double l2d_miss_ratio() const;
  double mpki_branch() const;  ///< Branch mispredicts per kilo-instruction.
  double mpki_l2() const;      ///< L2 misses per kilo-instruction.

  std::string str() const;

 private:
  std::array<double, kPmuEventCount> values_{};
};

}  // namespace soc::arch
