// Microarchitectural workload profiles.
//
// Each benchmark's CPU behaviour is summarized by a compact descriptor of
// its instruction mix, memory locality, and branch behaviour.  The stream
// generators expand a profile into deterministic address/branch streams;
// the core model runs those streams through real cache/predictor
// simulators, so machine-dependent miss rates *emerge* from configuration
// instead of being hard-coded per (machine, benchmark) pair.
#pragma once

#include <string>

#include "common/units.h"

namespace soc::arch {

struct WorkloadProfile {
  std::string name;

  // -- Instruction mix (fractions of retired instructions; the remainder
  //    is integer/move work). --
  double load_fraction = 0.25;
  double store_fraction = 0.10;
  double branch_fraction = 0.15;
  double fp_fraction = 0.20;

  // -- Memory locality --
  Bytes working_set = 8 * kMiB;   ///< Size of the streamed/hot data region.
  Bytes hot_set = 16 * kKiB;      ///< Small reused region (stack, scalars).
  double hot_fraction = 0.55;     ///< Accesses hitting the hot region.
  double stream_fraction = 0.35;  ///< Sequential/strided accesses.
  Bytes stream_stride = 8;        ///< Stride of the streaming portion.
  // Remainder of accesses are uniform-random within the working set.

  // -- Branch behaviour --
  int static_branches = 256;      ///< Distinct branch sites.
  double loop_fraction = 0.70;    ///< Strongly biased loop back-edges.
  double loop_bias = 0.97;        ///< Taken probability of loop branches.
  double pattern_fraction = 0.20; ///< Periodic, history-predictable sites.
  int pattern_period = 6;         ///< Period of patterned branches.
  double random_bias = 0.5;       ///< Bias of the remaining data-dependent
                                  ///< branches (unpredictable around 0.5).

  /// Deterministic seed derived from the profile name (FNV-1a).
  std::uint64_t seed() const;

  bool operator==(const WorkloadProfile&) const = default;
};

}  // namespace soc::arch
