#include "arch/pmu.h"

#include <sstream>

namespace soc::arch {

const char* pmu_event_name(PmuEvent e) {
  switch (e) {
    case PmuEvent::kCpuCycles: return "CPU_CYCLES";
    case PmuEvent::kInstRetired: return "INST_RETIRED";
    case PmuEvent::kInstSpec: return "INST_SPEC";
    case PmuEvent::kBrRetired: return "BR_RETIRED";
    case PmuEvent::kBrMisPred: return "BR_MIS_PRED";
    case PmuEvent::kL1dCache: return "L1D_CACHE";
    case PmuEvent::kL1dCacheRefill: return "L1D_CACHE_REFILL";
    case PmuEvent::kL2dCache: return "L2D_CACHE";
    case PmuEvent::kL2dCacheRefill: return "L2D_CACHE_REFILL";
    case PmuEvent::kMemAccess: return "MEM_ACCESS";
    case PmuEvent::kStallFrontend: return "STALL_FRONTEND";
    case PmuEvent::kStallBackend: return "STALL_BACKEND";
    case PmuEvent::kCount: break;
  }
  return "UNKNOWN";
}

CounterSet& CounterSet::operator+=(const CounterSet& rhs) {
  for (std::size_t i = 0; i < kPmuEventCount; ++i) values_[i] += rhs.values_[i];
  return *this;
}

CounterSet CounterSet::scaled(double s) const {
  CounterSet out = *this;
  for (double& v : out.values_) v *= s;
  return out;
}

namespace {
double ratio(double num, double den) { return den > 0.0 ? num / den : 0.0; }
}  // namespace

double CounterSet::ipc() const {
  return ratio((*this)[PmuEvent::kInstRetired], (*this)[PmuEvent::kCpuCycles]);
}

double CounterSet::branch_misprediction_ratio() const {
  return ratio((*this)[PmuEvent::kBrMisPred], (*this)[PmuEvent::kBrRetired]);
}

double CounterSet::l1d_miss_ratio() const {
  return ratio((*this)[PmuEvent::kL1dCacheRefill], (*this)[PmuEvent::kL1dCache]);
}

double CounterSet::l2d_miss_ratio() const {
  return ratio((*this)[PmuEvent::kL2dCacheRefill], (*this)[PmuEvent::kL2dCache]);
}

double CounterSet::mpki_branch() const {
  return 1000.0 * ratio((*this)[PmuEvent::kBrMisPred],
                        (*this)[PmuEvent::kInstRetired]);
}

double CounterSet::mpki_l2() const {
  return 1000.0 * ratio((*this)[PmuEvent::kL2dCacheRefill],
                        (*this)[PmuEvent::kInstRetired]);
}

std::string CounterSet::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < kPmuEventCount; ++i) {
    os << pmu_event_name(static_cast<PmuEvent>(i)) << "=" << values_[i];
    if (i + 1 < kPmuEventCount) os << " ";
  }
  return os.str();
}

}  // namespace soc::arch
