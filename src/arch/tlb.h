// TLB simulator: a small fully-/set-associative translation cache with a
// fixed page-walk penalty.  Large-working-set codes (cg's gathers, ep's
// tables) pay translation misses on top of cache misses; server SoCs and
// mobile SoCs differ in TLB reach, which the core model folds into the
// CPI stack.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace soc::arch {

struct TlbConfig {
  int entries = 48;          ///< Total translation entries.
  int associativity = 48;    ///< Fully associative by default.
  Bytes page_size = 4 * kKiB;

  bool operator==(const TlbConfig&) const = default;
};

struct TlbStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;

  double miss_ratio() const {
    return accesses > 0 ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
  }
};

/// LRU TLB over virtual page numbers.
class Tlb {
 public:
  explicit Tlb(TlbConfig config);

  /// Translates `address`; returns true on TLB hit.
  bool access(std::uint64_t address);

  const TlbStats& stats() const { return stats_; }
  void reset_stats() { stats_ = TlbStats{}; }
  const TlbConfig& config() const { return config_; }

 private:
  struct Entry {
    std::uint64_t vpn = 0;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  TlbConfig config_;
  int sets_ = 1;
  int page_shift_ = 12;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
  TlbStats stats_;
};

}  // namespace soc::arch
