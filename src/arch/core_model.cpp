#include "arch/core_model.h"

#include <algorithm>
#include <cmath>

#include "arch/streams.h"
#include "common/error.h"

namespace soc::arch {

namespace {

// Shrinks a cache config to its contended effective capacity, keeping the
// geometry legal (power-of-two set count).
CacheConfig contended(CacheConfig c, double contention) {
  if (contention <= 1.0) return c;
  Bytes target = static_cast<Bytes>(
      static_cast<double>(c.size) / contention);
  target = std::max<Bytes>(target, c.line_size * c.associativity);
  // Round down to the nearest power-of-two multiple of one way's line span.
  Bytes size = c.line_size * c.associativity;
  while (size * 2 <= target) size *= 2;
  c.size = size;
  return c;
}

}  // namespace

Characterization characterize(const CoreConfig& core,
                              const WorkloadProfile& profile,
                              std::size_t sample_instructions) {
  SOC_CHECK(sample_instructions >= 10'000, "sample too small to be stable");
  const double mem_fraction =
      profile.load_fraction + profile.store_fraction;
  SOC_CHECK(mem_fraction > 0.0 && mem_fraction < 1.0, "bad memory fraction");

  // --- Drive the structures with deterministic streams. ---
  const auto mem_events = static_cast<std::size_t>(
      static_cast<double>(sample_instructions) * mem_fraction);
  const auto branch_events = static_cast<std::size_t>(
      static_cast<double>(sample_instructions) * profile.branch_fraction);

  CacheHierarchy hierarchy(core.l1d, contended(core.l2, core.l2_contention));
  Tlb dtlb(core.dtlb);
  for (const MemoryAccess& a :
       generate_memory_stream(profile, std::max<std::size_t>(mem_events, 1))) {
    hierarchy.access(a.address);
    dtlb.access(a.address);
  }

  auto predictor = make_predictor(core.predictor, core.predictor_entries,
                                  core.predictor_history_bits);
  for (const BranchEvent& b : generate_branch_stream(
           profile, std::max<std::size_t>(branch_events, 1))) {
    predictor->record(b.pc, b.taken);
  }

  Characterization ch;
  ch.l1d_miss_ratio = hierarchy.l1().stats().miss_ratio();
  ch.l2d_miss_ratio = hierarchy.l2().stats().miss_ratio();
  ch.dtlb_miss_ratio = dtlb.stats().miss_ratio();
  ch.branch_misprediction_ratio = predictor->stats().misprediction_ratio();

  // --- Compose the CPI stack. ---
  const double br_per_inst = profile.branch_fraction;
  const double mem_per_inst = mem_fraction;
  const double l1_refill_per_inst = mem_per_inst * ch.l1d_miss_ratio;
  const double l2_refill_per_inst = l1_refill_per_inst * ch.l2d_miss_ratio;

  const double frontend_stall =
      br_per_inst * ch.branch_misprediction_ratio * core.mispredict_penalty;
  const double backend_stall =
      (l1_refill_per_inst - l2_refill_per_inst) * core.l2_hit_latency /
          core.memory_level_parallelism +
      l2_refill_per_inst * core.dram_latency /
          core.memory_level_parallelism +
      mem_per_inst * ch.dtlb_miss_ratio * core.tlb_walk_penalty /
          core.memory_level_parallelism;
  const double base = 1.0 / core.issue_width +
                      profile.fp_fraction * core.fp_extra_cpi;
  ch.cpi = base + frontend_stall + backend_stall;

  // --- Per-instruction PMU events. ---
  CounterSet& pc = ch.per_instruction;
  pc[PmuEvent::kCpuCycles] = ch.cpi;
  pc[PmuEvent::kInstRetired] = 1.0;
  // Each mispredict fetches tens of wrong-path instructions before the
  // redirect resolves (fetch-ahead depth, similar across these cores);
  // that waste *is* the INST_SPEC inflation the paper sees on the
  // ThunderX, and it tracks the misprediction *rate*.
  constexpr double kWrongPathPerMispredict = 40.0;
  pc[PmuEvent::kInstSpec] =
      1.0 + br_per_inst * ch.branch_misprediction_ratio *
                kWrongPathPerMispredict;
  pc[PmuEvent::kBrRetired] = br_per_inst;
  pc[PmuEvent::kBrMisPred] = br_per_inst * ch.branch_misprediction_ratio;
  pc[PmuEvent::kL1dCache] = mem_per_inst;
  pc[PmuEvent::kL1dCacheRefill] = l1_refill_per_inst;
  pc[PmuEvent::kL2dCache] = l1_refill_per_inst;
  pc[PmuEvent::kL2dCacheRefill] = l2_refill_per_inst;
  pc[PmuEvent::kMemAccess] = mem_per_inst;
  pc[PmuEvent::kStallFrontend] = frontend_stall;
  pc[PmuEvent::kStallBackend] = backend_stall;

  ch.dram_bytes_per_instruction =
      l2_refill_per_inst * static_cast<double>(core.l2.line_size);
  return ch;
}

}  // namespace soc::arch
