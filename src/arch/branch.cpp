#include "arch/branch.h"

#include <bit>

#include "common/error.h"

namespace soc::arch {

namespace {

// 2-bit saturating counter helpers; >=2 predicts taken.
inline bool counter_taken(std::uint8_t c) { return c >= 2; }
inline std::uint8_t counter_update(std::uint8_t c, bool taken) {
  if (taken) return c < 3 ? static_cast<std::uint8_t>(c + 1) : c;
  return c > 0 ? static_cast<std::uint8_t>(c - 1) : c;
}

void check_entries(std::size_t entries) {
  SOC_CHECK(entries >= 2 && std::has_single_bit(entries),
            "predictor table size must be a power of two >= 2");
}

}  // namespace

void BranchPredictor::record(std::uint64_t pc, bool taken) {
  ++stats_.branches;
  if (predict(pc) != taken) ++stats_.mispredictions;
  update(pc, taken);
}

BimodalPredictor::BimodalPredictor(std::size_t entries) : table_(entries, 1) {
  check_entries(entries);
}

std::size_t BimodalPredictor::index(std::uint64_t pc) const {
  return static_cast<std::size_t>(pc) & (table_.size() - 1);
}

bool BimodalPredictor::predict(std::uint64_t pc) const {
  return counter_taken(table_[index(pc)]);
}

void BimodalPredictor::update(std::uint64_t pc, bool taken) {
  std::uint8_t& c = table_[index(pc)];
  c = counter_update(c, taken);
}

GsharePredictor::GsharePredictor(std::size_t entries, int history_bits)
    : table_(entries, 1),
      history_mask_((history_bits >= 64)
                        ? ~0ull
                        : ((1ull << history_bits) - 1)) {
  check_entries(entries);
  SOC_CHECK(history_bits > 0 && history_bits <= 32, "bad history length");
}

std::size_t GsharePredictor::index(std::uint64_t pc) const {
  return static_cast<std::size_t>((pc ^ history_) & (table_.size() - 1));
}

bool GsharePredictor::predict(std::uint64_t pc) const {
  return counter_taken(table_[index(pc)]);
}

void GsharePredictor::update(std::uint64_t pc, bool taken) {
  std::uint8_t& c = table_[index(pc)];
  c = counter_update(c, taken);
  history_ = ((history_ << 1) | (taken ? 1u : 0u)) & history_mask_;
}

TournamentPredictor::TournamentPredictor(std::size_t entries, int history_bits)
    : bimodal_(entries), gshare_(entries, history_bits), chooser_(entries, 2) {
  check_entries(entries);
}

std::size_t TournamentPredictor::chooser_index(std::uint64_t pc) const {
  return static_cast<std::size_t>(pc) & (chooser_.size() - 1);
}

bool TournamentPredictor::predict(std::uint64_t pc) const {
  const bool use_gshare = chooser_[chooser_index(pc)] >= 2;
  return use_gshare ? gshare_.predict(pc) : bimodal_.predict(pc);
}

void TournamentPredictor::update(std::uint64_t pc, bool taken) {
  const bool bimodal_right = bimodal_.predict(pc) == taken;
  const bool gshare_right = gshare_.predict(pc) == taken;
  std::uint8_t& choice = chooser_[chooser_index(pc)];
  if (gshare_right != bimodal_right) {
    choice = counter_update(choice, gshare_right);
  }
  // Train both components (stats on the components are not meaningful;
  // only the tournament's own record() stats are).
  bimodal_.record(pc, taken);
  gshare_.record(pc, taken);
}

std::unique_ptr<BranchPredictor> make_predictor(PredictorKind kind,
                                                std::size_t entries,
                                                int history_bits) {
  switch (kind) {
    case PredictorKind::kBimodal:
      return std::make_unique<BimodalPredictor>(entries);
    case PredictorKind::kGshare:
      return std::make_unique<GsharePredictor>(entries, history_bits);
    case PredictorKind::kTournament:
      return std::make_unique<TournamentPredictor>(entries, history_bits);
  }
  throw Error("unknown predictor kind");
}

}  // namespace soc::arch
