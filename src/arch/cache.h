// Set-associative cache simulator with LRU replacement.
//
// Used for both CPU L1/L2 characterization (Section IV-A: the ThunderX's
// smaller effective L2 per thread is one of the two bottlenecks the paper
// identifies) and the GPU L2 (Table III: zero-copy bypasses it entirely).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace soc::arch {

struct CacheConfig {
  Bytes size = 32 * kKiB;
  int associativity = 4;
  Bytes line_size = 64;
  /// Next-N-line prefetcher: on a miss, also allocate the following N
  /// lines (0 disables).  Models the A57's L1 stride prefetcher; the
  /// prefetcher ablation bench quantifies its effect on the streams.
  int prefetch_lines = 0;

  /// Number of sets implied by the configuration.
  int sets() const;

  bool operator==(const CacheConfig&) const = default;
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t prefetches = 0;  ///< Lines allocated speculatively.

  double miss_ratio() const {
    return accesses > 0 ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
  }
};

/// One level of cache.  `access` returns true on hit.  The simulator tracks
/// tags only (no data), which is all the characterization needs.
class Cache {
 public:
  explicit Cache(CacheConfig config);

  /// Looks up `address`; allocates on miss.  Returns true on hit.
  bool access(std::uint64_t address);

  /// Looks up without allocating (models uncached/bypass probes).
  bool probe(std::uint64_t address) const;

  void reset_stats() { stats_ = CacheStats{}; }
  const CacheStats& stats() const { return stats_; }
  const CacheConfig& config() const { return config_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< Larger = more recently used.
    bool valid = false;
  };

  std::size_t set_index(std::uint64_t address) const;
  std::uint64_t tag_of(std::uint64_t address) const;
  /// Allocates a line without counting an access (prefetch path).
  void allocate(std::uint64_t address);

  CacheConfig config_;
  int line_shift_ = 6;
  std::vector<Way> ways_;  ///< sets × associativity, row-major.
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

/// Two-level hierarchy: L1 backed by L2.  Accesses that miss L1 go to L2.
class CacheHierarchy {
 public:
  CacheHierarchy(CacheConfig l1, CacheConfig l2);

  /// Result levels: 1 = L1 hit, 2 = L2 hit, 3 = memory.
  int access(std::uint64_t address);

  const Cache& l1() const { return l1_; }
  const Cache& l2() const { return l2_; }
  void reset_stats();

 private:
  Cache l1_;
  Cache l2_;
};

}  // namespace soc::arch
