#include "arch/streams.h"

#include <cmath>

#include "common/error.h"

namespace soc::arch {

std::uint64_t WorkloadProfile::seed() const {
  // FNV-1a over the name: stable across runs and platforms.
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

std::vector<MemoryAccess> generate_memory_stream(const WorkloadProfile& profile,
                                                 std::size_t count) {
  SOC_CHECK(profile.working_set > 0 && profile.hot_set > 0,
            "profile regions must be non-empty");
  SOC_CHECK(profile.hot_fraction + profile.stream_fraction <= 1.0 + 1e-9,
            "access fractions exceed 1");
  Rng rng = Rng(profile.seed()).split(1);

  // Region layout: hot set at 0, streamed/working set above it.
  const std::uint64_t hot_base = 0;
  const std::uint64_t ws_base = 1ull << 30;  // separate the regions
  const auto hot_span = static_cast<std::uint64_t>(profile.hot_set);
  const auto ws_span = static_cast<std::uint64_t>(profile.working_set);

  const double store_share =
      profile.store_fraction /
      std::max(profile.load_fraction + profile.store_fraction, 1e-9);

  std::vector<MemoryAccess> out;
  out.reserve(count);
  std::uint64_t stream_cursor = 0;
  for (std::size_t i = 0; i < count; ++i) {
    MemoryAccess a;
    a.is_store = rng.next_bool(store_share);
    const double pick = rng.next_double();
    if (pick < profile.hot_fraction) {
      a.address = hot_base + rng.next_below(hot_span);
    } else if (pick < profile.hot_fraction + profile.stream_fraction) {
      // Strided walk through the working set, wrapping at its end.
      a.address = ws_base + stream_cursor;
      stream_cursor =
          (stream_cursor + static_cast<std::uint64_t>(profile.stream_stride)) %
          ws_span;
    } else {
      a.address = ws_base + rng.next_below(ws_span);
    }
    out.push_back(a);
  }
  return out;
}

std::vector<BranchEvent> generate_branch_stream(const WorkloadProfile& profile,
                                                std::size_t count) {
  SOC_CHECK(profile.static_branches > 0, "need at least one branch site");
  SOC_CHECK(profile.loop_fraction + profile.pattern_fraction <= 1.0 + 1e-9,
            "branch fractions exceed 1");
  Rng rng = Rng(profile.seed()).split(2);

  // Assign each static site a class and (for patterned sites) a phase.
  const auto sites = static_cast<std::size_t>(profile.static_branches);
  enum class Cls { kLoop, kPattern, kRandom };
  std::vector<Cls> cls(sites);
  std::vector<int> phase(sites, 0);
  std::vector<std::uint64_t> pcs(sites);
  for (std::size_t s = 0; s < sites; ++s) {
    const double pick = rng.next_double();
    if (pick < profile.loop_fraction) {
      cls[s] = Cls::kLoop;
    } else if (pick < profile.loop_fraction + profile.pattern_fraction) {
      cls[s] = Cls::kPattern;
      phase[s] = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(std::max(profile.pattern_period, 1))));
    } else {
      cls[s] = Cls::kRandom;
    }
    // Spread pcs so different sites alias differently in small tables.
    pcs[s] = (static_cast<std::uint64_t>(s) * 2654435761ull) >> 2;
  }

  // Branches execute in bursts per site (a loop nest re-executes the same
  // branch many times before moving on).  Bursts are what let a global-
  // history predictor learn per-site periodic patterns; visiting sites in
  // a random interleave would reduce every predictor to bimodal accuracy.
  std::vector<int> visits(sites, 0);
  std::vector<BranchEvent> out;
  out.reserve(count);
  while (out.size() < count) {
    const std::size_t s = static_cast<std::size_t>(rng.next_below(sites));
    const std::size_t burst = 48 + rng.next_below(96);
    for (std::size_t b = 0; b < burst && out.size() < count; ++b) {
      BranchEvent e;
      e.pc = pcs[s];
      switch (cls[s]) {
        case Cls::kLoop:
          e.taken = rng.next_bool(profile.loop_bias);
          break;
        case Cls::kPattern: {
          const int period = std::max(profile.pattern_period, 2);
          // Taken except once per period — the classic loop-exit pattern
          // a history predictor learns and a bimodal one partially misses.
          e.taken = ((visits[s] + phase[s]) % period) != 0;
          ++visits[s];
          break;
        }
        case Cls::kRandom:
          e.taken = rng.next_bool(profile.random_bias);
          break;
      }
      out.push_back(e);
    }
  }
  return out;
}

}  // namespace soc::arch
