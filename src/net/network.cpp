#include "net/network.h"

#include "common/error.h"

namespace soc::net {

NicConfig gigabit_nic() {
  NicConfig nic;
  nic.name = "1GbE";
  nic.kind = NicKind::kGigabit;
  nic.effective_bandwidth = gbit_per_s(0.94);
  nic.latency = 200 * kMicrosecond;
  nic.idle_power_w = 0.3;
  nic.active_power_w = 0.7;
  return nic;
}

NicConfig ten_gigabit_nic() {
  NicConfig nic;
  nic.name = "10GbE";
  nic.kind = NicKind::kTenGigabit;
  // The TX1 cannot drive the card at line rate; ~3.3 Gb/s achievable.
  nic.effective_bandwidth = gbit_per_s(3.3);
  nic.latency = 50 * kMicrosecond;
  nic.idle_power_w = 5.0;  // the paper's "about 5 W per node"
  nic.active_power_w = 1.5;
  return nic;
}

NicConfig server_ten_gigabit_nic() {
  NicConfig nic;
  nic.name = "10GbE-server";
  nic.kind = NicKind::kTenGigabit;
  nic.effective_bandwidth = gbit_per_s(9.4);
  nic.latency = 30 * kMicrosecond;
  nic.idle_power_w = 5.0;
  nic.active_power_w = 2.5;
  return nic;
}

NetworkModel::NetworkModel(NicConfig nic, SwitchConfig sw,
                           double intra_node_bandwidth)
    : nic_(std::move(nic)),
      switch_(std::move(sw)),
      intra_node_bandwidth_(intra_node_bandwidth) {
  SOC_CHECK(nic_.effective_bandwidth > 0.0, "bad NIC bandwidth");
  SOC_CHECK(intra_node_bandwidth_ > 0.0, "bad intra-node bandwidth");
}

int NetworkModel::hops(int src_node, int dst_node) const {
  if (src_node == dst_node) return 0;
  if (switch_.topology == Topology::kSingleSwitch) return 1;
  SOC_CHECK(switch_.pod_size > 0, "fat tree needs a positive pod size");
  const bool same_pod =
      src_node / switch_.pod_size == dst_node / switch_.pod_size;
  return same_pod ? 1 : 3;  // leaf — spine — leaf
}

SimTime NetworkModel::latency(int src_node, int dst_node) const {
  if (src_node == dst_node) return intra_node_latency_;
  return nic_.latency + hops(src_node, dst_node) * switch_.latency;
}

SimTime NetworkModel::transfer_time(int src_node, int dst_node,
                                    Bytes bytes) const {
  if (bytes == 0) return 0;
  if (src_node == dst_node) {
    return soc::transfer_time(bytes, intra_node_bandwidth_);
  }
  return soc::transfer_time(bytes, nic_.effective_bandwidth);
}

}  // namespace soc::net
