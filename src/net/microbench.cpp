#include "net/microbench.h"

#include "sim/engine.h"

namespace soc::net {

namespace {

// Cost model with no compute: only the network matters.
class NetOnlyCostModel : public sim::CostModel {
 public:
  explicit NetOnlyCostModel(const NetworkModel& network) : network_(network) {}

  SimTime cpu_compute_time(int, const sim::Op&) const override { return 0; }
  SimTime gpu_kernel_time(int, const sim::Op&) const override { return 0; }
  SimTime copy_time(int, const sim::Op&) const override { return 0; }
  SimTime message_latency(int src, int dst) const override {
    return network_.latency(src, dst);
  }
  SimTime message_transfer_time(int src, int dst, Bytes bytes) const override {
    return network_.transfer_time(src, dst, bytes);
  }
  SimTime send_overhead(int) const override { return 1 * kMicrosecond; }
  SimTime recv_overhead(int) const override { return 1 * kMicrosecond; }

 private:
  const NetworkModel& network_;
};

}  // namespace

ThroughputResult measure_throughput(const NetworkModel& network,
                                    Bytes total_bytes, Bytes message_bytes) {
  const int messages = static_cast<int>(total_bytes / message_bytes);
  std::vector<sim::Program> programs(2);
  for (int m = 0; m < messages; ++m) {
    programs[0].push_back(sim::send_op(1, message_bytes, m));
    programs[1].push_back(sim::recv_op(0, message_bytes, m));
  }

  NetOnlyCostModel cost(network);
  sim::Engine engine(sim::Placement::block(2, 2), cost);
  const sim::RunStats stats = engine.run(programs);

  ThroughputResult result;
  result.bytes_moved = static_cast<Bytes>(messages) * message_bytes;
  result.seconds = stats.seconds();
  result.gbit_per_second =
      result.seconds > 0.0
          ? static_cast<double>(result.bytes_moved) * 8.0 / 1e9 / result.seconds
          : 0.0;
  return result;
}

LatencyResult measure_latency(const NetworkModel& network, Bytes message_bytes,
                              int iterations) {
  std::vector<sim::Program> programs(2);
  for (int i = 0; i < iterations; ++i) {
    programs[0].push_back(sim::send_op(1, message_bytes, 2 * i));
    programs[0].push_back(sim::recv_op(1, message_bytes, 2 * i + 1));
    programs[1].push_back(sim::recv_op(0, message_bytes, 2 * i));
    programs[1].push_back(sim::send_op(0, message_bytes, 2 * i + 1));
  }

  NetOnlyCostModel cost(network);
  sim::Engine engine(sim::Placement::block(2, 2), cost);
  const sim::RunStats stats = engine.run(programs);

  LatencyResult result;
  result.round_trip_ms =
      stats.seconds() * 1e3 / static_cast<double>(iterations);
  result.one_way_us = result.round_trip_ms * 1e3 / 2.0;
  return result;
}

}  // namespace soc::net
