// Network substrate: NICs, switch, and the node-to-node timing model.
//
// The paper's cluster swaps the Jetson's on-board 1GbE for a PCIe 10GbE
// card.  Crucially, the 10GbE NIC on a mobile SoC does NOT reach line
// rate: the TX1's CPU and PCIe x1 lane cap iperf throughput at ≈3.3 Gb/s
// (§III-A).  `effective_bandwidth` captures that gap between marketing
// and achievable rate; every transfer in the simulator uses it.
#pragma once

#include <string>

#include "common/units.h"

namespace soc::net {

enum class NicKind { kGigabit, kTenGigabit };

struct NicConfig {
  std::string name = "1GbE";
  NicKind kind = NicKind::kGigabit;
  /// Achievable point-to-point throughput (iperf-style), bytes/s.
  double effective_bandwidth = gbit_per_s(0.94);
  /// One-way small-message latency contribution of this NIC + driver.
  SimTime latency = 100 * kMicrosecond;
  /// Power draw added to the node when the NIC is installed.
  double idle_power_w = 0.5;
  /// Additional power while actively transferring.
  double active_power_w = 1.0;

  bool operator==(const NicConfig&) const = default;
};

/// The Jetson's on-board 1GbE controller.
NicConfig gigabit_nic();
/// The Startech PEX10000SFP PCIe card: ~3.3 Gb/s achievable on the TX1,
/// +5 W per node (§III-B.1).
NicConfig ten_gigabit_nic();
/// A server-class 10GbE NIC (Xeon hosts drive closer to line rate).
NicConfig server_ten_gigabit_nic();

/// Fabric shape.  The paper's 16-node cluster hangs off one managed
/// switch; extrapolations past a switch's port count need a tree.
enum class Topology {
  kSingleSwitch,  ///< Every node one hop from every other.
  kFatTree2,      ///< Two-level tree: pods of `pod_size` leaf ports,
                  ///< cross-pod traffic traverses three switches.
};

struct SwitchConfig {
  std::string name = "cisco-350xg";
  Topology topology = Topology::kSingleSwitch;
  /// Leaf-switch port count (fat-tree pod membership).
  int pod_size = 16;
  /// Aggregate bisection bandwidth of the switch fabric, bytes/s.
  double bisection_bandwidth = gbit_per_s(160.0);
  /// Store-and-forward latency added per switch hop.
  SimTime latency = 5 * kMicrosecond;

  bool operator==(const SwitchConfig&) const = default;
};

/// Node-to-node path model: latency and serialization time for a message.
/// Intra-node messages short-circuit through shared memory.
class NetworkModel {
 public:
  NetworkModel(NicConfig nic, SwitchConfig sw, double intra_node_bandwidth);

  /// One-way latency between two nodes (0-cost path pieces for same node).
  /// Under a fat tree, cross-pod paths pay three switch hops.
  SimTime latency(int src_node, int dst_node) const;

  /// Number of switches on the src→dst path (0 intra-node).
  int hops(int src_node, int dst_node) const;

  /// Serialization time of `bytes` between two nodes (excludes latency).
  SimTime transfer_time(int src_node, int dst_node, Bytes bytes) const;

  const NicConfig& nic() const { return nic_; }
  const SwitchConfig& switch_config() const { return switch_; }

 private:
  NicConfig nic_;
  SwitchConfig switch_;
  double intra_node_bandwidth_;
  SimTime intra_node_latency_ = 2 * kMicrosecond;
};

}  // namespace soc::net
