// Network characterization microbenchmarks (iperf / ping-pong analogues).
//
// §III-A of the paper reports measured throughput and ping-pong latency
// for the on-board 1GbE vs. the PCIe 10GbE card.  These helpers run the
// actual replay engine over two simulated nodes, so the numbers include
// engine effects (NIC serialization, eager/rendezvous protocol) rather
// than just echoing the configs back.
#pragma once

#include "net/network.h"

namespace soc::net {

struct ThroughputResult {
  double gbit_per_second = 0.0;
  Bytes bytes_moved = 0;
  double seconds = 0.0;
};

struct LatencyResult {
  double round_trip_ms = 0.0;
  double one_way_us = 0.0;
};

/// iperf analogue: streams `total_bytes` in `message_bytes` chunks from
/// node 0 to node 1 and reports achieved throughput.
ThroughputResult measure_throughput(const NetworkModel& network,
                                    Bytes total_bytes = 256 * kMB,
                                    Bytes message_bytes = 1 * kMB);

/// Ping-pong analogue: bounces a small message `iterations` times and
/// reports the average round trip.
LatencyResult measure_latency(const NetworkModel& network,
                              Bytes message_bytes = 64,
                              int iterations = 1000);

}  // namespace soc::net
