// Parallel sweep runner: executes a batch of cluster::RunRequests across
// host threads and returns results in input order.
//
// Each simulated run is single-threaded and deterministic, and requests
// share no mutable state, so a sweep shards them over soc::parallel_for.
// Determinism contract: for the same request list, results — RunStats,
// event checksums, and any JSON artifacts the requests emit — are
// byte-identical whatever the thread count, because threading only
// changes *when* a run executes, never *what* it computes, and results
// land in a preallocated slot per input index.
//
// The runner also memoizes ClusterCostModel construction: requests that
// agree on (node config, cluster shape, workload CPU profile) — e.g. a
// grid of workloads over one machine — share one model, built once.
// Config structs compare by value (defaulted operator==), so a mutated
// node (DVFS sweeps, NIC ablations) can never false-hit the cache.
#pragma once

#include <cstddef>
#include <list>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/thread_safety.h"
#include "trace/replay.h"

namespace soc::sweep {

struct SweepOptions {
  /// Host threads to shard across; 0 = hardware concurrency.  Thread
  /// count never changes results, only wall-clock.
  unsigned threads = 0;
  /// Repaint a stderr progress/ETA line as runs finish (see progress.h).
  bool progress = false;
  /// Label for the progress line and the sweep report.
  std::string label = "sweep";
};

/// What one sweep did; everything here is deterministic across thread
/// counts and interleavings (counts of runs and of distinct cost-model
/// keys, sums of simulated seconds) except `threads`, which reports the
/// effective fan-out and is deliberately excluded from report JSON.
struct SweepSummary {
  std::size_t runs = 0;
  std::size_t replays = 0;
  unsigned threads = 1;
  std::size_t cost_models_built = 0;
  std::size_t cost_model_hits = 0;
  double simulated_seconds = 0.0;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});
  ~SweepRunner();  ///< Out of line: CacheEntry is incomplete here.
  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  /// Runs every request and returns results in input order.  Requests
  /// carrying their own metrics/report sinks get them serviced by the
  /// thread running that request; sinks must not be shared between
  /// requests.  Throws (after joining all threads) if any run threw.
  std::vector<cluster::RunResult> run(
      const std::vector<cluster::RunRequest>& requests);

  /// DIMEMAS-style scenario replays for every request, in input order.
  std::vector<trace::ScenarioRuns> replay_scenarios(
      const std::vector<cluster::RunRequest>& requests);

  /// Cumulative summary over every run()/replay_scenarios() call made
  /// through this runner, copied under the runner's lock.
  SweepSummary summary() const SOC_EXCLUDES(mutex_);

 private:
  struct CacheEntry;

  /// Returns the memoized cost model for the request's (node, shape,
  /// profile) key, building it outside the cache lock on first use.
  const cluster::ClusterCostModel& cost_for(
      const cluster::RunRequest& request, const workloads::Workload& workload)
      SOC_EXCLUDES(mutex_);

  SweepOptions options_;
  /// One lock guards the memo cache and the summary: worker threads hit
  /// both from inside parallel_for.  SOC_SHARED(self)
  mutable soc::Mutex mutex_;
  SweepSummary summary_ SOC_GUARDED_BY(mutex_);
  /// std::list: entry addresses are stable across insertions.
  std::list<CacheEntry> cache_ SOC_GUARDED_BY(mutex_);
};

/// Renders a "soccluster-sweep-report/v1" JSON document summarizing one
/// sweep: per-run configuration + headline metrics + event checksum, and
/// the deterministic parts of the summary.  Thread count and wall-clock
/// never appear, so the document is byte-identical across thread counts.
std::string sweep_report_json(const std::string& label,
                              const std::vector<cluster::RunRequest>& requests,
                              const std::vector<cluster::RunResult>& results,
                              const SweepSummary& summary);

}  // namespace soc::sweep
