#include "sweep/frontier.h"

#include "cluster/report.h"
#include "common/error.h"
#include "obs/json.h"
#include "sweep/grid.h"
#include "systems/machines.h"

namespace soc::sweep {

std::size_t FrontierGrid::size() const {
  return workloads.size() * nodes.size() * gpu_fractions.size() * dvfs.size();
}

std::vector<cluster::RunRequest> FrontierGrid::requests() const {
  SOC_CHECK(!nodes.empty(), "frontier grid needs at least one node count");
  SOC_CHECK(!gpu_fractions.empty(),
            "frontier grid needs at least one GPU work fraction");
  SOC_CHECK(!dvfs.empty(), "frontier grid needs at least one DVFS point");

  std::vector<cluster::RunRequest> out;
  out.reserve(size());
  for (const std::string& tag : workloads) {
    const auto workload = workloads::make_workload(tag);
    for (const int n : nodes) {
      const int r = natural_ranks(*workload, n);
      for (const double fraction : gpu_fractions) {
        for (const double f : dvfs) {
          cluster::RunRequest request;
          request.workload = tag;
          request.config = {systems::with_dvfs(systems::jetson_tx1(nic), f),
                            n, r};
          request.options = base;
          request.options.gpu_work_fraction = fraction;
          out.push_back(std::move(request));
        }
      }
    }
  }
  return out;
}

std::vector<FrontierPoint> perf_per_watt_frontier(
    const FrontierGrid& grid, const std::vector<cluster::RunResult>& results) {
  SOC_CHECK(results.size() == grid.size(),
            "frontier: results do not match the grid");
  std::vector<FrontierPoint> points;
  points.reserve(results.size());
  std::size_t i = 0;
  for (const std::string& tag : grid.workloads) {
    for (const int n : grid.nodes) {
      for (const double fraction : grid.gpu_fractions) {
        for (const double f : grid.dvfs) {
          const cluster::RunResult& r = results[i++];
          FrontierPoint p;
          p.workload = tag;
          p.nodes = n;
          p.ranks = static_cast<int>(r.stats.ranks.size());
          p.gpu_fraction = fraction;
          p.dvfs = f;
          p.seconds = r.seconds;
          p.joules = r.joules;
          p.gflops = r.gflops;
          p.average_watts = r.average_watts;
          p.mflops_per_watt = r.mflops_per_watt;
          p.event_checksum = r.stats.event_checksum;
          points.push_back(std::move(p));
        }
      }
    }
  }
  // Pareto marking per workload: a point survives unless another point
  // of the same workload weakly dominates it in (runtime, energy) and is
  // strictly better on one axis.  O(n^2) over a per-workload group is
  // trivial at sweep sizes and has no ordering sensitivity.
  for (FrontierPoint& p : points) {
    bool dominated = false;
    for (const FrontierPoint& q : points) {
      if (&q == &p || q.workload != p.workload) continue;
      if (q.seconds <= p.seconds && q.joules <= p.joules &&
          (q.seconds < p.seconds || q.joules < p.joules)) {
        dominated = true;
        break;
      }
    }
    p.pareto = !dominated;
  }
  return points;
}

std::string frontier_json(const std::string& label, const FrontierGrid& grid,
                          const std::vector<FrontierPoint>& points) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", "soccluster-energy-frontier/v1");
  w.field("label", std::string_view(label));
  w.newline();
  w.key("axes");
  w.begin_object();
  w.key("workloads");
  w.begin_array();
  for (const std::string& tag : grid.workloads) w.value(std::string_view(tag));
  w.end_array();
  w.key("nodes");
  w.begin_array();
  for (const int n : grid.nodes) w.value(n);
  w.end_array();
  w.key("gpu_fractions");
  w.begin_array();
  for (const double v : grid.gpu_fractions) w.value(v);
  w.end_array();
  w.key("dvfs");
  w.begin_array();
  for (const double v : grid.dvfs) w.value(v);
  w.end_array();
  w.end_object();
  w.newline();
  w.key("points");
  w.begin_array();
  for (const FrontierPoint& p : points) {
    w.newline();
    w.begin_object();
    w.field("workload", std::string_view(p.workload));
    w.field("nodes", p.nodes);
    w.field("ranks", p.ranks);
    w.field("gpu_fraction", p.gpu_fraction);
    w.field("dvfs", p.dvfs);
    w.field("seconds", p.seconds);
    w.field("joules", p.joules);
    w.field("gflops", p.gflops);
    w.field("average_watts", p.average_watts);
    w.field("mflops_per_watt", p.mflops_per_watt);
    w.field("event_checksum", cluster::checksum_hex(p.event_checksum));
    w.field("pareto", p.pareto);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string out = w.str();
  out += '\n';
  return out;
}

}  // namespace soc::sweep
