// Perf-per-watt frontier sweep: CPU/GPU work split x DVFS operating
// point x node count, evaluated through the shared SweepRunner and
// reduced to each workload's Pareto frontier in (runtime, energy).
//
// The sweep answers the deployment question behind the paper's energy
// argument: which operating points of the SoC cluster are *efficient* —
// no other point finishes both faster and on fewer joules.  Points off
// the frontier are dominated and never worth configuring.
//
// frontier_json renders the deterministic "soccluster-energy-frontier/v1"
// document; like every sweep artifact it is byte-identical across thread
// counts and build flavors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "net/network.h"

namespace soc::sweep {

/// Axes of the frontier sweep; enumeration is row-major with workloads
/// outermost (workloads x nodes x gpu_fractions x dvfs).
struct FrontierGrid {
  std::vector<std::string> workloads;
  std::vector<int> nodes = {16};
  /// CPU/GPU work split (cluster::RunOptions::gpu_work_fraction).
  std::vector<double> gpu_fractions = {1.0};
  /// Relative frequency; each point re-clocks the node through
  /// systems::with_dvfs (clocks, bandwidth law, VF power curve).
  std::vector<double> dvfs = {1.0};
  net::NicKind nic = net::NicKind::kTenGigabit;
  /// Options every request starts from (gpu_work_fraction is overridden
  /// by the axis above).
  cluster::RunOptions base;

  std::size_t size() const;
  /// The flat RunRequest list, in the row-major axis order above.
  std::vector<cluster::RunRequest> requests() const;
};

/// One evaluated operating point of the frontier sweep.
struct FrontierPoint {
  std::string workload;
  int nodes = 0;
  int ranks = 0;
  double gpu_fraction = 1.0;
  double dvfs = 1.0;
  double seconds = 0.0;
  double joules = 0.0;
  double gflops = 0.0;
  double average_watts = 0.0;
  double mflops_per_watt = 0.0;
  std::uint64_t event_checksum = 0;
  /// Non-dominated within its workload: no other point has both lower-
  /// or-equal runtime and lower-or-equal energy with one strictly lower.
  bool pareto = false;
};

/// Joins the grid with its sweep results (parallel to grid.requests())
/// and marks each workload's Pareto-optimal points.
std::vector<FrontierPoint> perf_per_watt_frontier(
    const FrontierGrid& grid, const std::vector<cluster::RunResult>& results);

/// The deterministic "soccluster-energy-frontier/v1" JSON document.
std::string frontier_json(const std::string& label, const FrontierGrid& grid,
                          const std::vector<FrontierPoint>& points);

}  // namespace soc::sweep
