#include "sweep/grid.h"

#include "common/error.h"

namespace soc::sweep {

int natural_ranks(const workloads::Workload& workload, int nodes) {
  const std::string n = workload.name();
  if (n == "alexnet" || n == "googlenet") return 4 * nodes;
  if (!workload.gpu_accelerated()) return 2 * nodes;
  return nodes;
}

namespace {

/// Columns an axis contributes: empty option axes still produce one
/// column (the inherited base value).
std::size_t width(std::size_t axis_size) {
  return axis_size == 0 ? 1 : axis_size;
}

}  // namespace

std::size_t Grid::size() const {
  return workloads.size() * width(nodes.size()) * width(nics.size()) *
         width(mem_models.size()) * width(size_scales.size()) *
         width(gpu_fractions.size());
}

std::size_t Grid::index(std::size_t iworkload, std::size_t inode,
                        std::size_t inic, std::size_t imem,
                        std::size_t iscale, std::size_t ifraction) const {
  SOC_CHECK(iworkload < workloads.size() && inode < width(nodes.size()) &&
                inic < width(nics.size()) && imem < width(mem_models.size()) &&
                iscale < width(size_scales.size()) &&
                ifraction < width(gpu_fractions.size()),
            "grid index out of range");
  std::size_t i = iworkload;
  i = i * width(nodes.size()) + inode;
  i = i * width(nics.size()) + inic;
  i = i * width(mem_models.size()) + imem;
  i = i * width(size_scales.size()) + iscale;
  i = i * width(gpu_fractions.size()) + ifraction;
  return i;
}

std::vector<cluster::RunRequest> Grid::requests() const {
  SOC_CHECK(!nodes.empty(), "grid needs at least one node count");
  SOC_CHECK(!nics.empty(), "grid needs at least one NIC kind");

  const auto make_node = node ? node : [](net::NicKind nic) {
    return systems::jetson_tx1(nic);
  };
  const auto make_ranks =
      ranks ? ranks : std::function<int(const workloads::Workload&, int)>(
                          &natural_ranks);

  std::vector<cluster::RunRequest> out;
  out.reserve(size());
  for (const std::string& tag : workloads) {
    // One instance per workload tag, just to derive rank counts; the
    // requests name workloads by tag so each run resolves its own.
    const std::unique_ptr<workloads::Workload> w =
        workloads::make_workload(tag);
    for (const int n : nodes) {
      const int r = make_ranks(*w, n);
      for (const net::NicKind nic : nics) {
        const systems::NodeConfig node_config = make_node(nic);
        for (std::size_t imem = 0; imem < width(mem_models.size()); ++imem) {
          for (std::size_t iscale = 0; iscale < width(size_scales.size());
               ++iscale) {
            for (std::size_t ifrac = 0; ifrac < width(gpu_fractions.size());
                 ++ifrac) {
              cluster::RunRequest request;
              request.workload = tag;
              request.config = {node_config, n, r};
              request.options = base;
              request.scenario = scenario;
              if (!mem_models.empty()) {
                request.options.mem_model = mem_models[imem];
              }
              if (!size_scales.empty()) {
                request.options.size_scale = size_scales[iscale];
              }
              if (!gpu_fractions.empty()) {
                request.options.gpu_work_fraction = gpu_fractions[ifrac];
              }
              out.push_back(std::move(request));
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace soc::sweep
