// Grid enumeration: the shared way bench binaries and socbench turn an
// experiment's axes (workloads × nodes × NIC × mem-model × size-scale ×
// GPU work fraction) into the flat RunRequest list a SweepRunner shards.
//
// Enumeration order is row-major with workloads outermost, matching the
// nested loops the bench binaries used to write by hand; index() maps
// axis indices back to the flat result slot so a bench can lay out its
// table from the sweep's result vector.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "net/network.h"
#include "systems/machines.h"

namespace soc::sweep {

/// The workload's natural rank count on `nodes` TX1-class nodes: 1
/// rank/node for GPU codes, 4 for the DNN decode workers, 2 for NPB.
int natural_ranks(const workloads::Workload& workload, int nodes);

struct Grid {
  /// Registry tags (workloads::list() subset); the outermost axis.
  std::vector<std::string> workloads;
  std::vector<int> nodes = {16};
  std::vector<net::NicKind> nics = {net::NicKind::kTenGigabit};

  /// Option axes.  An EMPTY axis means "inherit that field from `base`"
  /// (one column, no override) — so a bench that sets base.size_scale
  /// keeps it unless it explicitly sweeps size_scales.
  std::vector<sim::MemModel> mem_models;
  std::vector<double> size_scales;
  std::vector<double> gpu_fractions;

  /// Options every request starts from before axis overrides apply.
  cluster::RunOptions base;

  /// Scenario decorators (fault injection / noise / checkpoint) attached
  /// to every enumerated request; empty = scenario-free runs.
  workloads::ScenarioConfig scenario;

  /// Node config per NIC; defaults to systems::jetson_tx1 when unset.
  std::function<systems::NodeConfig(net::NicKind)> node;

  /// Rank count per (workload, nodes); defaults to natural_ranks.
  std::function<int(const workloads::Workload&, int)> ranks;

  /// Total requests the grid enumerates (0 when `workloads` is empty).
  std::size_t size() const;

  /// Flat result index for one combination of axis positions; empty
  /// option axes contribute one column, so their index must be 0.
  std::size_t index(std::size_t iworkload, std::size_t inode,
                    std::size_t inic = 0, std::size_t imem = 0,
                    std::size_t iscale = 0, std::size_t ifraction = 0) const;

  /// Enumerates the grid as RunRequests, in index() order.
  std::vector<cluster::RunRequest> requests() const;
};

}  // namespace soc::sweep
