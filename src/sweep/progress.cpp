#include "sweep/progress.h"

#include <chrono>
#include <cstdio>

namespace soc::sweep {

namespace {

// The narrator's one sanctioned host-clock read (see progress.h): the
// value only ever reaches stderr, never simulation state or artifacts.
long long wall_now_ns() {
  const auto now =
      std::chrono::steady_clock::now();  // soclint: allow(banned-nondeterminism)
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
      .count();
}

}  // namespace

ProgressMeter::ProgressMeter(std::string label, std::size_t total,
                             bool enabled)
    : label_(std::move(label)),
      total_(total),
      enabled_(enabled && total > 0),
      start_ns_(wall_now_ns()) {}

double ProgressMeter::elapsed_seconds() const {
  return static_cast<double>(wall_now_ns() - start_ns_) / 1e9;
}

void ProgressMeter::tick(double simulated_seconds) {
  if (!enabled_) return;
  const MutexLock lock(mutex_);
  ++finished_;
  // Tick-order accumulation: the total only ever reaches the stderr
  // progress line (progress.h), never simulation state or artifacts.
  simulated_seconds_ += simulated_seconds;  // soclint: allow(shared-fp-accumulation)
  const double elapsed = elapsed_seconds();
  const double eta =
      finished_ > 0
          ? elapsed / static_cast<double>(finished_) *
                static_cast<double>(total_ - finished_)
          : 0.0;
  std::fprintf(stderr, "\r[%s] %zu/%zu runs, %.1fs elapsed, ETA %.1fs   ",
               label_.c_str(), finished_, total_, elapsed, eta);
  line_open_ = true;
}

void ProgressMeter::done() {
  if (!enabled_) return;
  const MutexLock lock(mutex_);
  if (!line_open_) return;
  std::fprintf(stderr,
               "\r[%s] %zu runs in %.1fs wall (%.1f simulated seconds)   \n",
               label_.c_str(), finished_, elapsed_seconds(),
               simulated_seconds_);
  line_open_ = false;
}

}  // namespace soc::sweep
