#include "sweep/sweep.h"

#include <algorithm>
#include <memory>

#include "cluster/report.h"
#include "common/parallel.h"
#include "obs/json.h"
#include "sweep/progress.h"

namespace soc::sweep {

/// Memoization slot for one (node config, shape, CPU profile) key.  The
/// entry lives in a std::list so its address survives later insertions;
/// the model itself is built lazily under a per-entry once_flag so an
/// expensive arch::characterize never runs while cache_'s lock is held.
struct SweepRunner::CacheEntry {
  systems::NodeConfig node;
  int nodes = 0;
  int ranks = 0;
  arch::WorkloadProfile profile;

  std::once_flag once;  // SOC_SHARED(once) — call_once publishes `model`
  /// Written exactly once under `once`; read-only afterwards.
  std::optional<cluster::ClusterCostModel> model;

  bool matches(const cluster::RunRequest& request,
               const arch::WorkloadProfile& p) const {
    return nodes == request.config.nodes && ranks == request.config.ranks &&
           profile == p && node == request.config.node;
  }
};

SweepRunner::SweepRunner(SweepOptions options) : options_(std::move(options)) {}

SweepRunner::~SweepRunner() = default;

const cluster::ClusterCostModel& SweepRunner::cost_for(
    const cluster::RunRequest& request, const workloads::Workload& workload) {
  const arch::WorkloadProfile profile = workload.cpu_profile();
  CacheEntry* entry = nullptr;
  {
    const MutexLock lock(mutex_);
    for (CacheEntry& e : cache_) {
      if (e.matches(request, profile)) {
        entry = &e;
        ++summary_.cost_model_hits;
        break;
      }
    }
    if (entry == nullptr) {
      entry = &cache_.emplace_back();
      entry->node = request.config.node;
      entry->nodes = request.config.nodes;
      entry->ranks = request.config.ranks;
      entry->profile = profile;
      ++summary_.cost_models_built;
    }
  }
  std::call_once(entry->once, [&] {
    entry->model.emplace(entry->node, entry->nodes, entry->ranks,
                         entry->profile);
  });
  return *entry->model;
}

std::vector<cluster::RunResult> SweepRunner::run(
    const std::vector<cluster::RunRequest>& requests) {
  std::vector<cluster::RunResult> results(requests.size());
  ProgressMeter progress(options_.label, requests.size(), options_.progress);
  parallel_for(
      requests.size(),
      [&](std::size_t i) {
        const cluster::RunRequest& request = requests[i];
        cluster::validate(request.config);
        std::unique_ptr<workloads::Workload> owned;
        const workloads::Workload& workload =
            cluster::resolve_workload(request, owned);
        // Two cache layers stack here: cost_for() shares one immutable
        // ClusterCostModel across requests (mutex-guarded construction),
        // and cluster::run wraps it in a per-run sim::MemoCostModel whose
        // mutable evaluation cache is local to this thread's run — the
        // shared model is only ever read through const calls.
        results[i] = cluster::run(request, workload, cost_for(request, workload));
        progress.tick(results[i].seconds);
      },
      options_.threads);
  progress.done();

  // Summary accumulation happens after the join, in input order, so the
  // totals are independent of how the threads interleaved.  The lock is
  // uncontended here but keeps the analysis honest: summary_ is the same
  // member the workers' cache hits incremented moments ago.
  const MutexLock lock(mutex_);
  summary_.runs += requests.size();
  summary_.threads = std::max(
      summary_.threads, effective_threads(options_.threads, requests.size()));
  for (const cluster::RunResult& r : results) {
    summary_.simulated_seconds += r.seconds;
  }
  return results;
}

std::vector<trace::ScenarioRuns> SweepRunner::replay_scenarios(
    const std::vector<cluster::RunRequest>& requests) {
  std::vector<trace::ScenarioRuns> results(requests.size());
  ProgressMeter progress(options_.label, requests.size(), options_.progress);
  parallel_for(
      requests.size(),
      [&](std::size_t i) {
        const cluster::RunRequest& request = requests[i];
        cluster::validate(request.config);
        std::unique_ptr<workloads::Workload> owned;
        const workloads::Workload& workload =
            cluster::resolve_workload(request, owned);
        results[i] = cluster::replay_scenarios(request, workload,
                                               cost_for(request, workload));
        progress.tick(results[i].measured.seconds());
      },
      options_.threads);
  progress.done();

  const MutexLock lock(mutex_);
  summary_.replays += requests.size();
  summary_.threads = std::max(
      summary_.threads, effective_threads(options_.threads, requests.size()));
  for (const trace::ScenarioRuns& r : results) {
    summary_.simulated_seconds += r.measured.seconds();
  }
  return results;
}

SweepSummary SweepRunner::summary() const {
  const MutexLock lock(mutex_);
  return summary_;
}

std::string sweep_report_json(const std::string& label,
                              const std::vector<cluster::RunRequest>& requests,
                              const std::vector<cluster::RunResult>& results,
                              const SweepSummary& summary) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", "soccluster-sweep-report/v1");
  w.field("label", std::string_view(label));
  w.newline();

  // Deliberately no `threads` and no wall-clock: the document must be
  // byte-identical across thread counts (see sweep.h).
  w.key("summary");
  w.begin_object();
  w.field("runs", static_cast<std::int64_t>(summary.runs));
  w.field("replays", static_cast<std::int64_t>(summary.replays));
  w.field("cost_models_built",
          static_cast<std::int64_t>(summary.cost_models_built));
  w.field("cost_model_hits",
          static_cast<std::int64_t>(summary.cost_model_hits));
  w.field("simulated_seconds", summary.simulated_seconds);
  w.end_object();
  w.newline();

  w.key("runs");
  w.begin_array();
  const std::size_t count = std::min(requests.size(), results.size());
  for (std::size_t i = 0; i < count; ++i) {
    const cluster::RunRequest& request = requests[i];
    const cluster::RunResult& result = results[i];
    w.newline();
    w.begin_object();
    w.field("workload", request.workload_ref != nullptr
                            ? std::string_view(request.workload_ref->name())
                            : std::string_view(request.workload));
    w.field("node", std::string_view(request.config.node.name));
    w.field("nodes", request.config.nodes);
    w.field("ranks", request.config.ranks);
    w.field("mem_model", cluster::mem_model_name(request.options.mem_model));
    w.field("gpu_work_fraction", request.options.gpu_work_fraction);
    w.field("size_scale", request.options.size_scale);
    w.field("overlap_halos", request.options.overlap_halos);
    if (request.scenario.enabled()) {
      w.newline();
      w.key("scenario");
      cluster::write_scenario(w, request.scenario);
      w.newline();
    }
    w.field("seconds", result.seconds);
    w.field("gflops", result.gflops);
    w.field("mflops_per_watt", result.mflops_per_watt);
    w.field("joules", result.joules);
    w.field("event_checksum",
            cluster::checksum_hex(result.stats.event_checksum));
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::string out = w.str();
  out += '\n';
  return out;
}

}  // namespace soc::sweep
