// Progress narrator for long sweeps.
//
// Repaints one stderr status line ("\r[label] k/N runs, 12.3s elapsed,
// ETA 4.5s") as runs complete.  This is the single place the tree reads a
// host clock: the narrator is operator feedback that never feeds
// simulation state or JSON artifacts — sweep outputs stay byte-identical
// whether or not the narrator runs — so progress.cpp carries an explicit
// soclint waiver for the wall-clock read.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>

namespace soc::sweep {

class ProgressMeter {
 public:
  /// `total` runs expected; a disabled or zero-total meter never prints.
  ProgressMeter(std::string label, std::size_t total, bool enabled);

  /// Marks one run finished (thread-safe) and repaints the status line.
  /// `simulated_seconds` is the run's simulated makespan, echoed so the
  /// operator can see sim-time accumulate against wall time.
  void tick(double simulated_seconds);

  /// Terminates the status line with a final total (idempotent).
  void done();

 private:
  double elapsed_seconds() const;

  std::string label_;
  std::size_t total_;
  bool enabled_;
  std::mutex mutex_;
  std::size_t finished_ = 0;
  double simulated_seconds_ = 0.0;
  bool line_open_ = false;
  /// Wall-clock start in nanoseconds (host clock, see header comment).
  long long start_ns_ = 0;
};

}  // namespace soc::sweep
