// Progress narrator for long sweeps.
//
// Repaints one stderr status line ("\r[label] k/N runs, 12.3s elapsed,
// ETA 4.5s") as runs complete.  This is the single place the tree reads a
// host clock: the narrator is operator feedback that never feeds
// simulation state or JSON artifacts — sweep outputs stay byte-identical
// whether or not the narrator runs — so progress.cpp carries an explicit
// soclint waiver for the wall-clock read.
#pragma once

#include <cstddef>
#include <string>

#include "common/thread_safety.h"

namespace soc::sweep {

class ProgressMeter {
 public:
  /// `total` runs expected; a disabled or zero-total meter never prints.
  ProgressMeter(std::string label, std::size_t total, bool enabled);

  /// Marks one run finished (thread-safe) and repaints the status line.
  /// `simulated_seconds` is the run's simulated makespan, echoed so the
  /// operator can see sim-time accumulate against wall time.
  void tick(double simulated_seconds) SOC_EXCLUDES(mutex_);

  /// Terminates the status line with a final total (idempotent).
  void done() SOC_EXCLUDES(mutex_);

 private:
  double elapsed_seconds() const;

  std::string label_;
  std::size_t total_;
  bool enabled_;
  /// Serializes ticks from sweep worker threads.  SOC_SHARED(self)
  soc::Mutex mutex_;
  std::size_t finished_ SOC_GUARDED_BY(mutex_) = 0;
  /// Stderr feedback only: accumulation order follows tick order, so this
  /// total may differ across thread counts — it must never reach an
  /// artifact (sweep reports re-sum in input order instead).
  double simulated_seconds_ SOC_GUARDED_BY(mutex_) = 0.0;
  bool line_open_ SOC_GUARDED_BY(mutex_) = false;
  /// Wall-clock start in nanoseconds (host clock, see header comment).
  long long start_ns_ = 0;
};

}  // namespace soc::sweep
