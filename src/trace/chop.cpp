#include "trace/chop.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/error.h"

namespace soc::trace {

std::vector<PhaseSummary> chop_phases(const sim::RunStats& stats) {
  SOC_CHECK(!stats.ranks.empty(), "no ranks in run");
  // Collect-then-sort beats a node-based set: phase ids arrive nearly
  // sorted and number in the tens, so one contiguous sort/unique pass
  // avoids a heap allocation per distinct phase.
  std::vector<int> phase_ids;
  for (const sim::RankStats& rs : stats.ranks) {
    for (const auto& [phase, t] : rs.phase_compute) phase_ids.push_back(phase);
  }
  std::sort(phase_ids.begin(), phase_ids.end());
  phase_ids.erase(std::unique(phase_ids.begin(), phase_ids.end()),
                  phase_ids.end());

  std::vector<PhaseSummary> out;
  out.reserve(phase_ids.size());
  for (int phase : phase_ids) {
    PhaseSummary s;
    s.phase = phase;
    s.min_compute_s = std::numeric_limits<double>::infinity();
    double total = 0.0;
    for (const sim::RankStats& rs : stats.ranks) {
      const auto it = rs.phase_compute.find(phase);
      const double t = it != rs.phase_compute.end()
                           ? to_seconds(it->second)
                           : 0.0;
      total += t;
      s.max_compute_s = std::max(s.max_compute_s, t);
      s.min_compute_s = std::min(s.min_compute_s, t);
    }
    s.mean_compute_s = total / static_cast<double>(stats.ranks.size());
    s.load_balance =
        s.max_compute_s > 0.0 ? s.mean_compute_s / s.max_compute_s : 1.0;
    out.push_back(s);
  }
  return out;
}

double global_load_balance(const sim::RunStats& stats) {
  SOC_CHECK(!stats.ranks.empty(), "no ranks in run");
  double total = 0.0;
  double max_rank = 0.0;
  for (const sim::RankStats& rs : stats.ranks) {
    double rank_total = 0.0;
    for (const auto& [phase, t] : rs.phase_compute) {
      rank_total += to_seconds(t);
    }
    total += rank_total;
    max_rank = std::max(max_rank, rank_total);
  }
  const double mean = total / static_cast<double>(stats.ranks.size());
  return max_rank > 0.0 ? mean / max_rank : 1.0;
}

}  // namespace soc::trace
