#include "trace/timeline.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace soc::trace {

namespace {

char glyph(double utilization) {
  if (utilization < 0.05) return ' ';
  if (utilization < 0.25) return '.';
  if (utilization < 0.50) return '-';
  if (utilization < 0.75) return '=';
  if (utilization < 0.95) return '#';
  return '@';
}

// Resamples a busy-seconds lane into `width` utilization buckets.
std::string strip(const std::vector<double>& lane, double bin_seconds,
                  double total_seconds, int width, double capacity) {
  std::string out(static_cast<std::size_t>(width), ' ');
  if (total_seconds <= 0.0 || capacity <= 0.0) return out;
  const double bucket_seconds = total_seconds / width;
  for (int b = 0; b < width; ++b) {
    const double t0 = b * bucket_seconds;
    const double t1 = t0 + bucket_seconds;
    double busy = 0.0;
    for (std::size_t bin = 0; bin < lane.size(); ++bin) {
      const double b0 = static_cast<double>(bin) * bin_seconds;
      const double b1 = b0 + bin_seconds;
      const double overlap = std::min(t1, b1) - std::max(t0, b0);
      if (overlap <= 0.0) continue;
      // Assume uniform density within the bin.
      busy += lane[bin] * overlap / bin_seconds;
    }
    out[static_cast<std::size_t>(b)] =
        glyph(busy / (bucket_seconds * capacity));
  }
  return out;
}

}  // namespace

std::string render_timeline(const sim::RunStats& stats,
                            const TimelineOptions& options) {
  SOC_CHECK(options.width >= 8, "timeline too narrow");
  SOC_CHECK(options.cores_per_node >= 1, "need at least one core");
  std::ostringstream os;
  const double seconds = stats.seconds();
  os << "timeline: 0s";
  const int pad = options.width - 2;
  os << std::string(static_cast<std::size_t>(std::max(pad - 6, 1)), ' ')
     << std::round(seconds * 100.0) / 100.0 << "s\n";

  const int shown = std::min<int>(static_cast<int>(stats.nodes.size()),
                                  options.max_nodes);
  for (int n = 0; n < shown; ++n) {
    const sim::NodeTimeline& tl = stats.nodes[static_cast<std::size_t>(n)];
    if (options.show_cpu) {
      os << "node" << n << " cpu |"
         << strip(tl.cpu_busy, stats.timeline_bin_seconds, seconds,
                  options.width, options.cores_per_node)
         << "|\n";
    }
    if (options.show_gpu && !tl.gpu_busy.empty()) {
      os << "node" << n << " gpu |"
         << strip(tl.gpu_busy, stats.timeline_bin_seconds, seconds,
                  options.width, 1.0)
         << "|\n";
    }
    if (options.show_nic && !tl.nic_busy.empty()) {
      os << "node" << n << " nic |"
         << strip(tl.nic_busy, stats.timeline_bin_seconds, seconds,
                  options.width, 1.0)
         << "|\n";
    }
  }
  if (static_cast<int>(stats.nodes.size()) > shown) {
    os << "(" << stats.nodes.size() - static_cast<std::size_t>(shown)
       << " more nodes not shown)\n";
  }
  os << "legend: ' '<5% '.'<25% '-'<50% '='<75% '#'<95% '@'>=95%\n";
  return os.str();
}

}  // namespace soc::trace
