#include "trace/export.h"

#include <fstream>
#include <sstream>

#include "common/error.h"

namespace soc::trace {

namespace {

const char* mem_model_token(sim::MemModel mm) {
  switch (mm) {
    case sim::MemModel::kHostDevice: return "hd";
    case sim::MemModel::kZeroCopy: return "zc";
    case sim::MemModel::kUnified: return "um";
  }
  return "hd";
}

sim::MemModel parse_mem_model(const std::string& token, int line) {
  if (token == "hd") return sim::MemModel::kHostDevice;
  if (token == "zc") return sim::MemModel::kZeroCopy;
  if (token == "um") return sim::MemModel::kUnified;
  throw Error("soctrace line " + std::to_string(line) +
              ": unknown memory model '" + token + "'");
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw Error("soctrace line " + std::to_string(line) + ": " + what);
}

}  // namespace

std::string export_programs(const std::vector<sim::Program>& programs) {
  std::ostringstream os;
  os.precision(17);  // doubles must survive the round trip exactly
  os << "soctrace v1 ranks=" << programs.size() << "\n";
  for (std::size_t r = 0; r < programs.size(); ++r) {
    os << "rank " << r << "\n";
    for (const sim::Op& op : programs[r]) {
      SOC_CHECK(op.time_scale == 1.0,
                "soctrace v1 cannot carry Op::time_scale != 1");
      switch (op.kind) {
        case sim::OpKind::kCpuCompute:
          os << "cpu " << op.instructions << " " << op.flops << " "
             << op.dram_bytes << " " << op.profile << " " << op.phase << "\n";
          break;
        case sim::OpKind::kGpuKernel:
          os << "gpu " << op.flops << " " << op.dram_bytes << " "
             << mem_model_token(op.mem_model) << " " << op.parallelism << " "
             << (op.double_precision ? 1 : 0) << " " << op.phase << "\n";
          break;
        case sim::OpKind::kCopyH2D:
          os << "h2d " << op.bytes << " " << mem_model_token(op.mem_model)
             << " " << op.phase << "\n";
          break;
        case sim::OpKind::kCopyD2H:
          os << "d2h " << op.bytes << " " << mem_model_token(op.mem_model)
             << " " << op.phase << "\n";
          break;
        case sim::OpKind::kSend:
          os << "send " << op.peer << " " << op.bytes << " " << op.tag << " "
             << op.phase << "\n";
          break;
        case sim::OpKind::kRecv:
          os << "recv " << op.peer << " " << op.bytes << " " << op.tag << " "
             << op.phase << "\n";
          break;
        case sim::OpKind::kIsend:
          os << "isend " << op.peer << " " << op.bytes << " " << op.tag
             << " " << op.phase << "\n";
          break;
        case sim::OpKind::kIrecv:
          os << "irecv " << op.peer << " " << op.bytes << " " << op.tag
             << " " << op.phase << "\n";
          break;
        case sim::OpKind::kWaitAll:
          os << "waitall " << op.phase << "\n";
          break;
        case sim::OpKind::kPhase:
          os << "phase " << op.phase << "\n";
          break;
        case sim::OpKind::kDelay:
          os << "delay " << op.delay_seconds << " " << op.phase << "\n";
          break;
        case sim::OpKind::kEnd:
          SOC_CHECK(false, "soctrace: kEnd sentinel in a program");
          break;
      }
    }
  }
  return os.str();
}

std::vector<sim::Program> import_programs(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  int line_no = 0;

  // Header.
  std::size_t ranks = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream hs(line);
    std::string magic;
    std::string version;
    std::string ranks_field;
    hs >> magic >> version >> ranks_field;
    if (magic != "soctrace" || version != "v1" ||
        ranks_field.rfind("ranks=", 0) != 0) {
      fail(line_no, "bad header (expected 'soctrace v1 ranks=N')");
    }
    ranks = static_cast<std::size_t>(std::stoull(ranks_field.substr(6)));
    break;
  }
  SOC_CHECK(ranks > 0, "soctrace: missing or empty header");

  std::vector<sim::Program> programs(ranks);
  std::size_t current = ranks;  // invalid until a 'rank' directive
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string verb;
    ls >> verb;

    if (verb == "rank") {
      std::size_t r = 0;
      if (!(ls >> r) || r >= ranks) fail(line_no, "bad rank directive");
      current = r;
      continue;
    }
    if (current >= ranks) fail(line_no, "op before any 'rank' directive");

    sim::Op op;
    bool ok = true;
    if (verb == "cpu") {
      op.kind = sim::OpKind::kCpuCompute;
      ok = static_cast<bool>(ls >> op.instructions >> op.flops >>
                             op.dram_bytes >> op.profile >> op.phase);
    } else if (verb == "gpu") {
      op.kind = sim::OpKind::kGpuKernel;
      std::string mm;
      int dp = 1;
      ok = static_cast<bool>(ls >> op.flops >> op.dram_bytes >> mm >>
                             op.parallelism >> dp >> op.phase);
      if (ok) {
        op.mem_model = parse_mem_model(mm, line_no);
        op.double_precision = dp != 0;
      }
    } else if (verb == "h2d" || verb == "d2h") {
      op.kind = verb == "h2d" ? sim::OpKind::kCopyH2D : sim::OpKind::kCopyD2H;
      std::string mm;
      ok = static_cast<bool>(ls >> op.bytes >> mm >> op.phase);
      if (ok) op.mem_model = parse_mem_model(mm, line_no);
    } else if (verb == "send" || verb == "recv" || verb == "isend" ||
               verb == "irecv") {
      op.kind = verb == "send"    ? sim::OpKind::kSend
                : verb == "recv"  ? sim::OpKind::kRecv
                : verb == "isend" ? sim::OpKind::kIsend
                                  : sim::OpKind::kIrecv;
      ok = static_cast<bool>(ls >> op.peer >> op.bytes >> op.tag >> op.phase);
    } else if (verb == "waitall") {
      op.kind = sim::OpKind::kWaitAll;
      ok = static_cast<bool>(ls >> op.phase);
    } else if (verb == "phase") {
      op.kind = sim::OpKind::kPhase;
      ok = static_cast<bool>(ls >> op.phase);
    } else if (verb == "delay") {
      op.kind = sim::OpKind::kDelay;
      ok = static_cast<bool>(ls >> op.delay_seconds >> op.phase);
    } else {
      fail(line_no, "unknown op '" + verb + "'");
    }
    if (!ok) fail(line_no, "malformed '" + verb + "' op");
    programs[current].push_back(op);
  }
  return programs;
}

void save_trace(const std::string& path,
                const std::vector<sim::Program>& programs) {
  std::ofstream out(path);
  SOC_CHECK(out.good(), "cannot open trace file for writing: " + path);
  out << export_programs(programs);
  SOC_CHECK(out.good(), "error writing trace file: " + path);
}

std::vector<sim::Program> load_trace(const std::string& path) {
  std::ifstream in(path);
  SOC_CHECK(in.good(), "cannot open trace file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return import_programs(buffer.str());
}

}  // namespace soc::trace
