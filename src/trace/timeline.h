// ASCII timeline rendering (a PARAVER-flavoured view of a run).
//
// Renders the engine's per-node busy-time lanes as utilization strips —
// one row per (node, component), one character per time bucket — so a
// terminal user can see where the GPUs idle, when the NICs saturate, and
// how phases line up, without leaving the CLI.
#pragma once

#include <string>

#include "sim/stats.h"

namespace soc::trace {

struct TimelineOptions {
  int width = 72;        ///< Characters per strip.
  int max_nodes = 8;     ///< Rows beyond this are summarized.
  bool show_cpu = true;
  bool show_gpu = true;
  bool show_nic = true;
  /// Core count per node (normalizes the CPU lane to [0,1]).
  int cores_per_node = 4;
};

/// Renders utilization strips.  Glyphs: ' ' <5%, '.' <25%, '-' <50%,
/// '=' <75%, '#' <95%, '@' >=95% of the component's capacity.
std::string render_timeline(const sim::RunStats& stats,
                            const TimelineOptions& options = {});

}  // namespace soc::trace
