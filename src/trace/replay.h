// Trace replay scenarios (the DIMEMAS methodology of §III-B.4).
//
// The paper records Extrae traces on the real cluster and re-simulates
// them under (a) the real network, (b) an ideal network with zero latency
// and unlimited bandwidth, and (c) perfect load balance.  Our programs
// *are* the traces, so the scenarios are three replays of the same
// programs with different engine scenarios.
#pragma once

#include <vector>

#include "sim/engine.h"

namespace soc::trace {

/// The three replays the scalability analysis consumes.
struct ScenarioRuns {
  sim::RunStats measured;      ///< Real network, real load.
  sim::RunStats ideal_network; ///< Zero latency, unlimited bandwidth.
  sim::RunStats ideal_balance; ///< Per-rank compute scaled to the average
                               ///< (real network, per the paper: "we used
                               ///< the traces with the real network").
};

/// Per-rank compute-scaling factors that would equalize total compute
/// across ranks (LB = 1).  Derived from a measured run.
std::vector<double> ideal_balance_scales(const sim::RunStats& measured);

/// Runs all three scenarios over the same programs.
ScenarioRuns replay_scenarios(const sim::Placement& placement,
                              const sim::CostModel& cost,
                              const std::vector<sim::Program>& programs,
                              const sim::EngineConfig& config = {});

/// Stream form: the measured run pulls `source` through a recording tee,
/// and the two ideals replay the recorded programs.  This preserves
/// trace-replay semantics under time-dependent streams (fault/noise
/// decorators): the what-ifs re-time exactly the op sequence the
/// measured run committed, instead of re-sampling the decorators under
/// a different schedule.
ScenarioRuns replay_scenarios(const sim::Placement& placement,
                              const sim::CostModel& cost, sim::OpSource& source,
                              const sim::EngineConfig& config = {});

}  // namespace soc::trace
