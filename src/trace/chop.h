// Phase chopping (the PARAVER step of the paper's methodology).
//
// Iterative workloads mark their timesteps with phase ops; the chopper
// summarizes per-phase work distribution so the efficiency decomposition
// can reason about individual iterations instead of the whole run (hpl,
// which is not iterative, is analyzed as one big phase — §III-B.4).
#pragma once

#include <map>
#include <vector>

#include "sim/stats.h"

namespace soc::trace {

/// Work-distribution summary of one phase.
struct PhaseSummary {
  int phase = 0;
  double mean_compute_s = 0.0;
  double max_compute_s = 0.0;
  double min_compute_s = 0.0;
  /// Load balance of this phase: mean/max compute (1 = perfect).
  double load_balance = 1.0;
};

/// Chops a run into per-phase summaries (ordered by phase id).
std::vector<PhaseSummary> chop_phases(const sim::RunStats& stats);

/// Time-weighted global load balance across all phases: the paper's LB
/// factor.  Equals mean(total compute)/max(total compute).
double global_load_balance(const sim::RunStats& stats);

}  // namespace soc::trace
