#include "trace/replay.h"

#include "common/error.h"
#include "sim/memo_cost.h"

namespace soc::trace {

std::vector<double> ideal_balance_scales(const sim::RunStats& measured) {
  const std::size_t n = measured.ranks.size();
  SOC_CHECK(n > 0, "no ranks in run");
  std::vector<double> compute(n, 0.0);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    for (const auto& [phase, t] : measured.ranks[r].phase_compute) {
      compute[r] += static_cast<double>(t);
    }
    total += compute[r];
  }
  const double avg = total / static_cast<double>(n);
  std::vector<double> scales(n, 1.0);
  for (std::size_t r = 0; r < n; ++r) {
    if (compute[r] > 0.0) scales[r] = avg / compute[r];
  }
  return scales;
}

namespace {

// The two what-if replays over an already-measured op sequence.
void replay_ideals(const sim::Placement& placement,
                   const sim::CostModel& effective,
                   const std::vector<sim::Program>& programs,
                   const sim::EngineConfig& config, ScenarioRuns& runs) {
  {
    sim::Scenario scenario;
    scenario.ideal_network = true;
    sim::Engine engine(placement, effective, config, scenario);
    runs.ideal_network = engine.run(programs);
  }
  {
    sim::Scenario scenario;
    scenario.compute_scale = ideal_balance_scales(runs.measured);
    sim::Engine engine(placement, effective, config, scenario);
    runs.ideal_balance = engine.run(programs);
  }
}

}  // namespace

ScenarioRuns replay_scenarios(const sim::Placement& placement,
                              const sim::CostModel& cost,
                              const std::vector<sim::Program>& programs,
                              const sim::EngineConfig& config) {
  // One memo shared across all three scenarios: op durations depend only
  // on the cost model, so the measured replay warms the cache for the
  // what-if replays.  (Ideal network bypasses the cost model inside the
  // engine and ideal balance rescales durations after evaluation, so the
  // cached values are identical across scenarios.)
  const sim::MemoCostModel memo(cost, /*thread_safe=*/config.shards > 1);
  const sim::CostModel& effective =
      cost.memoizable() ? static_cast<const sim::CostModel&>(memo) : cost;
  ScenarioRuns runs;
  {
    sim::Engine engine(placement, effective, config);
    runs.measured = engine.run(programs);
  }
  replay_ideals(placement, effective, programs, config, runs);
  return runs;
}

ScenarioRuns replay_scenarios(const sim::Placement& placement,
                              const sim::CostModel& cost, sim::OpSource& source,
                              const sim::EngineConfig& config) {
  const sim::MemoCostModel memo(cost, /*thread_safe=*/config.shards > 1);
  const sim::CostModel& effective =
      cost.memoizable() ? static_cast<const sim::CostModel&>(memo) : cost;
  ScenarioRuns runs;
  sim::RecordingSource recording(source);
  {
    sim::Engine engine(placement, effective, config);
    runs.measured = engine.run(recording);
  }
  replay_ideals(placement, effective, recording.programs(), config, runs);
  return runs;
}

}  // namespace soc::trace
