// Trace serialization.
//
// Programs ARE this simulator's traces (one op per event, one stream per
// rank), so persisting them gives the same workflow the paper had with
// Extrae: record once on the "real" cluster configuration, then re-run
// DIMEMAS-style what-if replays offline — possibly in another process,
// another machine, or a later session.
//
// Format (line-oriented, '#' comments allowed):
//   soctrace v1 ranks=<N>
//   rank <r>
//   cpu <instructions> <flops> <dram_bytes> <profile> <phase>
//   gpu <flops> <dram_bytes> <mem_model> <parallelism> <dp> <phase>
//   h2d <bytes> <mem_model> <phase>
//   d2h <bytes> <mem_model> <phase>
//   send <peer> <bytes> <tag> <phase>
//   recv <peer> <bytes> <tag> <phase>
//   phase <id>
#pragma once

#include <string>
#include <vector>

#include "sim/op.h"

namespace soc::trace {

/// Serializes per-rank programs to the soctrace text format.
std::string export_programs(const std::vector<sim::Program>& programs);

/// Parses a soctrace document; throws soc::Error with a line number on
/// malformed input.
std::vector<sim::Program> import_programs(const std::string& text);

/// Convenience file wrappers.
void save_trace(const std::string& path,
                const std::vector<sim::Program>& programs);
std::vector<sim::Program> load_trace(const std::string& path);

}  // namespace soc::trace
