#include "systems/machines.h"

namespace soc::systems {

NodeConfig jetson_tx1(net::NicKind nic) {
  NodeConfig n;
  n.name = "jetson-tx1";
  n.cpu_cores = 4;

  // Cortex-A57: 3-wide out-of-order, ~16-stage pipeline, strong two-level
  // branch prediction, 48K/32K L1, 2 MB shared L2 (Table V).
  n.core.name = "cortex-a57";
  n.core.frequency_hz = 1.73e9;  // the boards cap at 1.73 GHz (§III-A)
  n.core.issue_width = 3.0;
  n.core.predictor = arch::PredictorKind::kTournament;
  n.core.predictor_entries = 4096;
  n.core.predictor_history_bits = 9;
  n.core.mispredict_penalty = 16.0;
  n.core.l1d = arch::CacheConfig{32 * kKiB, 2, 64};
  n.core.l2 = arch::CacheConfig{2 * kMiB, 16, 64};  // shared by 4 cores
  n.core.l2_hit_latency = 21.0;
  n.core.dram_latency = 190.0;
  n.core.memory_level_parallelism = 2.5;
  n.core.dtlb = arch::TlbConfig{512, 4, 4 * kKiB};
  n.core.tlb_walk_penalty = 28.0;

  n.has_gpu = true;
  n.gpu = gpu::tx1_gpu();

  n.dram.name = "lpddr4-4gb";
  n.dram.cpu_bandwidth = 14.7e9;
  n.dram.gpu_bandwidth = 20.0e9;
  n.dram.copy_bandwidth = 10.0e9;
  n.dram.capacity = 4 * kGiB;

  n.nic = (nic == net::NicKind::kGigabit) ? net::gigabit_nic()
                                          : net::ten_gigabit_nic();
  n.switch_config = net::SwitchConfig{};

  n.power.name = "jetson-tx1";
  n.power.idle_w = 6.0;  // module + carrier board + fan at rest
  n.power.cpu_core_active_w = 1.6;
  n.power.gpu_active_w = 8.0;
  n.power.dram_w_per_gbps = 0.25;
  n.power.nic_idle_w = n.nic.idle_power_w;
  n.power.nic_active_w = n.nic.active_power_w;
  n.power.host_overhead_w = 1.5;  // PSU / regulator losses at the wall
  return n;
}

NodeConfig thunderx_server() {
  NodeConfig n;
  n.name = "cavium-thunderx";
  n.cpu_cores = 96;  // dual socket, 48 cores each (Table V)

  // ThunderX CN88xx: 2-wide in-order ARMv8, short pipeline (Octeon III
  // lineage) with a simple predictor, 78K/32K L1, 16 MB shared L2 per
  // socket, no L3.  The weak predictor and the thin per-thread slice of
  // the shared L2 are the bottlenecks the paper's PLS analysis finds.
  n.core.name = "thunderx-cn88xx";
  n.core.frequency_hz = 2.0e9;
  n.core.issue_width = 2.0;
  n.core.predictor = arch::PredictorKind::kBimodal;
  n.core.predictor_entries = 1024;
  n.core.predictor_history_bits = 1;  // unused by bimodal
  n.core.mispredict_penalty = 9.0;    // short pipeline: cheap flushes
  n.core.l1d = arch::CacheConfig{32 * kKiB, 32, 64};
  n.core.l2 = arch::CacheConfig{16 * kMiB, 16, 64};  // per socket, 48 cores
  n.core.l2_hit_latency = 42.0;  // big shared LLC is slower to reach
  n.core.dram_latency = 130.0;  // quad-channel DDR4: bandwidth-rich
  n.core.memory_level_parallelism = 2.0;
  n.core.dtlb = arch::TlbConfig{256, 4, 4 * kKiB};  // thinner TLB reach
  n.core.tlb_walk_penalty = 36.0;
  n.l2_domain_cores = 48;    // one L2 per socket
  n.l2_thrash_factor = 1.6;  // many-thread conflict pressure on one LLC

  n.has_gpu = false;

  n.dram.name = "ddr4-quad";
  n.dram.cpu_bandwidth = 60.0e9;
  n.dram.gpu_bandwidth = 0.0;
  n.dram.copy_bandwidth = 20.0e9;
  n.dram.capacity = 128 * kGiB;

  // Single-node system: the NIC is irrelevant; intra-node messaging uses
  // shared memory.  Keep a server NIC for completeness.
  n.nic = net::server_ten_gigabit_nic();
  n.switch_config = net::SwitchConfig{};

  n.power.name = "cavium-thunderx";
  n.power.idle_w = 130.0;
  n.power.cpu_core_active_w = 1.9;
  n.power.gpu_active_w = 0.0;
  n.power.dram_w_per_gbps = 0.15;
  n.power.nic_idle_w = 2.0;
  n.power.nic_active_w = 1.0;
  n.power.host_overhead_w = 20.0;
  return n;
}

NodeConfig xeon_gtx980() {
  NodeConfig n;
  n.name = "xeon-gtx980";
  n.cpu_cores = 8;

  // Xeon E5-2620v3-class host (Haswell): 4-wide OoO, strong prediction,
  // 32K L1D, large L2/L3 (modeled as one 2.5 MB/core slice).
  n.core.name = "xeon-e5-haswell";
  n.core.frequency_hz = 2.4e9;
  n.core.issue_width = 4.0;
  n.core.predictor = arch::PredictorKind::kTournament;
  n.core.predictor_entries = 8192;
  n.core.predictor_history_bits = 14;
  n.core.mispredict_penalty = 14.0;
  n.core.l1d = arch::CacheConfig{32 * kKiB, 8, 64};
  n.core.l2 = arch::CacheConfig{2 * kMiB, 16, 64};
  n.l2_domain_cores = 1;  // private L2 + L3 slice per core
  n.core.l2_hit_latency = 14.0;
  n.core.dram_latency = 150.0;
  n.core.memory_level_parallelism = 4.0;
  n.core.dtlb = arch::TlbConfig{1536, 6, 4 * kKiB};
  n.core.tlb_walk_penalty = 22.0;

  n.has_gpu = true;
  n.gpu = gpu::gtx980_gpu();

  n.dram.name = "ddr4+gddr5";
  n.dram.cpu_bandwidth = 50.0e9;
  n.dram.gpu_bandwidth = 224.0e9;  // dedicated GDDR5 (Table VII)
  n.dram.copy_bandwidth = 12.0e9;  // PCIe 3.0 x16 effective
  n.dram.copy_call_overhead = 12 * kMicrosecond;
  n.dram.capacity = 32 * kGiB;

  n.nic = net::server_ten_gigabit_nic();
  n.switch_config = net::SwitchConfig{};

  n.power.name = "xeon-gtx980";
  n.power.idle_w = 45.0;
  n.power.cpu_core_active_w = 6.0;
  n.power.gpu_active_w = 130.0;
  n.power.dram_w_per_gbps = 0.10;
  n.power.nic_idle_w = n.nic.idle_power_w;
  n.power.nic_active_w = n.nic.active_power_w;
  n.power.host_overhead_w = 12.0;  // PSU/fan tax of a server chassis
  return n;
}

NodeConfig with_dvfs(NodeConfig node, double freq_scale) {
  if (freq_scale == 1.0) return node;
  node.core.frequency_hz *= freq_scale;
  node.gpu.frequency_hz *= freq_scale;
  // LPDDR bandwidth is only partially frequency-bound.
  const double mem_scale = 0.4 + 0.6 * freq_scale;
  node.dram.cpu_bandwidth *= mem_scale;
  node.dram.gpu_bandwidth *= mem_scale;
  node.gpu.memory_bandwidth *= mem_scale;
  // Active power along the voltage-frequency curve (f * V^2 with V
  // roughly linear in f over the usable range).
  const double pscale = power::dvfs_power_factor(node.power, freq_scale);
  node.power.cpu_core_active_w *= pscale;
  node.power.gpu_active_w *= pscale;
  return node;
}

}  // namespace soc::systems
