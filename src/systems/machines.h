// Machine configurations for the three systems the paper evaluates:
//   1. the proposed cluster node: Nvidia Jetson TX1 (4× Cortex-A57 +
//      2-SM Maxwell GPU, shared 4 GB LPDDR4, 1GbE on-board / 10GbE PCIe),
//   2. the many-core comparison: dual-socket Cavium ThunderX (96 ARMv8
//      cores, shared 16 MB L2 per socket, weak branch prediction),
//   3. the discrete-GPGPU comparison: Xeon E5 host + MSI GTX 980.
//
// Calibration sources: Tables V and VII of the paper plus public spec
// sheets; values the OCR garbled are replaced by the physically sensible
// figure and flagged in EXPERIMENTS.md.
#pragma once

#include <string>

#include "arch/core_model.h"
#include "gpu/device.h"
#include "mem/dram.h"
#include "net/network.h"
#include "power/power_model.h"

namespace soc::systems {

/// Everything the cluster layer needs to know about one node type.
struct NodeConfig {
  std::string name;
  arch::CoreConfig core;
  int cpu_cores = 4;
  bool has_gpu = false;
  gpu::DeviceConfig gpu;
  mem::DramConfig dram;
  net::NicConfig nic;
  net::SwitchConfig switch_config;
  power::NodePowerConfig power;
  /// Cores that share one L2 domain (core.l2 describes one domain).
  /// TX1: all 4 cores share the 2 MB L2; ThunderX: 48 cores per socket
  /// share one 16 MB L2; Xeon: modeled as per-core slices.
  int l2_domain_cores = 4;
  /// Extra L2 pressure multiplier applied on top of per-rank capacity
  /// sharing (thread thrash on very wide SoCs).
  double l2_thrash_factor = 1.0;

  bool operator==(const NodeConfig&) const = default;
};

/// Jetson TX1 node with the chosen NIC.
NodeConfig jetson_tx1(net::NicKind nic);

/// Dual-socket Cavium ThunderX server (the Table V comparison system).
NodeConfig thunderx_server();

/// Xeon E5-2620v3-class host carrying one MSI GTX 980 (Table VII).
NodeConfig xeon_gtx980();

/// The node re-clocked to relative frequency `freq_scale` (the DVFS
/// operating point the extension bench sweeps): CPU and GPU clocks scale
/// linearly, memory bandwidth follows the partially-frequency-bound
/// 0.4 + 0.6 f law, and active CPU/GPU power follows the node's
/// voltage-frequency curve (power::dvfs_power_factor).  freq_scale 1.0
/// returns the node unchanged.
NodeConfig with_dvfs(NodeConfig node, double freq_scale);

}  // namespace soc::systems
