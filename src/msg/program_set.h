// Program builder for SPMD workloads.
//
// Workload generators describe their communication with MPI-flavoured
// verbs; ProgramSet lowers everything to the engine's op vocabulary, one
// program per rank, with deterministic tag allocation.  Collectives are
// expanded into point-to-point algorithms at build time so that NIC
// contention applies to every stage of a tree or ring (design decision 5
// in DESIGN.md).
#pragma once

#include <vector>

#include "sim/op.h"

namespace soc::msg {

class ProgramSet {
 public:
  explicit ProgramSet(int ranks);

  int ranks() const { return ranks_; }

  /// Appends a raw op to one rank's program.
  void add(int rank, sim::Op op);

  /// Marks the start of a new phase on every rank and returns its id.
  int begin_phase();
  /// Current phase id.
  int phase() const { return phase_; }

  /// Allocates a fresh message tag (monotonic, never reused).
  int next_tag();

  /// Point-to-point: sender and receiver ops with a shared fresh tag.
  void send_recv(int src, int dst, Bytes bytes);

  /// Deadlock-free pairwise exchange: both ranks send `bytes` to each
  /// other (the lower rank sends first, the higher receives first).
  void exchange(int rank_a, int rank_b, Bytes bytes);

  /// Non-blocking pairwise exchange: posts Irecv+Isend on both ranks.
  /// Callers must eventually emit wait_all() on each rank to complete
  /// the requests (this is what lets halo traffic overlap compute).
  void exchange_async(int rank_a, int rank_b, Bytes bytes);

  /// Blocks `rank` until all its outstanding non-blocking requests done.
  void wait_all(int rank);

  /// Extracts the built programs (the builder is left empty).
  std::vector<sim::Program> take();

  const std::vector<sim::Program>& programs() const { return programs_; }

 private:
  int ranks_;
  int phase_ = 0;
  int tag_ = 0;
  std::vector<sim::Program> programs_;
};

}  // namespace soc::msg
