// MPI-style collectives lowered to point-to-point algorithms.
//
// Every collective expands into Send/Recv ops inside the ProgramSet, so a
// tree broadcast really occupies NICs stage by stage during replay.  The
// algorithms are the classical ones (binomial trees, recursive doubling,
// ring allgather, pairwise all-to-all) that OpenMPI would pick at these
// message sizes and communicator widths.
#pragma once

#include "msg/program_set.h"

namespace soc::msg {

/// Binomial-tree broadcast of `bytes` from `root` to all ranks.
void broadcast(ProgramSet& ps, int root, Bytes bytes);

/// Binomial-tree broadcast restricted to `members` (a sub-communicator);
/// `root_index` indexes into members.  Used for hierarchical patterns:
/// broadcast among node leaders, then fan out locally.
void broadcast_group(ProgramSet& ps, const std::vector<int>& members,
                     std::size_t root_index, Bytes bytes);

/// Binomial-tree reduction of `bytes` to `root`.
void reduce(ProgramSet& ps, int root, Bytes bytes);

/// Allreduce: recursive doubling for power-of-two communicators, otherwise
/// reduce-to-0 followed by broadcast.
void allreduce(ProgramSet& ps, Bytes bytes);

/// Scatter `bytes_per_rank` blocks from `root` (binomial tree; inner nodes
/// forward their whole subtree payload, mirroring gather).
void scatter(ProgramSet& ps, int root, Bytes bytes_per_rank);

/// Reduce-scatter: each rank ends up with 1/P of the reduced vector
/// (pairwise-halving for power-of-two, reduce+scatter otherwise).
void reduce_scatter(ProgramSet& ps, Bytes total_bytes);

/// Ring allreduce (reduce-scatter ring + allgather ring): 2(P−1) steps of
/// `bytes`/P messages — the bandwidth-optimal algorithm for large
/// payloads.  The collectives ablation bench compares it against
/// recursive doubling across message sizes.
void allreduce_ring(ProgramSet& ps, Bytes bytes);

/// Barrier: a zero-payload allreduce (8-byte token).
void barrier(ProgramSet& ps);

/// Gather `bytes_per_rank` from every rank to `root` (binomial tree; inner
/// nodes forward their accumulated subtree payload).
void gather(ProgramSet& ps, int root, Bytes bytes_per_rank);

/// Ring allgather: P-1 steps, each rank forwarding one block per step.
void allgather(ProgramSet& ps, Bytes bytes_per_rank);

/// All-to-all personalized exchange of `bytes_per_pair` between every rank
/// pair (pairwise XOR exchange when P is a power of two, cycle-ordered
/// ring shifts otherwise).
void alltoall(ProgramSet& ps, Bytes bytes_per_pair);

}  // namespace soc::msg
