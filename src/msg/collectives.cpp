#include "msg/collectives.h"

#include <bit>
#include <numeric>
#include <vector>

#include "common/error.h"

namespace soc::msg {

namespace {

bool is_pow2(int n) {
  return n > 0 && std::has_single_bit(static_cast<unsigned>(n));
}

int absolute(int rel, int root, int p) { return (rel + root) % p; }

void ring_shift(ProgramSet& ps, Bytes bytes);

}  // namespace

void broadcast(ProgramSet& ps, int root, Bytes bytes) {
  const int p = ps.ranks();
  SOC_CHECK(root >= 0 && root < p, "broadcast root out of range");
  if (p == 1) return;
  // Binomial tree over relative ranks: in round k, every holder r < 2^k
  // forwards to r + 2^k.
  for (int mask = 1; mask < p; mask <<= 1) {
    for (int r = 0; r < mask && r + mask < p; ++r) {
      ps.send_recv(absolute(r, root, p), absolute(r + mask, root, p), bytes);
    }
  }
}

void broadcast_group(ProgramSet& ps, const std::vector<int>& members,
                     std::size_t root_index, Bytes bytes) {
  const int p = static_cast<int>(members.size());
  SOC_CHECK(root_index < members.size(), "group root out of range");
  if (p <= 1) return;
  for (int mask = 1; mask < p; mask <<= 1) {
    for (int r = 0; r < mask && r + mask < p; ++r) {
      const int src = members[static_cast<std::size_t>(
          absolute(r, static_cast<int>(root_index), p))];
      const int dst = members[static_cast<std::size_t>(
          absolute(r + mask, static_cast<int>(root_index), p))];
      ps.send_recv(src, dst, bytes);
    }
  }
}

void reduce(ProgramSet& ps, int root, Bytes bytes) {
  const int p = ps.ranks();
  SOC_CHECK(root >= 0 && root < p, "reduce root out of range");
  if (p == 1) return;
  // Mirror of the broadcast tree: largest mask first, children send up.
  int top = 1;
  while (top < p) top <<= 1;
  for (int mask = top >> 1; mask >= 1; mask >>= 1) {
    for (int r = 0; r < mask && r + mask < p; ++r) {
      ps.send_recv(absolute(r + mask, root, p), absolute(r, root, p), bytes);
    }
  }
}

void allreduce(ProgramSet& ps, Bytes bytes) {
  const int p = ps.ranks();
  if (p == 1) return;
  if (is_pow2(p)) {
    // Recursive doubling: log2(P) symmetric exchanges.
    for (int mask = 1; mask < p; mask <<= 1) {
      for (int r = 0; r < p; ++r) {
        const int partner = r ^ mask;
        if (r < partner) ps.exchange(r, partner, bytes);
      }
    }
    return;
  }
  reduce(ps, 0, bytes);
  broadcast(ps, 0, bytes);
}

void barrier(ProgramSet& ps) { allreduce(ps, 8); }

void scatter(ProgramSet& ps, int root, Bytes bytes_per_rank) {
  const int p = ps.ranks();
  SOC_CHECK(root >= 0 && root < p, "scatter root out of range");
  if (p == 1) return;
  // Binomial tree, largest mask first: a parent hands each child the
  // payload for the child's entire subtree.
  int top = 1;
  while (top < p) top <<= 1;
  for (int mask = top >> 1; mask >= 1; mask >>= 1) {
    for (int r = 0; r < mask && r + mask < p; ++r) {
      const int subtree = std::min(mask, p - (r + mask));
      ps.send_recv(absolute(r, root, p), absolute(r + mask, root, p),
                   bytes_per_rank * subtree);
    }
  }
}

void reduce_scatter(ProgramSet& ps, Bytes total_bytes) {
  const int p = ps.ranks();
  if (p == 1) return;
  if (is_pow2(p)) {
    // Pairwise halving: each round exchanges half the remaining vector.
    Bytes chunk = total_bytes / 2;
    for (int mask = p / 2; mask >= 1; mask >>= 1) {
      for (int r = 0; r < p; ++r) {
        const int partner = r ^ mask;
        if (r < partner) ps.exchange(r, partner, std::max<Bytes>(chunk, 1));
      }
      chunk /= 2;
    }
    return;
  }
  reduce(ps, 0, total_bytes);
  scatter(ps, 0, std::max<Bytes>(total_bytes / p, 1));
}

void allreduce_ring(ProgramSet& ps, Bytes bytes) {
  const int p = ps.ranks();
  if (p == 1) return;
  const Bytes chunk = std::max<Bytes>(bytes / p, 1);
  // Reduce-scatter ring then allgather ring: 2(P−1) pipelined steps.
  for (int step = 0; step < 2 * (p - 1); ++step) {
    ring_shift(ps, chunk);
  }
}

void gather(ProgramSet& ps, int root, Bytes bytes_per_rank) {
  const int p = ps.ranks();
  SOC_CHECK(root >= 0 && root < p, "gather root out of range");
  if (p == 1) return;
  // Binomial tree; a child at relative rank r+mask owns the payload of its
  // whole subtree (min(mask, p - (r+mask)) blocks) when it sends up.
  int top = 1;
  while (top < p) top <<= 1;
  for (int mask = top >> 1; mask >= 1; mask >>= 1) {
    for (int r = 0; r < mask && r + mask < p; ++r) {
      const int subtree = std::min(mask, p - (r + mask));
      ps.send_recv(absolute(r + mask, root, p), absolute(r, root, p),
                   bytes_per_rank * subtree);
    }
  }
}

namespace {

// One ring shift: every rank sends `bytes` to its right neighbour and
// receives from its left.  With an even communicator, even ranks send
// while odd ranks receive, then roles flip — all transfers of a half-step
// proceed in parallel (blocking sends would otherwise serialize the whole
// ring).  Odd communicators fall back to rank-0-receives-first unwinding.
void ring_shift(ProgramSet& ps, Bytes bytes) {
  const int p = ps.ranks();
  std::vector<int> tags(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) tags[static_cast<std::size_t>(r)] = ps.next_tag();
  for (int r = 0; r < p; ++r) {
    const int right = (r + 1) % p;
    const int left = (r - 1 + p) % p;
    const int send_tag = tags[static_cast<std::size_t>(r)];
    const int recv_tag = tags[static_cast<std::size_t>(left)];
    const bool send_first = p % 2 == 0 ? r % 2 == 0 : r != 0;
    if (send_first) {
      ps.add(r, sim::send_op(right, bytes, send_tag));
      ps.add(r, sim::recv_op(left, bytes, recv_tag));
    } else {
      ps.add(r, sim::recv_op(left, bytes, recv_tag));
      ps.add(r, sim::send_op(right, bytes, send_tag));
    }
  }
}

}  // namespace

void allgather(ProgramSet& ps, Bytes bytes_per_rank) {
  const int p = ps.ranks();
  if (p == 1) return;
  // Ring: in each of the P-1 steps every rank forwards one block.
  for (int step = 0; step < p - 1; ++step) {
    ring_shift(ps, bytes_per_rank);
  }
}

void alltoall(ProgramSet& ps, Bytes bytes_per_pair) {
  const int p = ps.ranks();
  if (p == 1) return;
  if (is_pow2(p)) {
    // Pairwise exchange: step s pairs r with r^s; symmetric and safe.
    for (int step = 1; step < p; ++step) {
      for (int r = 0; r < p; ++r) {
        const int partner = r ^ step;
        if (r < partner) ps.exchange(r, partner, bytes_per_pair);
      }
    }
    return;
  }
  // Ring shifts: step s sends to (r+s)%p, receives from (r-s+p)%p.  The
  // pairs of one step decompose into gcd(s,p) cycles; the minimum rank of
  // each cycle receives first so every cycle can unwind.
  for (int step = 1; step < p; ++step) {
    std::vector<int> tags(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) tags[static_cast<std::size_t>(r)] = ps.next_tag();
    const int cycles = std::gcd(step, p);
    std::vector<bool> recv_first(static_cast<std::size_t>(p), false);
    for (int c = 0; c < cycles; ++c) {
      // The cycle containing c; its minimum element is c itself, since
      // cycle members are c, c+step, c+2*step, ... (mod p).
      recv_first[static_cast<std::size_t>(c)] = true;
    }
    for (int r = 0; r < p; ++r) {
      const int dst = (r + step) % p;
      const int src = (r - step + p) % p;
      const int send_tag = tags[static_cast<std::size_t>(r)];
      const int recv_tag = tags[static_cast<std::size_t>(src)];
      if (recv_first[static_cast<std::size_t>(r)]) {
        ps.add(r, sim::recv_op(src, bytes_per_pair, recv_tag));
        ps.add(r, sim::send_op(dst, bytes_per_pair, send_tag));
      } else {
        ps.add(r, sim::send_op(dst, bytes_per_pair, send_tag));
        ps.add(r, sim::recv_op(src, bytes_per_pair, recv_tag));
      }
    }
  }
}

}  // namespace soc::msg
