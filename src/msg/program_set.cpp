#include "msg/program_set.h"

#include "common/error.h"

namespace soc::msg {

ProgramSet::ProgramSet(int ranks) : ranks_(ranks) {
  SOC_CHECK(ranks > 0, "need at least one rank");
  programs_.resize(static_cast<std::size_t>(ranks));
}

void ProgramSet::add(int rank, sim::Op op) {
  SOC_CHECK(rank >= 0 && rank < ranks_, "rank out of range");
  op.phase = phase_;
  programs_[static_cast<std::size_t>(rank)].push_back(op);
}

int ProgramSet::begin_phase() {
  ++phase_;
  for (int r = 0; r < ranks_; ++r) {
    programs_[static_cast<std::size_t>(r)].push_back(sim::phase_op(phase_));
  }
  return phase_;
}

int ProgramSet::next_tag() { return tag_++; }

void ProgramSet::send_recv(int src, int dst, Bytes bytes) {
  SOC_CHECK(src != dst, "self message");
  const int tag = next_tag();
  add(src, sim::send_op(dst, bytes, tag));
  add(dst, sim::recv_op(src, bytes, tag));
}

void ProgramSet::exchange(int rank_a, int rank_b, Bytes bytes) {
  SOC_CHECK(rank_a != rank_b, "self exchange");
  const int lo = rank_a < rank_b ? rank_a : rank_b;
  const int hi = rank_a < rank_b ? rank_b : rank_a;
  const int tag_fwd = next_tag();
  const int tag_bwd = next_tag();
  // lo: send then recv; hi: recv then send — rendezvous-safe.
  add(lo, sim::send_op(hi, bytes, tag_fwd));
  add(lo, sim::recv_op(hi, bytes, tag_bwd));
  add(hi, sim::recv_op(lo, bytes, tag_fwd));
  add(hi, sim::send_op(lo, bytes, tag_bwd));
}

void ProgramSet::exchange_async(int rank_a, int rank_b, Bytes bytes) {
  SOC_CHECK(rank_a != rank_b, "self exchange");
  const int tag_ab = next_tag();
  const int tag_ba = next_tag();
  add(rank_a, sim::irecv_op(rank_b, bytes, tag_ba));
  add(rank_a, sim::isend_op(rank_b, bytes, tag_ab));
  add(rank_b, sim::irecv_op(rank_a, bytes, tag_ab));
  add(rank_b, sim::isend_op(rank_a, bytes, tag_ba));
}

void ProgramSet::wait_all(int rank) { add(rank, sim::wait_all_op()); }

std::vector<sim::Program> ProgramSet::take() {
  std::vector<sim::Program> out = std::move(programs_);
  programs_.clear();
  programs_.resize(static_cast<std::size_t>(ranks_));
  return out;
}

}  // namespace soc::msg
