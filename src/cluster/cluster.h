// Top-level public API: build a cluster from a node configuration and run
// workloads on it.  This is what the examples and the benchmark harness
// program against.
//
//   soc::cluster::Cluster tx(soc::cluster::ClusterConfig{
//       systems::jetson_tx1(net::NicKind::kTenGigabit), /*nodes=*/16,
//       /*ranks=*/16});
//   auto result = tx.run(*workloads::make_workload("jacobi"));
//   std::cout << result.seconds << "s, " << result.gflops << " GFLOP/s\n";
#pragma once

#include "arch/pmu.h"
#include "cluster/cost_model.h"
#include "power/power_model.h"
#include "sim/engine.h"
#include "systems/machines.h"
#include "trace/replay.h"
#include "workloads/workload.h"

namespace soc::cluster {

struct ClusterConfig {
  systems::NodeConfig node;
  int nodes = 1;
  int ranks = 1;  ///< Total MPI ranks (must be a multiple of nodes).
};

/// Per-run knobs (defaults match the paper's standard setup).
struct RunOptions {
  sim::MemModel mem_model = sim::MemModel::kHostDevice;
  double gpu_work_fraction = 1.0;
  double size_scale = 1.0;
  bool overlap_halos = false;
  sim::EngineConfig engine;
  /// Optional (non-owning) observer attached to the engine for the run —
  /// see src/obs/ for metrics and Chrome-trace implementations.
  sim::EngineObserver* observer = nullptr;
};

/// Everything a bench needs from one run.
struct RunResult {
  sim::RunStats stats;
  power::EnergyReport energy;
  arch::CounterSet counters;

  double seconds = 0.0;
  double gflops = 0.0;           ///< Achieved GFLOP/s (whole cluster).
  double mflops_per_watt = 0.0;  ///< Energy efficiency.
  double joules = 0.0;
  double average_watts = 0.0;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  const ClusterConfig& config() const { return config_; }

  /// Runs a workload to completion and meters it.
  RunResult run(const workloads::Workload& workload,
                const RunOptions& options = {}) const;

  /// Runs the three DIMEMAS-style scenarios (measured / ideal network /
  /// ideal load balance) over the same generated programs.
  trace::ScenarioRuns replay_scenarios(const workloads::Workload& workload,
                                       const RunOptions& options = {}) const;

 private:
  workloads::BuildContext build_context(const RunOptions& options) const;
  sim::EngineConfig engine_config(const RunOptions& options) const;
  RunResult meter(const sim::RunStats& stats,
                  const ClusterCostModel& cost) const;

  ClusterConfig config_;
};

}  // namespace soc::cluster
