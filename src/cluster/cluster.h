// Top-level public API: describe a run as a RunRequest and execute it.
//
// A RunRequest bundles everything one metered simulation needs — the
// workload (by registry tag or non-owning reference), the cluster shape,
// and the per-run options — so runs are first-class values that can be
// enumerated into grids and sharded across host threads by the sweep
// subsystem (src/sweep/).  cluster::run(request) is the single entry
// point; the Cluster class survives as a thin convenience wrapper over
// it, so existing examples and tests keep compiling:
//
//   soc::cluster::RunRequest request;
//   request.workload = "jacobi";
//   request.config = {systems::jetson_tx1(net::NicKind::kTenGigabit),
//                     /*nodes=*/16, /*ranks=*/16};
//   auto result = soc::cluster::run(request);
//   std::cout << result.seconds << "s, " << result.gflops << " GFLOP/s\n";
#pragma once

#include <memory>
#include <string>

#include "arch/pmu.h"
#include "cluster/cost_model.h"
#include "power/power_model.h"
#include "sim/engine.h"
#include "systems/machines.h"
#include "trace/replay.h"
#include "workloads/scenario.h"
#include "workloads/workload.h"

namespace soc::obs {
class MetricsRegistry;
}  // namespace soc::obs

namespace soc::prof {
struct Profile;
struct RunTrace;
}  // namespace soc::prof

namespace soc::cluster {

struct ClusterConfig {
  systems::NodeConfig node;
  int nodes = 1;
  int ranks = 1;  ///< Total MPI ranks (must be a multiple of nodes).

  bool operator==(const ClusterConfig&) const = default;
};

/// Per-run knobs (defaults match the paper's standard setup).
struct RunOptions {
  sim::MemModel mem_model = sim::MemModel::kHostDevice;
  double gpu_work_fraction = 1.0;
  double size_scale = 1.0;
  bool overlap_halos = false;
  sim::EngineConfig engine;
  /// Optional (non-owning) observer attached to the engine for the run —
  /// see src/obs/ for metrics and Chrome-trace implementations.
  sim::EngineObserver* observer = nullptr;
};

/// Everything a bench needs from one run.
struct RunResult {
  sim::RunStats stats;
  power::EnergyReport energy;
  arch::CounterSet counters;

  double seconds = 0.0;
  double gflops = 0.0;           ///< Achieved GFLOP/s (whole cluster).
  double mflops_per_watt = 0.0;  ///< Energy efficiency.
  double joules = 0.0;
  double average_watts = 0.0;
};

/// One fully-specified simulation: the unit of work the sweep subsystem
/// shards across host threads.  The workload is named either by registry
/// tag (`workload`, resolved through workloads::make_workload) or by a
/// non-owning reference (`workload_ref`, which wins when both are set and
/// must outlive the run).  Requests are plain values: enumerating a grid
/// of them is how every bench binary expresses its experiment.
struct RunRequest {
  std::string workload;
  const workloads::Workload* workload_ref = nullptr;
  ClusterConfig config;
  RunOptions options;

  /// Fault-injection / noise / checkpoint decorators applied over the
  /// workload's op stream (value-semantic; serialized into run reports
  /// when enabled).  Empty by default: the run is then byte-identical to
  /// the pre-scenario API.
  workloads::ScenarioConfig scenario;

  /// Per-run observability sinks, both optional.  When either is set the
  /// run attaches its own obs::MetricsObserver (composed with
  /// options.observer when that is also set), copies the resulting
  /// registry into `metrics`, and/or writes a soccluster-run-report/v1
  /// document to `report_path`.  Each request owns its sinks, so
  /// concurrent sweep runs never share observer state.
  obs::MetricsRegistry* metrics = nullptr;
  std::string report_path;

  /// Critical-path profiling sinks, all optional.  When any is set the
  /// run attaches a prof::Profiler (composed with the other observers),
  /// reconstructs the dependency DAG, and runs the single-pass
  /// attribution + what-if analysis (src/prof/): `profile` receives the
  /// analyzed prof::Profile, `profile_json_path` the deterministic
  /// soccluster-critical-path/v1 document, and `profile_folded_path` the
  /// flamegraph-compatible folded stacks.  When none is set no profiler
  /// is attached and the run's cost is unchanged.
  prof::Profile* profile = nullptr;
  std::string profile_json_path;
  std::string profile_folded_path;
  /// Receives a copy of the reconstructed prof::RunTrace (implies
  /// profiling like the sinks above); feed it to prof::retime() for
  /// DVFS / power-cap what-ifs without re-running.
  prof::RunTrace* run_trace = nullptr;

  /// Engine self-telemetry sink (non-owning; must outlive the run).
  /// When set it is attached via EngineConfig::telemetry and filled with
  /// the engine's own counters and wall-clock timings (sim/telemetry.h);
  /// render with obs/engine_telemetry.h or feed prof::explain_scaling.
  /// Never changes the committed event stream or the metered result.
  sim::EngineTelemetry* engine_telemetry = nullptr;
};

/// Validates a cluster shape; throws soc::Error on a bad one.  Shared by
/// run() and the Cluster constructor.
void validate(const ClusterConfig& config);

/// Resolves a request's workload: `workload_ref` when set, otherwise a
/// fresh instance of the named workload, parked in `owned`.
const workloads::Workload& resolve_workload(
    const RunRequest& request, std::unique_ptr<workloads::Workload>& owned);

/// Runs one request to completion and meters it.  This is the single
/// entry point every metered simulation in the repo lowers to.
RunResult run(const RunRequest& request);

/// Same run against a caller-resolved workload and a prebuilt cost model
/// (the sweep runner memoizes ClusterCostModel construction across
/// requests; the model must match the request's node config, shape, and
/// the workload's cpu_profile()).
RunResult run(const RunRequest& request, const workloads::Workload& workload,
              const ClusterCostModel& cost);

/// Runs the three DIMEMAS-style scenarios (measured / ideal network /
/// ideal load balance) over the same generated programs.  The request's
/// observability sinks are ignored — scenario replays feed the
/// efficiency decomposition, not per-run artifacts.
trace::ScenarioRuns replay_scenarios(const RunRequest& request);
trace::ScenarioRuns replay_scenarios(const RunRequest& request,
                                     const workloads::Workload& workload,
                                     const ClusterCostModel& cost);

/// Convenience wrapper retained for existing callers; new code should
/// build RunRequests (the request form is what the sweep runner shards).
/// Both methods are thin shims that lower onto cluster::run /
/// cluster::replay_scenarios.
class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  const ClusterConfig& config() const { return config_; }

  /// Runs a workload to completion and meters it (wraps cluster::run).
  RunResult run(const workloads::Workload& workload,
                const RunOptions& options = {}) const;

  /// Wraps cluster::replay_scenarios.
  trace::ScenarioRuns replay_scenarios(const workloads::Workload& workload,
                                       const RunOptions& options = {}) const;

 private:
  ClusterConfig config_;
};

}  // namespace soc::cluster
