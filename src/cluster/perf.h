// Engine-only performance harness.
//
// Times Engine::run over pre-built programs — workload generation, cost
// model construction, and reporting all happen outside the timed region —
// so the number it reports is the replay engine's own throughput
// (committed events per wall-clock second), comparable across commits on
// the same machine.  Each case also records the run's event checksum:
// the harness doubles as a cross-build determinism probe (CI compares the
// checksum lines of an -O2 build against a sanitizer build).
//
// The `soccluster-perf-report/v1` artifact this emits is the
// perf-regression trajectory: every future change to src/sim/ lands with
// a before/after BENCH_engine.json from the same machine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "prof/selfprof.h"

namespace soc::cluster {

/// One engine-only replay target (mirrors the fig5/fig6 bench shapes).
struct PerfCase {
  std::string name;      ///< Stable label, e.g. "fig5/hpl".
  std::string workload;  ///< Registry name for workloads::make_workload.
  int nodes = 16;
  int ranks = 16;
  bool ideal_network = false;
  /// Engine shard count (EngineConfig::shards); 1 = serial.  Sharded
  /// cases exercise the rank-partitioned parallel engine; their event
  /// checksum must equal the serial case's.
  int shards = 1;
  /// Name of the case this one is a speedup of (typically the serial row
  /// for the same shape); empty = no speedup reported.
  std::string baseline;
};

struct PerfConfig {
  int reps = 5;  ///< Timed repetitions per case (one warm-up rep extra).
  /// Run one extra telemetry-attached repetition per case (outside the
  /// timed region, so the throughput numbers are unaffected) and attach
  /// a zero-residual scaling-loss decomposition (prof::explain_scaling)
  /// to every sample that names a baseline.
  bool explain_scaling = false;
};

/// Measurement for one case, aggregated over the timed repetitions.
struct PerfSample {
  std::string name;
  std::uint64_t events = 0;    ///< Committed events per repetition.
  std::uint64_t checksum = 0;  ///< RunStats::event_checksum (rep-invariant).
  int reps = 0;
  int shards = 1;
  double wall_seconds = 0.0;       ///< Total over the timed reps.
  double events_per_second = 0.0;
  double allocs_per_event = 0.0;   ///< 0 unless soc_alloc_hooks is linked.
  std::uint64_t memo_hits = 0;     ///< Cost-model cache hits (all reps).
  std::uint64_t memo_misses = 0;
  std::string baseline;  ///< PerfCase::baseline (empty = no speedup row).
  /// events_per_second of this sample over the named baseline sample's
  /// (0 when `baseline` is empty).  > 1 means this configuration is
  /// faster; the sharded rows report their parallel speedup here.
  double speedup_vs_baseline = 0.0;
  /// Scaling-loss decomposition vs the named baseline, filled only when
  /// PerfConfig::explain_scaling is set and `baseline` is non-empty.
  bool has_scaling = false;
  prof::ScalingDecomposition scaling;
};

struct PerfReport {
  std::vector<PerfSample> samples;
  double total_events = 0.0;        ///< Sum over samples, all reps.
  double total_wall_seconds = 0.0;
  double events_per_second = 0.0;   ///< Aggregate throughput.
  bool alloc_counter_live = false;  ///< soc_alloc_hooks linked into binary.
};

/// The fig5/fig6 replay shapes at 16 nodes (the scalability benches'
/// largest point), measured and ideal-network each.  `quick` trims to two
/// small 4-node cases for CI smoke use.
std::vector<PerfCase> default_perf_cases(bool quick);

/// Runs every case: builds programs and cost model, one untimed warm-up
/// repetition, then `config.reps` timed Engine::run calls.
PerfReport measure_engine(const std::vector<PerfCase>& cases,
                          const PerfConfig& config);

/// Renders the `soccluster-perf-report/v1` JSON document.
std::string perf_report_json(const PerfReport& report);

/// Writes perf_report_json to `path` (parent directory must exist).
void write_perf_report(const std::string& path, const PerfReport& report);

/// Reads the samples back out of a perf_report_json document (the
/// committed BENCH_engine.json baseline).  Only the comparison fields
/// (name, events, checksum, events_per_second, shards, baseline,
/// speedup_vs_baseline) are recovered.
std::vector<PerfSample> load_perf_baseline(const std::string& path);

/// Compares a fresh report against a committed baseline: cases present in
/// both must agree exactly on events and checksum (simulation
/// determinism is machine-independent) and may not drop below
/// `tolerance` x the baseline's events/s (wall-clock is machine-dependent,
/// so the throughput gate is deliberately loose).  Sharded speedup rows
/// additionally may not drop below `speedup_tolerance` x the baseline's
/// speedup_vs_baseline — parallel-efficiency regressions are caught even
/// when absolute throughput moved for unrelated reasons.  Returns an
/// empty string on success, else a newline-terminated failure list.  At
/// least one case must match by name.
std::string diff_perf_baseline(const PerfReport& report,
                               const std::vector<PerfSample>& baseline,
                               double tolerance, double speedup_tolerance);

}  // namespace soc::cluster
