#include "cluster/report.h"

#include <charconv>
#include <fstream>

#include "common/error.h"
#include "obs/json.h"

namespace soc::cluster {

const char* mem_model_name(sim::MemModel mm) {
  switch (mm) {
    case sim::MemModel::kHostDevice: return "host-device";
    case sim::MemModel::kZeroCopy: return "zero-copy";
    case sim::MemModel::kUnified: return "unified";
  }
  return "?";
}

std::string checksum_hex(std::uint64_t v) {
  char buf[17] = "0000000000000000";
  char tmp[17];
  const auto r = std::to_chars(tmp, tmp + sizeof(tmp), v, 16);
  const auto len = static_cast<std::size_t>(r.ptr - tmp);
  for (std::size_t i = 0; i < len; ++i) buf[16 - len + i] = tmp[i];
  return std::string("0x") + buf;
}

namespace {

void write_energy(obs::JsonWriter& w, const power::EnergyReport& e) {
  w.begin_object();
  w.field("joules", e.joules);
  w.field("average_watts", e.average_watts);
  w.field("peak_watts", e.peak_watts);
  w.field("seconds", e.seconds);
  w.key("breakdown");
  w.begin_object();
  w.field("idle", e.breakdown.idle);
  w.field("cpu", e.breakdown.cpu);
  w.field("gpu", e.breakdown.gpu);
  w.field("nic", e.breakdown.nic);
  w.field("dram", e.breakdown.dram);
  w.end_object();
  w.end_object();
}

void write_counters(obs::JsonWriter& w, const arch::CounterSet& c) {
  w.begin_object();
  for (std::size_t i = 0; i < arch::kPmuEventCount; ++i) {
    const auto e = static_cast<arch::PmuEvent>(i);
    w.field(arch::pmu_event_name(e), c[e]);
  }
  w.end_object();
}

void write_rank(obs::JsonWriter& w, const sim::RankStats& r) {
  w.begin_object();
  w.field("finish_time_ns", r.finish_time);
  w.field("cpu_busy_ns", r.cpu_busy);
  w.field("gpu_busy_ns", r.gpu_busy);
  w.field("gpu_queue_wait_ns", r.gpu_queue_wait);
  w.field("copy_busy_ns", r.copy_busy);
  w.field("send_blocked_ns", r.send_blocked);
  w.field("recv_blocked_ns", r.recv_blocked);
  w.field("msg_overhead_ns", r.msg_overhead);
  w.field("net_bytes_sent", static_cast<std::int64_t>(r.net_bytes_sent));
  w.field("net_bytes_received",
          static_cast<std::int64_t>(r.net_bytes_received));
  w.field("intra_bytes_sent", static_cast<std::int64_t>(r.intra_bytes_sent));
  w.field("dram_bytes", static_cast<std::int64_t>(r.dram_bytes));
  w.field("flops", r.flops);
  w.field("instructions", r.instructions);
  w.field("messages_sent", r.messages_sent);
  w.field("messages_received", r.messages_received);
  w.end_object();
}

}  // namespace

std::string report_json(const ClusterConfig& config,
                        const RunOptions& options,
                        const std::string& workload,
                        const RunResult& result,
                        const obs::MetricsRegistry* metrics) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", "soccluster-run-report/v1");
  w.field("workload", std::string_view(workload));
  w.newline();

  w.key("config");
  w.begin_object();
  w.field("node", std::string_view(config.node.name));
  w.field("nodes", config.nodes);
  w.field("ranks", config.ranks);
  w.field("mem_model", mem_model_name(options.mem_model));
  w.field("gpu_work_fraction", options.gpu_work_fraction);
  w.field("size_scale", options.size_scale);
  w.field("overlap_halos", options.overlap_halos);
  w.field("eager_threshold_bytes",
          static_cast<std::int64_t>(options.engine.eager_threshold));
  w.field("bisection_bandwidth", options.engine.bisection_bandwidth);
  w.end_object();
  w.newline();

  w.key("result");
  w.begin_object();
  w.field("seconds", result.seconds);
  w.field("gflops", result.gflops);
  w.field("mflops_per_watt", result.mflops_per_watt);
  w.field("joules", result.joules);
  w.field("average_watts", result.average_watts);
  w.field("makespan_ns", result.stats.makespan);
  w.field("event_checksum", checksum_hex(result.stats.event_checksum));
  w.field("events_committed", result.stats.events_committed);
  w.field("total_net_bytes",
          static_cast<std::int64_t>(result.stats.total_net_bytes));
  w.field("total_dram_bytes",
          static_cast<std::int64_t>(result.stats.total_dram_bytes));
  w.field("total_gpu_dram_bytes",
          static_cast<std::int64_t>(result.stats.total_gpu_dram_bytes));
  w.field("total_flops", result.stats.total_flops);
  w.field("total_gpu_flops", result.stats.total_gpu_flops);
  w.newline();
  w.key("ranks");
  w.begin_array();
  for (const sim::RankStats& r : result.stats.ranks) {
    w.newline();
    write_rank(w, r);
  }
  w.end_array();
  w.end_object();
  w.newline();

  w.key("energy");
  write_energy(w, result.energy);
  w.newline();

  w.key("counters");
  write_counters(w, result.counters);
  w.newline();

  if (metrics != nullptr) {
    w.key("metrics");
    metrics->write_json(w);
    w.newline();
  }
  w.end_object();

  std::string out = w.str();
  out += '\n';
  return out;
}

void write_report(const std::string& path, const ClusterConfig& config,
                  const RunOptions& options, const std::string& workload,
                  const RunResult& result,
                  const obs::MetricsRegistry* metrics) {
  std::ofstream f(path, std::ios::binary);
  SOC_CHECK(f.good(), "cannot open report file for writing: " + path);
  const std::string doc =
      report_json(config, options, workload, result, metrics);
  f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  SOC_CHECK(f.good(), "failed writing report file: " + path);
}

}  // namespace soc::cluster
