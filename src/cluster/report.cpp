#include "cluster/report.h"

#include <charconv>
#include <fstream>

#include "common/error.h"
#include "obs/json.h"

namespace soc::cluster {

const char* mem_model_name(sim::MemModel mm) {
  switch (mm) {
    case sim::MemModel::kHostDevice: return "host-device";
    case sim::MemModel::kZeroCopy: return "zero-copy";
    case sim::MemModel::kUnified: return "unified";
  }
  return "?";
}

std::string checksum_hex(std::uint64_t v) {
  char buf[17] = "0000000000000000";
  char tmp[17];
  const auto r = std::to_chars(tmp, tmp + sizeof(tmp), v, 16);
  const auto len = static_cast<std::size_t>(r.ptr - tmp);
  for (std::size_t i = 0; i < len; ++i) buf[16 - len + i] = tmp[i];
  return std::string("0x") + buf;
}

namespace {

void write_breakdown(obs::JsonWriter& w, const power::EnergyBreakdown& b) {
  w.begin_object();
  w.field("idle", b.idle);
  w.field("cpu", b.cpu);
  w.field("gpu", b.gpu);
  w.field("nic", b.nic);
  w.field("dram", b.dram);
  w.end_object();
}

void write_energy(obs::JsonWriter& w, const power::EnergyReport& e) {
  w.begin_object();
  w.field("joules", e.joules);
  w.field("average_watts", e.average_watts);
  w.field("peak_watts", e.peak_watts);
  w.field("seconds", e.seconds);
  w.key("breakdown");
  write_breakdown(w, e.breakdown);
  // The 1 Hz wall-socket trace, one object per second: total draw plus
  // the per-component split (samples_parts is index-parallel with
  // samples_w by construction).
  w.newline();
  w.key("samples_1hz");
  w.begin_array();
  for (std::size_t s = 0; s < e.samples_w.size(); ++s) {
    w.newline();
    w.begin_object();
    w.field("watts", e.samples_w[s]);
    const power::EnergyBreakdown p =
        s < e.samples_parts.size() ? e.samples_parts[s]
                                   : power::EnergyBreakdown{};
    w.field("idle", p.idle);
    w.field("cpu", p.cpu);
    w.field("gpu", p.gpu);
    w.field("nic", p.nic);
    w.field("dram", p.dram);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_counters(obs::JsonWriter& w, const arch::CounterSet& c) {
  w.begin_object();
  for (std::size_t i = 0; i < arch::kPmuEventCount; ++i) {
    const auto e = static_cast<arch::PmuEvent>(i);
    w.field(arch::pmu_event_name(e), c[e]);
  }
  w.end_object();
}

void write_rank(obs::JsonWriter& w, const sim::RankStats& r) {
  w.begin_object();
  w.field("finish_time_ns", r.finish_time);
  w.field("cpu_busy_ns", r.cpu_busy);
  w.field("gpu_busy_ns", r.gpu_busy);
  w.field("gpu_queue_wait_ns", r.gpu_queue_wait);
  w.field("copy_busy_ns", r.copy_busy);
  w.field("send_blocked_ns", r.send_blocked);
  w.field("recv_blocked_ns", r.recv_blocked);
  w.field("msg_overhead_ns", r.msg_overhead);
  w.field("net_bytes_sent", static_cast<std::int64_t>(r.net_bytes_sent));
  w.field("net_bytes_received",
          static_cast<std::int64_t>(r.net_bytes_received));
  w.field("intra_bytes_sent", static_cast<std::int64_t>(r.intra_bytes_sent));
  w.field("dram_bytes", static_cast<std::int64_t>(r.dram_bytes));
  w.field("flops", r.flops);
  w.field("instructions", r.instructions);
  w.field("messages_sent", r.messages_sent);
  w.field("messages_received", r.messages_received);
  w.end_object();
}

}  // namespace

void write_scenario(obs::JsonWriter& w, const workloads::ScenarioConfig& s) {
  w.begin_object();
  w.key("faults");
  w.begin_array();
  for (const workloads::FaultSpec& f : s.faults) {
    w.newline();
    w.begin_object();
    w.field("kind", workloads::fault_kind_name(f.kind));
    switch (f.kind) {
      case workloads::FaultSpec::Kind::kNodeCrash:
        w.field("node", f.node);
        w.field("t_seconds", f.start_seconds);
        w.field("downtime_seconds", f.downtime_seconds);
        break;
      case workloads::FaultSpec::Kind::kLinkFlap:
        w.field("node", f.node);
        w.field("t0_seconds", f.start_seconds);
        w.field("t1_seconds", f.end_seconds);
        break;
      case workloads::FaultSpec::Kind::kStraggler:
        w.field("rank", f.rank);
        w.field("slowdown", f.slowdown);
        break;
    }
    w.end_object();
  }
  w.end_array();
  if (s.noise.enabled()) {
    w.newline();
    w.key("noise");
    w.begin_object();
    w.field("seed", static_cast<std::int64_t>(s.noise.seed));
    w.field("interval_seconds", s.noise.interval_seconds);
    w.field("duration_seconds", s.noise.duration_seconds);
    w.field("jitter", s.noise.jitter);
    w.end_object();
  }
  if (s.checkpoint.enabled()) {
    w.newline();
    w.key("checkpoint");
    w.begin_object();
    w.field("size_bytes", s.checkpoint.size_bytes);
    w.field("bandwidth", s.checkpoint.bandwidth);
    w.field("mtti_seconds", s.checkpoint.mtti_seconds);
    w.field("runtime_seconds", s.checkpoint.runtime_seconds);
    const double write_seconds =
        s.checkpoint.size_bytes / s.checkpoint.bandwidth;
    w.field("write_seconds", write_seconds);
    w.field("daly_interval_seconds",
            workloads::daly_optimal_interval(write_seconds,
                                             s.checkpoint.mtti_seconds));
    w.end_object();
  }
  w.end_object();
}

std::string report_json(const ClusterConfig& config,
                        const RunOptions& options,
                        const std::string& workload,
                        const RunResult& result,
                        const obs::MetricsRegistry* metrics,
                        const workloads::ScenarioConfig* scenario) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", "soccluster-run-report/v1");
  w.field("workload", std::string_view(workload));
  w.newline();

  w.key("config");
  w.begin_object();
  w.field("node", std::string_view(config.node.name));
  w.field("nodes", config.nodes);
  w.field("ranks", config.ranks);
  w.field("mem_model", mem_model_name(options.mem_model));
  w.field("gpu_work_fraction", options.gpu_work_fraction);
  w.field("size_scale", options.size_scale);
  w.field("overlap_halos", options.overlap_halos);
  w.field("eager_threshold_bytes",
          static_cast<std::int64_t>(options.engine.eager_threshold));
  w.field("bisection_bandwidth", options.engine.bisection_bandwidth);
  w.end_object();
  w.newline();

  // Only an enabled scenario is serialized: scenario-free reports stay
  // byte-identical to the pre-scenario schema.
  if (scenario != nullptr && scenario->enabled()) {
    w.key("scenario");
    write_scenario(w, *scenario);
    w.newline();
  }

  w.key("result");
  w.begin_object();
  w.field("seconds", result.seconds);
  w.field("gflops", result.gflops);
  w.field("mflops_per_watt", result.mflops_per_watt);
  w.field("joules", result.joules);
  w.field("average_watts", result.average_watts);
  w.field("makespan_ns", result.stats.makespan);
  w.field("event_checksum", checksum_hex(result.stats.event_checksum));
  w.field("events_committed", result.stats.events_committed);
  w.field("total_net_bytes",
          static_cast<std::int64_t>(result.stats.total_net_bytes));
  w.field("total_dram_bytes",
          static_cast<std::int64_t>(result.stats.total_dram_bytes));
  w.field("total_gpu_dram_bytes",
          static_cast<std::int64_t>(result.stats.total_gpu_dram_bytes));
  w.field("total_flops", result.stats.total_flops);
  w.field("total_gpu_flops", result.stats.total_gpu_flops);
  w.newline();
  w.key("ranks");
  w.begin_array();
  for (const sim::RankStats& r : result.stats.ranks) {
    w.newline();
    write_rank(w, r);
  }
  w.end_array();
  w.end_object();
  w.newline();

  w.key("energy");
  write_energy(w, result.energy);
  w.newline();

  w.key("counters");
  write_counters(w, result.counters);
  w.newline();

  if (metrics != nullptr) {
    w.key("metrics");
    metrics->write_json(w);
    w.newline();
  }
  w.end_object();

  std::string out = w.str();
  out += '\n';
  return out;
}

core::EnergyRoofline energy_roofline_model(const systems::NodeConfig& node,
                                           bool dp) {
  core::EnergyRoofline model;
  model.roofline.peak_flops =
      dp ? node.gpu.peak_dp_flops() : node.gpu.peak_sp_flops();
  model.roofline.memory_bandwidth = node.dram.gpu_bandwidth;
  model.roofline.network_bandwidth = node.nic.effective_bandwidth;
  model.power = node.power;
  return model;
}

std::string energy_roofline_json(
    const std::string& label, const std::vector<RunRequest>& requests,
    const std::vector<RunResult>& results,
    const std::vector<core::EnergyRooflineMeasurement>& measurements) {
  SOC_CHECK(requests.size() == results.size() &&
                requests.size() == measurements.size(),
            "energy roofline: requests/results/measurements must be parallel");
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", "soccluster-energy-roofline/v1");
  w.field("label", std::string_view(label));
  w.newline();
  w.key("runs");
  w.begin_array();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const RunRequest& req = requests[i];
    const RunResult& res = results[i];
    const core::EnergyRooflineMeasurement& m = measurements[i];
    w.newline();
    w.begin_object();
    w.field("workload", std::string_view(m.roofline.benchmark));
    w.field("node", std::string_view(req.config.node.name));
    w.field("nodes", req.config.nodes);
    w.field("ranks", req.config.ranks);
    w.field("gpu_work_fraction", req.options.gpu_work_fraction);
    w.field("seconds", res.seconds);
    w.field("gflops", res.gflops);
    w.field("joules", res.joules);
    w.field("average_watts", res.average_watts);
    w.field("event_checksum", checksum_hex(res.stats.event_checksum));
    w.field("operational_intensity", m.roofline.operational_intensity);
    w.field("network_intensity", m.roofline.network_intensity);
    w.field("achieved_gflops_per_node", m.roofline.achieved_flops / 1e9);
    w.field("attainable_gflops_per_node", m.roofline.attainable_flops / 1e9);
    w.field("limit", core::limit_name(m.roofline.limiting_intensity));
    w.field("sustained_watts_per_node", m.sustained_watts);
    w.field("achieved_gflops_per_watt", m.achieved_gflops_per_watt);
    w.field("attainable_gflops_per_watt", m.attainable_gflops_per_watt);
    w.field("percent_of_ceiling", m.percent_of_ceiling);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string out = w.str();
  out += '\n';
  return out;
}

void write_report(const std::string& path, const ClusterConfig& config,
                  const RunOptions& options, const std::string& workload,
                  const RunResult& result,
                  const obs::MetricsRegistry* metrics,
                  const workloads::ScenarioConfig* scenario) {
  std::ofstream f(path, std::ios::binary);
  SOC_CHECK(f.good(), "cannot open report file for writing: " + path);
  const std::string doc =
      report_json(config, options, workload, result, metrics, scenario);
  f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  SOC_CHECK(f.good(), "failed writing report file: " + path);
}

}  // namespace soc::cluster
