#include "cluster/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "gpu/device.h"
#include "mem/dram.h"

namespace soc::cluster {

double l2_contention_for(const systems::NodeConfig& node, int nodes,
                         int ranks) {
  SOC_CHECK(nodes > 0 && ranks > 0, "bad cluster shape");
  const int rpn = (ranks + nodes - 1) / nodes;
  const int domains =
      std::max(1, node.cpu_cores / std::max(node.l2_domain_cores, 1));
  const int sharers = std::max(1, (rpn + domains - 1) / domains);
  if (sharers == 1) return 1.0;
  return static_cast<double>(sharers) * node.l2_thrash_factor;
}

ClusterCostModel::ClusterCostModel(const systems::NodeConfig& node, int nodes,
                                   int ranks, arch::WorkloadProfile profile)
    : node_(node),
      nodes_(nodes),
      ranks_(ranks),
      profile_(std::move(profile)),
      network_(node.nic, node.switch_config, node.dram.cpu_bandwidth / 2.0) {
  SOC_CHECK(ranks_ >= nodes_, "fewer ranks than nodes");
  arch::CoreConfig core = node_.core;
  core.l2_contention = l2_contention_for(node_, nodes_, ranks_);
  charz_ = arch::characterize(core, profile_);
}

SimTime ClusterCostModel::cpu_compute_time(int /*rank*/,
                                                const sim::Op& op) const {
  const double seconds =
      charz_.seconds_for(op.instructions, node_.core.frequency_hz);
  return from_seconds(seconds);
}

SimTime ClusterCostModel::gpu_kernel_time(int /*rank*/,
                                               const sim::Op& op) const {
  SOC_CHECK(node_.has_gpu, "GPU kernel on a GPU-less node");
  return gpu::kernel_duration(node_.gpu, op.flops, op.dram_bytes,
                              op.mem_model, op.double_precision,
                              op.parallelism);
}

SimTime ClusterCostModel::copy_time(int /*rank*/,
                                         const sim::Op& op) const {
  switch (op.mem_model) {
    case sim::MemModel::kHostDevice:
      return mem::copy_duration(node_.dram, op.bytes);
    case sim::MemModel::kZeroCopy:
      // No copy happens: device threads read host memory directly.
      return 1 * kMicrosecond;
    case sim::MemModel::kUnified:
      // Migration is transparent; only the runtime's bookkeeping remains.
      return node_.dram.copy_call_overhead / 2;
  }
  return 0;
}

SimTime ClusterCostModel::message_latency(int src_node,
                                               int dst_node) const {
  return network_.latency(src_node, dst_node);
}

SimTime ClusterCostModel::message_transfer_time(int src_node,
                                                     int dst_node,
                                                     Bytes bytes) const {
  return network_.transfer_time(src_node, dst_node, bytes);
}

SimTime ClusterCostModel::send_overhead(int /*rank*/) const {
  return 2 * kMicrosecond;
}

SimTime ClusterCostModel::recv_overhead(int /*rank*/) const {
  return 2 * kMicrosecond;
}

arch::CounterSet ClusterCostModel::synthesize_counters(
    const sim::RunStats& stats) const {
  arch::CounterSet total;
  for (const sim::RankStats& rs : stats.ranks) {
    for (const auto& [profile, instructions] : rs.instructions_by_profile) {
      // All CPU ops of a workload share profile 0 (the workload's host
      // code); additional profiles would be characterized identically.
      total += charz_.per_instruction.scaled(instructions);
    }
  }
  return total;
}

}  // namespace soc::cluster
