// Run-report emitter.
//
// Serializes one metered run — configuration, RunResult, energy, PMU
// counters, and (optionally) an obs::MetricsRegistry — as a canonical
// JSON document, schema "soccluster-run-report/v1".  Output is
// byte-identical across replays of the same configuration: integer
// fields are engine-deterministic and doubles render via
// shortest-round-trip std::to_chars.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/extended_roofline.h"
#include "obs/metrics.h"

namespace soc::obs {
class JsonWriter;
}  // namespace soc::obs

namespace soc::cluster {

/// Canonical spelling of a memory model in report documents; shared with
/// the sweep-report emitter so the two schemas can never disagree.
const char* mem_model_name(sim::MemModel mm);

/// Zero-padded 16-digit hex rendering ("0x0123456789abcdef") — JSON
/// numbers lose precision above 2^53, so the event-checksum digest
/// travels as a string.
std::string checksum_hex(std::uint64_t v);

/// Renders the report document (ends with a newline).  `metrics` may be
/// nullptr when no MetricsObserver was attached.  `scenario` may be
/// nullptr or disabled; a "scenario" block is emitted only when it is
/// enabled, so scenario-free reports stay byte-identical to the
/// pre-scenario schema.
std::string report_json(const ClusterConfig& config,
                        const RunOptions& options,
                        const std::string& workload,
                        const RunResult& result,
                        const obs::MetricsRegistry* metrics = nullptr,
                        const workloads::ScenarioConfig* scenario = nullptr);

/// Writes report_json(...) to `path`; throws soc::Error on I/O failure.
void write_report(const std::string& path, const ClusterConfig& config,
                  const RunOptions& options, const std::string& workload,
                  const RunResult& result,
                  const obs::MetricsRegistry* metrics = nullptr,
                  const workloads::ScenarioConfig* scenario = nullptr);

/// Appends the "scenario" JSON block for an enabled scenario config.
/// Shared by the run-report and sweep-report emitters so the two schemas
/// render scenarios identically.
void write_scenario(obs::JsonWriter& w, const workloads::ScenarioConfig& s);

/// The energy-extended roofline model for one node configuration — the
/// same peak/bandwidth choices socbench's roofline table uses (`dp`
/// selects double-precision GPU peak) joined with the node's component
/// power model.
core::EnergyRoofline energy_roofline_model(const systems::NodeConfig& node,
                                           bool dp);

/// Renders a "soccluster-energy-roofline/v1" JSON document: one row per
/// run placing it on the GFLOPS/W roofline (achieved vs power-derived
/// ceiling at its measured OI/NI).  requests, results, and measurements
/// are parallel vectors; the document is byte-identical across thread
/// counts and build flavors.
std::string energy_roofline_json(
    const std::string& label, const std::vector<RunRequest>& requests,
    const std::vector<RunResult>& results,
    const std::vector<core::EnergyRooflineMeasurement>& measurements);

}  // namespace soc::cluster
