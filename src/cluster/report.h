// Run-report emitter.
//
// Serializes one metered run — configuration, RunResult, energy, PMU
// counters, and (optionally) an obs::MetricsRegistry — as a canonical
// JSON document, schema "soccluster-run-report/v1".  Output is
// byte-identical across replays of the same configuration: integer
// fields are engine-deterministic and doubles render via
// shortest-round-trip std::to_chars.
#pragma once

#include <string>

#include "cluster/cluster.h"
#include "obs/metrics.h"

namespace soc::cluster {

/// Renders the report document (ends with a newline).  `metrics` may be
/// nullptr when no MetricsObserver was attached.
std::string report_json(const ClusterConfig& config,
                        const RunOptions& options,
                        const std::string& workload,
                        const RunResult& result,
                        const obs::MetricsRegistry* metrics = nullptr);

/// Writes report_json(...) to `path`; throws soc::Error on I/O failure.
void write_report(const std::string& path, const ClusterConfig& config,
                  const RunOptions& options, const std::string& workload,
                  const RunResult& result,
                  const obs::MetricsRegistry* metrics = nullptr);

}  // namespace soc::cluster
