#include "cluster/perf.h"

#include <chrono>  // soclint: allow(banned-nondeterminism)
#include <fstream>

#include "cluster/cost_model.h"
#include "cluster/report.h"
#include "common/alloc_stats.h"
#include "common/error.h"
#include "obs/json.h"
#include "sim/engine.h"
#include "sim/memo_cost.h"
#include "systems/machines.h"
#include "workloads/workload.h"

namespace soc::cluster {

std::vector<PerfCase> default_perf_cases(bool quick) {
  std::vector<PerfCase> cases;
  if (quick) {
    // Two small shapes CI can replay in seconds; one per figure family.
    cases.push_back({"fig5/jacobi", "jacobi", 4, 4, false});
    cases.push_back({"fig6/cg", "cg", 4, 8, false});
    return cases;
  }
  for (const char* w :
       {"hpl", "jacobi", "cloverleaf", "tealeaf2d", "tealeaf3d"}) {
    cases.push_back({std::string("fig5/") + w, w, 16, 16, false});
    cases.push_back({std::string("fig5/") + w + "/ideal-net", w, 16, 16,
                     true});
  }
  for (const char* w : {"bt", "cg", "ep", "ft", "is", "lu", "mg", "sp"}) {
    cases.push_back({std::string("fig6/") + w, w, 16, 32, false});
    cases.push_back({std::string("fig6/") + w + "/ideal-net", w, 16, 32,
                     true});
  }
  return cases;
}

PerfReport measure_engine(const std::vector<PerfCase>& cases,
                          const PerfConfig& config) {
  SOC_CHECK(config.reps > 0, "perf harness needs at least one repetition");
  // Wall-clock timing is the one legitimately nondeterministic quantity
  // here; it never feeds back into simulated state.
  using Clock = std::chrono::steady_clock;  // soclint: allow(banned-nondeterminism)
  PerfReport report;
  const std::uint64_t allocs_at_start = allocation_count();

  for (const PerfCase& c : cases) {
    const auto workload = workloads::make_workload(c.workload);
    workloads::BuildContext ctx;
    ctx.nodes = c.nodes;
    ctx.ranks = c.ranks;
    const auto programs = workload->build(ctx);
    const auto node = systems::jetson_tx1(net::NicKind::kTenGigabit);
    const ClusterCostModel cost(node, c.nodes, c.ranks,
                                workload->cpu_profile());
    const sim::MemoCostModel memo(cost);
    sim::EngineConfig engine_config;
    engine_config.bisection_bandwidth = node.switch_config.bisection_bandwidth;
    sim::Scenario scenario;
    scenario.ideal_network = c.ideal_network;
    const auto placement = sim::Placement::block(c.ranks, c.nodes);

    PerfSample sample;
    sample.name = c.name;
    sample.reps = config.reps;
    {
      // Warm-up: fills the memo cache and the engine pools, and records
      // the case's event count and checksum (identical every rep).
      sim::Engine engine(placement, memo, engine_config, scenario);
      const auto stats = engine.run(programs);
      sample.events = stats.events_committed;
      sample.checksum = stats.event_checksum;
    }
    const std::uint64_t allocs_before = allocation_count();
    const auto t0 = Clock::now();
    for (int r = 0; r < config.reps; ++r) {
      sim::Engine engine(placement, memo, engine_config, scenario);
      (void)engine.run(programs);
    }
    const auto t1 = Clock::now();
    sample.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    const double rep_events =
        static_cast<double>(sample.events) * config.reps;
    sample.events_per_second =
        sample.wall_seconds > 0.0 ? rep_events / sample.wall_seconds : 0.0;
    sample.allocs_per_event =
        rep_events > 0.0
            ? static_cast<double>(allocation_count() - allocs_before) /
                  rep_events
            : 0.0;
    sample.memo_hits = memo.hits();
    sample.memo_misses = memo.misses();

    report.total_events += rep_events;
    report.total_wall_seconds += sample.wall_seconds;
    report.samples.push_back(std::move(sample));
  }
  report.events_per_second =
      report.total_wall_seconds > 0.0
          ? report.total_events / report.total_wall_seconds
          : 0.0;
  report.alloc_counter_live = allocation_count() != allocs_at_start;
  return report;
}

std::string perf_report_json(const PerfReport& report) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", "soccluster-perf-report/v1");
  w.field("alloc_counter_live", report.alloc_counter_live);
  w.field("total_events", report.total_events);
  w.field("total_wall_seconds", report.total_wall_seconds);
  w.field("events_per_second", report.events_per_second);
  w.key("samples");
  w.begin_array();
  for (const PerfSample& s : report.samples) {
    w.newline();
    w.begin_object();
    w.field("name", s.name);
    w.field("events", static_cast<std::uint64_t>(s.events));
    w.field("checksum", checksum_hex(s.checksum));
    w.field("reps", s.reps);
    w.field("wall_seconds", s.wall_seconds);
    w.field("events_per_second", s.events_per_second);
    w.field("allocs_per_event", s.allocs_per_event);
    w.field("memo_hits", static_cast<std::uint64_t>(s.memo_hits));
    w.field("memo_misses", static_cast<std::uint64_t>(s.memo_misses));
    w.end_object();
  }
  w.newline();
  w.end_array();
  w.end_object();
  return w.str();
}

void write_perf_report(const std::string& path, const PerfReport& report) {
  std::ofstream out(path);
  SOC_CHECK(out.good(), "cannot open perf report path: " + path);
  out << perf_report_json(report) << "\n";
}

}  // namespace soc::cluster
