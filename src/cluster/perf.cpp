#include "cluster/perf.h"

#include <chrono>  // soclint: allow(banned-nondeterminism)
#include <cstdlib>
#include <fstream>
#include <map>

#include "cluster/cost_model.h"
#include "cluster/report.h"
#include "common/alloc_stats.h"
#include "common/error.h"
#include "obs/json.h"
#include "prof/selfprof.h"
#include "sim/engine.h"
#include "sim/telemetry.h"
#include "sim/memo_cost.h"
#include "systems/machines.h"
#include "workloads/workload.h"

namespace soc::cluster {

std::vector<PerfCase> default_perf_cases(bool quick) {
  std::vector<PerfCase> cases;
  if (quick) {
    // Two small shapes CI can replay in seconds; one per figure family,
    // each with a sharded twin (shards capped at the node count) so the
    // smoke run covers the parallel engine and its speedup column.
    cases.push_back({"fig5/jacobi", "jacobi", 4, 4, false, 1, ""});
    cases.push_back(
        {"fig5/jacobi/4shards", "jacobi", 4, 4, false, 4, "fig5/jacobi"});
    cases.push_back({"fig6/cg", "cg", 4, 8, false, 1, ""});
    cases.push_back({"fig6/cg/4shards", "cg", 4, 8, false, 4, "fig6/cg"});
    return cases;
  }
  for (const char* w :
       {"hpl", "jacobi", "cloverleaf", "tealeaf2d", "tealeaf3d"}) {
    const std::string base = std::string("fig5/") + w;
    cases.push_back({base, w, 16, 16, false, 1, ""});
    cases.push_back({base + "/8shards", w, 16, 16, false, 8, base});
    cases.push_back({base + "/ideal-net", w, 16, 16, true, 1, ""});
  }
  for (const char* w : {"bt", "cg", "ep", "ft", "is", "lu", "mg", "sp"}) {
    const std::string base = std::string("fig6/") + w;
    cases.push_back({base, w, 16, 32, false, 1, ""});
    cases.push_back({base + "/8shards", w, 16, 32, false, 8, base});
    cases.push_back({base + "/ideal-net", w, 16, 32, true, 1, ""});
  }
  return cases;
}

PerfReport measure_engine(const std::vector<PerfCase>& cases,
                          const PerfConfig& config) {
  SOC_CHECK(config.reps > 0, "perf harness needs at least one repetition");
  // Wall-clock timing is the one legitimately nondeterministic quantity
  // here; it never feeds back into simulated state.
  using Clock = std::chrono::steady_clock;  // soclint: allow(banned-nondeterminism)
  PerfReport report;
  const std::uint64_t allocs_at_start = allocation_count();
  // Self-telemetry per case, keyed by name, for the scaling
  // decomposition pass below.  Captured by a dedicated untimed
  // repetition so the instrumented run never pollutes the throughput
  // numbers (and the timed reps stay telemetry-free, which is what the
  // zero-overhead-when-detached guarantee is about).
  std::map<std::string, sim::EngineTelemetry> telemetry;

  for (const PerfCase& c : cases) {
    const auto workload = workloads::make_workload(c.workload);
    workloads::BuildContext ctx;
    ctx.nodes = c.nodes;
    ctx.ranks = c.ranks;
    const auto programs = workload->build(ctx);
    const auto node = systems::jetson_tx1(net::NicKind::kTenGigabit);
    const ClusterCostModel cost(node, c.nodes, c.ranks,
                                workload->cpu_profile());
    const sim::MemoCostModel memo(cost, /*thread_safe=*/c.shards > 1);
    sim::EngineConfig engine_config;
    engine_config.bisection_bandwidth = node.switch_config.bisection_bandwidth;
    engine_config.shards = c.shards;
    sim::Scenario scenario;
    scenario.ideal_network = c.ideal_network;
    const auto placement = sim::Placement::block(c.ranks, c.nodes);

    PerfSample sample;
    sample.name = c.name;
    sample.reps = config.reps;
    sample.shards = c.shards;
    sample.baseline = c.baseline;
    {
      // Warm-up: fills the memo cache and the engine pools, and records
      // the case's event count and checksum (identical every rep).
      sim::Engine engine(placement, memo, engine_config, scenario);
      const auto stats = engine.run(programs);
      sample.events = stats.events_committed;
      sample.checksum = stats.event_checksum;
    }
    const std::uint64_t allocs_before = allocation_count();
    const auto t0 = Clock::now();
    for (int r = 0; r < config.reps; ++r) {
      sim::Engine engine(placement, memo, engine_config, scenario);
      (void)engine.run(programs);
    }
    const auto t1 = Clock::now();
    sample.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    const double rep_events =
        static_cast<double>(sample.events) * config.reps;
    sample.events_per_second =
        sample.wall_seconds > 0.0 ? rep_events / sample.wall_seconds : 0.0;
    sample.allocs_per_event =
        rep_events > 0.0
            ? static_cast<double>(allocation_count() - allocs_before) /
                  rep_events
            : 0.0;
    sample.memo_hits = memo.hits();
    sample.memo_misses = memo.misses();
    if (config.explain_scaling) {
      sim::EngineTelemetry& tel = telemetry[c.name];
      sim::EngineConfig instrumented = engine_config;
      instrumented.telemetry = &tel;
      sim::Engine engine(placement, memo, instrumented, scenario);
      const auto stats = engine.run(programs);
      SOC_CHECK(stats.event_checksum == sample.checksum,
                "telemetry-attached rep diverged from the timed reps: " +
                    c.name);
    }

    report.total_events += rep_events;
    report.total_wall_seconds += sample.wall_seconds;
    report.samples.push_back(std::move(sample));
  }
  report.events_per_second =
      report.total_wall_seconds > 0.0
          ? report.total_events / report.total_wall_seconds
          : 0.0;
  report.alloc_counter_live = allocation_count() != allocs_at_start;
  // Resolve speedup rows against their named baselines.  A sharded case
  // must replay the identical committed stream, so the checksum match is
  // asserted here: a speedup over a *different* run would be meaningless.
  for (PerfSample& s : report.samples) {
    if (s.baseline.empty()) continue;
    const PerfSample* base = nullptr;
    for (const PerfSample& b : report.samples) {
      if (b.name == s.baseline) {
        base = &b;
        break;
      }
    }
    SOC_CHECK(base != nullptr,
              "perf case names unknown baseline: " + s.baseline);
    SOC_CHECK(base->checksum == s.checksum && base->events == s.events,
              "perf case diverged from its baseline's event stream: " +
                  s.name);
    s.speedup_vs_baseline = base->events_per_second > 0.0
                                ? s.events_per_second /
                                      base->events_per_second
                                : 0.0;
    if (config.explain_scaling) {
      const auto serial_it = telemetry.find(s.baseline);
      const auto sharded_it = telemetry.find(s.name);
      SOC_CHECK(serial_it != telemetry.end() &&
                    sharded_it != telemetry.end(),
                "missing telemetry for scaling decomposition: " + s.name);
      s.scaling =
          prof::explain_scaling(serial_it->second, sharded_it->second);
      s.has_scaling = true;
    }
  }
  return report;
}

std::string perf_report_json(const PerfReport& report) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", "soccluster-perf-report/v1");
  w.field("alloc_counter_live", report.alloc_counter_live);
  w.field("total_events", report.total_events);
  w.field("total_wall_seconds", report.total_wall_seconds);
  w.field("events_per_second", report.events_per_second);
  w.key("samples");
  w.begin_array();
  for (const PerfSample& s : report.samples) {
    w.newline();
    w.begin_object();
    w.field("name", s.name);
    w.field("events", static_cast<std::uint64_t>(s.events));
    w.field("checksum", checksum_hex(s.checksum));
    w.field("reps", s.reps);
    w.field("shards", s.shards);
    if (!s.baseline.empty()) {
      w.field("baseline", s.baseline);
      w.field("speedup_vs_baseline", s.speedup_vs_baseline);
    }
    if (s.has_scaling) {
      // Pre-rendered by the same JsonWriter machinery, so the sample
      // line stays a single line and the baseline loader's line scanner
      // keeps working.
      w.key("scaling");
      w.value_raw(prof::scaling_json(s.scaling));
    }
    w.field("wall_seconds", s.wall_seconds);
    w.field("events_per_second", s.events_per_second);
    w.field("allocs_per_event", s.allocs_per_event);
    w.field("memo_hits", static_cast<std::uint64_t>(s.memo_hits));
    w.field("memo_misses", static_cast<std::uint64_t>(s.memo_misses));
    w.end_object();
  }
  w.newline();
  w.end_array();
  w.end_object();
  return w.str();
}

void write_perf_report(const std::string& path, const PerfReport& report) {
  std::ofstream out(path);
  SOC_CHECK(out.good(), "cannot open perf report path: " + path);
  out << perf_report_json(report) << "\n";
}

namespace {

// perf_report_json emits one sample object per line, so the baseline
// loader is a line scanner, not a JSON parser: it only needs to invert
// its own writer's stable formatting.
bool extract_string(const std::string& line, const std::string& key,
                    std::string* out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t start = at + needle.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return false;
  *out = line.substr(start, end - start);
  return true;
}

bool extract_number(const std::string& line, const std::string& key,
                    double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  *out = std::strtod(line.c_str() + at + needle.size(), nullptr);
  return true;
}

}  // namespace

std::vector<PerfSample> load_perf_baseline(const std::string& path) {
  std::ifstream in(path);
  SOC_CHECK(in.good(), "cannot open perf baseline: " + path);
  std::vector<PerfSample> samples;
  std::string line;
  while (std::getline(in, line)) {
    PerfSample s;
    if (!extract_string(line, "name", &s.name)) continue;
    std::string checksum;
    double events = 0.0;
    double eps = 0.0;
    double shards = 1.0;
    SOC_CHECK(extract_string(line, "checksum", &checksum) &&
                  extract_number(line, "events", &events) &&
                  extract_number(line, "events_per_second", &eps),
              "malformed perf baseline sample: " + line);
    s.events = static_cast<std::uint64_t>(events);
    s.checksum = std::strtoull(checksum.c_str(), nullptr, 16);
    s.events_per_second = eps;
    if (extract_number(line, "shards", &shards)) {
      s.shards = static_cast<int>(shards);
    }
    double speedup = 0.0;
    if (extract_string(line, "baseline", &s.baseline) &&
        extract_number(line, "speedup_vs_baseline", &speedup)) {
      s.speedup_vs_baseline = speedup;
    }
    samples.push_back(std::move(s));
  }
  SOC_CHECK(!samples.empty(), "perf baseline holds no samples: " + path);
  return samples;
}

std::string diff_perf_baseline(const PerfReport& report,
                               const std::vector<PerfSample>& baseline,
                               double tolerance, double speedup_tolerance) {
  SOC_CHECK(tolerance > 0.0 && tolerance <= 1.0,
            "baseline tolerance must be in (0, 1]");
  SOC_CHECK(speedup_tolerance > 0.0 && speedup_tolerance <= 1.0,
            "baseline speedup tolerance must be in (0, 1]");
  std::string failures;
  int matched = 0;
  for (const PerfSample& b : baseline) {
    const PerfSample* s = nullptr;
    for (const PerfSample& fresh : report.samples) {
      if (fresh.name == b.name) {
        s = &fresh;
        break;
      }
    }
    if (s == nullptr) continue;  // quick subset vs full baseline, etc.
    ++matched;
    if (s->events != b.events || s->checksum != b.checksum) {
      failures += "perf baseline: " + b.name +
                  " committed stream changed (events " +
                  std::to_string(b.events) + " -> " +
                  std::to_string(s->events) + ", checksum " +
                  checksum_hex(b.checksum) + " -> " +
                  checksum_hex(s->checksum) + ")\n";
    }
    if (s->events_per_second < tolerance * b.events_per_second) {
      failures += "perf baseline: " + b.name + " throughput regressed: " +
                  std::to_string(s->events_per_second) + " < " +
                  std::to_string(tolerance) + " x " +
                  std::to_string(b.events_per_second) + " events/s\n";
    }
    // Sharded speedup rows also gate on parallel efficiency: both runs
    // divide by their own serial row, so this catches the sharded path
    // regressing relative to the serial path even when the machine (and
    // thus absolute events/s) differs from the baseline's.
    if (!b.baseline.empty() && b.speedup_vs_baseline > 0.0 &&
        s->speedup_vs_baseline <
            speedup_tolerance * b.speedup_vs_baseline) {
      failures += "perf baseline: " + b.name + " speedup regressed: " +
                  std::to_string(s->speedup_vs_baseline) + " < " +
                  std::to_string(speedup_tolerance) + " x " +
                  std::to_string(b.speedup_vs_baseline) + " vs " +
                  b.baseline + "\n";
    }
  }
  if (matched == 0) {
    failures += "perf baseline: no case names in common with this run\n";
  }
  return failures;
}

}  // namespace soc::cluster
