#include "cluster/cluster.h"

#include "common/error.h"

namespace soc::cluster {

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  SOC_CHECK(config_.nodes >= 1, "need at least one node");
  SOC_CHECK(config_.ranks >= config_.nodes &&
                config_.ranks % config_.nodes == 0,
            "ranks must be a positive multiple of nodes");
  SOC_CHECK(config_.ranks / config_.nodes <= config_.node.cpu_cores,
            "more ranks per node than CPU cores");
}

workloads::BuildContext Cluster::build_context(
    const RunOptions& options) const {
  workloads::BuildContext ctx;
  ctx.ranks = config_.ranks;
  ctx.nodes = config_.nodes;
  ctx.mem_model = options.mem_model;
  ctx.gpu_work_fraction = options.gpu_work_fraction;
  ctx.size_scale = options.size_scale;
  ctx.overlap_halos = options.overlap_halos;
  return ctx;
}

RunResult Cluster::meter(const sim::RunStats& stats,
                         const ClusterCostModel& cost) const {
  RunResult result;
  result.stats = stats;
  result.energy = power::measure_energy(stats, config_.node.power,
                                        config_.node.cpu_cores);
  result.counters = cost.synthesize_counters(stats);
  result.seconds = stats.seconds();
  result.gflops = stats.flops_per_second() / 1e9;
  result.joules = result.energy.joules;
  result.average_watts = result.energy.average_watts;
  result.mflops_per_watt = result.energy.mflops_per_watt(stats.total_flops);
  return result;
}

sim::EngineConfig Cluster::engine_config(const RunOptions& options) const {
  sim::EngineConfig config = options.engine;
  if (config.bisection_bandwidth == 0.0) {
    config.bisection_bandwidth =
        config_.node.switch_config.bisection_bandwidth;
  }
  return config;
}

RunResult Cluster::run(const workloads::Workload& workload,
                       const RunOptions& options) const {
  const auto programs = workload.build(build_context(options));
  ClusterCostModel cost(config_.node, config_.nodes, config_.ranks,
                        workload.cpu_profile());
  sim::Engine engine(sim::Placement::block(config_.ranks, config_.nodes),
                     cost, engine_config(options));
  engine.set_observer(options.observer);
  return meter(engine.run(programs), cost);
}

trace::ScenarioRuns Cluster::replay_scenarios(
    const workloads::Workload& workload, const RunOptions& options) const {
  const auto programs = workload.build(build_context(options));
  ClusterCostModel cost(config_.node, config_.nodes, config_.ranks,
                        workload.cpu_profile());
  return trace::replay_scenarios(
      sim::Placement::block(config_.ranks, config_.nodes), cost, programs,
      engine_config(options));
}

}  // namespace soc::cluster
