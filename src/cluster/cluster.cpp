#include "cluster/cluster.h"

#include "cluster/report.h"
#include "common/error.h"
#include "obs/observers.h"
#include "prof/profile.h"
#include "prof/profiler.h"
#include "sim/memo_cost.h"
#include "workloads/op_stream.h"

namespace soc::cluster {

namespace {

workloads::BuildContext build_context(const ClusterConfig& config,
                                      const RunOptions& options) {
  workloads::BuildContext ctx;
  ctx.ranks = config.ranks;
  ctx.nodes = config.nodes;
  ctx.mem_model = options.mem_model;
  ctx.gpu_work_fraction = options.gpu_work_fraction;
  ctx.size_scale = options.size_scale;
  ctx.overlap_halos = options.overlap_halos;
  return ctx;
}

sim::EngineConfig engine_config(const ClusterConfig& config,
                                const RunOptions& options) {
  sim::EngineConfig engine = options.engine;
  if (engine.bisection_bandwidth == 0.0) {
    engine.bisection_bandwidth = config.node.switch_config.bisection_bandwidth;
  }
  return engine;
}

RunResult meter(const sim::RunStats& stats, const ClusterConfig& config,
                const ClusterCostModel& cost) {
  RunResult result;
  result.stats = stats;
  result.energy = power::measure_energy(stats, config.node.power,
                                        config.node.cpu_cores);
  result.counters = cost.synthesize_counters(stats);
  result.seconds = stats.seconds();
  result.gflops = stats.flops_per_second() / 1e9;
  result.joules = result.energy.joules;
  result.average_watts = result.energy.average_watts;
  result.mflops_per_watt = result.energy.mflops_per_watt(stats.total_flops);
  return result;
}

}  // namespace

void validate(const ClusterConfig& config) {
  SOC_CHECK(config.nodes >= 1, "need at least one node");
  SOC_CHECK(config.ranks >= config.nodes && config.ranks % config.nodes == 0,
            "ranks must be a positive multiple of nodes");
  SOC_CHECK(config.ranks / config.nodes <= config.node.cpu_cores,
            "more ranks per node than CPU cores");
}

const workloads::Workload& resolve_workload(
    const RunRequest& request, std::unique_ptr<workloads::Workload>& owned) {
  if (request.workload_ref != nullptr) return *request.workload_ref;
  SOC_CHECK(!request.workload.empty(),
            "RunRequest names no workload (set workload or workload_ref)");
  owned = workloads::make_workload(request.workload);
  return *owned;
}

RunResult run(const RunRequest& request, const workloads::Workload& workload,
              const ClusterCostModel& cost) {
  validate(request.config);
  // The engine pulls ops through the workload's stream (with any
  // scenario decorators layered on top); Workload::build() survives as
  // the compat shim underneath the default ProgramWalkStream adapter.
  std::unique_ptr<workloads::OpStream> stream = workloads::apply_scenarios(
      workload.stream(build_context(request.config, request.options)),
      request.scenario, request.config.nodes);
  // The cluster model is memoizable (pure tables after construction), so
  // repeated op shapes hit a cache instead of re-deriving durations.
  // Subclasses that override costs rank-dependently opt out via
  // memoizable() and are used directly.  A sharded engine queries the
  // cost model from worker threads, so the memo locks its cache then.
  sim::EngineConfig engine_cfg =
      engine_config(request.config, request.options);
  if (request.engine_telemetry != nullptr) {
    engine_cfg.telemetry = request.engine_telemetry;
  }
  const sim::MemoCostModel memo(cost, /*thread_safe=*/engine_cfg.shards > 1);
  const sim::CostModel& effective =
      cost.memoizable() ? static_cast<const sim::CostModel&>(memo) : cost;
  sim::Engine engine(
      sim::Placement::block(request.config.ranks, request.config.nodes),
      effective, engine_cfg);

  // Per-run observability: the request's own metrics/profile sinks
  // compose with any caller-attached observer, so sweep runs never share
  // state.  With no sinks set, no observer is attached and the engine's
  // hot path is untouched.
  obs::MetricsObserver metrics_observer;
  prof::Profiler profiler;
  obs::ObserverList observers;
  const bool want_metrics =
      request.metrics != nullptr || !request.report_path.empty();
  const bool want_profile = request.profile != nullptr ||
                            !request.profile_json_path.empty() ||
                            !request.profile_folded_path.empty() ||
                            request.run_trace != nullptr;
  sim::EngineObserver* observer = request.options.observer;
  {
    int attached = observer != nullptr ? 1 : 0;
    if (want_metrics) ++attached;
    if (want_profile) ++attached;
    if (attached > 1) {
      if (request.options.observer != nullptr) {
        observers.add(request.options.observer);
      }
      if (want_metrics) observers.add(&metrics_observer);
      if (want_profile) observers.add(&profiler);
      observer = &observers;
    } else if (want_metrics) {
      observer = &metrics_observer;
    } else if (want_profile) {
      observer = &profiler;
    }
  }
  engine.set_observer(observer);

  RunResult result = meter(engine.run(*stream), request.config, cost);
  if (request.metrics != nullptr) *request.metrics = metrics_observer.registry();
  if (!request.report_path.empty()) {
    write_report(request.report_path, request.config, request.options,
                 workload.name(), result,
                 want_metrics ? &metrics_observer.registry() : nullptr,
                 &request.scenario);
  }
  if (want_profile) {
    prof::Profile profile = prof::analyze(profiler.trace());
    // The run owns the power config, so the energy attribution rides on
    // the profile (analyze() alone cannot compute it).
    profile.energy = prof::attribute_energy(
        profiler.trace(), request.config.node.power, request.config.node.cpu_cores);
    profile.has_energy = true;
    if (request.run_trace != nullptr) *request.run_trace = profiler.trace();
    if (!request.profile_json_path.empty()) {
      prof::write_text(request.profile_json_path, prof::profile_json(profile));
    }
    if (!request.profile_folded_path.empty()) {
      prof::write_text(request.profile_folded_path,
                       prof::folded_stacks(profile));
    }
    if (request.profile != nullptr) *request.profile = std::move(profile);
  }
  return result;
}

RunResult run(const RunRequest& request) {
  std::unique_ptr<workloads::Workload> owned;
  const workloads::Workload& workload = resolve_workload(request, owned);
  validate(request.config);
  const ClusterCostModel cost(request.config.node, request.config.nodes,
                              request.config.ranks, workload.cpu_profile());
  return run(request, workload, cost);
}

trace::ScenarioRuns replay_scenarios(const RunRequest& request,
                                     const workloads::Workload& workload,
                                     const ClusterCostModel& cost) {
  validate(request.config);
  // The measured run streams (recording as it goes) and the two ideal
  // replays re-time the recorded op sequence, so time-dependent
  // decorators are sampled exactly once.
  std::unique_ptr<workloads::OpStream> stream = workloads::apply_scenarios(
      workload.stream(build_context(request.config, request.options)),
      request.scenario, request.config.nodes);
  return trace::replay_scenarios(
      sim::Placement::block(request.config.ranks, request.config.nodes), cost,
      *stream, engine_config(request.config, request.options));
}

trace::ScenarioRuns replay_scenarios(const RunRequest& request) {
  std::unique_ptr<workloads::Workload> owned;
  const workloads::Workload& workload = resolve_workload(request, owned);
  validate(request.config);
  const ClusterCostModel cost(request.config.node, request.config.nodes,
                              request.config.ranks, workload.cpu_profile());
  return replay_scenarios(request, workload, cost);
}

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  validate(config_);
}

RunResult Cluster::run(const workloads::Workload& workload,
                       const RunOptions& options) const {
  RunRequest request;
  request.workload = workload.name();
  request.workload_ref = &workload;
  request.config = config_;
  request.options = options;
  return cluster::run(request);
}

trace::ScenarioRuns Cluster::replay_scenarios(
    const workloads::Workload& workload, const RunOptions& options) const {
  RunRequest request;
  request.workload = workload.name();
  request.workload_ref = &workload;
  request.config = config_;
  request.options = options;
  return cluster::replay_scenarios(request);
}

}  // namespace soc::cluster
