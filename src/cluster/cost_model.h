// Cluster cost model: composes the arch/gpu/mem/net substrates into the
// CostModel the replay engine consumes, for one (node type, cluster
// shape, workload profile) combination.
#pragma once

#include <map>

#include "arch/core_model.h"
#include "net/network.h"
#include "sim/cost_model.h"
#include "systems/machines.h"

namespace soc::cluster {

class ClusterCostModel : public sim::CostModel {
 public:
  /// `profile` is the workload's host-side code descriptor; `ranks` and
  /// `nodes` determine per-rank L2 pressure on shared-LLC machines.
  ClusterCostModel(const systems::NodeConfig& node, int nodes, int ranks,
                   arch::WorkloadProfile profile);

  SimTime cpu_compute_time(int rank, const sim::Op& op) const override;
  SimTime gpu_kernel_time(int rank, const sim::Op& op) const override;
  SimTime copy_time(int rank, const sim::Op& op) const override;
  SimTime message_latency(int src_node, int dst_node) const override;
  SimTime message_transfer_time(int src_node, int dst_node,
                                     Bytes bytes) const override;
  SimTime send_overhead(int rank) const override;
  SimTime recv_overhead(int rank) const override;
  /// All durations derive from the immutable characterization and device
  /// tables built at construction; no method depends on rank identity.
  bool memoizable() const override { return true; }

  /// The characterization backing CPU op timing (used for counter
  /// synthesis and exposed to the analysis benches).
  const arch::Characterization& characterization() const { return charz_; }

  /// PMU counters implied by a run's per-profile instruction tallies,
  /// summed over all ranks.
  arch::CounterSet synthesize_counters(const sim::RunStats& stats) const;

  const systems::NodeConfig& node() const { return node_; }

 private:
  systems::NodeConfig node_;
  int nodes_;
  int ranks_;
  arch::WorkloadProfile profile_;
  arch::Characterization charz_;
  net::NetworkModel network_;
};

/// Effective L2 contention factor for `ranks` over `nodes` of this node
/// type: per-rank share of the shared L2 plus thrash pressure.
double l2_contention_for(const systems::NodeConfig& node, int nodes,
                         int ranks);

}  // namespace soc::cluster
