#include "mem/dram.h"

#include <algorithm>

#include "common/error.h"

namespace soc::mem {

SimTime copy_duration(const DramConfig& dram, Bytes bytes) {
  SOC_CHECK(bytes >= 0, "negative copy size");
  if (bytes == 0) return dram.copy_call_overhead;
  return dram.copy_call_overhead + transfer_time(bytes, dram.copy_bandwidth);
}

double contended_gpu_bandwidth(const DramConfig& dram, double cpu_share) {
  SOC_CHECK(cpu_share >= 0.0 && cpu_share <= 1.0, "cpu_share out of range");
  // The CPU's concurrent draw comes out of the same channel; leave the GPU
  // at least a quarter of its peak so the model degrades gracefully.
  const double stolen = cpu_share * dram.cpu_bandwidth;
  return std::max(dram.gpu_bandwidth - stolen, dram.gpu_bandwidth * 0.25);
}

}  // namespace soc::mem
