// Shared-DRAM model.
//
// Mobile-class SoCs share one LPDDR channel between CPU and GPU (the TX1's
// defining property); discrete GPUs have dedicated GDDR5 plus a PCIe link
// to host memory.  This module captures the achievable bandwidths seen by
// each agent and the memcpy-style transfer costs used by copy ops.
#pragma once

#include <string>

#include "common/units.h"

namespace soc::mem {

struct DramConfig {
  std::string name = "lpddr4";
  /// Peak bandwidth achievable by CPU cores (stream-measured, §III-A).
  double cpu_bandwidth = 14.7e9;
  /// Peak bandwidth achievable by the GPU.
  double gpu_bandwidth = 20.0e9;
  /// memcpy bandwidth for host<->device copies.  On a unified-memory SoC
  /// this is a DRAM-to-DRAM copy; on a discrete GPU it is the PCIe link.
  double copy_bandwidth = 10.0e9;
  /// Fixed software overhead per explicit copy call.
  SimTime copy_call_overhead = 10 * kMicrosecond;

  Bytes capacity = 4 * kGiB;

  bool operator==(const DramConfig&) const = default;
};

/// Duration of an explicit host<->device copy of `bytes`.
SimTime copy_duration(const DramConfig& dram, Bytes bytes);

/// Effective GPU bandwidth when CPU traffic of `cpu_share` (0..1 of its
/// peak) runs concurrently; shared-memory contention reduces what the GPU
/// can pull.  Discrete GPUs pass cpu_share = 0.
double contended_gpu_bandwidth(const DramConfig& dram, double cpu_share);

}  // namespace soc::mem
