// Memoizing cost-model wrapper.
//
// Replayed programs evaluate the same op shapes millions of times: a CG
// iteration issues the identical halo-exchange sizes and SpMV instruction
// counts every sweep.  When the wrapped model declares itself memoizable
// (CostModel::memoizable — durations are pure functions of the documented
// op fields), caching those evaluations is observationally equivalent to
// recomputing them, so committed events and every derived artifact stay
// byte-identical.
//
// Keys cover *all* fields the CostModel interface documents as meaningful
// for each op kind — not just the fields today's cluster model happens to
// read — and the caches store full keys, compared by equality on lookup.
// A hash collision can therefore cost an extra probe but can never return
// the wrong duration.
#pragma once

#include <vector>

#include "common/flat_map.h"
#include "common/thread_safety.h"
#include "sim/cost_model.h"

namespace soc::sim {

/// Caches evaluations of a memoizable CostModel for the duration of one
/// or more runs over fixed programs.  The wrapper holds a non-owning
/// reference; keep the base model alive for the wrapper's lifetime.
///
/// By default an instance belongs to one thread.  Pass `thread_safe` when
/// the wrapper is shared by the sharded engine's worker pool: every cache
/// access then serializes on an internal mutex (the cached *values* are
/// identical either way — a lost race costs one redundant base
/// evaluation, never a wrong result).
class MemoCostModel : public CostModel {
 public:
  explicit MemoCostModel(const CostModel& base, bool thread_safe = false);

  SimTime cpu_compute_time(int rank, const Op& op) const override;
  SimTime gpu_kernel_time(int rank, const Op& op) const override;
  SimTime copy_time(int rank, const Op& op) const override;
  SimTime message_latency(int src_node, int dst_node) const override;
  SimTime message_transfer_time(int src_node, int dst_node,
                                Bytes bytes) const override;
  SimTime send_overhead(int rank) const override;
  SimTime recv_overhead(int rank) const override;
  bool memoizable() const override { return true; }

  /// Cache hits across all seven methods (perf-harness telemetry).
  std::uint64_t hits() const { return hits_; }
  /// Cache misses (evaluations forwarded to the base model).
  std::uint64_t misses() const { return misses_; }

 private:
  // Documented compute-op fields: instructions/flops/dram_bytes/profile.
  // Doubles are keyed by bit pattern — exact recurrence, not tolerance.
  struct CpuKey {
    std::uint64_t instructions_bits;
    std::uint64_t flops_bits;
    Bytes dram_bytes;
    std::int32_t profile;
    bool operator==(const CpuKey&) const = default;
  };
  // Documented kernel-op fields, including the occupancy hint.
  struct GpuKey {
    std::uint64_t flops_bits;
    std::uint64_t parallelism_bits;
    Bytes dram_bytes;
    std::uint8_t mem_model;
    bool double_precision;
    bool operator==(const GpuKey&) const = default;
  };
  // Copies: direction, memory model, size.
  struct CopyKey {
    Bytes bytes;
    std::uint8_t kind;
    std::uint8_t mem_model;
    bool operator==(const CopyKey&) const = default;
  };
  struct TransferKey {
    std::uint64_t path;  ///< (src_node, dst_node) packed.
    Bytes bytes;
    bool operator==(const TransferKey&) const = default;
  };

  struct CpuKeyHash {
    std::uint64_t operator()(const CpuKey& k) const;
  };
  struct GpuKeyHash {
    std::uint64_t operator()(const GpuKey& k) const;
  };
  struct CopyKeyHash {
    std::uint64_t operator()(const CopyKey& k) const;
  };
  struct TransferKeyHash {
    std::uint64_t operator()(const TransferKey& k) const;
  };

  /// Cached value slot; `known` distinguishes "never evaluated" from any
  /// legitimate duration (including 0).
  struct Slot {
    SimTime value = 0;
    bool known = false;
  };

  SimTime overhead_for(int rank, std::vector<Slot>& cache,
                       SimTime (CostModel::*method)(int) const) const;

  const CostModel& base_;
  // The evaluation caches are mutable so the const CostModel interface
  // can memoize through them.  Without `thread_safe` an instance belongs
  // to one thread; with it, every method serializes on mu_ (the guard is
  // conditional, so the members carry comments rather than
  // SOC_GUARDED_BY — the static analysis cannot express "guarded when
  // shared").
  const bool thread_safe_;
  mutable Mutex mu_;                                     // SOC_SHARED(mu_)
  mutable flat_map<CpuKey, Slot, CpuKeyHash> cpu_;       // SOC_SHARED(mu_ when thread_safe)
  mutable flat_map<GpuKey, Slot, GpuKeyHash> gpu_;       // SOC_SHARED(mu_ when thread_safe)
  mutable flat_map<CopyKey, Slot, CopyKeyHash> copy_;    // SOC_SHARED(mu_ when thread_safe)
  mutable flat_map<std::uint64_t, Slot> latency_;        // SOC_SHARED(mu_ when thread_safe)
  mutable flat_map<TransferKey, Slot, TransferKeyHash> transfer_;  // SOC_SHARED(mu_ when thread_safe)
  mutable std::vector<Slot> send_overhead_;  ///< Indexed by rank.  SOC_SHARED(mu_ when thread_safe)
  mutable std::vector<Slot> recv_overhead_;  // SOC_SHARED(mu_ when thread_safe)
  mutable std::uint64_t hits_ = 0;           // SOC_SHARED(mu_ when thread_safe)
  mutable std::uint64_t misses_ = 0;         // SOC_SHARED(mu_ when thread_safe)
};

}  // namespace soc::sim
