#include "sim/op.h"

namespace soc::sim {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kCpuCompute: return "cpu";
    case OpKind::kGpuKernel: return "gpu";
    case OpKind::kCopyH2D: return "h2d";
    case OpKind::kCopyD2H: return "d2h";
    case OpKind::kSend: return "send";
    case OpKind::kRecv: return "recv";
    case OpKind::kIsend: return "isend";
    case OpKind::kIrecv: return "irecv";
    case OpKind::kWaitAll: return "waitall";
    case OpKind::kPhase: return "phase";
    case OpKind::kDelay: return "delay";
    case OpKind::kEnd: return "end";
  }
  return "?";
}

Op cpu_op(double instructions, double flops, Bytes dram_bytes, int profile,
          int phase) {
  Op op;
  op.kind = OpKind::kCpuCompute;
  op.instructions = instructions;
  op.flops = flops;
  op.dram_bytes = dram_bytes;
  op.profile = profile;
  op.phase = phase;
  return op;
}

Op gpu_op(double flops, Bytes dram_bytes, MemModel mm, int phase,
          double parallelism, bool double_precision) {
  Op op;
  op.kind = OpKind::kGpuKernel;
  op.flops = flops;
  op.dram_bytes = dram_bytes;
  op.mem_model = mm;
  op.phase = phase;
  op.parallelism = parallelism;
  op.double_precision = double_precision;
  return op;
}

Op copy_h2d_op(Bytes bytes, MemModel mm, int phase) {
  Op op;
  op.kind = OpKind::kCopyH2D;
  op.bytes = bytes;
  op.mem_model = mm;
  op.phase = phase;
  return op;
}

Op copy_d2h_op(Bytes bytes, MemModel mm, int phase) {
  Op op;
  op.kind = OpKind::kCopyD2H;
  op.bytes = bytes;
  op.mem_model = mm;
  op.phase = phase;
  return op;
}

Op send_op(int peer, Bytes bytes, int tag, int phase) {
  Op op;
  op.kind = OpKind::kSend;
  op.peer = peer;
  op.bytes = bytes;
  op.tag = tag;
  op.phase = phase;
  return op;
}

Op recv_op(int peer, Bytes bytes, int tag, int phase) {
  Op op;
  op.kind = OpKind::kRecv;
  op.peer = peer;
  op.bytes = bytes;
  op.tag = tag;
  op.phase = phase;
  return op;
}

Op isend_op(int peer, Bytes bytes, int tag, int phase) {
  Op op = send_op(peer, bytes, tag, phase);
  op.kind = OpKind::kIsend;
  return op;
}

Op irecv_op(int peer, Bytes bytes, int tag, int phase) {
  Op op = recv_op(peer, bytes, tag, phase);
  op.kind = OpKind::kIrecv;
  return op;
}

Op wait_all_op(int phase) {
  Op op;
  op.kind = OpKind::kWaitAll;
  op.phase = phase;
  return op;
}

Op phase_op(int phase) {
  Op op;
  op.kind = OpKind::kPhase;
  op.phase = phase;
  return op;
}

Op delay_op(double seconds, int phase) {
  Op op;
  op.kind = OpKind::kDelay;
  op.delay_seconds = seconds;
  op.phase = phase;
  return op;
}

Op end_op() {
  Op op;
  op.kind = OpKind::kEnd;
  return op;
}

}  // namespace soc::sim
