// Operation model.
//
// A workload is lowered (by workloads/ + msg/) into one `Program` per MPI
// rank: a flat sequence of ops.  The same programs are replayed by the
// engine under different machine models and scenarios — this mirrors the
// paper's Extrae-trace + DIMEMAS-replay methodology, where one recorded
// trace is re-simulated under real, ideal-network, and ideal-load-balance
// conditions.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace soc::sim {

enum class OpKind : std::uint8_t {
  kCpuCompute,  ///< Host computation on the rank's core.
  kGpuKernel,   ///< GPGPU kernel launch + synchronization.
  kCopyH2D,     ///< Host-to-device copy (explicit cudaMemcpy-style).
  kCopyD2H,     ///< Device-to-host copy.
  kSend,        ///< Blocking message send to `peer`.
  kRecv,        ///< Blocking message receive from `peer`.
  kIsend,       ///< Non-blocking (buffered) send; completes at kWaitAll.
  kIrecv,       ///< Non-blocking receive; completes at kWaitAll.
  kWaitAll,     ///< Blocks until every outstanding Isend/Irecv completed.
  kPhase,       ///< Marks the start of iteration phase `phase` (zero cost).
  kDelay,       ///< Fixed-duration host stall of `delay_seconds` (fault
                ///< downtime, OS noise, checkpoint I/O — scenario streams).
  kEnd,         ///< End-of-stream sentinel (workloads::OpStream::get_next);
                ///< never dispatched by the engine.
};

/// Short stable identifier for an op kind ("cpu", "gpu", "h2d", "d2h",
/// "send", "recv", "isend", "irecv", "waitall", "phase", "delay", "end")
/// — the soctrace verbs.  Observers and exporters key on these.
const char* op_kind_name(OpKind kind);

/// GPU memory-management model under which kernel/copy ops execute
/// (Section III-B.5 of the paper).
enum class MemModel : std::uint8_t {
  kHostDevice,  ///< Separate address spaces, explicit copies.
  kZeroCopy,    ///< Device threads read host memory; GPU cache bypassed.
  kUnified,     ///< Managed memory, transparent migration.
};

/// One operation in a rank's program.  Fields are meaningful per kind:
/// compute ops use instructions/flops/dram_bytes/profile; kernel ops use
/// flops/dram_bytes/mem_model; copies use bytes/mem_model; messages use
/// peer/bytes/tag.
struct Op {
  OpKind kind = OpKind::kCpuCompute;
  MemModel mem_model = MemModel::kHostDevice;
  bool double_precision = true;  ///< Kernel precision (DNNs run SP).
  std::int32_t phase = 0;
  std::int32_t peer = -1;   ///< Partner rank for send/recv.
  std::int32_t tag = 0;     ///< Message tag for matching.
  std::int32_t profile = -1;  ///< Microarchitectural profile id (CPU ops).
  double instructions = 0.0;  ///< Retired instructions (CPU ops).
  double flops = 0.0;         ///< Floating-point operations performed.
  double parallelism = 1e15;  ///< GPU thread-count hint (occupancy model).
  Bytes dram_bytes = 0;       ///< Main-memory traffic generated.
  Bytes bytes = 0;            ///< Message / copy size.
  /// Duration multiplier on the cost-model-derived service time of
  /// compute/kernel/copy ops (straggler injection).  Applied by the
  /// engine AFTER cost evaluation, so memoized costs stay shared.
  double time_scale = 1.0;
  /// kDelay only: the stall duration in seconds.
  double delay_seconds = 0.0;
};

using Program = std::vector<Op>;

/// Convenience constructors keep workload generators readable.
Op cpu_op(double instructions, double flops, Bytes dram_bytes, int profile,
          int phase = 0);
Op gpu_op(double flops, Bytes dram_bytes, MemModel mm, int phase = 0,
          double parallelism = 1e15, bool double_precision = true);
Op copy_h2d_op(Bytes bytes, MemModel mm, int phase = 0);
Op copy_d2h_op(Bytes bytes, MemModel mm, int phase = 0);
Op send_op(int peer, Bytes bytes, int tag, int phase = 0);
Op recv_op(int peer, Bytes bytes, int tag, int phase = 0);
Op isend_op(int peer, Bytes bytes, int tag, int phase = 0);
Op irecv_op(int peer, Bytes bytes, int tag, int phase = 0);
Op wait_all_op(int phase = 0);
Op phase_op(int phase);
Op delay_op(double seconds, int phase = 0);
/// The kEnd sentinel (workloads::OpStream end-of-stream marker).
Op end_op();

}  // namespace soc::sim
