// Cost-model interface: how long each op takes on a concrete machine.
//
// The engine owns ordering, resource contention and message matching; the
// cost model owns per-op durations.  cluster/ composes a cost model from
// the arch/gpu/mem/net substrates for a given system configuration, and
// trace/ wraps cost models to build what-if scenarios (e.g. ideal network).
#pragma once

#include "common/units.h"
#include "sim/op.h"

namespace soc::sim {

/// Maps ranks to nodes.  `cores_per_node` bounds how many ranks may share
/// one node's CPU (the engine gives each rank a dedicated hardware thread;
/// contention effects beyond that belong to the cost model).
struct Placement {
  int nodes = 1;
  int ranks = 1;
  std::vector<int> node_of;  ///< size == ranks

  /// Block placement: `ranks` spread over `nodes` contiguously.
  static Placement block(int ranks, int nodes);
};

class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Duration of a host compute op on `rank`.
  virtual SimTime cpu_compute_time(int rank, const Op& op) const = 0;

  /// Duration of a GPU kernel (launch overhead + execution).
  virtual SimTime gpu_kernel_time(int rank, const Op& op) const = 0;

  /// Duration of a host<->device copy under the op's memory model.
  virtual SimTime copy_time(int rank, const Op& op) const = 0;

  /// One-way message latency between two nodes (0 allowed for intra-node).
  virtual SimTime message_latency(int src_node, int dst_node) const = 0;

  /// Serialization time of `bytes` on the src→dst path (excludes latency).
  virtual SimTime message_transfer_time(int src_node, int dst_node,
                                        Bytes bytes) const = 0;

  /// CPU-side overhead charged to the sender per message.
  virtual SimTime send_overhead(int rank) const = 0;

  /// CPU-side overhead charged to the receiver per message.
  virtual SimTime recv_overhead(int rank) const = 0;

  /// True when every duration is a pure function of the documented
  /// per-kind op fields (and node ids for messaging): independent of rank
  /// identity, call order, and any mutable state.  MemoCostModel relies
  /// on this to cache evaluations inside a run; models whose costs vary
  /// per rank or per call must keep the default.
  virtual bool memoizable() const { return false; }
};

}  // namespace soc::sim
