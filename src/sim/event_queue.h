// Deterministic event queue.
//
// Min-heap keyed by (time, sequence).  The monotonically increasing
// sequence number gives a total order even among simultaneous events, so
// replay is bit-reproducible regardless of heap implementation details.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/units.h"

namespace soc::sim {

/// A scheduled wake-up for a rank (payload is an opaque int).
struct Event {
  SimTime time = 0;
  std::uint64_t seq = 0;
  int payload = 0;
};

class EventQueue {
 public:
  /// Schedules `payload` to fire at `time`.  Events at equal times fire in
  /// insertion order.
  void push(SimTime time, int payload);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Returns and removes the earliest event.  Queue must be non-empty.
  Event pop();

  /// Earliest scheduled time; queue must be non-empty.
  SimTime next_time() const;

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace soc::sim
