// Deterministic event queue.
//
// Min-heap keyed by (time, sequence).  The monotonically increasing
// sequence number gives a total order even among simultaneous events, so
// replay is bit-reproducible regardless of heap implementation details.
//
// Two hot-path refinements over a plain std::priority_queue, neither of
// which changes the pop order for any push sequence:
//
//  - reserve() pre-sizes the heap storage so steady-state push never
//    reallocates (the engine sizes it off the rank count up front).
//  - Events pushed at exactly the current time (the time of the last
//    pop) bypass the heap into a FIFO ring.  Zero-duration wake-ups —
//    phase markers, ideal-network completions, already-satisfied waits —
//    are common enough that this skips a sift-up/sift-down pair per
//    event.  The ring only ever holds events of one time value, so pop
//    compares its front against the heap top by the same (time, seq) key
//    and the merged order is identical to the pure-heap order.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ring_queue.h"
#include "common/units.h"

namespace soc::sim {

/// A scheduled wake-up for a rank (payload is an opaque int).
struct Event {
  SimTime time = 0;
  std::uint64_t seq = 0;
  int payload = 0;
};

class EventQueue {
 public:
  /// Schedules `payload` to fire at `time`.  Events at equal times fire in
  /// insertion order.
  void push(SimTime time, int payload);

  bool empty() const { return heap_.empty() && now_.empty(); }
  std::size_t size() const { return heap_.size() + now_.size(); }

  /// Pre-sizes internal storage for about `n` concurrently scheduled
  /// events.  Purely an allocation hint: pop order is unaffected.
  void reserve(std::size_t n);

  /// Resets to the just-constructed state but keeps the storage, so a
  /// re-run over the same queue never reallocates.
  void clear() {
    heap_.clear();
    now_.clear();
    next_seq_ = 0;
    last_pop_time_ = 0;
  }

  /// Returns and removes the earliest event.  Queue must be non-empty.
  Event pop();

  /// Earliest scheduled time; queue must be non-empty.
  SimTime next_time() const;

 private:
  /// Strict (time, seq) ordering — the determinism contract.
  static bool earlier(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Event> heap_;    ///< Binary min-heap by (time, seq).
  RingQueue<Event> now_;       ///< FIFO of events at exactly last_pop_time_.
  std::uint64_t next_seq_ = 0;
  SimTime last_pop_time_ = 0;
};

/// An event ordered by an *intrinsic* 64-bit key instead of insertion
/// order.  The sharded engine needs a total event order that every shard
/// can reproduce without coordination, and push order is inherently
/// schedule-dependent — so ties at equal times break on a key derived
/// from the event's identity (protocol class, endpoint ranks, per-rank
/// sequence; see engine.cpp's event_key helpers).  Keys are unique among
/// coexisting events, making (time, key) a strict total order.
struct KeyedEvent {
  SimTime time = 0;
  std::uint64_t key = 0;
  std::int32_t payload = 0;  ///< Rank for wake-ups; proto-pool slot for
                             ///< protocol messages (engine convention).
};

/// Deterministic min-heap keyed by (time, key).  Unlike EventQueue, pop
/// order is independent of push order by construction, so two engines
/// that schedule the same event set in different orders (different shard
/// counts, mailbox drains) still pop identically.
class KeyedEventQueue {
 public:
  void push(SimTime time, std::uint64_t key, std::int32_t payload);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Pre-sizes heap storage (allocation hint only).
  void reserve(std::size_t n) { heap_.reserve(n); }

  void clear() { heap_.clear(); }

  /// Returns and removes the earliest event.  Queue must be non-empty.
  KeyedEvent pop();

  /// Earliest scheduled (time, key); queue must be non-empty.
  const KeyedEvent& top() const { return heap_.front(); }

 private:
  /// Strict (time, key) ordering — the partition-invariance contract.
  static bool earlier(const KeyedEvent& a, const KeyedEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.key < b.key;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<KeyedEvent> heap_;  ///< Binary min-heap by (time, key).
};

}  // namespace soc::sim
