// Pull-based operation sources.
//
// The engine consumes one op at a time per rank through OpSource instead
// of requiring whole per-rank programs up front.  The pull carries the
// deterministic simulation time at which the rank asks for its next op,
// so time-triggered sources (fault injection, OS noise, checkpoint
// cadences — see src/workloads/scenario.h) are themselves deterministic:
// the engine is serial and its event order is fixed, hence so is every
// (rank, now) pull sequence.
//
// ProgramSource adapts the classic eager path (one std::vector<Op> per
// rank); RecordingSource tees any source into materialized programs so a
// streamed run can be replayed verbatim under what-if scenarios
// (trace::replay_scenarios).
#pragma once

#include <vector>

#include "sim/op.h"

namespace soc::sim {

/// One per-rank operation source the engine pulls from.
///
/// Contract: next() is called with monotonically non-decreasing `now` per
/// rank; each true return hands the engine exactly one op, and the first
/// false return ends that rank's stream permanently.  A parked op
/// (rendezvous, kWaitAll) is NOT re-pulled on wake — the engine buffers
/// the current op — so a source sees each op requested exactly once.
class OpSource {
 public:
  virtual ~OpSource() = default;

  /// Number of rank streams (must match the engine's placement).
  virtual int ranks() const = 0;

  /// Pulls `rank`'s next op at simulation time `now`.  Returns false at
  /// end of stream (and `*op` is left untouched).
  virtual bool next(int rank, SimTime now, Op* op) = 0;
};

/// Walks pre-built per-rank programs (non-owning; the vector must outlive
/// the source).  This is the eager Workload::build() compatibility path.
class ProgramSource final : public OpSource {
 public:
  explicit ProgramSource(const std::vector<Program>& programs);

  int ranks() const override;
  bool next(int rank, SimTime now, Op* op) override;

 private:
  const std::vector<Program>* programs_;
  std::vector<std::size_t> cursor_;
};

/// Tees another source: every pulled op is appended to a per-rank
/// program, so the exact streamed op sequence can be replayed later.
class RecordingSource final : public OpSource {
 public:
  explicit RecordingSource(OpSource& inner);

  int ranks() const override;
  bool next(int rank, SimTime now, Op* op) override;

  /// The ops recorded so far, one program per rank, in pull order.
  const std::vector<Program>& programs() const { return programs_; }

 private:
  OpSource* inner_;
  std::vector<Program> programs_;
};

}  // namespace soc::sim
