// Engine self-telemetry: what the *simulator itself* did during a run.
//
// PRs 2/5/7 observe the simulated cluster; this header observes the
// engine.  An EngineTelemetry instance attached through
// EngineConfig::telemetry makes run() record two very different kinds of
// data, and the split is the whole design:
//
//  - Deterministic counters.  Events processed, ops fetched, wakes,
//    protocol messages by kind — quantities fixed by the simulation's
//    control flow.  The committed event stream is byte-identical at any
//    shard/thread count (DESIGN.md §16), so these aggregate counters are
//    too, and CI compares their JSON rendering across shard counts,
//    thread counts, and build flavors like any other artifact.  Per-shard
//    detail (queue high-water, windows stepped, mailbox traffic) is
//    deterministic only at a fixed shard count and lives in a separate
//    artifact section.
//
//  - Wall-clock timings.  Per-window step/barrier/drain/merge spans of
//    the real execution, per-worker busy time.  Nondeterministic by
//    nature, never CI-compared, and the input to the zero-residual
//    scaling-loss decomposition in src/prof/selfprof.h.
//
// The counters live inside Engine::Shard (each shard counts only its own
// work, under the same SOC_SHARD_LOCAL discipline as the rest of the
// shard state) and are aggregated into this struct by the coordinator.
// With no telemetry attached every instrumentation site is a single
// pointer test — the engine's hot path is otherwise untouched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.h"

namespace soc::sim {

/// Deterministic work counters for one event-queue shard.  Members are
/// written only by the owning worker during a window (or by the
/// coordinator between barriers), exactly like every other Shard member.
struct ShardCounters {
  std::uint64_t events_processed = 0;  // SOC_SHARD_LOCAL
  std::uint64_t wakes = 0;             // SOC_SHARD_LOCAL
  std::uint64_t ops_fetched = 0;       // SOC_SHARD_LOCAL
  std::uint64_t protos_arrival = 0;    // SOC_SHARD_LOCAL
  std::uint64_t protos_rts = 0;        // SOC_SHARD_LOCAL
  std::uint64_t protos_cts = 0;        // SOC_SHARD_LOCAL
  std::uint64_t cross_shard_sent = 0;  // SOC_SHARD_LOCAL
  std::uint64_t queue_high_water = 0;  // SOC_SHARD_LOCAL
  std::uint64_t windows_stepped = 0;   // SOC_SHARD_LOCAL
  std::uint64_t empty_windows = 0;     // SOC_SHARD_LOCAL
  /// Cross-shard protocol messages routed into each destination shard's
  /// mailbox (index = destination shard; self entry stays zero).
  std::vector<std::uint64_t> mailbox_sent;  // SOC_SHARD_LOCAL
};

/// One wall-clock span of the engine's own execution, for the real-time
/// Chrome trace (obs::engine_wallclock_trace_json).  Times are
/// nanoseconds since run() started, from a monotonic clock.
struct EngineSpan {
  enum Kind : std::uint8_t {
    kStep = 0,  ///< A worker (or the coordinator) stepping its shards.
    kBarrier,   ///< Waiting at a window barrier.
    kDrain,     ///< Coordinator draining cross-shard mailboxes.
    kMerge,     ///< Coordinator merging/replaying commit buffers.
  };
  Kind kind = kStep;
  /// Execution lane: 0 = coordinator thread, 1 + w for pool worker w.
  std::int32_t lane = 0;
  std::uint64_t window = 0;    ///< Window index (0 outside the loop).
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
};

const char* engine_span_kind_name(EngineSpan::Kind kind);

/// Self-instrumentation sink for one Engine::run.  Attach via
/// EngineConfig::telemetry (non-owning; must outlive the run); run()
/// resets it at entry, so instances are reusable across runs.
struct EngineTelemetry {
  // --- resolved run shape (echoed so artifacts are self-describing) ---
  int shards = 1;
  int workers = 1;       ///< Pool threads; 1 = coordinator-stepped.
  bool windowed = false; ///< False = serial path (one shard, no windows).
  SimTime lookahead = 0; ///< Resolved conservative lookahead (ns).

  // --- deterministic counters (aggregates are shard/thread-invariant) ---
  std::uint64_t events_committed = 0;
  std::uint64_t commit_records = 0;  ///< Observer-dependent, run-stable.
  std::uint64_t windows = 0;         ///< Window-loop iterations.
  std::vector<ShardCounters> shard;  ///< Per-shard detail.

  // --- wall-clock timings (nondeterministic) ---
  std::uint64_t wall_total_ns = 0;  ///< run() entry to exit.
  /// Coordinator-observed window phases.  step_wall is the time between
  /// releasing the workers and the last one finishing (it upper-bounds
  /// busy_max); drain/merge are the between-barrier coordinator phases.
  std::uint64_t step_wall_ns = 0;
  std::uint64_t drain_wall_ns = 0;
  std::uint64_t merge_wall_ns = 0;
  /// Per-window worker busy time folded across windows: busy_max sums
  /// each window's slowest worker, busy_sum sums all workers.  The
  /// telescoped scaling decomposition (prof::explain_scaling) is built
  /// on step_wall >= busy_max >= busy_sum / workers holding per window.
  std::uint64_t busy_max_ns = 0;
  std::uint64_t busy_sum_ns = 0;
  std::vector<std::uint64_t> worker_busy_ns;     ///< Total per pool worker.
  std::vector<std::uint64_t> worker_barrier_ns;  ///< Barrier wait per worker.

  // --- wall-clock trace spans (bounded; drops counted, never silent) ---
  std::size_t max_spans_per_lane = 1 << 14;
  std::uint64_t spans_dropped = 0;
  std::vector<EngineSpan> spans;

  /// Clears everything except max_spans_per_lane (run() calls this).
  void reset() {
    shards = 1;
    workers = 1;
    windowed = false;
    lookahead = 0;
    events_committed = 0;
    commit_records = 0;
    windows = 0;
    shard.clear();
    wall_total_ns = 0;
    step_wall_ns = 0;
    drain_wall_ns = 0;
    merge_wall_ns = 0;
    busy_max_ns = 0;
    busy_sum_ns = 0;
    worker_busy_ns.clear();
    worker_barrier_ns.clear();
    spans_dropped = 0;
    spans.clear();
  }
};

}  // namespace soc::sim
