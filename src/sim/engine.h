// The replay engine.
//
// Pulls one op stream per rank from an OpSource (or replays pre-built
// Programs through the ProgramSource adapter) against a CostModel,
// resolving resource contention (per-node GPU, copy engine, NIC) and
// blocking message semantics.  Event ordering is deterministic: ties
// break by event insertion order, so a given (source, cost model,
// scenario) triple always yields the identical RunStats.
//
// Scenario knobs implement the DIMEMAS-style what-if replays of the
// paper's scalability methodology: `ideal_network` zeroes latency and
// transfer time while preserving all dependencies (isolates Ser), and
// `compute_scale` rescales each rank's compute durations (ideal load
// balance sets these so every rank does the average amount of work).
#pragma once

#include <memory>
#include <vector>

#include "common/flat_map.h"
#include "common/hash.h"
#include "common/ring_queue.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"
#include "sim/op.h"
#include "sim/op_stream.h"
#include "sim/stats.h"

namespace soc::sim {

/// What-if replay configuration.
struct Scenario {
  bool ideal_network = false;       ///< Zero-latency, infinite-bandwidth net.
  std::vector<double> compute_scale;  ///< Per-rank multiplier (empty = 1.0).
};

/// Resource lanes a committed span can occupy.  Observers key queue-wait
/// histograms and timeline rows off these.
enum class Lane : std::uint8_t {
  kCpu = 0,  ///< The rank's host core (compute ops).
  kGpu,      ///< The node's shared GPU.
  kCopy,     ///< The node's copy engine.
  kNicTx,    ///< NIC transmit side (inter-node transfers only).
  kNicRx,    ///< NIC receive side (inter-node transfers only).
  kCount,
};

inline constexpr std::size_t kLaneCount = static_cast<std::size_t>(Lane::kCount);

/// Short stable identifier ("cpu", "gpu", "copy", "nic-tx", "nic-rx").
const char* lane_name(Lane lane);

/// One committed dispatch: exactly the record the determinism auditor
/// folds into RunStats::event_checksum, plus placement context.
struct DispatchRecord {
  SimTime time = 0;       ///< Dispatch time (the audited timestamp).
  int rank = 0;
  int node = 0;
  int phase = 0;          ///< The rank's phase at dispatch.
  std::uint8_t kind = 0;  ///< OpKind byte, or 0xFF when a rank drains.
  Bytes bytes = 0;
  /// Op index in the rank's program (program size for the drain record).
  /// A kWaitAll op that parks is re-dispatched on wake with the same pc,
  /// so consumers can fold the pair back into one op instance.
  std::int32_t pc = 0;
  std::int32_t peer = -1;  ///< Partner rank for message ops (-1 otherwise).
  std::int32_t tag = 0;    ///< Message tag for message ops.
};

/// One timed occupancy of a resource lane.
struct SpanRecord {
  Lane lane = Lane::kCpu;
  int rank = 0;            ///< Rank whose op occupies the lane.
  int node = 0;            ///< Node hosting the lane.
  int phase = 0;
  std::uint8_t kind = 0;   ///< OpKind byte of the originating op.
  SimTime start = 0;
  SimTime end = 0;
  SimTime queue_wait = 0;  ///< start minus request time (contention).
  SimTime fabric_wait = 0; ///< Portion of queue_wait spent on the fabric.
  Bytes bytes = 0;         ///< Message/copy size; DRAM bytes for compute.
};

/// One matched message transfer (fires once per send/recv pair, at the
/// moment the transfer is committed).
struct MessageRecord {
  bool eager = false;       ///< Eager protocol (false = rendezvous).
  bool inter_node = false;
  int src_rank = 0;
  int dst_rank = 0;
  int phase = 0;            ///< Sender's phase.
  int tag = 0;              ///< Message tag (matches the endpoints' ops).
  Bytes bytes = 0;
  SimTime start = 0;
  SimTime end = 0;
  SimTime latency = 0;      ///< Latency share of [start, end); the rest is
                            ///< wire/copy transfer time.
};

struct EngineConfig;

/// Hook interface over the engine's committed event stream.
///
/// Attach with Engine::set_observer before run().  Every callback fires in
/// the engine's deterministic total event order, so anything an observer
/// derives inherits the determinism promise (equal configurations produce
/// equal observations).  When no observer is attached the engine pays a
/// single predictable branch per hook site and performs no per-event
/// allocation — src/obs/ builds the metrics registry and Chrome-trace
/// exporter on top of this interface.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  /// A run is starting; `placement` maps ranks to nodes.
  virtual void on_run_begin(const Placement& placement,
                            const EngineConfig& config);
  /// One committed dispatch (the determinism-digest stream).
  virtual void on_dispatch(const DispatchRecord& record);
  /// One resource-lane occupancy with its queue-wait breakdown.
  virtual void on_span(const SpanRecord& span);
  /// One matched message transfer.
  virtual void on_message(const MessageRecord& message);
  /// A message endpoint parked unmatched; arguments are the current
  /// pending-send / pending-receive depths (posted irecvs included).
  virtual void on_pending(int pending_sends, int pending_recvs);
  /// The run finished; `stats` carries the final aggregates and digest.
  virtual void on_run_end(const RunStats& stats);
};

/// Engine tuning knobs.
struct EngineConfig {
  /// Messages at or below this size use the eager protocol (sender does
  /// not block on the receiver); larger messages rendezvous.
  Bytes eager_threshold = 8 * kKiB;
  /// Width of the busy-time timeline bins (power-model input).
  double timeline_bin_seconds = 0.1;
  /// Aggregate switch-fabric capacity in bytes/s shared by all inter-node
  /// transfers (0 = unlimited).  Models the bisection bandwidth of the
  /// cluster switch: concurrent flows queue on the fabric once their sum
  /// exceeds it.
  double bisection_bandwidth = 0.0;
  /// Safety valve: abort if simulated time exceeds this many seconds.
  double max_sim_seconds = 3.0e6;
  /// Allocation hint for the event queue and pending-message tables
  /// (0 = derive from the rank count).  Purely a reservation: committed
  /// events and all derived artifacts are identical for any value.
  int queue_reserve = 0;
};

class Engine {
 public:
  Engine(Placement placement, const CostModel& cost_model,
         EngineConfig config = {}, Scenario scenario = {});

  /// Pulls every rank's op stream to completion and returns the
  /// collected stats.  Throws soc::Error on deadlock (unmatched
  /// send/recv) or misuse.  The source is single-use: the run consumes
  /// it.
  RunStats run(OpSource& source);

  /// Replays pre-built programs (wraps them in a ProgramSource).
  RunStats run(const std::vector<Program>& programs);

  /// Attaches a (non-owning) observer over the committed event stream;
  /// nullptr detaches.  Must not change during run().
  void set_observer(EngineObserver* observer) { observer_ = observer; }

 private:
  struct RankState {
    std::size_t pc = 0;        ///< Index of the current op in pull order.
    SimTime ready = 0;         ///< Time the rank becomes runnable.
    int phase = 0;             ///< Current phase id.
    bool blocked = false;      ///< Parked on an unmatched message.
    bool done = false;
    // -- Stream cursor: the op pulled from the source but not yet
    //    finished.  A parked op (rendezvous, kWaitAll) stays buffered so
    //    wake-ups re-dispatch it without re-pulling the source; advance()
    //    clears the buffer together with bumping pc.
    Op current{};
    bool have_current = false;
    bool exhausted = false;    ///< The source returned end-of-stream.
    // -- Non-blocking request window (between Isend/Irecv and WaitAll) --
    int unresolved_requests = 0;   ///< Requests with unknown completion.
    SimTime requests_complete = 0; ///< Max known request completion.
    bool waiting_all = false;      ///< Parked inside kWaitAll.
  };

  // A posted-but-unmatched message endpoint.
  struct PendingSend {
    int rank;
    SimTime ready;    ///< When the sender reached the send.
    Bytes bytes;
    int phase;
  };
  struct PendingRecv {
    int rank;
    SimTime ready;
    int phase;
  };
  // Eager messages that already "arrived" and wait for their receive.
  struct Arrival {
    SimTime time;
    Bytes bytes;
  };

  using MsgKey = std::uint64_t;  ///< (src, dst, tag) packed.

  static MsgKey msg_key(int src, int dst, int tag);

  void execute_next(int rank, SimTime now, OpSource& source);
  /// Finishes the rank's current op: bumps pc and drops the stream
  /// buffer so the next execute_next pulls a fresh op.  Every site that
  /// used to advance a rank's pc — including cross-rank wake paths —
  /// must go through here, or the stream cursor desynchronizes.
  void advance(int rank);
  void start_compute(int rank, SimTime now, const Op& op);
  void start_delay(int rank, SimTime now, const Op& op);
  void start_gpu(int rank, SimTime now, const Op& op);
  void start_copy(int rank, SimTime now, const Op& op);
  void start_send(int rank, SimTime now, const Op& op);
  void start_recv(int rank, SimTime now, const Op& op);
  void start_isend(int rank, SimTime now, const Op& op);
  void start_irecv(int rank, SimTime now, const Op& op);
  void start_wait_all(int rank, SimTime now);

  /// Applies NIC/fabric occupancy to a transfer starting no earlier than
  /// `earliest`; returns the completion time and records the traffic.
  SimTime timed_transfer(int send_rank, int recv_rank, SimTime earliest,
                         Bytes bytes, int tag);

  /// Marks one of `rank`'s outstanding requests resolved with the given
  /// completion time; wakes the rank if it was parked in kWaitAll.
  void resolve_request(int rank, SimTime completion);

  /// Performs a matched rendezvous transfer; wakes both ranks.
  void complete_rendezvous(int send_rank, SimTime send_ready, int recv_rank,
                           SimTime recv_ready, Bytes bytes, int tag);
  /// Sends an eager message; returns its arrival time at the receiver.
  SimTime launch_eager(int src_rank, int dst_rank, SimTime now, Bytes bytes,
                       int tag);

  /// Folds one committed dispatch into the determinism digest
  /// (RunStats::event_checksum).  `kind` is the OpKind byte, or
  /// kRankDoneAudit when a rank drains its program.  `peer`/`tag` only
  /// annotate the observer record (message ops); the digest is unchanged.
  void audit_event(SimTime now, int rank, std::uint8_t kind, Bytes bytes,
                   int peer = -1, int tag = 0);
  static constexpr std::uint8_t kRankDoneAudit = 0xFF;

  double compute_scale_for(int rank) const;
  SimTime scaled(SimTime t, int rank) const;
  void add_phase_compute(int rank, SimTime duration);
  void bin_busy(std::vector<double>& lane, SimTime start, SimTime end);
  void bin_value(std::vector<double>& lane, SimTime at, double value);
  /// Books a committed transfer into the stats and, when an observer is
  /// attached, emits its message record and NIC spans.  `requested` is when
  /// the transfer was asked for (start - requested = queue wait);
  /// `fabric_wait` the share of that wait spent queued on the fabric.
  void account_transfer(int src_rank, int dst_rank, SimTime requested,
                        SimTime start, SimTime end, Bytes bytes, bool eager,
                        SimTime fabric_wait, int tag, SimTime latency);
  /// Emits one resource-lane span to the observer (no-op when detached).
  void observe_span(Lane lane, int rank, int node, std::uint8_t kind,
                    SimTime start, SimTime end, SimTime queue_wait,
                    SimTime fabric_wait, Bytes bytes);
  /// Notifies the observer that a message endpoint parked unmatched.
  void observe_pending();

  Placement placement_;
  const CostModel& cost_;
  EngineConfig config_;
  Scenario scenario_;

  EventQueue queue_;
  std::vector<RankState> states_;
  std::vector<SimTime> gpu_free_;     ///< Per node.
  std::vector<SimTime> copy_free_;    ///< Per node.
  std::vector<SimTime> nic_tx_free_;  ///< Per node (full-duplex NIC: tx).
  std::vector<SimTime> nic_rx_free_;  ///< Per node (full-duplex NIC: rx).
  SimTime fabric_free_ = 0;           ///< Switch bisection pipe.
  // Pending-message tables: flat maps keep O(1) expected matching with
  // deterministic behavior (see common/flat_map.h), and the ring-queue
  // values retain their buffers across matches, so the steady-state
  // matching path performs no allocation at all.
  flat_map<MsgKey, RingQueue<PendingSend>> pending_sends_;
  flat_map<MsgKey, RingQueue<PendingRecv>> pending_recvs_;
  flat_map<MsgKey, RingQueue<int>> pending_irecvs_;  ///< Posted ranks.
  flat_map<MsgKey, RingQueue<Arrival>> arrivals_;
  RunStats stats_;
  Fnv1a audit_;  ///< Running digest of the committed event stream.

  EngineObserver* observer_ = nullptr;  ///< Non-owning; nullptr = detached.
  int pending_send_depth_ = 0;  ///< Parked rendezvous senders.
  int pending_recv_depth_ = 0;  ///< Parked blocking recvs + posted irecvs.
};

}  // namespace soc::sim
