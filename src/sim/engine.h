// The replay engine.
//
// Executes one Program per rank against a CostModel, resolving resource
// contention (per-node GPU, copy engine, NIC) and blocking message
// semantics.  Event ordering is deterministic: ties break by event
// insertion order, so a given (programs, cost model, scenario) triple
// always yields the identical RunStats.
//
// Scenario knobs implement the DIMEMAS-style what-if replays of the
// paper's scalability methodology: `ideal_network` zeroes latency and
// transfer time while preserving all dependencies (isolates Ser), and
// `compute_scale` rescales each rank's compute durations (ideal load
// balance sets these so every rank does the average amount of work).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "common/hash.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"
#include "sim/op.h"
#include "sim/stats.h"

namespace soc::sim {

/// What-if replay configuration.
struct Scenario {
  bool ideal_network = false;       ///< Zero-latency, infinite-bandwidth net.
  std::vector<double> compute_scale;  ///< Per-rank multiplier (empty = 1.0).
};

/// Engine tuning knobs.
struct EngineConfig {
  /// Messages at or below this size use the eager protocol (sender does
  /// not block on the receiver); larger messages rendezvous.
  Bytes eager_threshold = 8 * kKiB;
  /// Width of the busy-time timeline bins (power-model input).
  double timeline_bin_seconds = 0.1;
  /// Aggregate switch-fabric capacity in bytes/s shared by all inter-node
  /// transfers (0 = unlimited).  Models the bisection bandwidth of the
  /// cluster switch: concurrent flows queue on the fabric once their sum
  /// exceeds it.
  double bisection_bandwidth = 0.0;
  /// Safety valve: abort if simulated time exceeds this many seconds.
  double max_sim_seconds = 3.0e6;
};

class Engine {
 public:
  Engine(Placement placement, const CostModel& cost_model,
         EngineConfig config = {}, Scenario scenario = {});

  /// Replays the programs to completion and returns the collected stats.
  /// Throws soc::Error on deadlock (unmatched send/recv) or misuse.
  RunStats run(const std::vector<Program>& programs);

 private:
  struct RankState {
    std::size_t pc = 0;        ///< Next op index.
    SimTime ready = 0;         ///< Time the rank becomes runnable.
    int phase = 0;             ///< Current phase id.
    bool blocked = false;      ///< Parked on an unmatched message.
    bool done = false;
    // -- Non-blocking request window (between Isend/Irecv and WaitAll) --
    int unresolved_requests = 0;   ///< Requests with unknown completion.
    SimTime requests_complete = 0; ///< Max known request completion.
    bool waiting_all = false;      ///< Parked inside kWaitAll.
  };

  // A posted-but-unmatched message endpoint.
  struct PendingSend {
    int rank;
    SimTime ready;    ///< When the sender reached the send.
    Bytes bytes;
    int phase;
  };
  struct PendingRecv {
    int rank;
    SimTime ready;
    int phase;
  };
  // Eager messages that already "arrived" and wait for their receive.
  struct Arrival {
    SimTime time;
    Bytes bytes;
  };

  using MsgKey = std::uint64_t;  ///< (src, dst, tag) packed.

  static MsgKey msg_key(int src, int dst, int tag);

  void execute_next(int rank, SimTime now, const std::vector<Program>& programs);
  void start_compute(int rank, SimTime now, const Op& op);
  void start_gpu(int rank, SimTime now, const Op& op);
  void start_copy(int rank, SimTime now, const Op& op);
  void start_send(int rank, SimTime now, const Op& op);
  void start_recv(int rank, SimTime now, const Op& op);
  void start_isend(int rank, SimTime now, const Op& op);
  void start_irecv(int rank, SimTime now, const Op& op);
  void start_wait_all(int rank, SimTime now);

  /// Applies NIC/fabric occupancy to a transfer starting no earlier than
  /// `earliest`; returns the completion time and records the traffic.
  SimTime timed_transfer(int send_rank, int recv_rank, SimTime earliest,
                         Bytes bytes);

  /// Marks one of `rank`'s outstanding requests resolved with the given
  /// completion time; wakes the rank if it was parked in kWaitAll.
  void resolve_request(int rank, SimTime completion);

  /// Performs a matched rendezvous transfer; wakes both ranks.
  void complete_rendezvous(int send_rank, SimTime send_ready, int recv_rank,
                           SimTime recv_ready, Bytes bytes);
  /// Sends an eager message; returns its arrival time at the receiver.
  SimTime launch_eager(int src_rank, int dst_rank, SimTime now, Bytes bytes);

  /// Folds one committed dispatch into the determinism digest
  /// (RunStats::event_checksum).  `kind` is the OpKind byte, or
  /// kRankDoneAudit when a rank drains its program.
  void audit_event(SimTime now, int rank, std::uint8_t kind, Bytes bytes);
  static constexpr std::uint8_t kRankDoneAudit = 0xFF;

  double compute_scale_for(int rank) const;
  SimTime scaled(SimTime t, int rank) const;
  void add_phase_compute(int rank, SimTime duration);
  void bin_busy(std::vector<double>& lane, SimTime start, SimTime end);
  void bin_value(std::vector<double>& lane, SimTime at, double value);
  void account_transfer(int src_rank, int dst_rank, SimTime start,
                        SimTime end, Bytes bytes);

  Placement placement_;
  const CostModel& cost_;
  EngineConfig config_;
  Scenario scenario_;

  EventQueue queue_;
  std::vector<RankState> states_;
  std::vector<SimTime> gpu_free_;     ///< Per node.
  std::vector<SimTime> copy_free_;    ///< Per node.
  std::vector<SimTime> nic_tx_free_;  ///< Per node (full-duplex NIC: tx).
  std::vector<SimTime> nic_rx_free_;  ///< Per node (full-duplex NIC: rx).
  SimTime fabric_free_ = 0;           ///< Switch bisection pipe.
  std::map<MsgKey, std::deque<PendingSend>> pending_sends_;
  std::map<MsgKey, std::deque<PendingRecv>> pending_recvs_;
  std::map<MsgKey, std::deque<int>> pending_irecvs_;  ///< Posted ranks.
  std::map<MsgKey, std::deque<Arrival>> arrivals_;
  RunStats stats_;
  Fnv1a audit_;  ///< Running digest of the committed event stream.
};

}  // namespace soc::sim
