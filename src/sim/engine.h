// The replay engine.
//
// Pulls one op stream per rank from an OpSource (or replays pre-built
// Programs through the ProgramSource adapter) against a CostModel,
// resolving resource contention (per-node GPU, copy engine, NIC) and
// blocking message semantics.
//
// Event ordering is deterministic and *partition-invariant*: events are
// totally ordered by (time, key) where the key is intrinsic to the event
// (protocol class, endpoint ranks, per-rank sequence) rather than derived
// from push order.  One run can therefore be sharded across
// EngineConfig::shards event queues — nodes partition into shards, each
// shard owns its ranks' state and pending tables, and shards synchronize
// with conservative (YAWNS/CMB-style) lookahead windows derived from the
// minimum cross-node message latency in the cost model.  Cross-node
// traffic travels as timestamped protocol messages (eager arrival,
// rendezvous RTS/CTS) whose timestamps are at least one latency in the
// future, so every event a shard can receive from another shard lands
// beyond the current window.  The committed event stream, the
// determinism digest, and every derived artifact are byte-identical at
// any shard count (and any thread count).  See DESIGN.md §16.
//
// Scenario knobs implement the DIMEMAS-style what-if replays of the
// paper's scalability methodology: `ideal_network` zeroes latency and
// transfer time while preserving all dependencies (isolates Ser), and
// `compute_scale` rescales each rank's compute durations (ideal load
// balance sets these so every rank does the average amount of work).
#pragma once

#include <memory>
#include <vector>

#include "common/flat_map.h"
#include "common/hash.h"
#include "common/ring_queue.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"
#include "sim/op.h"
#include "sim/op_stream.h"
#include "sim/stats.h"
#include "sim/telemetry.h"

namespace soc::sim {

/// What-if replay configuration.
struct Scenario {
  bool ideal_network = false;       ///< Zero-latency, infinite-bandwidth net.
  std::vector<double> compute_scale;  ///< Per-rank multiplier (empty = 1.0).
};

/// Resource lanes a committed span can occupy.  Observers key queue-wait
/// histograms and timeline rows off these.
enum class Lane : std::uint8_t {
  kCpu = 0,  ///< The rank's host core (compute ops).
  kGpu,      ///< The node's shared GPU.
  kCopy,     ///< The node's copy engine.
  kNicTx,    ///< NIC transmit side (inter-node transfers only).
  kNicRx,    ///< NIC receive side (inter-node transfers only).
  kCount,
};

inline constexpr std::size_t kLaneCount = static_cast<std::size_t>(Lane::kCount);

/// Short stable identifier ("cpu", "gpu", "copy", "nic-tx", "nic-rx").
const char* lane_name(Lane lane);

/// One committed dispatch: exactly the record the determinism auditor
/// folds into RunStats::event_checksum, plus placement context.
struct DispatchRecord {
  SimTime time = 0;       ///< Dispatch time (the audited timestamp).
  int rank = 0;
  int node = 0;
  int phase = 0;          ///< The rank's phase at dispatch.
  std::uint8_t kind = 0;  ///< OpKind byte, or 0xFF when a rank drains.
  Bytes bytes = 0;
  /// Op index in the rank's program (program size for the drain record).
  /// A kWaitAll op that parks is re-dispatched on wake with the same pc,
  /// so consumers can fold the pair back into one op instance.
  std::int32_t pc = 0;
  std::int32_t peer = -1;  ///< Partner rank for message ops (-1 otherwise).
  std::int32_t tag = 0;    ///< Message tag for message ops.
};

/// One timed occupancy of a resource lane.
struct SpanRecord {
  Lane lane = Lane::kCpu;
  int rank = 0;            ///< Rank whose op occupies the lane.
  int node = 0;            ///< Node hosting the lane.
  int phase = 0;
  std::uint8_t kind = 0;   ///< OpKind byte of the originating op.
  SimTime start = 0;
  SimTime end = 0;
  SimTime queue_wait = 0;  ///< start minus request time (contention).
  SimTime fabric_wait = 0; ///< Portion of queue_wait spent on the fabric.
  Bytes bytes = 0;         ///< Message/copy size; DRAM bytes for compute.
};

/// One matched message transfer (fires once per send/recv pair, at the
/// moment the receive side commits the transfer).
struct MessageRecord {
  bool eager = false;       ///< Eager protocol (false = rendezvous).
  bool inter_node = false;
  int src_rank = 0;
  int dst_rank = 0;
  int phase = 0;            ///< Sender's phase.
  int tag = 0;              ///< Message tag (matches the endpoints' ops).
  Bytes bytes = 0;
  SimTime start = 0;
  SimTime end = 0;
  SimTime latency = 0;      ///< Latency share of [start, end); the rest is
                            ///< wire/copy transfer time.
  /// When the payload was actually available to the receiver: `end` plus
  /// any switch output-port queueing (== end when the port was free).
  /// Receiver-side completion math keys off this, not off `end`, which
  /// stays the *nominal* start + latency + transfer so cost tables
  /// derived from traces remain pure.
  SimTime delivery = 0;
  /// Rendezvous only: when the sender unblocked (the CTS timestamp,
  /// >= end).  0 for eager transfers (the sender never blocks on them).
  SimTime sender_complete = 0;
};

struct EngineConfig;

/// Hook interface over the engine's committed event stream.
///
/// Attach with Engine::set_observer before run().  Every callback fires in
/// the engine's deterministic total (time, key) commit order, so anything
/// an observer derives inherits the determinism promise (equal
/// configurations produce equal observations at any shard/thread count).
/// When no observer is attached the engine skips span/message/pending
/// buffering entirely — src/obs/ builds the metrics registry and
/// Chrome-trace exporter on top of this interface.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  /// A run is starting; `placement` maps ranks to nodes.  `config` carries
  /// the resolved lookahead window (EngineConfig::lookahead).
  virtual void on_run_begin(const Placement& placement,
                            const EngineConfig& config);
  /// One committed dispatch (the determinism-digest stream).
  virtual void on_dispatch(const DispatchRecord& record);
  /// One resource-lane occupancy with its queue-wait breakdown.
  virtual void on_span(const SpanRecord& span);
  /// One matched message transfer.
  virtual void on_message(const MessageRecord& message);
  /// A message endpoint parked unmatched; arguments are the current
  /// pending-send / pending-receive depths (posted irecvs included).
  virtual void on_pending(int pending_sends, int pending_recvs);
  /// The run finished; `stats` carries the final aggregates and digest.
  virtual void on_run_end(const RunStats& stats);
};

/// Engine tuning knobs.
struct EngineConfig {
  /// Messages at or below this size use the eager protocol (sender does
  /// not block on the receiver); larger messages rendezvous.
  Bytes eager_threshold = 8 * kKiB;
  /// Width of the busy-time timeline bins (power-model input).
  double timeline_bin_seconds = 0.1;
  /// Aggregate switch-fabric capacity in bytes/s shared by all inter-node
  /// transfers (0 = unlimited).  Modeled as one output-port pipe per
  /// destination node with rate bisection_bandwidth / nodes: flows
  /// converging on a node queue on its switch port.
  double bisection_bandwidth = 0.0;
  /// Safety valve: abort if simulated time exceeds this many seconds.
  double max_sim_seconds = 3.0e6;
  /// Allocation hint for the event queue and pending-message tables
  /// (0 = derive from the rank count).  Purely a reservation: committed
  /// events and all derived artifacts are identical for any value.
  int queue_reserve = 0;
  /// Event-queue partitions for one run (clamped to the node count;
  /// collapses to 1 when the lookahead is zero — single node, ideal
  /// network, or a cost model with zero cross-node latency).  Committed
  /// events and all derived artifacts are byte-identical for any value.
  int shards = 1;
  /// Worker threads stepping the shards (0 = one per shard up to the
  /// hardware concurrency; values above the core count are honored so
  /// the pool is exercisable anywhere).  Never affects results.
  int threads = 0;
  /// Resolved conservative lookahead window in ns.  Output only: run()
  /// fills it before on_run_begin; the value set by callers is ignored.
  SimTime lookahead = 0;
  /// Engine self-instrumentation sink (non-owning; must outlive the
  /// run).  nullptr = detached: every instrumentation site reduces to
  /// one pointer test and the run allocates nothing extra.  Telemetry
  /// never feeds back into simulated state, so attaching it cannot
  /// change the committed event stream.  See sim/telemetry.h.
  EngineTelemetry* telemetry = nullptr;
};

class Engine {
 public:
  Engine(Placement placement, const CostModel& cost_model,
         EngineConfig config = {}, Scenario scenario = {});

  /// Pulls every rank's op stream to completion and returns the
  /// collected stats.  Throws soc::Error on deadlock (unmatched
  /// send/recv) or misuse.  The source is single-use: the run consumes
  /// it.  With shards > 1 and threads > 1, OpSource::next must tolerate
  /// concurrent calls for *distinct* ranks (all in-tree sources keep
  /// per-rank state element-disjoint, which suffices).
  RunStats run(OpSource& source);

  /// Replays pre-built programs (wraps them in a ProgramSource).
  RunStats run(const std::vector<Program>& programs);

  /// Attaches a (non-owning) observer over the committed event stream;
  /// nullptr detaches.  Must not change during run().
  void set_observer(EngineObserver* observer) { observer_ = observer; }

 private:
  struct RankState {
    std::size_t pc = 0;        ///< Index of the current op in pull order.
    SimTime ready = 0;         ///< Time the rank becomes runnable.
    int phase = 0;             ///< Current phase id.
    bool blocked = false;      ///< Parked on an unmatched message.
    bool done = false;
    // -- Stream cursor: the op pulled from the source but not yet
    //    finished.  A parked op (rendezvous, kWaitAll) stays buffered so
    //    wake-ups re-dispatch it without re-pulling the source; advance()
    //    clears the buffer together with bumping pc.
    Op current{};
    bool have_current = false;
    bool exhausted = false;    ///< The source returned end-of-stream.
    // -- Non-blocking request window (between Isend/Irecv and WaitAll) --
    int unresolved_requests = 0;   ///< Requests with unknown completion.
    SimTime requests_complete = 0; ///< Max known request completion.
    bool waiting_all = false;      ///< Parked inside kWaitAll.
    SimTime wait_park_time = 0;    ///< When kWaitAll parked (blocked-time
                                   ///< booking for the wake path).
  };

  // A posted-but-unmatched message endpoint.  For cross-node rendezvous
  // the entry is the parked RTS at the *receiver's* shard, carrying the
  // sender-side facts the transfer math needs.
  struct PendingSend {
    int rank;
    SimTime ready;    ///< When the sender reached the send.
    Bytes bytes;
    int phase;
    SimTime tx_est;   ///< Sender NIC-TX availability estimate (cross-node).
  };
  struct PendingRecv {
    int rank;
    SimTime ready;
    int phase;
  };
  // Messages that already arrived (eager payload delivered, intra-node
  // instant arrival) and wait for their receive.
  struct Arrival {
    SimTime time;     ///< Delivery time (nominal arrival + port queueing).
    Bytes bytes;
  };

  using MsgKey = std::uint64_t;  ///< (src, dst, tag) packed.

  static MsgKey msg_key(int src, int dst, int tag);

  /// Cross-shard protocol messages.  Timestamps are always at least one
  /// cross-node latency past the emission time — the conservative-window
  /// safety invariant.
  enum class ProtoKind : std::uint8_t {
    kArrival = 0,  ///< Eager payload lands at the receiver NIC.
    kRts,          ///< Rendezvous request-to-send (sender parks).
    kCts,          ///< Rendezvous clear-to-send (sender unblocks).
  };
  struct ProtoMsg {
    ProtoKind kind = ProtoKind::kArrival;
    int src_rank = 0;        ///< Message sender (transfer direction).
    int dst_rank = 0;        ///< Message receiver.
    int tag = 0;
    int phase = 0;           ///< Sender's phase at the send dispatch.
    Bytes bytes = 0;
    SimTime requested = 0;   ///< Sender's send-dispatch time t_s.
    SimTime start = 0;       ///< Wire start (arrival/cts).
    SimTime end = 0;         ///< Nominal wire end (arrival/cts).
    SimTime latency = 0;     ///< Latency share of [start, end).
    SimTime tx_est = 0;      ///< RTS: sender NIC-TX availability estimate.
    SimTime fabric_wait = 0; ///< CTS: receiver-port queueing share.
    SimTime time = 0;        ///< Event timestamp.
    std::uint64_t key = 0;   ///< Event key (assigned at emission).
  };

  /// One buffered observer/auditor record.  Shards append records in
  /// processing order; the coordinator stable-sorts by (time, key) —
  /// which groups them back into whole events in the canonical order —
  /// and replays them through the digest and the observer.
  enum class CommitType : std::uint8_t {
    kDispatch,
    kSpan,
    kMessage,
    kPendingPark,   ///< Depth delta that also fires on_pending.
    kPendingMatch,  ///< Silent depth delta (a match consumed an entry).
  };
  struct PendingDelta {
    std::int32_t sends = 0;
    std::int32_t recvs = 0;
  };
  struct CommitRec {
    SimTime time = 0;
    std::uint64_t key = 0;
    CommitType type = CommitType::kDispatch;
    union U {
      DispatchRecord dispatch;
      SpanRecord span;
      MessageRecord message;
      PendingDelta pending;
      U() : dispatch() {}
    } u;
  };

  /// Everything one event-queue partition owns.  During a window only
  /// the owning worker touches a shard; between the window barriers only
  /// the coordinator does (the barrier provides the happens-before), so
  /// none of it needs locks — which is exactly what SOC_SHARD_LOCAL
  /// documents and tools/soclint enforces.
  struct Shard {
    KeyedEventQueue queue;                             // SOC_SHARD_LOCAL
    std::vector<ProtoMsg> proto_pool;                  // SOC_SHARD_LOCAL
    std::vector<std::int32_t> proto_free;              // SOC_SHARD_LOCAL
    flat_map<MsgKey, RingQueue<PendingSend>> pending_sends;   // SOC_SHARD_LOCAL
    flat_map<MsgKey, RingQueue<PendingRecv>> pending_recvs;   // SOC_SHARD_LOCAL
    flat_map<MsgKey, RingQueue<int>> pending_irecvs;   // SOC_SHARD_LOCAL
    flat_map<MsgKey, RingQueue<Arrival>> arrivals;     // SOC_SHARD_LOCAL
    std::vector<CommitRec> commits;                    // SOC_SHARD_LOCAL
    std::vector<RingQueue<ProtoMsg>> outbox;           // SOC_SHARD_LOCAL
    SimTime ev_time = 0;                               // SOC_SHARD_LOCAL
    std::uint64_t ev_key = 0;                          // SOC_SHARD_LOCAL
    /// Telemetry counters (updated only when telemetry is attached).
    ShardCounters counters;                            // SOC_SHARD_LOCAL
  };

  // --- event keys: (class:1)(dst:15)(emitter:15)(seq:32).  Class 0 =
  //     protocol message (sorts before wakes at equal times: protos spawn
  //     same-time wakes, never the reverse), class 1 = rank wake-up.
  static std::uint64_t wake_key(int rank);
  std::uint64_t next_proto_key(int emitter_rank, int dst_rank);

  Shard& shard_of(int rank);

  void run_serial(SimTime horizon);
  void run_windowed(SimTime horizon);
  void step_shard(Shard& sh, SimTime window_end, SimTime horizon);
  void drain_outboxes();
  void enqueue_proto(Shard& dst, const ProtoMsg& p);
  /// Routes a protocol message: same shard goes straight into the queue,
  /// cross-shard rides the emitter's per-pair mailbox until the next
  /// window boundary.
  void send_proto(int emitter_rank, int target_rank, const ProtoMsg& p);
  /// Stable-sorts `recs` into the canonical (time, key) order and replays
  /// them through the audit digest, the pending-depth reconstruction, and
  /// the observer.  Clears the buffer (keeping capacity).
  void replay_commits(std::vector<CommitRec>& recs);

  void process_event(Shard& sh, const KeyedEvent& e);
  void process_arrival(const ProtoMsg& p, SimTime now);
  void process_rts(const ProtoMsg& p, SimTime now);
  void process_cts(const ProtoMsg& p, SimTime now);

  void execute_next(int rank, SimTime now);
  /// Finishes the rank's current op: bumps pc and drops the stream
  /// buffer so the next execute_next pulls a fresh op.  Every site that
  /// used to advance a rank's pc — including cross-rank wake paths —
  /// must go through here, or the stream cursor desynchronizes.
  void advance(int rank);
  /// Schedules the rank's next dispatch (its own shard's queue).
  void wake(int rank, SimTime time);
  void start_compute(int rank, SimTime now, const Op& op);
  void start_delay(int rank, SimTime now, const Op& op);
  void start_gpu(int rank, SimTime now, const Op& op);
  void start_copy(int rank, SimTime now, const Op& op);
  void start_send(int rank, SimTime now, const Op& op);
  void start_recv(int rank, SimTime now, const Op& op);
  void start_isend(int rank, SimTime now, const Op& op);
  void start_irecv(int rank, SimTime now, const Op& op);
  void start_wait_all(int rank, SimTime now);

  /// True when (src, dst) crosses nodes on a real network — the pair
  /// communicates through timestamped protocol messages instead of the
  /// instant same-shard fast path.
  bool use_protocol(int src_rank, int dst_rank) const;

  /// Instant-path transfer (same node, or ideal network): applies no NIC
  /// state, records the traffic, returns the completion time.
  SimTime timed_transfer(int send_rank, int recv_rank, SimTime earliest,
                         Bytes bytes, int tag);

  /// Marks one of `rank`'s outstanding requests resolved with the given
  /// completion time; wakes the rank if it was parked in kWaitAll.
  void resolve_request(int rank, SimTime completion);

  /// Instant-path matched rendezvous; wakes both ranks.
  void complete_rendezvous(int send_rank, SimTime send_ready, int recv_rank,
                           SimTime recv_ready, Bytes bytes, int tag);
  /// Instant-path eager send; returns its arrival time at the receiver.
  SimTime launch_eager(int src_rank, int dst_rank, SimTime now, Bytes bytes,
                       int tag);

  /// Cross-node eager send: books the sender side (NIC-TX, stats, span)
  /// and emits the kArrival protocol message toward the receiver's shard.
  void launch_eager_remote(int src_rank, int dst_rank, SimTime now,
                           Bytes bytes, int tag);
  /// Cross-node rendezvous transfer, computed receiver-side when the RTS
  /// meets its receive.  Books the receive side, advances the receiver
  /// NIC/port state, and emits the kCts message that unblocks the
  /// sender.  Returns the transfer end time.
  SimTime rendezvous_match(const PendingSend& ps, int recv_rank,
                           SimTime match_time, SimTime start_base, int tag);

  /// Buffers one committed dispatch (the determinism-digest stream).
  void commit_dispatch(int rank, SimTime now, std::uint8_t kind, Bytes bytes,
                       int peer = -1, int tag = 0);
  static constexpr std::uint8_t kRankDoneAudit = 0xFF;

  double compute_scale_for(int rank) const;
  SimTime scaled(SimTime t, int rank) const;
  void add_phase_compute(int rank, SimTime duration);
  void bin_busy(std::vector<double>& lane, SimTime start, SimTime end);
  void bin_value(std::vector<double>& lane, SimTime at, double value);
  /// Books a committed instant-path transfer into the stats and, when an
  /// observer is attached, buffers its message record and NIC spans.
  void account_transfer(int src_rank, int dst_rank, SimTime requested,
                        SimTime start, SimTime end, Bytes bytes, bool eager,
                        SimTime fabric_wait, int tag, SimTime latency);
  /// Buffers one resource-lane span (no-op when detached).
  void commit_span(Lane lane, int rank, int node, std::uint8_t kind,
                   SimTime start, SimTime end, SimTime queue_wait,
                   SimTime fabric_wait, Bytes bytes);
  void commit_message(const MessageRecord& message);
  /// Buffers a pending-depth delta; `park` deltas fire on_pending during
  /// the canonical replay, match deltas adjust silently.
  void commit_pending(int rank, int dsends, int drecvs, bool park);

  /// Minimum cost-model latency over all ordered cross-node pairs — the
  /// conservative lookahead (every protocol timestamp is at least this
  /// far in the future).
  SimTime min_cross_node_latency() const;

  // --- self-telemetry plumbing (all no-ops when tel_ is null) ---
  /// Monotonic wall-clock nanoseconds since run() started.
  std::uint64_t tel_now_ns() const;
  /// Appends a wall-clock span to `out`, honoring the per-lane cap;
  /// overflow increments `*dropped` instead of growing the vector.
  void tel_span(std::vector<EngineSpan>& out, std::uint64_t* dropped,
                EngineSpan::Kind kind, int lane, std::uint64_t window,
                std::uint64_t begin_ns, std::uint64_t end_ns) const;
  /// Folds per-shard counters, per-worker scratch, and span lanes into
  /// the attached sink at the end of run().
  void tel_finalize();

  Placement placement_;
  const CostModel& cost_;
  EngineConfig config_;
  Scenario scenario_;

  // --- run partitioning: computed once per run(), read-only during
  //     windows ---
  bool protocol_ = false;       ///< Cross-node pairs use protocol messages.
  int nshards_ = 1;
  int nthreads_ = 1;
  SimTime lookahead_ = 0;
  std::vector<int> shard_of_node_;
  std::vector<int> shard_of_rank_;

  // --- simulation state, partitioned by rank/node: element r (or node n)
  //     belongs to that rank's/node's shard and is touched only by the
  //     owning worker between barriers ---
  std::vector<RankState> states_;     // SOC_SHARD_LOCAL(rank partition)
  std::vector<SimTime> gpu_free_;     // SOC_SHARD_LOCAL(node partition)
  std::vector<SimTime> copy_free_;    // SOC_SHARD_LOCAL(node partition)
  std::vector<SimTime> nic_tx_free_;  // SOC_SHARD_LOCAL(node partition)
  std::vector<SimTime> nic_rx_free_;  // SOC_SHARD_LOCAL(node partition)
  std::vector<SimTime> port_free_;    // SOC_SHARD_LOCAL(node partition)
  std::vector<std::uint32_t> proto_seq_;  // SOC_SHARD_LOCAL(rank partition)
  std::vector<Shard> shards_;

  // RunStats: the per-rank / per-node vectors inside are partitioned like
  // the state above (each element written only by its owning shard); the
  // scalar aggregates are coordinator-only.
  RunStats stats_;                    // SOC_SHARD_LOCAL(rank/node partition)

  // --- self-telemetry (attached for one run; null = detached).  The
  //     worker-indexed scratch is written by each pool worker during a
  //     window and read by the coordinator between barriers, exactly the
  //     shard-state discipline (the window barriers order the accesses).
  EngineTelemetry* tel_ = nullptr;
  std::uint64_t tel_t0_ns_ = 0;  ///< run() start on the monotonic clock.
  std::vector<std::uint64_t> tel_window_busy_;   // SOC_SHARD_LOCAL(worker slot)
  std::vector<std::vector<EngineSpan>> tel_worker_spans_;  // SOC_SHARD_LOCAL(worker slot)
  std::vector<std::uint64_t> tel_worker_barrier_;  // SOC_SHARD_LOCAL(worker slot)
  std::vector<std::uint64_t> tel_worker_drops_;    // SOC_SHARD_LOCAL(worker slot)
  std::vector<EngineSpan> tel_coord_spans_;  ///< Coordinator lane spans.

  // --- coordinator state: caller thread only, between barriers ---
  Fnv1a audit_;  ///< Running digest of the committed event stream.
  std::vector<CommitRec> merged_;  ///< Window-merge scratch.
  EngineObserver* observer_ = nullptr;  ///< Non-owning; nullptr = detached.
  int pending_send_depth_ = 0;  ///< Parked rendezvous senders.
  int pending_recv_depth_ = 0;  ///< Parked blocking recvs + posted irecvs.
  OpSource* source_ = nullptr;  ///< Active run's source (run() scope only).
};

}  // namespace soc::sim
