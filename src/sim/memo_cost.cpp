#include "sim/memo_cost.h"

#include <bit>

#include "common/hash.h"

namespace soc::sim {

namespace {

std::uint64_t double_bits(double v) { return std::bit_cast<std::uint64_t>(v); }

std::uint64_t pack_path(int src_node, int dst_node) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_node))
          << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst_node));
}

// Scoped lock that engages only when the memo is shared by the sharded
// engine's worker pool (nullptr = single-thread mode, no locking).
// Conditional acquisition is outside what the static analysis can model,
// so both special members opt out of it.
class OptionalLock {
 public:
  explicit OptionalLock(Mutex* m) SOC_NO_THREAD_SAFETY_ANALYSIS : m_(m) {
    if (m_ != nullptr) m_->lock();
  }
  ~OptionalLock() SOC_NO_THREAD_SAFETY_ANALYSIS {
    if (m_ != nullptr) m_->unlock();
  }
  OptionalLock(const OptionalLock&) = delete;
  OptionalLock& operator=(const OptionalLock&) = delete;

 private:
  Mutex* m_;
};

}  // namespace

std::uint64_t MemoCostModel::CpuKeyHash::operator()(const CpuKey& k) const {
  return Fnv1a{}
      .mix_u64(k.instructions_bits)
      .mix_u64(k.flops_bits)
      .mix_i64(k.dram_bytes)
      .mix_u64(static_cast<std::uint32_t>(k.profile))
      .value();
}

std::uint64_t MemoCostModel::GpuKeyHash::operator()(const GpuKey& k) const {
  return Fnv1a{}
      .mix_u64(k.flops_bits)
      .mix_u64(k.parallelism_bits)
      .mix_i64(k.dram_bytes)
      .mix_byte(k.mem_model)
      .mix_byte(k.double_precision ? 1 : 0)
      .value();
}

std::uint64_t MemoCostModel::CopyKeyHash::operator()(const CopyKey& k) const {
  return Fnv1a{}
      .mix_i64(k.bytes)
      .mix_byte(k.kind)
      .mix_byte(k.mem_model)
      .value();
}

std::uint64_t MemoCostModel::TransferKeyHash::operator()(
    const TransferKey& k) const {
  return Fnv1a{}.mix_u64(k.path).mix_i64(k.bytes).value();
}

MemoCostModel::MemoCostModel(const CostModel& base, bool thread_safe)
    : base_(base), thread_safe_(thread_safe) {}

SimTime MemoCostModel::cpu_compute_time(int rank, const Op& op) const {
  const OptionalLock lock(thread_safe_ ? &mu_ : nullptr);
  const CpuKey key{double_bits(op.instructions), double_bits(op.flops),
                   op.dram_bytes, op.profile};
  Slot& slot = cpu_[key];
  if (!slot.known) {
    slot.value = base_.cpu_compute_time(rank, op);
    slot.known = true;
    ++misses_;
  } else {
    ++hits_;
  }
  return slot.value;
}

SimTime MemoCostModel::gpu_kernel_time(int rank, const Op& op) const {
  const OptionalLock lock(thread_safe_ ? &mu_ : nullptr);
  const GpuKey key{double_bits(op.flops), double_bits(op.parallelism),
                   op.dram_bytes, static_cast<std::uint8_t>(op.mem_model),
                   op.double_precision};
  Slot& slot = gpu_[key];
  if (!slot.known) {
    slot.value = base_.gpu_kernel_time(rank, op);
    slot.known = true;
    ++misses_;
  } else {
    ++hits_;
  }
  return slot.value;
}

SimTime MemoCostModel::copy_time(int rank, const Op& op) const {
  const OptionalLock lock(thread_safe_ ? &mu_ : nullptr);
  const CopyKey key{op.bytes, static_cast<std::uint8_t>(op.kind),
                    static_cast<std::uint8_t>(op.mem_model)};
  Slot& slot = copy_[key];
  if (!slot.known) {
    slot.value = base_.copy_time(rank, op);
    slot.known = true;
    ++misses_;
  } else {
    ++hits_;
  }
  return slot.value;
}

SimTime MemoCostModel::message_latency(int src_node, int dst_node) const {
  const OptionalLock lock(thread_safe_ ? &mu_ : nullptr);
  Slot& slot = latency_[pack_path(src_node, dst_node)];
  if (!slot.known) {
    slot.value = base_.message_latency(src_node, dst_node);
    slot.known = true;
    ++misses_;
  } else {
    ++hits_;
  }
  return slot.value;
}

SimTime MemoCostModel::message_transfer_time(int src_node, int dst_node,
                                             Bytes bytes) const {
  const OptionalLock lock(thread_safe_ ? &mu_ : nullptr);
  const TransferKey key{pack_path(src_node, dst_node), bytes};
  Slot& slot = transfer_[key];
  if (!slot.known) {
    slot.value = base_.message_transfer_time(src_node, dst_node, bytes);
    slot.known = true;
    ++misses_;
  } else {
    ++hits_;
  }
  return slot.value;
}

SimTime MemoCostModel::overhead_for(
    int rank, std::vector<Slot>& cache,
    SimTime (CostModel::*method)(int) const) const {
  const std::size_t r = static_cast<std::size_t>(rank);
  if (cache.size() <= r) cache.resize(r + 1);
  Slot& slot = cache[r];
  if (!slot.known) {
    slot.value = (base_.*method)(rank);
    slot.known = true;
    ++misses_;
  } else {
    ++hits_;
  }
  return slot.value;
}

SimTime MemoCostModel::send_overhead(int rank) const {
  const OptionalLock lock(thread_safe_ ? &mu_ : nullptr);
  return overhead_for(rank, send_overhead_, &CostModel::send_overhead);
}

SimTime MemoCostModel::recv_overhead(int rank) const {
  const OptionalLock lock(thread_safe_ ? &mu_ : nullptr);
  return overhead_for(rank, recv_overhead_, &CostModel::recv_overhead);
}

}  // namespace soc::sim
