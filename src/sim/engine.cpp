#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace soc::sim {

const char* lane_name(Lane lane) {
  switch (lane) {
    case Lane::kCpu: return "cpu";
    case Lane::kGpu: return "gpu";
    case Lane::kCopy: return "copy";
    case Lane::kNicTx: return "nic-tx";
    case Lane::kNicRx: return "nic-rx";
    case Lane::kCount: break;
  }
  return "?";
}

// Default observer callbacks are no-ops so implementations override only
// the streams they consume (and the vtable is anchored here).
void EngineObserver::on_run_begin(const Placement&, const EngineConfig&) {}
void EngineObserver::on_dispatch(const DispatchRecord&) {}
void EngineObserver::on_span(const SpanRecord&) {}
void EngineObserver::on_message(const MessageRecord&) {}
void EngineObserver::on_pending(int, int) {}
void EngineObserver::on_run_end(const RunStats&) {}

Placement Placement::block(int ranks, int nodes) {
  SOC_CHECK(ranks > 0 && nodes > 0, "placement needs positive sizes");
  SOC_CHECK(ranks % nodes == 0, "block placement needs ranks % nodes == 0");
  Placement p;
  p.ranks = ranks;
  p.nodes = nodes;
  p.node_of.resize(static_cast<std::size_t>(ranks));
  const int per_node = ranks / nodes;
  for (int r = 0; r < ranks; ++r) p.node_of[static_cast<std::size_t>(r)] = r / per_node;
  return p;
}

Engine::Engine(Placement placement, const CostModel& cost_model,
               EngineConfig config, Scenario scenario)
    : placement_(std::move(placement)),
      cost_(cost_model),
      config_(config),
      scenario_(std::move(scenario)) {
  SOC_CHECK(placement_.ranks > 0, "no ranks");
  SOC_CHECK(static_cast<int>(placement_.node_of.size()) == placement_.ranks,
            "placement size mismatch");
  SOC_CHECK(scenario_.compute_scale.empty() ||
                static_cast<int>(scenario_.compute_scale.size()) ==
                    placement_.ranks,
            "compute_scale size mismatch");
}

Engine::MsgKey Engine::msg_key(int src, int dst, int tag) {
  // 21 bits each is far beyond any simulated cluster; tag is workload-local.
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 42) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 21) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag) & 0x1FFFFF);
}

double Engine::compute_scale_for(int rank) const {
  if (scenario_.compute_scale.empty()) return 1.0;
  return scenario_.compute_scale[static_cast<std::size_t>(rank)];
}

SimTime Engine::scaled(SimTime t, int rank) const {
  const double s = compute_scale_for(rank);
  if (s == 1.0) return t;
  return static_cast<SimTime>(std::llround(static_cast<double>(t) * s));
}

void Engine::add_phase_compute(int rank, SimTime duration) {
  auto& rs = stats_.ranks[static_cast<std::size_t>(rank)];
  rs.phase_compute[states_[static_cast<std::size_t>(rank)].phase] += duration;
}

void Engine::bin_busy(std::vector<double>& lane, SimTime start, SimTime end) {
  if (end <= start) return;
  const SimTime bin_ns = static_cast<SimTime>(
      std::llround(config_.timeline_bin_seconds * static_cast<double>(kSecond)));
  const std::size_t last_bin = static_cast<std::size_t>(end / bin_ns);
  if (lane.size() <= last_bin) lane.resize(last_bin + 1, 0.0);
  SimTime t = start;
  while (t < end) {
    const SimTime bin = t / bin_ns;
    const SimTime bin_end = (bin + 1) * bin_ns;
    const SimTime chunk = std::min(end, bin_end) - t;
    lane[static_cast<std::size_t>(bin)] += to_seconds(chunk);
    t += chunk;
  }
}

void Engine::bin_value(std::vector<double>& lane, SimTime at, double value) {
  const SimTime bin_ns = static_cast<SimTime>(
      std::llround(config_.timeline_bin_seconds * static_cast<double>(kSecond)));
  const std::size_t bin = static_cast<std::size_t>(at / bin_ns);
  if (lane.size() <= bin) lane.resize(bin + 1, 0.0);
  lane[bin] += value;
}

namespace {

// Straggler injection: op.time_scale stretches the cost-model-derived
// duration AFTER memo lookup, so memoized costs stay shared across
// scaled and unscaled ranks.
SimTime apply_time_scale(SimTime t, const Op& op) {
  if (op.time_scale == 1.0) return t;
  return static_cast<SimTime>(
      std::llround(static_cast<double>(t) * op.time_scale));
}

}  // namespace

RunStats Engine::run(const std::vector<Program>& programs) {
  SOC_CHECK(static_cast<int>(programs.size()) == placement_.ranks,
            "one program per rank required");
  ProgramSource source(programs);
  return run(source);
}

RunStats Engine::run(OpSource& source) {
  SOC_CHECK(source.ranks() == placement_.ranks,
            "one op stream per rank required");
  const std::size_t n = static_cast<std::size_t>(placement_.ranks);
  states_.assign(n, RankState{});
  stats_ = RunStats{};
  stats_.timeline_bin_seconds = config_.timeline_bin_seconds;
  stats_.ranks.assign(n, RankStats{});
  stats_.nodes.assign(static_cast<std::size_t>(placement_.nodes),
                      NodeTimeline{});
  gpu_free_.assign(static_cast<std::size_t>(placement_.nodes), 0);
  copy_free_.assign(static_cast<std::size_t>(placement_.nodes), 0);
  nic_tx_free_.assign(static_cast<std::size_t>(placement_.nodes), 0);
  nic_rx_free_.assign(static_cast<std::size_t>(placement_.nodes), 0);
  fabric_free_ = 0;
  pending_sends_.clear();
  pending_recvs_.clear();
  pending_irecvs_.clear();
  arrivals_.clear();
  queue_.clear();
  // Reservations only: committed events are identical for any hint value
  // (determinism_test pins this with a checksum-equality case).
  const std::size_t reserve =
      config_.queue_reserve > 0
          ? static_cast<std::size_t>(config_.queue_reserve)
          : 2 * n + 16;
  queue_.reserve(reserve);
  pending_sends_.reserve(reserve);
  pending_recvs_.reserve(reserve);
  pending_irecvs_.reserve(reserve);
  arrivals_.reserve(reserve);
  audit_ = Fnv1a{};
  pending_send_depth_ = 0;
  pending_recv_depth_ = 0;
  if (observer_ != nullptr) observer_->on_run_begin(placement_, config_);

  const SimTime horizon = from_seconds(config_.max_sim_seconds);
  for (std::size_t r = 0; r < n; ++r) queue_.push(0, static_cast<int>(r));

  while (!queue_.empty()) {
    const Event e = queue_.pop();
    SOC_CHECK(e.time <= horizon, "simulation exceeded max_sim_seconds");
    execute_next(e.payload, e.time, source);
  }

  // Every rank must have drained its stream; otherwise communication
  // deadlocked (a send or recv never found its partner).
  for (std::size_t r = 0; r < n; ++r) {
    if (!states_[r].done) {
      std::ostringstream os;
      os << "deadlock: rank " << r << " stuck at op " << states_[r].pc;
      if (states_[r].have_current) {
        const Op& op = states_[r].current;
        os << " (kind=" << static_cast<int>(op.kind) << " peer=" << op.peer
           << " tag=" << op.tag << ")";
      }
      throw Error(os.str());
    }
  }

  for (std::size_t r = 0; r < n; ++r) {
    const RankStats& rs = stats_.ranks[r];
    stats_.makespan = std::max(stats_.makespan, rs.finish_time);
    stats_.total_net_bytes += rs.net_bytes_sent;
    stats_.total_dram_bytes += rs.dram_bytes;
    stats_.total_gpu_dram_bytes += rs.gpu_dram_bytes;
    stats_.total_flops += rs.flops;
    stats_.total_gpu_flops += rs.gpu_flops;
  }
  stats_.event_checksum = audit_.value();
  if (observer_ != nullptr) observer_->on_run_end(stats_);
  return stats_;
}

void Engine::audit_event(SimTime now, int rank, std::uint8_t kind, Bytes bytes,
                         int peer, int tag) {
  audit_.mix_i64(now)
      .mix_u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)))
      .mix_byte(kind)
      .mix_i64(bytes);
  ++stats_.events_committed;
  if (observer_ != nullptr) {
    DispatchRecord record;
    record.time = now;
    record.rank = rank;
    record.node = placement_.node_of[static_cast<std::size_t>(rank)];
    record.phase = states_[static_cast<std::size_t>(rank)].phase;
    record.kind = kind;
    record.bytes = bytes;
    record.pc =
        static_cast<std::int32_t>(states_[static_cast<std::size_t>(rank)].pc);
    record.peer = peer;
    record.tag = tag;
    observer_->on_dispatch(record);
  }
}

void Engine::observe_span(Lane lane, int rank, int node, std::uint8_t kind,
                          SimTime start, SimTime end, SimTime queue_wait,
                          SimTime fabric_wait, Bytes bytes) {
  if (observer_ == nullptr) return;
  SpanRecord span;
  span.lane = lane;
  span.rank = rank;
  span.node = node;
  span.phase = states_[static_cast<std::size_t>(rank)].phase;
  span.kind = kind;
  span.start = start;
  span.end = end;
  span.queue_wait = queue_wait;
  span.fabric_wait = fabric_wait;
  span.bytes = bytes;
  observer_->on_span(span);
}

void Engine::observe_pending() {
  if (observer_ != nullptr) {
    observer_->on_pending(pending_send_depth_, pending_recv_depth_);
  }
}

void Engine::advance(int rank) {
  auto& st = states_[static_cast<std::size_t>(rank)];
  ++st.pc;
  st.have_current = false;
}

void Engine::execute_next(int rank, SimTime now, OpSource& source) {
  auto& st = states_[static_cast<std::size_t>(rank)];
  st.blocked = false;

  // Zero-cost ops (phase markers) are consumed inline; any op with real
  // duration schedules a wake-up and returns.  A parked op (rendezvous,
  // kWaitAll) stays buffered in st.current, so wake-ups re-dispatch it
  // without pulling the source again.
  for (;;) {
    if (!st.have_current) {
      if (st.exhausted || !source.next(rank, now, &st.current)) {
        st.exhausted = true;
        break;
      }
      st.have_current = true;
    }
    const Op& op = st.current;
    // Every dispatch — including re-dispatch of a parked op after a
    // wake-up — is one record of the determinism digest.  The dispatch
    // sequence is exactly the engine's total event order, so equal digests
    // mean equal schedules.
    audit_event(now, rank, static_cast<std::uint8_t>(op.kind), op.bytes,
                op.peer, op.tag);
    switch (op.kind) {
      case OpKind::kPhase:
        st.phase = op.phase;
        advance(rank);
        continue;
      case OpKind::kCpuCompute:
        start_compute(rank, now, op);
        return;
      case OpKind::kGpuKernel:
        start_gpu(rank, now, op);
        return;
      case OpKind::kCopyH2D:
      case OpKind::kCopyD2H:
        start_copy(rank, now, op);
        return;
      case OpKind::kSend:
        start_send(rank, now, op);
        return;
      case OpKind::kRecv:
        start_recv(rank, now, op);
        return;
      case OpKind::kIsend:
        start_isend(rank, now, op);
        return;  // rank re-scheduled after the posting overhead
      case OpKind::kIrecv:
        start_irecv(rank, now, op);
        return;
      case OpKind::kWaitAll:
        start_wait_all(rank, now);
        return;
      case OpKind::kDelay:
        start_delay(rank, now, op);
        return;
      case OpKind::kEnd:
        // End-of-stream is signalled by next() returning false;
        // workloads::OpStream bridges the kEnd sentinel to that.
        SOC_CHECK(false, "kEnd sentinel must not reach the engine");
        return;
    }
  }
  st.done = true;
  audit_event(now, rank, kRankDoneAudit, 0);
  stats_.ranks[static_cast<std::size_t>(rank)].finish_time =
      std::max(stats_.ranks[static_cast<std::size_t>(rank)].finish_time, now);
}

void Engine::start_compute(int rank, SimTime now, const Op& op) {
  auto& rs = stats_.ranks[static_cast<std::size_t>(rank)];
  const int node = placement_.node_of[static_cast<std::size_t>(rank)];
  const SimTime dur =
      scaled(apply_time_scale(cost_.cpu_compute_time(rank, op), op), rank);

  rs.cpu_busy += dur;
  rs.flops += op.flops;
  rs.instructions += op.instructions;
  rs.dram_bytes += op.dram_bytes;
  if (op.profile >= 0) rs.instructions_by_profile[op.profile] += op.instructions;
  add_phase_compute(rank, dur);
  bin_busy(stats_.nodes[static_cast<std::size_t>(node)].cpu_busy, now, now + dur);
  bin_value(stats_.nodes[static_cast<std::size_t>(node)].dram_bytes, now,
            static_cast<double>(op.dram_bytes));
  observe_span(Lane::kCpu, rank, node, static_cast<std::uint8_t>(op.kind),
               now, now + dur, 0, 0, op.dram_bytes);

  advance(rank);
  queue_.push(now + dur, rank);
}

void Engine::start_delay(int rank, SimTime now, const Op& op) {
  auto& rs = stats_.ranks[static_cast<std::size_t>(rank)];
  const int node = placement_.node_of[static_cast<std::size_t>(rank)];
  // An injected stall occupies the host like compute (the core spins or
  // the OS holds it), so it flows through cpu_busy, the per-phase
  // compute ledger, and the node timeline — which is exactly what lets
  // the LB/Ser/Trf decomposition and energy attribution explain the
  // damage with zero residual.  compute_scale (what-if DVFS on replay)
  // applies; op.time_scale does not: a fixed stall is wall-clock.
  const SimTime dur = scaled(from_seconds(op.delay_seconds), rank);

  rs.cpu_busy += dur;
  add_phase_compute(rank, dur);
  bin_busy(stats_.nodes[static_cast<std::size_t>(node)].cpu_busy, now, now + dur);
  observe_span(Lane::kCpu, rank, node, static_cast<std::uint8_t>(op.kind),
               now, now + dur, 0, 0, 0);

  advance(rank);
  queue_.push(now + dur, rank);
}

void Engine::start_gpu(int rank, SimTime now, const Op& op) {
  auto& rs = stats_.ranks[static_cast<std::size_t>(rank)];
  const int node = placement_.node_of[static_cast<std::size_t>(rank)];
  auto& gpu_free = gpu_free_[static_cast<std::size_t>(node)];

  const SimTime start = std::max(now, gpu_free);
  const SimTime dur =
      scaled(apply_time_scale(cost_.gpu_kernel_time(rank, op), op), rank);
  gpu_free = start + dur;

  rs.gpu_queue_wait += start - now;
  rs.gpu_busy += dur;
  rs.flops += op.flops;
  rs.gpu_flops += op.flops;
  rs.dram_bytes += op.dram_bytes;
  rs.gpu_dram_bytes += op.dram_bytes;
  add_phase_compute(rank, dur);
  bin_busy(stats_.nodes[static_cast<std::size_t>(node)].gpu_busy, start,
           start + dur);
  bin_value(stats_.nodes[static_cast<std::size_t>(node)].dram_bytes, start,
            static_cast<double>(op.dram_bytes));
  observe_span(Lane::kGpu, rank, node, static_cast<std::uint8_t>(op.kind),
               start, start + dur, start - now, 0, op.dram_bytes);

  advance(rank);
  queue_.push(start + dur, rank);
}

void Engine::start_copy(int rank, SimTime now, const Op& op) {
  auto& rs = stats_.ranks[static_cast<std::size_t>(rank)];
  const int node = placement_.node_of[static_cast<std::size_t>(rank)];
  auto& copy_free = copy_free_[static_cast<std::size_t>(node)];

  const SimTime start = std::max(now, copy_free);
  const SimTime dur =
      scaled(apply_time_scale(cost_.copy_time(rank, op), op), rank);
  copy_free = start + dur;

  rs.copy_busy += dur;
  // An explicit copy reads and writes main memory once each.  Copies are
  // NOT useful compute: they are host/device synchronization, which the
  // efficiency decomposition must see as serialization (§III-B.4).
  const Bytes traffic = op.bytes * 2;
  rs.dram_bytes += traffic;
  rs.gpu_dram_bytes += traffic;
  bin_value(stats_.nodes[static_cast<std::size_t>(node)].dram_bytes, start,
            static_cast<double>(traffic));
  observe_span(Lane::kCopy, rank, node, static_cast<std::uint8_t>(op.kind),
               start, start + dur, start - now, 0, op.bytes);

  advance(rank);
  queue_.push(start + dur, rank);
}

void Engine::start_send(int rank, SimTime now, const Op& op) {
  SOC_CHECK(op.peer >= 0 && op.peer < placement_.ranks && op.peer != rank,
            "invalid send peer");
  auto& st = states_[static_cast<std::size_t>(rank)];
  auto& rs = stats_.ranks[static_cast<std::size_t>(rank)];
  const MsgKey key = msg_key(rank, op.peer, op.tag);

  if (op.bytes <= config_.eager_threshold) {
    const SimTime arrival = launch_eager(rank, op.peer, now, op.bytes, op.tag);
    const SimTime overhead = cost_.send_overhead(rank);
    rs.msg_overhead += overhead;

    auto* pending = pending_recvs_.find(key);
    auto* posted = pending_irecvs_.find(key);
    if (pending != nullptr && !pending->empty()) {
      const PendingRecv pr = pending->front();
      pending->pop_front();
      --pending_recv_depth_;
      auto& recv_rs = stats_.ranks[static_cast<std::size_t>(pr.rank)];
      const SimTime complete =
          std::max(pr.ready, arrival) + cost_.recv_overhead(pr.rank);
      recv_rs.recv_blocked += complete - pr.ready;
      advance(pr.rank);
      queue_.push(complete, pr.rank);
    } else if (posted != nullptr && !posted->empty()) {
      const int recv_rank = posted->front();
      posted->pop_front();
      --pending_recv_depth_;
      resolve_request(recv_rank, arrival + cost_.recv_overhead(recv_rank));
    } else {
      arrivals_[key].push_back(Arrival{arrival, op.bytes});
    }

    advance(rank);
    queue_.push(now + overhead, rank);
    return;
  }

  // Rendezvous: need a posted receive (blocking or non-blocking).
  auto* pending = pending_recvs_.find(key);
  if (pending != nullptr && !pending->empty()) {
    const PendingRecv pr = pending->front();
    pending->pop_front();
    --pending_recv_depth_;
    complete_rendezvous(rank, now, pr.rank, pr.ready, op.bytes, op.tag);
    return;
  }
  auto* posted = pending_irecvs_.find(key);
  if (posted != nullptr && !posted->empty()) {
    const int recv_rank = posted->front();
    posted->pop_front();
    --pending_recv_depth_;
    const SimTime end = timed_transfer(rank, recv_rank, now, op.bytes, op.tag);
    stats_.ranks[static_cast<std::size_t>(rank)].send_blocked += end - now;
    advance(rank);
    queue_.push(end, rank);
    resolve_request(recv_rank, end + cost_.recv_overhead(recv_rank));
    return;
  }
  pending_sends_[key].push_back(PendingSend{rank, now, op.bytes, st.phase});
  ++pending_send_depth_;
  observe_pending();
  st.blocked = true;
}

void Engine::start_recv(int rank, SimTime now, const Op& op) {
  SOC_CHECK(op.peer >= 0 && op.peer < placement_.ranks && op.peer != rank,
            "invalid recv peer");
  auto& st = states_[static_cast<std::size_t>(rank)];
  auto& rs = stats_.ranks[static_cast<std::size_t>(rank)];
  const MsgKey key = msg_key(op.peer, rank, op.tag);

  // Eager message already in flight or delivered?
  auto* arrived = arrivals_.find(key);
  if (arrived != nullptr && !arrived->empty()) {
    const Arrival a = arrived->front();
    arrived->pop_front();
    const SimTime complete = std::max(now, a.time) + cost_.recv_overhead(rank);
    rs.recv_blocked += complete - now;
    advance(rank);
    queue_.push(complete, rank);
    return;
  }

  // Rendezvous partner already waiting?
  auto* pending = pending_sends_.find(key);
  if (pending != nullptr && !pending->empty()) {
    const PendingSend ps = pending->front();
    pending->pop_front();
    --pending_send_depth_;
    complete_rendezvous(ps.rank, ps.ready, rank, now, ps.bytes, op.tag);
    return;
  }
  pending_recvs_[key].push_back(PendingRecv{rank, now, st.phase});
  ++pending_recv_depth_;
  observe_pending();
  st.blocked = true;
}

void Engine::start_isend(int rank, SimTime now, const Op& op) {
  SOC_CHECK(op.peer >= 0 && op.peer < placement_.ranks && op.peer != rank,
            "invalid isend peer");
  auto& st = states_[static_cast<std::size_t>(rank)];
  auto& rs = stats_.ranks[static_cast<std::size_t>(rank)];
  const MsgKey key = msg_key(rank, op.peer, op.tag);

  // Buffered semantics: the transfer launches now; the sender only pays
  // the posting overhead and its request completes locally.
  const SimTime arrival = launch_eager(rank, op.peer, now, op.bytes, op.tag);
  const SimTime overhead = cost_.send_overhead(rank);
  rs.msg_overhead += overhead;
  st.requests_complete = std::max(st.requests_complete, now + overhead);

  auto* pending = pending_recvs_.find(key);
  auto* posted = pending_irecvs_.find(key);
  if (pending != nullptr && !pending->empty()) {
    const PendingRecv pr = pending->front();
    pending->pop_front();
    --pending_recv_depth_;
    auto& recv_rs = stats_.ranks[static_cast<std::size_t>(pr.rank)];
    const SimTime complete =
        std::max(pr.ready, arrival) + cost_.recv_overhead(pr.rank);
    recv_rs.recv_blocked += complete - pr.ready;
    advance(pr.rank);
    queue_.push(complete, pr.rank);
  } else if (posted != nullptr && !posted->empty()) {
    const int recv_rank = posted->front();
    posted->pop_front();
    --pending_recv_depth_;
    resolve_request(recv_rank, arrival + cost_.recv_overhead(recv_rank));
  } else {
    arrivals_[key].push_back(Arrival{arrival, op.bytes});
  }

  advance(rank);
  queue_.push(now + overhead, rank);
}

void Engine::start_irecv(int rank, SimTime now, const Op& op) {
  SOC_CHECK(op.peer >= 0 && op.peer < placement_.ranks && op.peer != rank,
            "invalid irecv peer");
  auto& st = states_[static_cast<std::size_t>(rank)];
  const MsgKey key = msg_key(op.peer, rank, op.tag);

  // Already-arrived (eager/isend) message?
  auto* arrived = arrivals_.find(key);
  if (arrived != nullptr && !arrived->empty()) {
    const Arrival a = arrived->front();
    arrived->pop_front();
    st.requests_complete =
        std::max(st.requests_complete,
                 std::max(now, a.time) + cost_.recv_overhead(rank));
  } else {
    // A blocking sender already parked in rendezvous?
    auto* pending = pending_sends_.find(key);
    if (pending != nullptr && !pending->empty()) {
      const PendingSend ps = pending->front();
      pending->pop_front();
      --pending_send_depth_;
      const SimTime end = timed_transfer(ps.rank, rank,
                                         std::max(ps.ready, now), ps.bytes,
                                         op.tag);
      auto& send_rs = stats_.ranks[static_cast<std::size_t>(ps.rank)];
      send_rs.send_blocked += end - ps.ready;
      advance(ps.rank);
      queue_.push(end, ps.rank);
      st.requests_complete = std::max(st.requests_complete,
                                      end + cost_.recv_overhead(rank));
    } else {
      ++st.unresolved_requests;
      pending_irecvs_[key].push_back(rank);
      ++pending_recv_depth_;
      observe_pending();
    }
  }

  advance(rank);
  queue_.push(now + cost_.recv_overhead(rank), rank);
}

void Engine::start_wait_all(int rank, SimTime now) {
  auto& st = states_[static_cast<std::size_t>(rank)];
  if (st.unresolved_requests > 0) {
    st.waiting_all = true;
    st.blocked = true;
    return;  // resolve_request wakes us
  }
  const SimTime done = std::max(now, st.requests_complete);
  stats_.ranks[static_cast<std::size_t>(rank)].recv_blocked += done - now;
  st.requests_complete = 0;
  advance(rank);
  queue_.push(done, rank);
}

void Engine::resolve_request(int rank, SimTime completion) {
  auto& st = states_[static_cast<std::size_t>(rank)];
  SOC_CHECK(st.unresolved_requests > 0, "resolve with no pending request");
  --st.unresolved_requests;
  st.requests_complete = std::max(st.requests_complete, completion);
  if (st.waiting_all && st.unresolved_requests == 0) {
    st.waiting_all = false;
    st.blocked = false;
    // Re-executes kWaitAll (pc still points at it) at the completion time.
    queue_.push(st.requests_complete, rank);
  }
}

SimTime Engine::timed_transfer(int send_rank, int recv_rank, SimTime earliest,
                               Bytes bytes, int tag) {
  const int src_node = placement_.node_of[static_cast<std::size_t>(send_rank)];
  const int dst_node = placement_.node_of[static_cast<std::size_t>(recv_rank)];
  SimTime start = earliest;
  SimTime latency = 0;
  SimTime duration = 0;
  SimTime fabric_wait = 0;
  if (!scenario_.ideal_network) {
    if (src_node != dst_node) {
      // Full-duplex NICs: the sender's transmit side and the receiver's
      // receive side serialize independently.
      start = std::max({start,
                        nic_tx_free_[static_cast<std::size_t>(src_node)],
                        nic_rx_free_[static_cast<std::size_t>(dst_node)]});
      if (config_.bisection_bandwidth > 0.0) {
        const SimTime nic_ready = start;
        start = std::max(start, fabric_free_);
        fabric_wait = start - nic_ready;
      }
    }
    latency = cost_.message_latency(src_node, dst_node);
    duration =
        latency + cost_.message_transfer_time(src_node, dst_node, bytes);
    if (src_node != dst_node) {
      nic_tx_free_[static_cast<std::size_t>(src_node)] = start + duration;
      nic_rx_free_[static_cast<std::size_t>(dst_node)] = start + duration;
      if (config_.bisection_bandwidth > 0.0) {
        // The fabric pipe frees once this flow's share has drained.
        fabric_free_ =
            start + transfer_time(bytes, config_.bisection_bandwidth);
      }
    }
  }
  const SimTime end = start + duration;
  account_transfer(send_rank, recv_rank, earliest, start, end, bytes,
                   /*eager=*/false, fabric_wait, tag, latency);
  return end;
}

void Engine::complete_rendezvous(int send_rank, SimTime send_ready,
                                 int recv_rank, SimTime recv_ready,
                                 Bytes bytes, int tag) {
  const SimTime end =
      timed_transfer(send_rank, recv_rank, std::max(send_ready, recv_ready),
                     bytes, tag);
  auto& send_rs = stats_.ranks[static_cast<std::size_t>(send_rank)];
  auto& recv_rs = stats_.ranks[static_cast<std::size_t>(recv_rank)];
  send_rs.send_blocked += end - send_ready;
  recv_rs.recv_blocked += end - recv_ready;

  advance(send_rank);
  advance(recv_rank);
  queue_.push(end, send_rank);
  queue_.push(end, recv_rank);
}

SimTime Engine::launch_eager(int src_rank, int dst_rank, SimTime now,
                             Bytes bytes, int tag) {
  const int src_node = placement_.node_of[static_cast<std::size_t>(src_rank)];
  const int dst_node = placement_.node_of[static_cast<std::size_t>(dst_rank)];
  if (scenario_.ideal_network) {
    account_transfer(src_rank, dst_rank, now, now, now, bytes,
                     /*eager=*/true, 0, tag, 0);
    return now;
  }
  SimTime start = now;
  SimTime fabric_wait = 0;
  if (src_node != dst_node) {
    start = std::max(now, nic_tx_free_[static_cast<std::size_t>(src_node)]);
    if (config_.bisection_bandwidth > 0.0) {
      const SimTime nic_ready = start;
      start = std::max(start, fabric_free_);
      fabric_wait = start - nic_ready;
      fabric_free_ = start + transfer_time(bytes, config_.bisection_bandwidth);
    }
  }
  const SimTime xfer = cost_.message_transfer_time(src_node, dst_node, bytes);
  const SimTime latency = cost_.message_latency(src_node, dst_node);
  const SimTime arrival = start + latency + xfer;
  if (src_node != dst_node) {
    nic_tx_free_[static_cast<std::size_t>(src_node)] = start + xfer;
    nic_rx_free_[static_cast<std::size_t>(dst_node)] =
        std::max(nic_rx_free_[static_cast<std::size_t>(dst_node)], arrival);
  }
  account_transfer(src_rank, dst_rank, now, start, arrival, bytes,
                   /*eager=*/true, fabric_wait, tag, latency);
  return arrival;
}

void Engine::account_transfer(int src_rank, int dst_rank, SimTime requested,
                              SimTime start, SimTime end, Bytes bytes,
                              bool eager, SimTime fabric_wait, int tag,
                              SimTime latency) {
  const int src_node = placement_.node_of[static_cast<std::size_t>(src_rank)];
  const int dst_node = placement_.node_of[static_cast<std::size_t>(dst_rank)];
  auto& send_rs = stats_.ranks[static_cast<std::size_t>(src_rank)];
  auto& recv_rs = stats_.ranks[static_cast<std::size_t>(dst_rank)];
  ++send_rs.messages_sent;
  ++recv_rs.messages_received;

  if (observer_ != nullptr) {
    MessageRecord message;
    message.eager = eager;
    message.inter_node = src_node != dst_node;
    message.src_rank = src_rank;
    message.dst_rank = dst_rank;
    message.phase = states_[static_cast<std::size_t>(src_rank)].phase;
    message.tag = tag;
    message.bytes = bytes;
    message.start = start;
    message.end = end;
    message.latency = latency;
    observer_->on_message(message);
  }

  // Message payloads traverse main memory on both endpoints (the TX1 has
  // no GPUDirect, so all network data lands in DRAM first — §III-B.2).
  send_rs.dram_bytes += bytes;
  recv_rs.dram_bytes += bytes;
  bin_value(stats_.nodes[static_cast<std::size_t>(src_node)].dram_bytes, start,
            static_cast<double>(bytes));
  bin_value(stats_.nodes[static_cast<std::size_t>(dst_node)].dram_bytes, start,
            static_cast<double>(bytes));

  if (src_node == dst_node) {
    send_rs.intra_bytes_sent += bytes;
    return;
  }
  send_rs.net_bytes_sent += bytes;
  recv_rs.net_bytes_received += bytes;
  bin_busy(stats_.nodes[static_cast<std::size_t>(src_node)].nic_busy, start, end);
  bin_busy(stats_.nodes[static_cast<std::size_t>(dst_node)].nic_busy, start, end);
  const std::uint8_t kind = static_cast<std::uint8_t>(
      eager ? OpKind::kIsend : OpKind::kSend);
  observe_span(Lane::kNicTx, src_rank, src_node, kind, start, end,
               start - requested, fabric_wait, bytes);
  observe_span(Lane::kNicRx, dst_rank, dst_node, kind, start, end,
               start - requested, fabric_wait, bytes);
}

double RunStats::flops_per_second() const {
  const double s = seconds();
  return s > 0.0 ? total_flops / s : 0.0;
}

double RunStats::dram_bytes_per_second() const {
  const double s = seconds();
  return s > 0.0 ? static_cast<double>(total_dram_bytes) / s : 0.0;
}

double RunStats::net_bytes_per_second() const {
  const double s = seconds();
  return s > 0.0 ? static_cast<double>(total_net_bytes) / s : 0.0;
}

}  // namespace soc::sim
