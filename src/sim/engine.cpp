#include "sim/engine.h"

#include <algorithm>
// Wall-clock telemetry is the one legitimately nondeterministic output
// here; it never feeds back into simulated state (sim/telemetry.h).
#include <chrono>  // soclint: allow(banned-nondeterminism)
#include <cmath>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "common/parallel.h"

namespace soc::sim {

const char* lane_name(Lane lane) {
  switch (lane) {
    case Lane::kCpu: return "cpu";
    case Lane::kGpu: return "gpu";
    case Lane::kCopy: return "copy";
    case Lane::kNicTx: return "nic-tx";
    case Lane::kNicRx: return "nic-rx";
    case Lane::kCount: break;
  }
  return "?";
}

const char* engine_span_kind_name(EngineSpan::Kind kind) {
  switch (kind) {
    case EngineSpan::kStep: return "step";
    case EngineSpan::kBarrier: return "barrier";
    case EngineSpan::kDrain: return "drain";
    case EngineSpan::kMerge: return "merge";
  }
  return "?";
}

std::uint64_t Engine::tel_now_ns() const {
  using Clock = std::chrono::steady_clock;  // soclint: allow(banned-nondeterminism)
  const auto since_epoch = Clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(since_epoch)
                 .count()) -
         tel_t0_ns_;
}

void Engine::tel_span(std::vector<EngineSpan>& out, std::uint64_t* dropped,
                      EngineSpan::Kind kind, int lane, std::uint64_t window,
                      std::uint64_t begin_ns, std::uint64_t end_ns) const {
  if (out.size() >= tel_->max_spans_per_lane) {
    ++*dropped;
    return;
  }
  EngineSpan s;
  s.kind = kind;
  s.lane = lane;
  s.window = window;
  s.begin_ns = begin_ns;
  s.end_ns = end_ns;
  out.push_back(s);
}

void Engine::tel_finalize() {
  tel_->shards = nshards_;
  tel_->workers = nshards_ > 1 ? nthreads_ : 1;
  tel_->windowed = nshards_ > 1;
  tel_->lookahead = lookahead_;
  tel_->events_committed = stats_.events_committed;
  tel_->shard.assign(shards_.size(), ShardCounters{});
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    tel_->shard[s] = shards_[s].counters;
    if (tel_->shard[s].mailbox_sent.empty()) {
      tel_->shard[s].mailbox_sent.assign(shards_.size(), 0);
    }
  }
  // The inline windowed path is its own single worker: the coordinator's
  // step time is that worker's busy time.
  if (tel_->windowed && tel_->worker_busy_ns.empty()) {
    tel_->worker_busy_ns.assign(1, tel_->busy_max_ns);
  }
  tel_->worker_barrier_ns = tel_worker_barrier_;
  tel_->spans = tel_coord_spans_;
  for (std::size_t w = 0; w < tel_worker_spans_.size(); ++w) {
    tel_->spans.insert(tel_->spans.end(), tel_worker_spans_[w].begin(),
                       tel_worker_spans_[w].end());
    tel_->spans_dropped += tel_worker_drops_[w];
  }
  tel_window_busy_.clear();
  tel_worker_spans_.clear();
  tel_worker_barrier_.clear();
  tel_worker_drops_.clear();
  tel_coord_spans_.clear();
  tel_->wall_total_ns = tel_now_ns();
}

// Default observer callbacks are no-ops so implementations override only
// the streams they consume (and the vtable is anchored here).
void EngineObserver::on_run_begin(const Placement&, const EngineConfig&) {}
void EngineObserver::on_dispatch(const DispatchRecord&) {}
void EngineObserver::on_span(const SpanRecord&) {}
void EngineObserver::on_message(const MessageRecord&) {}
void EngineObserver::on_pending(int, int) {}
void EngineObserver::on_run_end(const RunStats&) {}

Placement Placement::block(int ranks, int nodes) {
  SOC_CHECK(ranks > 0 && nodes > 0, "placement needs positive sizes");
  SOC_CHECK(ranks % nodes == 0, "block placement needs ranks % nodes == 0");
  Placement p;
  p.ranks = ranks;
  p.nodes = nodes;
  p.node_of.resize(static_cast<std::size_t>(ranks));
  const int per_node = ranks / nodes;
  for (int r = 0; r < ranks; ++r) p.node_of[static_cast<std::size_t>(r)] = r / per_node;
  return p;
}

Engine::Engine(Placement placement, const CostModel& cost_model,
               EngineConfig config, Scenario scenario)
    : placement_(std::move(placement)),
      cost_(cost_model),
      config_(config),
      scenario_(std::move(scenario)) {
  SOC_CHECK(placement_.ranks > 0, "no ranks");
  SOC_CHECK(static_cast<int>(placement_.node_of.size()) == placement_.ranks,
            "placement size mismatch");
  SOC_CHECK(scenario_.compute_scale.empty() ||
                static_cast<int>(scenario_.compute_scale.size()) ==
                    placement_.ranks,
            "compute_scale size mismatch");
  SOC_CHECK(config_.shards >= 1, "shards must be >= 1");
  SOC_CHECK(config_.threads >= 0, "threads must be >= 0");
}

Engine::MsgKey Engine::msg_key(int src, int dst, int tag) {
  // 21 bits each is far beyond any simulated cluster; tag is workload-local.
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 42) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 21) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag) & 0x1FFFFF);
}

std::uint64_t Engine::wake_key(int rank) {
  // Class bit set: wake-ups sort after protocol messages at equal times
  // (a proto can schedule a same-time wake, never the reverse).
  return (1ULL << 63) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) << 47);
}

std::uint64_t Engine::next_proto_key(int emitter_rank, int dst_rank) {
  // Class bit clear; (emitter, per-emitter seq) makes the key unique among
  // all coexisting events, and the emitter's shard owns the counter so
  // assignment order is shard-deterministic.
  const std::uint32_t seq =
      proto_seq_[static_cast<std::size_t>(emitter_rank)]++;
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst_rank))
          << 47) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(emitter_rank))
          << 32) |
         seq;
}

Engine::Shard& Engine::shard_of(int rank) {
  return shards_[static_cast<std::size_t>(
      shard_of_rank_[static_cast<std::size_t>(rank)])];
}

bool Engine::use_protocol(int src_rank, int dst_rank) const {
  return protocol_ &&
         placement_.node_of[static_cast<std::size_t>(src_rank)] !=
             placement_.node_of[static_cast<std::size_t>(dst_rank)];
}

SimTime Engine::min_cross_node_latency() const {
  SimTime best = -1;
  for (int a = 0; a < placement_.nodes; ++a) {
    for (int b = 0; b < placement_.nodes; ++b) {
      if (a == b) continue;
      const SimTime l = cost_.message_latency(a, b);
      if (best < 0 || l < best) best = l;
    }
  }
  return best < 0 ? 0 : best;
}

double Engine::compute_scale_for(int rank) const {
  if (scenario_.compute_scale.empty()) return 1.0;
  return scenario_.compute_scale[static_cast<std::size_t>(rank)];
}

SimTime Engine::scaled(SimTime t, int rank) const {
  const double s = compute_scale_for(rank);
  if (s == 1.0) return t;
  return static_cast<SimTime>(std::llround(static_cast<double>(t) * s));
}

void Engine::add_phase_compute(int rank, SimTime duration) {
  auto& rs = stats_.ranks[static_cast<std::size_t>(rank)];
  rs.phase_compute[states_[static_cast<std::size_t>(rank)].phase] += duration;
}

void Engine::bin_busy(std::vector<double>& lane, SimTime start, SimTime end) {
  if (end <= start) return;
  const SimTime bin_ns = static_cast<SimTime>(
      std::llround(config_.timeline_bin_seconds * static_cast<double>(kSecond)));
  const std::size_t last_bin = static_cast<std::size_t>(end / bin_ns);
  if (lane.size() <= last_bin) lane.resize(last_bin + 1, 0.0);
  SimTime t = start;
  while (t < end) {
    const SimTime bin = t / bin_ns;
    const SimTime bin_end = (bin + 1) * bin_ns;
    const SimTime chunk = std::min(end, bin_end) - t;
    lane[static_cast<std::size_t>(bin)] += to_seconds(chunk);
    t += chunk;
  }
}

void Engine::bin_value(std::vector<double>& lane, SimTime at, double value) {
  const SimTime bin_ns = static_cast<SimTime>(
      std::llround(config_.timeline_bin_seconds * static_cast<double>(kSecond)));
  const std::size_t bin = static_cast<std::size_t>(at / bin_ns);
  if (lane.size() <= bin) lane.resize(bin + 1, 0.0);
  lane[bin] += value;
}

namespace {

// Straggler injection: op.time_scale stretches the cost-model-derived
// duration AFTER memo lookup, so memoized costs stay shared across
// scaled and unscaled ranks.
SimTime apply_time_scale(SimTime t, const Op& op) {
  if (op.time_scale == 1.0) return t;
  return static_cast<SimTime>(
      std::llround(static_cast<double>(t) * op.time_scale));
}

}  // namespace

RunStats Engine::run(const std::vector<Program>& programs) {
  SOC_CHECK(static_cast<int>(programs.size()) == placement_.ranks,
            "one program per rank required");
  ProgramSource source(programs);
  return run(source);
}

RunStats Engine::run(OpSource& source) {
  SOC_CHECK(source.ranks() == placement_.ranks,
            "one op stream per rank required");
  const std::size_t n = static_cast<std::size_t>(placement_.ranks);
  const std::size_t nodes = static_cast<std::size_t>(placement_.nodes);
  source_ = &source;

  // Self-telemetry attaches for exactly one run; with no sink every
  // instrumentation site below is a single `tel_ != nullptr` test.
  tel_ = config_.telemetry;
  if (tel_ != nullptr) {
    tel_->reset();
    tel_t0_ns_ = 0;
    tel_t0_ns_ = tel_now_ns();
    tel_coord_spans_.clear();
    tel_worker_spans_.clear();
    tel_worker_barrier_.clear();
    tel_worker_drops_.clear();
  }

  // -- Partitioning.  Cross-node pairs communicate through timestamped
  //    protocol messages whenever the network is real; the conservative
  //    lookahead is the minimum cross-node latency, and sharding is only
  //    sound when it is positive (a zero lookahead admits same-instant
  //    cross-shard effects, so the run collapses to one shard).
  protocol_ = !scenario_.ideal_network && placement_.nodes > 1;
  lookahead_ = protocol_ ? min_cross_node_latency() : 0;
  nshards_ = 1;
  if (lookahead_ > 0 && config_.shards > 1) {
    nshards_ = std::min(config_.shards, placement_.nodes);
  }
  if (protocol_) {
    SOC_CHECK(placement_.ranks < (1 << 15),
              "protocol event keys support < 32768 ranks");
  }
  if (nshards_ <= 1) {
    nthreads_ = 1;
  } else if (config_.threads == 0) {
    nthreads_ = static_cast<int>(
        effective_threads(0, static_cast<std::size_t>(nshards_)));
  } else {
    // Explicit thread counts are honored even above the hardware
    // concurrency so the window/barrier machinery is exercisable on any
    // host; extra threads just time-slice.
    nthreads_ = std::min(config_.threads, nshards_);
  }
  config_.lookahead = lookahead_;

  // Nodes partition into contiguous shard blocks; a rank lives on its
  // node's shard, so intra-node messaging is always shard-local.
  shard_of_node_.assign(nodes, 0);
  for (std::size_t node = 0; node < nodes; ++node) {
    shard_of_node_[node] = static_cast<int>(node * static_cast<std::size_t>(
                                                       nshards_) /
                                            nodes);
  }
  shard_of_rank_.assign(n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    shard_of_rank_[r] =
        shard_of_node_[static_cast<std::size_t>(placement_.node_of[r])];
  }

  states_.assign(n, RankState{});
  stats_ = RunStats{};
  stats_.timeline_bin_seconds = config_.timeline_bin_seconds;
  stats_.ranks.assign(n, RankStats{});
  stats_.nodes.assign(nodes, NodeTimeline{});
  gpu_free_.assign(nodes, 0);
  copy_free_.assign(nodes, 0);
  nic_tx_free_.assign(nodes, 0);
  nic_rx_free_.assign(nodes, 0);
  port_free_.assign(nodes, 0);
  proto_seq_.assign(n, 0);

  // Reservations only: committed events are identical for any hint value
  // (determinism_test pins this with a checksum-equality case).
  const std::size_t reserve =
      config_.queue_reserve > 0
          ? static_cast<std::size_t>(config_.queue_reserve)
          : 2 * n + 16;
  shards_.resize(static_cast<std::size_t>(nshards_));
  for (auto& sh : shards_) {
    sh.queue.clear();
    sh.queue.reserve(reserve);
    sh.proto_pool.clear();
    sh.proto_free.clear();
    sh.pending_sends.clear();
    sh.pending_recvs.clear();
    sh.pending_irecvs.clear();
    sh.arrivals.clear();
    sh.pending_sends.reserve(reserve);
    sh.pending_recvs.reserve(reserve);
    sh.pending_irecvs.reserve(reserve);
    sh.arrivals.reserve(reserve);
    sh.commits.clear();
    sh.outbox.resize(static_cast<std::size_t>(nshards_));
    for (auto& box : sh.outbox) {
      while (!box.empty()) box.pop_front();
    }
    sh.ev_time = 0;
    sh.ev_key = 0;
    sh.counters = ShardCounters{};
    if (tel_ != nullptr) {
      sh.counters.mailbox_sent.assign(static_cast<std::size_t>(nshards_), 0);
    }
  }
  audit_ = Fnv1a{};
  merged_.clear();
  pending_send_depth_ = 0;
  pending_recv_depth_ = 0;
  if (observer_ != nullptr) observer_->on_run_begin(placement_, config_);

  const SimTime horizon = from_seconds(config_.max_sim_seconds);
  for (std::size_t r = 0; r < n; ++r) wake(static_cast<int>(r), 0);

  if (nshards_ <= 1) {
    run_serial(horizon);
  } else {
    run_windowed(horizon);
  }
  source_ = nullptr;

  // Every rank must have drained its stream; otherwise communication
  // deadlocked (a send or recv never found its partner).
  for (std::size_t r = 0; r < n; ++r) {
    if (!states_[r].done) {
      std::ostringstream os;
      os << "deadlock: rank " << r << " stuck at op " << states_[r].pc;
      if (states_[r].have_current) {
        const Op& op = states_[r].current;
        os << " (kind=" << static_cast<int>(op.kind) << " peer=" << op.peer
           << " tag=" << op.tag << ")";
      }
      throw Error(os.str());
    }
  }

  for (std::size_t r = 0; r < n; ++r) {
    const RankStats& rs = stats_.ranks[r];
    stats_.makespan = std::max(stats_.makespan, rs.finish_time);
    stats_.total_net_bytes += rs.net_bytes_sent;
    stats_.total_dram_bytes += rs.dram_bytes;
    stats_.total_gpu_dram_bytes += rs.gpu_dram_bytes;
    stats_.total_flops += rs.flops;
    stats_.total_gpu_flops += rs.gpu_flops;
  }
  stats_.event_checksum = audit_.value();
  if (observer_ != nullptr) observer_->on_run_end(stats_);
  if (tel_ != nullptr) {
    tel_finalize();
    tel_ = nullptr;
  }
  return stats_;
}

void Engine::run_serial(SimTime horizon) {
  // One shard, no windows.  Commit records still buffer and flush in
  // canonical (time, key) order — per completed timestamp, which is
  // exactly the order the windowed merge produces (late same-time
  // insertions land before the flush, so sorting the batch is enough).
  Shard& sh = shards_[0];
  SimTime flushed = 0;
  while (!sh.queue.empty()) {
    if (sh.queue.top().time != flushed) {
      replay_commits(sh.commits);
      flushed = sh.queue.top().time;
    }
    const KeyedEvent e = sh.queue.pop();
    SOC_CHECK(e.time <= horizon, "simulation exceeded max_sim_seconds");
    process_event(sh, e);
  }
  replay_commits(sh.commits);
}

void Engine::step_shard(Shard& sh, SimTime window_end, SimTime horizon) {
  if (tel_ != nullptr) {
    ++sh.counters.windows_stepped;
    if (sh.queue.empty() || sh.queue.top().time >= window_end) {
      ++sh.counters.empty_windows;
    }
  }
  while (!sh.queue.empty() && sh.queue.top().time < window_end) {
    const KeyedEvent e = sh.queue.pop();
    SOC_CHECK(e.time <= horizon, "simulation exceeded max_sim_seconds");
    process_event(sh, e);
  }
}

void Engine::run_windowed(SimTime horizon) {
  // Conservative window loop: every shard may execute all events with
  // time < H + lookahead, because anything another shard can still send
  // it is timestamped >= its emission time + lookahead >= H + lookahead.
  // Between windows the coordinator (this thread) drains the mailboxes,
  // merges the per-shard commit buffers into the canonical stream, and
  // advances H to the earliest remaining event.
  SimTime window_end = 0;
  SimTime h = 0;  // Every rank starts queued at t = 0.

  const auto finish_window = [&]() {
    drain_outboxes();
    for (auto& sh : shards_) {
      merged_.insert(merged_.end(), sh.commits.begin(), sh.commits.end());
      sh.commits.clear();
    }
    replay_commits(merged_);
  };
  const auto next_horizon = [&](SimTime* out) {
    bool any = false;
    SimTime next = 0;
    for (const auto& sh : shards_) {
      if (sh.queue.empty()) continue;
      const SimTime t = sh.queue.top().time;
      if (!any || t < next) next = t;
      any = true;
    }
    if (any) *out = next;
    return any;
  };

  if (nthreads_ <= 1) {
    // The coordinator steps every shard itself; for telemetry it is the
    // run's single worker (busy == step wall, so the decomposition's
    // imbalance and barrier terms are zero by construction).
    for (;;) {
      window_end = h + lookahead_;
      if (tel_ == nullptr) {
        for (auto& sh : shards_) step_shard(sh, window_end, horizon);
      } else {
        const std::uint64_t b0 = tel_now_ns();
        for (auto& sh : shards_) step_shard(sh, window_end, horizon);
        const std::uint64_t b1 = tel_now_ns();
        tel_->step_wall_ns += b1 - b0;
        tel_->busy_max_ns += b1 - b0;
        tel_->busy_sum_ns += b1 - b0;
        tel_span(tel_coord_spans_, &tel_->spans_dropped, EngineSpan::kStep,
                 0, tel_->windows, b0, b1);
      }
      finish_window();
      if (tel_ != nullptr) ++tel_->windows;
      if (!next_horizon(&h)) return;
      SOC_CHECK(h >= window_end, "conservative lookahead violated");
    }
  }

  // Persistent worker pool; two barrier cycles per window.  The
  // coordinator writes window_end / stop strictly before the start
  // barrier and reads shard state strictly after the end barrier, so the
  // barrier's happens-before is the only synchronization the shard state
  // (and the mailboxes) needs.
  Barrier start_bar(nthreads_ + 1);
  Barrier end_bar(nthreads_ + 1);
  bool stop = false;  // SOC_SHARED(start_bar)
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(nthreads_));  // SOC_SHARED(end_bar)
  if (tel_ != nullptr) {
    // Worker-slot scratch: each worker writes only its own element
    // between the barriers; the coordinator reads strictly after the end
    // barrier (the same happens-before the shard state relies on).
    tel_window_busy_.assign(static_cast<std::size_t>(nthreads_), 0);
    tel_worker_spans_.assign(static_cast<std::size_t>(nthreads_), {});
    tel_worker_barrier_.assign(static_cast<std::size_t>(nthreads_), 0);
    tel_worker_drops_.assign(static_cast<std::size_t>(nthreads_), 0);
    tel_->worker_busy_ns.assign(static_cast<std::size_t>(nthreads_), 0);
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(nthreads_));
  for (int t = 0; t < nthreads_; ++t) {
    pool.emplace_back([this, t, &start_bar, &end_bar, &stop, &errors,
                       &window_end, horizon] {
      const std::size_t slot = static_cast<std::size_t>(t);
      std::uint64_t window = 0;
      for (;;) {
        const std::uint64_t b0 = tel_ != nullptr ? tel_now_ns() : 0;
        start_bar.arrive_and_wait();
        if (stop) return;
        const std::uint64_t b1 = tel_ != nullptr ? tel_now_ns() : 0;
        try {
          for (int s = t; s < nshards_; s += nthreads_) {
            step_shard(shards_[static_cast<std::size_t>(s)], window_end,
                       horizon);
          }
        } catch (...) {
          errors[static_cast<std::size_t>(t)] = std::current_exception();
        }
        if (tel_ != nullptr) {
          const std::uint64_t b2 = tel_now_ns();
          tel_window_busy_[slot] = b2 - b1;
          tel_worker_barrier_[slot] += b1 - b0;
          tel_span(tel_worker_spans_[slot], &tel_worker_drops_[slot],
                   EngineSpan::kBarrier, 1 + t, window, b0, b1);
          tel_span(tel_worker_spans_[slot], &tel_worker_drops_[slot],
                   EngineSpan::kStep, 1 + t, window, b1, b2);
        }
        end_bar.arrive_and_wait();
        ++window;
      }
    });
  }

  std::exception_ptr failure;
  for (;;) {
    window_end = h + lookahead_;
    const std::uint64_t w0 = tel_ != nullptr ? tel_now_ns() : 0;
    start_bar.arrive_and_wait();
    end_bar.arrive_and_wait();
    if (tel_ != nullptr) {
      // step_wall (coordinator wait from release to last finisher)
      // brackets every worker's busy span, so busy_max <= step_wall per
      // window — the inequality the decomposition's barrier term needs.
      const std::uint64_t w1 = tel_now_ns();
      tel_->step_wall_ns += w1 - w0;
      std::uint64_t wmax = 0;
      std::uint64_t wsum = 0;
      for (int t = 0; t < nthreads_; ++t) {
        const std::uint64_t busy = tel_window_busy_[static_cast<std::size_t>(t)];
        wsum += busy;
        if (busy > wmax) wmax = busy;
        tel_->worker_busy_ns[static_cast<std::size_t>(t)] += busy;
      }
      tel_->busy_max_ns += wmax;
      tel_->busy_sum_ns += wsum;
      tel_span(tel_coord_spans_, &tel_->spans_dropped, EngineSpan::kBarrier,
               0, tel_->windows, w0, w1);
    }
    for (auto& err : errors) {
      if (err && !failure) failure = err;
      err = nullptr;
    }
    if (failure) break;
    finish_window();
    if (tel_ != nullptr) ++tel_->windows;
    if (!next_horizon(&h)) break;
    SOC_CHECK(h >= window_end, "conservative lookahead violated");
  }
  stop = true;
  start_bar.arrive_and_wait();
  for (auto& th : pool) th.join();
  if (failure) std::rethrow_exception(failure);
}

void Engine::drain_outboxes() {
  const std::uint64_t t0 = tel_ != nullptr ? tel_now_ns() : 0;
  for (int ts = 0; ts < nshards_; ++ts) {
    Shard& dst = shards_[static_cast<std::size_t>(ts)];
    for (int fs = 0; fs < nshards_; ++fs) {
      auto& box = shards_[static_cast<std::size_t>(fs)]
                      .outbox[static_cast<std::size_t>(ts)];
      while (!box.empty()) {
        enqueue_proto(dst, box.front());
        box.pop_front();
      }
    }
  }
  if (tel_ != nullptr) {
    const std::uint64_t t1 = tel_now_ns();
    tel_->drain_wall_ns += t1 - t0;
    tel_span(tel_coord_spans_, &tel_->spans_dropped, EngineSpan::kDrain, 0,
             tel_->windows, t0, t1);
  }
}

void Engine::enqueue_proto(Shard& dst, const ProtoMsg& p) {
  std::int32_t slot;
  if (!dst.proto_free.empty()) {
    slot = dst.proto_free.back();
    dst.proto_free.pop_back();
    dst.proto_pool[static_cast<std::size_t>(slot)] = p;
  } else {
    slot = static_cast<std::int32_t>(dst.proto_pool.size());
    dst.proto_pool.push_back(p);
  }
  // Negative payload marks a proto; the slot survives until the event
  // pops (protos routinely outlive many windows).
  dst.queue.push(p.time, p.key, -(slot + 1));
  if (tel_ != nullptr && dst.queue.size() > dst.counters.queue_high_water) {
    dst.counters.queue_high_water = dst.queue.size();
  }
}

void Engine::send_proto(int emitter_rank, int target_rank, const ProtoMsg& p) {
  const int fs = shard_of_rank_[static_cast<std::size_t>(emitter_rank)];
  const int ts = shard_of_rank_[static_cast<std::size_t>(target_rank)];
  if (tel_ != nullptr) {
    // Emission counters belong to the emitter's shard (the one executing
    // this call).  The per-kind totals are shard-count-invariant: whether
    // a pair uses the protocol depends only on node placement, never on
    // the partition.
    ShardCounters& c = shards_[static_cast<std::size_t>(fs)].counters;
    switch (p.kind) {
      case ProtoKind::kArrival: ++c.protos_arrival; break;
      case ProtoKind::kRts: ++c.protos_rts; break;
      case ProtoKind::kCts: ++c.protos_cts; break;
    }
    if (fs != ts) {
      ++c.cross_shard_sent;
      ++c.mailbox_sent[static_cast<std::size_t>(ts)];
    }
  }
  if (fs == ts) {
    enqueue_proto(shards_[static_cast<std::size_t>(fs)], p);
  } else {
    shards_[static_cast<std::size_t>(fs)]
        .outbox[static_cast<std::size_t>(ts)]
        .push_back(p);
  }
}

void Engine::process_event(Shard& sh, const KeyedEvent& e) {
  // Commit records emitted while this event executes inherit its
  // canonical (time, key) — that is what lets the coordinator restore
  // the global total order from per-shard buffers.
  sh.ev_time = e.time;
  sh.ev_key = e.key;
  if (tel_ != nullptr) ++sh.counters.events_processed;
  if (e.payload < 0) {
    const std::int32_t slot = -(e.payload + 1);
    const ProtoMsg p = sh.proto_pool[static_cast<std::size_t>(slot)];
    sh.proto_free.push_back(slot);
    switch (p.kind) {
      case ProtoKind::kArrival: process_arrival(p, e.time); return;
      case ProtoKind::kRts: process_rts(p, e.time); return;
      case ProtoKind::kCts: process_cts(p, e.time); return;
    }
    SOC_CHECK(false, "unknown protocol message kind");
  }
  execute_next(e.payload, e.time);
}

void Engine::replay_commits(std::vector<CommitRec>& recs) {
  const std::uint64_t t0 = tel_ != nullptr ? tel_now_ns() : 0;
  std::stable_sort(recs.begin(), recs.end(),
                   [](const CommitRec& a, const CommitRec& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.key < b.key;
                   });
  for (const CommitRec& rec : recs) {
    switch (rec.type) {
      case CommitType::kDispatch: {
        const DispatchRecord& d = rec.u.dispatch;
        audit_.mix_i64(d.time)
            .mix_u64(static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(d.rank)))
            .mix_byte(d.kind)
            .mix_i64(d.bytes);
        ++stats_.events_committed;
        if (observer_ != nullptr) observer_->on_dispatch(d);
        break;
      }
      case CommitType::kSpan:
        if (observer_ != nullptr) observer_->on_span(rec.u.span);
        break;
      case CommitType::kMessage:
        if (observer_ != nullptr) observer_->on_message(rec.u.message);
        break;
      case CommitType::kPendingPark:
        pending_send_depth_ += rec.u.pending.sends;
        pending_recv_depth_ += rec.u.pending.recvs;
        if (observer_ != nullptr) {
          observer_->on_pending(pending_send_depth_, pending_recv_depth_);
        }
        break;
      case CommitType::kPendingMatch:
        pending_send_depth_ += rec.u.pending.sends;
        pending_recv_depth_ += rec.u.pending.recvs;
        break;
    }
  }
  if (tel_ != nullptr) {
    tel_->commit_records += recs.size();
    const std::uint64_t t1 = tel_now_ns();
    tel_->merge_wall_ns += t1 - t0;
    tel_span(tel_coord_spans_, &tel_->spans_dropped, EngineSpan::kMerge, 0,
             tel_->windows, t0, t1);
  }
  recs.clear();
}

void Engine::commit_dispatch(int rank, SimTime now, std::uint8_t kind,
                             Bytes bytes, int peer, int tag) {
  Shard& sh = shard_of(rank);
  CommitRec rec;
  rec.time = sh.ev_time;
  rec.key = sh.ev_key;
  rec.type = CommitType::kDispatch;
  DispatchRecord& d = rec.u.dispatch;
  d.time = now;
  d.rank = rank;
  d.node = placement_.node_of[static_cast<std::size_t>(rank)];
  d.phase = states_[static_cast<std::size_t>(rank)].phase;
  d.kind = kind;
  d.bytes = bytes;
  d.pc = static_cast<std::int32_t>(states_[static_cast<std::size_t>(rank)].pc);
  d.peer = peer;
  d.tag = tag;
  sh.commits.push_back(rec);
}

void Engine::commit_span(Lane lane, int rank, int node, std::uint8_t kind,
                         SimTime start, SimTime end, SimTime queue_wait,
                         SimTime fabric_wait, Bytes bytes) {
  if (observer_ == nullptr) return;
  Shard& sh = shard_of(rank);
  CommitRec rec;
  rec.time = sh.ev_time;
  rec.key = sh.ev_key;
  rec.type = CommitType::kSpan;
  SpanRecord& span = rec.u.span;
  span.lane = lane;
  span.rank = rank;
  span.node = node;
  span.phase = states_[static_cast<std::size_t>(rank)].phase;
  span.kind = kind;
  span.start = start;
  span.end = end;
  span.queue_wait = queue_wait;
  span.fabric_wait = fabric_wait;
  span.bytes = bytes;
  sh.commits.push_back(rec);
}

void Engine::commit_message(const MessageRecord& message) {
  if (observer_ == nullptr) return;
  // The receive side commits the transfer, so the record belongs to the
  // receiver's shard (same shard as the emitting event).
  Shard& sh = shard_of(message.dst_rank);
  CommitRec rec;
  rec.time = sh.ev_time;
  rec.key = sh.ev_key;
  rec.type = CommitType::kMessage;
  rec.u.message = message;
  sh.commits.push_back(rec);
}

void Engine::commit_pending(int rank, int dsends, int drecvs, bool park) {
  if (observer_ == nullptr) return;
  Shard& sh = shard_of(rank);
  CommitRec rec;
  rec.time = sh.ev_time;
  rec.key = sh.ev_key;
  rec.type = park ? CommitType::kPendingPark : CommitType::kPendingMatch;
  rec.u.pending.sends = dsends;
  rec.u.pending.recvs = drecvs;
  sh.commits.push_back(rec);
}

void Engine::advance(int rank) {
  auto& st = states_[static_cast<std::size_t>(rank)];
  ++st.pc;
  st.have_current = false;
}

void Engine::wake(int rank, SimTime time) {
  Shard& sh = shard_of(rank);
  sh.queue.push(time, wake_key(rank), rank);
  if (tel_ != nullptr) {
    ++sh.counters.wakes;
    if (sh.queue.size() > sh.counters.queue_high_water) {
      sh.counters.queue_high_water = sh.queue.size();
    }
  }
}

void Engine::execute_next(int rank, SimTime now) {
  auto& st = states_[static_cast<std::size_t>(rank)];
  st.blocked = false;

  // Zero-cost ops (phase markers) are consumed inline; any op with real
  // duration schedules a wake-up and returns.  A parked op (rendezvous,
  // kWaitAll) stays buffered in st.current, so wake-ups re-dispatch it
  // without pulling the source again.
  for (;;) {
    if (!st.have_current) {
      if (st.exhausted || !source_->next(rank, now, &st.current)) {
        st.exhausted = true;
        break;
      }
      st.have_current = true;
      if (tel_ != nullptr) ++shard_of(rank).counters.ops_fetched;
    }
    const Op& op = st.current;
    // Every dispatch — including re-dispatch of a parked op after a
    // wake-up — is one record of the determinism digest.  The dispatch
    // sequence is exactly the engine's canonical total event order, so
    // equal digests mean equal schedules.
    commit_dispatch(rank, now, static_cast<std::uint8_t>(op.kind), op.bytes,
                    op.peer, op.tag);
    switch (op.kind) {
      case OpKind::kPhase:
        st.phase = op.phase;
        advance(rank);
        continue;
      case OpKind::kCpuCompute:
        start_compute(rank, now, op);
        return;
      case OpKind::kGpuKernel:
        start_gpu(rank, now, op);
        return;
      case OpKind::kCopyH2D:
      case OpKind::kCopyD2H:
        start_copy(rank, now, op);
        return;
      case OpKind::kSend:
        start_send(rank, now, op);
        return;
      case OpKind::kRecv:
        start_recv(rank, now, op);
        return;
      case OpKind::kIsend:
        start_isend(rank, now, op);
        return;  // rank re-scheduled after the posting overhead
      case OpKind::kIrecv:
        start_irecv(rank, now, op);
        return;
      case OpKind::kWaitAll:
        start_wait_all(rank, now);
        return;
      case OpKind::kDelay:
        start_delay(rank, now, op);
        return;
      case OpKind::kEnd:
        // End-of-stream is signalled by next() returning false;
        // workloads::OpStream bridges the kEnd sentinel to that.
        SOC_CHECK(false, "kEnd sentinel must not reach the engine");
        return;
    }
  }
  st.done = true;
  commit_dispatch(rank, now, kRankDoneAudit, 0);
  stats_.ranks[static_cast<std::size_t>(rank)].finish_time =
      std::max(stats_.ranks[static_cast<std::size_t>(rank)].finish_time, now);
}

void Engine::start_compute(int rank, SimTime now, const Op& op) {
  auto& rs = stats_.ranks[static_cast<std::size_t>(rank)];
  const int node = placement_.node_of[static_cast<std::size_t>(rank)];
  const SimTime dur =
      scaled(apply_time_scale(cost_.cpu_compute_time(rank, op), op), rank);

  rs.cpu_busy += dur;
  rs.flops += op.flops;
  rs.instructions += op.instructions;
  rs.dram_bytes += op.dram_bytes;
  if (op.profile >= 0) rs.instructions_by_profile[op.profile] += op.instructions;
  add_phase_compute(rank, dur);
  bin_busy(stats_.nodes[static_cast<std::size_t>(node)].cpu_busy, now, now + dur);
  bin_value(stats_.nodes[static_cast<std::size_t>(node)].dram_bytes, now,
            static_cast<double>(op.dram_bytes));
  commit_span(Lane::kCpu, rank, node, static_cast<std::uint8_t>(op.kind),
              now, now + dur, 0, 0, op.dram_bytes);

  advance(rank);
  wake(rank, now + dur);
}

void Engine::start_delay(int rank, SimTime now, const Op& op) {
  auto& rs = stats_.ranks[static_cast<std::size_t>(rank)];
  const int node = placement_.node_of[static_cast<std::size_t>(rank)];
  // An injected stall occupies the host like compute (the core spins or
  // the OS holds it), so it flows through cpu_busy, the per-phase
  // compute ledger, and the node timeline — which is exactly what lets
  // the LB/Ser/Trf decomposition and energy attribution explain the
  // damage with zero residual.  compute_scale (what-if DVFS on replay)
  // applies; op.time_scale does not: a fixed stall is wall-clock.
  const SimTime dur = scaled(from_seconds(op.delay_seconds), rank);

  rs.cpu_busy += dur;
  add_phase_compute(rank, dur);
  bin_busy(stats_.nodes[static_cast<std::size_t>(node)].cpu_busy, now, now + dur);
  commit_span(Lane::kCpu, rank, node, static_cast<std::uint8_t>(op.kind),
              now, now + dur, 0, 0, 0);

  advance(rank);
  wake(rank, now + dur);
}

void Engine::start_gpu(int rank, SimTime now, const Op& op) {
  auto& rs = stats_.ranks[static_cast<std::size_t>(rank)];
  const int node = placement_.node_of[static_cast<std::size_t>(rank)];
  auto& gpu_free = gpu_free_[static_cast<std::size_t>(node)];

  const SimTime start = std::max(now, gpu_free);
  const SimTime dur =
      scaled(apply_time_scale(cost_.gpu_kernel_time(rank, op), op), rank);
  gpu_free = start + dur;

  rs.gpu_queue_wait += start - now;
  rs.gpu_busy += dur;
  rs.flops += op.flops;
  rs.gpu_flops += op.flops;
  rs.dram_bytes += op.dram_bytes;
  rs.gpu_dram_bytes += op.dram_bytes;
  add_phase_compute(rank, dur);
  bin_busy(stats_.nodes[static_cast<std::size_t>(node)].gpu_busy, start,
           start + dur);
  bin_value(stats_.nodes[static_cast<std::size_t>(node)].dram_bytes, start,
            static_cast<double>(op.dram_bytes));
  commit_span(Lane::kGpu, rank, node, static_cast<std::uint8_t>(op.kind),
              start, start + dur, start - now, 0, op.dram_bytes);

  advance(rank);
  wake(rank, start + dur);
}

void Engine::start_copy(int rank, SimTime now, const Op& op) {
  auto& rs = stats_.ranks[static_cast<std::size_t>(rank)];
  const int node = placement_.node_of[static_cast<std::size_t>(rank)];
  auto& copy_free = copy_free_[static_cast<std::size_t>(node)];

  const SimTime start = std::max(now, copy_free);
  const SimTime dur =
      scaled(apply_time_scale(cost_.copy_time(rank, op), op), rank);
  copy_free = start + dur;

  rs.copy_busy += dur;
  // An explicit copy reads and writes main memory once each.  Copies are
  // NOT useful compute: they are host/device synchronization, which the
  // efficiency decomposition must see as serialization (§III-B.4).
  const Bytes traffic = op.bytes * 2;
  rs.dram_bytes += traffic;
  rs.gpu_dram_bytes += traffic;
  bin_value(stats_.nodes[static_cast<std::size_t>(node)].dram_bytes, start,
            static_cast<double>(traffic));
  commit_span(Lane::kCopy, rank, node, static_cast<std::uint8_t>(op.kind),
              start, start + dur, start - now, 0, op.bytes);

  advance(rank);
  wake(rank, start + dur);
}

void Engine::start_send(int rank, SimTime now, const Op& op) {
  SOC_CHECK(op.peer >= 0 && op.peer < placement_.ranks && op.peer != rank,
            "invalid send peer");
  auto& st = states_[static_cast<std::size_t>(rank)];
  auto& rs = stats_.ranks[static_cast<std::size_t>(rank)];
  const MsgKey key = msg_key(rank, op.peer, op.tag);

  if (use_protocol(rank, op.peer)) {
    if (op.bytes <= config_.eager_threshold) {
      // Eager: fire the payload at the receiver and keep running after
      // the posting overhead.  Matching happens receiver-side when the
      // kArrival message lands.
      launch_eager_remote(rank, op.peer, now, op.bytes, op.tag);
      const SimTime overhead = cost_.send_overhead(rank);
      rs.msg_overhead += overhead;
      advance(rank);
      wake(rank, now + overhead);
      return;
    }
    // Rendezvous: park and announce with an RTS that reaches the
    // receiver's shard one wire latency from now.  The matching receive
    // computes the transfer there and unblocks us with a kCts.
    const int src_node = placement_.node_of[static_cast<std::size_t>(rank)];
    const int dst_node = placement_.node_of[static_cast<std::size_t>(op.peer)];
    ProtoMsg p;
    p.kind = ProtoKind::kRts;
    p.src_rank = rank;
    p.dst_rank = op.peer;
    p.tag = op.tag;
    p.phase = st.phase;
    p.bytes = op.bytes;
    p.requested = now;
    p.tx_est = nic_tx_free_[static_cast<std::size_t>(src_node)];
    p.time = now + cost_.message_latency(src_node, dst_node);
    p.key = next_proto_key(rank, op.peer);
    send_proto(rank, op.peer, p);
    st.blocked = true;
    return;
  }

  if (op.bytes <= config_.eager_threshold) {
    Shard& sh = shard_of(rank);
    const SimTime arrival = launch_eager(rank, op.peer, now, op.bytes, op.tag);
    const SimTime overhead = cost_.send_overhead(rank);
    rs.msg_overhead += overhead;

    auto* pending = sh.pending_recvs.find(key);
    auto* posted = sh.pending_irecvs.find(key);
    if (pending != nullptr && !pending->empty()) {
      const PendingRecv pr = pending->front();
      pending->pop_front();
      commit_pending(rank, 0, -1, /*park=*/false);
      auto& recv_rs = stats_.ranks[static_cast<std::size_t>(pr.rank)];
      const SimTime complete =
          std::max(pr.ready, arrival) + cost_.recv_overhead(pr.rank);
      recv_rs.recv_blocked += complete - pr.ready;
      advance(pr.rank);
      wake(pr.rank, complete);
    } else if (posted != nullptr && !posted->empty()) {
      const int recv_rank = posted->front();
      posted->pop_front();
      commit_pending(rank, 0, -1, /*park=*/false);
      resolve_request(recv_rank, arrival + cost_.recv_overhead(recv_rank));
    } else {
      sh.arrivals[key].push_back(Arrival{arrival, op.bytes});
    }

    advance(rank);
    wake(rank, now + overhead);
    return;
  }

  // Rendezvous: need a posted receive (blocking or non-blocking).
  Shard& sh = shard_of(rank);
  auto* pending = sh.pending_recvs.find(key);
  if (pending != nullptr && !pending->empty()) {
    const PendingRecv pr = pending->front();
    pending->pop_front();
    commit_pending(rank, 0, -1, /*park=*/false);
    complete_rendezvous(rank, now, pr.rank, pr.ready, op.bytes, op.tag);
    return;
  }
  auto* posted = sh.pending_irecvs.find(key);
  if (posted != nullptr && !posted->empty()) {
    const int recv_rank = posted->front();
    posted->pop_front();
    commit_pending(rank, 0, -1, /*park=*/false);
    const SimTime end = timed_transfer(rank, recv_rank, now, op.bytes, op.tag);
    stats_.ranks[static_cast<std::size_t>(rank)].send_blocked += end - now;
    advance(rank);
    wake(rank, end);
    resolve_request(recv_rank, end + cost_.recv_overhead(recv_rank));
    return;
  }
  sh.pending_sends[key].push_back(
      PendingSend{rank, now, op.bytes, st.phase, 0});
  commit_pending(rank, 1, 0, /*park=*/true);
  st.blocked = true;
}

void Engine::start_recv(int rank, SimTime now, const Op& op) {
  SOC_CHECK(op.peer >= 0 && op.peer < placement_.ranks && op.peer != rank,
            "invalid recv peer");
  auto& st = states_[static_cast<std::size_t>(rank)];
  auto& rs = stats_.ranks[static_cast<std::size_t>(rank)];
  const MsgKey key = msg_key(op.peer, rank, op.tag);
  Shard& sh = shard_of(rank);

  // Eager message already delivered?
  auto* arrived = sh.arrivals.find(key);
  if (arrived != nullptr && !arrived->empty()) {
    const Arrival a = arrived->front();
    arrived->pop_front();
    const SimTime complete = std::max(now, a.time) + cost_.recv_overhead(rank);
    rs.recv_blocked += complete - now;
    advance(rank);
    wake(rank, complete);
    return;
  }

  // Rendezvous partner already waiting (parked sender, or its RTS)?
  auto* pending = sh.pending_sends.find(key);
  if (pending != nullptr && !pending->empty()) {
    const PendingSend ps = pending->front();
    pending->pop_front();
    commit_pending(rank, -1, 0, /*park=*/false);
    if (use_protocol(op.peer, rank)) {
      const SimTime end =
          rendezvous_match(ps, rank, now, std::max(ps.ready, now), op.tag);
      rs.recv_blocked += end - now;
      advance(rank);
      wake(rank, end);
    } else {
      complete_rendezvous(ps.rank, ps.ready, rank, now, ps.bytes, op.tag);
    }
    return;
  }
  sh.pending_recvs[key].push_back(PendingRecv{rank, now, st.phase});
  commit_pending(rank, 0, 1, /*park=*/true);
  st.blocked = true;
}

void Engine::start_isend(int rank, SimTime now, const Op& op) {
  SOC_CHECK(op.peer >= 0 && op.peer < placement_.ranks && op.peer != rank,
            "invalid isend peer");
  auto& st = states_[static_cast<std::size_t>(rank)];
  auto& rs = stats_.ranks[static_cast<std::size_t>(rank)];
  const MsgKey key = msg_key(rank, op.peer, op.tag);

  // Buffered semantics: the transfer launches now; the sender only pays
  // the posting overhead and its request completes locally.
  if (use_protocol(rank, op.peer)) {
    launch_eager_remote(rank, op.peer, now, op.bytes, op.tag);
    const SimTime overhead = cost_.send_overhead(rank);
    rs.msg_overhead += overhead;
    st.requests_complete = std::max(st.requests_complete, now + overhead);
    advance(rank);
    wake(rank, now + overhead);
    return;
  }

  Shard& sh = shard_of(rank);
  const SimTime arrival = launch_eager(rank, op.peer, now, op.bytes, op.tag);
  const SimTime overhead = cost_.send_overhead(rank);
  rs.msg_overhead += overhead;
  st.requests_complete = std::max(st.requests_complete, now + overhead);

  auto* pending = sh.pending_recvs.find(key);
  auto* posted = sh.pending_irecvs.find(key);
  if (pending != nullptr && !pending->empty()) {
    const PendingRecv pr = pending->front();
    pending->pop_front();
    commit_pending(rank, 0, -1, /*park=*/false);
    auto& recv_rs = stats_.ranks[static_cast<std::size_t>(pr.rank)];
    const SimTime complete =
        std::max(pr.ready, arrival) + cost_.recv_overhead(pr.rank);
    recv_rs.recv_blocked += complete - pr.ready;
    advance(pr.rank);
    wake(pr.rank, complete);
  } else if (posted != nullptr && !posted->empty()) {
    const int recv_rank = posted->front();
    posted->pop_front();
    commit_pending(rank, 0, -1, /*park=*/false);
    resolve_request(recv_rank, arrival + cost_.recv_overhead(recv_rank));
  } else {
    sh.arrivals[key].push_back(Arrival{arrival, op.bytes});
  }

  advance(rank);
  wake(rank, now + overhead);
}

void Engine::start_irecv(int rank, SimTime now, const Op& op) {
  SOC_CHECK(op.peer >= 0 && op.peer < placement_.ranks && op.peer != rank,
            "invalid irecv peer");
  auto& st = states_[static_cast<std::size_t>(rank)];
  const MsgKey key = msg_key(op.peer, rank, op.tag);
  Shard& sh = shard_of(rank);

  // Already-arrived (eager/isend) message?
  auto* arrived = sh.arrivals.find(key);
  if (arrived != nullptr && !arrived->empty()) {
    const Arrival a = arrived->front();
    arrived->pop_front();
    st.requests_complete =
        std::max(st.requests_complete,
                 std::max(now, a.time) + cost_.recv_overhead(rank));
  } else {
    // A blocking sender already parked in rendezvous (or its RTS landed)?
    auto* pending = sh.pending_sends.find(key);
    if (pending != nullptr && !pending->empty()) {
      const PendingSend ps = pending->front();
      pending->pop_front();
      commit_pending(rank, -1, 0, /*park=*/false);
      if (use_protocol(op.peer, rank)) {
        const SimTime end = rendezvous_match(ps, rank, now,
                                             std::max(ps.ready, now), op.tag);
        st.requests_complete = std::max(st.requests_complete,
                                        end + cost_.recv_overhead(rank));
      } else {
        const SimTime end = timed_transfer(ps.rank, rank,
                                           std::max(ps.ready, now), ps.bytes,
                                           op.tag);
        auto& send_rs = stats_.ranks[static_cast<std::size_t>(ps.rank)];
        send_rs.send_blocked += end - ps.ready;
        advance(ps.rank);
        wake(ps.rank, end);
        st.requests_complete = std::max(st.requests_complete,
                                        end + cost_.recv_overhead(rank));
      }
    } else {
      ++st.unresolved_requests;
      sh.pending_irecvs[key].push_back(rank);
      commit_pending(rank, 0, 1, /*park=*/true);
    }
  }

  advance(rank);
  wake(rank, now + cost_.recv_overhead(rank));
}

void Engine::start_wait_all(int rank, SimTime now) {
  auto& st = states_[static_cast<std::size_t>(rank)];
  if (st.unresolved_requests > 0) {
    st.waiting_all = true;
    st.blocked = true;
    st.wait_park_time = now;
    return;  // resolve_request wakes us
  }
  const SimTime done = std::max(now, st.requests_complete);
  stats_.ranks[static_cast<std::size_t>(rank)].recv_blocked += done - now;
  st.requests_complete = 0;
  advance(rank);
  wake(rank, done);
}

void Engine::resolve_request(int rank, SimTime completion) {
  auto& st = states_[static_cast<std::size_t>(rank)];
  SOC_CHECK(st.unresolved_requests > 0, "resolve with no pending request");
  --st.unresolved_requests;
  st.requests_complete = std::max(st.requests_complete, completion);
  if (st.waiting_all && st.unresolved_requests == 0) {
    st.waiting_all = false;
    st.blocked = false;
    // The whole park-to-completion stretch was spent blocked in kWaitAll;
    // book it here because the re-dispatch below sees a zero residual
    // (its `now` IS requests_complete).
    stats_.ranks[static_cast<std::size_t>(rank)].recv_blocked +=
        st.requests_complete - st.wait_park_time;
    // Re-executes kWaitAll (pc still points at it) at the completion time.
    wake(rank, st.requests_complete);
  }
}

SimTime Engine::timed_transfer(int send_rank, int recv_rank, SimTime earliest,
                               Bytes bytes, int tag) {
  // Instant path only: same node, or ideal network (which zeroes both
  // terms).  Cross-node transfers on a real network go through the
  // protocol-message path and never reach here.
  const int src_node = placement_.node_of[static_cast<std::size_t>(send_rank)];
  const int dst_node = placement_.node_of[static_cast<std::size_t>(recv_rank)];
  SimTime latency = 0;
  SimTime duration = 0;
  if (!scenario_.ideal_network) {
    latency = cost_.message_latency(src_node, dst_node);
    duration =
        latency + cost_.message_transfer_time(src_node, dst_node, bytes);
  }
  const SimTime end = earliest + duration;
  account_transfer(send_rank, recv_rank, earliest, earliest, end, bytes,
                   /*eager=*/false, 0, tag, latency);
  return end;
}

void Engine::complete_rendezvous(int send_rank, SimTime send_ready,
                                 int recv_rank, SimTime recv_ready,
                                 Bytes bytes, int tag) {
  const SimTime end =
      timed_transfer(send_rank, recv_rank, std::max(send_ready, recv_ready),
                     bytes, tag);
  auto& send_rs = stats_.ranks[static_cast<std::size_t>(send_rank)];
  auto& recv_rs = stats_.ranks[static_cast<std::size_t>(recv_rank)];
  send_rs.send_blocked += end - send_ready;
  recv_rs.recv_blocked += end - recv_ready;

  advance(send_rank);
  advance(recv_rank);
  wake(send_rank, end);
  wake(recv_rank, end);
}

SimTime Engine::launch_eager(int src_rank, int dst_rank, SimTime now,
                             Bytes bytes, int tag) {
  // Instant path only: same node, or ideal network.
  const int src_node = placement_.node_of[static_cast<std::size_t>(src_rank)];
  const int dst_node = placement_.node_of[static_cast<std::size_t>(dst_rank)];
  if (scenario_.ideal_network) {
    account_transfer(src_rank, dst_rank, now, now, now, bytes,
                     /*eager=*/true, 0, tag, 0);
    return now;
  }
  const SimTime xfer = cost_.message_transfer_time(src_node, dst_node, bytes);
  const SimTime latency = cost_.message_latency(src_node, dst_node);
  const SimTime arrival = now + latency + xfer;
  account_transfer(src_rank, dst_rank, now, now, arrival, bytes,
                   /*eager=*/true, 0, tag, latency);
  return arrival;
}

void Engine::launch_eager_remote(int src_rank, int dst_rank, SimTime now,
                                 Bytes bytes, int tag) {
  const int src_node = placement_.node_of[static_cast<std::size_t>(src_rank)];
  const int dst_node = placement_.node_of[static_cast<std::size_t>(dst_rank)];
  auto& nic_tx = nic_tx_free_[static_cast<std::size_t>(src_node)];
  const SimTime start = std::max(now, nic_tx);
  const SimTime xfer = cost_.message_transfer_time(src_node, dst_node, bytes);
  const SimTime latency = cost_.message_latency(src_node, dst_node);
  const SimTime arrival = start + latency + xfer;
  nic_tx = start + xfer;

  // Sender-side accounting; the receiver side books when kArrival lands.
  auto& send_rs = stats_.ranks[static_cast<std::size_t>(src_rank)];
  ++send_rs.messages_sent;
  send_rs.dram_bytes += bytes;
  bin_value(stats_.nodes[static_cast<std::size_t>(src_node)].dram_bytes, start,
            static_cast<double>(bytes));
  send_rs.net_bytes_sent += bytes;
  bin_busy(stats_.nodes[static_cast<std::size_t>(src_node)].nic_busy, start,
           arrival);
  commit_span(Lane::kNicTx, src_rank, src_node,
              static_cast<std::uint8_t>(OpKind::kIsend), start, arrival,
              start - now, 0, bytes);

  ProtoMsg p;
  p.kind = ProtoKind::kArrival;
  p.src_rank = src_rank;
  p.dst_rank = dst_rank;
  p.tag = tag;
  p.phase = states_[static_cast<std::size_t>(src_rank)].phase;
  p.bytes = bytes;
  p.requested = now;
  p.start = start;
  p.end = arrival;
  p.latency = latency;
  p.time = arrival;
  p.key = next_proto_key(src_rank, dst_rank);
  send_proto(src_rank, dst_rank, p);
}

void Engine::process_arrival(const ProtoMsg& p, SimTime now) {
  const int dst = p.dst_rank;
  const int dst_node = placement_.node_of[static_cast<std::size_t>(dst)];
  const MsgKey key = msg_key(p.src_rank, dst, p.tag);
  Shard& sh = shard_of(dst);

  // Switch output-port queueing at the destination shifts delivery (not
  // the nominal wire end, which cost tables derive transfer times from).
  SimTime delivery = p.end;
  SimTime fabric_wait = 0;
  if (config_.bisection_bandwidth > 0.0) {
    auto& port = port_free_[static_cast<std::size_t>(dst_node)];
    delivery = std::max(p.end, port);
    fabric_wait = delivery - p.end;
    port = delivery + transfer_time(p.bytes, config_.bisection_bandwidth /
                                                 placement_.nodes);
  }
  auto& nic_rx = nic_rx_free_[static_cast<std::size_t>(dst_node)];
  nic_rx = std::max(nic_rx, delivery);

  // Receiver-side accounting.
  auto& recv_rs = stats_.ranks[static_cast<std::size_t>(dst)];
  ++recv_rs.messages_received;
  recv_rs.dram_bytes += p.bytes;
  bin_value(stats_.nodes[static_cast<std::size_t>(dst_node)].dram_bytes,
            p.start, static_cast<double>(p.bytes));
  recv_rs.net_bytes_received += p.bytes;
  bin_busy(stats_.nodes[static_cast<std::size_t>(dst_node)].nic_busy, p.start,
           p.end);
  if (observer_ != nullptr) {
    MessageRecord m;
    m.eager = true;
    m.inter_node = true;
    m.src_rank = p.src_rank;
    m.dst_rank = dst;
    m.phase = p.phase;
    m.tag = p.tag;
    m.bytes = p.bytes;
    m.start = p.start;
    m.end = p.end;
    m.latency = p.latency;
    m.delivery = delivery;
    m.sender_complete = 0;
    commit_message(m);
    commit_span(Lane::kNicRx, dst, dst_node,
                static_cast<std::uint8_t>(OpKind::kIsend), p.start, delivery,
                p.start - p.requested, fabric_wait, p.bytes);
  }

  auto* pending = sh.pending_recvs.find(key);
  auto* posted = sh.pending_irecvs.find(key);
  if (pending != nullptr && !pending->empty()) {
    const PendingRecv pr = pending->front();
    pending->pop_front();
    commit_pending(dst, 0, -1, /*park=*/false);
    const SimTime complete =
        std::max(pr.ready, delivery) + cost_.recv_overhead(pr.rank);
    stats_.ranks[static_cast<std::size_t>(pr.rank)].recv_blocked +=
        complete - pr.ready;
    advance(pr.rank);
    wake(pr.rank, complete);
  } else if (posted != nullptr && !posted->empty()) {
    const int recv_rank = posted->front();
    posted->pop_front();
    commit_pending(dst, 0, -1, /*park=*/false);
    resolve_request(recv_rank, delivery + cost_.recv_overhead(recv_rank));
  } else {
    sh.arrivals[key].push_back(Arrival{delivery, p.bytes});
  }
  (void)now;
}

void Engine::process_rts(const ProtoMsg& p, SimTime now) {
  const int dst = p.dst_rank;
  const MsgKey key = msg_key(p.src_rank, dst, p.tag);
  Shard& sh = shard_of(dst);
  const PendingSend ps{p.src_rank, p.requested, p.bytes, p.phase, p.tx_est};

  auto* pending = sh.pending_recvs.find(key);
  if (pending != nullptr && !pending->empty()) {
    const PendingRecv pr = pending->front();
    pending->pop_front();
    commit_pending(dst, 0, -1, /*park=*/false);
    const SimTime end =
        rendezvous_match(ps, pr.rank, now, std::max(ps.ready, pr.ready), p.tag);
    stats_.ranks[static_cast<std::size_t>(pr.rank)].recv_blocked +=
        end - pr.ready;
    advance(pr.rank);
    wake(pr.rank, end);
    return;
  }
  auto* posted = sh.pending_irecvs.find(key);
  if (posted != nullptr && !posted->empty()) {
    const int recv_rank = posted->front();
    posted->pop_front();
    commit_pending(dst, 0, -1, /*park=*/false);
    const SimTime end = rendezvous_match(ps, recv_rank, now, ps.ready, p.tag);
    resolve_request(recv_rank, end + cost_.recv_overhead(recv_rank));
    return;
  }
  // No receive posted yet: park the RTS at the receiver; the matching
  // recv/irecv dispatch picks it out of pending_sends.
  sh.pending_sends[key].push_back(ps);
  commit_pending(dst, 1, 0, /*park=*/true);
}

SimTime Engine::rendezvous_match(const PendingSend& ps, int recv_rank,
                                 SimTime match_time, SimTime start_base,
                                 int tag) {
  const int src_node = placement_.node_of[static_cast<std::size_t>(ps.rank)];
  const int dst_node = placement_.node_of[static_cast<std::size_t>(recv_rank)];

  // The wire can start once both endpoints agreed (start_base), the
  // sender's NIC looks free (the tx_est estimate the RTS carried), and
  // the receiver's NIC is free.  Receiver-side state is authoritative;
  // sender-side TX contention is best-effort by design (DESIGN.md §16).
  SimTime start = std::max({start_base, ps.tx_est,
                            nic_rx_free_[static_cast<std::size_t>(dst_node)]});
  SimTime fabric_wait = 0;
  if (config_.bisection_bandwidth > 0.0) {
    const SimTime nic_ready = start;
    auto& port = port_free_[static_cast<std::size_t>(dst_node)];
    start = std::max(start, port);
    fabric_wait = start - nic_ready;
    port = start + transfer_time(ps.bytes, config_.bisection_bandwidth /
                                               placement_.nodes);
  }
  const SimTime latency = cost_.message_latency(src_node, dst_node);
  const SimTime xfer =
      cost_.message_transfer_time(src_node, dst_node, ps.bytes);
  const SimTime end = start + latency + xfer;
  nic_rx_free_[static_cast<std::size_t>(dst_node)] = end;
  // The CTS travels back one forward latency from the match; when the
  // transfer itself is longer it simply rides its tail.  The floor keeps
  // the conservative-window invariant (cts >= match_time + lookahead).
  const SimTime cts = std::max(end, match_time + latency);

  // Receiver-side accounting; the sender side books when kCts lands.
  auto& recv_rs = stats_.ranks[static_cast<std::size_t>(recv_rank)];
  ++recv_rs.messages_received;
  recv_rs.dram_bytes += ps.bytes;
  bin_value(stats_.nodes[static_cast<std::size_t>(dst_node)].dram_bytes, start,
            static_cast<double>(ps.bytes));
  recv_rs.net_bytes_received += ps.bytes;
  bin_busy(stats_.nodes[static_cast<std::size_t>(dst_node)].nic_busy, start,
           end);
  if (observer_ != nullptr) {
    MessageRecord m;
    m.eager = false;
    m.inter_node = true;
    m.src_rank = ps.rank;
    m.dst_rank = recv_rank;
    m.phase = ps.phase;
    m.tag = tag;
    m.bytes = ps.bytes;
    m.start = start;
    m.end = end;
    m.latency = latency;
    m.delivery = end;
    m.sender_complete = cts;
    commit_message(m);
    commit_span(Lane::kNicRx, recv_rank, dst_node,
                static_cast<std::uint8_t>(OpKind::kSend), start, end,
                start - start_base, fabric_wait, ps.bytes);
  }

  ProtoMsg cp;
  cp.kind = ProtoKind::kCts;
  cp.src_rank = ps.rank;
  cp.dst_rank = recv_rank;
  cp.tag = tag;
  cp.phase = ps.phase;
  cp.bytes = ps.bytes;
  cp.requested = ps.ready;
  cp.start = start;
  cp.end = end;
  cp.latency = latency;
  cp.fabric_wait = fabric_wait;
  cp.time = cts;
  cp.key = next_proto_key(recv_rank, ps.rank);
  send_proto(recv_rank, ps.rank, cp);
  return end;
}

void Engine::process_cts(const ProtoMsg& p, SimTime now) {
  const int src = p.src_rank;
  const int src_node = placement_.node_of[static_cast<std::size_t>(src)];

  // Sender-side accounting for the transfer the receiver committed.
  auto& send_rs = stats_.ranks[static_cast<std::size_t>(src)];
  send_rs.send_blocked += now - p.requested;
  ++send_rs.messages_sent;
  send_rs.dram_bytes += p.bytes;
  bin_value(stats_.nodes[static_cast<std::size_t>(src_node)].dram_bytes,
            p.start, static_cast<double>(p.bytes));
  send_rs.net_bytes_sent += p.bytes;
  bin_busy(stats_.nodes[static_cast<std::size_t>(src_node)].nic_busy, p.start,
           p.end);
  commit_span(Lane::kNicTx, src, src_node,
              static_cast<std::uint8_t>(OpKind::kSend), p.start, p.end,
              p.start - p.requested, p.fabric_wait, p.bytes);

  // The parked kSend is complete; run the rank from here.
  advance(src);
  wake(src, now);
}

void Engine::account_transfer(int src_rank, int dst_rank, SimTime requested,
                              SimTime start, SimTime end, Bytes bytes,
                              bool eager, SimTime fabric_wait, int tag,
                              SimTime latency) {
  const int src_node = placement_.node_of[static_cast<std::size_t>(src_rank)];
  const int dst_node = placement_.node_of[static_cast<std::size_t>(dst_rank)];
  auto& send_rs = stats_.ranks[static_cast<std::size_t>(src_rank)];
  auto& recv_rs = stats_.ranks[static_cast<std::size_t>(dst_rank)];
  ++send_rs.messages_sent;
  ++recv_rs.messages_received;

  if (observer_ != nullptr) {
    MessageRecord message;
    message.eager = eager;
    message.inter_node = src_node != dst_node;
    message.src_rank = src_rank;
    message.dst_rank = dst_rank;
    message.phase = states_[static_cast<std::size_t>(src_rank)].phase;
    message.tag = tag;
    message.bytes = bytes;
    message.start = start;
    message.end = end;
    message.latency = latency;
    message.delivery = end;
    message.sender_complete = eager ? 0 : end;
    commit_message(message);
  }

  // Message payloads traverse main memory on both endpoints (the TX1 has
  // no GPUDirect, so all network data lands in DRAM first — §III-B.2).
  send_rs.dram_bytes += bytes;
  recv_rs.dram_bytes += bytes;
  bin_value(stats_.nodes[static_cast<std::size_t>(src_node)].dram_bytes, start,
            static_cast<double>(bytes));
  bin_value(stats_.nodes[static_cast<std::size_t>(dst_node)].dram_bytes, start,
            static_cast<double>(bytes));

  if (src_node == dst_node) {
    send_rs.intra_bytes_sent += bytes;
    return;
  }
  send_rs.net_bytes_sent += bytes;
  recv_rs.net_bytes_received += bytes;
  bin_busy(stats_.nodes[static_cast<std::size_t>(src_node)].nic_busy, start, end);
  bin_busy(stats_.nodes[static_cast<std::size_t>(dst_node)].nic_busy, start, end);
  const std::uint8_t kind = static_cast<std::uint8_t>(
      eager ? OpKind::kIsend : OpKind::kSend);
  commit_span(Lane::kNicTx, src_rank, src_node, kind, start, end,
              start - requested, fabric_wait, bytes);
  commit_span(Lane::kNicRx, dst_rank, dst_node, kind, start, end,
              start - requested, fabric_wait, bytes);
}

double RunStats::flops_per_second() const {
  const double s = seconds();
  return s > 0.0 ? total_flops / s : 0.0;
}

double RunStats::dram_bytes_per_second() const {
  const double s = seconds();
  return s > 0.0 ? static_cast<double>(total_dram_bytes) / s : 0.0;
}

double RunStats::net_bytes_per_second() const {
  const double s = seconds();
  return s > 0.0 ? static_cast<double>(total_net_bytes) / s : 0.0;
}

}  // namespace soc::sim
