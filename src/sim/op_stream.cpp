#include "sim/op_stream.h"

#include "common/error.h"

namespace soc::sim {

ProgramSource::ProgramSource(const std::vector<Program>& programs)
    : programs_(&programs), cursor_(programs.size(), 0) {}

int ProgramSource::ranks() const {
  return static_cast<int>(programs_->size());
}

bool ProgramSource::next(int rank, SimTime /*now*/, Op* op) {
  const std::size_t r = static_cast<std::size_t>(rank);
  SOC_CHECK(r < cursor_.size(), "ProgramSource: rank out of range");
  const Program& prog = (*programs_)[r];
  if (cursor_[r] >= prog.size()) return false;
  *op = prog[cursor_[r]++];
  return true;
}

RecordingSource::RecordingSource(OpSource& inner)
    : inner_(&inner),
      programs_(static_cast<std::size_t>(inner.ranks())) {}

int RecordingSource::ranks() const { return inner_->ranks(); }

bool RecordingSource::next(int rank, SimTime now, Op* op) {
  if (!inner_->next(rank, now, op)) return false;
  programs_[static_cast<std::size_t>(rank)].push_back(*op);
  return true;
}

}  // namespace soc::sim
