// Run statistics collected by the engine.
//
// Everything the analysis layers need comes out of here: per-rank time
// breakdowns and phase compute times (efficiency decomposition), traffic
// volumes (Fig 3 and the roofline), per-profile instruction tallies
// (PMU-counter synthesis), and per-node component-busy timelines (the
// power model's input).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.h"

namespace soc::sim {

/// Per-rank accounting.
struct RankStats {
  SimTime finish_time = 0;       ///< When the rank's program completed.
  SimTime cpu_busy = 0;          ///< Host compute time.
  /// Kernel execution time only: the sum of (end - start) of this rank's
  /// kernels on the node's GPU.  Queueing is NOT included — a kernel that
  /// waits for the shared GPU accrues that wait in `gpu_queue_wait`, so
  /// for any rank the GPU-related wall time is gpu_busy + gpu_queue_wait
  /// and the two never overlap.
  SimTime gpu_busy = 0;
  /// Time between a kernel's dispatch and its start on the node's GPU
  /// (co-located ranks serialize on the one device).  Disjoint from
  /// `gpu_busy`; zero when the rank has the GPU to itself.
  SimTime gpu_queue_wait = 0;
  SimTime copy_busy = 0;         ///< Host<->device copy time.
  SimTime send_blocked = 0;      ///< Time blocked in sends.
  SimTime recv_blocked = 0;      ///< Time blocked in receives.
  SimTime msg_overhead = 0;      ///< Per-message CPU overheads.

  Bytes net_bytes_sent = 0;      ///< Inter-node bytes sent.
  Bytes net_bytes_received = 0;  ///< Inter-node bytes received.
  Bytes intra_bytes_sent = 0;    ///< Intra-node message bytes.
  Bytes dram_bytes = 0;          ///< DRAM traffic (CPU + GPU + copies).
  Bytes gpu_dram_bytes = 0;      ///< DRAM traffic caused by GPU kernels/copies.
  double flops = 0.0;            ///< FLOPs executed (CPU + GPU).
  double gpu_flops = 0.0;        ///< FLOPs executed on the GPU.
  double instructions = 0.0;     ///< Host instructions retired.
  int messages_sent = 0;
  int messages_received = 0;

  /// Useful (compute) time per phase — load balance is derived from this.
  std::map<int, SimTime> phase_compute;
  /// Host instructions per microarchitectural profile id.
  std::map<int, double> instructions_by_profile;
};

/// Busy-time timelines for one node, binned at the engine's bin width.
/// Values are busy seconds within the bin (cpu may exceed 1 bin-width ×
/// 1.0 when several ranks share the node — it counts core-seconds).
struct NodeTimeline {
  std::vector<double> cpu_busy;
  std::vector<double> gpu_busy;
  std::vector<double> nic_busy;
  std::vector<double> dram_bytes;  ///< Bytes moved per bin.
};

/// Aggregate result of one engine run.
struct RunStats {
  SimTime makespan = 0;
  double timeline_bin_seconds = 0.1;
  std::vector<RankStats> ranks;
  std::vector<NodeTimeline> nodes;

  // -- Aggregates (sums over ranks), computed by the engine at finish. --
  Bytes total_net_bytes = 0;
  Bytes total_dram_bytes = 0;
  Bytes total_gpu_dram_bytes = 0;
  double total_flops = 0.0;
  double total_gpu_flops = 0.0;

  // -- Determinism audit (see DESIGN.md, "Correctness tooling"). --
  /// Order-sensitive FNV-1a digest over the committed event stream: every
  /// (time, rank, op kind, bytes) dispatch the engine performs, in order.
  /// Replays of the same (programs, cost model, scenario) triple must
  /// produce bit-identical values; tests/determinism_test.cpp and
  /// `socbench run --audit-determinism` enforce this.
  std::uint64_t event_checksum = 0;
  /// Number of records folded into `event_checksum`.
  std::uint64_t events_committed = 0;

  /// Wall-clock seconds of the simulated run.
  double seconds() const { return to_seconds(makespan); }
  /// Achieved FLOP/s across the whole run.
  double flops_per_second() const;
  /// Average DRAM traffic rate in bytes/s.
  double dram_bytes_per_second() const;
  /// Average inter-node network traffic rate in bytes/s.
  double net_bytes_per_second() const;
};

}  // namespace soc::sim
