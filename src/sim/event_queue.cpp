#include "sim/event_queue.h"

#include "common/error.h"

namespace soc::sim {

void EventQueue::reserve(std::size_t n) {
  heap_.reserve(n);
  now_.reserve(n);
}

void EventQueue::push(SimTime time, int payload) {
  SOC_CHECK(time >= 0, "event scheduled at negative time");
  const Event e{time, next_seq_++, payload};
  // The ring may only ever hold a single time value: events at the time
  // of the last pop.  (The front-time check matters when an event was
  // pushed below last_pop_time_ and popped, rewinding last_pop_time_
  // while the ring still holds events at the older, later time.)
  if (time == last_pop_time_ &&
      (now_.empty() || now_.front().time == time)) {
    now_.push_back(e);
    return;
  }
  heap_.push_back(e);
  sift_up(heap_.size() - 1);
}

Event EventQueue::pop() {
  SOC_CHECK(!empty(), "pop from empty event queue");
  // Merge point: the ring front and the heap top are each the earliest
  // (time, seq) of their half, so one comparison restores the total order.
  const bool from_now =
      !now_.empty() && (heap_.empty() || earlier(now_.front(), heap_.front()));
  Event e;
  if (from_now) {
    e = now_.front();
    now_.pop_front();
  } else {
    e = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
  last_pop_time_ = e.time;
  return e;
}

SimTime EventQueue::next_time() const {
  SOC_CHECK(!empty(), "next_time on empty event queue");
  if (now_.empty()) return heap_.front().time;
  if (heap_.empty()) return now_.front().time;
  return earlier(now_.front(), heap_.front()) ? now_.front().time
                                              : heap_.front().time;
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = left + 1;
    std::size_t smallest = i;
    if (left < n && earlier(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && earlier(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

void KeyedEventQueue::push(SimTime time, std::uint64_t key,
                           std::int32_t payload) {
  SOC_CHECK(time >= 0, "event scheduled at negative time");
  heap_.push_back(KeyedEvent{time, key, payload});
  sift_up(heap_.size() - 1);
}

KeyedEvent KeyedEventQueue::pop() {
  SOC_CHECK(!empty(), "pop from empty event queue");
  const KeyedEvent e = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return e;
}

void KeyedEventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void KeyedEventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = left + 1;
    std::size_t smallest = i;
    if (left < n && earlier(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && earlier(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

}  // namespace soc::sim
