#include "sim/event_queue.h"

#include "common/error.h"

namespace soc::sim {

void EventQueue::push(SimTime time, int payload) {
  SOC_CHECK(time >= 0, "event scheduled at negative time");
  heap_.push(Event{time, next_seq_++, payload});
}

Event EventQueue::pop() {
  SOC_CHECK(!heap_.empty(), "pop from empty event queue");
  Event e = heap_.top();
  heap_.pop();
  return e;
}

SimTime EventQueue::next_time() const {
  SOC_CHECK(!heap_.empty(), "next_time on empty event queue");
  return heap_.top().time;
}

}  // namespace soc::sim
