#include "prof/profile.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <map>
#include <tuple>

#include "common/error.h"
#include "common/units.h"
#include "obs/json.h"

namespace soc::prof {

namespace {

// Local copy of cluster::checksum_hex — prof sits below cluster in the
// layering, so it cannot include cluster headers.
std::string checksum_hex(std::uint64_t v) {
  char buf[17] = "0000000000000000";
  char tmp[17];
  const auto r = std::to_chars(tmp, tmp + sizeof(tmp), v, 16);
  const auto len = static_cast<std::size_t>(r.ptr - tmp);
  for (std::size_t i = 0; i < len; ++i) buf[16 - len + i] = tmp[i];
  return std::string("0x") + buf;
}

// floor(num * 1e6 / den) in 128-bit integer arithmetic: the artifact's
// fixed-point ratios must not depend on floating-point contraction, which
// differs between the -O2 and sanitizer builds.
std::int64_t ratio_ppm(SimTime num, SimTime den) {
  SOC_CHECK(num >= 0 && den > 0, "ratio_ppm: bad operands");
  const __int128 v = static_cast<__int128>(num) * 1000000 / den;
  return static_cast<std::int64_t>(v);
}

SimTime rank_compute_ns(const sim::RankStats& rs) {
  SimTime total = 0;
  for (const auto& [phase, t] : rs.phase_compute) total += t;
  return total;
}

// Double mirror of core::decompose, fed by the single-pass projections
// instead of scenario replays (stdout only; never serialized).
Factors make_factors(const Profile& p) {
  // Same per-rank arithmetic as core::mean/max_compute_seconds.
  const double mean_c = to_seconds(p.compute_total) / p.ranks;
  const double max_c = to_seconds(p.compute_max);
  const double measured = to_seconds(p.makespan);
  const double ideal_net = to_seconds(p.ideal_network);
  SOC_CHECK(measured > 0.0, "zero-length run");
  SOC_CHECK(max_c > 0.0, "run performed no compute");
  Factors f;
  f.load_balance = mean_c / max_c;
  f.serialization = ideal_net > 0.0 ? max_c / ideal_net : 1.0;
  f.serialization = std::min(f.serialization, 1.0);
  f.transfer = std::min(ideal_net / measured, 1.0);
  f.efficiency = f.load_balance * f.serialization * f.transfer;
  return f;
}

void write_categories(obs::JsonWriter& w,
                      const std::array<SimTime, kCategoryCount>& by_category) {
  w.begin_object();
  for (std::size_t c = 0; c < kCategoryCount; ++c) {
    w.field(category_name(static_cast<Category>(c)),
            static_cast<std::int64_t>(by_category[c]));
  }
  w.end_object();
}

}  // namespace

Profile analyze(const RunTrace& trace) {
  Profile p;
  p.attribution = attribute(trace);
  p.usage = trace.usage;
  p.ranks = trace.placement.ranks;
  p.nodes = trace.placement.nodes;
  p.makespan = trace.stats.makespan;
  p.event_checksum = trace.stats.event_checksum;
  p.events_committed = trace.stats.events_committed;

  // Round trip: re-evaluating the measured scenario must land on the
  // recorded makespan to the nanosecond, or every projection is suspect.
  p.measured_eval = evaluate(trace, WhatIf{});
  SOC_CHECK(p.measured_eval == p.makespan,
            "profile: what-if evaluator failed to reproduce the measured run");
  p.evaluator_exact = true;

  WhatIf net;
  net.ideal_network = true;
  p.ideal_network = evaluate(trace, net);
  WhatIf balance;
  balance.compute_scale = balance_scales(trace.stats);
  p.ideal_balance = evaluate(trace, balance);
  WhatIf lanes;
  lanes.uncontended = true;
  p.uncontended = evaluate(trace, lanes);

  p.compute_total = 0;
  p.compute_max = 0;
  for (const sim::RankStats& rs : trace.stats.ranks) {
    const SimTime c = rank_compute_ns(rs);
    p.compute_total += c;
    p.compute_max = std::max(p.compute_max, c);
  }
  p.factors = make_factors(p);
  return p;
}

std::string profile_json(const Profile& p) {
  const CriticalPath& path = p.attribution.path;
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", "soccluster-critical-path/v1");
  w.field("ranks", p.ranks);
  w.field("nodes", p.nodes);
  w.field("makespan_ns", static_cast<std::int64_t>(p.makespan));
  w.field("event_checksum", checksum_hex(p.event_checksum));
  w.field("events_committed", p.events_committed);
  w.newline();

  w.key("critical_path");
  w.begin_object();
  w.field("total_ns", static_cast<std::int64_t>(path.total));
  w.key("by_category");
  write_categories(w, path.by_category);
  w.newline();
  // Coarse lane rollup of the path (category_lane buckets).
  w.key("by_lane");
  w.begin_object();
  {
    // Ordered by first appearance in the Category enum.
    std::vector<std::pair<const char*, SimTime>> lanes;
    for (std::size_t c = 0; c < kCategoryCount; ++c) {
      const char* lane = category_lane(static_cast<Category>(c));
      auto it = std::find_if(lanes.begin(), lanes.end(),
                             [&](const auto& e) {
                               return std::string_view(e.first) == lane;
                             });
      if (it == lanes.end()) {
        lanes.emplace_back(lane, path.by_category[c]);
      } else {
        it->second += path.by_category[c];
      }
    }
    for (const auto& [lane, ns] : lanes) {
      w.field(lane, static_cast<std::int64_t>(ns));
    }
  }
  w.end_object();
  w.newline();
  w.key("by_phase");
  w.begin_object();
  for (const auto& [phase, ns] : path.by_phase) {
    w.field(std::to_string(phase), static_cast<std::int64_t>(ns));
  }
  w.end_object();
  w.newline();
  w.key("by_rank");
  w.begin_array();
  for (const SimTime ns : path.by_rank) {
    w.value(static_cast<std::int64_t>(ns));
  }
  w.end_array();
  w.newline();
  w.field("steps", static_cast<std::int64_t>(path.steps.size()));
  // The widest steps (duration desc, then begin/rank asc for a total
  // deterministic order), capped so artifacts stay diffable.
  w.key("top_steps");
  w.begin_array();
  {
    std::vector<const PathStep*> top;
    top.reserve(path.steps.size());
    for (const PathStep& s : path.steps) top.push_back(&s);
    const auto wider = [](const PathStep* a, const PathStep* b) {
      const SimTime da = a->end - a->begin;
      const SimTime db = b->end - b->begin;
      if (da != db) return da > db;
      if (a->begin != b->begin) return a->begin < b->begin;
      return a->rank < b->rank;
    };
    const std::size_t keep = std::min<std::size_t>(top.size(), 32);
    std::partial_sort(top.begin(), top.begin() + static_cast<std::ptrdiff_t>(keep),
                      top.end(), wider);
    top.resize(keep);
    for (const PathStep* s : top) {
      w.newline();
      w.begin_object();
      w.field("category", category_name(s->category));
      w.field("rank", s->rank);
      w.field("phase", s->phase);
      w.field("begin_ns", static_cast<std::int64_t>(s->begin));
      w.field("end_ns", static_cast<std::int64_t>(s->end));
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  w.newline();

  w.key("rank_profiles");
  w.begin_array();
  for (const RankProfile& rp : p.attribution.rank_profiles) {
    w.newline();
    write_categories(w, rp.by_category);
  }
  w.end_array();
  w.newline();

  w.key("utilization");
  w.begin_object();
  for (std::size_t l = 0; l < sim::kLaneCount; ++l) {
    const auto lane = static_cast<sim::Lane>(l);
    w.key(obs::lane_metric_name(lane));
    w.begin_object();
    w.field("busy_ns", static_cast<std::int64_t>(p.usage.lane_busy(lane)));
    w.field("blocked_ns",
            static_cast<std::int64_t>(p.usage.lane_blocked(lane)));
    w.field("idle_ns", static_cast<std::int64_t>(
                           p.usage.idle(lane, p.ranks, p.nodes, p.makespan)));
    w.end_object();
  }
  w.end_object();
  w.newline();

  // Single-pass POP factors in ppm fixed point (floor division; the test
  // suite cross-checks these against the replay-based core::decompose).
  const std::int64_t lb_ppm =
      ratio_ppm(p.compute_total, static_cast<SimTime>(p.ranks) * p.compute_max);
  const std::int64_t ser_ppm =
      p.ideal_network > 0
          ? std::min<std::int64_t>(ratio_ppm(p.compute_max, p.ideal_network),
                                   1000000)
          : 1000000;
  const std::int64_t trf_ppm =
      std::min<std::int64_t>(ratio_ppm(p.ideal_network, p.makespan), 1000000);
  const std::int64_t eff_ppm = static_cast<std::int64_t>(
      static_cast<__int128>(lb_ppm) * ser_ppm / 1000000 * trf_ppm / 1000000);
  w.key("efficiency");
  w.begin_object();
  w.field("compute_total_ns", static_cast<std::int64_t>(p.compute_total));
  w.field("compute_max_ns", static_cast<std::int64_t>(p.compute_max));
  w.field("load_balance_ppm", lb_ppm);
  w.field("serialization_ppm", ser_ppm);
  w.field("transfer_ppm", trf_ppm);
  w.field("efficiency_ppm", eff_ppm);
  w.end_object();
  w.newline();

  w.key("what_if");
  w.begin_object();
  w.field("evaluator_exact", p.evaluator_exact);
  w.field("measured_ns", static_cast<std::int64_t>(p.measured_eval));
  w.field("ideal_network_ns", static_cast<std::int64_t>(p.ideal_network));
  w.field("ideal_network_speedup_ppm",
          p.ideal_network > 0 ? ratio_ppm(p.makespan, p.ideal_network)
                              : std::int64_t{0});
  w.field("ideal_balance_ns", static_cast<std::int64_t>(p.ideal_balance));
  w.field("ideal_balance_speedup_ppm",
          p.ideal_balance > 0 ? ratio_ppm(p.makespan, p.ideal_balance)
                              : std::int64_t{0});
  w.field("uncontended_ns", static_cast<std::int64_t>(p.uncontended));
  w.field("uncontended_speedup_ppm",
          p.uncontended > 0 ? ratio_ppm(p.makespan, p.uncontended)
                            : std::int64_t{0});
  w.end_object();
  w.end_object();
  w.newline();
  return w.str();
}

std::string folded_stacks(const Profile& p) {
  // Aggregate the walked path by (rank, phase, category); the map gives
  // the numeric order the flamegraph tooling expects to be stable.
  std::map<std::tuple<int, int, int>, SimTime> folded;
  for (const PathStep& s : p.attribution.path.steps) {
    folded[{s.rank, s.phase, static_cast<int>(s.category)}] += s.end - s.begin;
  }
  std::string out;
  for (const auto& [key, ns] : folded) {
    const auto& [rank, phase, category] = key;
    out += "rank ";
    out += std::to_string(rank);
    out += ";phase ";
    out += std::to_string(phase);
    out += ';';
    out += category_name(static_cast<Category>(category));
    out += ' ';
    out += std::to_string(ns);
    out += '\n';
  }
  return out;
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  SOC_CHECK(out.good(), "cannot open output file: " + path);
  out << text;
  out.flush();
  SOC_CHECK(out.good(), "failed writing output file: " + path);
}

}  // namespace soc::prof
