#include "prof/whatif.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.h"
#include "common/flat_map.h"
#include "common/ring_queue.h"
#include "sim/event_queue.h"

namespace soc::prof {

namespace {

std::uint64_t msg_key(int src, int dst, int tag) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 42) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 21) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag) & 0x1FFFFF);
}

// (src_node, dst_node, bytes) -> one message-cost table slot.
std::uint64_t cost_key(int src_node, int dst_node, Bytes bytes) {
  SOC_CHECK(src_node >= 0 && src_node < 1024 && dst_node >= 0 &&
                dst_node < 1024 && bytes >= 0 && bytes < (Bytes{1} << 44),
            "what-if: cost key out of range");
  return (static_cast<std::uint64_t>(src_node) << 54) |
         (static_cast<std::uint64_t>(dst_node) << 44) |
         static_cast<std::uint64_t>(bytes);
}

// Wake/protocol event keys — the same intrinsic (time, key) total order
// the engine uses, so ties pop in the same order here as there.
std::uint64_t wake_key(int rank) {
  return (std::uint64_t{1} << 63) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank)) << 47);
}

// Mirror of sim::Engine with the cost model swapped for lookups into the
// recorded trace.  Scheduling rules, the protocol-message machinery
// (eager arrivals, rendezvous RTS/CTS), tie-breaking (the engine's
// intrinsic event keys), and every queue-push site match the engine one
// for one, so the unmodified scenario reproduces the recorded schedule
// exactly.
class Evaluator {
 public:
  Evaluator(const RunTrace& trace, const WhatIf& scenario)
      : trace_(trace), scenario_(scenario) {
    const std::size_t n = static_cast<std::size_t>(trace_.placement.ranks);
    SOC_CHECK(scenario_.compute_scale.empty() ||
                  scenario_.compute_scale.size() == n,
              "what-if: compute_scale size mismatch");
    SOC_CHECK(scenario_.dvfs_compute > 0.0 && scenario_.dvfs_dram > 0.0,
              "what-if: DVFS frequency scales must be positive");
    // Message costs: latency is recorded per message; the wire share is
    // the rest of the *nominal* transfer window (MessageRecord::end
    // excludes port queueing by contract).  Identical (nodes, bytes)
    // keys always carry identical costs (the cost model is
    // deterministic), and any pair that ever communicates has at least
    // one recorded message to take the pair latency from.
    for (const sim::MessageRecord& m : trace_.messages) {
      const int src = node_of(m.src_rank);
      const int dst = node_of(m.dst_rank);
      const SimTime xfer = (m.end - m.start) - m.latency;
      costs_[cost_key(src, dst, m.bytes)] = {m.latency, xfer};
      latencies_[(static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                  << 32) |
                 static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst))] =
          m.latency;
    }
  }

  SimTime run() {
    const std::size_t n = static_cast<std::size_t>(trace_.placement.ranks);
    const std::size_t nodes = static_cast<std::size_t>(trace_.placement.nodes);
    states_.assign(n, State{});
    finish_.assign(n, 0);
    proto_seq_.assign(n, 0);
    gpu_free_.assign(nodes, 0);
    copy_free_.assign(nodes, 0);
    nic_tx_free_.assign(nodes, 0);
    nic_rx_free_.assign(nodes, 0);
    port_free_.assign(nodes, 0);
    for (std::size_t r = 0; r < n; ++r) {
      queue_.push(0, wake_key(static_cast<int>(r)), static_cast<int>(r));
    }
    while (!queue_.empty()) {
      const sim::KeyedEvent e = queue_.pop();
      if (e.payload >= 0) {
        execute(e.payload, e.time);
      } else {
        const Proto p = protos_[static_cast<std::size_t>(-(e.payload + 1))];
        switch (p.kind) {
          case ProtoKind::kArrival: process_arrival(p); break;
          case ProtoKind::kRts: process_rts(p, e.time); break;
          case ProtoKind::kCts: advance(p.src_rank, e.time); break;
        }
      }
    }
    SimTime makespan = 0;
    for (std::size_t r = 0; r < n; ++r) {
      SOC_CHECK(states_[r].done, "what-if: evaluation deadlocked");
      makespan = std::max(makespan, finish_[r]);
    }
    return makespan;
  }

 private:
  struct State {
    std::size_t pc = 0;  ///< Index into trace.rank_ops[rank].
    int unresolved = 0;
    SimTime requests_complete = 0;
    bool waiting_all = false;
    bool done = false;
  };
  struct PendingSend {
    int rank = 0;
    SimTime ready = 0;
    Bytes bytes = 0;
    int tag = 0;
    SimTime tx_est = 0;
  };
  struct PendingRecv {
    int rank = 0;
    SimTime ready = 0;
  };
  struct Arrival {
    SimTime time = 0;
  };
  enum class ProtoKind : std::uint8_t { kArrival, kRts, kCts };
  struct Proto {
    ProtoKind kind = ProtoKind::kArrival;
    int src_rank = 0;
    int dst_rank = 0;
    int tag = 0;
    Bytes bytes = 0;
    SimTime ready = 0;   ///< kRts: the sender's dispatch time.
    SimTime end = 0;     ///< kArrival: nominal wire end.
    SimTime tx_est = 0;  ///< kRts: sender NIC estimate shipped with it.
  };

  int node_of(int rank) const {
    return trace_.placement.node_of[static_cast<std::size_t>(rank)];
  }
  const OpExec& op_at(int rank, std::size_t pc) const {
    return trace_.ops[static_cast<std::size_t>(
        trace_.rank_ops[static_cast<std::size_t>(rank)][pc])];
  }
  SimTime send_overhead(int rank) const {
    const SimTime t = trace_.send_overhead[static_cast<std::size_t>(rank)];
    SOC_CHECK(t >= 0, "what-if: send overhead unknown for rank");
    return t;
  }
  SimTime recv_overhead(int rank) const {
    const SimTime t = trace_.recv_overhead[static_cast<std::size_t>(rank)];
    SOC_CHECK(t >= 0, "what-if: recv overhead unknown for rank");
    return t;
  }
  std::pair<SimTime, SimTime> message_cost(int src_node, int dst_node,
                                           Bytes bytes) const {
    const auto it = costs_.find(cost_key(src_node, dst_node, bytes));
    SOC_CHECK(it != costs_.end(), "what-if: message cost not in trace");
    return it->second;
  }
  SimTime pair_latency(int src_node, int dst_node) const {
    const auto it = latencies_.find(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_node))
         << 32) |
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst_node)));
    SOC_CHECK(it != latencies_.end(), "what-if: pair latency not in trace");
    return it->second;
  }
  bool use_protocol(int src_rank, int dst_rank) const {
    return !scenario_.ideal_network && node_of(src_rank) != node_of(dst_rank);
  }
  /// Under `uncontended` the shared NIC/port clocks are never advanced,
  /// so the engine-mirroring max() reads below see zeros and collapse to
  /// the uncontended times without changing any formula.
  bool contended() const { return !scenario_.uncontended; }
  void emit_proto(int emitter_rank, int target_rank, SimTime time,
                  const Proto& p) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(target_rank))
         << 47) |
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(emitter_rank))
         << 32) |
        proto_seq_[static_cast<std::size_t>(emitter_rank)]++;
    protos_.push_back(p);
    queue_.push(time, key, -static_cast<std::int32_t>(protos_.size()));
  }
  double scale_for(int rank) const {
    if (scenario_.compute_scale.empty()) return 1.0;
    return scenario_.compute_scale[static_cast<std::size_t>(rank)];
  }
  SimTime scaled(SimTime t, int rank) const {
    const double s = scale_for(rank);
    if (s == 1.0) return t;
    return static_cast<SimTime>(std::llround(static_cast<double>(t) * s));
  }
  /// DVFS duration scaling: a lane clocked at relative frequency f takes
  /// 1/f of its recorded service time.  f == 1.0 skips the multiply so
  /// the baseline state reproduces recorded durations bit-exactly.
  static SimTime dvfs_scaled(SimTime t, double freq) {
    if (freq == 1.0) return t;
    return static_cast<SimTime>(std::llround(static_cast<double>(t) / freq));
  }

  void execute(int rank, SimTime now) {
    auto& st = states_[static_cast<std::size_t>(rank)];
    const auto& program = trace_.rank_ops[static_cast<std::size_t>(rank)];
    if (st.pc >= program.size()) {
      st.done = true;
      finish_[static_cast<std::size_t>(rank)] =
          std::max(finish_[static_cast<std::size_t>(rank)], now);
      return;
    }
    const OpExec& op = op_at(rank, st.pc);
    switch (op.kind) {
      case sim::OpKind::kCpuCompute:
      case sim::OpKind::kGpuKernel:
      case sim::OpKind::kCopyH2D:
      case sim::OpKind::kCopyD2H:
      case sim::OpKind::kDelay:
        start_lane(rank, now, op);
        return;
      case sim::OpKind::kSend:
        start_send(rank, now, op);
        return;
      case sim::OpKind::kRecv:
        start_recv(rank, now, op);
        return;
      case sim::OpKind::kIsend:
        start_isend(rank, now, op);
        return;
      case sim::OpKind::kIrecv:
        start_irecv(rank, now, op);
        return;
      case sim::OpKind::kWaitAll:
        start_wait_all(rank, now);
        return;
      default:
        SOC_CHECK(false, "what-if: unexpected op kind");
    }
  }

  void start_lane(int rank, SimTime now, const OpExec& op) {
    auto& st = states_[static_cast<std::size_t>(rank)];
    const std::size_t node = static_cast<std::size_t>(op.node);
    // cpu/gpu lanes follow the compute clocks; the copy engine follows
    // the memory clock.  Injected stalls (kDelay) are wall-clock: no
    // frequency scales them and no engine contends for them.
    double freq = 1.0;
    if (op.kind == sim::OpKind::kCpuCompute ||
        op.kind == sim::OpKind::kGpuKernel) {
      freq = scenario_.dvfs_compute;
    } else if (op.kind == sim::OpKind::kCopyH2D ||
               op.kind == sim::OpKind::kCopyD2H) {
      freq = scenario_.dvfs_dram;
    }
    const SimTime dur =
        dvfs_scaled(scaled(op.busy_end - op.busy_start, rank), freq);
    SimTime start = now;
    if (op.kind == sim::OpKind::kGpuKernel) {
      if (!scenario_.uncontended) {
        start = std::max(now, gpu_free_[node]);
        gpu_free_[node] = start + dur;
      }
    } else if (op.kind == sim::OpKind::kCopyH2D ||
               op.kind == sim::OpKind::kCopyD2H) {
      if (!scenario_.uncontended) {
        start = std::max(now, copy_free_[node]);
        copy_free_[node] = start + dur;
      }
    }
    ++st.pc;
    queue_.push(start + dur, wake_key(rank), rank);
  }

  void advance(int rank, SimTime wake) {
    ++states_[static_cast<std::size_t>(rank)].pc;
    queue_.push(wake, wake_key(rank), rank);
  }

  void start_send(int rank, SimTime now, const OpExec& op) {
    const std::uint64_t key = msg_key(rank, op.peer, op.tag);
    if (use_protocol(rank, op.peer)) {
      if (op.bytes <= trace_.config.eager_threshold) {
        launch_eager_remote(rank, op.peer, now, op.bytes, op.tag);
        advance(rank, now + send_overhead(rank));
        return;
      }
      // Rendezvous: park and announce with an RTS one wire latency out.
      Proto p;
      p.kind = ProtoKind::kRts;
      p.src_rank = rank;
      p.dst_rank = op.peer;
      p.tag = op.tag;
      p.bytes = op.bytes;
      p.ready = now;
      p.tx_est = nic_tx_free_[static_cast<std::size_t>(node_of(rank))];
      emit_proto(rank, op.peer,
                 now + pair_latency(node_of(rank), node_of(op.peer)), p);
      return;  // blocked until the CTS lands
    }
    if (op.bytes <= trace_.config.eager_threshold) {
      const SimTime arrival = launch_eager(rank, op.peer, now, op.bytes);
      const SimTime overhead = send_overhead(rank);
      auto* pending = pending_recvs_.find(key);
      auto* posted = pending_irecvs_.find(key);
      if (pending != nullptr && !pending->empty()) {
        const PendingRecv pr = pending->front();
        pending->pop_front();
        advance(pr.rank, std::max(pr.ready, arrival) + recv_overhead(pr.rank));
      } else if (posted != nullptr && !posted->empty()) {
        const int recv_rank = posted->front();
        posted->pop_front();
        resolve_request(recv_rank, arrival + recv_overhead(recv_rank));
      } else {
        arrivals_[key].push_back(Arrival{arrival});
      }
      advance(rank, now + overhead);
      return;
    }
    auto* pending = pending_recvs_.find(key);
    if (pending != nullptr && !pending->empty()) {
      const PendingRecv pr = pending->front();
      pending->pop_front();
      complete_rendezvous(rank, now, pr.rank, pr.ready, op.bytes);
      return;
    }
    auto* posted = pending_irecvs_.find(key);
    if (posted != nullptr && !posted->empty()) {
      const int recv_rank = posted->front();
      posted->pop_front();
      const SimTime end = timed_transfer(rank, recv_rank, now, op.bytes);
      advance(rank, end);
      resolve_request(recv_rank, end + recv_overhead(recv_rank));
      return;
    }
    pending_sends_[key].push_back(PendingSend{rank, now, op.bytes, op.tag, 0});
  }

  void start_recv(int rank, SimTime now, const OpExec& op) {
    const std::uint64_t key = msg_key(op.peer, rank, op.tag);
    auto* arrived = arrivals_.find(key);
    if (arrived != nullptr && !arrived->empty()) {
      const Arrival a = arrived->front();
      arrived->pop_front();
      advance(rank, std::max(now, a.time) + recv_overhead(rank));
      return;
    }
    auto* pending = pending_sends_.find(key);
    if (pending != nullptr && !pending->empty()) {
      const PendingSend ps = pending->front();
      pending->pop_front();
      if (use_protocol(op.peer, rank)) {
        const SimTime end =
            rendezvous_match(ps, rank, now, std::max(ps.ready, now));
        advance(rank, end);
      } else {
        complete_rendezvous(ps.rank, ps.ready, rank, now, ps.bytes);
      }
      return;
    }
    pending_recvs_[key].push_back(PendingRecv{rank, now});
  }

  void start_isend(int rank, SimTime now, const OpExec& op) {
    auto& st = states_[static_cast<std::size_t>(rank)];
    const std::uint64_t key = msg_key(rank, op.peer, op.tag);
    const SimTime overhead = send_overhead(rank);
    if (use_protocol(rank, op.peer)) {
      launch_eager_remote(rank, op.peer, now, op.bytes, op.tag);
      st.requests_complete = std::max(st.requests_complete, now + overhead);
      advance(rank, now + overhead);
      return;
    }
    const SimTime arrival = launch_eager(rank, op.peer, now, op.bytes);
    st.requests_complete = std::max(st.requests_complete, now + overhead);
    auto* pending = pending_recvs_.find(key);
    auto* posted = pending_irecvs_.find(key);
    if (pending != nullptr && !pending->empty()) {
      const PendingRecv pr = pending->front();
      pending->pop_front();
      advance(pr.rank, std::max(pr.ready, arrival) + recv_overhead(pr.rank));
    } else if (posted != nullptr && !posted->empty()) {
      const int recv_rank = posted->front();
      posted->pop_front();
      resolve_request(recv_rank, arrival + recv_overhead(recv_rank));
    } else {
      arrivals_[key].push_back(Arrival{arrival});
    }
    advance(rank, now + overhead);
  }

  void start_irecv(int rank, SimTime now, const OpExec& op) {
    auto& st = states_[static_cast<std::size_t>(rank)];
    const std::uint64_t key = msg_key(op.peer, rank, op.tag);
    auto* arrived = arrivals_.find(key);
    if (arrived != nullptr && !arrived->empty()) {
      const Arrival a = arrived->front();
      arrived->pop_front();
      st.requests_complete =
          std::max(st.requests_complete,
                   std::max(now, a.time) + recv_overhead(rank));
    } else {
      auto* pending = pending_sends_.find(key);
      if (pending != nullptr && !pending->empty()) {
        const PendingSend ps = pending->front();
        pending->pop_front();
        if (use_protocol(op.peer, rank)) {
          const SimTime end =
              rendezvous_match(ps, rank, now, std::max(ps.ready, now));
          st.requests_complete =
              std::max(st.requests_complete, end + recv_overhead(rank));
        } else {
          const SimTime end =
              timed_transfer(ps.rank, rank, std::max(ps.ready, now), ps.bytes);
          advance(ps.rank, end);
          st.requests_complete =
              std::max(st.requests_complete, end + recv_overhead(rank));
        }
      } else {
        ++st.unresolved;
        pending_irecvs_[key].push_back(rank);
      }
    }
    advance(rank, now + recv_overhead(rank));
  }

  void start_wait_all(int rank, SimTime now) {
    auto& st = states_[static_cast<std::size_t>(rank)];
    if (st.unresolved > 0) {
      st.waiting_all = true;
      return;  // resolve_request wakes us
    }
    const SimTime done = std::max(now, st.requests_complete);
    st.requests_complete = 0;
    advance(rank, done);
  }

  void complete_rendezvous(int send_rank, SimTime send_ready, int recv_rank,
                           SimTime recv_ready, Bytes bytes) {
    const SimTime end = timed_transfer(
        send_rank, recv_rank, std::max(send_ready, recv_ready), bytes);
    advance(send_rank, end);  // engine pushes sender first, then receiver
    advance(recv_rank, end);
  }

  void resolve_request(int rank, SimTime completion) {
    auto& st = states_[static_cast<std::size_t>(rank)];
    SOC_CHECK(st.unresolved > 0, "what-if: resolve with no pending request");
    --st.unresolved;
    st.requests_complete = std::max(st.requests_complete, completion);
    if (st.waiting_all && st.unresolved == 0) {
      st.waiting_all = false;
      queue_.push(st.requests_complete, wake_key(rank), rank);
    }
  }

  // Instant path only (same node, or the ideal-network scenario) — the
  // same split as the engine; cross-node transfers on a real network go
  // through the protocol-message path above and never reach here.
  SimTime timed_transfer(int send_rank, int recv_rank, SimTime earliest,
                         Bytes bytes) {
    SimTime duration = 0;
    if (!scenario_.ideal_network) {
      const auto [latency, xfer] =
          message_cost(node_of(send_rank), node_of(recv_rank), bytes);
      duration = latency + xfer;
    }
    return earliest + duration;
  }

  SimTime launch_eager(int src_rank, int dst_rank, SimTime now, Bytes bytes) {
    if (scenario_.ideal_network) return now;
    const auto [latency, xfer] =
        message_cost(node_of(src_rank), node_of(dst_rank), bytes);
    return now + latency + xfer;
  }

  void launch_eager_remote(int src_rank, int dst_rank, SimTime now,
                           Bytes bytes, int tag) {
    const int src_node = node_of(src_rank);
    const int dst_node = node_of(dst_rank);
    auto& nic_tx = nic_tx_free_[static_cast<std::size_t>(src_node)];
    const SimTime start = std::max(now, nic_tx);
    const auto [latency, xfer] = message_cost(src_node, dst_node, bytes);
    const SimTime arrival = start + latency + xfer;
    if (contended()) nic_tx = start + xfer;
    Proto p;
    p.kind = ProtoKind::kArrival;
    p.src_rank = src_rank;
    p.dst_rank = dst_rank;
    p.tag = tag;
    p.bytes = bytes;
    p.end = arrival;
    emit_proto(src_rank, dst_rank, arrival, p);
  }

  void process_arrival(const Proto& p) {
    const int dst = p.dst_rank;
    const int dst_node = node_of(dst);
    const std::uint64_t key = msg_key(p.src_rank, dst, p.tag);
    SimTime delivery = p.end;
    if (trace_.config.bisection_bandwidth > 0.0) {
      auto& port = port_free_[static_cast<std::size_t>(dst_node)];
      delivery = std::max(p.end, port);
      if (contended()) {
        port = delivery +
               transfer_time(p.bytes, trace_.config.bisection_bandwidth /
                                          trace_.placement.nodes);
      }
    }
    auto& nic_rx = nic_rx_free_[static_cast<std::size_t>(dst_node)];
    if (contended()) nic_rx = std::max(nic_rx, delivery);
    auto* pending = pending_recvs_.find(key);
    auto* posted = pending_irecvs_.find(key);
    if (pending != nullptr && !pending->empty()) {
      const PendingRecv pr = pending->front();
      pending->pop_front();
      advance(pr.rank, std::max(pr.ready, delivery) + recv_overhead(pr.rank));
    } else if (posted != nullptr && !posted->empty()) {
      const int recv_rank = posted->front();
      posted->pop_front();
      resolve_request(recv_rank, delivery + recv_overhead(recv_rank));
    } else {
      arrivals_[key].push_back(Arrival{delivery});
    }
  }

  void process_rts(const Proto& p, SimTime now) {
    const int dst = p.dst_rank;
    const std::uint64_t key = msg_key(p.src_rank, dst, p.tag);
    const PendingSend ps{p.src_rank, p.ready, p.bytes, p.tag, p.tx_est};
    auto* pending = pending_recvs_.find(key);
    if (pending != nullptr && !pending->empty()) {
      const PendingRecv pr = pending->front();
      pending->pop_front();
      const SimTime end =
          rendezvous_match(ps, pr.rank, now, std::max(ps.ready, pr.ready));
      advance(pr.rank, end);
      return;
    }
    auto* posted = pending_irecvs_.find(key);
    if (posted != nullptr && !posted->empty()) {
      const int recv_rank = posted->front();
      posted->pop_front();
      const SimTime end = rendezvous_match(ps, recv_rank, now, ps.ready);
      resolve_request(recv_rank, end + recv_overhead(recv_rank));
      return;
    }
    pending_sends_[key].push_back(ps);
  }

  SimTime rendezvous_match(const PendingSend& ps, int recv_rank,
                           SimTime match_time, SimTime start_base) {
    const int src_node = node_of(ps.rank);
    const int dst_node = node_of(recv_rank);
    SimTime start = std::max({start_base, ps.tx_est,
                              nic_rx_free_[static_cast<std::size_t>(dst_node)]});
    if (trace_.config.bisection_bandwidth > 0.0) {
      auto& port = port_free_[static_cast<std::size_t>(dst_node)];
      start = std::max(start, port);
      if (contended()) {
        port = start +
               transfer_time(ps.bytes, trace_.config.bisection_bandwidth /
                                           trace_.placement.nodes);
      }
    }
    const auto [latency, xfer] = message_cost(src_node, dst_node, ps.bytes);
    const SimTime end = start + latency + xfer;
    if (contended()) {
      nic_rx_free_[static_cast<std::size_t>(dst_node)] = end;
    }
    const SimTime cts = std::max(end, match_time + latency);
    Proto cp;
    cp.kind = ProtoKind::kCts;
    cp.src_rank = ps.rank;
    cp.dst_rank = recv_rank;
    cp.tag = ps.tag;
    cp.bytes = ps.bytes;
    emit_proto(recv_rank, ps.rank, cts, cp);
    return end;
  }

  const RunTrace& trace_;
  const WhatIf& scenario_;
  std::map<std::uint64_t, std::pair<SimTime, SimTime>> costs_;
  std::map<std::uint64_t, SimTime> latencies_;
  sim::KeyedEventQueue queue_;
  std::vector<Proto> protos_;
  std::vector<std::uint32_t> proto_seq_;
  std::vector<State> states_;
  std::vector<SimTime> finish_;
  std::vector<SimTime> gpu_free_;
  std::vector<SimTime> copy_free_;
  std::vector<SimTime> nic_tx_free_;
  std::vector<SimTime> nic_rx_free_;
  std::vector<SimTime> port_free_;
  flat_map<std::uint64_t, RingQueue<PendingSend>> pending_sends_;
  flat_map<std::uint64_t, RingQueue<PendingRecv>> pending_recvs_;
  flat_map<std::uint64_t, RingQueue<int>> pending_irecvs_;
  flat_map<std::uint64_t, RingQueue<Arrival>> arrivals_;
};

}  // namespace

SimTime evaluate(const RunTrace& trace, const WhatIf& scenario) {
  Evaluator evaluator(trace, scenario);
  return evaluator.run();
}

std::vector<double> balance_scales(const sim::RunStats& stats) {
  // Mirrors trace::ideal_balance_scales (same arithmetic, same order) so
  // the single-pass projection matches the replay-based scenario.
  const std::size_t n = stats.ranks.size();
  SOC_CHECK(n > 0, "no ranks in run");
  std::vector<double> compute(n, 0.0);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    for (const auto& [phase, t] : stats.ranks[r].phase_compute) {
      compute[r] += static_cast<double>(t);
    }
    total += compute[r];
  }
  const double avg = total / static_cast<double>(n);
  std::vector<double> scales(n, 1.0);
  for (std::size_t r = 0; r < n; ++r) {
    if (compute[r] > 0.0) scales[r] = avg / compute[r];
  }
  return scales;
}

}  // namespace soc::prof
