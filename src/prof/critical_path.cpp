#include "prof/critical_path.h"

#include <algorithm>

#include "common/error.h"

namespace soc::prof {

const char* category_name(Category category) {
  switch (category) {
    case Category::kCompute: return "compute";
    case Category::kGpuWait: return "gpu-wait";
    case Category::kGpuBusy: return "gpu-busy";
    case Category::kCopyWait: return "copy-wait";
    case Category::kCopyBusy: return "copy-busy";
    case Category::kSendOverhead: return "send-overhead";
    case Category::kRecvOverhead: return "recv-overhead";
    case Category::kNicWait: return "nic-wait";
    case Category::kTransfer: return "transfer";
    case Category::kBlockedSend: return "blocked-send";
    case Category::kBlockedRecv: return "blocked-recv";
    case Category::kBlockedWait: return "blocked-wait";
    case Category::kInjected: return "injected";
    case Category::kIdle: return "idle";
    case Category::kCount: break;
  }
  return "?";
}

const char* category_lane(Category category) {
  switch (category) {
    case Category::kCompute:
    case Category::kSendOverhead:
    case Category::kRecvOverhead:
    case Category::kInjected:
      return "cpu";
    case Category::kGpuWait:
    case Category::kGpuBusy:
      return "gpu";
    case Category::kCopyWait:
    case Category::kCopyBusy:
      return "copy";
    case Category::kNicWait:
    case Category::kTransfer:
      return "nic";
    case Category::kBlockedSend:
    case Category::kBlockedRecv:
    case Category::kBlockedWait:
      return "blocked";
    case Category::kIdle:
      return "idle";
    case Category::kCount:
      break;
  }
  return "?";
}

namespace {

struct Segment {
  SimTime begin = 0;
  SimTime end = 0;
  Category category = Category::kCompute;
  int phase = 0;
  int jump = -1;  ///< Blocked segments: rank whose dispatch ended the wait.
};

void emit(std::vector<Segment>& segments, SimTime begin, SimTime end,
          Category category, int phase, int jump = -1) {
  if (end > begin) segments.push_back(Segment{begin, end, category, phase, jump});
}

// Decomposes a message-completed window [b0, c): parked until the partner
// arrived at p, the committed transfer queued until q, was on the wire
// until e, and the tail is receive-side overhead.  Out-of-window
// boundaries (e.g. a transfer that completed before a late receiver even
// posted) clip away to empty segments.
void message_chain(const OpExec& op, SimTime b0, SimTime c, SimTime p,
                   SimTime q, SimTime e, Category blocked, int jump,
                   std::vector<Segment>& segments) {
  const auto clip = [&](SimTime t) { return std::min(std::max(t, b0), c); };
  emit(segments, b0, clip(p), blocked, op.phase, jump);
  emit(segments, clip(p), clip(q), Category::kNicWait, op.phase);
  emit(segments, clip(q), clip(e), Category::kTransfer, op.phase);
  emit(segments, clip(e), c, Category::kRecvOverhead, op.phase);
}

void op_segments(const RunTrace& trace, const OpExec& op,
                 std::vector<Segment>& segments) {
  const SimTime b0 = op.dispatch;
  const SimTime c = op.complete;
  switch (op.kind) {
    case sim::OpKind::kCpuCompute:
      emit(segments, b0, c, Category::kCompute, op.phase);
      return;
    case sim::OpKind::kDelay:
      emit(segments, b0, c, Category::kInjected, op.phase);
      return;
    case sim::OpKind::kGpuKernel:
      emit(segments, b0, op.busy_start, Category::kGpuWait, op.phase);
      emit(segments, op.busy_start, c, Category::kGpuBusy, op.phase);
      return;
    case sim::OpKind::kCopyH2D:
    case sim::OpKind::kCopyD2H:
      emit(segments, b0, op.busy_start, Category::kCopyWait, op.phase);
      emit(segments, op.busy_start, c, Category::kCopyBusy, op.phase);
      return;
    case sim::OpKind::kSend: {
      const sim::MessageRecord& m = trace.messages[static_cast<std::size_t>(op.msg)];
      if (m.eager) {
        emit(segments, b0, c, Category::kSendOverhead, op.phase);
        return;
      }
      message_chain(op, b0, c, op.partner_ready, m.start, m.end,
                    Category::kBlockedSend,
                    trace.ops[static_cast<std::size_t>(op.partner)].rank,
                    segments);
      return;
    }
    case sim::OpKind::kRecv: {
      const sim::MessageRecord& m = trace.messages[static_cast<std::size_t>(op.msg)];
      message_chain(op, b0, c, op.partner_ready, m.start, m.end,
                    Category::kBlockedRecv,
                    trace.ops[static_cast<std::size_t>(op.partner)].rank,
                    segments);
      return;
    }
    case sim::OpKind::kIsend:
      emit(segments, b0, c, Category::kSendOverhead, op.phase);
      return;
    case sim::OpKind::kIrecv:
      emit(segments, b0, c, Category::kRecvOverhead, op.phase);
      return;
    case sim::OpKind::kWaitAll: {
      if (c <= b0) return;  // nothing outstanding: zero-width window
      SOC_CHECK(op.determinant >= 0, "attribute: waitall without determinant");
      const OpExec& det = trace.ops[static_cast<std::size_t>(op.determinant)];
      SOC_CHECK(det.kind == sim::OpKind::kIrecv && det.msg >= 0,
                "attribute: blocking waitall not bound by an irecv");
      const sim::MessageRecord& m =
          trace.messages[static_cast<std::size_t>(det.msg)];
      message_chain(op, b0, c, det.partner_ready, m.start, m.end,
                    Category::kBlockedWait,
                    trace.ops[static_cast<std::size_t>(det.partner)].rank,
                    segments);
      return;
    }
    default:
      SOC_CHECK(false, "attribute: unexpected op kind in trace");
  }
}

// The segment of `segments` (sorted, tiling the rank's timeline) that
// ends exactly at boundary `t`.
const Segment& segment_ending_at(const std::vector<Segment>& segments,
                                 SimTime t) {
  // Binary search for the segment containing t - 1.
  const auto it = std::upper_bound(
      segments.begin(), segments.end(), t - 1,
      [](SimTime v, const Segment& s) { return v < s.begin; });
  SOC_CHECK(it != segments.begin(), "attribute: walk fell off the timeline");
  const Segment& s = *(it - 1);
  SOC_CHECK(s.end == t, "attribute: walk cursor not on a segment boundary");
  return s;
}

}  // namespace

Attribution attribute(const RunTrace& trace) {
  const std::size_t n = static_cast<std::size_t>(trace.placement.ranks);
  const SimTime makespan = trace.stats.makespan;

  // Per-rank segment timelines (windows are contiguous, chains tile each
  // window, so the concatenation tiles [0, finish] and kIdle tops it up).
  std::vector<std::vector<Segment>> timelines(n);
  std::size_t total_segments = 0;
  Attribution out;
  out.rank_profiles.assign(n, RankProfile{});
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<Segment>& segments = timelines[r];
    for (const int oi : trace.rank_ops[r]) {
      op_segments(trace, trace.ops[static_cast<std::size_t>(oi)], segments);
    }
    int last_phase = 0;
    if (!segments.empty()) last_phase = segments.back().phase;
    emit(segments, trace.finish[r], makespan, Category::kIdle, last_phase);
    // Zero-residual invariant: every nanosecond of [0, makespan] is
    // attributed exactly once per rank.
    SimTime covered = 0;
    for (const Segment& s : segments) {
      SOC_CHECK(s.begin == covered, "attribute: gap in rank timeline");
      covered = s.end;
      out.rank_profiles[r]
          .by_category[static_cast<std::size_t>(s.category)] += s.end - s.begin;
    }
    SOC_CHECK(covered == makespan, "attribute: rank timeline short of makespan");
    total_segments += segments.size();
  }

  // Backward walk from the run's final event: the smallest rank that
  // finishes at the makespan.
  CriticalPath& path = out.path;
  path.by_rank.assign(n, 0);
  std::size_t rank = 0;
  for (std::size_t r = 0; r < n; ++r) {
    if (trace.finish[r] == makespan) {
      rank = r;
      break;
    }
  }
  SimTime cursor = makespan;
  // Each iteration either consumes a segment or jumps rank at a fixed
  // cursor; jumps are bounded by the blocked-segment count, so this bound
  // only trips on a genuine cycle (which would be an engine bug).
  std::size_t guard = 2 * total_segments + n + 16;
  while (cursor > 0) {
    SOC_CHECK(guard-- > 0, "attribute: critical-path walk did not terminate");
    const Segment& s = segment_ending_at(timelines[rank], cursor);
    if (s.jump >= 0) {
      // Parked: the partner's dispatch at `cursor` ended the wait, so the
      // cause of this time lives on the partner's timeline.
      rank = static_cast<std::size_t>(s.jump);
      continue;
    }
    path.steps.push_back(PathStep{s.category, static_cast<int>(rank), s.phase,
                                  s.begin, s.end});
    const SimTime width = s.end - s.begin;
    path.by_category[static_cast<std::size_t>(s.category)] += width;
    path.by_phase[s.phase] += width;
    path.by_rank[rank] += width;
    path.total += width;
    cursor = s.begin;
  }
  std::reverse(path.steps.begin(), path.steps.end());
  SOC_CHECK(path.total == makespan,
            "attribute: critical path does not sum to the makespan");
  return out;
}

}  // namespace soc::prof
