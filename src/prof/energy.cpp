#include "prof/energy.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <vector>

#include "common/error.h"
#include "obs/json.h"

namespace soc::prof {

namespace {

// Column order for the prefix integration: total + the component split.
constexpr std::size_t kColumns = 6;

// Evaluates a bin-edge prefix (n + 1 entries) at an arbitrary time t by
// extending into the covering bin at that bin's constant rate.  The
// extension expression at a full bin width reproduces the next prefix
// entry bit-exactly (same FP expression), so the function is monotone
// nondecreasing everywhere — the property the telescoped llround cuts
// rely on.
double prefix_at(const power::PowerTimeline& tl,
                 const std::vector<double>& prefix,
                 const std::vector<double>& rate, double t) {
  const std::size_t n = rate.size();
  if (t <= 0.0 || n == 0) return 0.0;
  if (t >= tl.seconds) return prefix[n];
  const std::size_t b = std::min(
      n - 1, static_cast<std::size_t>(t / tl.bin_seconds));
  const double b0 = static_cast<double>(b) * tl.bin_seconds;
  if (t <= b0) return prefix[b];
  const double width = tl.width(b);
  const double frac = std::min(t - b0, width);
  return prefix[b] + rate[b] * frac;
}

std::int64_t to_uj(double joules) {
  return static_cast<std::int64_t>(std::llround(joules * 1e6));
}

// Largest-remainder apportionment of `total` integer units over
// nonnegative weights: deterministic, zero residual.  Ties (equal
// fractional parts) resolve to the lower index.
std::vector<std::int64_t> apportion(const std::vector<double>& weight,
                                    std::int64_t total) {
  const std::size_t n = weight.size();
  std::vector<std::int64_t> out(n, 0);
  if (n == 0) return out;
  double wsum = 0.0;
  for (const double w : weight) wsum += w;
  if (wsum <= 0.0) {
    const std::int64_t base = total / static_cast<std::int64_t>(n);
    std::int64_t rem = total - base * static_cast<std::int64_t>(n);
    for (std::size_t r = 0; r < n; ++r) {
      out[r] = base + (static_cast<std::int64_t>(r) < rem ? 1 : 0);
    }
    return out;
  }
  std::vector<double> frac(n, 0.0);
  std::int64_t assigned = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const double quota =
        weight[r] / wsum * static_cast<double>(total);
    const double floored = std::floor(quota);
    out[r] = static_cast<std::int64_t>(floored);
    frac[r] = quota - floored;
    assigned += out[r];
  }
  std::int64_t rem = total - assigned;
  SOC_CHECK(rem >= 0 && rem <= static_cast<std::int64_t>(n),
            "energy attribution: apportionment remainder out of range");
  std::vector<std::size_t> order(n);
  for (std::size_t r = 0; r < n; ++r) order[r] = r;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (frac[a] != frac[b]) return frac[a] > frac[b];
    return a < b;
  });
  for (std::int64_t i = 0; i < rem; ++i) ++out[order[static_cast<std::size_t>(i)]];
  return out;
}

}  // namespace

EnergyAttribution attribute_energy(const RunTrace& trace,
                                   const power::NodePowerConfig& node,
                                   int cores_per_node) {
  EnergyAttribution out;
  out.rank_uj.assign(trace.stats.ranks.size(), 0);
  const power::PowerTimeline tl =
      power::power_timeline(trace.stats, node, cores_per_node);
  if (tl.seconds <= 0.0) return out;
  const std::size_t n = tl.bin_watts.size();

  // Prefix integration: snapshot measure_energy's running accumulators
  // at every bin edge.  The operation sequence per accumulator is
  // identical to the metering loop, so prefix[...][n] — and therefore
  // out.joules and out.breakdown — reproduce the EnergyReport bit-exactly.
  std::array<std::vector<double>, kColumns> rate;
  rate[0] = tl.bin_watts;
  for (std::size_t c = 1; c < kColumns; ++c) rate[c].resize(n, 0.0);
  for (std::size_t b = 0; b < n; ++b) {
    rate[1][b] = tl.bin_parts[b].idle;
    rate[2][b] = tl.bin_parts[b].cpu;
    rate[3][b] = tl.bin_parts[b].gpu;
    rate[4][b] = tl.bin_parts[b].nic;
    rate[5][b] = tl.bin_parts[b].dram;
  }
  std::array<std::vector<double>, kColumns> prefix;
  for (auto& p : prefix) p.assign(n + 1, 0.0);
  std::array<double, kColumns> acc{};
  std::size_t filled = 0;
  for (std::size_t b = 0; b < n; ++b) {
    const double width = tl.width(b);
    if (width <= 0.0) break;
    for (std::size_t c = 0; c < kColumns; ++c) {
      acc[c] += rate[c][b] * width;
      prefix[c][b + 1] = acc[c];
    }
    filled = b + 1;
  }
  for (std::size_t b = filled; b < n; ++b) {
    for (std::size_t c = 0; c < kColumns; ++c) prefix[c][b + 1] = prefix[c][b];
  }

  out.joules = prefix[0][n];
  out.breakdown.idle = prefix[1][n];
  out.breakdown.cpu = prefix[2][n];
  out.breakdown.gpu = prefix[3][n];
  out.breakdown.nic = prefix[4][n];
  out.breakdown.dram = prefix[5][n];
  out.total_uj = to_uj(out.joules);
  out.idle_uj = to_uj(out.breakdown.idle);
  out.cpu_uj = to_uj(out.breakdown.cpu);
  out.gpu_uj = to_uj(out.breakdown.gpu);
  out.nic_uj = to_uj(out.breakdown.nic);
  out.dram_uj = to_uj(out.breakdown.dram);

  // Phase boundaries: the running max of completion times per ascending
  // phase id (a fully-overlapped phase gets a zero-width slice).  The
  // final boundary is the makespan, so the cuts end at the totals.
  std::map<int, SimTime> phase_end;
  for (const OpExec& op : trace.ops) {
    SimTime& end = phase_end[op.phase];
    end = std::max(end, op.complete);
  }
  if (phase_end.empty()) phase_end[0] = trace.stats.makespan;

  // Telescoped fixed-point cuts: c_p = llround(prefix(T_p) * 1e6) is
  // monotone in p, the per-phase share is c_p - c_{p-1}, and the sum
  // telescopes to the total with zero residual in integer arithmetic.
  std::array<std::int64_t, kColumns> prev{};
  const std::array<std::int64_t, kColumns> totals = {
      out.total_uj, out.idle_uj, out.cpu_uj,
      out.gpu_uj,   out.nic_uj,  out.dram_uj};
  SimTime running = 0;
  for (auto it = phase_end.begin(); it != phase_end.end(); ++it) {
    running = std::max(running, it->second);
    const bool last = std::next(it) == phase_end.end();
    PhaseEnergy pe;
    pe.phase = it->first;
    pe.end = last ? trace.stats.makespan : running;
    std::array<std::int64_t, kColumns> cut;
    if (last) {
      cut = totals;
    } else {
      const double t = to_seconds(pe.end);
      for (std::size_t c = 0; c < kColumns; ++c) {
        cut[c] = to_uj(prefix_at(tl, prefix[c], rate[c], t));
      }
    }
    pe.uj = cut[0] - prev[0];
    pe.idle_uj = cut[1] - prev[1];
    pe.cpu_uj = cut[2] - prev[2];
    pe.gpu_uj = cut[3] - prev[3];
    pe.nic_uj = cut[4] - prev[4];
    pe.dram_uj = cut[5] - prev[5];
    SOC_CHECK(pe.uj >= 0, "energy attribution: non-monotone phase cut");
    prev = cut;
    out.phases.push_back(pe);
  }

  // Per-rank shares: shared draw (board idle + host overhead + NIC)
  // splits evenly; active components follow each rank's share of the
  // matching busy time / traffic.  Largest-remainder rounding makes the
  // integer partition exact.
  const std::size_t ranks = trace.stats.ranks.size();
  if (ranks > 0) {
    double cpu_total = 0.0, gpu_total = 0.0, dram_total = 0.0;
    for (const sim::RankStats& r : trace.stats.ranks) {
      cpu_total += static_cast<double>(r.cpu_busy);
      gpu_total += static_cast<double>(r.gpu_busy);
      dram_total += static_cast<double>(r.dram_bytes);
    }
    const double shared = out.breakdown.idle + out.breakdown.nic;
    std::vector<double> weight(ranks, 0.0);
    for (std::size_t r = 0; r < ranks; ++r) {
      const sim::RankStats& rs = trace.stats.ranks[r];
      const double even = 1.0 / static_cast<double>(ranks);
      weight[r] =
          shared * even +
          out.breakdown.cpu * (cpu_total > 0.0
                                   ? static_cast<double>(rs.cpu_busy) /
                                         cpu_total
                                   : even) +
          out.breakdown.gpu * (gpu_total > 0.0
                                   ? static_cast<double>(rs.gpu_busy) /
                                         gpu_total
                                   : even) +
          out.breakdown.dram * (dram_total > 0.0
                                    ? static_cast<double>(rs.dram_bytes) /
                                          dram_total
                                    : even);
    }
    out.rank_uj = apportion(weight, out.total_uj);
  }
  return out;
}

Retimed retime(const RunTrace& trace, const WhatIf& scenario,
               const power::NodePowerConfig& node, int cores_per_node) {
  const power::EnergyReport measured =
      power::measure_energy(trace.stats, node, cores_per_node);
  Retimed out;

  if (scenario.power_cap_w > 0.0) {
    // The cap dilation is evaluated on the measured timeline, so it
    // cannot compose with knobs that change that timeline.
    SOC_CHECK(!scenario.ideal_network && !scenario.uncontended &&
                  scenario.compute_scale.empty() &&
                  scenario.dvfs_compute == 1.0 && scenario.dvfs_dram == 1.0,
              "what-if: power cap cannot combine with re-timing knobs");
    const power::PowerTimeline tl =
        power::power_timeline(trace.stats, node, cores_per_node);
    const power::CappedEnergy capped = power::apply_power_cap(
        tl, node, trace.placement.nodes, scenario.power_cap_w);
    // A cap at or above peak leaves every bin untouched: extra_seconds
    // stays 0.0 and the integral reproduces the measured report.
    out.makespan =
        trace.stats.makespan +
        static_cast<SimTime>(std::llround(capped.extra_seconds * 1e9));
    out.seconds = capped.energy.seconds;
    out.joules = capped.energy.joules;
    out.average_watts = capped.energy.average_watts;
    out.breakdown = capped.energy.breakdown;
    out.capped_bins = capped.capped_bins;
    return out;
  }

  out.makespan = evaluate(trace, scenario);
  const bool same_runtime = out.makespan == trace.stats.makespan;
  out.seconds = same_runtime ? measured.seconds : to_seconds(out.makespan);
  const double fc = scenario.dvfs_compute;
  const double fd = scenario.dvfs_dram;

  // Active compute energy: busy time dilates by 1/f while power follows
  // the voltage-frequency curve, so joules scale by pf(f)/f.
  if (fc == 1.0) {
    out.breakdown.cpu = measured.breakdown.cpu;
    out.breakdown.gpu = measured.breakdown.gpu;
  } else {
    const double scale = power::dvfs_power_factor(node, fc) / fc;
    out.breakdown.cpu = measured.breakdown.cpu * scale;
    out.breakdown.gpu = measured.breakdown.gpu * scale;
  }
  // DRAM energy is traffic-metered (watts per GB/s integrates to joules
  // per byte), so runtime dilation cancels; only the VF curve remains.
  out.breakdown.dram = fd == 1.0 ? measured.breakdown.dram
                                 : measured.breakdown.dram *
                                       power::dvfs_power_factor(node, fd);
  // Frequency-independent draw follows the projected runtime.
  if (same_runtime) {
    out.breakdown.idle = measured.breakdown.idle;
    out.breakdown.nic = measured.breakdown.nic;
  } else {
    const double ratio = out.seconds / measured.seconds;
    out.breakdown.idle = measured.breakdown.idle * ratio;
    const double nic_idle = static_cast<double>(trace.placement.nodes) *
                            node.nic_idle_w * measured.seconds;
    const double nic_active =
        std::max(0.0, measured.breakdown.nic - nic_idle);
    out.breakdown.nic = nic_idle * ratio + nic_active;
  }

  if (same_runtime && fc == 1.0 && fd == 1.0) {
    // Exact identity: hand back the measured integral itself rather than
    // re-summing components (FP addition order would otherwise differ),
    // so the baseline round trip is bit-exact.
    out.joules = measured.joules;
    out.average_watts = measured.average_watts;
  } else {
    out.joules = out.breakdown.idle + out.breakdown.cpu +
                 out.breakdown.gpu + out.breakdown.nic + out.breakdown.dram;
    out.average_watts = out.seconds > 0.0 ? out.joules / out.seconds : 0.0;
  }
  return out;
}

std::string energy_json(const EnergyAttribution& energy) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", "soccluster-energy-attribution/v1");
  w.field("joules", energy.joules);
  w.field("total_uj", energy.total_uj);
  w.newline();
  w.key("components_uj");
  w.begin_object();
  w.field("idle", energy.idle_uj);
  w.field("cpu", energy.cpu_uj);
  w.field("gpu", energy.gpu_uj);
  w.field("nic", energy.nic_uj);
  w.field("dram", energy.dram_uj);
  w.end_object();
  w.newline();
  w.key("phases");
  w.begin_array();
  for (const PhaseEnergy& p : energy.phases) {
    w.newline();
    w.begin_object();
    w.field("phase", p.phase);
    w.field("end_ns", p.end);
    w.field("uj", p.uj);
    w.field("idle_uj", p.idle_uj);
    w.field("cpu_uj", p.cpu_uj);
    w.field("gpu_uj", p.gpu_uj);
    w.field("nic_uj", p.nic_uj);
    w.field("dram_uj", p.dram_uj);
    w.end_object();
  }
  w.end_array();
  w.newline();
  w.key("rank_uj");
  w.begin_array();
  for (const std::int64_t uj : energy.rank_uj) w.value(uj);
  w.end_array();
  w.end_object();
  std::string out = w.str();
  out += '\n';
  return out;
}

}  // namespace soc::prof
