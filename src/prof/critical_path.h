// Critical-path profiler, stage 2: attribution.
//
// Every op window [dispatch, complete) decomposes into contiguous
// segments, each tagged with a Category saying where that wall time went
// (lane busy, lane queueing, message overhead, NIC/fabric queueing, wire
// transfer, or parked waiting for a partner).  Per rank the segments tile
// [0, makespan] exactly — integer nanoseconds, zero residual — which the
// attribution pass asserts.
//
// The critical path is extracted by walking backward from the run's final
// event: at each step the segment ending at the cursor is attributed,
// except parked ("blocked") segments, which transfer the cursor to the
// partner rank whose dispatch ended the wait — the cause of blocked time
// is whatever the partner was doing, and the walk attributes that
// instead.  The walked steps therefore also tile [0, makespan] exactly.
#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <vector>

#include "prof/profiler.h"

namespace soc::prof {

/// Where one segment of a rank's wall time went.
enum class Category : std::uint8_t {
  kCompute = 0,   ///< Host compute (cpu lane busy).
  kGpuWait,       ///< Queued behind the node's shared GPU.
  kGpuBusy,       ///< Kernel executing on the GPU.
  kCopyWait,      ///< Queued behind the node's copy engine.
  kCopyBusy,      ///< Host<->device copy in flight.
  kSendOverhead,  ///< Per-message CPU send overhead.
  kRecvOverhead,  ///< Per-message CPU receive overhead.
  kNicWait,       ///< Transfer matched but queued on NIC/fabric.
  kTransfer,      ///< Message latency + bytes on the wire.
  kBlockedSend,   ///< Parked in a rendezvous send; no receiver yet.
  kBlockedRecv,   ///< Parked in a receive; nothing sent yet.
  kBlockedWait,   ///< Parked in kWaitAll on an unresolved request.
  kInjected,      ///< Scenario-injected stall (fault downtime, OS noise,
                  ///< checkpoint I/O) occupying the host.
  kIdle,          ///< Rank drained before the run's makespan.
  kCount,
};

inline constexpr std::size_t kCategoryCount =
    static_cast<std::size_t>(Category::kCount);

/// Stable identifier ("compute", "gpu-wait", ..., "idle").
const char* category_name(Category category);

/// Coarse rollup for the per-lane attribution: "cpu", "gpu", "copy",
/// "nic", "blocked", or "idle".
const char* category_lane(Category category);

/// One attributed step of the critical path (forward time order).
struct PathStep {
  Category category = Category::kCompute;
  int rank = 0;
  int phase = 0;
  SimTime begin = 0;
  SimTime end = 0;
};

/// The extracted critical path with its attribution rollups.  The steps
/// tile [0, makespan]: total == stats.makespan with zero residual.
struct CriticalPath {
  std::vector<PathStep> steps;
  std::array<SimTime, kCategoryCount> by_category{};
  std::map<int, SimTime> by_phase;
  std::vector<SimTime> by_rank;
  SimTime total = 0;
};

/// Full-timeline decomposition of one rank; the categories sum to the
/// run's makespan exactly (kIdle covers early finishers).
struct RankProfile {
  std::array<SimTime, kCategoryCount> by_category{};
};

struct Attribution {
  CriticalPath path;
  std::vector<RankProfile> rank_profiles;  ///< One per rank.
};

/// Decomposes the trace into segments and walks the critical path.
Attribution attribute(const RunTrace& trace);

}  // namespace soc::prof
