// Critical-path profiler, stage 5: energy attribution and energy
// what-ifs.
//
// attribute_energy() extends the single-pass decomposition to joules:
// the run's binned power timeline (power::power_timeline, the same bins
// measure_energy integrates) is re-integrated as prefix sums with the
// identical floating-point operation sequence, so the attribution total
// reproduces EnergyReport.joules bit-exactly.  Per-phase and per-rank
// shares follow the repo's fixed-point artifact convention (integer
// microjoules, like the ns/ppm critical-path document): phase shares are
// telescoped differences of llround'ed prefix values and rank shares a
// largest-remainder apportionment, so both partitions sum to
// llround(joules * 1e6) with zero residual — exactly, in integer
// arithmetic, not "up to rounding".
//
// retime() answers "what would this run have cost under a different DVFS
// state or power cap?" from the recorded trace alone: durations re-time
// through the what-if evaluator (whatif.h), active energy rescales along
// the NodePowerConfig voltage-frequency curve, and power caps clamp the
// measured timeline bin by bin, dilating the bins they clip.  The
// baseline scenario (all knobs at their defaults) reproduces the
// measured runtime and energy exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "power/power_model.h"
#include "prof/profiler.h"
#include "prof/whatif.h"

namespace soc::prof {

/// One phase's exact share of the run's energy, integer microjoules.
struct PhaseEnergy {
  int phase = 0;
  SimTime end = 0;  ///< Phase boundary: running max of op completions.
  std::int64_t uj = 0;       ///< Σ over phases == EnergyAttribution::total_uj.
  std::int64_t idle_uj = 0;  ///< Per-component shares; each column sums
  std::int64_t cpu_uj = 0;   ///< exactly to the matching *_uj total below.
  std::int64_t gpu_uj = 0;
  std::int64_t nic_uj = 0;
  std::int64_t dram_uj = 0;
};

/// Zero-residual energy decomposition of one recorded run.
struct EnergyAttribution {
  /// Bit-equal to power::measure_energy(...).joules for the same run —
  /// the prefix integration repeats the same FP operation sequence.
  double joules = 0.0;
  /// Bit-equal per component, same argument.
  power::EnergyBreakdown breakdown;

  /// llround(joules * 1e6): the fixed-point total both partitions below
  /// sum to exactly.
  std::int64_t total_uj = 0;
  std::int64_t idle_uj = 0;
  std::int64_t cpu_uj = 0;
  std::int64_t gpu_uj = 0;
  std::int64_t nic_uj = 0;
  std::int64_t dram_uj = 0;

  /// Ascending phase id; Σ uj == total_uj (telescoped, exact).
  std::vector<PhaseEnergy> phases;
  /// Per-rank model shares (shared idle/NIC draw split evenly, active
  /// components by busy-time/traffic share), largest-remainder rounded:
  /// Σ == total_uj exactly.
  std::vector<std::int64_t> rank_uj;
};

/// Charges each phase and rank its CPU/GPU/NIC/DRAM/idle energy.  The
/// node power config and core count must match the metered run's
/// (cluster::run passes its own).
EnergyAttribution attribute_energy(const RunTrace& trace,
                                   const power::NodePowerConfig& node,
                                   int cores_per_node);

/// One re-timed scenario with its projected energy.
struct Retimed {
  SimTime makespan = 0;
  double seconds = 0.0;
  double joules = 0.0;
  double average_watts = 0.0;
  power::EnergyBreakdown breakdown;
  std::size_t capped_bins = 0;  ///< Power-cap scenarios only.
};

/// Re-times the trace under the scenario and projects its energy.
///
/// - Baseline (default WhatIf): reproduces the measured makespan
///   (asserted, like analyze()'s evaluator_exact) and the measured
///   energy bit-exactly.
/// - DVFS / re-timing scenarios: durations come from evaluate(); active
///   CPU/GPU energy rescales by pf(f)/f (time dilation x power curve),
///   DRAM energy by pf(f_mem) (traffic-metered, time-invariant), and the
///   frequency-independent idle + NIC-idle draw follows the projected
///   runtime.
/// - Power cap (power_cap_w > 0): clamps the measured timeline via
///   power::apply_power_cap; cannot be combined with the other knobs.
Retimed retime(const RunTrace& trace, const WhatIf& scenario,
               const power::NodePowerConfig& node, int cores_per_node);

/// The deterministic "soccluster-energy-attribution/v1" JSON document:
/// fixed-point microjoule totals, per-phase shares, and per-rank shares
/// (the zero-residual partitions), plus the bit-exact double totals.
std::string energy_json(const EnergyAttribution& energy);

}  // namespace soc::prof
