#include "prof/profiler.h"

#include <algorithm>

#include "common/error.h"
#include "common/flat_map.h"
#include "common/ring_queue.h"

namespace soc::prof {

namespace {

// Same packing as the engine's private Engine::msg_key.
std::uint64_t msg_key(int src, int dst, int tag) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 42) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 21) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag) & 0x1FFFFF);
}

bool is_lane_op(sim::OpKind kind) {
  switch (kind) {
    case sim::OpKind::kCpuCompute:
    case sim::OpKind::kGpuKernel:
    case sim::OpKind::kCopyH2D:
    case sim::OpKind::kCopyD2H:
    case sim::OpKind::kDelay:
      return true;
    default:
      return false;
  }
}

sim::Lane lane_for(sim::OpKind kind) {
  switch (kind) {
    case sim::OpKind::kCpuCompute:
    case sim::OpKind::kDelay:
      return sim::Lane::kCpu;
    case sim::OpKind::kGpuKernel: return sim::Lane::kGpu;
    default: return sim::Lane::kCopy;
  }
}

// An eager message parked at the receiver: the sender's op plus the
// already-committed transfer.
struct ArrivalRef {
  int op = -1;
  int msg = -1;
};

}  // namespace

void Profiler::on_run_begin(const sim::Placement& placement,
                            const sim::EngineConfig& config) {
  trace_ = RunTrace{};
  trace_.placement = placement;
  trace_.config = config;
  dispatches_.clear();
  spans_.clear();
  order_.clear();
  built_ = false;
}

void Profiler::on_dispatch(const sim::DispatchRecord& record) {
  order_.push_back(static_cast<std::int64_t>(dispatches_.size()));
  dispatches_.push_back(record);
}

void Profiler::on_span(const sim::SpanRecord& span) {
  spans_.push_back(span);
  trace_.usage.add(span);
}

void Profiler::on_message(const sim::MessageRecord& message) {
  order_.push_back(~static_cast<std::int64_t>(trace_.messages.size()));
  trace_.messages.push_back(message);
}

void Profiler::on_run_end(const sim::RunStats& stats) {
  trace_.stats = stats;
  build();
  built_ = true;
}

const RunTrace& Profiler::trace() const {
  SOC_CHECK(built_, "Profiler::trace() before a run completed");
  return trace_;
}

void Profiler::build() {
  const std::size_t n = static_cast<std::size_t>(trace_.placement.ranks);
  trace_.rank_ops.assign(n, {});
  trace_.finish.assign(n, 0);
  trace_.send_overhead.assign(n, -1);
  trace_.recv_overhead.assign(n, -1);
  trace_.ops.reserve(dispatches_.size());

  // -- Pass 1: fold the dispatch stream into per-rank op instances. -----
  // Op windows: each op runs from its first dispatch to the rank's next
  // dispatch (a parked kWaitAll is re-dispatched on wake with the same
  // pc, which folds into the open instance; no other op dispatches
  // twice).  The 0xFF drain record closes the rank's last window.
  std::vector<int> last_op(n, -1);
  std::vector<int> dispatch_op(dispatches_.size(), -1);
  std::vector<bool> first_dispatch(dispatches_.size(), false);
  for (std::size_t di = 0; di < dispatches_.size(); ++di) {
    const sim::DispatchRecord& rec = dispatches_[di];
    const std::size_t r = static_cast<std::size_t>(rec.rank);
    const auto kind = static_cast<sim::OpKind>(rec.kind);
    if (rec.kind == 0xFF) {  // rank drained
      if (last_op[r] >= 0) trace_.ops[last_op[r]].complete = rec.time;
      last_op[r] = -1;
      trace_.finish[r] = rec.time;
      continue;
    }
    if (kind == sim::OpKind::kPhase) continue;  // zero-width, consumed inline
    if (last_op[r] >= 0 && trace_.ops[last_op[r]].pc == rec.pc) {
      // Re-dispatch of the parked op (kWaitAll wake): same instance.
      dispatch_op[di] = last_op[r];
      continue;
    }
    if (last_op[r] >= 0) trace_.ops[last_op[r]].complete = rec.time;
    OpExec op;
    op.kind = kind;
    op.rank = rec.rank;
    op.node = rec.node;
    op.phase = rec.phase;
    op.peer = rec.peer;
    op.tag = rec.tag;
    op.pc = rec.pc;
    op.bytes = rec.bytes;
    op.dispatch = rec.time;
    const int oi = static_cast<int>(trace_.ops.size());
    trace_.ops.push_back(op);
    trace_.rank_ops[r].push_back(oi);
    last_op[r] = oi;
    dispatch_op[di] = oi;
    first_dispatch[di] = true;
  }
  for (std::size_t r = 0; r < n; ++r) {
    SOC_CHECK(last_op[r] < 0, "profiler: rank never drained (deadlock?)");
  }

  // -- Pass 2: attach cpu/gpu/copy service windows from the span stream.
  // Lane spans are emitted at dispatch, so per rank they appear in
  // program order; a cursor per rank pairs them up.
  std::vector<std::size_t> lane_cursor(n, 0);
  for (const sim::SpanRecord& span : spans_) {
    if (span.lane != sim::Lane::kCpu && span.lane != sim::Lane::kGpu &&
        span.lane != sim::Lane::kCopy) {
      continue;  // NIC occupancy is reconstructed from messages instead
    }
    const std::size_t r = static_cast<std::size_t>(span.rank);
    std::size_t& cur = lane_cursor[r];
    while (cur < trace_.rank_ops[r].size() &&
           !is_lane_op(trace_.ops[trace_.rank_ops[r][cur]].kind)) {
      ++cur;
    }
    SOC_CHECK(cur < trace_.rank_ops[r].size(),
              "profiler: span with no matching op");
    OpExec& op = trace_.ops[trace_.rank_ops[r][cur]];
    SOC_CHECK(lane_for(op.kind) == span.lane,
              "profiler: span lane does not match program order");
    op.busy_start = span.start;
    op.busy_end = span.end;
    SOC_CHECK(op.busy_end == op.complete,
              "profiler: lane span does not end at op completion");
    ++cur;
  }

  // -- Pass 3: replay the engine's message matching over the merged
  // dispatch/message commit stream.  A send dispatch only *announces* a
  // transfer; the MessageRecord commits at the arrival or match event —
  // the same event for intra-node traffic, a later one across nodes.
  // Per (src, dst, tag, protocol-class) key both streams are FIFO, so
  // each message entry pops its sender from the matching class queue and
  // binds the receiver exactly as the engine did.
  flat_map<std::uint64_t, RingQueue<int>> eager_sends;
  flat_map<std::uint64_t, RingQueue<int>> rvz_sends;
  flat_map<std::uint64_t, RingQueue<int>> pending_recvs;
  flat_map<std::uint64_t, RingQueue<int>> pending_irecvs;
  flat_map<std::uint64_t, RingQueue<ArrivalRef>> arrivals;
  auto pop = [](flat_map<std::uint64_t, RingQueue<int>>& table,
                std::uint64_t key) {
    auto* q = table.find(key);
    if (q == nullptr || q->empty()) return -1;
    const int v = q->front();
    q->pop_front();
    return v;
  };
  for (const std::int64_t entry : order_) {
    if (entry < 0) {
      const int mi = static_cast<int>(~entry);
      const sim::MessageRecord& m =
          trace_.messages[static_cast<std::size_t>(mi)];
      const std::uint64_t key = msg_key(m.src_rank, m.dst_rank, m.tag);
      const int si = pop(m.eager ? eager_sends : rvz_sends, key);
      SOC_CHECK(si >= 0, "profiler: message with no announcing send");
      OpExec& send = trace_.ops[si];
      send.msg = mi;
      int ri = pop(pending_recvs, key);
      if (ri < 0) ri = pop(pending_irecvs, key);
      if (ri >= 0) {
        OpExec& recv = trace_.ops[ri];
        recv.msg = mi;
        recv.partner = si;
        recv.partner_ready = send.dispatch;
        send.partner = ri;
        // An eager sender never waits on its receiver; its window is the
        // local posting overhead and partner_ready stays unset.
        if (!m.eager) send.partner_ready = recv.dispatch;
      } else {
        // Only an eager payload can commit with no receive posted; it
        // parks at the receiver until a recv/irecv dispatches.  A
        // rendezvous transfer commits at its match, by definition with
        // both endpoints known.
        SOC_CHECK(m.eager, "profiler: rendezvous commit without receiver");
        arrivals[key].push_back(ArrivalRef{si, mi});
      }
      continue;
    }
    const std::size_t di = static_cast<std::size_t>(entry);
    if (!first_dispatch[di]) continue;
    const int oi = dispatch_op[di];
    OpExec& op = trace_.ops[oi];
    switch (op.kind) {
      case sim::OpKind::kSend:
      case sim::OpKind::kIsend: {
        const std::uint64_t key = msg_key(op.rank, op.peer, op.tag);
        const bool eager = op.kind == sim::OpKind::kIsend ||
                           op.bytes <= trace_.config.eager_threshold;
        (eager ? eager_sends : rvz_sends)[key].push_back(oi);
        break;
      }
      case sim::OpKind::kRecv:
      case sim::OpKind::kIrecv: {
        const std::uint64_t key = msg_key(op.peer, op.rank, op.tag);
        auto* arrived = arrivals.find(key);
        if (arrived != nullptr && !arrived->empty()) {
          const ArrivalRef a = arrived->front();
          arrived->pop_front();
          op.msg = a.msg;
          op.partner = a.op;
          op.partner_ready = trace_.ops[a.op].dispatch;
          trace_.ops[a.op].partner = oi;
          break;
        }
        // Park; the committing message entry binds us.  When this very
        // dispatch completes a rendezvous, the engine commits the
        // transfer within the same event, so the message entry follows
        // immediately and pops us right back out.
        if (op.kind == sim::OpKind::kRecv) {
          pending_recvs[key].push_back(oi);
        } else {
          pending_irecvs[key].push_back(oi);
        }
        break;
      }
      default:
        break;
    }
  }

  // -- Pass 4: per-rank post-passes — overhead constants, rendezvous
  // window validation, and kWaitAll determinants.
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<int> window;  // isend/irecv since the last kWaitAll
    for (const int oi : trace_.rank_ops[r]) {
      OpExec& op = trace_.ops[oi];
      switch (op.kind) {
        case sim::OpKind::kSend:
          SOC_CHECK(op.msg >= 0, "profiler: unmatched send");
          if (trace_.messages[op.msg].eager) {
            if (trace_.send_overhead[r] < 0) {
              trace_.send_overhead[r] = op.complete - op.dispatch;
            }
          } else {
            // A rendezvous sender runs again when the CTS lands
            // (sender_complete); across nodes that is one wire latency
            // after the match, not the wire end itself.
            SOC_CHECK(op.complete == trace_.messages[op.msg].sender_complete,
                      "profiler: rendezvous send window mismatch");
          }
          break;
        case sim::OpKind::kRecv: {
          SOC_CHECK(op.msg >= 0, "profiler: unmatched recv");
          const sim::MessageRecord& m = trace_.messages[op.msg];
          if (m.eager) {
            // delivery, not the nominal wire end: switch output-port
            // queueing shifts when the payload actually lands.
            if (trace_.recv_overhead[r] < 0) {
              trace_.recv_overhead[r] =
                  op.complete - std::max(op.dispatch, m.delivery);
            }
          } else {
            SOC_CHECK(op.complete == m.delivery,
                      "profiler: rendezvous recv window mismatch");
          }
          break;
        }
        case sim::OpKind::kIsend:
          if (trace_.send_overhead[r] < 0) {
            trace_.send_overhead[r] = op.complete - op.dispatch;
          }
          window.push_back(oi);
          break;
        case sim::OpKind::kIrecv:
          if (trace_.recv_overhead[r] < 0) {
            trace_.recv_overhead[r] = op.complete - op.dispatch;
          }
          window.push_back(oi);
          break;
        case sim::OpKind::kWaitAll: {
          // Request completions, derived per request without needing any
          // cost-model constant: an isend completes locally with its
          // posting; an irecv completes at max(posting done, message
          // arrival + its own posting overhead).
          SimTime best = 0;
          int det = -1;
          for (const int qi : window) {
            const OpExec& q = trace_.ops[qi];
            SimTime done = q.complete;
            if (q.kind == sim::OpKind::kIrecv) {
              SOC_CHECK(q.msg >= 0, "profiler: unmatched irecv");
              done = std::max(done, trace_.messages[q.msg].delivery +
                                        (q.complete - q.dispatch));
            }
            if (done > best) {
              best = done;
              det = qi;
            }
          }
          window.clear();
          if (op.complete > op.dispatch) {
            SOC_CHECK(det >= 0 && best == op.complete,
                      "profiler: waitall completion mismatch");
            op.determinant = det;
          } else {
            SOC_CHECK(best <= op.complete,
                      "profiler: request outlived its waitall");
          }
          break;
        }
        default:
          break;
      }
    }
  }
}

}  // namespace soc::prof
