// Critical-path profiler, stage 3: what-if re-timing.
//
// evaluate() re-schedules a recorded RunTrace under a modified scenario
// WITHOUT re-running the engine: op durations and message costs are read
// back out of the trace itself, and the scheduling rules (event ordering,
// eager/rendezvous matching, NIC/fabric/GPU/copy serialization, request
// windows) mirror sim::Engine exactly.  Evaluating the unmodified
// ("measured") scenario therefore reproduces the recorded makespan to the
// nanosecond — analyze() asserts this round trip as `evaluator_exact` —
// and the ideal-network / ideal-balance scenarios reproduce the paper's
// DIMEMAS-style replays from one instrumented pass.
//
// The trace must come from a plain measured run (no engine Scenario), as
// cluster::run produces.
#pragma once

#include <vector>

#include "prof/profiler.h"

namespace soc::prof {

/// Scenario knobs for one re-timing.
struct WhatIf {
  /// Zero latency and transfer time, no NIC/fabric serialization; message
  /// overheads and all dependencies remain (the paper's ideal network).
  bool ideal_network = false;
  /// Infinite lanes: no GPU/copy queueing and no NIC/fabric queueing, but
  /// transfers still take their measured latency + wire time.
  bool uncontended = false;
  /// Per-rank compute multiplier (empty = 1.0), applied exactly as the
  /// engine applies Scenario::compute_scale.
  std::vector<double> compute_scale;
  /// DVFS state: relative frequency of the compute clocks (CPU + GPU).
  /// Durations of cpu/gpu lane ops scale by 1/dvfs_compute; 1.0 is the
  /// recorded state and is an exact identity (no rounding applied).
  double dvfs_compute = 1.0;
  /// Relative frequency of the memory clock: copy-lane ops scale by
  /// 1/dvfs_dram.  1.0 is an exact identity.
  double dvfs_dram = 1.0;
  /// Whole-cluster power cap in watts (0 = off).  The cap is evaluated
  /// on the measured power timeline by prof::retime() — bins over the
  /// cap dilate, the makespan stretches — and cannot be combined with
  /// the duration-changing knobs above (retime() throws).  evaluate()
  /// ignores it.
  double power_cap_w = 0.0;
};

/// Re-times the trace under the scenario; returns the projected makespan.
SimTime evaluate(const RunTrace& trace, const WhatIf& scenario);

/// The compute_scale vector that equalizes per-rank compute — the same
/// arithmetic as trace::ideal_balance_scales, so single-pass projections
/// are comparable with the replay-based ScenarioRuns.
std::vector<double> balance_scales(const sim::RunStats& stats);

}  // namespace soc::prof
