// Zero-residual scaling-loss attribution for the parallel engine.
//
// Given the engine's self-telemetry (sim/telemetry.h) from a serial run
// and a sharded run of the same configuration, explain_scaling()
// decomposes the core-seconds gap between them into named loss terms:
//
//   core_gap   = W * Tp - T1              (wasted core-nanoseconds)
//   imbalance  = W * busy_max - busy_sum  (waiting for the slowest shard)
//   barrier    = W * (step_wall - busy_max)   (window synchronization)
//   mailbox    = W * (drain + merge)      (serial cross-shard phases)
//   residual   = core_gap - imbalance - barrier - mailbox
//
// where W is the pool width, Tp/T1 the sharded/serial wall clocks, and
// busy_max/busy_sum fold each window's slowest worker / all workers
// (telescoped per window, so imbalance and barrier are provably
// non-negative: the coordinator's step_wall timestamps bracket every
// worker's busy span through the window barriers).  Everything is exact
// int64 nanosecond arithmetic — no division, no rounding — so the four
// terms sum to the measured gap *identically*; explain_scaling() asserts
// the identity and the sign invariants on every call.  The residual
// absorbs what sharding cannot touch (coordinator bookkeeping outside
// the timed phases, per-event work inflation) and may be negative when
// the sharded run is superlinear.
#pragma once

#include <cstdint>
#include <string>

#include "sim/telemetry.h"

namespace soc::prof {

/// Exact decomposition of one serial-vs-sharded wall-clock gap.
/// All *_ns fields are core-nanoseconds (wall ns scaled by `workers`).
struct ScalingDecomposition {
  int workers = 1;  ///< Pool width of the sharded run.
  int shards = 1;   ///< Shard count of the sharded run.

  std::int64_t serial_wall_ns = 0;   ///< T1.
  std::int64_t sharded_wall_ns = 0;  ///< Tp.
  double speedup = 0.0;              ///< T1 / Tp.
  double efficiency = 0.0;           ///< speedup / workers.

  std::int64_t core_gap_ns = 0;         ///< W*Tp - T1 (signed).
  std::int64_t imbalance_ns = 0;        ///< >= 0.
  std::int64_t barrier_ns = 0;          ///< >= 0.
  std::int64_t mailbox_merge_ns = 0;    ///< >= 0.
  std::int64_t serial_residual_ns = 0;  ///< Closes the sum; signed.
};

/// Decomposes the gap between a serial-engine run and a sharded run of
/// the same workload.  `serial` must come from a run with shards == 1;
/// `sharded` from a windowed run.  Throws soc::Error if the telemetry is
/// unusable (zero wall clock, wrong run shapes) or — defensively — if
/// the zero-residual identity or a sign invariant fails to hold.
ScalingDecomposition explain_scaling(const sim::EngineTelemetry& serial,
                                     const sim::EngineTelemetry& sharded);

/// Renders one decomposition as a compact single-line JSON object (no
/// trailing newline) for embedding in perf-report sample lines.
std::string scaling_json(const ScalingDecomposition& d);

}  // namespace soc::prof
