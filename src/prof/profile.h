// Critical-path profiler, stage 4: the profile artifact.
//
// analyze() rolls one reconstructed RunTrace into a Profile: the
// critical-path attribution, per-rank/ per-lane rollups, what-if
// projections (ideal network, ideal balance, uncontended lanes), and the
// single-pass LB/Ser/Trf efficiency decomposition (paper Eq. 4) — all
// from one instrumented run, no engine replays.
//
// profile_json() renders the deterministic `soccluster-critical-path/v1`
// document.  Every value in the artifact is an integer (nanoseconds, or
// parts-per-million fixed point computed in 128-bit integer arithmetic),
// so the bytes are identical across optimization levels, sanitizer
// builds, and host architectures; doubles appear only in the
// human-readable Factors mirror used for stdout tables.
// folded_stacks() renders the critical path as flamegraph-compatible
// folded lines ("rank;phase;category <ns>").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "prof/critical_path.h"
#include "prof/energy.h"
#include "prof/profiler.h"
#include "prof/whatif.h"

namespace soc::prof {

/// Double-precision LB/Ser/Trf mirror of core::decompose, for human
/// output.  The artifact carries only the ppm fixed-point versions.
struct Factors {
  double load_balance = 1.0;
  double serialization = 1.0;
  double transfer = 1.0;
  double efficiency = 1.0;
};

/// Everything the exporters and callers need from one profiled run.
struct Profile {
  Attribution attribution;
  obs::LaneUsage usage;  ///< Per-lane busy/blocked totals.

  int ranks = 0;
  int nodes = 0;
  SimTime makespan = 0;
  std::uint64_t event_checksum = 0;
  std::uint64_t events_committed = 0;

  /// What-if projections (makespans under re-timed scenarios).
  SimTime measured_eval = 0;  ///< evaluate() on the unmodified scenario.
  bool evaluator_exact = false;  ///< measured_eval == makespan (asserted).
  SimTime ideal_network = 0;
  SimTime ideal_balance = 0;
  SimTime uncontended = 0;

  /// Per-rank useful compute, integer ns (Σ phase_compute).
  SimTime compute_total = 0;
  SimTime compute_max = 0;

  Factors factors;

  /// Zero-residual joule attribution (set by cluster::run, which owns the
  /// node power config; analyze() alone leaves has_energy false).
  bool has_energy = false;
  EnergyAttribution energy;
};

/// Rolls a reconstructed trace into a Profile (attribution + three what-if
/// evaluations + efficiency factors).  Throws soc::Error if the measured
/// re-evaluation fails to reproduce the recorded makespan exactly.
Profile analyze(const RunTrace& trace);

/// The deterministic `soccluster-critical-path/v1` JSON document.
std::string profile_json(const Profile& profile);

/// Flamegraph-compatible folded stacks of the critical path: one line per
/// (rank, phase, category) in numeric order, weight in nanoseconds.
std::string folded_stacks(const Profile& profile);

/// Writes `text` to `path` (trailing newline already included by the
/// renderers); throws soc::Error on I/O failure.
void write_text(const std::string& path, const std::string& text);

}  // namespace soc::prof
