// Critical-path profiler, stage 1: trace reconstruction.
//
// Profiler is an EngineObserver that records the engine's committed
// dispatch/span/message streams during ONE instrumented run and, at run
// end, reconstructs the run's dependency DAG as a RunTrace: one OpExec
// per executed op, with its wall-clock window, its resource-service
// window (cpu/gpu/copy spans), and — for message ops — the committed
// MessageRecord plus the matching edge to the partner op.
//
// The reconstruction replays the engine's message-matching state machine
// over the merged dispatch/message commit stream (eager vs rendezvous,
// arrivals before parked senders, FIFO per (src, dst, tag) key), so every
// annotation is exact, not heuristic: downstream passes assert that
// reconstructed completion times tile the run with zero residual.
// Everything here is derived from the deterministic committed event
// stream — identical at any engine shard count — so equal configurations
// produce byte-identical traces.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/observers.h"
#include "sim/engine.h"
#include "sim/op.h"
#include "sim/stats.h"

namespace soc::prof {

/// One reconstructed op execution: a node of the dependency DAG.
struct OpExec {
  sim::OpKind kind = sim::OpKind::kCpuCompute;
  int rank = 0;
  int node = 0;
  int phase = 0;
  int peer = -1;   ///< Partner rank (message ops).
  int tag = 0;     ///< Message tag (message ops).
  std::int32_t pc = 0;  ///< Op index in the rank's program.
  Bytes bytes = 0;
  SimTime dispatch = 0;  ///< First dispatch time (the op's window start).
  SimTime complete = 0;  ///< The rank's next dispatch (the window end).
  // Lane-backed ops (cpu/gpu/copy): service window from the span stream;
  // busy_start - dispatch is queue wait on the node's shared lane.
  SimTime busy_start = 0;
  SimTime busy_end = 0;
  // Message-backed ops: the committed transfer and the matching edge.
  int msg = -1;      ///< Index into RunTrace::messages (-1 = none).
  int partner = -1;  ///< Global index of the matching endpoint's op.
  /// When the partner bound this op: the partner's dispatch time.  At
  /// most `dispatch` when the partner acted first; later than `dispatch`
  /// exactly when this op parked waiting for it.
  SimTime partner_ready = 0;
  /// kWaitAll only: the request op (global index) whose completion set
  /// this wait's finish time; -1 when the wait completed instantly.
  int determinant = -1;
};

/// Everything the attribution/what-if passes need from one observed run.
struct RunTrace {
  sim::Placement placement;
  sim::EngineConfig config;
  sim::RunStats stats;
  std::vector<sim::MessageRecord> messages;  ///< In commit order.
  std::vector<OpExec> ops;                   ///< In first-dispatch order.
  std::vector<std::vector<int>> rank_ops;    ///< Per-rank program order.
  std::vector<SimTime> finish;               ///< Per-rank drain time.
  /// Per-rank messaging overhead constants derived from the stream
  /// (-1 = the rank never exercised that overhead, and no pass needs it).
  std::vector<SimTime> send_overhead;
  std::vector<SimTime> recv_overhead;
  obs::LaneUsage usage;  ///< Per-lane busy/blocked totals.
};

/// EngineObserver that buffers the event streams and builds the RunTrace.
/// Reusable across runs (each on_run_begin resets); attach via
/// Engine::set_observer or cluster::RunRequest's profile sinks.
class Profiler : public sim::EngineObserver {
 public:
  void on_run_begin(const sim::Placement& placement,
                    const sim::EngineConfig& config) override;
  void on_dispatch(const sim::DispatchRecord& record) override;
  void on_span(const sim::SpanRecord& span) override;
  void on_message(const sim::MessageRecord& message) override;
  void on_run_end(const sim::RunStats& stats) override;

  /// The reconstructed trace; valid once a run has ended.
  const RunTrace& trace() const;

 private:
  void build();

  RunTrace trace_;
  std::vector<sim::DispatchRecord> dispatches_;
  std::vector<sim::SpanRecord> spans_;
  /// Interleaved commit order of the dispatch and message streams: entry
  /// v >= 0 is dispatches_[v], entry v < 0 is trace_.messages[~v].  The
  /// engine commits a transfer at its *arrival or match* event — which
  /// for cross-node traffic is later than the causing send dispatch — so
  /// reconstruction replays this merged stream rather than assuming each
  /// message belongs to the preceding dispatch.
  std::vector<std::int64_t> order_;
  bool built_ = false;
};

}  // namespace soc::prof
