#include "prof/selfprof.h"

#include "common/error.h"
#include "obs/json.h"

namespace soc::prof {

ScalingDecomposition explain_scaling(const sim::EngineTelemetry& serial,
                                     const sim::EngineTelemetry& sharded) {
  SOC_CHECK(serial.shards == 1,
            "explain_scaling: serial telemetry must come from a one-shard run");
  SOC_CHECK(sharded.windowed,
            "explain_scaling: sharded telemetry must come from a windowed run");
  SOC_CHECK(serial.wall_total_ns > 0 && sharded.wall_total_ns > 0,
            "explain_scaling: telemetry has no wall-clock measurements");
  SOC_CHECK(sharded.workers >= 1, "explain_scaling: bad worker count");

  const auto w = static_cast<std::int64_t>(sharded.workers);
  const auto t1 = static_cast<std::int64_t>(serial.wall_total_ns);
  const auto tp = static_cast<std::int64_t>(sharded.wall_total_ns);
  const auto busy_max = static_cast<std::int64_t>(sharded.busy_max_ns);
  const auto busy_sum = static_cast<std::int64_t>(sharded.busy_sum_ns);
  const auto step_wall = static_cast<std::int64_t>(sharded.step_wall_ns);
  const auto drain = static_cast<std::int64_t>(sharded.drain_wall_ns);
  const auto merge = static_cast<std::int64_t>(sharded.merge_wall_ns);

  ScalingDecomposition d;
  d.workers = sharded.workers;
  d.shards = sharded.shards;
  d.serial_wall_ns = t1;
  d.sharded_wall_ns = tp;
  d.speedup = static_cast<double>(t1) / static_cast<double>(tp);
  d.efficiency = d.speedup / static_cast<double>(sharded.workers);

  d.core_gap_ns = w * tp - t1;
  d.imbalance_ns = w * busy_max - busy_sum;
  d.barrier_ns = w * (step_wall - busy_max);
  d.mailbox_merge_ns = w * (drain + merge);
  d.serial_residual_ns =
      d.core_gap_ns - d.imbalance_ns - d.barrier_ns - d.mailbox_merge_ns;

  // The measurement placement guarantees these (step_wall timestamps
  // bracket every worker's busy span through the barriers); a violation
  // means the engine's instrumentation regressed, not a noisy machine.
  SOC_CHECK(d.imbalance_ns >= 0,
            "explain_scaling: negative imbalance term (busy_sum > W*busy_max)");
  SOC_CHECK(d.barrier_ns >= 0,
            "explain_scaling: negative barrier term (busy_max > step_wall)");
  SOC_CHECK(d.mailbox_merge_ns >= 0,
            "explain_scaling: negative mailbox/merge term");
  SOC_CHECK(d.imbalance_ns + d.barrier_ns + d.mailbox_merge_ns +
                    d.serial_residual_ns ==
                d.core_gap_ns,
            "explain_scaling: decomposition does not sum to the gap");
  return d;
}

std::string scaling_json(const ScalingDecomposition& d) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("workers", d.workers);
  w.field("shards", d.shards);
  w.field("serial_wall_ns", d.serial_wall_ns);
  w.field("sharded_wall_ns", d.sharded_wall_ns);
  w.field("speedup", d.speedup);
  w.field("efficiency", d.efficiency);
  w.field("core_gap_ns", d.core_gap_ns);
  w.field("imbalance_ns", d.imbalance_ns);
  w.field("barrier_ns", d.barrier_ns);
  w.field("mailbox_merge_ns", d.mailbox_merge_ns);
  w.field("serial_residual_ns", d.serial_residual_ns);
  w.end_object();
  return w.str();
}

}  // namespace soc::prof
