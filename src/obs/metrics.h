// Deterministic run-metrics registry.
//
// The registry carries the run detail RunStats drops: protocol mix,
// per-resource queue-wait distributions, pending-message high-water marks,
// per-phase traffic.  Everything is integer-valued (nanoseconds, bytes,
// counts) and stored in ordered containers, so two replays of the same
// configuration produce equal registries and byte-identical JSON — the
// registry inherits the engine's determinism promise, and
// tests/determinism_test.cpp asserts it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace soc::obs {

/// Fixed-bucket histogram over int64 samples (ns or bytes).  `bounds` are
/// inclusive upper edges in ascending order; one implicit overflow bucket
/// catches everything above the last edge.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<std::int64_t> bounds);

  void observe(std::int64_t v);

  std::uint64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t max() const { return max_; }
  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  bool operator==(const Histogram&) const = default;

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t max_ = 0;
};

/// Bucket edges for queue-wait histograms: 1us … 1s in decades (ns).
const std::vector<std::int64_t>& wait_bounds_ns();

/// Bucket edges for message-size histograms: 256B … 16MiB (bytes).
const std::vector<std::int64_t>& size_bounds_bytes();

/// Named counters, gauges, and fixed-bucket histograms in ordered storage.
class MetricsRegistry {
 public:
  /// Adds `delta` to the named counter (created at zero).
  void add(std::string_view name, std::int64_t delta = 1);
  /// Sets the named gauge.
  void set(std::string_view name, std::int64_t v);
  /// Raises the named gauge to `v` if larger (high-water mark semantics;
  /// created at `v`).
  void set_max(std::string_view name, std::int64_t v);
  /// Returns the named histogram, creating it with `bounds` on first use.
  Histogram& histogram(std::string_view name,
                       const std::vector<std::int64_t>& bounds);

  /// Reads (0 / nullptr when absent).
  std::int64_t counter(std::string_view name) const;
  std::int64_t gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  void clear();

  bool operator==(const MetricsRegistry&) const = default;

  /// Emits {"counters":{...},"gauges":{...},"histograms":{...}} with keys
  /// in lexicographic order.
  void write_json(JsonWriter& w) const;
  /// The whole registry as one canonical JSON object.
  std::string json() const;
  /// Human-readable rendering for `socbench run --metrics`.
  std::string table() const;

 private:
  std::map<std::string, std::int64_t, std::less<>> counters_;
  std::map<std::string, std::int64_t, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace soc::obs
