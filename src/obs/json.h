// Minimal deterministic JSON writer.
//
// Everything the observability layer emits — Chrome traces, run reports,
// bench artifacts — must be byte-identical across replays of the same
// configuration, so this writer is deliberately dumb: keys and values are
// emitted in caller order (callers iterate ordered containers), output is
// compact except for caller-placed newlines, doubles render via
// shortest-round-trip std::to_chars (no locale, no platform printf
// variance), and strings are escaped per RFC 8259.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace soc::obs {

/// Returns `s` quoted and escaped as a JSON string literal.
std::string json_quote(std::string_view s);

/// Streaming writer for one JSON document.  Misuse (e.g. a value with no
/// pending key inside an object) throws soc::Error.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits the key of the next object member.
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  /// Shortest-round-trip decimal form; non-finite values emit null.
  void value(double v);
  /// Emits a pre-rendered JSON token verbatim (caller guarantees it is a
  /// valid value — used for fixed-point decimals rendered by integer math).
  void value_raw(std::string_view token);

  /// key() + value() in one call.
  template <typename T>
  void field(std::string_view k, T v) {
    key(k);
    value(v);
  }

  /// Inserts a newline (pure whitespace; keeps large arrays diffable).
  void newline();

  /// The document so far; complete once every container is closed.
  const std::string& str() const { return out_; }

 private:
  void separate();  ///< Emits ',' between siblings; balances key state.

  std::string out_;
  std::vector<char> stack_;  ///< '{' or '[' per open container.
  std::vector<bool> first_;  ///< Next element is the container's first.
  bool have_key_ = false;
};

}  // namespace soc::obs
