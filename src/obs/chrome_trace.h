// Chrome trace-event exporter.
//
// Records the engine's span stream and serializes it in the Chrome
// trace-event JSON format (the `traceEvents` array of `X` duration
// events), loadable in Perfetto / chrome://tracing.  Mapping:
//
//   pid  = node id (one process row per node)
//   tid  = rank id for CPU spans; kLaneTidBase + lane for the node's
//          shared resource lanes (gpu, copy, nic-tx, nic-rx)
//   ts / dur = microseconds, rendered fixed-point from integer
//          nanoseconds so output is byte-identical across replays
//
// Metadata (`M`) events name every process and thread before the first
// duration event.  Matched inter-node messages additionally emit flow
// `s`/`f` pairs (one arrow per committed transfer, from the sender's
// rank row at the transfer start to the receiver's rank row at the
// transfer end), with ids assigned in commit order so the document stays
// byte-identical across replays.
#pragma once

#include <string>
#include <vector>

#include "obs/json.h"
#include "sim/engine.h"

namespace soc::obs {

/// tid offset for resource lanes, keeping them clear of real rank ids.
inline constexpr int kLaneTidBase = 1000000;

/// Renders integer nanoseconds as fixed-point microseconds ("12.345").
/// Integer math end to end, so the rendering is platform-independent.
/// Shared by the sim-time exporter below and the engine's wall-clock
/// trace (obs/engine_telemetry.h).
std::string trace_micros(std::int64_t ns);

/// Emits one Chrome `M` metadata event naming a process (tid < 0) or a
/// thread row.
void trace_meta_event(JsonWriter& w, const char* name, int pid, int tid,
                      const std::string& arg_name);

/// EngineObserver that buffers spans and renders the trace JSON.
/// Reusable across runs: each on_run_begin drops prior spans.
class ChromeTraceRecorder : public sim::EngineObserver {
 public:
  void on_run_begin(const sim::Placement& placement,
                    const sim::EngineConfig& config) override;
  void on_span(const sim::SpanRecord& span) override;
  void on_message(const sim::MessageRecord& message) override;

  std::size_t span_count() const { return spans_.size(); }
  std::size_t message_count() const { return messages_.size(); }

  /// Renders the complete trace document (ends with a newline).
  std::string json() const;

  /// Writes json() to `path`; throws soc::Error on I/O failure.
  void write(const std::string& path) const;

 private:
  sim::Placement placement_;
  std::vector<sim::SpanRecord> spans_;
  std::vector<sim::MessageRecord> messages_;
};

}  // namespace soc::obs
