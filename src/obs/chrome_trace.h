// Chrome trace-event exporter.
//
// Records the engine's span stream and serializes it in the Chrome
// trace-event JSON format (the `traceEvents` array of `X` duration
// events), loadable in Perfetto / chrome://tracing.  Mapping:
//
//   pid  = node id (one process row per node)
//   tid  = rank id for CPU spans; kLaneTidBase + lane for the node's
//          shared resource lanes (gpu, copy, nic-tx, nic-rx)
//   ts / dur = microseconds, rendered fixed-point from integer
//          nanoseconds so output is byte-identical across replays
//
// Metadata (`M`) events name every process and thread before the first
// duration event.
#pragma once

#include <string>
#include <vector>

#include "sim/engine.h"

namespace soc::obs {

/// tid offset for resource lanes, keeping them clear of real rank ids.
inline constexpr int kLaneTidBase = 1000000;

/// EngineObserver that buffers spans and renders the trace JSON.
/// Reusable across runs: each on_run_begin drops prior spans.
class ChromeTraceRecorder : public sim::EngineObserver {
 public:
  void on_run_begin(const sim::Placement& placement,
                    const sim::EngineConfig& config) override;
  void on_span(const sim::SpanRecord& span) override;

  std::size_t span_count() const { return spans_.size(); }

  /// Renders the complete trace document (ends with a newline).
  std::string json() const;

  /// Writes json() to `path`; throws soc::Error on I/O failure.
  void write(const std::string& path) const;

 private:
  sim::Placement placement_;
  std::vector<sim::SpanRecord> spans_;
};

}  // namespace soc::obs
