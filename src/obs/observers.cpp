#include "obs/observers.h"

#include <algorithm>
#include <string>

namespace soc::obs {

namespace {

const char* wait_metric_for(sim::Lane lane) {
  switch (lane) {
    case sim::Lane::kGpu: return "wait.gpu";
    case sim::Lane::kCopy: return "wait.copy";
    case sim::Lane::kNicTx: return "wait.nic_tx";
    case sim::Lane::kNicRx: return "wait.nic_rx";
    default: return nullptr;  // CPU spans never queue.
  }
}

}  // namespace

void LaneUsage::clear() {
  busy.fill(0);
  blocked.fill(0);
}

void LaneUsage::add(const sim::SpanRecord& span) {
  const std::size_t lane = static_cast<std::size_t>(span.lane);
  busy[lane] += span.end - span.start;
  blocked[lane] += span.queue_wait;
}

SimTime LaneUsage::idle(sim::Lane lane, int ranks, int nodes,
                        SimTime makespan) const {
  const int rows = lane == sim::Lane::kCpu ? ranks : nodes;
  const SimTime capacity = static_cast<SimTime>(rows) * makespan;
  return std::max<SimTime>(capacity - lane_busy(lane), 0);
}

const char* lane_metric_name(sim::Lane lane) {
  switch (lane) {
    case sim::Lane::kNicTx: return "nic_tx";
    case sim::Lane::kNicRx: return "nic_rx";
    default: return sim::lane_name(lane);
  }
}

void MetricsObserver::on_run_begin(const sim::Placement& placement,
                                   const sim::EngineConfig& config) {
  registry_.clear();
  usage_.clear();
  ranks_ = placement.ranks;
  nodes_ = placement.nodes;
  registry_.set("run.ranks", placement.ranks);
  registry_.set("run.nodes", placement.nodes);
  registry_.set("run.eager_threshold_bytes",
                static_cast<std::int64_t>(config.eager_threshold));
  registry_.set("pending.sends.high_water", 0);
  registry_.set("pending.recvs.high_water", 0);
}

void MetricsObserver::on_dispatch(const sim::DispatchRecord& record) {
  if (record.kind == 0xFF) {
    registry_.add("ops.rank_done");
    return;
  }
  registry_.add(std::string("ops.") +
                sim::op_kind_name(static_cast<sim::OpKind>(record.kind)));
}

void MetricsObserver::on_span(const sim::SpanRecord& span) {
  usage_.add(span);
  if (const char* metric = wait_metric_for(span.lane)) {
    registry_.histogram(metric, wait_bounds_ns()).observe(span.queue_wait);
  }
  // Fabric waits only on the rx side so switch output-port queueing is
  // counted once per transfer, not once per NIC endpoint.  (The port
  // pipe is booked at the receiving node, so the rx span is the one that
  // always carries the wait.)
  if (span.lane == sim::Lane::kNicRx) {
    registry_.histogram("wait.fabric", wait_bounds_ns())
        .observe(span.fabric_wait);
  }
}

void MetricsObserver::on_message(const sim::MessageRecord& message) {
  const std::int64_t bytes = static_cast<std::int64_t>(message.bytes);
  if (message.eager) {
    registry_.add("msg.eager");
    registry_.add("msg.eager_bytes", bytes);
  } else {
    registry_.add("msg.rendezvous");
    registry_.add("msg.rendezvous_bytes", bytes);
  }
  registry_.add(message.inter_node ? "msg.inter_node" : "msg.intra_node");
  registry_.add("phase." + std::to_string(message.phase) + ".msg_bytes",
                bytes);
  registry_.histogram("msg.bytes", size_bounds_bytes()).observe(bytes);
}

void MetricsObserver::on_pending(int pending_sends, int pending_recvs) {
  registry_.set_max("pending.sends.high_water", pending_sends);
  registry_.set_max("pending.recvs.high_water", pending_recvs);
}

void MetricsObserver::on_run_end(const sim::RunStats& stats) {
  registry_.set("run.makespan_ns", stats.makespan);
  registry_.set("run.events_committed",
                static_cast<std::int64_t>(stats.events_committed));
  registry_.set("run.net_bytes",
                static_cast<std::int64_t>(stats.total_net_bytes));
  registry_.set("run.dram_bytes",
                static_cast<std::int64_t>(stats.total_dram_bytes));
  for (std::size_t i = 0; i < sim::kLaneCount; ++i) {
    const sim::Lane lane = static_cast<sim::Lane>(i);
    const std::string prefix = std::string("util.") + lane_metric_name(lane);
    registry_.set(prefix + ".busy_ns", usage_.lane_busy(lane));
    registry_.set(prefix + ".blocked_ns", usage_.lane_blocked(lane));
    registry_.set(prefix + ".idle_ns",
                  usage_.idle(lane, ranks_, nodes_, stats.makespan));
  }
}

void ObserverList::add(sim::EngineObserver* observer) {
  if (observer != nullptr) observers_.push_back(observer);
}

void ObserverList::on_run_begin(const sim::Placement& placement,
                                const sim::EngineConfig& config) {
  for (auto* o : observers_) o->on_run_begin(placement, config);
}

void ObserverList::on_dispatch(const sim::DispatchRecord& record) {
  for (auto* o : observers_) o->on_dispatch(record);
}

void ObserverList::on_span(const sim::SpanRecord& span) {
  for (auto* o : observers_) o->on_span(span);
}

void ObserverList::on_message(const sim::MessageRecord& message) {
  for (auto* o : observers_) o->on_message(message);
}

void ObserverList::on_pending(int pending_sends, int pending_recvs) {
  for (auto* o : observers_) o->on_pending(pending_sends, pending_recvs);
}

void ObserverList::on_run_end(const sim::RunStats& stats) {
  for (auto* o : observers_) o->on_run_end(stats);
}

}  // namespace soc::obs
