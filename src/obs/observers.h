// Concrete EngineObserver implementations.
//
// MetricsObserver turns the engine's committed event stream into a
// MetricsRegistry; ObserverList fans one engine hook out to several
// consumers (e.g. metrics + a Chrome trace in the same run).
#pragma once

#include <array>
#include <vector>

#include "obs/metrics.h"
#include "sim/engine.h"

namespace soc::obs {

/// Per-lane busy/blocked accumulator over the span stream.  Shared by
/// MetricsObserver (the util.* counters) and the critical-path profiler's
/// utilization block so both report the same integer-nanosecond totals.
struct LaneUsage {
  std::array<SimTime, sim::kLaneCount> busy{};     ///< Sum of span widths.
  std::array<SimTime, sim::kLaneCount> blocked{};  ///< Sum of queue waits.

  void clear();
  void add(const sim::SpanRecord& span);
  SimTime lane_busy(sim::Lane lane) const {
    return busy[static_cast<std::size_t>(lane)];
  }
  SimTime lane_blocked(sim::Lane lane) const {
    return blocked[static_cast<std::size_t>(lane)];
  }
  /// Idle time of a lane over one run: rows × makespan − busy, clamped at
  /// zero (eager transmit spans include their in-flight tail and can
  /// overlap).  The cpu lane has one row per rank; the shared lanes one
  /// per node.
  SimTime idle(sim::Lane lane, int ranks, int nodes, SimTime makespan) const;
};

/// Stable metric-name spelling for a lane ("cpu", "gpu", "copy", "nic_tx",
/// "nic_rx") — lane_name() with '-' flattened to '_'.
const char* lane_metric_name(sim::Lane lane);

/// Populates a MetricsRegistry from the engine's event stream:
///
///   counters    ops.<kind> (committed dispatches per op kind),
///               msg.eager / msg.rendezvous (+ .bytes),
///               msg.inter_node / msg.intra_node,
///               phase.<p>.msg_bytes (per-phase message traffic),
///               util.<lane>.busy_ns / .blocked_ns / .idle_ns
///               (per-lane utilization, integer nanoseconds)
///   gauges      run.ranks, run.nodes, run.makespan_ns,
///               run.events_committed,
///               pending.sends.high_water / pending.recvs.high_water
///   histograms  wait.gpu / wait.copy / wait.nic_tx / wait.nic_rx /
///               wait.fabric (queue-wait ns), msg.bytes (message sizes)
///
/// Reusable across runs: each on_run_begin clears the registry.
class MetricsObserver : public sim::EngineObserver {
 public:
  void on_run_begin(const sim::Placement& placement,
                    const sim::EngineConfig& config) override;
  void on_dispatch(const sim::DispatchRecord& record) override;
  void on_span(const sim::SpanRecord& span) override;
  void on_message(const sim::MessageRecord& message) override;
  void on_pending(int pending_sends, int pending_recvs) override;
  void on_run_end(const sim::RunStats& stats) override;

  const MetricsRegistry& registry() const { return registry_; }
  MetricsRegistry& registry() { return registry_; }

 private:
  MetricsRegistry registry_;
  LaneUsage usage_;
  int ranks_ = 0;
  int nodes_ = 0;
};

/// Forwards every hook to each registered observer, in registration order.
class ObserverList : public sim::EngineObserver {
 public:
  /// Registers a (non-owning) observer; nullptr is ignored.
  void add(sim::EngineObserver* observer);
  bool empty() const { return observers_.empty(); }

  void on_run_begin(const sim::Placement& placement,
                    const sim::EngineConfig& config) override;
  void on_dispatch(const sim::DispatchRecord& record) override;
  void on_span(const sim::SpanRecord& span) override;
  void on_message(const sim::MessageRecord& message) override;
  void on_pending(int pending_sends, int pending_recvs) override;
  void on_run_end(const sim::RunStats& stats) override;

 private:
  std::vector<sim::EngineObserver*> observers_;
};

}  // namespace soc::obs
