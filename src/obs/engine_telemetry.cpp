#include "obs/engine_telemetry.h"

#include <cstdint>

#include "obs/chrome_trace.h"
#include "obs/json.h"

namespace soc::obs {

namespace {

/// Shard-count-invariant aggregates of the per-shard counters.
struct CounterTotals {
  std::uint64_t events_processed = 0;
  std::uint64_t wakes = 0;
  std::uint64_t ops_fetched = 0;
  std::uint64_t protos_arrival = 0;
  std::uint64_t protos_rts = 0;
  std::uint64_t protos_cts = 0;
};

CounterTotals totals(const sim::EngineTelemetry& t) {
  CounterTotals sum;
  for (const sim::ShardCounters& s : t.shard) {
    sum.events_processed += s.events_processed;
    sum.wakes += s.wakes;
    sum.ops_fetched += s.ops_fetched;
    sum.protos_arrival += s.protos_arrival;
    sum.protos_rts += s.protos_rts;
    sum.protos_cts += s.protos_cts;
  }
  return sum;
}

/// The members of the deterministic counter section, shared verbatim by
/// the standalone counters document and the full artifact (so the CI
/// byte-compare and the full artifact can never drift apart).
void counters_body(JsonWriter& w, const sim::EngineTelemetry& t) {
  const CounterTotals sum = totals(t);
  w.field("events_committed", t.events_committed);
  w.field("events_processed", sum.events_processed);
  w.field("ops_fetched", sum.ops_fetched);
  w.field("wakes", sum.wakes);
  w.field("commit_records", t.commit_records);
  w.key("protocol");
  w.begin_object();
  w.field("arrival", sum.protos_arrival);
  w.field("rts", sum.protos_rts);
  w.field("cts", sum.protos_cts);
  w.end_object();
}

}  // namespace

std::string engine_counters_json(const sim::EngineTelemetry& t) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "soccluster-engine-telemetry-counters/v1");
  w.field("deterministic", true);
  counters_body(w, t);
  w.end_object();
  std::string out = w.str();
  out += '\n';
  return out;
}

std::string engine_telemetry_json(const sim::EngineTelemetry& t) {
  JsonWriter w;
  w.begin_object();
  w.field("schema", "soccluster-engine-telemetry/v1");

  // Section 1: shard/thread/build-invariant counters.
  w.newline();
  w.key("counters");
  w.begin_object();
  w.field("deterministic", true);
  counters_body(w, t);
  w.end_object();

  // Section 2: deterministic at a fixed shard count only.
  w.newline();
  w.key("sharding");
  w.begin_object();
  w.field("deterministic_at_fixed_shards", true);
  w.field("shards", t.shards);
  w.field("windowed", t.windowed);
  w.field("lookahead_ns", t.lookahead);
  w.field("windows", t.windows);
  w.key("per_shard");
  w.begin_array();
  for (std::size_t s = 0; s < t.shard.size(); ++s) {
    const sim::ShardCounters& c = t.shard[s];
    w.newline();
    w.begin_object();
    w.field("shard", static_cast<std::int64_t>(s));
    w.field("events_processed", c.events_processed);
    w.field("wakes", c.wakes);
    w.field("ops_fetched", c.ops_fetched);
    w.field("protos_arrival", c.protos_arrival);
    w.field("protos_rts", c.protos_rts);
    w.field("protos_cts", c.protos_cts);
    w.field("cross_shard_sent", c.cross_shard_sent);
    w.field("queue_high_water", c.queue_high_water);
    w.field("windows_stepped", c.windows_stepped);
    w.field("empty_windows", c.empty_windows);
    w.key("mailbox_sent");
    w.begin_array();
    for (const std::uint64_t n : c.mailbox_sent) w.value(n);
    w.end_array();
    w.end_object();
  }
  w.newline();
  w.end_array();
  w.end_object();

  // Section 3: wall clock — honest about being machine- and run-variant.
  w.newline();
  w.key("timing");
  w.begin_object();
  w.field("deterministic", false);
  w.field("workers", t.workers);
  w.field("wall_total_ns", t.wall_total_ns);
  w.field("step_wall_ns", t.step_wall_ns);
  w.field("busy_max_ns", t.busy_max_ns);
  w.field("busy_sum_ns", t.busy_sum_ns);
  w.field("drain_wall_ns", t.drain_wall_ns);
  w.field("merge_wall_ns", t.merge_wall_ns);
  w.key("worker_busy_ns");
  w.begin_array();
  for (const std::uint64_t n : t.worker_busy_ns) w.value(n);
  w.end_array();
  w.key("worker_barrier_ns");
  w.begin_array();
  for (const std::uint64_t n : t.worker_barrier_ns) w.value(n);
  w.end_array();
  w.field("spans", static_cast<std::uint64_t>(t.spans.size()));
  w.field("spans_dropped", t.spans_dropped);
  w.end_object();

  w.newline();
  w.end_object();
  std::string out = w.str();
  out += '\n';
  return out;
}

std::string engine_wallclock_trace_json(const sim::EngineTelemetry& t) {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  w.newline();
  // One process ("engine"), one thread row per execution lane: the
  // coordinator plus every pool worker that recorded spans.
  trace_meta_event(w, "process_name", 0, -1, "soccluster engine");
  trace_meta_event(w, "thread_name", 0, 0, "coordinator");
  const int workers = static_cast<int>(t.worker_barrier_ns.size());
  for (int lane = 1; lane <= workers; ++lane) {
    trace_meta_event(w, "thread_name", 0, lane,
                     "worker " + std::to_string(lane - 1));
  }
  for (const sim::EngineSpan& s : t.spans) {
    w.begin_object();
    w.field("name", sim::engine_span_kind_name(s.kind));
    w.field("cat", "engine");
    w.field("ph", "X");
    w.field("pid", 0);
    w.field("tid", s.lane);
    w.key("ts");
    w.value_raw(trace_micros(static_cast<std::int64_t>(s.begin_ns)));
    w.key("dur");
    w.value_raw(
        trace_micros(static_cast<std::int64_t>(s.end_ns - s.begin_ns)));
    w.key("args");
    w.begin_object();
    w.field("window", s.window);
    w.end_object();
    w.end_object();
    w.newline();
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
  std::string out = w.str();
  out += '\n';
  return out;
}

}  // namespace soc::obs
