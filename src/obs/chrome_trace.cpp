#include "obs/chrome_trace.h"

#include <fstream>

#include "common/error.h"
#include "obs/json.h"
#include "sim/op.h"

namespace soc::obs {

std::string trace_micros(std::int64_t ns) {
  const auto frac = static_cast<int>(ns % 1000);
  std::string out = std::to_string(ns / 1000);
  out += '.';
  out += static_cast<char>('0' + frac / 100);
  out += static_cast<char>('0' + (frac / 10) % 10);
  out += static_cast<char>('0' + frac % 10);
  return out;
}

void trace_meta_event(JsonWriter& w, const char* name, int pid, int tid,
                      const std::string& arg_name) {
  w.begin_object();
  w.field("name", name);
  w.field("ph", "M");
  w.field("pid", pid);
  if (tid >= 0) w.field("tid", tid);
  w.key("args");
  w.begin_object();
  w.field("name", std::string_view(arg_name));
  w.end_object();
  w.end_object();
  w.newline();
}

void ChromeTraceRecorder::on_run_begin(const sim::Placement& placement,
                                       const sim::EngineConfig& /*config*/) {
  placement_ = placement;
  spans_.clear();
  messages_.clear();
}

void ChromeTraceRecorder::on_span(const sim::SpanRecord& span) {
  spans_.push_back(span);
}

void ChromeTraceRecorder::on_message(const sim::MessageRecord& message) {
  messages_.push_back(message);
}

std::string ChromeTraceRecorder::json() const {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  w.newline();
  // Name every process (node) and thread (rank row + resource lanes).
  for (int node = 0; node < placement_.nodes; ++node) {
    trace_meta_event(w, "process_name", node, -1, "node " + std::to_string(node));
    for (const sim::Lane lane : {sim::Lane::kGpu, sim::Lane::kCopy,
                                 sim::Lane::kNicTx, sim::Lane::kNicRx}) {
      trace_meta_event(w, "thread_name", node,
                 kLaneTidBase + static_cast<int>(lane),
                 sim::lane_name(lane));
    }
  }
  for (int rank = 0; rank < placement_.ranks; ++rank) {
    trace_meta_event(w, "thread_name", placement_.node_of[rank], rank,
               "rank " + std::to_string(rank));
  }
  for (const sim::SpanRecord& s : spans_) {
    const int tid = s.lane == sim::Lane::kCpu
                        ? s.rank
                        : kLaneTidBase + static_cast<int>(s.lane);
    w.begin_object();
    w.field("name",
            sim::op_kind_name(static_cast<sim::OpKind>(s.kind)));
    w.field("cat", sim::lane_name(s.lane));
    w.field("ph", "X");
    w.field("pid", s.node);
    w.field("tid", tid);
    w.key("ts");
    w.value_raw(trace_micros(s.start));
    w.key("dur");
    w.value_raw(trace_micros(s.end - s.start));
    w.key("args");
    w.begin_object();
    w.field("rank", s.rank);
    w.field("phase", s.phase);
    w.field("bytes", static_cast<std::int64_t>(s.bytes));
    w.field("queue_wait_ns", s.queue_wait);
    w.field("fabric_wait_ns", s.fabric_wait);
    w.end_object();
    w.end_object();
    w.newline();
  }
  // Flow arrows for matched inter-node messages: `s` on the sender's rank
  // row at transfer start, `f` (binding point "e": attach to the
  // enclosing slice) on the receiver's row at transfer end.  Ids are the
  // message's commit index, so identical runs render identical bytes.
  std::int64_t flow_id = 0;
  for (const sim::MessageRecord& m : messages_) {
    if (!m.inter_node) {
      ++flow_id;
      continue;
    }
    const int src_node = placement_.node_of[static_cast<std::size_t>(m.src_rank)];
    const int dst_node = placement_.node_of[static_cast<std::size_t>(m.dst_rank)];
    w.begin_object();
    w.field("name", m.eager ? "eager" : "rendezvous");
    w.field("cat", "msg");
    w.field("ph", "s");
    w.field("id", flow_id);
    w.field("pid", src_node);
    w.field("tid", m.src_rank);
    w.key("ts");
    w.value_raw(trace_micros(m.start));
    w.key("args");
    w.begin_object();
    w.field("bytes", static_cast<std::int64_t>(m.bytes));
    w.field("tag", m.tag);
    w.end_object();
    w.end_object();
    w.newline();
    w.begin_object();
    w.field("name", m.eager ? "eager" : "rendezvous");
    w.field("cat", "msg");
    w.field("ph", "f");
    w.field("bp", "e");
    w.field("id", flow_id);
    w.field("pid", dst_node);
    w.field("tid", m.dst_rank);
    w.key("ts");
    w.value_raw(trace_micros(m.end));
    w.key("args");
    w.begin_object();
    w.field("bytes", static_cast<std::int64_t>(m.bytes));
    w.field("tag", m.tag);
    w.end_object();
    w.end_object();
    w.newline();
    ++flow_id;
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
  std::string out = w.str();
  out += '\n';
  return out;
}

void ChromeTraceRecorder::write(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  SOC_CHECK(f.good(), "cannot open trace file for writing: " + path);
  const std::string doc = json();
  f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  SOC_CHECK(f.good(), "failed writing trace file: " + path);
}

}  // namespace soc::obs
