#include "obs/json.h"

#include <charconv>
#include <cmath>

#include "common/error.h"

namespace soc::obs {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::separate() {
  if (have_key_) {
    // Object member value follows its key; no comma needed.
    have_key_ = false;
    return;
  }
  if (stack_.empty()) return;  // Top-level (single-value document).
  SOC_CHECK(stack_.back() == '[',
            "json: object member emitted without a key");
  if (!first_.back()) out_ += ',';
  first_.back() = false;
}

void JsonWriter::begin_object() {
  separate();
  out_ += '{';
  stack_.push_back('{');
  first_.push_back(true);
}

void JsonWriter::end_object() {
  SOC_CHECK(!stack_.empty() && stack_.back() == '{' && !have_key_,
            "json: end_object with no open object");
  out_ += '}';
  stack_.pop_back();
  first_.pop_back();
}

void JsonWriter::begin_array() {
  separate();
  out_ += '[';
  stack_.push_back('[');
  first_.push_back(true);
}

void JsonWriter::end_array() {
  SOC_CHECK(!stack_.empty() && stack_.back() == '[',
            "json: end_array with no open array");
  out_ += ']';
  stack_.pop_back();
  first_.pop_back();
}

void JsonWriter::key(std::string_view k) {
  SOC_CHECK(!stack_.empty() && stack_.back() == '{' && !have_key_,
            "json: key outside an object or after another key");
  if (!first_.back()) out_ += ',';
  first_.back() = false;
  out_ += json_quote(k);
  out_ += ':';
  have_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  separate();
  out_ += json_quote(s);
}

void JsonWriter::value(bool b) {
  separate();
  out_ += b ? "true" : "false";
}

void JsonWriter::value(std::int64_t v) {
  separate();
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, r.ptr);
}

void JsonWriter::value(std::uint64_t v) {
  separate();
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, r.ptr);
}

void JsonWriter::value(double v) {
  separate();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf; null keeps the document valid.
    return;
  }
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, r.ptr);
}

void JsonWriter::value_raw(std::string_view token) {
  separate();
  out_ += token;
}

void JsonWriter::newline() { out_ += '\n'; }

}  // namespace soc::obs
