// Artifact rendering for the engine's self-telemetry (sim/telemetry.h).
//
// Three documents come out of one attached EngineTelemetry:
//
//  - engine_counters_json: the deterministic counter section alone,
//    `soccluster-engine-telemetry-counters/v1`.  Every number in it is
//    fixed by the simulation's control flow, so the document is
//    byte-identical at any shard count, any thread count, and any build
//    flavor — CI `cmp`s it across all three axes like the other
//    artifacts.
//
//  - engine_telemetry_json: the full `soccluster-engine-telemetry/v1`
//    artifact.  Three sections with three determinism contracts: the
//    counter section above; a `sharding` section (per-shard queue
//    high-water, windows stepped, mailbox-pair traffic) deterministic
//    only at a fixed shard count; and a `timing` section of wall-clock
//    measurements, explicitly marked nondeterministic.
//
//  - engine_wallclock_trace_json: a Chrome trace of the engine's *real*
//    execution — one lane for the coordinator thread and one per pool
//    worker, with window-step, barrier-wait, mailbox-drain, and
//    commit-merge spans.  This is wall-clock time, not simulated time:
//    it shows where the parallel engine itself spends the run.
#pragma once

#include <string>

#include "sim/telemetry.h"

namespace soc::obs {

/// The deterministic counter document (ends with a newline).
std::string engine_counters_json(const sim::EngineTelemetry& telemetry);

/// The full three-section telemetry document (ends with a newline).
std::string engine_telemetry_json(const sim::EngineTelemetry& telemetry);

/// Chrome trace-event document of the engine's wall-clock execution
/// (ends with a newline).  Loadable in Perfetto / chrome://tracing.
std::string engine_wallclock_trace_json(const sim::EngineTelemetry& telemetry);

}  // namespace soc::obs
