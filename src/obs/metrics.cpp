#include "obs/metrics.h"

#include <algorithm>

#include "common/error.h"
#include "common/table.h"

namespace soc::obs {

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  SOC_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
            "histogram bounds must be ascending");
}

void Histogram::observe(std::int64_t v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  count_ += 1;
  sum_ += v;
  max_ = std::max(max_, v);
}

const std::vector<std::int64_t>& wait_bounds_ns() {
  static const std::vector<std::int64_t> kBounds = {
      1'000, 10'000, 100'000, 1'000'000, 10'000'000, 100'000'000,
      1'000'000'000};
  return kBounds;
}

const std::vector<std::int64_t>& size_bounds_bytes() {
  static const std::vector<std::int64_t> kBounds = {256, 4096, 65536,
                                                    1048576, 16777216};
  return kBounds;
}

void MetricsRegistry::add(std::string_view name, std::int64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::set(std::string_view name, std::int64_t v) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), v);
  } else {
    it->second = v;
  }
}

void MetricsRegistry::set_max(std::string_view name, std::int64_t v) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), v);
  } else {
    it->second = std::max(it->second, v);
  }
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const std::vector<std::int64_t>& bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram(bounds)).first;
  }
  return it->second;
}

std::int64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::int64_t MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : counters_) w.field(name, v);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, v] : gauges_) w.field(name, v);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.field("count", h.count());
    w.field("sum", h.sum());
    w.field("max", h.max());
    w.key("bounds");
    w.begin_array();
    for (const std::int64_t b : h.bounds()) w.value(b);
    w.end_array();
    w.key("buckets");
    w.begin_array();
    for (const std::uint64_t c : h.bucket_counts()) w.value(c);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string MetricsRegistry::json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

std::string MetricsRegistry::table() const {
  std::string out;
  {
    TextTable t({"counter", "value"});
    for (const auto& [name, v] : counters_)
      t.add_row({name, std::to_string(v)});
    for (const auto& [name, v] : gauges_)
      t.add_row({name + " (gauge)", std::to_string(v)});
    if (t.rows() > 0) out += t.str();
  }
  for (const auto& [name, h] : histograms_) {
    out += "\n";
    out += name;
    out += ": count=" + std::to_string(h.count()) +
           " sum=" + std::to_string(h.sum()) +
           " max=" + std::to_string(h.max()) + "\n";
    TextTable t({"bucket", "count"});
    const auto& bounds = h.bounds();
    const auto& counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const std::string label =
          i < bounds.size() ? "<= " + std::to_string(bounds[i])
          : bounds.empty()  ? std::string("all")
                            : "> " + std::to_string(bounds.back());
      t.add_row({label, std::to_string(counts[i])});
    }
    out += t.str();
  }
  return out;
}

}  // namespace soc::obs
