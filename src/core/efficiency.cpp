#include "core/efficiency.h"

#include <algorithm>

#include "common/error.h"

namespace soc::core {

namespace {

double rank_compute_seconds(const sim::RankStats& rs) {
  double total = 0.0;
  for (const auto& [phase, t] : rs.phase_compute) total += to_seconds(t);
  return total;
}

}  // namespace

double mean_compute_seconds(const sim::RunStats& stats) {
  SOC_CHECK(!stats.ranks.empty(), "no ranks");
  double total = 0.0;
  for (const sim::RankStats& rs : stats.ranks) total += rank_compute_seconds(rs);
  return total / static_cast<double>(stats.ranks.size());
}

double max_compute_seconds(const sim::RunStats& stats) {
  SOC_CHECK(!stats.ranks.empty(), "no ranks");
  double max = 0.0;
  for (const sim::RankStats& rs : stats.ranks) {
    max = std::max(max, rank_compute_seconds(rs));
  }
  return max;
}

EfficiencyDecomposition decompose(const trace::ScenarioRuns& runs) {
  EfficiencyDecomposition d;
  d.measured_seconds = runs.measured.seconds();
  d.ideal_network_seconds = runs.ideal_network.seconds();
  d.ideal_balance_seconds = runs.ideal_balance.seconds();
  SOC_CHECK(d.measured_seconds > 0.0, "zero-length run");

  const double mean_c = mean_compute_seconds(runs.measured);
  const double max_c = max_compute_seconds(runs.measured);
  SOC_CHECK(max_c > 0.0, "run performed no compute");

  d.load_balance = mean_c / max_c;
  // On the ideal network only dependencies and local data movement remain;
  // how far the critical rank's compute is from that runtime is Ser.
  d.serialization =
      d.ideal_network_seconds > 0.0 ? max_c / d.ideal_network_seconds : 1.0;
  d.serialization = std::min(d.serialization, 1.0);
  d.transfer = d.ideal_network_seconds / d.measured_seconds;
  d.transfer = std::min(d.transfer, 1.0);
  d.efficiency = d.load_balance * d.serialization * d.transfer;
  return d;
}

}  // namespace soc::core
