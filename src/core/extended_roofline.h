// The paper's primary analytical contribution: the Roofline extension for
// integrated-GPGPU clusters (§III-B.3).
//
// Two distinct data-transfer channels feed each node's GPU: main-memory
// traffic (DRAM → GPU) and network traffic (other nodes → NIC → DRAM).
// The extension keeps the classic operational-intensity ceiling and adds
// a network-intensity ceiling:
//
//   operational intensity  OI = FLOPs / DRAM bytes          (Eq. 1)
//   network intensity      NI = FLOPs / NIC bytes           (Eq. 2)
//   attainable = min(peak, OI × mem_bw, NI × net_bw)        (Eq. 3)
//
// All quantities are per node: peak is one node's GPU capacity, mem_bw
// the GPU's achievable DRAM bandwidth, net_bw the NIC's achievable rate.
#pragma once

#include <string>
#include <vector>

#include "sim/stats.h"

namespace soc::core {

/// Which ceiling binds the attainable performance.
enum class RooflineLimit { kCompute, kOperational, kNetwork };

const char* limit_name(RooflineLimit limit);

struct ExtendedRoofline {
  double peak_flops = 0.0;        ///< Per-node GPU compute ceiling.
  double memory_bandwidth = 0.0;  ///< Per-node DRAM→GPU bytes/s.
  double network_bandwidth = 0.0; ///< Per-node achievable NIC bytes/s.

  /// Eq. 3: attainable per-node FLOP/s at the given intensities.
  double attainable(double oi, double ni) const;

  /// The ceiling that limits performance at (oi, ni).  When compute is the
  /// binding term the workload has outgrown both transfer channels.
  RooflineLimit limit(double oi, double ni) const;

  /// The paper's Table II "limit" column: which *intensity* (operational
  /// or network) bounds the theoretical peak the most, ignoring the
  /// compute ceiling.
  RooflineLimit limiting_intensity(double oi, double ni) const;
};

/// Measured intensities and roofline position of one run (per node).
struct RooflineMeasurement {
  std::string benchmark;
  double operational_intensity = 0.0;  ///< FLOP/DRAM-byte (Eq. 1).
  double network_intensity = 0.0;      ///< FLOP/NIC-byte (Eq. 2).
  double achieved_flops = 0.0;         ///< Per-node achieved FLOP/s.
  double attainable_flops = 0.0;       ///< Model ceiling at (OI, NI).
  double percent_of_peak = 0.0;        ///< achieved / attainable × 100.
  RooflineLimit limit = RooflineLimit::kOperational;
  /// Table II semantics: operational vs network only.
  RooflineLimit limiting_intensity = RooflineLimit::kOperational;
};

/// Computes Eqs. 1–3 from a run.  GPU-side traffic is used for OI (the
/// extension is defined for the GPGPU work); the paper's "FLOPS
/// throughput" is the whole-cluster rate divided by the node count.
RooflineMeasurement measure_roofline(const ExtendedRoofline& model,
                                     const sim::RunStats& stats, int nodes,
                                     const std::string& benchmark);

/// Samples the OI ceiling sweep at a fixed NI (for the Fig 4 plots).
struct ExtendedRooflinePoint {
  double oi = 0.0;
  double attainable_flops = 0.0;
};
std::vector<ExtendedRooflinePoint> sample_extended(
    const ExtendedRoofline& model, double ni, double oi_min, double oi_max,
    int points);

}  // namespace soc::core
