// The paper's primary analytical contribution: the Roofline extension for
// integrated-GPGPU clusters (§III-B.3).
//
// Two distinct data-transfer channels feed each node's GPU: main-memory
// traffic (DRAM → GPU) and network traffic (other nodes → NIC → DRAM).
// The extension keeps the classic operational-intensity ceiling and adds
// a network-intensity ceiling:
//
//   operational intensity  OI = FLOPs / DRAM bytes          (Eq. 1)
//   network intensity      NI = FLOPs / NIC bytes           (Eq. 2)
//   attainable = min(peak, OI × mem_bw, NI × net_bw)        (Eq. 3)
//
// All quantities are per node: peak is one node's GPU capacity, mem_bw
// the GPU's achievable DRAM bandwidth, net_bw the NIC's achievable rate.
// The energy extension (EnergyRoofline below) re-derives the ceiling in
// GFLOPS/W: at any (OI, NI) operating point the component power model
// (power::NodePowerConfig) predicts the sustained node draw needed to run
// at the attainable rate — GPU utilization, the DRAM and NIC rates the
// intensities imply — and the energy ceiling is attainable / watts, the
// perf-per-watt analogue of Eq. 3 (cf. arXiv 1809.09206, 2009.05257).
#pragma once

#include <string>
#include <vector>

#include "power/power_model.h"
#include "sim/stats.h"

namespace soc::core {

/// Which ceiling binds the attainable performance.
enum class RooflineLimit { kCompute, kOperational, kNetwork };

const char* limit_name(RooflineLimit limit);

struct ExtendedRoofline {
  double peak_flops = 0.0;        ///< Per-node GPU compute ceiling.
  double memory_bandwidth = 0.0;  ///< Per-node DRAM→GPU bytes/s.
  double network_bandwidth = 0.0; ///< Per-node achievable NIC bytes/s.

  /// Eq. 3: attainable per-node FLOP/s at the given intensities.
  double attainable(double oi, double ni) const;

  /// The ceiling that limits performance at (oi, ni).  When compute is the
  /// binding term the workload has outgrown both transfer channels.
  RooflineLimit limit(double oi, double ni) const;

  /// The paper's Table II "limit" column: which *intensity* (operational
  /// or network) bounds the theoretical peak the most, ignoring the
  /// compute ceiling.
  RooflineLimit limiting_intensity(double oi, double ni) const;
};

/// Measured intensities and roofline position of one run (per node).
struct RooflineMeasurement {
  std::string benchmark;
  double operational_intensity = 0.0;  ///< FLOP/DRAM-byte (Eq. 1).
  double network_intensity = 0.0;      ///< FLOP/NIC-byte (Eq. 2).
  double achieved_flops = 0.0;         ///< Per-node achieved FLOP/s.
  double attainable_flops = 0.0;       ///< Model ceiling at (OI, NI).
  double percent_of_peak = 0.0;        ///< achieved / attainable × 100.
  RooflineLimit limit = RooflineLimit::kOperational;
  /// Table II semantics: operational vs network only.
  RooflineLimit limiting_intensity = RooflineLimit::kOperational;
};

/// Computes Eqs. 1–3 from a run.  GPU-side traffic is used for OI (the
/// extension is defined for the GPGPU work); the paper's "FLOPS
/// throughput" is the whole-cluster rate divided by the node count.
RooflineMeasurement measure_roofline(const ExtendedRoofline& model,
                                     const sim::RunStats& stats, int nodes,
                                     const std::string& benchmark);

/// Energy-extended roofline: the perf-per-watt ceiling at an (OI, NI)
/// operating point, from the same component power model the meter uses.
struct EnergyRoofline {
  ExtendedRoofline roofline;
  power::NodePowerConfig power;

  /// Model watts one node sustains while running at attainable(oi, ni):
  /// board idle + host overhead + one driving core + GPU at its implied
  /// utilization + the DRAM and NIC rates the intensities pin down.
  double sustained_watts(double oi, double ni) const;

  /// The energy ceiling: attainable(oi, ni) / sustained_watts(oi, ni),
  /// in GFLOPS/W per node.
  double attainable_gflops_per_watt(double oi, double ni) const;
};

/// Measured perf-per-watt position of one run against the energy ceiling.
struct EnergyRooflineMeasurement {
  RooflineMeasurement roofline;
  double achieved_gflops_per_watt = 0.0;    ///< Cluster GFLOPs over watts.
  double attainable_gflops_per_watt = 0.0;  ///< Ceiling at (OI, NI).
  double sustained_watts = 0.0;             ///< Model node draw at (OI, NI).
  double percent_of_ceiling = 0.0;          ///< achieved / ceiling x 100.
};

/// Joins measure_roofline with the metered energy: where the run sits on
/// the GFLOPS/W roofline.  `energy` must be the report for `stats`.
EnergyRooflineMeasurement measure_energy_roofline(
    const EnergyRoofline& model, const sim::RunStats& stats,
    const power::EnergyReport& energy, int nodes,
    const std::string& benchmark);

/// Samples the OI ceiling sweep at a fixed NI (for the Fig 4 plots).
struct ExtendedRooflinePoint {
  double oi = 0.0;
  double attainable_flops = 0.0;
};
std::vector<ExtendedRooflinePoint> sample_extended(
    const ExtendedRoofline& model, double ni, double oi_min, double oi_max,
    int points);

}  // namespace soc::core
