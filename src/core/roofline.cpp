#include "core/roofline.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace soc::core {

double Roofline::attainable(double oi) const {
  SOC_CHECK(oi >= 0.0, "negative operational intensity");
  return std::min(peak_flops, oi * memory_bandwidth);
}

double Roofline::ridge_point() const {
  SOC_CHECK(memory_bandwidth > 0.0, "zero memory bandwidth");
  return peak_flops / memory_bandwidth;
}

bool Roofline::memory_bound(double oi) const {
  return oi * memory_bandwidth < peak_flops;
}

std::vector<RooflinePoint> sample_roofline(const Roofline& model,
                                           double oi_min, double oi_max,
                                           int points) {
  SOC_CHECK(oi_min > 0.0 && oi_max > oi_min, "bad intensity range");
  SOC_CHECK(points >= 2, "need at least two points");
  std::vector<RooflinePoint> out;
  out.reserve(static_cast<std::size_t>(points));
  const double log_min = std::log10(oi_min);
  const double step = (std::log10(oi_max) - log_min) /
                      static_cast<double>(points - 1);
  for (int i = 0; i < points; ++i) {
    const double oi = std::pow(10.0, log_min + step * i);
    out.push_back(RooflinePoint{oi, model.attainable(oi)});
  }
  return out;
}

}  // namespace soc::core
