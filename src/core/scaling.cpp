#include "core/scaling.h"

#include <cmath>

#include "common/error.h"
#include "stats/descriptive.h"
#include "stats/nnls.h"

namespace soc::core {

namespace {

stats::Vec basis_row(int nodes) {
  const double p = static_cast<double>(nodes);
  return {1.0, 1.0 / p, std::log2(p + 1.0), p};
}

}  // namespace

double ScalingModel::predict_seconds(int nodes) const {
  SOC_CHECK(nodes >= 1, "node count must be positive");
  const stats::Vec row = basis_row(nodes);
  double t = 0.0;
  for (std::size_t i = 0; i < row.size(); ++i) t += coefficients[i] * row[i];
  return t;
}

double ScalingModel::predict_speedup(int nodes) const {
  const double t = predict_seconds(nodes);
  return t > 0.0 ? reference_seconds / t : 0.0;
}

ScalingModel fit_scaling(const std::vector<ScalingSample>& samples) {
  SOC_CHECK(samples.size() >= 3, "need >= 3 samples to fit scaling model");
  stats::Matrix design(samples.size(), 4);
  stats::Vec y(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    SOC_CHECK(samples[i].nodes >= 1 && samples[i].seconds > 0.0,
              "invalid scaling sample");
    const stats::Vec row = basis_row(samples[i].nodes);
    for (std::size_t c = 0; c < row.size(); ++c) design(i, c) = row[c];
    y[i] = samples[i].seconds;
  }

  ScalingModel model;
  model.coefficients = stats::nnls(design, y);

  stats::Vec fitted(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    fitted[i] = 0.0;
    const stats::Vec row = basis_row(samples[i].nodes);
    for (std::size_t c = 0; c < row.size(); ++c) {
      fitted[i] += model.coefficients[c] * row[c];
    }
  }
  model.r2 = stats::r_squared(y, fitted);
  model.reference_seconds = model.predict_seconds(1);
  return model;
}

std::vector<double> extrapolate_speedups(const ScalingModel& model,
                                         const std::vector<int>& node_counts) {
  std::vector<double> out;
  out.reserve(node_counts.size());
  for (int n : node_counts) out.push_back(model.predict_speedup(n));
  return out;
}

}  // namespace soc::core
