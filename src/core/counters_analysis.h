// Cross-system PMU counter analysis (§IV-A, Fig 8).
//
// Pipeline: per benchmark, form the ratio of every PMUv3 event (plus the
// derived miss-ratio metrics) on system A vs. system B; build the
// observation matrix X (benchmarks × metrics) and response vector y
// (relative runtimes); run PLS; keep the components explaining ≥95% of
// the X variance; report the variables with the largest regression
// coefficients.  For the Cavium-vs-TX2 comparison this pipeline must
// surface BR_MIS_PRED, INST_SPEC, and the L2 miss ratio.
#pragma once

#include <string>
#include <vector>

#include "arch/pmu.h"
#include "stats/pls.h"

namespace soc::core {

/// One benchmark's observation: counters on both systems and runtimes.
struct BenchmarkObservation {
  std::string name;
  arch::CounterSet system_a;  ///< e.g. Cavium server.
  arch::CounterSet system_b;  ///< e.g. TX cluster (per-rank average).
  double runtime_a = 0.0;
  double runtime_b = 0.0;
};

/// Names of the analysis variables: the 12 raw events (as A/B ratios)
/// followed by derived metrics.
std::vector<std::string> analysis_variable_names();

/// Builds the relative-value row for one observation (A relative to B).
stats::Vec relative_row(const BenchmarkObservation& obs);

struct CounterAnalysis {
  stats::PlsModel model;
  std::size_t components_used = 0;       ///< For ≥95% X variance.
  double variance_explained = 0.0;
  std::vector<std::string> top_variables; ///< Most influential first.
  stats::Vec top_coefficients;
  std::vector<std::string> variable_names;
  stats::Vec relative_runtime;            ///< The response vector.
};

/// Runs the full pipeline over the observations.
CounterAnalysis analyze_counters(
    const std::vector<BenchmarkObservation>& observations,
    std::size_t top_k = 3, double variance_target = 0.95);

}  // namespace soc::core
