// Strong-scaling model fitting and extrapolation (Figs 5–6).
//
// The paper measures speedups at small node counts, fits a model, and
// extrapolates to hundreds of nodes (reporting the fit's r²).  We fit
// runtime to a physically-motivated non-negative basis
//
//   T(P) ≈ a·1 + b/P + c·log2(P) + d·P
//
// (serial fraction, divisible work, tree-collective cost, all-to-all /
// contention cost) via NNLS, and report speedup S(P) = T_ref / T(P).
#pragma once

#include <vector>

#include "stats/matrix.h"

namespace soc::core {

struct ScalingSample {
  int nodes = 1;
  double seconds = 0.0;
};

struct ScalingModel {
  /// Basis coefficients [serial, perfectly-parallel, log, linear].
  stats::Vec coefficients;
  double r2 = 0.0;
  /// Reference runtime used as the speedup numerator (T at the smallest
  /// measured node count, scaled to 1 node by the model).
  double reference_seconds = 0.0;

  /// Predicted runtime at `nodes`.
  double predict_seconds(int nodes) const;
  /// Predicted speedup relative to the 1-node model runtime.
  double predict_speedup(int nodes) const;
};

/// Fits the scaling model to measured (nodes, seconds) samples.  Requires
/// at least three distinct node counts.
ScalingModel fit_scaling(const std::vector<ScalingSample>& samples);

/// Evaluates the model at each node count in `node_counts`.
std::vector<double> extrapolate_speedups(const ScalingModel& model,
                                         const std::vector<int>& node_counts);

}  // namespace soc::core
