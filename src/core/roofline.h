// The classic Roofline model (Williams, Waterman, Patterson, CACM 2009).
//
// attainable = min(peak compute, operational intensity × memory bandwidth).
// This is the baseline that §III-B.3 extends with a network dimension.
#pragma once

#include <string>
#include <vector>

namespace soc::core {

struct Roofline {
  double peak_flops = 0.0;       ///< FLOP/s ceiling.
  double memory_bandwidth = 0.0; ///< Bytes/s from DRAM.

  /// Attainable FLOP/s at operational intensity `oi` (FLOP/byte).
  double attainable(double oi) const;

  /// Intensity at which the model transitions from memory- to
  /// compute-bound (the "ridge point").
  double ridge_point() const;

  /// True when a kernel at `oi` is memory-bandwidth limited.
  bool memory_bound(double oi) const;
};

/// One point of a sampled roofline curve (for plotting / table output).
struct RooflinePoint {
  double intensity = 0.0;
  double attainable_flops = 0.0;
};

/// Samples the roofline at logarithmically spaced intensities.
std::vector<RooflinePoint> sample_roofline(const Roofline& model,
                                           double oi_min, double oi_max,
                                           int points);

}  // namespace soc::core
