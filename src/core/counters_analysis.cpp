#include "core/counters_analysis.h"

#include "common/error.h"

namespace soc::core {

namespace {

double safe_ratio(double a, double b) {
  if (b == 0.0) return a == 0.0 ? 1.0 : 10.0;  // saturate divergent ratios
  return a / b;
}

}  // namespace

namespace {

// Cycle counts, stall cycles, and IPC are direct proxies of the response
// (relative runtime) — including them would make the PLS selection
// trivial.  The analysis therefore uses the *behavioral* events plus the
// derived miss ratios, which is the variable set the paper's selection
// (BR_MIS_PRED / INST_SPEC / LD_MISS_RATIO) implies.
const arch::PmuEvent kAnalysisEvents[] = {
    arch::PmuEvent::kInstRetired,    arch::PmuEvent::kInstSpec,
    arch::PmuEvent::kBrRetired,      arch::PmuEvent::kBrMisPred,
    arch::PmuEvent::kL1dCache,       arch::PmuEvent::kL1dCacheRefill,
    arch::PmuEvent::kL2dCache,       arch::PmuEvent::kL2dCacheRefill,
    arch::PmuEvent::kMemAccess,
};

}  // namespace

std::vector<std::string> analysis_variable_names() {
  std::vector<std::string> names;
  for (arch::PmuEvent e : kAnalysisEvents) {
    names.emplace_back(arch::pmu_event_name(e));
  }
  names.emplace_back("BR_MIS_RATIO");
  names.emplace_back("L1D_MISS_RATIO");
  names.emplace_back("LD_MISS_RATIO");  // the paper's L2 miss-ratio metric
  return names;
}

stats::Vec relative_row(const BenchmarkObservation& obs) {
  stats::Vec row;
  // Raw events are compared per retired instruction so that differing
  // total instruction counts between systems do not dominate the ratios.
  const double inst_a = obs.system_a[arch::PmuEvent::kInstRetired];
  const double inst_b = obs.system_b[arch::PmuEvent::kInstRetired];
  SOC_CHECK(inst_a > 0.0 && inst_b > 0.0, "observations need instructions");
  for (arch::PmuEvent e : kAnalysisEvents) {
    row.push_back(safe_ratio(obs.system_a[e] / inst_a,
                             obs.system_b[e] / inst_b));
  }
  row.push_back(safe_ratio(obs.system_a.branch_misprediction_ratio(),
                           obs.system_b.branch_misprediction_ratio()));
  row.push_back(safe_ratio(obs.system_a.l1d_miss_ratio(),
                           obs.system_b.l1d_miss_ratio()));
  row.push_back(safe_ratio(obs.system_a.l2d_miss_ratio(),
                           obs.system_b.l2d_miss_ratio()));
  return row;
}

CounterAnalysis analyze_counters(
    const std::vector<BenchmarkObservation>& observations, std::size_t top_k,
    double variance_target) {
  SOC_CHECK(observations.size() >= 3, "need >= 3 benchmarks for PLS");
  CounterAnalysis out;
  out.variable_names = analysis_variable_names();

  std::vector<stats::Vec> rows;
  rows.reserve(observations.size());
  out.relative_runtime.reserve(observations.size());
  for (const BenchmarkObservation& obs : observations) {
    SOC_CHECK(obs.runtime_a > 0.0 && obs.runtime_b > 0.0, "missing runtimes");
    rows.push_back(relative_row(obs));
    out.relative_runtime.push_back(obs.runtime_a / obs.runtime_b);
  }
  const stats::Matrix x = stats::Matrix::from_rows(rows);

  out.model = stats::pls_fit(x, out.relative_runtime,
                             /*max_components=*/observations.size() - 1);
  out.components_used =
      stats::components_for_variance(out.model, variance_target);
  out.variance_explained =
      out.model.x_variance_explained[out.components_used - 1];

  // Refit with exactly the selected number of components so coefficients
  // reflect the paper's "use three components" modelling step.
  out.model = stats::pls_fit(x, out.relative_runtime, out.components_used);

  for (std::size_t idx : stats::top_variables(out.model, top_k)) {
    out.top_variables.push_back(out.variable_names[idx]);
    out.top_coefficients.push_back(out.model.coefficients[idx]);
  }
  return out;
}

}  // namespace soc::core
