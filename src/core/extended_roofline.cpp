#include "core/extended_roofline.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace soc::core {

const char* limit_name(RooflineLimit limit) {
  switch (limit) {
    case RooflineLimit::kCompute: return "compute";
    case RooflineLimit::kOperational: return "operational";
    case RooflineLimit::kNetwork: return "network";
  }
  return "unknown";
}

double ExtendedRoofline::attainable(double oi, double ni) const {
  SOC_CHECK(oi > 0.0 && ni > 0.0, "intensities must be positive");
  return std::min({peak_flops, oi * memory_bandwidth,
                   ni * network_bandwidth});
}

RooflineLimit ExtendedRoofline::limit(double oi, double ni) const {
  const double mem_ceiling = oi * memory_bandwidth;
  const double net_ceiling = ni * network_bandwidth;
  if (peak_flops <= mem_ceiling && peak_flops <= net_ceiling) {
    return RooflineLimit::kCompute;
  }
  return mem_ceiling <= net_ceiling ? RooflineLimit::kOperational
                                    : RooflineLimit::kNetwork;
}

RooflineLimit ExtendedRoofline::limiting_intensity(double oi,
                                                   double ni) const {
  return oi * memory_bandwidth <= ni * network_bandwidth
             ? RooflineLimit::kOperational
             : RooflineLimit::kNetwork;
}

RooflineMeasurement measure_roofline(const ExtendedRoofline& model,
                                     const sim::RunStats& stats, int nodes,
                                     const std::string& benchmark) {
  SOC_CHECK(nodes > 0, "need at least one node");
  RooflineMeasurement m;
  m.benchmark = benchmark;

  // Intensities are workload properties (Eqs. 1 and 2): FLOPs over the
  // bytes each channel moved.  They do not depend on the network choice —
  // the paper stresses this invariance.
  const double gpu_flops = stats.total_gpu_flops > 0.0 ? stats.total_gpu_flops
                                                       : stats.total_flops;
  const double dram = static_cast<double>(
      stats.total_gpu_dram_bytes > 0 ? stats.total_gpu_dram_bytes
                                     : stats.total_dram_bytes);
  const double net = static_cast<double>(stats.total_net_bytes);
  SOC_CHECK(dram > 0.0, "no DRAM traffic recorded");
  m.operational_intensity = gpu_flops / dram;
  // Workloads with no inter-node traffic (alexnet/googlenet) have an
  // effectively infinite network intensity; clamp for reporting.
  m.network_intensity = net > 0.0 ? gpu_flops / net : 1e9;

  m.achieved_flops = gpu_flops / stats.seconds() / static_cast<double>(nodes);
  m.attainable_flops =
      model.attainable(m.operational_intensity, m.network_intensity);
  m.percent_of_peak = m.attainable_flops > 0.0
                          ? 100.0 * m.achieved_flops / m.attainable_flops
                          : 0.0;
  m.limit = model.limit(m.operational_intensity, m.network_intensity);
  m.limiting_intensity = model.limiting_intensity(m.operational_intensity,
                                                  m.network_intensity);
  return m;
}

double EnergyRoofline::sustained_watts(double oi, double ni) const {
  const double f = roofline.attainable(oi, ni);
  // Only +, *, / and min: the expression is deterministic across builds.
  const double gpu_util =
      roofline.peak_flops > 0.0 ? std::min(f / roofline.peak_flops, 1.0) : 0.0;
  // OI pins the DRAM rate at the operating point (bytes/s = f / OI) and
  // NI the NIC rate; each feeds the same linear component model the
  // meter integrates.
  const double dram_gbps = f / oi / 1e9;
  const double nic_util =
      roofline.network_bandwidth > 0.0
          ? std::min(f / ni / roofline.network_bandwidth, 1.0)
          : 0.0;
  return power.idle_w + power.host_overhead_w + power.cpu_core_active_w +
         gpu_util * power.gpu_active_w + dram_gbps * power.dram_w_per_gbps +
         power.nic_idle_w + nic_util * power.nic_active_w;
}

double EnergyRoofline::attainable_gflops_per_watt(double oi, double ni) const {
  const double watts = sustained_watts(oi, ni);
  if (watts <= 0.0) return 0.0;
  return roofline.attainable(oi, ni) / 1e9 / watts;
}

EnergyRooflineMeasurement measure_energy_roofline(
    const EnergyRoofline& model, const sim::RunStats& stats,
    const power::EnergyReport& energy, int nodes,
    const std::string& benchmark) {
  EnergyRooflineMeasurement m;
  m.roofline = measure_roofline(model.roofline, stats, nodes, benchmark);
  // Per-node achieved rate over per-node average draw == the cluster's
  // GFLOPS/W, the wall-socket number the paper reports.
  const double node_watts = energy.average_watts / static_cast<double>(nodes);
  m.achieved_gflops_per_watt =
      node_watts > 0.0 ? m.roofline.achieved_flops / 1e9 / node_watts : 0.0;
  m.sustained_watts = model.sustained_watts(m.roofline.operational_intensity,
                                            m.roofline.network_intensity);
  m.attainable_gflops_per_watt = model.attainable_gflops_per_watt(
      m.roofline.operational_intensity, m.roofline.network_intensity);
  m.percent_of_ceiling =
      m.attainable_gflops_per_watt > 0.0
          ? 100.0 * m.achieved_gflops_per_watt / m.attainable_gflops_per_watt
          : 0.0;
  return m;
}

std::vector<ExtendedRooflinePoint> sample_extended(
    const ExtendedRoofline& model, double ni, double oi_min, double oi_max,
    int points) {
  SOC_CHECK(oi_min > 0.0 && oi_max > oi_min, "bad intensity range");
  SOC_CHECK(points >= 2, "need at least two points");
  std::vector<ExtendedRooflinePoint> out;
  out.reserve(static_cast<std::size_t>(points));
  const double log_min = std::log10(oi_min);
  const double step = (std::log10(oi_max) - log_min) /
                      static_cast<double>(points - 1);
  for (int i = 0; i < points; ++i) {
    const double oi = std::pow(10.0, log_min + step * i);
    out.push_back(ExtendedRooflinePoint{oi, model.attainable(oi, ni)});
  }
  return out;
}

}  // namespace soc::core
