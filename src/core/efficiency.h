// Parallel-efficiency decomposition (Eq. 4 of the paper):
//
//   η = LB × Ser × Trf
//
// following the POP/BSC methodology the paper adopts from Rosas et al.:
//   LB  — load balance: mean/max of per-rank useful compute,
//   Ser — serialization: max compute / runtime on an ideal network
//         (dependencies and host↔device synchronization),
//   Trf — transfer: ideal-network runtime / real runtime (pure network
//         cost).
// η == mean compute / real runtime, so the factors multiply exactly.
#pragma once

#include "sim/stats.h"
#include "trace/replay.h"

namespace soc::core {

struct EfficiencyDecomposition {
  double load_balance = 1.0;   ///< LB ∈ (0, 1].
  double serialization = 1.0;  ///< Ser ∈ (0, 1].
  double transfer = 1.0;       ///< Trf ∈ (0, 1].
  double efficiency = 1.0;     ///< η = LB · Ser · Trf.

  double measured_seconds = 0.0;
  double ideal_network_seconds = 0.0;
  double ideal_balance_seconds = 0.0;
};

/// Decomposes efficiency from the three scenario replays.
EfficiencyDecomposition decompose(const trace::ScenarioRuns& runs);

/// Mean per-rank useful compute seconds of a run.
double mean_compute_seconds(const sim::RunStats& stats);
/// Max per-rank useful compute seconds of a run.
double max_compute_seconds(const sim::RunStats& stats);

}  // namespace soc::core
