// Partial Least Squares regression (NIPALS algorithm, PLS1).
//
// Section IV-A of the paper builds an observation matrix of relative
// PMU events/metrics (Cavium vs. TX cluster) per benchmark and a response
// vector of relative runtimes, runs PLS, keeps the components explaining
// ~95% of the X variance, and reports the variables with the largest
// regression coefficients.  This module implements exactly that pipeline.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/matrix.h"

namespace soc::stats {

struct PlsModel {
  std::size_t components = 0;
  Matrix x_scores;            ///< T (n × a)
  Matrix x_loadings;          ///< P (p × a)
  Matrix x_weights;           ///< W (p × a)
  Vec y_loadings;             ///< q (a)
  Vec coefficients;           ///< β on the original (standardized) X scale.
  Vec x_variance_explained;   ///< Cumulative fraction of ‖X‖² explained.
  double r2 = 0.0;            ///< Fit quality on the training response.
  Vec x_means, x_scales;      ///< Standardization applied to X.
  double y_mean = 0.0;
};

/// Fits a PLS1 model with up to `max_components` latent components via
/// NIPALS.  X is standardized internally; y is centered.  Extraction stops
/// early when the residual X deflates to (numerical) zero.
PlsModel pls_fit(const Matrix& x, const Vec& y, std::size_t max_components);

/// Number of components needed to explain at least `fraction` of the X
/// variance in a fitted model (the paper's "three components explain 95%").
std::size_t components_for_variance(const PlsModel& model, double fraction);

/// Indices of the `k` variables with the largest |coefficient|, most
/// influential first (the paper's top-3 selection for Fig 8).
std::vector<std::size_t> top_variables(const PlsModel& model, std::size_t k);

/// Predicts responses for new observations (rows of x).
Vec pls_predict(const PlsModel& model, const Matrix& x);

}  // namespace soc::stats
