#include "stats/linreg.h"

#include "common/error.h"
#include "stats/descriptive.h"
#include "stats/solve.h"

namespace soc::stats {

OlsResult ols(const Matrix& x, const Vec& y, bool fit_intercept,
              double ridge) {
  SOC_CHECK(x.rows() == y.size(), "design/response size mismatch");
  SOC_CHECK(x.rows() > 0 && x.cols() > 0, "empty design");
  const std::size_t p = x.cols() + (fit_intercept ? 1u : 0u);

  // Augment with an intercept column of ones when requested.
  Matrix design(x.rows(), p);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) design(r, c) = x(r, c);
    if (fit_intercept) design(r, p - 1) = 1.0;
  }

  Matrix xtx = design.transposed() * design;
  for (std::size_t i = 0; i < p; ++i) xtx(i, i) += ridge;
  const Vec xty = design.transposed() * y;
  const Vec beta = solve_gaussian(xtx, xty);

  OlsResult out;
  out.coefficients.assign(beta.begin(),
                          beta.begin() + static_cast<std::ptrdiff_t>(x.cols()));
  out.intercept = fit_intercept ? beta.back() : 0.0;
  out.fitted = design * beta;
  out.r2 = r_squared(y, out.fitted);
  return out;
}

}  // namespace soc::stats
