#include "stats/nnls.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "stats/solve.h"

namespace soc::stats {

namespace {

// Least-squares solution restricted to the passive set (columns in
// `passive`); zeros elsewhere.
Vec restricted_ls(const Matrix& a, const Vec& b,
                  const std::vector<std::size_t>& passive) {
  Matrix ap(a.rows(), passive.size());
  for (std::size_t c = 0; c < passive.size(); ++c) {
    ap.set_col(c, a.col(passive[c]));
  }
  Matrix ata = ap.transposed() * ap;
  for (std::size_t d = 0; d < passive.size(); ++d) ata(d, d) += 1e-12;
  const Vec atb = ap.transposed() * b;
  const Vec z = solve_gaussian(ata, atb);
  Vec full(a.cols(), 0.0);
  for (std::size_t c = 0; c < passive.size(); ++c) full[passive[c]] = z[c];
  return full;
}

}  // namespace

Vec nnls(const Matrix& a, const Vec& b, int max_iterations) {
  SOC_CHECK(a.rows() == b.size(), "nnls shape mismatch");
  const std::size_t p = a.cols();
  Vec x(p, 0.0);
  std::vector<bool> in_passive(p, false);
  std::vector<std::size_t> passive;

  for (int it = 0; it < max_iterations; ++it) {
    // Gradient of ½‖Ax−b‖²: w = Aᵀ(b − Ax).
    Vec residual(b);
    const Vec ax = a * x;
    for (std::size_t i = 0; i < residual.size(); ++i) residual[i] -= ax[i];
    const Vec w = a.transposed() * residual;

    // Pick the most promising free variable.
    std::size_t best = p;
    double best_w = 1e-10;
    for (std::size_t c = 0; c < p; ++c) {
      if (!in_passive[c] && w[c] > best_w) {
        best_w = w[c];
        best = c;
      }
    }
    if (best == p) break;  // KKT satisfied

    in_passive[best] = true;
    passive.push_back(best);

    // Inner loop: restrict to passive set and pull violators back out.
    Vec z = restricted_ls(a, b, passive);
    while (true) {
      bool feasible = true;
      for (std::size_t c : passive) {
        if (z[c] <= 0.0) {
          feasible = false;
          break;
        }
      }
      if (feasible) break;

      // Step toward z as far as feasibility allows.
      double alpha = std::numeric_limits<double>::infinity();
      for (std::size_t c : passive) {
        if (z[c] <= 0.0) {
          alpha = std::min(alpha, x[c] / (x[c] - z[c]));
        }
      }
      for (std::size_t c : passive) x[c] += alpha * (z[c] - x[c]);

      // Drop variables that hit zero.
      std::vector<std::size_t> keep;
      for (std::size_t c : passive) {
        if (x[c] > 1e-12) {
          keep.push_back(c);
        } else {
          x[c] = 0.0;
          in_passive[c] = false;
        }
      }
      passive = std::move(keep);
      if (passive.empty()) {
        z.assign(p, 0.0);
        break;
      }
      z = restricted_ls(a, b, passive);
    }
    x = z;
    for (std::size_t c = 0; c < p; ++c) x[c] = std::max(x[c], 0.0);
  }
  return x;
}

}  // namespace soc::stats
