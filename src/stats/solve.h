// Direct linear solvers for the small systems arising in regression and
// curve fitting: partial-pivot Gaussian elimination for general systems
// and Cholesky for symmetric positive-definite normal equations.
#pragma once

#include "stats/matrix.h"

namespace soc::stats {

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Throws soc::Error if A is (numerically) singular.
Vec solve_gaussian(Matrix a, Vec b);

/// Solves A x = b for symmetric positive-definite A via Cholesky.
/// Throws soc::Error if A is not positive definite.
Vec solve_cholesky(const Matrix& a, const Vec& b);

/// Inverse via Gaussian elimination (used only on tiny matrices).
Matrix inverse(const Matrix& a);

}  // namespace soc::stats
