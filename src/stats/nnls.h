// Non-negative least squares (Lawson–Hanson active set).
//
// Scaling-model fits decompose runtime into physically non-negative cost
// terms (serial, per-node, logarithmic and linear communication); NNLS
// keeps every term ≥ 0 so the extrapolation stays physical.
#pragma once

#include "stats/matrix.h"

namespace soc::stats {

/// Solves min ‖A x − b‖₂ subject to x ≥ 0.
Vec nnls(const Matrix& a, const Vec& b, int max_iterations = 300);

}  // namespace soc::stats
