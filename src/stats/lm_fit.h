// Levenberg–Marquardt nonlinear least squares.
//
// Used to fit the strong-scaling extrapolation models of Figs 5–6: the
// measured speedups at small node counts are fitted to a parametric
// speedup curve which is then evaluated out to 256 nodes.
#pragma once

#include <functional>

#include "stats/matrix.h"

namespace soc::stats {

/// Model callback: evaluates the model at x given parameters θ.
using ModelFn = std::function<double(double x, const Vec& theta)>;

struct LmOptions {
  int max_iterations = 200;
  double initial_lambda = 1e-3;
  double lambda_up = 10.0;
  double lambda_down = 0.3;
  double tolerance = 1e-12;   ///< Relative SSE improvement stop criterion.
  double fd_step = 1e-6;      ///< Finite-difference step for the Jacobian.
};

struct LmResult {
  Vec theta;        ///< Fitted parameters.
  double sse = 0.0; ///< Final sum of squared errors.
  double r2 = 0.0;  ///< Coefficient of determination.
  int iterations = 0;
  bool converged = false;
};

/// Fits model(x, θ) ≈ y over the sample points by Levenberg–Marquardt with
/// a finite-difference Jacobian.  Optional per-parameter lower bounds are
/// enforced by projection after each accepted step.
LmResult lm_fit(const ModelFn& model, const Vec& xs, const Vec& ys,
                Vec initial_theta, const LmOptions& options = {},
                const Vec& lower_bounds = {});

}  // namespace soc::stats
