// Small dense matrix used by the statistics layer (PLS, OLS, curve
// fitting).  Row-major storage, value semantics.  These matrices are tiny
// (benchmarks × counters), so clarity beats blocking/vectorization here —
// per the Core Guidelines, we do not optimize what is not on the critical
// path.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace soc::stats {

using Vec = std::vector<double>;

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds a matrix from nested initializer data (rows of equal width).
  static Matrix from_rows(const std::vector<Vec>& rows);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Returns row r as a vector copy.
  Vec row(std::size_t r) const;
  /// Returns column c as a vector copy.
  Vec col(std::size_t c) const;
  /// Overwrites column c.
  void set_col(std::size_t c, const Vec& v);

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;
  Vec operator*(const Vec& v) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix scaled(double s) const;

  /// Frobenius norm.
  double frobenius_norm() const;

  std::string str(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Dot product; sizes must match.
double dot(const Vec& a, const Vec& b);
/// Euclidean norm.
double norm(const Vec& v);
/// a + s*b, sizes must match.
Vec axpy(const Vec& a, double s, const Vec& b);
/// Elementwise scaling.
Vec scaled(const Vec& v, double s);

}  // namespace soc::stats
