#include "stats/solve.h"

#include <cmath>

#include "common/error.h"

namespace soc::stats {

Vec solve_gaussian(Matrix a, Vec b) {
  const std::size_t n = a.rows();
  SOC_CHECK(a.cols() == n && b.size() == n, "solve shape mismatch");
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: find largest magnitude on or below the diagonal.
    std::size_t piv = k;
    double best = std::fabs(a(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      if (std::fabs(a(r, k)) > best) {
        best = std::fabs(a(r, k));
        piv = r;
      }
    }
    SOC_CHECK(best > 1e-14, "singular matrix");
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(k, c), a(piv, c));
      std::swap(b[k], b[piv]);
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      const double f = a(r, k) / a(k, k);
      if (f == 0.0) continue;
      for (std::size_t c = k; c < n; ++c) a(r, c) -= f * a(k, c);
      b[r] -= f * b[k];
    }
  }
  Vec x(n);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a(i, c) * x[c];
    x[i] = s / a(i, i);
  }
  return x;
}

Vec solve_cholesky(const Matrix& a, const Vec& b) {
  const std::size_t n = a.rows();
  SOC_CHECK(a.cols() == n && b.size() == n, "solve shape mismatch");
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        SOC_CHECK(s > 0.0, "matrix not positive definite");
        l(i, i) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  // Forward substitution L y = b, then backward L^T x = y.
  Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  Vec x(n);
  for (std::size_t i = n; i-- > 0;) {
    double s = y[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= l(k, i) * x[k];
    x[i] = s / l(i, i);
  }
  return x;
}

Matrix inverse(const Matrix& a) {
  const std::size_t n = a.rows();
  SOC_CHECK(a.cols() == n, "inverse needs square matrix");
  Matrix out(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    Vec e(n, 0.0);
    e[c] = 1.0;
    out.set_col(c, solve_gaussian(a, e));
  }
  return out;
}

}  // namespace soc::stats
