#include "stats/pls.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "stats/descriptive.h"
#include "stats/solve.h"

namespace soc::stats {

namespace {

// Deflates m by the rank-1 outer product s * l^T.
void deflate(Matrix& m, const Vec& s, const Vec& l) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      m(r, c) -= s[r] * l[c];
    }
  }
}

}  // namespace

PlsModel pls_fit(const Matrix& x, const Vec& y, std::size_t max_components) {
  SOC_CHECK(x.rows() == y.size(), "PLS size mismatch");
  SOC_CHECK(x.rows() >= 2, "PLS needs at least two observations");
  SOC_CHECK(max_components >= 1, "PLS needs at least one component");

  PlsModel model;
  Matrix e = standardize(x, &model.x_means, &model.x_scales);
  model.y_mean = mean(y);
  Vec f(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) f[i] = y[i] - model.y_mean;

  const double total_x = e.frobenius_norm() * e.frobenius_norm();
  const std::size_t a_max =
      std::min(max_components, std::min(x.rows() - 1, x.cols()));

  std::vector<Vec> weights, scores, loadings;
  Vec q;
  double explained = 0.0;
  for (std::size_t a = 0; a < a_max; ++a) {
    // PLS1 weight: w = E^T f / ||E^T f||.
    Vec w = e.transposed() * f;
    const double wn = norm(w);
    if (wn < 1e-12) break;  // response residual no longer correlates with X
    w = scaled(w, 1.0 / wn);

    Vec t = e * w;
    const double tt = dot(t, t);
    if (tt < 1e-20) break;

    Vec p = scaled(e.transposed() * t, 1.0 / tt);
    const double qa = dot(f, t) / tt;

    deflate(e, t, p);
    f = axpy(f, -qa, t);

    weights.push_back(std::move(w));
    scores.push_back(std::move(t));
    loadings.push_back(std::move(p));
    q.push_back(qa);

    const double rem = e.frobenius_norm() * e.frobenius_norm();
    explained = total_x > 0.0 ? 1.0 - rem / total_x : 1.0;
    model.x_variance_explained.push_back(explained);
  }
  SOC_CHECK(!weights.empty(), "PLS extracted no components");

  const std::size_t a = weights.size();
  model.components = a;
  model.x_weights = Matrix(x.cols(), a);
  model.x_loadings = Matrix(x.cols(), a);
  model.x_scores = Matrix(x.rows(), a);
  model.y_loadings = q;
  for (std::size_t k = 0; k < a; ++k) {
    model.x_weights.set_col(k, weights[k]);
    model.x_loadings.set_col(k, loadings[k]);
    model.x_scores.set_col(k, scores[k]);
  }

  // β = W (PᵀW)⁻¹ q on the standardized X scale.
  const Matrix ptw = model.x_loadings.transposed() * model.x_weights;
  const Vec inner = solve_gaussian(ptw, q);
  model.coefficients = model.x_weights * inner;

  const Vec yhat = pls_predict(model, x);
  model.r2 = r_squared(y, yhat);
  return model;
}

std::size_t components_for_variance(const PlsModel& model, double fraction) {
  for (std::size_t a = 0; a < model.x_variance_explained.size(); ++a) {
    if (model.x_variance_explained[a] >= fraction) return a + 1;
  }
  return model.components;
}

std::vector<std::size_t> top_variables(const PlsModel& model, std::size_t k) {
  std::vector<std::size_t> idx(model.coefficients.size());
  std::iota(idx.begin(), idx.end(), 0u);
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return std::fabs(model.coefficients[a]) > std::fabs(model.coefficients[b]);
  });
  idx.resize(std::min(k, idx.size()));
  return idx;
}

Vec pls_predict(const PlsModel& model, const Matrix& x) {
  SOC_CHECK(x.cols() == model.x_means.size(), "predict shape mismatch");
  Vec out(x.rows(), model.y_mean);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const double z = (x(r, c) - model.x_means[c]) / model.x_scales[c];
      out[r] += z * model.coefficients[c];
    }
  }
  return out;
}

}  // namespace soc::stats
