#include "stats/lm_fit.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "stats/descriptive.h"
#include "stats/solve.h"

namespace soc::stats {

namespace {

double sse_of(const ModelFn& model, const Vec& xs, const Vec& ys,
              const Vec& theta) {
  double s = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - model(xs[i], theta);
    s += r * r;
  }
  return s;
}

void project(Vec& theta, const Vec& lower) {
  if (lower.empty()) return;
  for (std::size_t i = 0; i < theta.size() && i < lower.size(); ++i) {
    theta[i] = std::max(theta[i], lower[i]);
  }
}

}  // namespace

LmResult lm_fit(const ModelFn& model, const Vec& xs, const Vec& ys,
                Vec initial_theta, const LmOptions& options,
                const Vec& lower_bounds) {
  SOC_CHECK(xs.size() == ys.size(), "sample size mismatch");
  SOC_CHECK(xs.size() >= initial_theta.size(),
            "underdetermined fit: fewer samples than parameters");
  const std::size_t n = xs.size();
  const std::size_t p = initial_theta.size();

  LmResult res;
  res.theta = std::move(initial_theta);
  project(res.theta, lower_bounds);
  res.sse = sse_of(model, xs, ys, res.theta);

  double lambda = options.initial_lambda;
  for (res.iterations = 0; res.iterations < options.max_iterations;
       ++res.iterations) {
    // Finite-difference Jacobian J(i,j) = ∂model(x_i)/∂θ_j.
    Matrix j(n, p);
    Vec r(n);
    for (std::size_t i = 0; i < n; ++i) {
      r[i] = ys[i] - model(xs[i], res.theta);
    }
    for (std::size_t c = 0; c < p; ++c) {
      Vec bumped = res.theta;
      const double h =
          options.fd_step * std::max(1.0, std::fabs(res.theta[c]));
      bumped[c] += h;
      for (std::size_t i = 0; i < n; ++i) {
        j(i, c) = (model(xs[i], bumped) - model(xs[i], res.theta)) / h;
      }
    }

    // Solve (JᵀJ + λ diag(JᵀJ)) δ = Jᵀ r.
    Matrix jtj = j.transposed() * j;
    const Vec jtr = j.transposed() * r;
    Matrix damped = jtj;
    for (std::size_t d = 0; d < p; ++d) {
      damped(d, d) += lambda * std::max(jtj(d, d), 1e-12);
    }

    Vec delta;
    try {
      delta = solve_gaussian(damped, jtr);
    } catch (const Error&) {
      lambda *= options.lambda_up;  // singular step: damp harder and retry
      continue;
    }

    Vec candidate = res.theta;
    for (std::size_t d = 0; d < p; ++d) candidate[d] += delta[d];
    project(candidate, lower_bounds);

    const double candidate_sse = sse_of(model, xs, ys, candidate);
    if (candidate_sse < res.sse) {
      const double improvement = (res.sse - candidate_sse) /
                                 std::max(res.sse, 1e-300);
      res.theta = std::move(candidate);
      res.sse = candidate_sse;
      lambda = std::max(lambda * options.lambda_down, 1e-12);
      if (improvement < options.tolerance) {
        res.converged = true;
        break;
      }
    } else {
      lambda *= options.lambda_up;
      if (lambda > 1e12) {  // no descent direction left
        res.converged = true;
        break;
      }
    }
  }

  Vec fitted(n);
  for (std::size_t i = 0; i < n; ++i) fitted[i] = model(xs[i], res.theta);
  res.r2 = r_squared(ys, fitted);
  return res;
}

}  // namespace soc::stats
