// Ordinary least-squares regression (with optional ridge damping) used to
// regress relative runtime onto PLS scores and to fit speedup-model bases.
#pragma once

#include "stats/matrix.h"

namespace soc::stats {

struct OlsResult {
  Vec coefficients;   ///< One per design-matrix column.
  double intercept;   ///< Fitted intercept (0 when fit_intercept = false).
  double r2;          ///< Coefficient of determination on the training data.
  Vec fitted;         ///< X·β + intercept for each observation.
};

/// Fits y ≈ X·β (+ intercept) by least squares on the normal equations,
/// with Tikhonov damping `ridge` for near-collinear designs.
OlsResult ols(const Matrix& x, const Vec& y, bool fit_intercept = true,
              double ridge = 0.0);

}  // namespace soc::stats
