// Descriptive statistics helpers: mean, variance, standardization, r².
#pragma once

#include "stats/matrix.h"

namespace soc::stats {

double mean(const Vec& v);
/// Sample variance (n-1 denominator); returns 0 for fewer than 2 samples.
double variance(const Vec& v);
double stddev(const Vec& v);

/// Coefficient of determination between observations y and predictions yhat.
double r_squared(const Vec& y, const Vec& yhat);

/// Column means of a matrix.
Vec col_means(const Matrix& m);
/// Column standard deviations (sample).
Vec col_stddevs(const Matrix& m);

/// Centers and scales every column to zero mean / unit variance.  Columns
/// with ~zero variance are centered only.  Returns the standardized matrix
/// and reports the applied means/scales through the out-params.
Matrix standardize(const Matrix& m, Vec* out_means, Vec* out_scales);

}  // namespace soc::stats
