#include "stats/matrix.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace soc::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<Vec>& rows) {
  SOC_CHECK(!rows.empty(), "no rows");
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    SOC_CHECK(rows[r].size() == m.cols_, "ragged rows");
    for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  SOC_CHECK(r < rows_ && c < cols_, "index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  SOC_CHECK(r < rows_ && c < cols_, "index out of range");
  return data_[r * cols_ + c];
}

Vec Matrix::row(std::size_t r) const {
  SOC_CHECK(r < rows_, "row out of range");
  return Vec(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
             data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

Vec Matrix::col(std::size_t c) const {
  SOC_CHECK(c < cols_, "col out of range");
  Vec v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = data_[r * cols_ + c];
  return v;
}

void Matrix::set_col(std::size_t c, const Vec& v) {
  SOC_CHECK(c < cols_ && v.size() == rows_, "set_col size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = v[r];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  SOC_CHECK(cols_ == rhs.rows_, "matmul shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += a * rhs(k, j);
      }
    }
  }
  return out;
}

Vec Matrix::operator*(const Vec& v) const {
  SOC_CHECK(cols_ == v.size(), "matvec shape mismatch");
  Vec out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) s += (*this)(i, j) * v[j];
    out[i] = s;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  SOC_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  SOC_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_, "shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix Matrix::scaled(double s) const {
  Matrix out = *this;
  for (double& x : out.data_) x *= s;
  return out;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

std::string Matrix::str(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (std::size_t c = 0; c < cols_; ++c) {
      os << (*this)(r, c) << (c + 1 < cols_ ? ", " : "");
    }
    os << "]\n";
  }
  return os.str();
}

double dot(const Vec& a, const Vec& b) {
  SOC_CHECK(a.size() == b.size(), "dot size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(const Vec& v) { return std::sqrt(dot(v, v)); }

Vec axpy(const Vec& a, double s, const Vec& b) {
  SOC_CHECK(a.size() == b.size(), "axpy size mismatch");
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

Vec scaled(const Vec& v, double s) {
  Vec out(v);
  for (double& x : out) x *= s;
  return out;
}

}  // namespace soc::stats
