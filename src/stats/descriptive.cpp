#include "stats/descriptive.h"

#include <cmath>

#include "common/error.h"

namespace soc::stats {

double mean(const Vec& v) {
  SOC_CHECK(!v.empty(), "mean of empty vector");
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(const Vec& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size() - 1);
}

double stddev(const Vec& v) { return std::sqrt(variance(v)); }

double r_squared(const Vec& y, const Vec& yhat) {
  SOC_CHECK(y.size() == yhat.size() && !y.empty(), "r² size mismatch");
  const double m = mean(y);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    ss_res += (y[i] - yhat[i]) * (y[i] - yhat[i]);
    ss_tot += (y[i] - m) * (y[i] - m);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

Vec col_means(const Matrix& m) {
  Vec out(m.cols());
  for (std::size_t c = 0; c < m.cols(); ++c) out[c] = mean(m.col(c));
  return out;
}

Vec col_stddevs(const Matrix& m) {
  Vec out(m.cols());
  for (std::size_t c = 0; c < m.cols(); ++c) out[c] = stddev(m.col(c));
  return out;
}

Matrix standardize(const Matrix& m, Vec* out_means, Vec* out_scales) {
  Vec means = col_means(m);
  Vec scales = col_stddevs(m);
  Matrix out(m.rows(), m.cols());
  for (std::size_t c = 0; c < m.cols(); ++c) {
    const double scale = scales[c] > 1e-12 ? scales[c] : 1.0;
    scales[c] = scale;
    for (std::size_t r = 0; r < m.rows(); ++r) {
      out(r, c) = (m(r, c) - means[c]) / scale;
    }
  }
  if (out_means != nullptr) *out_means = std::move(means);
  if (out_scales != nullptr) *out_scales = std::move(scales);
  return out;
}

}  // namespace soc::stats
