// Order-sensitive FNV-1a (64-bit) hashing.
//
// The determinism auditor folds the engine's committed event stream into
// one of these digests: two replays of the same (programs, cost model,
// scenario) triple must produce bit-identical values, on every platform.
// Fields are decomposed into bytes explicitly (little-endian, fixed
// width), so the digest never depends on host endianness or padding.
#pragma once

#include <cstdint>

namespace soc {

/// Incremental FNV-1a 64-bit digest.  Mix order matters — that is the
/// point: the digest certifies the *sequence* of mixed records, not a set.
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  constexpr std::uint64_t value() const { return state_; }

  constexpr Fnv1a& mix_byte(std::uint8_t b) {
    state_ = (state_ ^ b) * kPrime;
    return *this;
  }

  /// Mixes a 64-bit value as 8 little-endian bytes.
  constexpr Fnv1a& mix_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    return *this;
  }

  constexpr Fnv1a& mix_i64(std::int64_t v) {
    return mix_u64(static_cast<std::uint64_t>(v));
  }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

}  // namespace soc
