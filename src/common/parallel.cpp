#include "common/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.h"

namespace soc {

unsigned effective_threads(unsigned threads, std::size_t count) {
  if (count == 0) return 0;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  return static_cast<unsigned>(std::min<std::size_t>(threads, count));
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  unsigned threads) {
  SOC_CHECK(fn != nullptr, "parallel_for needs a body");
  if (count == 0) return;
  threads = effective_threads(threads, count);

  if (threads == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace soc
