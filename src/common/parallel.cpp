#include "common/parallel.h"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/thread_safety.h"

namespace soc {

unsigned effective_threads(unsigned threads, std::size_t count) {
  if (count == 0) return 0;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  return static_cast<unsigned>(std::min<std::size_t>(threads, count));
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  unsigned threads) {
  SOC_CHECK(fn != nullptr, "parallel_for needs a body");
  if (count == 0) return;
  threads = effective_threads(threads, count);

  if (threads == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // SOC_SHARED(atomic) — the work-stealing cursor every worker increments.
  std::atomic<std::size_t> next{0};

  // First exception thrown by any task, kept behind an annotated lock so
  // the capture below is checkable under -Wthread-safety.
  struct ErrorSlot {
    Mutex mutex;  // SOC_SHARED(self)
    std::exception_ptr first SOC_GUARDED_BY(mutex);
  } error;

  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const MutexLock lock(error.mutex);
        if (!error.first) error.first = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  std::exception_ptr pending;
  {
    const MutexLock lock(error.mutex);
    pending = error.first;
  }
  if (pending) std::rethrow_exception(pending);
}

}  // namespace soc
