// Host-side parallelism for the benchmark harness.
//
// Each simulator run is single-threaded and deterministic; independent
// runs (different cluster sizes, NICs, workloads) share no mutable state,
// so the sweep benches fan them out across host cores.  CP.4 of the Core
// Guidelines: think in terms of tasks — parallel_for takes an index range
// and a task body, and joins before returning.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>

namespace soc {

/// Threads parallel_for(count, fn, threads) will actually use: resolves
/// 0 to the hardware concurrency (at least 1) and never exceeds `count`.
/// Exposed so callers (the sweep runner's summary, tests) can report the
/// effective fan-out without duplicating the policy.
unsigned effective_threads(unsigned threads, std::size_t count);

/// Runs fn(i) for i in [0, count) across up to `threads` host threads
/// (0 = hardware concurrency).  Blocks until every task finished.  If any
/// task throws, one of the exceptions is rethrown after the join.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  unsigned threads = 0);

/// Reusable cyclic barrier: `parties` threads call arrive_and_wait() and
/// all block until the last one arrives, then the barrier resets for the
/// next cycle.  Arrival publishes everything the thread wrote before the
/// call to every thread that leaves the barrier (the mutex gives the
/// happens-before edge), which is exactly the discipline the engine's
/// shard mailboxes rely on: a mailbox is written only before a barrier
/// and drained only after it, so it needs no synchronization of its own.
class Barrier {
 public:
  explicit Barrier(int parties) : parties_(parties) {}
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(m_);
    const std::uint64_t cycle = cycle_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++cycle_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return cycle_ != cycle; });
  }

 private:
  std::mutex m_;                // SOC_SHARED(barrier-internal)
  std::condition_variable cv_;  // SOC_SHARED(m_)
  int parties_;
  int arrived_ = 0;             // SOC_SHARED(m_)
  std::uint64_t cycle_ = 0;     // SOC_SHARED(m_)
};

}  // namespace soc
