// Host-side parallelism for the benchmark harness.
//
// Each simulator run is single-threaded and deterministic; independent
// runs (different cluster sizes, NICs, workloads) share no mutable state,
// so the sweep benches fan them out across host cores.  CP.4 of the Core
// Guidelines: think in terms of tasks — parallel_for takes an index range
// and a task body, and joins before returning.
#pragma once

#include <cstddef>
#include <functional>

namespace soc {

/// Threads parallel_for(count, fn, threads) will actually use: resolves
/// 0 to the hardware concurrency (at least 1) and never exceeds `count`.
/// Exposed so callers (the sweep runner's summary, tests) can report the
/// effective fan-out without duplicating the policy.
unsigned effective_threads(unsigned threads, std::size_t count);

/// Runs fn(i) for i in [0, count) across up to `threads` host threads
/// (0 = hardware concurrency).  Blocks until every task finished.  If any
/// task throws, one of the exceptions is rethrown after the join.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  unsigned threads = 0);

}  // namespace soc
