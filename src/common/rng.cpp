#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace soc {

std::uint64_t Rng::next_u64() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  SOC_CHECK(n > 0, "next_below(0)");
  // Multiply-shift bounded rejection-free mapping (slight bias is
  // irrelevant for simulation streams but the mapping is deterministic).
  const unsigned __int128 m =
      static_cast<unsigned __int128>(next_u64()) * static_cast<unsigned __int128>(n);
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_range(double lo, double hi) {
  SOC_CHECK(lo <= hi, "empty range");
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) { return next_double() < p; }

double Rng::next_gaussian() {
  // Box–Muller; regenerate u1 until non-zero so log() is defined.
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::split(std::uint64_t stream) const {
  // Mix the stream key through one SplitMix step relative to our state.
  Rng child(state_ ^ (0x9E3779B97F4A7C15ull * (stream + 1)));
  child.next_u64();  // decorrelate the first output
  return child;
}

}  // namespace soc
