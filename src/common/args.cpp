#include "common/args.h"

#include <sstream>

#include "common/error.h"

namespace soc {

void ArgParser::add_flag(const std::string& name, const std::string& help,
                         const std::string& default_value) {
  SOC_CHECK(!flags_.count(name), "duplicate flag: " + name);
  flags_[name] = Flag{help, default_value, false, false};
  order_.push_back(name);
}

void ArgParser::add_bool(const std::string& name, const std::string& help) {
  SOC_CHECK(!flags_.count(name), "duplicate flag: " + name);
  flags_[name] = Flag{help, "false", true, false};
  order_.push_back(name);
}

void ArgParser::parse(int argc, const char* const* argv, int start) {
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg;
    std::optional<std::string> inline_value;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }
    auto it = flags_.find(name);
    SOC_CHECK(it != flags_.end(), "unknown flag: " + name);
    Flag& flag = it->second;
    flag.given = true;
    if (flag.is_bool) {
      SOC_CHECK(!inline_value.has_value() || *inline_value == "true" ||
                    *inline_value == "false",
                "boolean flag " + name + " takes no value");
      flag.value = inline_value.value_or("true");
    } else if (inline_value.has_value()) {
      flag.value = *inline_value;
    } else {
      SOC_CHECK(i + 1 < argc, "flag " + name + " needs a value");
      flag.value = argv[++i];
    }
  }
}

const std::string& ArgParser::get(const std::string& name) const {
  const auto it = flags_.find(name);
  SOC_CHECK(it != flags_.end(), "undeclared flag: " + name);
  return it->second.value;
}

int ArgParser::get_int(const std::string& name) const {
  const std::string& v = get(name);
  try {
    return std::stoi(v);
  } catch (const std::exception&) {
    throw Error("flag " + name + " expects an integer, got '" + v + "'");
  }
}

double ArgParser::get_double(const std::string& name) const {
  const std::string& v = get(name);
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw Error("flag " + name + " expects a number, got '" + v + "'");
  }
}

bool ArgParser::get_bool(const std::string& name) const {
  return get(name) == "true";
}

bool ArgParser::given(const std::string& name) const {
  const auto it = flags_.find(name);
  SOC_CHECK(it != flags_.end(), "undeclared flag: " + name);
  return it->second.given;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  for (const std::string& name : order_) {
    const Flag& flag = flags_.at(name);
    os << "  " << name;
    if (!flag.is_bool) os << " <value>";
    os << "\n      " << flag.help;
    if (!flag.is_bool && !flag.value.empty()) {
      os << " (default: " << flag.value << ")";
    }
    os << "\n";
  }
  return os.str();
}

std::vector<int> parse_int_list(const std::string& csv) {
  std::vector<int> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    try {
      out.push_back(std::stoi(item));
    } catch (const std::exception&) {
      throw Error("bad integer in list: '" + item + "'");
    }
  }
  SOC_CHECK(!out.empty(), "empty integer list");
  return out;
}

std::vector<std::string> parse_string_list(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    SOC_CHECK(!item.empty(), "empty entry in list: '" + csv + "'");
    out.push_back(item);
  }
  SOC_CHECK(!out.empty(), "empty string list");
  return out;
}

std::vector<double> parse_double_list(const std::string& csv) {
  std::vector<double> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    try {
      out.push_back(std::stod(item));
    } catch (const std::exception&) {
      throw Error("bad number in list: '" + item + "'");
    }
  }
  SOC_CHECK(!out.empty(), "empty number list");
  return out;
}

}  // namespace soc
