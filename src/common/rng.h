// Deterministic random number generation.
//
// All stochastic choices in the simulator (synthetic address streams,
// branch outcome streams, load-imbalance jitter) flow through Rng so that
// every run is bit-reproducible from its seed.  The generator is
// SplitMix64: tiny state, excellent statistical quality for simulation
// purposes, and `split()` derives independent streams so that parallel
// components never share a sequence.
#pragma once

#include <cstdint>

namespace soc {

/// SplitMix64 deterministic generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, n).  n must be > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_range(double lo, double hi);

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double next_gaussian();

  /// Derives an independent generator keyed by `stream`.  Two splits with
  /// different keys from the same parent produce uncorrelated sequences.
  Rng split(std::uint64_t stream) const;

 private:
  std::uint64_t state_;
};

}  // namespace soc
