#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace soc {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SOC_CHECK(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  SOC_CHECK(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::eng(double v) {
  const double a = std::fabs(v);
  char buf[64];
  if (a != 0.0 && (a >= 1e6 || a < 1e-3)) {
    std::snprintf(buf, sizeof(buf), "%.3g", v);
  } else if (a >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace soc
