// Deterministic open-addressing flat map.
//
// The replay engine keeps its pending-message tables in these.  Two
// properties make that safe where std::unordered_map is banned (see
// soclint's unordered-in-sim-state rule):
//
//  1. Iteration walks entries in *insertion order* — entries live in a
//     plain vector and the hash table is only an index over it — so any
//     walk over the map is as reproducible as the insertion sequence.
//  2. Lookups compare full keys, never hashes alone, so a hash collision
//     can change probe counts but never which entry is found.
//
// The trade against std::map: O(1) expected find/insert with zero
// per-node allocation (one vector for entries, one for slots), at the
// cost of no erase and no sorted order.  The engine needs neither — its
// tables are cleared wholesale between runs and never iterated.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.h"

namespace soc {

/// Default hash: splitmix64 finalizer for integral keys.  Full-width
/// mixing keeps linear probing well distributed even for packed bitfield
/// keys (e.g. the engine's MsgKey) whose low bits carry little entropy.
template <typename Key>
struct FlatMapHash {
  static_assert(std::is_integral_v<Key> || std::is_enum_v<Key>,
                "provide a custom Hash for non-integral keys");
  std::uint64_t operator()(const Key& key) const {
    std::uint64_t x = static_cast<std::uint64_t>(key);
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }
};

/// Insertion-ordered open-addressing hash map.  No erase by design: the
/// engine's tables only grow within a run and reset wholesale, and the
/// absence of tombstones keeps probing trivially correct.
template <typename Key, typename Value, typename Hash = FlatMapHash<Key>>
class flat_map {
 public:
  using value_type = std::pair<Key, Value>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  flat_map() = default;

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Insertion-order iteration (the determinism contract).
  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  /// Drops all entries but keeps both allocations for reuse.
  void clear() {
    entries_.clear();
    slots_.assign(slots_.size(), kEmpty);
  }

  /// Pre-sizes for `n` entries so the hot path never rehashes.
  void reserve(std::size_t n) {
    entries_.reserve(n);
    const std::size_t want = slot_count_for(n);
    if (want > slots_.size()) rehash(want);
  }

  /// Pointer to the mapped value, or nullptr when absent.
  Value* find(const Key& key) {
    const std::size_t slot = find_slot(key);
    if (slots_.empty() || slots_[slot] == kEmpty) return nullptr;
    return &entries_[slots_[slot]].second;
  }
  const Value* find(const Key& key) const {
    return const_cast<flat_map*>(this)->find(key);
  }

  /// Value for `key`, default-constructed and inserted when absent.
  Value& operator[](const Key& key) {
    if (slots_.empty()) rehash(kMinSlots);
    std::size_t slot = find_slot(key);
    if (slots_[slot] == kEmpty) {
      if (needs_growth()) {
        rehash(slots_.size() * 2);
        slot = find_slot(key);
      }
      slots_[slot] = static_cast<std::uint32_t>(entries_.size());
      entries_.emplace_back(key, Value{});
    }
    return entries_[slots_[slot]].second;
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
  static constexpr std::size_t kMinSlots = 16;

  /// Smallest power-of-two slot table holding `n` entries below the 0.7
  /// load-factor ceiling.
  static std::size_t slot_count_for(std::size_t n) {
    std::size_t slots = kMinSlots;
    while (static_cast<double>(n) >= 0.7 * static_cast<double>(slots)) {
      slots *= 2;
    }
    return slots;
  }

  bool needs_growth() const {
    return static_cast<double>(entries_.size() + 1) >=
           0.7 * static_cast<double>(slots_.size());
  }

  /// Linear probe: slot holding `key`, or the empty slot where it would
  /// be inserted.  Requires a non-empty slot table unless the map is empty.
  std::size_t find_slot(const Key& key) const {
    if (slots_.empty()) return 0;
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot = static_cast<std::size_t>(Hash{}(key)) & mask;
    while (slots_[slot] != kEmpty) {
      if (entries_[slots_[slot]].first == key) return slot;
      slot = (slot + 1) & mask;
    }
    return slot;
  }

  void rehash(std::size_t new_slot_count) {
    SOC_CHECK((new_slot_count & (new_slot_count - 1)) == 0,
              "flat_map slot count must be a power of two");
    slots_.assign(new_slot_count, kEmpty);
    const std::size_t mask = new_slot_count - 1;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::size_t slot =
          static_cast<std::size_t>(Hash{}(entries_[i].first)) & mask;
      while (slots_[slot] != kEmpty) slot = (slot + 1) & mask;
      slots_[slot] = static_cast<std::uint32_t>(i);
    }
  }

  std::vector<value_type> entries_;     ///< Insertion-ordered payload.
  std::vector<std::uint32_t> slots_;    ///< Power-of-two probe table.
};

}  // namespace soc
