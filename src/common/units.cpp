#include "common/units.h"

#include <cmath>

#include "common/error.h"

namespace soc {

SimTime from_seconds(double s) {
  SOC_CHECK(s >= 0.0, "negative duration");
  SOC_CHECK(s < 9.0e9, "duration overflows SimTime");
  return static_cast<SimTime>(std::llround(s * static_cast<double>(kSecond)));
}

SimTime transfer_time(Bytes bytes, double bytes_per_second) {
  SOC_CHECK(bytes >= 0, "negative transfer size");
  SOC_CHECK(bytes_per_second > 0.0, "non-positive bandwidth");
  if (bytes == 0) return 0;
  const double secs = static_cast<double>(bytes) / bytes_per_second;
  SimTime t = from_seconds(secs);
  return t > 0 ? t : 1;
}

}  // namespace soc
