// Minimal command-line argument parser for the tools/ binaries.
//
// Supports `--flag value`, `--flag=value`, and boolean `--flag` forms,
// plus positional arguments.  Unknown flags are an error (typos should
// not be silently ignored on a measurement tool).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace soc {

class ArgParser {
 public:
  /// Declares a value flag (e.g. "--nodes").  `help` appears in usage().
  void add_flag(const std::string& name, const std::string& help,
                const std::string& default_value = "");
  /// Declares a boolean flag (present/absent).
  void add_bool(const std::string& name, const std::string& help);

  /// Parses argv[start..); throws soc::Error on unknown or malformed
  /// flags.
  void parse(int argc, const char* const* argv, int start = 1);

  /// Value of a declared flag (default if not given on the command line).
  const std::string& get(const std::string& name) const;
  int get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  /// True when the user explicitly supplied the flag.
  bool given(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Formatted flag documentation.
  std::string usage() const;

 private:
  struct Flag {
    std::string help;
    std::string value;
    bool is_bool = false;
    bool given = false;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

/// Splits "2,4,8,16" into integers; throws on malformed entries.
std::vector<int> parse_int_list(const std::string& csv);

/// Splits "0.6,0.8,1.0" into doubles; throws on malformed entries.
std::vector<double> parse_double_list(const std::string& csv);

/// Splits "hpl,jacobi" into strings; throws on empty entries.
std::vector<std::string> parse_string_list(const std::string& csv);

}  // namespace soc
