// Error handling for soccluster.
//
// The library throws soc::Error for precondition violations and
// unrecoverable simulation faults.  SOC_CHECK is used at public API
// boundaries and for internal invariants that depend on caller input;
// assert() remains for pure internal logic errors.
#pragma once

#include <stdexcept>
#include <string>

namespace soc {

/// Exception type thrown by all soccluster components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace soc

/// Validate a condition; throws soc::Error with source location on failure.
#define SOC_CHECK(cond, msg)                                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::soc::detail::throw_check_failure(#cond, __FILE__, __LINE__, msg); \
    }                                                                    \
  } while (0)
