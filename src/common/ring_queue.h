// Pooled ring-buffer FIFO with inline small-buffer storage.
//
// Replaces the per-match std::deque nodes in the engine's pending-message
// tables.  Message tags are allocated monotonically (msg::ProgramSet
// never reuses one), so nearly every (src, dst, tag) flow parks at most
// one endpoint before it matches — a deque heap-allocates a node for
// each, which makes steady-state replay churn the allocator once per
// message.  This ring holds its first kInlineCapacity elements inside
// the object and only spills to the heap on deeper queues, so the common
// match path performs no allocation at all; the spill buffer, once
// grown, is retained across pop/clear.
#pragma once

#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/error.h"

namespace soc {

/// Single-ended FIFO over a power-of-two circular buffer.  pop_front()
/// and clear() retain capacity; growth copies in FIFO order, so element
/// order never depends on buffer geometry.
template <typename T>
class RingQueue {
 public:
  /// Depth served by the in-object buffer (no heap allocation).
  static constexpr std::size_t kInlineCapacity = 2;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Drops all elements but keeps the buffer.
  void clear() {
    head_ = 0;
    size_ = 0;
  }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(capacity_for(n));
  }

  void push_back(T value) {
    if (size_ == capacity_) grow(capacity_for(size_ + 1));
    data()[(head_ + size_) & (capacity_ - 1)] = std::move(value);
    ++size_;
  }

  T& front() {
    SOC_CHECK(size_ > 0, "front of empty ring queue");
    return data()[head_];
  }
  const T& front() const {
    SOC_CHECK(size_ > 0, "front of empty ring queue");
    return data()[head_];
  }

  void pop_front() {
    SOC_CHECK(size_ > 0, "pop from empty ring queue");
    head_ = (head_ + 1) & (capacity_ - 1);
    --size_;
  }

 private:
  static_assert((kInlineCapacity & (kInlineCapacity - 1)) == 0,
                "inline capacity must be a power of two");

  static std::size_t capacity_for(std::size_t n) {
    std::size_t cap = kInlineCapacity;
    while (cap < n) cap *= 2;
    return cap;
  }

  T* data() { return capacity_ == kInlineCapacity ? inline_.data() : spill_.data(); }
  const T* data() const {
    return capacity_ == kInlineCapacity ? inline_.data() : spill_.data();
  }

  void grow(std::size_t new_capacity) {
    std::vector<T> grown(new_capacity);
    for (std::size_t i = 0; i < size_; ++i) {
      grown[i] = std::move(data()[(head_ + i) & (capacity_ - 1)]);
    }
    spill_ = std::move(grown);
    capacity_ = new_capacity;
    head_ = 0;
  }

  std::array<T, kInlineCapacity> inline_{};
  std::vector<T> spill_;
  std::size_t capacity_ = kInlineCapacity;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace soc
