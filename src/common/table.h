// Plain-text table formatting used by the benchmark harness to print
// paper-style tables and figure series.  Columns auto-size to their
// contents; numeric cells are rendered with a caller-chosen precision.
#pragma once

#include <string>
#include <vector>

namespace soc {

/// Accumulates rows of string cells and renders an aligned text table.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with fixed precision (helper for building cells).
  static std::string num(double v, int precision = 2);

  /// Formats a double in scientific-ish engineering style when magnitudes
  /// vary widely (chooses fixed or exponent form automatically).
  static std::string eng(double v);

  /// Renders the table, headers first, columns separated by two spaces.
  std::string str() const;

  std::size_t rows() const { return rows_.size(); }

  /// Read access for exporters that re-serialize a table (e.g. the bench
  /// JSON artifacts in bench/bench_common.h).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& cells() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace soc
