// Simulation units.
//
// Simulated time is kept in integer nanoseconds so that event ordering is
// exactly reproducible across platforms; conversions to floating-point
// seconds happen only at reporting boundaries.  Data sizes are in bytes
// (int64), rates in bytes/second or FLOP/s (double — rates are model
// parameters, not state).
#pragma once

#include <cstdint>

namespace soc {

/// Simulated time in integer nanoseconds.
using SimTime = std::int64_t;

/// Data volume in bytes.
using Bytes = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;
inline constexpr Bytes kKB = 1000;
inline constexpr Bytes kMB = 1000 * kKB;
inline constexpr Bytes kGB = 1000 * kMB;

/// Converts simulated time to floating-point seconds (reporting only).
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts floating-point seconds to simulated time, rounding to the
/// nearest nanosecond.  Durations are clamped to be non-negative.
SimTime from_seconds(double s);

/// Time to move `bytes` at `bytes_per_second`, rounded up to ≥ 1 ns for any
/// non-empty transfer so zero-duration events cannot starve the engine.
SimTime transfer_time(Bytes bytes, double bytes_per_second);

/// Gb/s of NIC marketing units -> bytes/second.
constexpr double gbit_per_s(double gbit) { return gbit * 1e9 / 8.0; }

}  // namespace soc
