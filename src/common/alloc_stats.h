// Process-wide allocation counter.
//
// The perf harness reports allocations-per-event so the "steady-state
// replay allocates nothing" property is a measured number, not a claim.
// The counter itself lives in soc_common; the operator new/delete
// replacements that feed it live in the separate soc_alloc_hooks link-in
// library (alloc_hooks.cpp) so ordinary binaries and sanitizer builds
// keep the toolchain's allocator.  Without the hooks linked in,
// allocation_count() stays 0.
#pragma once

#include <cstdint>

namespace soc {

/// Number of operator new invocations observed since process start
/// (0 unless soc_alloc_hooks is linked into the binary).
std::uint64_t allocation_count();

namespace detail {
/// Called by the alloc hooks; not for general use.
void count_allocation();
}  // namespace detail

}  // namespace soc
