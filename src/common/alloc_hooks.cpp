// Counting operator new/delete replacements (soc_alloc_hooks library).
//
// Linked only into binaries that report allocation counts (socbench,
// bench/perf_engine).  Under AddressSanitizer & friends the sanitizer
// runtime must own the allocator, so the hooks compile away and
// allocation_count() reads 0 — the perf harness prints counts only when
// they are live.
#include <cstdlib>
#include <new>

#include "common/alloc_stats.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SOC_ALLOC_HOOKS_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define SOC_ALLOC_HOOKS_DISABLED 1
#endif
#endif

#ifndef SOC_ALLOC_HOOKS_DISABLED

namespace {

void* counted_alloc(std::size_t size) {
  soc::detail::count_allocation();
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  soc::detail::count_allocation();
  const std::size_t a = static_cast<std::size_t>(align);
  // aligned_alloc requires size to be a multiple of the alignment.
  size = (size + a - 1) / a * a;
  if (size == 0) size = a;
  void* p = std::aligned_alloc(a, size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // SOC_ALLOC_HOOKS_DISABLED
