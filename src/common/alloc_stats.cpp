#include "common/alloc_stats.h"

#include <atomic>

namespace soc {

namespace {
// Process-wide counter fed by the optional operator-new hooks; a relaxed
// atomic is the whole synchronization story.  SOC_SHARED(atomic)
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

namespace detail {
void count_allocation() {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

}  // namespace soc
