// Clang thread-safety annotations and the annotated lock types that make
// them checkable.
//
// The SOC_* capability macros map to Clang's -Wthread-safety attributes
// (guarded_by, acquire_capability, ...) and expand to nothing on every
// other compiler, so annotating a member costs nothing on GCC and turns
// into a compile-time proof obligation under
// `cmake -DSOC_WERROR_THREAD_SAFETY=ON` with Clang.
//
// libstdc++'s std::mutex/std::lock_guard carry no capability attributes,
// so Clang cannot see them acquire or release anything; soc::Mutex and
// soc::MutexLock are the thin annotated equivalents every lock-guarded
// member in this tree must use.  tools/soclint's shared-mutable-state
// pass enforces the companion convention: every synchronization
// primitive or shared-mutable declaration carries a `// SOC_SHARED(<guard>)`
// comment naming the discipline that makes it safe.
#pragma once

#include <mutex>

#if defined(__clang__)
#define SOC_TS_ATTR(x) __attribute__((x))
#else
#define SOC_TS_ATTR(x)  // no-op outside Clang
#endif

/// Marks a type as a capability (lockable) for the analysis.
#define SOC_CAPABILITY(x) SOC_TS_ATTR(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define SOC_SCOPED_CAPABILITY SOC_TS_ATTR(scoped_lockable)
/// Data member readable/writable only while holding `x`.
#define SOC_GUARDED_BY(x) SOC_TS_ATTR(guarded_by(x))
/// Pointee guarded by `x` (the pointer itself is not).
#define SOC_PT_GUARDED_BY(x) SOC_TS_ATTR(pt_guarded_by(x))
/// Function that must be called while holding the given capabilities.
#define SOC_REQUIRES(...) SOC_TS_ATTR(requires_capability(__VA_ARGS__))
/// Function that acquires the given capabilities and does not release them.
#define SOC_ACQUIRE(...) SOC_TS_ATTR(acquire_capability(__VA_ARGS__))
/// Function that releases the given capabilities.
#define SOC_RELEASE(...) SOC_TS_ATTR(release_capability(__VA_ARGS__))
/// Function that must NOT be called while holding the given capabilities.
#define SOC_EXCLUDES(...) SOC_TS_ATTR(locks_excluded(__VA_ARGS__))
/// Escape hatch: disables the analysis for one function body.
#define SOC_NO_THREAD_SAFETY_ANALYSIS SOC_TS_ATTR(no_thread_safety_analysis)

namespace soc {

/// std::mutex with capability attributes so Clang's analysis can track
/// it.  Lock through MutexLock; the raw lock()/unlock() exist for the
/// rare non-scoped pattern and carry the acquire/release attributes.
class SOC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SOC_ACQUIRE() { m_.lock(); }
  void unlock() SOC_RELEASE() { m_.unlock(); }

 private:
  std::mutex m_;  // SOC_SHARED(self) — the primitive the wrapper annotates
};

/// Scoped lock: acquires in the constructor, releases in the destructor,
/// and tells the analysis so (std::lock_guard is opaque to it).
class SOC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SOC_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() SOC_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace soc
