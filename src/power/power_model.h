// Node power model and energy metering.
//
// The paper measures whole-cluster power at the wall socket at 1 Hz and
// reports total energy and MFLOPS/W.  We rebuild that instrument: a
// per-node component model (idle + CPU + GPU + DRAM + NIC) integrated
// over the engine's busy-time timelines, sampled at the same 1 Hz.
//
// The binned PowerTimeline is also the substrate for the energy
// observability layer (src/prof/energy.*): the attribution pass and the
// DVFS/power-cap what-ifs re-integrate the same bins with the same
// floating-point operation sequence, so their totals reproduce
// measure_energy() bit-exactly.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/stats.h"

namespace soc::power {

/// Component power of one node (watts).
struct NodePowerConfig {
  std::string name = "jetson-tx1";
  double idle_w = 3.5;           ///< Board at rest (no NIC add-on).
  double cpu_core_active_w = 1.6;  ///< Per fully-busy core.
  double gpu_active_w = 7.0;     ///< GPU at full utilization.
  double dram_w_per_gbps = 0.25; ///< DRAM power per GB/s of traffic.
  double nic_idle_w = 0.3;       ///< Installed NIC baseline.
  double nic_active_w = 0.7;     ///< Additional while transferring.
  /// Host "power tax": chassis/PSU/fans (significant for Xeon hosts).
  double host_overhead_w = 0.0;
  /// Voltage-frequency power curve for DVFS studies: active component
  /// power at relative frequency f multiplies by f^dvfs_power_exponent.
  /// Dynamic power ~ f.V^2 with V tracking roughly sqrt(f) over the
  /// usable range gives the exponent 2.5 (the bench/extension_dvfs.cpp
  /// model); idle, NIC, and DRAM-idle draw are frequency-independent.
  double dvfs_power_exponent = 2.5;

  bool operator==(const NodePowerConfig&) const = default;
};

/// Active-power multiplier at relative frequency `freq_scale` (1.0 at
/// the shipped clocks; exact identity there, so baseline what-ifs are
/// bit-exact round trips).
double dvfs_power_factor(const NodePowerConfig& node, double freq_scale);

/// Energy split by component (sums to `joules`).
struct EnergyBreakdown {
  double idle = 0.0;   ///< Board idle + host overhead.
  double cpu = 0.0;
  double gpu = 0.0;
  double nic = 0.0;    ///< NIC idle + active.
  double dram = 0.0;

  bool operator==(const EnergyBreakdown&) const = default;
};

/// One sampled run's energy accounting.
struct EnergyReport {
  double joules = 0.0;
  double average_watts = 0.0;
  double peak_watts = 0.0;
  double seconds = 0.0;
  EnergyBreakdown breakdown;
  /// Wall-socket style samples, one per second of simulated time.
  std::vector<double> samples_w;
  /// Per-component split of each 1 Hz sample (same indexing as
  /// `samples_w`; the components sum to the total sample).
  std::vector<EnergyBreakdown> samples_parts;

  /// Energy efficiency in MFLOPS/W given the run's FLOP count.
  double mflops_per_watt(double flops) const;
};

/// Binned whole-cluster power over one run: bin b covers
/// [b*bin_seconds, min((b+1)*bin_seconds, seconds)).  Shared between
/// measure_energy() and the prof energy-attribution/what-if passes so
/// every consumer integrates the identical bins.
struct PowerTimeline {
  double bin_seconds = 0.0;
  double seconds = 0.0;  ///< Run length; the last bin may be partial.
  std::vector<double> bin_watts;          ///< Total watts per bin.
  std::vector<EnergyBreakdown> bin_parts; ///< Component watts per bin.

  /// Width of bin b in seconds (matches the integration expression).
  double width(std::size_t b) const;
};

/// Builds the binned power timeline from a run's per-node busy
/// timelines.  All nodes share one NodePowerConfig (homogeneous
/// clusters, as in the paper).  Empty (zero bins) for zero-length runs.
PowerTimeline power_timeline(const sim::RunStats& stats,
                             const NodePowerConfig& node, int cores_per_node);

/// Integrates the power model over a run's per-node timelines.
EnergyReport measure_energy(const sim::RunStats& stats,
                            const NodePowerConfig& node, int cores_per_node);

/// One power-cap what-if: every bin whose sampled watts exceed the cap
/// is dilated so its *active* energy (everything above the
/// frequency-independent idle floor) completes at the capped rate, while
/// idle draw accrues over the stretched time.  Bins at or under the cap
/// pass through untouched, so a cap at or above peak_watts reproduces
/// the measured integral bit-exactly (and extra_seconds == 0).
struct CappedEnergy {
  EnergyReport energy;        ///< Re-integrated under the cap (no samples).
  double extra_seconds = 0.0; ///< Runtime added by dilation.
  std::size_t capped_bins = 0;
};

/// `nodes` is the cluster size; the idle floor per bin is the board +
/// host + NIC-idle draw.  Throws soc::Error when the cap does not clear
/// the idle floor (the run could never finish).
CappedEnergy apply_power_cap(const PowerTimeline& timeline,
                             const NodePowerConfig& node, int nodes,
                             double cap_w);

}  // namespace soc::power
