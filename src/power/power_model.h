// Node power model and energy metering.
//
// The paper measures whole-cluster power at the wall socket at 1 Hz and
// reports total energy and MFLOPS/W.  We rebuild that instrument: a
// per-node component model (idle + CPU + GPU + DRAM + NIC) integrated
// over the engine's busy-time timelines, sampled at the same 1 Hz.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "sim/stats.h"

namespace soc::power {

/// Component power of one node (watts).
struct NodePowerConfig {
  std::string name = "jetson-tx1";
  double idle_w = 3.5;           ///< Board at rest (no NIC add-on).
  double cpu_core_active_w = 1.6;  ///< Per fully-busy core.
  double gpu_active_w = 7.0;     ///< GPU at full utilization.
  double dram_w_per_gbps = 0.25; ///< DRAM power per GB/s of traffic.
  double nic_idle_w = 0.3;       ///< Installed NIC baseline.
  double nic_active_w = 0.7;     ///< Additional while transferring.
  /// Host "power tax": chassis/PSU/fans (significant for Xeon hosts).
  double host_overhead_w = 0.0;

  bool operator==(const NodePowerConfig&) const = default;
};

/// Energy split by component (sums to `joules`).
struct EnergyBreakdown {
  double idle = 0.0;   ///< Board idle + host overhead.
  double cpu = 0.0;
  double gpu = 0.0;
  double nic = 0.0;    ///< NIC idle + active.
  double dram = 0.0;
};

/// One sampled run's energy accounting.
struct EnergyReport {
  double joules = 0.0;
  double average_watts = 0.0;
  double peak_watts = 0.0;
  double seconds = 0.0;
  EnergyBreakdown breakdown;
  /// Wall-socket style samples, one per second of simulated time.
  std::vector<double> samples_w;

  /// Energy efficiency in MFLOPS/W given the run's FLOP count.
  double mflops_per_watt(double flops) const;
};

/// Integrates the power model over a run's per-node timelines.  `nodes`
/// is the cluster size (must match stats.nodes.size()); all nodes share
/// one NodePowerConfig (homogeneous clusters, as in the paper).
EnergyReport measure_energy(const sim::RunStats& stats,
                            const NodePowerConfig& node, int cores_per_node);

}  // namespace soc::power
