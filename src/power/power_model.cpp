#include "power/power_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace soc::power {

double EnergyReport::mflops_per_watt(double flops) const {
  if (joules <= 0.0) return 0.0;
  // MFLOPS/W == (FLOPs / 1e6) / joules.
  return flops / 1e6 / joules;
}

EnergyReport measure_energy(const sim::RunStats& stats,
                            const NodePowerConfig& node, int cores_per_node) {
  SOC_CHECK(cores_per_node > 0, "need at least one core per node");
  EnergyReport report;
  report.seconds = stats.seconds();
  if (report.seconds <= 0.0) return report;

  const double bin_s = stats.timeline_bin_seconds;
  SOC_CHECK(bin_s > 0.0, "invalid timeline bin width");
  const std::size_t bins =
      static_cast<std::size_t>(std::ceil(report.seconds / bin_s));

  // Integrate per bin, then resample to 1 Hz wall-socket samples.
  std::vector<double> bin_watts(std::max<std::size_t>(bins, 1), 0.0);
  std::vector<EnergyBreakdown> bin_parts(bin_watts.size());
  for (const sim::NodeTimeline& tl : stats.nodes) {
    for (std::size_t b = 0; b < bin_watts.size(); ++b) {
      const double cpu_busy = b < tl.cpu_busy.size() ? tl.cpu_busy[b] : 0.0;
      const double gpu_busy = b < tl.gpu_busy.size() ? tl.gpu_busy[b] : 0.0;
      const double nic_busy = b < tl.nic_busy.size() ? tl.nic_busy[b] : 0.0;
      const double dram_bytes =
          b < tl.dram_bytes.size() ? tl.dram_bytes[b] : 0.0;

      // Busy seconds within the bin -> utilization in [0, capacity].
      const double cpu_util =
          std::min(cpu_busy / bin_s, static_cast<double>(cores_per_node));
      const double gpu_util = std::min(gpu_busy / bin_s, 1.0);
      const double nic_util = std::min(nic_busy / bin_s, 1.0);
      const double dram_gbps = dram_bytes / bin_s / 1e9;

      EnergyBreakdown& parts = bin_parts[b];
      parts.idle += node.idle_w + node.host_overhead_w;
      parts.cpu += cpu_util * node.cpu_core_active_w;
      parts.gpu += gpu_util * node.gpu_active_w;
      parts.nic += node.nic_idle_w + nic_util * node.nic_active_w;
      parts.dram += dram_gbps * node.dram_w_per_gbps;
      bin_watts[b] = parts.idle + parts.cpu + parts.gpu + parts.nic +
                     parts.dram;
    }
  }

  // Total energy: exact integral over bins (last bin may be partial).
  for (std::size_t b = 0; b < bin_watts.size(); ++b) {
    const double start = static_cast<double>(b) * bin_s;
    const double width = std::min(bin_s, report.seconds - start);
    if (width <= 0.0) break;
    report.joules += bin_watts[b] * width;
    report.peak_watts = std::max(report.peak_watts, bin_watts[b]);
    report.breakdown.idle += bin_parts[b].idle * width;
    report.breakdown.cpu += bin_parts[b].cpu * width;
    report.breakdown.gpu += bin_parts[b].gpu * width;
    report.breakdown.nic += bin_parts[b].nic * width;
    report.breakdown.dram += bin_parts[b].dram * width;
  }
  report.average_watts = report.joules / report.seconds;

  // 1 Hz samples, like the paper's wall-socket meter.
  const std::size_t seconds = static_cast<std::size_t>(
      std::max(1.0, std::ceil(report.seconds)));
  report.samples_w.resize(seconds, 0.0);
  for (std::size_t s = 0; s < seconds; ++s) {
    const double t0 = static_cast<double>(s);
    const double t1 = std::min(t0 + 1.0, report.seconds);
    double joules = 0.0;
    for (std::size_t b = 0; b < bin_watts.size(); ++b) {
      const double b0 = static_cast<double>(b) * bin_s;
      const double b1 = std::min(b0 + bin_s, report.seconds);
      const double overlap = std::min(t1, b1) - std::max(t0, b0);
      if (overlap > 0.0) joules += bin_watts[b] * overlap;
    }
    report.samples_w[s] = joules / std::max(t1 - t0, 1e-9);
  }
  return report;
}

}  // namespace soc::power
