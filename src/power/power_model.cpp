#include "power/power_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace soc::power {

double dvfs_power_factor(const NodePowerConfig& node, double freq_scale) {
  SOC_CHECK(freq_scale > 0.0, "DVFS frequency scale must be positive");
  if (freq_scale == 1.0) return 1.0;  // baseline is an exact identity
  return std::pow(freq_scale, node.dvfs_power_exponent);
}

double EnergyReport::mflops_per_watt(double flops) const {
  if (joules <= 0.0) return 0.0;
  // MFLOPS/W == (FLOPs / 1e6) / joules.
  return flops / 1e6 / joules;
}

double PowerTimeline::width(std::size_t b) const {
  const double start = static_cast<double>(b) * bin_seconds;
  return std::min(bin_seconds, seconds - start);
}

PowerTimeline power_timeline(const sim::RunStats& stats,
                             const NodePowerConfig& node, int cores_per_node) {
  SOC_CHECK(cores_per_node > 0, "need at least one core per node");
  PowerTimeline tl;
  tl.seconds = stats.seconds();
  if (tl.seconds <= 0.0) return tl;

  tl.bin_seconds = stats.timeline_bin_seconds;
  SOC_CHECK(tl.bin_seconds > 0.0, "invalid timeline bin width");
  const double bin_s = tl.bin_seconds;
  const std::size_t bins =
      static_cast<std::size_t>(std::ceil(tl.seconds / bin_s));

  tl.bin_watts.assign(std::max<std::size_t>(bins, 1), 0.0);
  tl.bin_parts.assign(tl.bin_watts.size(), EnergyBreakdown{});
  for (const sim::NodeTimeline& node_tl : stats.nodes) {
    for (std::size_t b = 0; b < tl.bin_watts.size(); ++b) {
      const double cpu_busy =
          b < node_tl.cpu_busy.size() ? node_tl.cpu_busy[b] : 0.0;
      const double gpu_busy =
          b < node_tl.gpu_busy.size() ? node_tl.gpu_busy[b] : 0.0;
      const double nic_busy =
          b < node_tl.nic_busy.size() ? node_tl.nic_busy[b] : 0.0;
      const double dram_bytes =
          b < node_tl.dram_bytes.size() ? node_tl.dram_bytes[b] : 0.0;

      // Busy seconds within the bin -> utilization in [0, capacity].
      const double cpu_util =
          std::min(cpu_busy / bin_s, static_cast<double>(cores_per_node));
      const double gpu_util = std::min(gpu_busy / bin_s, 1.0);
      const double nic_util = std::min(nic_busy / bin_s, 1.0);
      const double dram_gbps = dram_bytes / bin_s / 1e9;

      EnergyBreakdown& parts = tl.bin_parts[b];
      parts.idle += node.idle_w + node.host_overhead_w;
      parts.cpu += cpu_util * node.cpu_core_active_w;
      parts.gpu += gpu_util * node.gpu_active_w;
      parts.nic += node.nic_idle_w + nic_util * node.nic_active_w;
      parts.dram += dram_gbps * node.dram_w_per_gbps;
      tl.bin_watts[b] = parts.idle + parts.cpu + parts.gpu + parts.nic +
                        parts.dram;
    }
  }
  return tl;
}

EnergyReport measure_energy(const sim::RunStats& stats,
                            const NodePowerConfig& node, int cores_per_node) {
  EnergyReport report;
  const PowerTimeline tl = power_timeline(stats, node, cores_per_node);
  report.seconds = tl.seconds;
  if (report.seconds <= 0.0) return report;
  const double bin_s = tl.bin_seconds;

  // Total energy: exact integral over bins (last bin may be partial).
  for (std::size_t b = 0; b < tl.bin_watts.size(); ++b) {
    const double width = tl.width(b);
    if (width <= 0.0) break;
    report.joules += tl.bin_watts[b] * width;
    report.peak_watts = std::max(report.peak_watts, tl.bin_watts[b]);
    report.breakdown.idle += tl.bin_parts[b].idle * width;
    report.breakdown.cpu += tl.bin_parts[b].cpu * width;
    report.breakdown.gpu += tl.bin_parts[b].gpu * width;
    report.breakdown.nic += tl.bin_parts[b].nic * width;
    report.breakdown.dram += tl.bin_parts[b].dram * width;
  }
  report.average_watts = report.joules / report.seconds;

  // 1 Hz samples, like the paper's wall-socket meter.  Bins and seconds
  // both advance monotonically, so one cursor over the bins visits each
  // bin O(1) times (two-pointer sweep) instead of the quadratic
  // seconds x bins scan; the overlap terms and their accumulation order
  // are unchanged, so the samples are bit-identical to the old loop.
  const std::size_t seconds = static_cast<std::size_t>(
      std::max(1.0, std::ceil(report.seconds)));
  report.samples_w.assign(seconds, 0.0);
  report.samples_parts.assign(seconds, EnergyBreakdown{});
  std::size_t cursor = 0;
  for (std::size_t s = 0; s < seconds; ++s) {
    const double t0 = static_cast<double>(s);
    const double t1 = std::min(t0 + 1.0, report.seconds);
    // Skip bins that end at or before this second.
    while (cursor < tl.bin_watts.size() &&
           std::min(static_cast<double>(cursor) * bin_s + bin_s,
                    report.seconds) <= t0) {
      ++cursor;
    }
    double joules = 0.0;
    EnergyBreakdown parts;
    for (std::size_t b = cursor; b < tl.bin_watts.size(); ++b) {
      const double b0 = static_cast<double>(b) * bin_s;
      if (b0 >= t1) break;
      const double b1 = std::min(b0 + bin_s, report.seconds);
      const double overlap = std::min(t1, b1) - std::max(t0, b0);
      if (overlap > 0.0) {
        joules += tl.bin_watts[b] * overlap;
        parts.idle += tl.bin_parts[b].idle * overlap;
        parts.cpu += tl.bin_parts[b].cpu * overlap;
        parts.gpu += tl.bin_parts[b].gpu * overlap;
        parts.nic += tl.bin_parts[b].nic * overlap;
        parts.dram += tl.bin_parts[b].dram * overlap;
      }
    }
    const double denom = std::max(t1 - t0, 1e-9);
    report.samples_w[s] = joules / denom;
    report.samples_parts[s].idle = parts.idle / denom;
    report.samples_parts[s].cpu = parts.cpu / denom;
    report.samples_parts[s].gpu = parts.gpu / denom;
    report.samples_parts[s].nic = parts.nic / denom;
    report.samples_parts[s].dram = parts.dram / denom;
  }
  return report;
}

CappedEnergy apply_power_cap(const PowerTimeline& timeline,
                             const NodePowerConfig& node, int nodes,
                             double cap_w) {
  SOC_CHECK(nodes > 0, "need at least one node");
  SOC_CHECK(cap_w > 0.0, "power cap must be positive");
  CappedEnergy out;
  out.energy.seconds = timeline.seconds;
  if (timeline.seconds <= 0.0) return out;

  const double nic_idle = static_cast<double>(nodes) * node.nic_idle_w;
  EnergyReport& e = out.energy;
  for (std::size_t b = 0; b < timeline.bin_watts.size(); ++b) {
    const double width = timeline.width(b);
    if (width <= 0.0) break;
    const double watts = timeline.bin_watts[b];
    const EnergyBreakdown& parts = timeline.bin_parts[b];
    if (watts <= cap_w) {
      // Same terms in the same order as measure_energy: an uncapped run
      // reproduces the measured integral bit-exactly.
      e.joules += watts * width;
      e.peak_watts = std::max(e.peak_watts, watts);
      e.breakdown.idle += parts.idle * width;
      e.breakdown.cpu += parts.cpu * width;
      e.breakdown.gpu += parts.gpu * width;
      e.breakdown.nic += parts.nic * width;
      e.breakdown.dram += parts.dram * width;
      continue;
    }
    // The frequency-independent floor (board + host + NIC idle) burns
    // whether or not work makes progress; only the active draw above it
    // can be slowed down.  Conserving active energy at the capped active
    // rate dilates the bin by d, so the clamped bin sits exactly at the
    // cap: (floor + active/d) == cap_w.
    const double floor_w = parts.idle + nic_idle;
    SOC_CHECK(cap_w > floor_w,
              "power cap below the cluster's idle floor; run cannot finish");
    const double active_w = watts - floor_w;
    const double dilation = active_w / (cap_w - floor_w);
    const double stretched = width * dilation;
    e.joules += floor_w * stretched + active_w * width;
    e.peak_watts = std::max(e.peak_watts, cap_w);
    e.breakdown.idle += parts.idle * stretched;
    e.breakdown.cpu += parts.cpu * width;
    e.breakdown.gpu += parts.gpu * width;
    e.breakdown.nic += nic_idle * stretched + (parts.nic - nic_idle) * width;
    e.breakdown.dram += parts.dram * width;
    out.extra_seconds += stretched - width;
    ++out.capped_bins;
  }
  e.seconds = timeline.seconds + out.extra_seconds;
  e.average_watts = e.joules / e.seconds;
  return out;
}

}  // namespace soc::power
