// CUDA-style occupancy calculator.
//
// Given a kernel's per-block resources and a device's SM limits, computes
// how many blocks/warps fit per SM and which resource binds — the same
// arithmetic as Nvidia's occupancy calculator.  The cluster-level timing
// model uses a coarser parallelism heuristic; this calculator backs the
// GPU tests and lets users reason about why batch-1 inference can't fill
// a 16-SM part (Figs 9–10).
#pragma once

#include <string>

#include "common/units.h"

namespace soc::gpu {

/// SM resource limits (Maxwell SMM defaults).
struct SmLimits {
  int max_threads = 2048;
  int max_blocks = 32;
  int max_warps = 64;
  int warp_size = 32;
  int registers = 65536;
  Bytes shared_memory = 96 * kKiB;
  /// Register allocation granularity (per warp).
  int register_granularity = 256;
  /// Shared-memory allocation granularity.
  Bytes shared_granularity = 256;
};

/// Per-kernel launch resources.
struct KernelResources {
  int threads_per_block = 256;
  int registers_per_thread = 32;
  Bytes shared_per_block = 0;
};

enum class OccupancyLimiter { kThreads, kBlocks, kRegisters, kSharedMemory };

const char* limiter_name(OccupancyLimiter limiter);

struct OccupancyResult {
  int blocks_per_sm = 0;
  int active_warps = 0;
  double occupancy = 0.0;  ///< active warps / max warps.
  OccupancyLimiter limiter = OccupancyLimiter::kThreads;
};

/// Computes achievable occupancy of `kernel` on an SM with `limits`.
/// Throws soc::Error on invalid resources (block larger than the SM).
OccupancyResult occupancy(const SmLimits& limits,
                          const KernelResources& kernel);

/// Grid-level utilization: fraction of the device kept busy by
/// `total_threads` of work given the per-SM occupancy and `sm_count`.
double device_utilization(const SmLimits& limits,
                          const KernelResources& kernel, double total_threads,
                          int sm_count);

}  // namespace soc::gpu
