#include "gpu/device.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace soc::gpu {

double DeviceConfig::peak_sp_flops() const {
  return static_cast<double>(sm_count) * cores_per_sm * frequency_hz *
         sp_flops_per_core_cycle;
}

double DeviceConfig::peak_dp_flops() const { return peak_sp_flops() * dp_ratio; }

DeviceConfig tx1_gpu() {
  DeviceConfig d;
  d.name = "tx1-maxwell";
  d.sm_count = 2;
  d.cores_per_sm = 128;
  d.frequency_hz = 0.998e9;
  d.memory_bandwidth = 20.0e9;
  d.l2 = arch::CacheConfig{256 * kKiB, 16, 64};
  return d;
}

DeviceConfig gtx980_gpu() {
  DeviceConfig d;
  d.name = "gtx980-maxwell";
  d.sm_count = 16;
  d.cores_per_sm = 128;
  d.frequency_hz = 1.216e9;
  d.memory_bandwidth = 224.0e9;
  d.l2 = arch::CacheConfig{2 * kMiB, 16, 64};
  d.launch_overhead = 8 * kMicrosecond;
  return d;
}

SimTime kernel_duration(const DeviceConfig& device, double flops,
                        Bytes dram_bytes, sim::MemModel mm,
                        bool double_precision, double parallelism) {
  SOC_CHECK(flops >= 0.0 && dram_bytes >= 0, "negative kernel work");
  SOC_CHECK(parallelism > 0.0, "kernel needs positive parallelism");
  const double full_threads = static_cast<double>(device.sm_count) *
                              device.cores_per_sm *
                              device.occupancy_threads_per_core;
  const double utilization = std::min(1.0, parallelism / full_threads);
  const double peak = (double_precision ? device.peak_dp_flops()
                                        : device.peak_sp_flops()) *
                      device.compute_efficiency * utilization;

  double effective_bw = device.memory_bandwidth;
  double bytes = static_cast<double>(dram_bytes);
  double extra_seconds = 0.0;
  switch (mm) {
    case sim::MemModel::kHostDevice:
      break;  // baseline: cached device-resident data
    case sim::MemModel::kZeroCopy:
      // Cache hierarchy bypassed: reuse the L2 would have captured now
      // hits DRAM too, and uncached transactions waste bus efficiency.
      bytes /= (1.0 - device.l2_reuse_fraction);
      effective_bw *= device.bypass_bandwidth_factor;
      break;
    case sim::MemModel::kUnified:
      // Same cached path as host+device, plus small migration overhead.
      extra_seconds = bytes * device.unified_migration_overhead /
                      device.memory_bandwidth;
      break;
  }

  const double compute_s = peak > 0.0 ? flops / peak : 0.0;
  const double memory_s = effective_bw > 0.0 ? bytes / effective_bw : 0.0;
  return device.launch_overhead +
         from_seconds(std::max(compute_s, memory_s) + extra_seconds);
}

KernelMetrics characterize_kernel(const DeviceConfig& device, double flops,
                                  Bytes dram_bytes, Bytes working_set,
                                  sim::MemModel mm, bool double_precision) {
  SOC_CHECK(working_set > 0, "empty working set");
  KernelMetrics m;
  const SimTime dur = kernel_duration(device, flops, dram_bytes, mm,
                                      double_precision);
  m.duration_seconds = to_seconds(dur);

  if (mm == sim::MemModel::kZeroCopy) {
    // Cache bypassed entirely: no L2 service, every access stalls on DRAM.
    m.l2_hit_ratio = 0.0;
    m.l2_read_throughput = 0.0;
  } else {
    // Drive a streaming+reuse access pattern through the device L2: a
    // grid sweep re-touches neighbouring lines (stencil reuse).
    arch::Cache l2(device.l2);
    Rng rng(0xD00D ^ static_cast<std::uint64_t>(working_set));
    const std::uint64_t span = static_cast<std::uint64_t>(working_set);
    const std::size_t samples = 400'000;
    std::uint64_t cursor = 0;
    for (std::size_t i = 0; i < samples; ++i) {
      if (rng.next_bool(device.l2_reuse_fraction)) {
        // Re-touch a recent neighbourhood (stencil row above/below).
        l2.access(cursor >= 4096 ? cursor - 4096 : cursor);
      } else {
        cursor = (cursor + 32) % span;
        l2.access(cursor);
      }
    }
    m.l2_hit_ratio = 1.0 - l2.stats().miss_ratio();
    if (m.duration_seconds > 0.0) {
      const double served =
          static_cast<double>(dram_bytes) * m.l2_hit_ratio /
          std::max(1.0 - m.l2_hit_ratio, 0.05);
      m.l2_read_throughput = served / m.duration_seconds;
    }
  }

  // Stall fraction: share of kernel time waiting on memory.
  const double peak = (double_precision ? device.peak_dp_flops()
                                        : device.peak_sp_flops()) *
                      device.compute_efficiency;
  const double compute_s = peak > 0.0 ? flops / peak : 0.0;
  double bw = device.memory_bandwidth;
  double bytes = static_cast<double>(dram_bytes);
  if (mm == sim::MemModel::kZeroCopy) {
    bw *= device.bypass_bandwidth_factor;
    bytes /= (1.0 - device.l2_reuse_fraction);
  }
  const double memory_s = bw > 0.0 ? bytes / bw : 0.0;
  const double total = std::max(compute_s, memory_s);
  m.memory_stall_fraction =
      total > 0.0 ? std::max(memory_s - compute_s, 0.0) / total : 0.0;
  return m;
}

}  // namespace soc::gpu
