#include "gpu/occupancy.h"

#include <algorithm>

#include "common/error.h"

namespace soc::gpu {

const char* limiter_name(OccupancyLimiter limiter) {
  switch (limiter) {
    case OccupancyLimiter::kThreads: return "threads";
    case OccupancyLimiter::kBlocks: return "blocks";
    case OccupancyLimiter::kRegisters: return "registers";
    case OccupancyLimiter::kSharedMemory: return "shared-memory";
  }
  return "unknown";
}

namespace {

// Rounds `value` up to a multiple of `granularity`.
template <typename T>
T round_up(T value, T granularity) {
  return ((value + granularity - 1) / granularity) * granularity;
}

}  // namespace

OccupancyResult occupancy(const SmLimits& limits,
                          const KernelResources& kernel) {
  SOC_CHECK(kernel.threads_per_block > 0 &&
                kernel.threads_per_block <= limits.max_threads,
            "block does not fit the SM's thread limit");
  SOC_CHECK(kernel.registers_per_thread >= 0 &&
                kernel.shared_per_block >= 0,
            "negative kernel resources");

  const int warps_per_block = (kernel.threads_per_block +
                               limits.warp_size - 1) /
                              limits.warp_size;

  // Candidate block counts under each constraint.
  const int by_threads = limits.max_threads / kernel.threads_per_block;
  const int by_blocks = limits.max_blocks;
  const int by_warps = limits.max_warps / warps_per_block;

  int by_registers = limits.max_blocks;
  if (kernel.registers_per_thread > 0) {
    const int regs_per_warp = round_up(
        kernel.registers_per_thread * limits.warp_size,
        limits.register_granularity);
    const int warps_by_regs = limits.registers / regs_per_warp;
    by_registers = warps_by_regs / warps_per_block;
  }

  int by_shared = limits.max_blocks;
  if (kernel.shared_per_block > 0) {
    const Bytes per_block =
        round_up(kernel.shared_per_block, limits.shared_granularity);
    by_shared = static_cast<int>(limits.shared_memory / per_block);
  }

  OccupancyResult result;
  result.blocks_per_sm = std::min({by_threads, by_blocks, by_warps,
                                   by_registers, by_shared});
  SOC_CHECK(result.blocks_per_sm >= 1,
            "kernel resources exceed the SM (registers or shared memory)");
  result.active_warps = result.blocks_per_sm * warps_per_block;
  result.occupancy = static_cast<double>(result.active_warps) /
                     static_cast<double>(limits.max_warps);

  if (result.blocks_per_sm == by_registers &&
      kernel.registers_per_thread > 0) {
    result.limiter = OccupancyLimiter::kRegisters;
  }
  if (result.blocks_per_sm == by_shared && kernel.shared_per_block > 0) {
    result.limiter = OccupancyLimiter::kSharedMemory;
  }
  if (result.blocks_per_sm == std::min(by_threads, by_warps)) {
    result.limiter = OccupancyLimiter::kThreads;
  }
  if (result.blocks_per_sm == by_blocks &&
      by_blocks < std::min(by_threads, by_warps)) {
    result.limiter = OccupancyLimiter::kBlocks;
  }
  return result;
}

double device_utilization(const SmLimits& limits,
                          const KernelResources& kernel, double total_threads,
                          int sm_count) {
  SOC_CHECK(total_threads >= 0.0 && sm_count > 0, "bad utilization inputs");
  const OccupancyResult per_sm = occupancy(limits, kernel);
  const double resident_capacity =
      static_cast<double>(per_sm.active_warps) * limits.warp_size * sm_count;
  if (resident_capacity <= 0.0) return 0.0;
  return std::min(1.0, total_threads / resident_capacity) *
         per_sm.occupancy;
}

}  // namespace soc::gpu
