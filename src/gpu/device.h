// GPGPU device model.
//
// Covers both the TX1's integrated 2-SM Maxwell GPU (shared LPDDR4) and
// the discrete GTX 980 (16 SMs, dedicated GDDR5, PCIe copies).  Kernel
// timing uses a roofline-style max(compute, memory) model plus launch
// overhead; the CUDA memory-management models of §III-B.5 modulate the
// effective memory path (zero-copy bypasses the GPU L2 on the TX1 to keep
// coherency — the behaviour the authors confirmed with Nvidia).
#pragma once

#include <string>

#include "arch/cache.h"
#include "common/units.h"
#include "sim/op.h"

namespace soc::gpu {

struct DeviceConfig {
  std::string name = "tx1-maxwell";
  int sm_count = 2;
  int cores_per_sm = 128;
  double frequency_hz = 0.998e9;
  /// FLOPs per core per cycle at single precision (FMA = 2).
  double sp_flops_per_core_cycle = 2.0;
  /// DP throughput as a fraction of SP (1/32 on Maxwell).
  double dp_ratio = 1.0 / 32.0;

  /// Memory bandwidth the device can pull (shared LPDDR4 or GDDR5).
  double memory_bandwidth = 20.0e9;
  arch::CacheConfig l2{256 * kKiB, 16, 64};
  /// Effective bandwidth multiplier when the L2 is bypassed (zero-copy on
  /// the TX1): uncached, word-granular transactions waste most of the bus.
  double bypass_bandwidth_factor = 0.62;
  /// Fraction of kernel DRAM traffic normally absorbed by the L2 when
  /// caching is enabled (captured reuse).
  double l2_reuse_fraction = 0.35;

  /// Kernel launch + synchronization overhead.
  SimTime launch_overhead = 15 * kMicrosecond;
  /// Achievable fraction of peak FLOPs for well-tuned kernels.
  double compute_efficiency = 0.75;
  /// Threads per CUDA core needed to hide latency; kernels with less
  /// parallelism than sm_count × cores_per_sm × this run underutilized.
  /// This is what lets a 2-SM TX1 beat a 16-SM GTX 980 on batch-1
  /// inference (Figs 9–10): the small GPU stays full, the big one idles.
  double occupancy_threads_per_core = 8.0;
  /// Page-migration overhead per byte for unified memory (first touch and
  /// host/device ping-pong, amortized).
  double unified_migration_overhead = 0.04;

  /// Peak single-precision FLOP/s.
  double peak_sp_flops() const;
  /// Peak double-precision FLOP/s.
  double peak_dp_flops() const;

  bool operator==(const DeviceConfig&) const = default;
};

/// The TX1's integrated Maxwell GPU.
DeviceConfig tx1_gpu();
/// MSI GTX 980 discrete card.
DeviceConfig gtx980_gpu();

/// Duration of a kernel with `flops` FLOPs and `dram_bytes` of memory
/// traffic under memory model `mm`.  `double_precision` selects the DP
/// throughput ceiling (hpl and the scientific codes run DP).
SimTime kernel_duration(const DeviceConfig& device, double flops,
                        Bytes dram_bytes, sim::MemModel mm,
                        bool double_precision = true,
                        double parallelism = 1e15);

/// nvprof-style metrics for a kernel under a memory model (Table III):
/// relative L2 utilization, L2 read throughput, and memory-stall fraction
/// come from driving a synthetic access stream through the device L2
/// (or bypassing it for zero-copy).
struct KernelMetrics {
  double l2_hit_ratio = 0.0;        ///< "L2 utilization" proxy.
  double l2_read_throughput = 0.0;  ///< Bytes/s served by the L2.
  double memory_stall_fraction = 0.0;  ///< Fraction of cycles stalled.
  double duration_seconds = 0.0;
};

KernelMetrics characterize_kernel(const DeviceConfig& device, double flops,
                                  Bytes dram_bytes, Bytes working_set,
                                  sim::MemModel mm,
                                  bool double_precision = true);

}  // namespace soc::gpu
