// The workload-facing pull API.
//
// workloads::OpStream is the seam the whole runner stack consumes: a
// per-rank `get_next(rank, now) -> Op` where end of stream is the
// OpKind::kEnd sentinel.  It derives from sim::OpSource so the engine can
// pull it directly; the final next() override bridges the sentinel to the
// engine's bool protocol, which guarantees kEnd itself never reaches the
// dispatch loop (the engine SOC_CHECKs on it).
//
// ProgramWalkStream adapts any eager Workload::build() generator: the
// programs are generated lazily on the first pull and walked in order, so
// streaming a workload commits the byte-identical event sequence (and
// event_checksum) as replaying its built programs.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "sim/op.h"
#include "sim/op_stream.h"
#include "workloads/workload.h"

namespace soc::workloads {

class OpStream : public sim::OpSource {
 public:
  /// Pulls `rank`'s next op at simulation time `now`.  Returns an op with
  /// kind == OpKind::kEnd once the rank's stream is exhausted (and keeps
  /// returning it on further calls).
  virtual sim::Op get_next(int rank, SimTime now) = 0;

  /// Bridges the kEnd sentinel to the engine's end-of-stream protocol.
  bool next(int rank, SimTime now, sim::Op* op) final;
};

/// Lazily walks the programs of an eager generator.  Generation runs on
/// the first pull, not at construction, so building a decorated pipeline
/// stays cheap until the engine actually starts.
class ProgramWalkStream final : public OpStream {
 public:
  /// Walks `workload.build(ctx)`.  The workload reference must outlive
  /// the first pull (cluster::run owns both for the run's duration).
  ProgramWalkStream(const Workload& workload, const BuildContext& ctx);

  /// Walks already-built programs (takes ownership).
  explicit ProgramWalkStream(std::vector<sim::Program> programs);

  int ranks() const override;
  sim::Op get_next(int rank, SimTime now) override;

 private:
  void ensure_built();

  const Workload* workload_ = nullptr;
  BuildContext ctx_;
  std::once_flag build_once_;  // SOC_SHARED(build_once_) — publishes the build
  bool built_ = false;
  std::vector<sim::Program> programs_;
  std::vector<std::size_t> cursor_;
  int ranks_;
};

}  // namespace soc::workloads
