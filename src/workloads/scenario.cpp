#include "workloads/scenario.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/error.h"
#include "common/rng.h"

namespace soc::workloads {

namespace {

using sim::Op;
using sim::OpKind;

bool is_message(OpKind kind) {
  return kind == OpKind::kSend || kind == OpKind::kRecv ||
         kind == OpKind::kIsend || kind == OpKind::kIrecv;
}

bool is_scalable(OpKind kind) {
  return kind == OpKind::kCpuCompute || kind == OpKind::kGpuKernel ||
         kind == OpKind::kCopyH2D || kind == OpKind::kCopyD2H;
}

// Shared decorator plumbing: inner pull with per-rank phase tracking (so
// injected delays are attributed to the phase the rank was in), plus a
// one-op stash for decorators that must hold the pulled op back while
// they emit a delay first.
class StreamDecorator : public OpStream {
 public:
  explicit StreamDecorator(std::unique_ptr<OpStream> inner)
      : inner_(std::move(inner)),
        last_phase_(static_cast<std::size_t>(inner_->ranks()), 0),
        pending_(static_cast<std::size_t>(inner_->ranks())),
        has_pending_(static_cast<std::size_t>(inner_->ranks()), 0) {}

  int ranks() const override { return inner_->ranks(); }

 protected:
  Op pull(int rank, SimTime now) {
    const std::size_t r = static_cast<std::size_t>(rank);
    if (has_pending_[r]) {
      has_pending_[r] = 0;
      return pending_[r];
    }
    Op op = inner_->get_next(rank, now);
    if (op.kind == OpKind::kPhase) last_phase_[r] = op.phase;
    return op;
  }

  void stash(int rank, const Op& op) {
    const std::size_t r = static_cast<std::size_t>(rank);
    pending_[r] = op;
    has_pending_[r] = 1;
  }

  int last_phase(int rank) const {
    return last_phase_[static_cast<std::size_t>(rank)];
  }

 private:
  std::unique_ptr<OpStream> inner_;
  std::vector<int> last_phase_;
  std::vector<Op> pending_;
  std::vector<char> has_pending_;
};

// Crash-and-restart: every rank on the crashed node stalls for the
// downtime at its first pull at or after the crash time, then resumes.
// Message matching stays intact (peers block until the node returns), so
// the damage surfaces as load imbalance / serialization — exactly what
// the profiler decomposition should attribute.
class NodeCrashStream final : public StreamDecorator {
 public:
  NodeCrashStream(std::unique_ptr<OpStream> inner, const FaultSpec& spec,
                  int ranks_per_node)
      : StreamDecorator(std::move(inner)),
        crash_at_(from_seconds(spec.start_seconds)),
        downtime_(spec.downtime_seconds),
        first_rank_(spec.node * ranks_per_node),
        last_rank_(first_rank_ + ranks_per_node - 1),
        injected_(static_cast<std::size_t>(ranks()), 0) {}

  Op get_next(int rank, SimTime now) override {
    const std::size_t r = static_cast<std::size_t>(rank);
    if (rank >= first_rank_ && rank <= last_rank_ && !injected_[r] &&
        now >= crash_at_) {
      Op op = pull(rank, now);
      if (op.kind == OpKind::kEnd) return op;  // rank already drained
      stash(rank, op);
      injected_[r] = 1;
      return sim::delay_op(downtime_, last_phase(rank));
    }
    return pull(rank, now);
  }

 private:
  SimTime crash_at_;
  double downtime_;
  int first_rank_;
  int last_rank_;
  std::vector<char> injected_;
};

// Link flap: message ops issued by the affected node's ranks during the
// window are held back behind a delay that ends when the window closes.
class LinkFlapStream final : public StreamDecorator {
 public:
  LinkFlapStream(std::unique_ptr<OpStream> inner, const FaultSpec& spec,
                 int ranks_per_node)
      : StreamDecorator(std::move(inner)),
        open_(from_seconds(spec.start_seconds)),
        close_(from_seconds(spec.end_seconds)),
        first_rank_(spec.node * ranks_per_node),
        last_rank_(first_rank_ + ranks_per_node - 1) {}

  Op get_next(int rank, SimTime now) override {
    Op op = pull(rank, now);
    if (rank >= first_rank_ && rank <= last_rank_ && is_message(op.kind) &&
        now >= open_ && now < close_) {
      stash(rank, op);
      return sim::delay_op(to_seconds(close_ - now), last_phase(rank));
    }
    return op;
  }

 private:
  SimTime open_;
  SimTime close_;
  int first_rank_;
  int last_rank_;
};

// Straggler: the target rank's compute/kernel/copy ops take `slowdown`
// times longer.  Applied via Op::time_scale so the engine stretches the
// cost-model duration after memo lookup — memoized costs stay shared
// with healthy ranks.
class StragglerStream final : public StreamDecorator {
 public:
  StragglerStream(std::unique_ptr<OpStream> inner, const FaultSpec& spec)
      : StreamDecorator(std::move(inner)),
        rank_(spec.rank),
        slowdown_(spec.slowdown) {}

  Op get_next(int rank, SimTime now) override {
    Op op = pull(rank, now);
    if (rank == rank_ && is_scalable(op.kind)) op.time_scale *= slowdown_;
    return op;
  }

 private:
  int rank_;
  double slowdown_;
};

// OS noise: each rank stalls `duration_seconds` roughly every
// `interval_seconds`, with the interval perturbed by up to ±jitter of
// itself.  Each rank draws from its own split of the seed, so the noise
// pattern is independent of cross-rank interleaving and thread count.
class NoiseStream final : public StreamDecorator {
 public:
  NoiseStream(std::unique_ptr<OpStream> inner, const NoiseSpec& spec)
      : StreamDecorator(std::move(inner)), spec_(spec) {
    const std::size_t n = static_cast<std::size_t>(ranks());
    rngs_.reserve(n);
    next_fire_.reserve(n);
    for (std::size_t r = 0; r < n; ++r) {
      rngs_.push_back(Rng(spec_.seed).split(static_cast<std::uint64_t>(r)));
      next_fire_.push_back(step(rngs_.back()));
    }
  }

  Op get_next(int rank, SimTime now) override {
    const std::size_t r = static_cast<std::size_t>(rank);
    if (now >= next_fire_[r]) {
      Op op = pull(rank, now);
      if (op.kind == OpKind::kEnd) return op;
      stash(rank, op);
      // One stall per pull; intervals the rank slept through are skipped.
      while (next_fire_[r] <= now) next_fire_[r] += step(rngs_[r]);
      return sim::delay_op(spec_.duration_seconds, last_phase(rank));
    }
    return pull(rank, now);
  }

 private:
  SimTime step(Rng& rng) {
    double interval = spec_.interval_seconds;
    if (spec_.jitter > 0.0) {
      interval *= 1.0 + spec_.jitter * (2.0 * rng.next_double() - 1.0);
    }
    return from_seconds(interval);
  }

  NoiseSpec spec_;
  std::vector<Rng> rngs_;
  std::vector<SimTime> next_fire_;
};

// Checkpoint/restart on Daly's cadence: every rank writes for δ =
// size/bandwidth seconds, every τ + δ, with τ from daly_optimal_interval.
class CheckpointStream final : public StreamDecorator {
 public:
  CheckpointStream(std::unique_ptr<OpStream> inner, const CheckpointSpec& spec)
      : StreamDecorator(std::move(inner)),
        write_seconds_(spec.size_bytes / spec.bandwidth),
        runtime_(spec.runtime_seconds) {
    const double tau =
        daly_optimal_interval(write_seconds_, spec.mtti_seconds);
    interval_ = from_seconds(tau);
    period_ = from_seconds(tau + write_seconds_);
    next_fire_.assign(static_cast<std::size_t>(ranks()), interval_);
  }

  Op get_next(int rank, SimTime now) override {
    const std::size_t r = static_cast<std::size_t>(rank);
    if (now >= next_fire_[r] &&
        (runtime_ <= 0.0 || to_seconds(next_fire_[r]) <= runtime_)) {
      Op op = pull(rank, now);
      if (op.kind == OpKind::kEnd) return op;
      stash(rank, op);
      while (next_fire_[r] <= now) next_fire_[r] += period_;
      return sim::delay_op(write_seconds_, last_phase(rank));
    }
    return pull(rank, now);
  }

 private:
  double write_seconds_;
  double runtime_;
  SimTime interval_ = 0;
  SimTime period_ = 0;
  std::vector<SimTime> next_fire_;
};

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      if (start < s.size()) parts.push_back(s.substr(start));
      break;
    }
    if (end > start) parts.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

// Parses "key=value,key=value" with a per-spec key dispatcher.
template <typename SetField>
void parse_kv(const std::string& body, const std::string& what,
              SetField&& set_field) {
  for (const std::string& pair : split(body, ',')) {
    const std::size_t eq = pair.find('=');
    SOC_CHECK(eq != std::string::npos && eq > 0,
              what + ": expected key=value, got '" + pair + "'");
    const std::string key = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    try {
      SOC_CHECK(set_field(key, value),
                what + ": unknown key '" + key + "'");
    } catch (const std::invalid_argument&) {
      SOC_CHECK(false, what + ": bad value for '" + key + "': " + value);
    } catch (const std::out_of_range&) {
      SOC_CHECK(false, what + ": bad value for '" + key + "': " + value);
    }
  }
}

}  // namespace

const char* fault_kind_name(FaultSpec::Kind kind) {
  switch (kind) {
    case FaultSpec::Kind::kNodeCrash: return "node-crash";
    case FaultSpec::Kind::kLinkFlap: return "link-flap";
    case FaultSpec::Kind::kStraggler: return "straggler";
  }
  return "?";
}

double daly_optimal_interval(double write_seconds, double mtti_seconds) {
  SOC_CHECK(write_seconds > 0.0, "daly: checkpoint write time must be > 0");
  SOC_CHECK(mtti_seconds > 0.0, "daly: MTTI must be > 0");
  if (write_seconds >= 2.0 * mtti_seconds) return mtti_seconds;
  const double ratio = write_seconds / (2.0 * mtti_seconds);
  return std::sqrt(2.0 * write_seconds * mtti_seconds) *
             (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) -
         write_seconds;
}

std::unique_ptr<OpStream> apply_scenarios(std::unique_ptr<OpStream> inner,
                                          const ScenarioConfig& config,
                                          int nodes) {
  if (!config.enabled()) return inner;
  SOC_CHECK(inner != nullptr, "apply_scenarios: null stream");
  const int ranks = inner->ranks();
  SOC_CHECK(nodes > 0 && ranks % nodes == 0,
            "apply_scenarios: ranks must divide evenly over nodes");
  const int rpn = ranks / nodes;

  for (const FaultSpec& fault : config.faults) {
    switch (fault.kind) {
      case FaultSpec::Kind::kNodeCrash:
        SOC_CHECK(fault.node >= 0 && fault.node < nodes,
                  "node-crash: node out of range");
        SOC_CHECK(fault.downtime_seconds > 0.0,
                  "node-crash: downtime must be > 0");
        inner = std::make_unique<NodeCrashStream>(std::move(inner), fault, rpn);
        break;
      case FaultSpec::Kind::kLinkFlap:
        SOC_CHECK(fault.node >= 0 && fault.node < nodes,
                  "link-flap: node out of range");
        SOC_CHECK(fault.end_seconds > fault.start_seconds,
                  "link-flap: window must have t1 > t0");
        inner = std::make_unique<LinkFlapStream>(std::move(inner), fault, rpn);
        break;
      case FaultSpec::Kind::kStraggler:
        SOC_CHECK(fault.rank >= 0 && fault.rank < ranks,
                  "straggler: rank out of range");
        SOC_CHECK(fault.slowdown > 0.0, "straggler: slowdown must be > 0");
        inner = std::make_unique<StragglerStream>(std::move(inner), fault);
        break;
    }
  }
  if (config.noise.enabled()) {
    SOC_CHECK(config.noise.jitter >= 0.0 && config.noise.jitter < 1.0,
              "noise: jitter must be within [0, 1)");
    inner = std::make_unique<NoiseStream>(std::move(inner), config.noise);
  }
  if (config.checkpoint.enabled()) {
    inner = std::make_unique<CheckpointStream>(std::move(inner),
                                               config.checkpoint);
  }
  return inner;
}

FaultSpec parse_fault_spec(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  SOC_CHECK(colon != std::string::npos,
            "fault spec needs '<kind>:<params>', got '" + spec + "'");
  const std::string kind = spec.substr(0, colon);
  const std::string body = spec.substr(colon + 1);
  FaultSpec fault;
  if (kind == "node-crash") {
    fault.kind = FaultSpec::Kind::kNodeCrash;
    parse_kv(body, "node-crash", [&](const std::string& k, const std::string& v) {
      if (k == "node") fault.node = std::stoi(v);
      else if (k == "t") fault.start_seconds = std::stod(v);
      else if (k == "down") fault.downtime_seconds = std::stod(v);
      else return false;
      return true;
    });
    SOC_CHECK(fault.node >= 0, "node-crash spec needs node=<N>");
    SOC_CHECK(fault.downtime_seconds > 0.0,
              "node-crash spec needs down=<seconds> > 0");
  } else if (kind == "link-flap") {
    fault.kind = FaultSpec::Kind::kLinkFlap;
    parse_kv(body, "link-flap", [&](const std::string& k, const std::string& v) {
      if (k == "node") fault.node = std::stoi(v);
      else if (k == "t0") fault.start_seconds = std::stod(v);
      else if (k == "t1") fault.end_seconds = std::stod(v);
      else return false;
      return true;
    });
    SOC_CHECK(fault.node >= 0, "link-flap spec needs node=<N>");
    SOC_CHECK(fault.end_seconds > fault.start_seconds,
              "link-flap spec needs t1=<seconds> > t0=<seconds>");
  } else if (kind == "straggler") {
    fault.kind = FaultSpec::Kind::kStraggler;
    parse_kv(body, "straggler", [&](const std::string& k, const std::string& v) {
      if (k == "rank") fault.rank = std::stoi(v);
      else if (k == "slowdown") fault.slowdown = std::stod(v);
      else return false;
      return true;
    });
    SOC_CHECK(fault.rank >= 0, "straggler spec needs rank=<R>");
    SOC_CHECK(fault.slowdown > 0.0 && fault.slowdown != 1.0,
              "straggler spec needs slowdown=<factor> (> 0, != 1)");
  } else {
    SOC_CHECK(false, "unknown fault kind '" + kind +
                         "' (valid: node-crash, link-flap, straggler)");
  }
  return fault;
}

NoiseSpec parse_noise_spec(const std::string& spec) {
  NoiseSpec noise;
  parse_kv(spec, "noise", [&](const std::string& k, const std::string& v) {
    if (k == "interval") noise.interval_seconds = std::stod(v);
    else if (k == "duration") noise.duration_seconds = std::stod(v);
    else if (k == "seed") noise.seed = std::stoull(v);
    else if (k == "jitter") noise.jitter = std::stod(v);
    else return false;
    return true;
  });
  SOC_CHECK(noise.enabled(),
            "noise: interval and duration must both be > 0");
  return noise;
}

CheckpointSpec parse_checkpoint_spec(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  SOC_CHECK(colon != std::string::npos && spec.substr(0, colon) == "daly",
            "checkpoint spec needs 'daly:<params>', got '" + spec + "'");
  CheckpointSpec ckpt;
  parse_kv(spec.substr(colon + 1), "checkpoint",
           [&](const std::string& k, const std::string& v) {
             if (k == "size") ckpt.size_bytes = std::stod(v);
             else if (k == "bw") ckpt.bandwidth = std::stod(v);
             else if (k == "mtti") ckpt.mtti_seconds = std::stod(v);
             else if (k == "runtime") ckpt.runtime_seconds = std::stod(v);
             else return false;
             return true;
           });
  SOC_CHECK(ckpt.enabled(), "checkpoint: size and bw must both be > 0");
  SOC_CHECK(ckpt.mtti_seconds > 0.0, "checkpoint: mtti must be > 0");
  return ckpt;
}

ScenarioConfig parse_scenario(const std::string& faults,
                              const std::string& noise,
                              const std::string& checkpoint) {
  ScenarioConfig config;
  for (const std::string& spec : split(faults, ';')) {
    config.faults.push_back(parse_fault_spec(spec));
  }
  if (!noise.empty()) config.noise = parse_noise_spec(noise);
  if (!checkpoint.empty()) config.checkpoint = parse_checkpoint_spec(checkpoint);
  return config;
}

}  // namespace soc::workloads
