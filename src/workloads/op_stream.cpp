#include "workloads/op_stream.h"

#include <mutex>
#include <utility>

#include "common/error.h"

namespace soc::workloads {

bool OpStream::next(int rank, SimTime now, sim::Op* op) {
  sim::Op pulled = get_next(rank, now);
  if (pulled.kind == sim::OpKind::kEnd) return false;
  *op = pulled;
  return true;
}

ProgramWalkStream::ProgramWalkStream(const Workload& workload,
                                     const BuildContext& ctx)
    : workload_(&workload), ctx_(ctx), ranks_(ctx.ranks) {
  validate(ctx_);
}

ProgramWalkStream::ProgramWalkStream(std::vector<sim::Program> programs)
    : built_(true),
      programs_(std::move(programs)),
      cursor_(programs_.size(), 0),
      ranks_(static_cast<int>(programs_.size())) {}

int ProgramWalkStream::ranks() const { return ranks_; }

void ProgramWalkStream::ensure_built() {
  // Engine worker threads may pull concurrently for distinct ranks (the
  // OpSource contract); the lazy build is the one shared step, so it
  // must publish programs_/cursor_ exactly once.
  std::call_once(build_once_, [this] {
    if (built_) return;  // constructed from pre-built programs
    programs_ = workload_->build(ctx_);
    SOC_CHECK(static_cast<int>(programs_.size()) == ranks_,
              "workload built a program count != ctx.ranks");
    cursor_.assign(programs_.size(), 0);
    built_ = true;
  });
}

sim::Op ProgramWalkStream::get_next(int rank, SimTime /*now*/) {
  ensure_built();
  const std::size_t r = static_cast<std::size_t>(rank);
  SOC_CHECK(r < programs_.size(), "ProgramWalkStream: rank out of range");
  if (cursor_[r] >= programs_[r].size()) return sim::end_op();
  return programs_[r][cursor_[r]++];
}

}  // namespace soc::workloads
