// Named microarchitectural profiles for every benchmark's host-side code.
//
// These descriptors encode the published behaviour of each code: NPB mg's
// periodic boundary branches (the worst case for a bimodal predictor),
// ep's large randomly-accessed tables (highest L2 miss ratio in the
// paper's Fig 8 data), cg's sparse gathers, ft/is streaming, etc.  The
// actual miss rates per machine come from simulation in arch/core_model.
#pragma once

#include "arch/profile.h"

namespace soc::workloads::profiles {

arch::WorkloadProfile hpl();
arch::WorkloadProfile jacobi();
arch::WorkloadProfile cloverleaf();
arch::WorkloadProfile tealeaf();
arch::WorkloadProfile dnn_decode();  ///< JPEG decode + preprocessing.

arch::WorkloadProfile npb_bt();
arch::WorkloadProfile npb_cg();
arch::WorkloadProfile npb_ep();
arch::WorkloadProfile npb_ft();
arch::WorkloadProfile npb_is();
arch::WorkloadProfile npb_lu();
arch::WorkloadProfile npb_mg();
arch::WorkloadProfile npb_sp();

}  // namespace soc::workloads::profiles
