#include "workloads/npb.h"

#include <bit>
#include <cmath>

#include "common/error.h"
#include "msg/collectives.h"
#include "msg/program_set.h"
#include "workloads/profiles.h"
#include "workloads/scientific.h"

namespace soc::workloads {

NpbWorkload::NpbWorkload(NpbSpec spec) : spec_(std::move(spec)) {
  SOC_CHECK(!spec_.tag.empty() && spec_.iterations >= 1, "bad NPB spec");
}

arch::WorkloadProfile NpbWorkload::cpu_profile() const {
  if (spec_.tag == "bt") return profiles::npb_bt();
  if (spec_.tag == "cg") return profiles::npb_cg();
  if (spec_.tag == "ep") return profiles::npb_ep();
  if (spec_.tag == "ft") return profiles::npb_ft();
  if (spec_.tag == "is") return profiles::npb_is();
  if (spec_.tag == "lu") return profiles::npb_lu();
  if (spec_.tag == "mg") return profiles::npb_mg();
  if (spec_.tag == "sp") return profiles::npb_sp();
  throw Error("unknown NPB tag: " + spec_.tag);
}

std::vector<sim::Program> NpbWorkload::build(const BuildContext& ctx) const {
  validate(ctx);
  const int p = ctx.ranks;
  const bool pow2 = std::has_single_bit(static_cast<unsigned>(p));
  msg::ProgramSet ps(p);

  // Strong scaling from the 32-rank calibration point.
  const double work_scale = 32.0 / p * ctx.size_scale;
  const double instr = spec_.instructions_per_rank_iter * work_scale;
  // Surface-to-volume: faces shrink as (1/P)^(2/3) relative to reference.
  const double face_scale =
      std::pow(32.0 / p, 2.0 / 3.0) * ctx.size_scale;
  const Bytes face = std::max<Bytes>(
      static_cast<Bytes>(static_cast<double>(spec_.comm_unit) * face_scale),
      64);
  // All-to-all per-pair payloads shrink as 1/P² (fixed total volume).
  const Bytes pair_bytes = std::max<Bytes>(
      static_cast<Bytes>(static_cast<double>(spec_.comm_unit) *
                         (32.0 * 32.0) / (static_cast<double>(p) * p) *
                         ctx.size_scale),
      64);

  for (int it = 0; it < spec_.iterations; ++it) {
    if (it % 10 == 0) ps.begin_phase();

    // Pipeline sweeps interleave compute and messaging; everything else
    // computes first, then communicates.
    if (spec_.pattern == NpbPattern::kPipeline && p > 1) {
      // Forward and backward SSOR wavefronts.  Many fronts pipeline
      // through the rank chain, so the serialized portion is only the
      // pipeline fill (~two fronts' worth of one rank's work); the rest
      // of each rank's sweep overlaps with its neighbours.
      for (int dir = 0; dir < 2; ++dir) {
        std::vector<int> tags(static_cast<std::size_t>(p));
        for (int& t : tags) t = ps.next_tag();
        const double sweep_instr = instr / 2.0;
        const double fill_instr = sweep_instr * 0.7 / p;
        for (int s = 0; s < p; ++s) {
          const int r = dir == 0 ? s : p - 1 - s;
          const int prev = dir == 0 ? r - 1 : r + 1;
          const int next = dir == 0 ? r + 1 : r - 1;
          if (prev >= 0 && prev < p) {
            ps.add(r, sim::recv_op(prev, face,
                                   tags[static_cast<std::size_t>(prev)]));
          }
          const double jitter = imbalance_factor(name(), r, spec_.imbalance);
          auto emit_cpu = [&](double i) {
            ps.add(r, sim::cpu_op(i, i * spec_.flops_per_instruction,
                                  static_cast<Bytes>(
                                      i * spec_.dram_bytes_per_instruction),
                                  /*profile=*/0));
          };
          emit_cpu(fill_instr * jitter);
          if (next >= 0 && next < p) {
            ps.add(r, sim::send_op(next, face,
                                   tags[static_cast<std::size_t>(r)]));
          }
          emit_cpu((sweep_instr - fill_instr) * jitter);
        }
      }
      continue;
    }

    for (int r = 0; r < p; ++r) {
      const double jitter = imbalance_factor(name(), r, spec_.imbalance);
      const double i = instr * jitter;
      ps.add(r, sim::cpu_op(i, i * spec_.flops_per_instruction,
                            static_cast<Bytes>(
                                i * spec_.dram_bytes_per_instruction),
                            /*profile=*/0));
    }
    if (p == 1) continue;

    switch (spec_.pattern) {
      case NpbPattern::kNeighbors:
        // Three face exchanges per step (multipartition x/y/z sweeps).
        for (int shift : {1, 2, 4}) {
          if (!pow2 || shift >= p) continue;
          for (int r = 0; r < p; ++r) {
            const int partner = r ^ shift;
            if (r < partner && partner < p) ps.exchange(r, partner, face);
          }
        }
        break;
      case NpbPattern::kSparse:
        // Segment exchanges along a hypercube + two dot reductions.
        for (int shift = 1; shift < p && pow2; shift <<= 1) {
          for (int r = 0; r < p; ++r) {
            const int partner = r ^ shift;
            if (r < partner) ps.exchange(r, partner, face);
          }
        }
        msg::allreduce(ps, 8);
        msg::allreduce(ps, 8);
        break;
      case NpbPattern::kNone:
        break;
      case NpbPattern::kAllToAll:
        msg::alltoall(ps, pair_bytes);
        break;
      case NpbPattern::kPipeline:
        break;  // handled above
      case NpbPattern::kMultigrid: {
        // Halos at every level, sizes halving; coarse-grid reduction.
        Bytes level_face = face;
        for (int level = 0; level < 8 && level_face >= 64; ++level) {
          const int shift = pow2 ? (1 << (level % std::bit_width(
                                              static_cast<unsigned>(p - 1))))
                                 : 1;
          for (int r = 0; r < p; ++r) {
            const int partner = r ^ shift;
            if (pow2 && r < partner && partner < p) {
              ps.exchange(r, partner, level_face);
            }
          }
          level_face /= 2;
        }
        msg::allreduce(ps, 8);
        break;
      }
    }
  }

  // Terminal verification reduction (every NPB code ends with one).
  if (p > 1) msg::allreduce(ps, 80);
  return ps.take();
}

NpbSpec npb_bt_spec() {
  NpbSpec s;
  s.tag = "bt";
  s.iterations = 200;
  s.instructions_per_rank_iter = 3.0e8;
  s.flops_per_instruction = 0.36;
  s.dram_bytes_per_instruction = 0.30;
  s.imbalance = 0.06;
  s.pattern = NpbPattern::kNeighbors;
  s.comm_unit = 200 * kKB;
  return s;
}

NpbSpec npb_cg_spec() {
  NpbSpec s;
  s.tag = "cg";
  // 75 outer iterations × 25 inner CG steps: every step synchronizes on
  // dot-product allreduces, which is what makes cg latency-sensitive.
  s.iterations = 1875;
  s.instructions_per_rank_iter = 8.0e6;
  s.flops_per_instruction = 0.30;
  s.dram_bytes_per_instruction = 1.2;
  s.imbalance = 0.28;
  s.pattern = NpbPattern::kSparse;
  s.comm_unit = 37 * kKB;
  return s;
}

NpbSpec npb_ep_spec() {
  NpbSpec s;
  s.tag = "ep";
  s.iterations = 16;
  s.instructions_per_rank_iter = 3.75e9;
  s.flops_per_instruction = 0.25;
  s.dram_bytes_per_instruction = 1.5;
  s.imbalance = 0.02;
  s.pattern = NpbPattern::kNone;
  s.comm_unit = 80;
  return s;
}

NpbSpec npb_ft_spec() {
  NpbSpec s;
  s.tag = "ft";
  s.iterations = 20;
  s.instructions_per_rank_iter = 2.5e9;
  s.flops_per_instruction = 0.34;
  s.dram_bytes_per_instruction = 0.8;
  s.imbalance = 0.05;
  s.pattern = NpbPattern::kAllToAll;
  s.comm_unit = 4 * kMB;  // per-pair transpose payload at 32 ranks
  return s;
}

NpbSpec npb_is_spec() {
  NpbSpec s;
  s.tag = "is";
  s.iterations = 10;
  s.instructions_per_rank_iter = 6.0e8;
  s.flops_per_instruction = 0.02;
  s.dram_bytes_per_instruction = 0.9;
  s.imbalance = 0.08;
  s.pattern = NpbPattern::kAllToAll;
  s.comm_unit = 1 * kMB;
  return s;
}

NpbSpec npb_lu_spec() {
  NpbSpec s;
  s.tag = "lu";
  s.iterations = 250;
  s.instructions_per_rank_iter = 1.5e8;
  s.flops_per_instruction = 0.32;
  s.dram_bytes_per_instruction = 0.4;
  s.imbalance = 0.22;
  s.pattern = NpbPattern::kPipeline;
  s.comm_unit = 40 * kKB;
  return s;
}

NpbSpec npb_mg_spec() {
  NpbSpec s;
  s.tag = "mg";
  s.iterations = 60;
  s.instructions_per_rank_iter = 5.0e8;
  s.flops_per_instruction = 0.30;
  s.dram_bytes_per_instruction = 1.0;
  s.imbalance = 0.10;
  s.pattern = NpbPattern::kMultigrid;
  s.comm_unit = 256 * kKB;
  return s;
}

NpbSpec npb_sp_spec() {
  NpbSpec s;
  s.tag = "sp";
  s.iterations = 400;
  s.instructions_per_rank_iter = 1.5e8;
  s.flops_per_instruction = 0.34;
  s.dram_bytes_per_instruction = 0.4;
  s.imbalance = 0.07;
  s.pattern = NpbPattern::kNeighbors;
  s.comm_unit = 120 * kKB;
  return s;
}

}  // namespace soc::workloads
