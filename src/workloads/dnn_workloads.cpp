#include "workloads/dnn_workloads.h"

#include <cmath>

#include "common/error.h"
#include "msg/program_set.h"
#include "workloads/kernels/dnn.h"
#include "workloads/profiles.h"

namespace soc::workloads {

DnnWorkload::DnnWorkload(Network network, int total_images)
    : network_(network), total_images_(total_images) {
  SOC_CHECK(total_images_ >= 1, "need at least one image");
}

arch::WorkloadProfile DnnWorkload::cpu_profile() const {
  return profiles::dnn_decode();
}

double DnnWorkload::flops_per_image() const {
  const auto layers = network_ == Network::kAlexNet
                          ? kernels::alexnet_layers()
                          : kernels::googlenet_layers();
  return kernels::network_flops(layers);
}

std::vector<sim::Program> DnnWorkload::build(const BuildContext& ctx) const {
  validate(ctx);
  const int ranks = ctx.ranks;
  const auto layers = network_ == Network::kAlexNet
                          ? kernels::alexnet_layers()
                          : kernels::googlenet_layers();

  const int images =
      std::max(1, static_cast<int>(total_images_ * ctx.size_scale));
  msg::ProgramSet ps(ranks);

  // 227×227×3 float input tensor staged to the device per image.
  const Bytes input_bytes = 227 * 227 * 3 * 4;
  // JPEG decode + resize + mean-subtract: ~1.4e7 instructions per image
  // (≈12 ms on a Cortex-A57, ≈5 ms on a Xeon core — the published
  // balance).  GoogLeNet adds a second preprocessing pass.
  const double decode_instructions =
      network_ == Network::kAlexNet ? 1.4e7 : 1.8e7;
  // The distribution scripts feed Caffe in small batches: the fully-
  // connected layers' weight traffic amortizes over the batch (batch-1
  // inference would be weight-bandwidth-bound on the SoC).
  const int batch = 16;

  const int per_rank = (images + ranks - 1) / ranks;
  for (int r = 0; r < ranks; ++r) {
    const int mine = std::min(per_rank, images - r * per_rank);
    if (mine <= 0) break;
    for (int done = 0; done < mine; done += batch) {
      const int b = std::min(batch, mine - done);
      for (int i = 0; i < b; ++i) {
        ps.add(r, sim::cpu_op(decode_instructions, 2.0e6,
                              /*dram_bytes=*/600 * kKB, /*profile=*/0));
      }
      ps.add(r, sim::copy_h2d_op(input_bytes * b, ctx.mem_model));
      for (const kernels::LayerSpec& layer : layers) {
        // Activations scale with the batch; weights stream once.
        const double act_bytes = (layer.bytes - layer.weight_bytes) * b;
        ps.add(r, sim::gpu_op(layer.flops * b,
                              static_cast<Bytes>(act_bytes +
                                                 layer.weight_bytes),
                              ctx.mem_model, ps.phase(),
                              layer.parallelism * b,
                              /*double_precision=*/false));
      }
      ps.add(r, sim::copy_d2h_op(1000 * 4 * b, ctx.mem_model));  // logits
      ps.add(r, sim::cpu_op(2.0e5 * b, 2.0e4 * b, 8 * kKiB,
                            /*profile=*/0));  // argmax
    }
  }
  return ps.take();
}

}  // namespace soc::workloads
