// Radix-2 complex FFT backing the NPB ft workload model.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace soc::workloads::kernels {

using Complex = std::complex<double>;

/// In-place iterative radix-2 Cooley–Tukey FFT; size must be a power of 2.
/// `inverse` applies the conjugate transform with 1/n normalization.
void fft(std::vector<Complex>& data, bool inverse = false);

/// FLOPs of an n-point complex FFT (the NPB accounting: 5·n·log2 n).
double fft_flops(double n);

}  // namespace soc::workloads::kernels
