#include "workloads/kernels/stencil.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace soc::workloads::kernels {

Grid2D::Grid2D(std::size_t nx_, std::size_t ny_, double fill)
    : nx(nx_), ny(ny_), v((nx_ + 2) * (ny_ + 2), fill) {
  SOC_CHECK(nx_ > 0 && ny_ > 0, "empty grid");
}

double& Grid2D::at(std::size_t i, std::size_t j) {
  return v[i * (ny + 2) + j];
}

double Grid2D::at(std::size_t i, std::size_t j) const {
  return v[i * (ny + 2) + j];
}

double jacobi_sweep(const Grid2D& in, const Grid2D& f, double h, Grid2D& out) {
  SOC_CHECK(in.nx == out.nx && in.ny == out.ny, "grid shape mismatch");
  SOC_CHECK(in.nx == f.nx && in.ny == f.ny, "rhs shape mismatch");
  double max_delta = 0.0;
  const double h2 = h * h;
  for (std::size_t i = 1; i <= in.nx; ++i) {
    for (std::size_t j = 1; j <= in.ny; ++j) {
      const double updated =
          0.25 * (in.at(i - 1, j) + in.at(i + 1, j) + in.at(i, j - 1) +
                  in.at(i, j + 1) - h2 * f.at(i, j));
      max_delta = std::max(max_delta, std::fabs(updated - in.at(i, j)));
      out.at(i, j) = updated;
    }
  }
  return max_delta;
}

int jacobi_solve(Grid2D& u, const Grid2D& f, double h, double tol,
                 int max_iterations) {
  Grid2D next = u;
  for (int it = 1; it <= max_iterations; ++it) {
    const double delta = jacobi_sweep(u, f, h, next);
    std::swap(u.v, next.v);
    if (delta < tol) return it;
  }
  return max_iterations;
}

double jacobi_flops_per_point() { return 6.0; }  // 4 adds, 1 sub/fma, 1 mul

double jacobi_bytes_per_point() {
  // Streaming model: read the point and rhs, write the update; the stencil
  // neighbours come from cache (two rows resident).
  return 3.0 * sizeof(double);
}

double heat_step(Grid2D& u, double dt, double h) {
  Grid2D next = u;
  const double alpha = dt / (h * h);
  SOC_CHECK(alpha <= 0.25, "explicit heat step unstable (dt too large)");
  double norm2 = 0.0;
  for (std::size_t i = 1; i <= u.nx; ++i) {
    for (std::size_t j = 1; j <= u.ny; ++j) {
      const double lap = u.at(i - 1, j) + u.at(i + 1, j) + u.at(i, j - 1) +
                         u.at(i, j + 1) - 4.0 * u.at(i, j);
      next.at(i, j) = u.at(i, j) + alpha * lap;
      norm2 += (alpha * lap) * (alpha * lap);
    }
  }
  std::swap(u.v, next.v);
  return std::sqrt(norm2);
}

namespace {
constexpr double kGamma = 1.4;

double pressure(double rho, double mom, double ene) {
  const double kinetic = 0.5 * mom * mom / rho;
  return (kGamma - 1.0) * (ene - kinetic);
}
}  // namespace

EulerState make_shock_tube(std::size_t cells) {
  SOC_CHECK(cells >= 4, "too few cells");
  EulerState s;
  s.rho.assign(cells, 0.0);
  s.mom.assign(cells, 0.0);
  s.ene.assign(cells, 0.0);
  for (std::size_t i = 0; i < cells; ++i) {
    // Sod shock tube: (ρ=1, p=1) left, (ρ=0.125, p=0.1) right.
    const bool left = i < cells / 2;
    const double rho = left ? 1.0 : 0.125;
    const double p = left ? 1.0 : 0.1;
    s.rho[i] = rho;
    s.mom[i] = 0.0;
    s.ene[i] = p / (kGamma - 1.0);
  }
  return s;
}

double euler_step(EulerState& s, double dt_over_dx) {
  const std::size_t n = s.rho.size();
  SOC_CHECK(n >= 4, "state too small");
  SOC_CHECK(dt_over_dx > 0.0 && dt_over_dx <= 0.5, "CFL violated");
  EulerState next = s;

  auto flux = [&](std::size_t i, double* f) {
    const double rho = s.rho[i];
    const double u = s.mom[i] / rho;
    const double p = pressure(rho, s.mom[i], s.ene[i]);
    f[0] = s.mom[i];
    f[1] = s.mom[i] * u + p;
    f[2] = (s.ene[i] + p) * u;
  };

  for (std::size_t i = 1; i + 1 < n; ++i) {
    double fl[3];
    double fr[3];
    flux(i - 1, fl);
    flux(i + 1, fr);
    // Lax–Friedrichs: average neighbours, central flux difference.
    next.rho[i] = 0.5 * (s.rho[i - 1] + s.rho[i + 1]) -
                  0.5 * dt_over_dx * (fr[0] - fl[0]);
    next.mom[i] = 0.5 * (s.mom[i - 1] + s.mom[i + 1]) -
                  0.5 * dt_over_dx * (fr[1] - fl[1]);
    next.ene[i] = 0.5 * (s.ene[i - 1] + s.ene[i + 1]) -
                  0.5 * dt_over_dx * (fr[2] - fl[2]);
  }
  // Transmissive boundaries.
  next.rho[0] = next.rho[1];
  next.mom[0] = next.mom[1];
  next.ene[0] = next.ene[1];
  next.rho[n - 1] = next.rho[n - 2];
  next.mom[n - 1] = next.mom[n - 2];
  next.ene[n - 1] = next.ene[n - 2];

  s = std::move(next);
  return total_mass(s);
}

double total_mass(const EulerState& s) {
  double m = 0.0;
  for (double r : s.rho) m += r;
  return m;
}

double total_energy(const EulerState& s) {
  double e = 0.0;
  for (double x : s.ene) e += x;
  return e;
}

}  // namespace soc::workloads::kernels
