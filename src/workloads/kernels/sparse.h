// Sparse linear algebra: CSR matrices and conjugate gradient.
//
// TeaLeaf solves each implicit conduction step with CG on a 5/7-point
// stencil matrix, and NPB's cg benchmark is CG on a random sparse matrix.
// Both workload models derive their FLOP/byte/communication structure
// from this kernel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace soc::workloads::kernels {

/// Compressed-sparse-row matrix.
struct CsrMatrix {
  std::size_t n = 0;
  std::vector<std::size_t> row_start;  ///< n+1 entries.
  std::vector<std::size_t> col;
  std::vector<double> val;

  std::size_t nonzeros() const { return val.size(); }
};

/// 5-point Laplacian (I − σ∇²) for an nx×ny grid — TeaLeaf's 2D operator.
CsrMatrix make_laplacian_2d(std::size_t nx, std::size_t ny, double sigma);

/// Random symmetric-positive-definite sparse matrix (NPB cg style):
/// `nnz_per_row` off-diagonal entries plus a dominant diagonal.
CsrMatrix make_random_spd(std::size_t n, std::size_t nnz_per_row,
                          std::uint64_t seed);

/// y = A·x.
void spmv(const CsrMatrix& a, const std::vector<double>& x,
          std::vector<double>& y);

struct CgResult {
  int iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

/// Conjugate gradient for A x = b (A SPD).  x holds the initial guess on
/// entry and the solution on exit.
CgResult conjugate_gradient(const CsrMatrix& a, const std::vector<double>& b,
                            std::vector<double>& x, double tolerance,
                            int max_iterations);

/// FLOPs of one CG iteration on a matrix with nnz nonzeros and n rows:
/// one SpMV (2·nnz) plus two dots and three axpys (10·n).
double cg_iteration_flops(double n, double nnz);

}  // namespace soc::workloads::kernels
