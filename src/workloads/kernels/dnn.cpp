#include "workloads/kernels/dnn.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.h"
#include "common/rng.h"

namespace soc::workloads::kernels {

Tensor::Tensor(std::size_t c, std::size_t h, std::size_t w, float fill)
    : channels(c), height(h), width(w), data(c * h * w, fill) {
  SOC_CHECK(c > 0 && h > 0 && w > 0, "empty tensor");
}

float& Tensor::at(std::size_t c, std::size_t y, std::size_t x) {
  return data[(c * height + y) * width + x];
}

float Tensor::at(std::size_t c, std::size_t y, std::size_t x) const {
  return data[(c * height + y) * width + x];
}

Tensor conv2d(const Tensor& in, std::size_t out_channels, std::size_t k,
              std::size_t stride, std::uint64_t seed) {
  SOC_CHECK(k >= 1 && stride >= 1, "bad conv geometry");
  SOC_CHECK(in.height >= k && in.width >= k, "kernel larger than input");
  const std::size_t out_h = (in.height - k) / stride + 1;
  const std::size_t out_w = (in.width - k) / stride + 1;
  Tensor out(out_channels, out_h, out_w);

  Rng rng(seed);
  const std::size_t wsize = out_channels * in.channels * k * k;
  std::vector<float> weights(wsize);
  for (float& w : weights) {
    w = static_cast<float>(rng.next_range(-0.1, 0.1));
  }

  for (std::size_t oc = 0; oc < out_channels; ++oc) {
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        float acc = 0.0f;
        for (std::size_t ic = 0; ic < in.channels; ++ic) {
          for (std::size_t ky = 0; ky < k; ++ky) {
            for (std::size_t kx = 0; kx < k; ++kx) {
              const float w =
                  weights[((oc * in.channels + ic) * k + ky) * k + kx];
              acc += w * in.at(ic, oy * stride + ky, ox * stride + kx);
            }
          }
        }
        out.at(oc, oy, ox) = acc;
      }
    }
  }
  return out;
}

void relu(Tensor& t) {
  for (float& v : t.data) v = std::max(v, 0.0f);
}

Tensor maxpool(const Tensor& in, std::size_t k) {
  SOC_CHECK(k >= 1 && in.height >= k && in.width >= k, "bad pool geometry");
  Tensor out(in.channels, in.height / k, in.width / k);
  for (std::size_t c = 0; c < in.channels; ++c) {
    for (std::size_t oy = 0; oy < out.height; ++oy) {
      for (std::size_t ox = 0; ox < out.width; ++ox) {
        float best = in.at(c, oy * k, ox * k);
        for (std::size_t ky = 0; ky < k; ++ky) {
          for (std::size_t kx = 0; kx < k; ++kx) {
            best = std::max(best, in.at(c, oy * k + ky, ox * k + kx));
          }
        }
        out.at(c, oy, ox) = best;
      }
    }
  }
  return out;
}

std::vector<float> fully_connected(const Tensor& in, std::size_t outputs,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(outputs, 0.0f);
  for (std::size_t o = 0; o < outputs; ++o) {
    Rng row = rng.split(o);
    float acc = 0.0f;
    for (float v : in.data) {
      acc += v * static_cast<float>(row.next_range(-0.05, 0.05));
    }
    out[o] = acc;
  }
  return out;
}

std::vector<float> softmax(const std::vector<float>& logits) {
  SOC_CHECK(!logits.empty(), "empty logits");
  const float max = *std::max_element(logits.begin(), logits.end());
  std::vector<float> out(logits.size());
  float sum = 0.0f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - max);
    sum += out[i];
  }
  for (float& v : out) v /= sum;
  return out;
}

void idct8x8(const float* coeffs, float* pixels) {
  // Direct (non-fast) 2D IDCT — the arithmetic JPEG decode spends its
  // time in; exactness matters more than speed here.
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      double acc = 0.0;
      for (int v = 0; v < 8; ++v) {
        for (int u = 0; u < 8; ++u) {
          const double cu = u == 0 ? std::numbers::sqrt2 / 2.0 : 1.0;
          const double cv = v == 0 ? std::numbers::sqrt2 / 2.0 : 1.0;
          acc += cu * cv * coeffs[v * 8 + u] *
                 std::cos((2.0 * x + 1.0) * u * std::numbers::pi / 16.0) *
                 std::cos((2.0 * y + 1.0) * v * std::numbers::pi / 16.0);
        }
      }
      pixels[y * 8 + x] = static_cast<float>(acc / 4.0);
    }
  }
}

double conv_flops(std::size_t in_c, std::size_t out_c, std::size_t out_h,
                  std::size_t out_w, std::size_t k) {
  return 2.0 * static_cast<double>(out_c) * out_h * out_w * in_c * k * k;
}

namespace {

LayerSpec conv_layer(const std::string& name, std::size_t in_c,
                     std::size_t out_c, std::size_t out_h, std::size_t out_w,
                     std::size_t k) {
  LayerSpec l;
  l.name = name;
  l.flops = conv_flops(in_c, out_c, out_h, out_w, k);
  const double activations =
      static_cast<double>(out_c) * out_h * out_w * sizeof(float);
  const double weights =
      static_cast<double>(out_c) * in_c * k * k * sizeof(float);
  l.bytes = activations * 2.0 + weights;
  l.weight_bytes = weights;
  l.parallelism = static_cast<double>(out_c) * out_h * out_w;
  return l;
}

LayerSpec fc_layer(const std::string& name, std::size_t inputs,
                   std::size_t outputs) {
  LayerSpec l;
  l.name = name;
  l.flops = 2.0 * static_cast<double>(inputs) * outputs;
  l.bytes = static_cast<double>(inputs) * outputs * sizeof(float);
  l.weight_bytes = l.bytes;
  l.parallelism = static_cast<double>(outputs);
  return l;
}

}  // namespace

std::vector<LayerSpec> alexnet_layers() {
  // Krizhevsky et al. 2012; 227×227×3 input, forward pass ≈ 1.4 GFLOPs.
  return {
      conv_layer("conv1", 3, 96, 55, 55, 11),
      conv_layer("conv2", 96, 256, 27, 27, 5),
      conv_layer("conv3", 256, 384, 13, 13, 3),
      conv_layer("conv4", 384, 384, 13, 13, 3),
      conv_layer("conv5", 384, 256, 13, 13, 3),
      fc_layer("fc6", 9216, 4096),
      fc_layer("fc7", 4096, 4096),
      fc_layer("fc8", 4096, 1000),
  };
}

std::vector<LayerSpec> googlenet_layers() {
  // Szegedy et al. 2014; inception modules folded into their dominant
  // convolutions (≈3.2 GFLOPs forward, ~60 kernel launches per image).
  std::vector<LayerSpec> layers = {
      conv_layer("conv1/7x7", 3, 64, 112, 112, 7),
      conv_layer("conv2/3x3r", 64, 64, 56, 56, 1),
      conv_layer("conv2/3x3", 64, 192, 56, 56, 3),
  };
  struct Inception {
    const char* name;
    std::size_t in_c, hw, c1, c3r, c3, c5r, c5, pp;
  };
  const Inception modules[] = {
      {"3a", 192, 28, 64, 96, 128, 16, 32, 32},
      {"3b", 256, 28, 128, 128, 192, 32, 96, 64},
      {"4a", 480, 14, 192, 96, 208, 16, 48, 64},
      {"4b", 512, 14, 160, 112, 224, 24, 64, 64},
      {"4c", 512, 14, 128, 128, 256, 24, 64, 64},
      {"4d", 512, 14, 112, 144, 288, 32, 64, 64},
      {"4e", 528, 14, 256, 160, 320, 32, 128, 128},
      {"5a", 832, 7, 256, 160, 320, 32, 128, 128},
      {"5b", 832, 7, 384, 192, 384, 48, 128, 128},
  };
  for (const Inception& m : modules) {
    const std::string base = std::string("inception_") + m.name;
    layers.push_back(conv_layer(base + "/1x1", m.in_c, m.c1, m.hw, m.hw, 1));
    layers.push_back(conv_layer(base + "/3x3r", m.in_c, m.c3r, m.hw, m.hw, 1));
    layers.push_back(conv_layer(base + "/3x3", m.c3r, m.c3, m.hw, m.hw, 3));
    layers.push_back(conv_layer(base + "/5x5r", m.in_c, m.c5r, m.hw, m.hw, 1));
    layers.push_back(conv_layer(base + "/5x5", m.c5r, m.c5, m.hw, m.hw, 5));
    layers.push_back(conv_layer(base + "/pool_proj", m.in_c, m.pp, m.hw, m.hw, 1));
  }
  layers.push_back(fc_layer("loss3/classifier", 1024, 1000));
  return layers;
}

double network_flops(const std::vector<LayerSpec>& layers) {
  double total = 0.0;
  for (const LayerSpec& l : layers) total += l.flops;
  return total;
}

}  // namespace soc::workloads::kernels
