#include "workloads/kernels/sort.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"

namespace soc::workloads::kernels {

std::vector<std::uint32_t> make_keys(std::size_t count, std::uint32_t max_key,
                                     std::uint64_t seed) {
  SOC_CHECK(max_key > 0, "max_key must be positive");
  Rng rng(seed);
  std::vector<std::uint32_t> keys(count);
  for (std::uint32_t& k : keys) {
    // NPB is uses an average of four uniforms (bell-ish distribution).
    std::uint64_t sum = 0;
    for (int i = 0; i < 4; ++i) sum += rng.next_below(max_key);
    k = static_cast<std::uint32_t>(sum / 4);
  }
  return keys;
}

std::vector<std::uint32_t> bucket_sort(const std::vector<std::uint32_t>& keys,
                                       std::uint32_t max_key,
                                       std::size_t buckets) {
  SOC_CHECK(buckets >= 1, "need at least one bucket");
  const std::uint64_t width =
      (static_cast<std::uint64_t>(max_key) + buckets - 1) / buckets;
  SOC_CHECK(width > 0, "bucket width underflow");

  std::vector<std::vector<std::uint32_t>> bins(buckets);
  for (std::uint32_t k : keys) {
    const std::size_t b =
        std::min(static_cast<std::size_t>(k / width), buckets - 1);
    bins[b].push_back(k);
  }
  std::vector<std::uint32_t> out;
  out.reserve(keys.size());
  for (std::vector<std::uint32_t>& bin : bins) {
    std::sort(bin.begin(), bin.end());
    out.insert(out.end(), bin.begin(), bin.end());
  }
  return out;
}

bool is_sorted_ascending(const std::vector<std::uint32_t>& keys) {
  return std::is_sorted(keys.begin(), keys.end());
}

}  // namespace soc::workloads::kernels
