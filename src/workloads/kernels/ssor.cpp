#include "workloads/kernels/ssor.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace soc::workloads::kernels {

double ssor_iteration(Grid2D& u, const Grid2D& f, double h, double omega) {
  SOC_CHECK(omega > 0.0 && omega < 2.0, "SSOR needs omega in (0, 2)");
  const double h2 = h * h;
  double max_delta = 0.0;
  auto relax = [&](std::size_t i, std::size_t j) {
    const double gs = 0.25 * (u.at(i - 1, j) + u.at(i + 1, j) +
                              u.at(i, j - 1) + u.at(i, j + 1) -
                              h2 * f.at(i, j));
    const double updated = u.at(i, j) + omega * (gs - u.at(i, j));
    max_delta = std::max(max_delta, std::fabs(updated - u.at(i, j)));
    u.at(i, j) = updated;
  };
  // Forward wavefront: (i,j) after (i-1,j) and (i,j-1).
  for (std::size_t i = 1; i <= u.nx; ++i) {
    for (std::size_t j = 1; j <= u.ny; ++j) relax(i, j);
  }
  // Backward wavefront.
  for (std::size_t i = u.nx; i >= 1; --i) {
    for (std::size_t j = u.ny; j >= 1; --j) relax(i, j);
  }
  return max_delta;
}

int ssor_solve(Grid2D& u, const Grid2D& f, double h, double omega, double tol,
               int max_iterations) {
  for (int it = 1; it <= max_iterations; ++it) {
    if (ssor_iteration(u, f, h, omega) < tol) return it;
  }
  return max_iterations;
}

namespace {

// Small dense helpers on bs×bs row-major blocks.
void block_lu_solve(std::vector<double> a, std::size_t n, double* rhs,
                    std::size_t nrhs) {
  // Gaussian elimination with partial pivoting; rhs holds nrhs columns
  // stored column-major (each column contiguous, length n).
  std::vector<std::size_t> perm(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    for (std::size_t r = k + 1; r < n; ++r) {
      if (std::fabs(a[r * n + k]) > std::fabs(a[piv * n + k])) piv = r;
    }
    SOC_CHECK(std::fabs(a[piv * n + k]) > 1e-13,
              "singular pivot block in block Thomas");
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[k * n + c], a[piv * n + c]);
      for (std::size_t c = 0; c < nrhs; ++c) {
        std::swap(rhs[c * n + k], rhs[c * n + piv]);
      }
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = a[r * n + k] / a[k * n + k];
      if (factor == 0.0) continue;
      for (std::size_t c = k; c < n; ++c) a[r * n + c] -= factor * a[k * n + c];
      for (std::size_t c = 0; c < nrhs; ++c) {
        rhs[c * n + r] -= factor * rhs[c * n + k];
      }
    }
  }
  for (std::size_t col = 0; col < nrhs; ++col) {
    double* x = rhs + col * n;
    for (std::size_t k = n; k-- > 0;) {
      for (std::size_t c = k + 1; c < n; ++c) x[k] -= a[k * n + c] * x[c];
      x[k] /= a[k * n + k];
    }
  }
  (void)perm;
}

// c -= a·b for bs×bs row-major blocks.
void block_gemm_sub(const double* a, const double* b, double* c,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      const double aik = a[i * n + k];
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        c[i * n + j] -= aik * b[k * n + j];
      }
    }
  }
}

// y -= a·x for a bs×bs block and bs vector.
void block_gemv_sub(const double* a, const double* x, double* y,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += a[i * n + j] * x[j];
    y[i] -= s;
  }
}

}  // namespace

BlockTridiagonal make_block_tridiagonal(std::size_t rows, std::size_t bs,
                                        std::uint64_t seed) {
  SOC_CHECK(rows >= 2 && bs >= 1, "system too small");
  BlockTridiagonal s;
  s.rows = rows;
  s.bs = bs;
  const std::size_t bb = bs * bs;
  s.lower.assign(rows * bb, 0.0);
  s.diag.assign(rows * bb, 0.0);
  s.upper.assign(rows * bb, 0.0);
  s.rhs.assign(rows * bs, 0.0);
  Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t e = 0; e < bb; ++e) {
      if (r > 0) s.lower[r * bb + e] = rng.next_range(-0.2, 0.2);
      if (r + 1 < rows) s.upper[r * bb + e] = rng.next_range(-0.2, 0.2);
      s.diag[r * bb + e] = rng.next_range(-0.2, 0.2);
    }
    // Diagonal dominance within the diagonal block.
    for (std::size_t i = 0; i < bs; ++i) {
      s.diag[r * bb + i * bs + i] += 2.0 * static_cast<double>(bs);
    }
    for (std::size_t i = 0; i < bs; ++i) {
      s.rhs[r * bs + i] = rng.next_range(-1.0, 1.0);
    }
  }
  return s;
}

std::vector<double> block_thomas_solve(BlockTridiagonal s) {
  const std::size_t n = s.rows;
  const std::size_t bs = s.bs;
  const std::size_t bb = bs * bs;

  // Forward elimination: at each block row, solve D_r for [U_r | rhs_r]
  // and subtract L_{r+1}·(that) from the next row.
  for (std::size_t r = 0; r < n; ++r) {
    // Pack [upper | rhs] as column-major rhs for the dense solver.
    std::vector<double> packed((bs + 1) * bs, 0.0);
    for (std::size_t c = 0; c < bs; ++c) {
      for (std::size_t i = 0; i < bs; ++i) {
        packed[c * bs + i] = s.upper[r * bb + i * bs + c];
      }
    }
    for (std::size_t i = 0; i < bs; ++i) {
      packed[bs * bs + i] = s.rhs[r * bs + i];
    }
    std::vector<double> diag(s.diag.begin() + static_cast<std::ptrdiff_t>(r * bb),
                             s.diag.begin() + static_cast<std::ptrdiff_t>((r + 1) * bb));
    block_lu_solve(std::move(diag), bs, packed.data(), bs + 1);
    // Unpack the transformed upper block and rhs.
    for (std::size_t c = 0; c < bs; ++c) {
      for (std::size_t i = 0; i < bs; ++i) {
        s.upper[r * bb + i * bs + c] = packed[c * bs + i];
      }
    }
    for (std::size_t i = 0; i < bs; ++i) {
      s.rhs[r * bs + i] = packed[bs * bs + i];
    }
    if (r + 1 < n) {
      // D_{r+1} -= L_{r+1}·Ũ_r and rhs_{r+1} -= L_{r+1}·r̃hs_r.
      block_gemm_sub(&s.lower[(r + 1) * bb], &s.upper[r * bb],
                     &s.diag[(r + 1) * bb], bs);
      block_gemv_sub(&s.lower[(r + 1) * bb], &s.rhs[r * bs],
                     &s.rhs[(r + 1) * bs], bs);
    }
  }

  // Back substitution: x_r = rhs~_r − U~_r · x_{r+1}.
  std::vector<double> x = s.rhs;
  for (std::size_t r = n - 1; r-- > 0;) {
    block_gemv_sub(&s.upper[r * bb], &x[(r + 1) * bs], &x[r * bs], bs);
  }
  return x;
}

double block_tridiagonal_residual(const BlockTridiagonal& s,
                                  const std::vector<double>& x) {
  SOC_CHECK(x.size() == s.rows * s.bs, "solution size mismatch");
  const std::size_t bs = s.bs;
  const std::size_t bb = bs * bs;
  double worst = 0.0;
  for (std::size_t r = 0; r < s.rows; ++r) {
    for (std::size_t i = 0; i < bs; ++i) {
      double acc = -s.rhs[r * bs + i];
      for (std::size_t j = 0; j < bs; ++j) {
        acc += s.diag[r * bb + i * bs + j] * x[r * bs + j];
        if (r > 0) acc += s.lower[r * bb + i * bs + j] * x[(r - 1) * bs + j];
        if (r + 1 < s.rows) {
          acc += s.upper[r * bb + i * bs + j] * x[(r + 1) * bs + j];
        }
      }
      worst = std::max(worst, std::fabs(acc));
    }
  }
  return worst;
}

}  // namespace soc::workloads::kernels
