// Geometric multigrid V-cycle backing the NPB mg workload model.
//
// Standard components on a square grid: damped-Jacobi smoothing,
// full-weighting restriction, bilinear prolongation.  The workload model
// mirrors the level structure (halo sizes halving per level, tiny coarse
// grids dominated by latency).
#pragma once

#include "workloads/kernels/stencil.h"

namespace soc::workloads::kernels {

/// One V-cycle for ∇²u = f on a vertex-centered grid; nx, ny must be odd
/// (2^k − 1 coarsens all the way down).  Returns the residual L2 norm
/// after the cycle.
double mg_vcycle(Grid2D& u, const Grid2D& f, double h, std::size_t min_size,
                 int pre_smooth = 2, int post_smooth = 2);

/// Residual L2 norm ‖f − ∇²u‖ (helper exposed for tests).
double mg_residual_norm(const Grid2D& u, const Grid2D& f, double h);

/// Number of multigrid levels for an n×n fine grid down to min_size.
int mg_levels(std::size_t n, std::size_t min_size);

}  // namespace soc::workloads::kernels
