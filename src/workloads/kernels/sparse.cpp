#include "workloads/kernels/sparse.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.h"
#include "common/rng.h"

namespace soc::workloads::kernels {

CsrMatrix make_laplacian_2d(std::size_t nx, std::size_t ny, double sigma) {
  SOC_CHECK(nx > 0 && ny > 0, "empty grid");
  SOC_CHECK(sigma > 0.0, "sigma must be positive");
  CsrMatrix m;
  m.n = nx * ny;
  m.row_start.reserve(m.n + 1);
  m.row_start.push_back(0);
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < ny; ++j) {
      const std::size_t row = i * ny + j;
      // (I − σ∇²) with Dirichlet boundaries: diagonal 1+4σ, neighbours −σ.
      auto push = [&](std::size_t c, double v) {
        m.col.push_back(c);
        m.val.push_back(v);
      };
      if (i > 0) push(row - ny, -sigma);
      if (j > 0) push(row - 1, -sigma);
      push(row, 1.0 + 4.0 * sigma);
      if (j + 1 < ny) push(row + 1, -sigma);
      if (i + 1 < nx) push(row + ny, -sigma);
      m.row_start.push_back(m.col.size());
    }
  }
  return m;
}

CsrMatrix make_random_spd(std::size_t n, std::size_t nnz_per_row,
                          std::uint64_t seed) {
  SOC_CHECK(n > 1 && nnz_per_row >= 1, "bad sparse shape");
  Rng rng(seed);
  // Build symmetric structure: collect (r, c) pairs with r < c, mirror.
  std::vector<std::map<std::size_t, double>> rows(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = 0; k < nnz_per_row; ++k) {
      std::size_t c = static_cast<std::size_t>(rng.next_below(n));
      if (c == r) continue;
      const double v = rng.next_range(-0.5, 0.5);
      rows[r][c] = v;
      rows[c][r] = v;
    }
  }
  // Dominant diagonal makes it SPD.
  CsrMatrix m;
  m.n = n;
  m.row_start.reserve(n + 1);
  m.row_start.push_back(0);
  for (std::size_t r = 0; r < n; ++r) {
    double off_sum = 0.0;
    for (const auto& [c, v] : rows[r]) off_sum += std::fabs(v);
    rows[r][r] = off_sum + 1.0;
    for (const auto& [c, v] : rows[r]) {
      m.col.push_back(c);
      m.val.push_back(v);
    }
    m.row_start.push_back(m.col.size());
  }
  return m;
}

void spmv(const CsrMatrix& a, const std::vector<double>& x,
          std::vector<double>& y) {
  SOC_CHECK(x.size() == a.n, "spmv size mismatch");
  y.assign(a.n, 0.0);
  for (std::size_t r = 0; r < a.n; ++r) {
    double s = 0.0;
    for (std::size_t k = a.row_start[r]; k < a.row_start[r + 1]; ++k) {
      s += a.val[k] * x[a.col[k]];
    }
    y[r] = s;
  }
}

namespace {
double vdot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}
}  // namespace

CgResult conjugate_gradient(const CsrMatrix& a, const std::vector<double>& b,
                            std::vector<double>& x, double tolerance,
                            int max_iterations) {
  SOC_CHECK(b.size() == a.n && x.size() == a.n, "cg size mismatch");
  std::vector<double> r(a.n);
  std::vector<double> ap(a.n);
  spmv(a, x, ap);
  for (std::size_t i = 0; i < a.n; ++i) r[i] = b[i] - ap[i];
  std::vector<double> p = r;
  double rr = vdot(r, r);

  CgResult result;
  const double tol2 = tolerance * tolerance;
  for (result.iterations = 0; result.iterations < max_iterations;
       ++result.iterations) {
    if (rr <= tol2) {
      result.converged = true;
      break;
    }
    spmv(a, p, ap);
    const double alpha = rr / vdot(p, ap);
    for (std::size_t i = 0; i < a.n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rr_next = vdot(r, r);
    const double beta = rr_next / rr;
    for (std::size_t i = 0; i < a.n; ++i) p[i] = r[i] + beta * p[i];
    rr = rr_next;
  }
  result.residual_norm = std::sqrt(rr);
  return result;
}

double cg_iteration_flops(double n, double nnz) {
  return 2.0 * nnz + 10.0 * n;
}

}  // namespace soc::workloads::kernels
