// Integer bucket sort backing the NPB is workload model.
#pragma once

#include <cstdint>
#include <vector>

namespace soc::workloads::kernels {

/// Deterministic key distribution of `count` keys in [0, max_key).
std::vector<std::uint32_t> make_keys(std::size_t count,
                                     std::uint32_t max_key,
                                     std::uint64_t seed);

/// Bucket sort with `buckets` equal-width buckets; returns the sorted keys
/// (ascending).  This is the rank+redistribute structure NPB is uses
/// across ranks.
std::vector<std::uint32_t> bucket_sort(const std::vector<std::uint32_t>& keys,
                                       std::uint32_t max_key,
                                       std::size_t buckets);

/// Verifies ascending order.
bool is_sorted_ascending(const std::vector<std::uint32_t>& keys);

}  // namespace soc::workloads::kernels
