// Deep-learning kernels backing the alexnet/googlenet workload models:
// real (small-scale) convolution / pooling / fully-connected forward
// passes, an 8×8 IDCT (the compute core of JPEG decoding, which the paper
// identifies as the CPU-side work feeding the GPU), and layer tables for
// the two networks with their FLOP accounting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace soc::workloads::kernels {

/// A dense tensor in CHW layout.
struct Tensor {
  std::size_t channels = 0;
  std::size_t height = 0;
  std::size_t width = 0;
  std::vector<float> data;

  Tensor() = default;
  Tensor(std::size_t c, std::size_t h, std::size_t w, float fill = 0.0f);
  float& at(std::size_t c, std::size_t y, std::size_t x);
  float at(std::size_t c, std::size_t y, std::size_t x) const;
};

/// Valid-padding stride-s convolution with `out_channels` k×k filters.
/// Weights are CKK-per-output-channel, deterministic from `seed`.
Tensor conv2d(const Tensor& in, std::size_t out_channels, std::size_t k,
              std::size_t stride, std::uint64_t seed);

/// In-place ReLU.
void relu(Tensor& t);

/// k×k max pooling with stride k.
Tensor maxpool(const Tensor& in, std::size_t k);

/// Fully connected layer to `outputs` neurons.
std::vector<float> fully_connected(const Tensor& in, std::size_t outputs,
                                   std::uint64_t seed);

/// Numerically stable softmax.
std::vector<float> softmax(const std::vector<float>& logits);

/// 8×8 inverse DCT (JPEG's decode core); in/out are 64-entry blocks.
void idct8x8(const float* coeffs, float* pixels);

/// FLOPs of one conv layer: 2 · outC · outH · outW · inC · k².
double conv_flops(std::size_t in_c, std::size_t out_c, std::size_t out_h,
                  std::size_t out_w, std::size_t k);

/// One layer of a network description used by the workload generators.
struct LayerSpec {
  std::string name;
  double flops = 0.0;        ///< Forward FLOPs per image.
  double bytes = 0.0;        ///< Activations + weights traffic per image.
  double weight_bytes = 0.0; ///< Weight traffic (amortizes over a batch).
  double parallelism = 0.0;  ///< Output elements (GPU thread count proxy).
};

/// AlexNet forward pass, 227×227×3 input (Krizhevsky et al.).
std::vector<LayerSpec> alexnet_layers();
/// GoogLeNet forward pass (inception modules folded to kernel-level ops).
std::vector<LayerSpec> googlenet_layers();

/// Total forward FLOPs per image of a layer table.
double network_flops(const std::vector<LayerSpec>& layers);

}  // namespace soc::workloads::kernels
