#include "workloads/kernels/linalg.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace soc::workloads::kernels {

DenseMatrix make_test_matrix(std::size_t n, std::uint64_t seed) {
  SOC_CHECK(n > 0, "empty matrix");
  DenseMatrix m;
  m.n = n;
  m.a.resize(n * n);
  Rng rng(seed);
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t r = 0; r < n; ++r) {
      m.at(r, c) = rng.next_range(-1.0, 1.0);
    }
  }
  // Diagonal dominance keeps the factorization well-conditioned.
  for (std::size_t i = 0; i < n; ++i) {
    m.at(i, i) += static_cast<double>(n);
  }
  return m;
}

std::vector<std::size_t> lu_factor(DenseMatrix& m) {
  const std::size_t n = m.n;
  std::vector<std::size_t> pivots(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot within column k.
    std::size_t piv = k;
    double best = std::fabs(m.at(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      if (std::fabs(m.at(r, k)) > best) {
        best = std::fabs(m.at(r, k));
        piv = r;
      }
    }
    SOC_CHECK(best > 1e-13, "singular matrix in lu_factor");
    pivots[k] = piv;
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(m.at(k, c), m.at(piv, c));
    }
    // Scale the panel column and update the trailing submatrix.
    const double diag = m.at(k, k);
    for (std::size_t r = k + 1; r < n; ++r) m.at(r, k) /= diag;
    for (std::size_t c = k + 1; c < n; ++c) {
      const double mkc = m.at(k, c);
      if (mkc == 0.0) continue;
      for (std::size_t r = k + 1; r < n; ++r) {
        m.at(r, c) -= m.at(r, k) * mkc;
      }
    }
  }
  return pivots;
}

std::vector<double> lu_solve(const DenseMatrix& lu,
                             const std::vector<std::size_t>& pivots,
                             const std::vector<double>& b) {
  const std::size_t n = lu.n;
  SOC_CHECK(b.size() == n && pivots.size() == n, "lu_solve size mismatch");
  std::vector<double> x = b;
  for (std::size_t k = 0; k < n; ++k) {
    if (pivots[k] != k) std::swap(x[k], x[pivots[k]]);
    for (std::size_t r = k + 1; r < n; ++r) x[r] -= lu.at(r, k) * x[k];
  }
  for (std::size_t k = n; k-- > 0;) {
    for (std::size_t c = k + 1; c < n; ++c) x[k] -= lu.at(k, c) * x[c];
    x[k] /= lu.at(k, k);
  }
  return x;
}

double residual_inf(const DenseMatrix& a, const std::vector<double>& x,
                    const std::vector<double>& b) {
  const std::size_t n = a.n;
  SOC_CHECK(x.size() == n && b.size() == n, "residual size mismatch");
  double worst = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    double s = -b[r];
    for (std::size_t c = 0; c < n; ++c) s += a.at(r, c) * x[c];
    worst = std::max(worst, std::fabs(s));
  }
  return worst;
}

void gemm_subtract(std::size_t m, std::size_t n, std::size_t k,
                   const double* a, std::size_t lda, const double* b,
                   std::size_t ldb, double* c, std::size_t ldc) {
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t l = 0; l < k; ++l) {
      const double blj = b[j * ldb + l];
      if (blj == 0.0) continue;
      const double* acol = a + l * lda;
      double* ccol = c + j * ldc;
      for (std::size_t i = 0; i < m; ++i) {
        ccol[i] -= acol[i] * blj;
      }
    }
  }
}

double lu_flops(double n) { return (2.0 / 3.0) * n * n * n + 2.0 * n * n; }

}  // namespace soc::workloads::kernels
