// SSOR kernels backing the NPB lu workload model: symmetric successive
// over-relaxation sweeps with the lower/upper wavefront dependency
// structure that forces lu's pipelined communication, plus a block-
// tridiagonal Thomas solver (the per-line solve at the heart of bt/sp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "workloads/kernels/stencil.h"

namespace soc::workloads::kernels {

/// One SSOR iteration (forward then backward sweep) for ∇²u = f with
/// relaxation factor omega; returns the max pointwise update.  The sweeps
/// traverse the grid in wavefront order — cell (i,j) depends on (i-1,j)
/// and (i,j-1) in the forward pass — which is exactly the dependency the
/// lu benchmark pipelines across ranks.
double ssor_iteration(Grid2D& u, const Grid2D& f, double h, double omega);

/// Solves ∇²u = f by SSOR until the update drops below tol; returns the
/// iteration count (capped at max_iterations).
int ssor_solve(Grid2D& u, const Grid2D& f, double h, double omega,
               double tol, int max_iterations);

/// Dense blocked tridiagonal system: block rows of size `bs`, with
/// sub/main/super diagonal blocks (row-major bs×bs each) and block RHS.
struct BlockTridiagonal {
  std::size_t rows = 0;   ///< Number of block rows.
  std::size_t bs = 0;     ///< Block size (bt uses 5×5).
  std::vector<double> lower;  ///< rows×bs×bs (first unused).
  std::vector<double> diag;   ///< rows×bs×bs.
  std::vector<double> upper;  ///< rows×bs×bs (last unused).
  std::vector<double> rhs;    ///< rows×bs.
};

/// Deterministic diagonally-dominant block-tridiagonal test system.
BlockTridiagonal make_block_tridiagonal(std::size_t rows, std::size_t bs,
                                        std::uint64_t seed);

/// Solves the system in place by block Thomas elimination; returns the
/// solution (rows×bs).  Throws soc::Error on a singular pivot block.
std::vector<double> block_thomas_solve(BlockTridiagonal system);

/// Residual ‖A·x − b‖∞ of a candidate solution against the ORIGINAL
/// system (pass a fresh copy, not the factored one).
double block_tridiagonal_residual(const BlockTridiagonal& system,
                                  const std::vector<double>& x);

}  // namespace soc::workloads::kernels
