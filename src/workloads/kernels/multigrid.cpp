#include "workloads/kernels/multigrid.h"

#include <cmath>

#include "common/error.h"

namespace soc::workloads::kernels {

namespace {

// Damped Jacobi smoothing, ω = 0.8.
void smooth(Grid2D& u, const Grid2D& f, double h, int sweeps) {
  const double h2 = h * h;
  Grid2D next = u;
  for (int s = 0; s < sweeps; ++s) {
    for (std::size_t i = 1; i <= u.nx; ++i) {
      for (std::size_t j = 1; j <= u.ny; ++j) {
        const double jac =
            0.25 * (u.at(i - 1, j) + u.at(i + 1, j) + u.at(i, j - 1) +
                    u.at(i, j + 1) - h2 * f.at(i, j));
        next.at(i, j) = u.at(i, j) + 0.8 * (jac - u.at(i, j));
      }
    }
    std::swap(u.v, next.v);
  }
}

// r = f − ∇²u.
Grid2D residual(const Grid2D& u, const Grid2D& f, double h) {
  Grid2D r(u.nx, u.ny);
  const double inv_h2 = 1.0 / (h * h);
  for (std::size_t i = 1; i <= u.nx; ++i) {
    for (std::size_t j = 1; j <= u.ny; ++j) {
      const double lap = (u.at(i - 1, j) + u.at(i + 1, j) + u.at(i, j - 1) +
                          u.at(i, j + 1) - 4.0 * u.at(i, j)) *
                         inv_h2;
      r.at(i, j) = f.at(i, j) - lap;
    }
  }
  return r;
}

// Vertex-centered grids: a fine grid of n = 2m+1 interior points coarsens
// to m points, with coarse point (i,j) coincident with fine (2i, 2j).

// Full-weighting restriction (1/4 center, 1/8 edges, 1/16 corners).
Grid2D restrict_grid(const Grid2D& fine) {
  Grid2D coarse((fine.nx - 1) / 2, (fine.ny - 1) / 2);
  for (std::size_t i = 1; i <= coarse.nx; ++i) {
    for (std::size_t j = 1; j <= coarse.ny; ++j) {
      const std::size_t fi = 2 * i;
      const std::size_t fj = 2 * j;
      coarse.at(i, j) =
          0.25 * fine.at(fi, fj) +
          0.125 * (fine.at(fi - 1, fj) + fine.at(fi + 1, fj) +
                   fine.at(fi, fj - 1) + fine.at(fi, fj + 1)) +
          0.0625 * (fine.at(fi - 1, fj - 1) + fine.at(fi - 1, fj + 1) +
                    fine.at(fi + 1, fj - 1) + fine.at(fi + 1, fj + 1));
    }
  }
  return coarse;
}

// Bilinear prolongation added into the fine grid.
void prolong_add(const Grid2D& coarse, Grid2D& fine) {
  // Coincident points.
  for (std::size_t i = 1; i <= coarse.nx; ++i) {
    for (std::size_t j = 1; j <= coarse.ny; ++j) {
      fine.at(2 * i, 2 * j) += coarse.at(i, j);
    }
  }
  // Horizontal edge midpoints (odd fine i, even fine j).
  auto cval = [&](std::size_t ci, std::size_t cj) {
    // Halo entries of the coarse grid are zero (Dirichlet).
    return coarse.at(ci, cj);
  };
  for (std::size_t i = 0; i <= coarse.nx; ++i) {
    for (std::size_t j = 1; j <= coarse.ny; ++j) {
      fine.at(2 * i + 1, 2 * j) += 0.5 * (cval(i, j) + cval(i + 1, j));
    }
  }
  for (std::size_t i = 1; i <= coarse.nx; ++i) {
    for (std::size_t j = 0; j <= coarse.ny; ++j) {
      fine.at(2 * i, 2 * j + 1) += 0.5 * (cval(i, j) + cval(i, j + 1));
    }
  }
  // Cell centers (odd, odd): average of the four coarse corners.
  for (std::size_t i = 0; i <= coarse.nx; ++i) {
    for (std::size_t j = 0; j <= coarse.ny; ++j) {
      fine.at(2 * i + 1, 2 * j + 1) +=
          0.25 * (cval(i, j) + cval(i + 1, j) + cval(i, j + 1) +
                  cval(i + 1, j + 1));
    }
  }
}

bool can_coarsen(std::size_t n, std::size_t min_size) {
  return n >= 2 * min_size + 1 && n % 2 == 1;
}

void vcycle(Grid2D& u, const Grid2D& f, double h, std::size_t min_size,
            int pre, int post) {
  smooth(u, f, h, pre);
  if (can_coarsen(u.nx, min_size) && can_coarsen(u.ny, min_size)) {
    const Grid2D r = residual(u, f, h);
    const Grid2D rc = restrict_grid(r);
    Grid2D ec(rc.nx, rc.ny);
    vcycle(ec, rc, 2.0 * h, min_size, pre, post);
    prolong_add(ec, u);
  } else {
    smooth(u, f, h, 40);  // coarse solve by heavy smoothing
  }
  smooth(u, f, h, post);
}

}  // namespace

double mg_residual_norm(const Grid2D& u, const Grid2D& f, double h) {
  const Grid2D r = residual(u, f, h);
  double n2 = 0.0;
  for (std::size_t i = 1; i <= u.nx; ++i) {
    for (std::size_t j = 1; j <= u.ny; ++j) {
      n2 += r.at(i, j) * r.at(i, j);
    }
  }
  return std::sqrt(n2);
}

double mg_vcycle(Grid2D& u, const Grid2D& f, double h, std::size_t min_size,
                 int pre_smooth, int post_smooth) {
  SOC_CHECK(min_size >= 1, "min_size too small");
  SOC_CHECK(u.nx % 2 == 1 && u.ny % 2 == 1,
            "vertex-centered multigrid needs odd grid sizes (2^k - 1)");
  vcycle(u, f, h, min_size, pre_smooth, post_smooth);
  return mg_residual_norm(u, f, h);
}

int mg_levels(std::size_t n, std::size_t min_size) {
  SOC_CHECK(n >= min_size && min_size >= 1, "bad level bounds");
  int levels = 1;
  while (can_coarsen(n, min_size)) {
    n = (n - 1) / 2;
    ++levels;
  }
  return levels;
}

}  // namespace soc::workloads::kernels
