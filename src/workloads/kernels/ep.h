// NPB ep (embarrassingly parallel) kernel: Gaussian pairs via the
// Marsaglia polar method, tallied into annular bins — the benchmark's
// only result is the bin histogram and the sum of the deviates.
#pragma once

#include <array>
#include <cstdint>

namespace soc::workloads::kernels {

struct EpResult {
  double sum_x = 0.0;
  double sum_y = 0.0;
  std::array<std::uint64_t, 10> counts{};  ///< Pairs per annulus.
  std::uint64_t pairs = 0;
};

/// Generates `samples` uniform pairs and tallies accepted Gaussian pairs.
EpResult ep_generate(std::uint64_t samples, std::uint64_t seed);

/// FLOPs per attempted sample (uniforms, radius test, log/sqrt on accept).
double ep_flops_per_sample();

}  // namespace soc::workloads::kernels
