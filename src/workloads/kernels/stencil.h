// Structured-grid kernels: Jacobi/Poisson relaxation, explicit heat
// conduction steps, and a first-order compressible Euler update.  These
// back the jacobi, tealeaf2d/3d and cloverleaf workload models.
#pragma once

#include <cstddef>
#include <vector>

namespace soc::workloads::kernels {

/// Simple row-major 2D grid with a one-cell halo.
struct Grid2D {
  std::size_t nx = 0;
  std::size_t ny = 0;
  std::vector<double> v;  ///< (nx+2) × (ny+2)

  Grid2D() = default;
  Grid2D(std::size_t nx_, std::size_t ny_, double fill = 0.0);
  double& at(std::size_t i, std::size_t j);
  double at(std::size_t i, std::size_t j) const;
};

/// One Jacobi sweep for ∇²u = f on the unit square; returns the max
/// pointwise update (converges to 0).  `out` must match `in`'s shape.
double jacobi_sweep(const Grid2D& in, const Grid2D& f, double h, Grid2D& out);

/// Solves ∇²u = f by Jacobi iteration until the update drops below tol;
/// returns iterations used (capped at max_iterations).
int jacobi_solve(Grid2D& u, const Grid2D& f, double h, double tol,
                 int max_iterations);

/// FLOPs per interior grid point of one Jacobi sweep (5-point stencil).
double jacobi_flops_per_point();
/// DRAM bytes per interior point per sweep (streaming, cached stencil).
double jacobi_bytes_per_point();

/// One explicit conduction step u += dt·∇²u (the operator TeaLeaf applies
/// inside its CG solve).  Returns the L2 norm of the change.
double heat_step(Grid2D& u, double dt, double h);

/// Conserved 1D Euler state vectors (density, momentum, energy) — the
/// hydro core of CloverLeaf reduced to one dimension per sweep.
struct EulerState {
  std::vector<double> rho;
  std::vector<double> mom;
  std::vector<double> ene;
};

/// Deterministic shock-tube initial condition of `cells` cells.
EulerState make_shock_tube(std::size_t cells);

/// One Lax–Friedrichs step with ideal-gas EOS (γ=1.4); returns the new
/// total mass (conserved up to boundary flux).
double euler_step(EulerState& s, double dt_over_dx);

/// Total mass/momentum/energy for conservation checks.
double total_mass(const EulerState& s);
double total_energy(const EulerState& s);

}  // namespace soc::workloads::kernels
