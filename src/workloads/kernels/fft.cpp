#include "workloads/kernels/fft.h"

#include <bit>
#include <cmath>
#include <numbers>

#include "common/error.h"

namespace soc::workloads::kernels {

void fft(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  SOC_CHECK(n >= 2 && std::has_single_bit(n), "fft size must be 2^k >= 2");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * std::numbers::pi /
                         static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (Complex& c : data) c /= static_cast<double>(n);
  }
}

double fft_flops(double n) { return 5.0 * n * std::log2(n); }

}  // namespace soc::workloads::kernels
