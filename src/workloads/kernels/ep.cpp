#include "workloads/kernels/ep.h"

#include <cmath>

#include "common/rng.h"

namespace soc::workloads::kernels {

EpResult ep_generate(std::uint64_t samples, std::uint64_t seed) {
  Rng rng(seed);
  EpResult r;
  for (std::uint64_t i = 0; i < samples; ++i) {
    const double x = 2.0 * rng.next_double() - 1.0;
    const double y = 2.0 * rng.next_double() - 1.0;
    const double t = x * x + y * y;
    if (t > 1.0 || t == 0.0) continue;
    const double f = std::sqrt(-2.0 * std::log(t) / t);
    const double gx = x * f;
    const double gy = y * f;
    r.sum_x += gx;
    r.sum_y += gy;
    const double m = std::max(std::fabs(gx), std::fabs(gy));
    const auto bin = static_cast<std::size_t>(m);
    if (bin < r.counts.size()) ++r.counts[bin];
    ++r.pairs;
  }
  return r;
}

double ep_flops_per_sample() { return 14.0; }

}  // namespace soc::workloads::kernels
