// Dense linear algebra kernels backing the hpl workload model.
//
// A real (small-scale) right-looking LU factorization with partial
// pivoting and triangular solves — the algorithm HPL distributes.  The
// generator's FLOP formulas (2/3·n³ etc.) are validated against these
// kernels by the test suite.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace soc::workloads::kernels {

/// Column-major dense matrix storage for the LU kernels.
struct DenseMatrix {
  std::size_t n = 0;
  std::vector<double> a;  ///< n×n, column-major.

  double& at(std::size_t r, std::size_t c) { return a[c * n + r]; }
  double at(std::size_t r, std::size_t c) const { return a[c * n + r]; }
};

/// Deterministic diagonally-dominant test matrix.
DenseMatrix make_test_matrix(std::size_t n, std::uint64_t seed);

/// In-place LU with partial pivoting; returns the pivot permutation.
/// Throws soc::Error if the matrix is singular.
std::vector<std::size_t> lu_factor(DenseMatrix& m);

/// Solves A x = b given the factors and pivots from lu_factor.
std::vector<double> lu_solve(const DenseMatrix& lu,
                             const std::vector<std::size_t>& pivots,
                             const std::vector<double>& b);

/// ‖A·x − b‖∞ for verification.
double residual_inf(const DenseMatrix& a, const std::vector<double>& x,
                    const std::vector<double>& b);

/// C ← C − A·B (m×k × k×n), the trailing-update GEMM that HPL offloads to
/// the GPU.  Plain triple loop — the simulator, not this kernel, provides
/// performance.
void gemm_subtract(std::size_t m, std::size_t n, std::size_t k,
                   const double* a, std::size_t lda, const double* b,
                   std::size_t ldb, double* c, std::size_t ldc);

/// FLOPs of an n×n LU factorization (the HPL accounting formula).
double lu_flops(double n);

}  // namespace soc::workloads::kernels
