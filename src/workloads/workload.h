// Workload interface and registry.
//
// Every benchmark of Table I (ClusterSoCBench) and the NPB suite is a
// Workload: it owns (a) a microarchitectural profile for its host-side
// code, (b) a generator that lowers the benchmark's computation and
// communication structure into per-rank programs, and for the scientific
// codes (c) a small functional kernel (workloads/kernels/) proving the
// numerics the generator's FLOP formulas describe.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arch/profile.h"
#include "sim/op.h"

namespace soc::workloads {

class OpStream;

/// Parameters threaded into program generation.
struct BuildContext {
  int ranks = 1;
  int nodes = 1;
  /// CUDA memory-management model for GPU workloads (§III-B.5).
  sim::MemModel mem_model = sim::MemModel::kHostDevice;
  /// Fraction of offloadable work executed on the GPU; the remainder runs
  /// on the host core (the Fig 7 work-ratio study).  1.0 = all GPU.
  double gpu_work_fraction = 1.0;
  /// Optional scale on the benchmark's default problem size (1.0 = the
  /// Table I input).  Used by tests to keep runs quick.
  double size_scale = 1.0;
  /// Overlap halo exchanges with interior compute via non-blocking
  /// messaging (jacobi/tealeaf support this; the overlap ablation bench
  /// quantifies the benefit).
  bool overlap_halos = false;
};

/// Rejects malformed build parameters with a SOC_CHECK naming the
/// offending field.  Every generator calls this before lowering.
void validate(const BuildContext& ctx);

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  virtual bool gpu_accelerated() const = 0;

  /// Host-side microarchitectural profile (index 0 is the profile id the
  /// generated CPU ops reference).
  virtual arch::WorkloadProfile cpu_profile() const = 0;

  /// Generates one program per rank.  Compatibility shim: the engine
  /// consumes streams (see stream()); build() remains for callers that
  /// need whole programs up front (trace export, calibration probes).
  virtual std::vector<sim::Program> build(const BuildContext& ctx) const = 0;

  /// The pull-based form every runner consumes.  The default adapter
  /// walks build()'s programs lazily (generation is deferred until the
  /// first pull), and produces the byte-identical committed event stream
  /// and event_checksum as replaying build()'s output directly.
  virtual std::unique_ptr<OpStream> stream(const BuildContext& ctx) const;
};

/// All GPGPU-accelerated workloads of Table I, in paper order:
/// hpl, jacobi, cloverleaf, tealeaf2d, tealeaf3d, alexnet, googlenet.
std::vector<std::unique_ptr<Workload>> cluster_soc_bench();

/// The NPB subset of §III-A: bt, cg, ep, ft, is, lu, mg, sp (class C).
std::vector<std::unique_ptr<Workload>> npb_suite();

/// Registered workload tags, in Table I + NPB order.  This is the
/// registry's authoritative name list: socbench usage, grid enumeration,
/// and make_workload's error message all derive from it.
const std::vector<std::string>& list();

/// Creates one workload by its Table I / NPB tag.  An unknown tag fails a
/// SOC_CHECK whose message names every valid tag.
std::unique_ptr<Workload> make_workload(const std::string& name);

}  // namespace soc::workloads
