// NAS Parallel Benchmarks (class C) workload models: bt, cg, ep, ft, is,
// lu, mg, sp — the CPU-side suite the paper uses for the network study
// (Figs 1–2), the NPB scalability analysis (Fig 6), and the Cavium
// ThunderX comparison (Table VI, Fig 8).
//
// Communication structures follow the published benchmarks: multipartition
// neighbour exchanges (bt/sp), sparse segment exchanges plus dot-product
// allreduces (cg), a single terminal reduction (ep), transpose all-to-alls
// (ft/is), pipelined SSOR wavefronts (lu), and per-level halo exchanges
// with a coarse-grid reduction (mg).  Work volumes strong-scale with the
// rank count from their 32-rank reference calibration.
#pragma once

#include "workloads/workload.h"

namespace soc::workloads {

/// Communication skeleton of an NPB benchmark.
enum class NpbPattern {
  kNeighbors,  ///< bt/sp: pairwise face exchanges.
  kSparse,     ///< cg: log2(P) segment exchanges + 2 allreduces.
  kNone,       ///< ep: terminal reduction only.
  kAllToAll,   ///< ft/is: transpose.
  kPipeline,   ///< lu: rank-ordered wavefront sweeps.
  kMultigrid,  ///< mg: per-level halos, sizes halving.
};

/// Static description of one NPB benchmark at the 32-rank reference.
struct NpbSpec {
  std::string tag;
  int iterations = 100;
  double instructions_per_rank_iter = 1e8;  ///< At 32 ranks.
  double flops_per_instruction = 0.3;
  double dram_bytes_per_instruction = 0.5;
  double imbalance = 0.05;
  NpbPattern pattern = NpbPattern::kNeighbors;
  Bytes comm_unit = 128 * kKB;  ///< Pattern-specific message size at 32 ranks.
};

class NpbWorkload : public Workload {
 public:
  explicit NpbWorkload(NpbSpec spec);

  std::string name() const override { return spec_.tag; }
  bool gpu_accelerated() const override { return false; }
  arch::WorkloadProfile cpu_profile() const override;
  std::vector<sim::Program> build(const BuildContext& ctx) const override;

  const NpbSpec& spec() const { return spec_; }

 private:
  NpbSpec spec_;
};

/// Calibrated class-C specs.
NpbSpec npb_bt_spec();
NpbSpec npb_cg_spec();
NpbSpec npb_ep_spec();
NpbSpec npb_ft_spec();
NpbSpec npb_is_spec();
NpbSpec npb_lu_spec();
NpbSpec npb_mg_spec();
NpbSpec npb_sp_spec();

}  // namespace soc::workloads
