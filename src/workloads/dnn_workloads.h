// AI workloads of Table I: distributed Caffe-style image classification
// with AlexNet and GoogLeNet.
//
// Structure per the paper (§IV-B, Fig 10): images are distributed across
// nodes and classified independently — no inter-node communication.  On
// each node the CPU cores decode JPEGs and feed raw tensors to the GPU,
// which runs the forward pass layer by layer (single precision, batch 1).
// The CPU/GPU *balance* is the whole story: four decode workers share the
// TX1's small GPU, while a GTX 980 host has more GPU than its cores and
// batch-1 kernels can use.
#pragma once

#include "workloads/workload.h"

namespace soc::workloads {

class DnnWorkload : public Workload {
 public:
  enum class Network { kAlexNet, kGoogLeNet };

  DnnWorkload(Network network, int total_images = 4096);

  std::string name() const override {
    return network_ == Network::kAlexNet ? "alexnet" : "googlenet";
  }
  bool gpu_accelerated() const override { return true; }
  arch::WorkloadProfile cpu_profile() const override;
  std::vector<sim::Program> build(const BuildContext& ctx) const override;

  /// Forward-pass FLOPs per image.
  double flops_per_image() const;

 private:
  Network network_;
  int total_images_;
};

}  // namespace soc::workloads
