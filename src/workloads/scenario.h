// Scenario decorators: fault injection, OS noise, and checkpoint/restart
// as composable wrappers over any workloads::OpStream.
//
// Each decorator rewrites or interleaves ops on the pull path, keyed off
// the deterministic simulation time the engine passes with every pull —
// no cost-model access, no randomness outside an explicitly seeded
// per-rank stream.  The damage therefore lands in the committed event
// stream like any other work: the LB/Ser/Trf decomposition (prof) and
// the energy attribution explain it with zero residual.
//
// Three scenario families (ISSUE 8):
//  - deterministic faults: node crash at time t (crash-and-restart — the
//    node's ranks stall for the downtime, then resume), link flap
//    windows (message ops on the affected node are held until the window
//    closes), and straggler ranks (a duration multiplier on
//    compute/kernel/copy ops via Op::time_scale);
//  - OS noise: seeded, per-rank, fixed-interval stalls with optional
//    interval jitter;
//  - checkpoint/restart sized by Daly's higher-order optimal-interval
//    formula from checkpoint write time and MTTI.
//
// This header is workload-layer only: it must not include cluster or
// sweep headers, and the engine seam (workloads/op_stream.h) must not
// include this file (soclint's stream-seam pass pins both directions).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workloads/op_stream.h"

namespace soc::workloads {

/// One deterministic fault.  Which fields matter depends on kind; the
/// parse/validate helpers reject inconsistent combinations.
struct FaultSpec {
  enum class Kind {
    kNodeCrash,  ///< node's ranks stall `downtime_seconds` at `start_seconds`
    kLinkFlap,   ///< node's message ops stall during [start, end)
    kStraggler,  ///< rank's compute/kernel/copy ops stretch by `slowdown`
  };

  Kind kind = Kind::kNodeCrash;
  int node = -1;                 ///< crash/flap target
  int rank = -1;                 ///< straggler target
  double start_seconds = 0.0;    ///< crash time / flap window open
  double end_seconds = 0.0;      ///< flap window close
  double downtime_seconds = 0.0; ///< crash restart delay
  double slowdown = 1.0;         ///< straggler duration multiplier (> 1)

  bool operator==(const FaultSpec&) const = default;
};

const char* fault_kind_name(FaultSpec::Kind kind);

/// Seeded per-rank OS noise: every `interval_seconds` (perturbed by up to
/// ±`jitter` of itself), the rank stalls for `duration_seconds`.
struct NoiseSpec {
  std::uint64_t seed = 1;
  double interval_seconds = 0.0;
  double duration_seconds = 0.0;
  double jitter = 0.0;  ///< fraction of the interval, in [0, 1)

  bool enabled() const { return interval_seconds > 0.0 && duration_seconds > 0.0; }
  bool operator==(const NoiseSpec&) const = default;
};

/// Checkpoint/restart cadence from Daly's optimal interval: the write
/// time is size_bytes / bandwidth, the interval follows from it and the
/// MTTI.  `runtime_seconds` caps the injection window (0 = unlimited).
struct CheckpointSpec {
  double size_bytes = 0.0;
  double bandwidth = 0.0;      ///< checkpoint write bandwidth, bytes/s
  double mtti_seconds = 0.0;   ///< mean time to interrupt
  double runtime_seconds = 0.0;

  bool enabled() const { return size_bytes > 0.0 && bandwidth > 0.0; }
  bool operator==(const CheckpointSpec&) const = default;
};

/// The full scenario attached to a run (value-semantic; serialized into
/// run reports, compared in sweep grids).
struct ScenarioConfig {
  std::vector<FaultSpec> faults;
  NoiseSpec noise;
  CheckpointSpec checkpoint;

  bool enabled() const {
    return !faults.empty() || noise.enabled() || checkpoint.enabled();
  }
  bool operator==(const ScenarioConfig&) const = default;
};

/// Daly's higher-order optimal checkpoint interval (seconds) for write
/// time δ and mean time to interrupt M:
///   δ < 2M:  τ = sqrt(2δM)·[1 + (1/3)·sqrt(δ/(2M)) + (1/9)·(δ/(2M))] − δ
///   else:    τ = M
double daly_optimal_interval(double write_seconds, double mtti_seconds);

/// Validates `config` against the run shape and wraps `inner` in the
/// decorators it calls for (spec order, then noise, then checkpoint).
/// Rank-to-node mapping is block placement: node_of(r) = r / (ranks/nodes).
/// Returns `inner` unchanged when the scenario is empty.
std::unique_ptr<OpStream> apply_scenarios(std::unique_ptr<OpStream> inner,
                                          const ScenarioConfig& config,
                                          int nodes);

/// Parses one fault spec, e.g. "node-crash:node=0,t=5,down=60",
/// "link-flap:node=1,t0=2,t1=4", "straggler:rank=3,slowdown=2.5".
FaultSpec parse_fault_spec(const std::string& spec);

/// Parses "interval=0.01,duration=0.001[,seed=7][,jitter=0.25]".
NoiseSpec parse_noise_spec(const std::string& spec);

/// Parses "daly:size=4e9,bw=2e9,mtti=3600[,runtime=0]".
CheckpointSpec parse_checkpoint_spec(const std::string& spec);

/// Assembles a ScenarioConfig from the socbench flag values: `faults` is
/// a ';'-separated list of fault specs; empty strings mean "absent".
ScenarioConfig parse_scenario(const std::string& faults,
                              const std::string& noise,
                              const std::string& checkpoint);

}  // namespace soc::workloads
