#include "workloads/scientific.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "msg/collectives.h"
#include "msg/program_set.h"
#include "workloads/profiles.h"

namespace soc::workloads {

namespace {

using sim::MemModel;

// FNV-1a for deterministic per-workload jitter streams.
std::uint64_t name_seed(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

// Emits the halo staging copies the host+device model needs; zero-copy
// and unified memory keep the data visible to both sides.
void stage_out(msg::ProgramSet& ps, int rank, Bytes bytes, MemModel mm) {
  if (mm == MemModel::kHostDevice) {
    ps.add(rank, sim::copy_d2h_op(bytes, mm));
  }
}

void stage_in(msg::ProgramSet& ps, int rank, Bytes bytes, MemModel mm) {
  if (mm == MemModel::kHostDevice) {
    ps.add(rank, sim::copy_h2d_op(bytes, mm));
  }
}

// 1D slab halo exchange among consecutive ranks.  Even pairs exchange
// first, then odd pairs, so disjoint pairs proceed in parallel instead of
// serializing down the rank chain.
void halo_exchange_1d(msg::ProgramSet& ps, Bytes face_bytes, MemModel mm) {
  const int p = ps.ranks();
  for (int r = 0; r < p; ++r) {
    stage_out(ps, r, 2 * face_bytes, mm);
  }
  for (int parity = 0; parity < 2; ++parity) {
    for (int r = parity; r + 1 < p; r += 2) {
      ps.exchange(r, r + 1, face_bytes);
    }
  }
  for (int r = 0; r < p; ++r) {
    stage_in(ps, r, 2 * face_bytes, mm);
  }
}

}  // namespace

double imbalance_factor(const std::string& workload, int rank,
                        double amount) {
  SOC_CHECK(amount >= 0.0 && amount < 1.0, "bad imbalance amount");
  if (amount == 0.0) return 1.0;
  Rng rng = Rng(name_seed(workload)).split(static_cast<std::uint64_t>(rank));
  return 1.0 + amount * (2.0 * rng.next_double() - 1.0);
}

// ---------------------------------------------------------------- hpl --

HplWorkload::HplWorkload(std::size_t n, std::size_t nb) : n_(n), nb_(nb) {
  SOC_CHECK(n_ >= 4 * nb_ && nb_ >= 32, "bad hpl geometry");
}

arch::WorkloadProfile HplWorkload::cpu_profile() const {
  return profiles::hpl();
}

double HplWorkload::total_flops() const {
  const double n = static_cast<double>(n_);
  return (2.0 / 3.0) * n * n * n;
}

std::vector<sim::Program> HplWorkload::build(const BuildContext& ctx) const {
  validate(ctx);
  const int nodes = ctx.nodes;
  const int ranks = ctx.ranks;
  const int rpn = ranks / nodes;
  SOC_CHECK(rpn == 1 || rpn == 4,
            "hpl supports 1 rank/node (GPU) or 4 ranks/node (CPU/colocated)");

  const auto n = static_cast<std::size_t>(
      static_cast<double>(n_) * std::cbrt(ctx.size_scale));
  const std::size_t iterations = n / nb_;
  msg::ProgramSet ps(ranks);

  // Work split.  Fig 7 sweeps `gpu_work_fraction`; Table IV adds the
  // colocated mode (one GPU-driving rank + 3 CPU ranks per node).  The
  // colocated split balances the GPU against three A57 cores running
  // NEON DGEMM so neither side idles.
  const bool colocated = rpn == 4 && ctx.gpu_work_fraction > 0.0;
  const double gpu_share = rpn == 1 ? ctx.gpu_work_fraction
                           : colocated ? 0.58 * ctx.gpu_work_fraction
                                       : 0.0;

  // Hierarchical communication: panel traffic moves between node leaders
  // over the network and fans out node-locally (what a sane process grid
  // does); with one rank per node every rank is a leader.
  std::vector<int> leaders;
  for (int r = 0; r < ranks; r += rpn) leaders.push_back(r);

  for (std::size_t k = 0; k < iterations; ++k) {
    const double m = static_cast<double>(n) -
                     static_cast<double>((k + 1) * nb_);
    if (m < static_cast<double>(nb_)) break;
    ps.begin_phase();
    const double nb = static_cast<double>(nb_);
    const int root = static_cast<int>(k % static_cast<std::size_t>(ranks));

    // Distributed panel factorization (CPU): Σ m·nb² flops over ranks.
    const double panel_flops = m * nb * nb / ranks;
    for (int r = 0; r < ranks; ++r) {
      const double jitter = imbalance_factor(name(), r, 0.04);
      ps.add(r, sim::cpu_op(panel_flops * 0.8 * jitter, panel_flops,
                            static_cast<Bytes>(m * nb * 8.0 / ranks),
                            /*profile=*/0));
    }

    // Panel broadcast + U broadcast + pivot-row swaps: the three
    // communication streams of right-looking LU.  A 2D process grid
    // spreads the panel over √P node columns, so per-node traffic shrinks
    // as the cluster grows (this is what lets hpl keep scaling).
    const double grid_factor =
        2.0 / std::sqrt(static_cast<double>(leaders.size()));
    const Bytes panel_bytes =
        static_cast<Bytes>(nb * m * 8.0 * grid_factor);
    const std::size_t root_leader =
        static_cast<std::size_t>(root / rpn) % leaders.size();
    for (int rep = 0; rep < 2; ++rep) {
      msg::broadcast_group(ps, leaders, root_leader, panel_bytes);
      if (rpn > 1) {
        // Node-local fan-out (shared-memory path).
        for (int leader : leaders) {
          for (int local = 1; local < rpn; ++local) {
            ps.send_recv(leader, leader + local, panel_bytes);
          }
        }
      }
    }
    for (std::size_t i = 0; i + 1 < leaders.size(); i += 2) {
      ps.exchange(leaders[i], leaders[i + 1], panel_bytes / 4);
    }

    // Trailing-matrix update: 2·nb·m² flops split GPU/CPU per the ratio.
    const double update_flops = 2.0 * nb * m * m / ranks;
    for (int r = 0; r < ranks; ++r) {
      const double jitter = imbalance_factor(name(), r, 0.04);
      const bool drives_gpu = rpn == 1 || r % rpn == 0;
      double cpu_part = update_flops * (1.0 - gpu_share);
      if (colocated) {
        // The GPU rank's core is reserved for transfers; CPU work goes to
        // the other three ranks.
        cpu_part = drives_gpu ? 0.0
                              : update_flops * (1.0 - gpu_share) * 4.0 / 3.0;
      }
      if (drives_gpu && gpu_share > 0.0) {
        const double gpu_flops = update_flops * gpu_share *
                                 (rpn == 1 ? 1.0 : 4.0) * jitter;
        stage_in(ps, r, panel_bytes, ctx.mem_model);
        ps.add(r, sim::gpu_op(gpu_flops,
                              static_cast<Bytes>(gpu_flops / 2.0),
                              ctx.mem_model, ps.phase(), m * m / ranks));
      }
      if (cpu_part > 0.0) {
        // NEON-blocked DGEMM sustains ~3 DP GFLOP/s per A57 core —
        // comparable to the Maxwell GPU's crippled 1/32-rate DP units,
        // which is exactly why colocation pays on this SoC (Table IV).
        ps.add(r, sim::cpu_op(cpu_part * 0.35 * jitter, cpu_part,
                              static_cast<Bytes>(cpu_part / 4.0),
                              /*profile=*/0));
      }
    }
  }
  return ps.take();
}

// ------------------------------------------------------------- jacobi --

JacobiWorkload::JacobiWorkload(std::size_t grid, int iterations)
    : grid_(grid), iterations_(iterations) {
  SOC_CHECK(grid_ >= 64 && iterations_ >= 1, "bad jacobi geometry");
}

arch::WorkloadProfile JacobiWorkload::cpu_profile() const {
  return profiles::jacobi();
}

std::vector<sim::Program> JacobiWorkload::build(
    const BuildContext& ctx) const {
  validate(ctx);
  SOC_CHECK(ctx.ranks == ctx.nodes, "jacobi runs one rank per node");
  const int p = ctx.ranks;
  const auto g = static_cast<std::size_t>(
      static_cast<double>(grid_) * std::sqrt(ctx.size_scale));
  msg::ProgramSet ps(p);

  const double points = static_cast<double>(g) * static_cast<double>(g) / p;
  const Bytes face = static_cast<Bytes>(g) * 8;
  for (int it = 0; it < iterations_; ++it) {
    if (it % 25 == 0) ps.begin_phase();

    if (ctx.overlap_halos && p > 1) {
      // Post the halo traffic, sweep the interior while it flies, then
      // wait and finish the boundary rows.
      for (int parity = 0; parity < 2; ++parity) {
        for (int r = parity; r + 1 < p; r += 2) {
          ps.exchange_async(r, r + 1, face);
        }
      }
      constexpr double kInterior = 0.96;
      for (int r = 0; r < p; ++r) {
        const double jitter = imbalance_factor(name(), r, 0.03);
        const double flops = 6.0 * points * jitter;
        ps.add(r, sim::gpu_op(flops * kInterior,
                              static_cast<Bytes>(flops * kInterior / 0.25),
                              ctx.mem_model, ps.phase(), points));
        ps.wait_all(r);
        ps.add(r,
               sim::gpu_op(flops * (1.0 - kInterior),
                           static_cast<Bytes>(flops * (1.0 - kInterior) /
                                              0.25),
                           ctx.mem_model, ps.phase(), points * 0.04));
      }
    } else {
      // One sweep on the GPU: 6 flops/point at operational intensity 0.25.
      for (int r = 0; r < p; ++r) {
        const double jitter = imbalance_factor(name(), r, 0.03);
        const double flops = 6.0 * points * jitter;
        ps.add(r, sim::gpu_op(flops, static_cast<Bytes>(flops / 0.25),
                              ctx.mem_model, ps.phase(), points));
      }
      if (p > 1) halo_exchange_1d(ps, face, ctx.mem_model);
    }

    // Convergence check every 10 sweeps: device dot + allreduce.
    if (it % 10 == 9) {
      for (int r = 0; r < p; ++r) {
        ps.add(r, sim::cpu_op(5e5, 1e5, 64 * kKiB, /*profile=*/0));
      }
      if (p > 1) msg::allreduce(ps, 8);
    }
  }
  return ps.take();
}

// --------------------------------------------------------- cloverleaf --

CloverLeafWorkload::CloverLeafWorkload(std::size_t grid, int steps)
    : grid_(grid), steps_(steps) {
  SOC_CHECK(grid_ >= 64 && steps_ >= 1, "bad cloverleaf geometry");
}

arch::WorkloadProfile CloverLeafWorkload::cpu_profile() const {
  return profiles::cloverleaf();
}

std::vector<sim::Program> CloverLeafWorkload::build(
    const BuildContext& ctx) const {
  validate(ctx);
  SOC_CHECK(ctx.ranks == ctx.nodes, "cloverleaf runs one rank per node");
  const int p = ctx.ranks;
  const auto g = static_cast<std::size_t>(
      static_cast<double>(grid_) * std::sqrt(ctx.size_scale));
  msg::ProgramSet ps(p);

  const double points = static_cast<double>(g) * static_cast<double>(g) / p;
  const int kernels_per_step = 8;
  const double flops_per_point = 60.0;
  // Six conserved/auxiliary fields exchange halos every step.
  const Bytes halo = static_cast<Bytes>(g) * 8 * 6;

  for (int step = 0; step < steps_; ++step) {
    if (step % 10 == 0) ps.begin_phase();
    for (int k = 0; k < kernels_per_step; ++k) {
      for (int r = 0; r < p; ++r) {
        const double jitter = imbalance_factor(name(), r * 8 + k, 0.08);
        const double flops =
            points * flops_per_point / kernels_per_step * jitter;
        ps.add(r, sim::gpu_op(flops, static_cast<Bytes>(flops / 0.3),
                              ctx.mem_model, ps.phase(), points));
        // Host control flow between kernels: partially size-dependent
        // (field summaries) plus a fixed driver cost — the serialization
        // term that caps cloverleaf's scalability.
        ps.add(r, sim::cpu_op(3.0e6 + points * 0.15, points * 0.1,
                              static_cast<Bytes>(points), /*profile=*/0));
      }
    }
    if (p > 1) halo_exchange_1d(ps, halo, ctx.mem_model);

    // Two full field snapshots move host<->device per step (viscosity /
    // summary checks in the reference port) — pure host/device sync.
    if (ctx.mem_model == sim::MemModel::kHostDevice) {
      for (int r = 0; r < p; ++r) {
        ps.add(r, sim::copy_d2h_op(static_cast<Bytes>(points * 8.0),
                                   ctx.mem_model));
        ps.add(r, sim::copy_h2d_op(static_cast<Bytes>(points * 8.0),
                                   ctx.mem_model));
      }
    }

    // dt reduction.
    for (int r = 0; r < p; ++r) {
      ps.add(r, sim::cpu_op(4e5, 1e5, 32 * kKiB, /*profile=*/0));
    }
    if (p > 1) msg::allreduce(ps, 8);
  }
  return ps.take();
}

// -------------------------------------------------------------- tealeaf --

TeaLeafWorkload::TeaLeafWorkload(int dims, std::size_t extent, int timesteps,
                                 int cg_iterations)
    : dims_(dims),
      extent_(extent),
      timesteps_(timesteps),
      cg_iterations_(cg_iterations) {
  SOC_CHECK(dims_ == 2 || dims_ == 3, "tealeaf is 2D or 3D");
  SOC_CHECK(extent_ >= 32 && timesteps_ >= 1 && cg_iterations_ >= 1,
            "bad tealeaf geometry");
}

arch::WorkloadProfile TeaLeafWorkload::cpu_profile() const {
  return profiles::tealeaf();
}

std::vector<sim::Program> TeaLeafWorkload::build(
    const BuildContext& ctx) const {
  validate(ctx);
  SOC_CHECK(ctx.ranks == ctx.nodes, "tealeaf runs one rank per node");
  const int p = ctx.ranks;
  const double scale = dims_ == 2 ? std::sqrt(ctx.size_scale)
                                  : std::cbrt(ctx.size_scale);
  const auto e = static_cast<std::size_t>(static_cast<double>(extent_) *
                                          scale);
  msg::ProgramSet ps(p);

  const double points = std::pow(static_cast<double>(e), dims_) / p;
  const Bytes face =
      dims_ == 2 ? static_cast<Bytes>(e) * 8
                 : static_cast<Bytes>(e) * static_cast<Bytes>(e) * 8;
  const double oi = dims_ == 2 ? 0.22 : 0.20;

  for (int step = 0; step < timesteps_; ++step) {
    ps.begin_phase();
    for (int it = 0; it < cg_iterations_; ++it) {
      const bool overlap = ctx.overlap_halos && p > 1;
      if (overlap) {
        for (int parity = 0; parity < 2; ++parity) {
          for (int r = parity; r + 1 < p; r += 2) {
            ps.exchange_async(r, r + 1, face);
          }
        }
      }
      // SpMV + axpys on the GPU: ~16 flops/point (7/5-point operator).
      for (int r = 0; r < p; ++r) {
        const double jitter = imbalance_factor(name(), r, 0.12);
        const double flops = 16.0 * points * jitter;
        ps.add(r, sim::gpu_op(flops, static_cast<Bytes>(flops / oi),
                              ctx.mem_model, ps.phase(), points));
        // The unoptimized CUDA port syncs a large slice of the solution
        // vector between host and device every CG step — the host/device
        // serialization the paper's Ser factor exposes.
        if (ctx.mem_model == sim::MemModel::kHostDevice) {
          ps.add(r, sim::copy_d2h_op(static_cast<Bytes>(points * 4.0),
                                     ctx.mem_model));
        }
        if (overlap) ps.wait_all(r);
      }
      if (!overlap && p > 1) halo_exchange_1d(ps, face, ctx.mem_model);

      // Two dot products per CG iteration — each a cluster allreduce.
      for (int r = 0; r < p; ++r) {
        ps.add(r, sim::cpu_op(3e5, 1e5, 16 * kKiB, /*profile=*/0));
      }
      if (p > 1) {
        msg::allreduce(ps, 8);
        msg::allreduce(ps, 8);
      }
    }
  }
  return ps.take();
}

TeaLeafWorkload tealeaf2d_default() {
  return TeaLeafWorkload(2, 8192, 60, 40);
}

TeaLeafWorkload tealeaf3d_default() {
  return TeaLeafWorkload(3, 400, 60, 40);
}

}  // namespace soc::workloads
