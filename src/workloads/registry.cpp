// The workload registry: a static table of (tag, suite, factory) entries.
// Everything else — the suite builders, list(), make_workload() — derives
// from this one table, so adding a workload is a one-line change and the
// name list can never drift from what make_workload accepts.
#include <algorithm>

#include "common/error.h"
#include "workloads/dnn_workloads.h"
#include "workloads/npb.h"
#include "workloads/scientific.h"
#include "workloads/workload.h"

namespace soc::workloads {

namespace {

enum class Suite { kClusterSoCBench, kNpb };

struct Registration {
  const char* name;
  Suite suite;
  std::unique_ptr<Workload> (*make)();
};

const std::vector<Registration>& registrations() {
  static const std::vector<Registration> kRegistry = {
      {"hpl", Suite::kClusterSoCBench,
       +[]() -> std::unique_ptr<Workload> {
         return std::make_unique<HplWorkload>();
       }},
      {"jacobi", Suite::kClusterSoCBench,
       +[]() -> std::unique_ptr<Workload> {
         return std::make_unique<JacobiWorkload>();
       }},
      {"cloverleaf", Suite::kClusterSoCBench,
       +[]() -> std::unique_ptr<Workload> {
         return std::make_unique<CloverLeafWorkload>();
       }},
      {"tealeaf2d", Suite::kClusterSoCBench,
       +[]() -> std::unique_ptr<Workload> {
         return std::make_unique<TeaLeafWorkload>(tealeaf2d_default());
       }},
      {"tealeaf3d", Suite::kClusterSoCBench,
       +[]() -> std::unique_ptr<Workload> {
         return std::make_unique<TeaLeafWorkload>(tealeaf3d_default());
       }},
      {"alexnet", Suite::kClusterSoCBench,
       +[]() -> std::unique_ptr<Workload> {
         return std::make_unique<DnnWorkload>(DnnWorkload::Network::kAlexNet);
       }},
      {"googlenet", Suite::kClusterSoCBench,
       +[]() -> std::unique_ptr<Workload> {
         return std::make_unique<DnnWorkload>(DnnWorkload::Network::kGoogLeNet);
       }},
      {"bt", Suite::kNpb,
       +[]() -> std::unique_ptr<Workload> {
         return std::make_unique<NpbWorkload>(npb_bt_spec());
       }},
      {"cg", Suite::kNpb,
       +[]() -> std::unique_ptr<Workload> {
         return std::make_unique<NpbWorkload>(npb_cg_spec());
       }},
      {"ep", Suite::kNpb,
       +[]() -> std::unique_ptr<Workload> {
         return std::make_unique<NpbWorkload>(npb_ep_spec());
       }},
      {"ft", Suite::kNpb,
       +[]() -> std::unique_ptr<Workload> {
         return std::make_unique<NpbWorkload>(npb_ft_spec());
       }},
      {"is", Suite::kNpb,
       +[]() -> std::unique_ptr<Workload> {
         return std::make_unique<NpbWorkload>(npb_is_spec());
       }},
      {"lu", Suite::kNpb,
       +[]() -> std::unique_ptr<Workload> {
         return std::make_unique<NpbWorkload>(npb_lu_spec());
       }},
      {"mg", Suite::kNpb,
       +[]() -> std::unique_ptr<Workload> {
         return std::make_unique<NpbWorkload>(npb_mg_spec());
       }},
      {"sp", Suite::kNpb,
       +[]() -> std::unique_ptr<Workload> {
         return std::make_unique<NpbWorkload>(npb_sp_spec());
       }},
  };
  return kRegistry;
}

std::vector<std::unique_ptr<Workload>> make_suite(Suite suite) {
  std::vector<std::unique_ptr<Workload>> out;
  for (const Registration& r : registrations()) {
    if (r.suite == suite) out.push_back(r.make());
  }
  return out;
}

std::string joined_names() {
  std::string out;
  for (const std::string& name : list()) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace

std::vector<std::unique_ptr<Workload>> cluster_soc_bench() {
  return make_suite(Suite::kClusterSoCBench);
}

std::vector<std::unique_ptr<Workload>> npb_suite() {
  return make_suite(Suite::kNpb);
}

const std::vector<std::string>& list() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    names.reserve(registrations().size());
    for (const Registration& r : registrations()) names.emplace_back(r.name);
    return names;
  }();
  return kNames;
}

std::unique_ptr<Workload> make_workload(const std::string& name) {
  for (const Registration& r : registrations()) {
    if (name == r.name) return r.make();
  }
  SOC_CHECK(false,
            "unknown workload '" + name + "' (valid: " + joined_names() + ")");
  return nullptr;
}

}  // namespace soc::workloads
