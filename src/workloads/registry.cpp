#include <algorithm>

#include "common/error.h"
#include "workloads/dnn_workloads.h"
#include "workloads/npb.h"
#include "workloads/scientific.h"
#include "workloads/workload.h"

namespace soc::workloads {

std::vector<std::unique_ptr<Workload>> cluster_soc_bench() {
  std::vector<std::unique_ptr<Workload>> out;
  out.push_back(std::make_unique<HplWorkload>());
  out.push_back(std::make_unique<JacobiWorkload>());
  out.push_back(std::make_unique<CloverLeafWorkload>());
  out.push_back(std::make_unique<TeaLeafWorkload>(tealeaf2d_default()));
  out.push_back(std::make_unique<TeaLeafWorkload>(tealeaf3d_default()));
  out.push_back(std::make_unique<DnnWorkload>(DnnWorkload::Network::kAlexNet));
  out.push_back(
      std::make_unique<DnnWorkload>(DnnWorkload::Network::kGoogLeNet));
  return out;
}

std::vector<std::unique_ptr<Workload>> npb_suite() {
  std::vector<std::unique_ptr<Workload>> out;
  out.push_back(std::make_unique<NpbWorkload>(npb_bt_spec()));
  out.push_back(std::make_unique<NpbWorkload>(npb_cg_spec()));
  out.push_back(std::make_unique<NpbWorkload>(npb_ep_spec()));
  out.push_back(std::make_unique<NpbWorkload>(npb_ft_spec()));
  out.push_back(std::make_unique<NpbWorkload>(npb_is_spec()));
  out.push_back(std::make_unique<NpbWorkload>(npb_lu_spec()));
  out.push_back(std::make_unique<NpbWorkload>(npb_mg_spec()));
  out.push_back(std::make_unique<NpbWorkload>(npb_sp_spec()));
  return out;
}

std::unique_ptr<Workload> make_workload(const std::string& name) {
  for (auto& w : cluster_soc_bench()) {
    if (w->name() == name) return std::move(w);
  }
  for (auto& w : npb_suite()) {
    if (w->name() == name) return std::move(w);
  }
  throw Error("unknown workload: " + name);
}

std::vector<std::string> all_workload_names() {
  std::vector<std::string> names;
  for (const auto& w : cluster_soc_bench()) names.push_back(w->name());
  for (const auto& w : npb_suite()) names.push_back(w->name());
  return names;
}

}  // namespace soc::workloads
