#include "workloads/profiles.h"

namespace soc::workloads::profiles {

namespace {

// Common starting point: FP-heavy structured-grid code.  The access mix
// targets realistic A57 CPIs (1.2–2.5): most references hit the hot set,
// a streaming fraction misses one line in eight, and a small random
// fraction over the working set exercises the L2 (where the per-machine
// capacity differences show up).
arch::WorkloadProfile grid_code(const char* name) {
  arch::WorkloadProfile p;
  p.name = name;
  p.load_fraction = 0.28;
  p.store_fraction = 0.10;
  p.branch_fraction = 0.12;
  p.fp_fraction = 0.30;
  p.working_set = 2 * kMiB;
  p.hot_set = 24 * kKiB;
  p.hot_fraction = 0.72;
  p.stream_fraction = 0.22;
  p.stream_stride = 8;
  p.static_branches = 192;
  p.loop_fraction = 0.84;
  p.loop_bias = 0.97;
  p.pattern_fraction = 0.12;
  p.pattern_period = 8;
  return p;
}

}  // namespace

arch::WorkloadProfile hpl() {
  // Panel factorization + pivot search: tight FP loops, great locality
  // in the blocked panel, very regular branches.
  arch::WorkloadProfile p = grid_code("hpl");
  p.fp_fraction = 0.38;
  p.working_set = 1 * kMiB;
  p.hot_fraction = 0.80;
  p.stream_fraction = 0.15;
  p.loop_fraction = 0.88;
  p.pattern_fraction = 0.06;
  return p;
}

arch::WorkloadProfile jacobi() {
  arch::WorkloadProfile p = grid_code("jacobi");
  p.stream_fraction = 0.30;
  p.hot_fraction = 0.64;
  return p;
}

arch::WorkloadProfile cloverleaf() {
  // Hydro with EOS condition checks: more data-dependent branching.
  arch::WorkloadProfile p = grid_code("cloverleaf");
  p.branch_fraction = 0.15;
  p.loop_fraction = 0.72;
  p.pattern_fraction = 0.18;
  p.pattern_period = 5;
  p.working_set = 3 * kMiB;
  return p;
}

arch::WorkloadProfile tealeaf() {
  arch::WorkloadProfile p = grid_code("tealeaf");
  p.working_set = 4 * kMiB;
  p.stream_fraction = 0.30;
  p.hot_fraction = 0.62;
  return p;
}

arch::WorkloadProfile dnn_decode() {
  // libjpeg-style decode: Huffman bit-twiddling (branchy, unpredictable)
  // plus IDCT arithmetic on small hot blocks.
  arch::WorkloadProfile p;
  p.name = "dnn-decode";
  p.load_fraction = 0.26;
  p.store_fraction = 0.12;
  p.branch_fraction = 0.20;
  p.fp_fraction = 0.18;
  p.working_set = 768 * kKiB;
  p.hot_set = 48 * kKiB;
  p.hot_fraction = 0.76;
  p.stream_fraction = 0.16;
  p.static_branches = 512;
  p.loop_fraction = 0.55;
  p.loop_bias = 0.93;
  p.pattern_fraction = 0.15;
  p.pattern_period = 4;
  return p;
}

arch::WorkloadProfile npb_bt() {
  // Block-tridiagonal solves: FP dense micro-blocks, regular loops,
  // mid-sized working set.
  arch::WorkloadProfile p = grid_code("npb-bt");
  p.fp_fraction = 0.36;
  p.working_set = 800 * kKiB;
  p.hot_fraction = 0.70;
  p.stream_fraction = 0.24;
  p.pattern_fraction = 0.14;
  p.pattern_period = 5;
  return p;
}

arch::WorkloadProfile npb_cg() {
  // Sparse matvec: indirect gathers over a large vector — cache-hostile
  // on every machine, worse where the L2 slice is thinner.
  arch::WorkloadProfile p = grid_code("npb-cg");
  p.load_fraction = 0.36;
  p.store_fraction = 0.06;
  p.branch_fraction = 0.10;
  p.working_set = 10 * kMiB;
  p.hot_fraction = 0.62;
  p.stream_fraction = 0.28;
  return p;
}

arch::WorkloadProfile npb_ep() {
  // Gaussian tallies scattered into large tables: the paper's Fig 8 data
  // shows ep with the highest L2 miss ratio of the suite.
  arch::WorkloadProfile p = grid_code("npb-ep");
  p.load_fraction = 0.30;
  p.working_set = 1536 * kKiB;
  p.hot_fraction = 0.60;
  p.stream_fraction = 0.18;
  p.branch_fraction = 0.14;
  p.loop_fraction = 0.64;
  p.pattern_fraction = 0.30;
  p.pattern_period = 6;
  return p;
}

arch::WorkloadProfile npb_ft() {
  // FFT butterflies: long strided streams, predictable branches.
  arch::WorkloadProfile p = grid_code("npb-ft");
  p.stream_fraction = 0.30;
  p.hot_fraction = 0.66;
  p.working_set = 8 * kMiB;
  p.loop_fraction = 0.86;
  return p;
}

arch::WorkloadProfile npb_is() {
  // Integer bucket sort: almost no FP, random histogram updates.
  arch::WorkloadProfile p = grid_code("npb-is");
  p.fp_fraction = 0.02;
  p.load_fraction = 0.32;
  p.store_fraction = 0.16;
  p.working_set = 6 * kMiB;
  p.hot_fraction = 0.66;
  p.stream_fraction = 0.24;
  p.branch_fraction = 0.16;
  p.pattern_fraction = 0.08;
  return p;
}

arch::WorkloadProfile npb_lu() {
  // SSOR wavefronts: short dependent loops, some pattern branching.
  arch::WorkloadProfile p = grid_code("npb-lu");
  p.working_set = 4 * kMiB;
  p.branch_fraction = 0.14;
  p.hot_fraction = 0.68;
  p.stream_fraction = 0.24;
  p.loop_fraction = 0.90;
  p.pattern_fraction = 0.05;
  return p;
}

arch::WorkloadProfile npb_mg() {
  // Multigrid: level-boundary branches follow short periodic patterns a
  // history predictor learns and a bimodal table cannot — the paper finds
  // mg has the worst branch misprediction and INST_SPEC on the ThunderX.
  arch::WorkloadProfile p = grid_code("npb-mg");
  p.branch_fraction = 0.17;
  p.loop_fraction = 0.44;
  p.pattern_fraction = 0.50;
  p.pattern_period = 7;
  p.working_set = 880 * kKiB;
  p.hot_fraction = 0.62;
  p.stream_fraction = 0.28;
  return p;
}

arch::WorkloadProfile npb_sp() {
  arch::WorkloadProfile p = grid_code("npb-sp");
  p.fp_fraction = 0.34;
  p.working_set = 820 * kKiB;
  p.hot_fraction = 0.66;
  p.stream_fraction = 0.26;
  p.pattern_fraction = 0.15;
  p.pattern_period = 5;
  return p;
}

}  // namespace soc::workloads::profiles
