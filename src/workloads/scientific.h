// ClusterSoCBench scientific workloads (Table I): hpl, jacobi, cloverleaf,
// tealeaf2d, tealeaf3d.
//
// Each generator mirrors the published benchmark's structure — panel
// broadcasts and trailing GEMM updates for hpl, halo exchanges plus
// residual reductions for the stencil codes, CG inner loops with dot-
// product allreduces for tealeaf — with per-node FLOP/DRAM/network volumes
// derived from the algorithm and calibrated to the TX1's measured
// intensities (see DESIGN.md §7 and EXPERIMENTS.md).  One MPI rank drives
// each node's GPU, as in the paper.
#pragma once

#include "workloads/workload.h"

namespace soc::workloads {

/// High-performance Linpack, GPU-accelerated trailing updates.
class HplWorkload : public Workload {
 public:
  /// `n` is the global matrix order; `nb` the panel width.
  explicit HplWorkload(std::size_t n = 28672, std::size_t nb = 512);

  std::string name() const override { return "hpl"; }
  bool gpu_accelerated() const override { return true; }
  arch::WorkloadProfile cpu_profile() const override;
  std::vector<sim::Program> build(const BuildContext& ctx) const override;

  /// Total factorization FLOPs for the configured order.
  double total_flops() const;

 private:
  std::size_t n_;
  std::size_t nb_;
};

/// Jacobi Poisson solver on a square grid, 1D slab decomposition.
class JacobiWorkload : public Workload {
 public:
  explicit JacobiWorkload(std::size_t grid = 16384, int iterations = 1500);

  std::string name() const override { return "jacobi"; }
  bool gpu_accelerated() const override { return true; }
  arch::WorkloadProfile cpu_profile() const override;
  std::vector<sim::Program> build(const BuildContext& ctx) const override;

 private:
  std::size_t grid_;
  int iterations_;
};

/// CloverLeaf: explicit compressible Euler, many kernels per step with
/// host work between them (the Ser-heavy code of Fig 5).
class CloverLeafWorkload : public Workload {
 public:
  explicit CloverLeafWorkload(std::size_t grid = 8192, int steps = 500);

  std::string name() const override { return "cloverleaf"; }
  bool gpu_accelerated() const override { return true; }
  arch::WorkloadProfile cpu_profile() const override;
  std::vector<sim::Program> build(const BuildContext& ctx) const override;

 private:
  std::size_t grid_;
  int steps_;
};

/// TeaLeaf linear heat conduction solved by CG (2D and 3D variants).
class TeaLeafWorkload : public Workload {
 public:
  /// dims = 2 or 3; `extent` is the per-dimension grid size.
  TeaLeafWorkload(int dims, std::size_t extent, int timesteps,
                  int cg_iterations);

  std::string name() const override {
    return dims_ == 2 ? "tealeaf2d" : "tealeaf3d";
  }
  bool gpu_accelerated() const override { return true; }
  arch::WorkloadProfile cpu_profile() const override;
  std::vector<sim::Program> build(const BuildContext& ctx) const override;

 private:
  int dims_;
  std::size_t extent_;
  int timesteps_;
  int cg_iterations_;
};

/// Paper-default TeaLeaf instances.
TeaLeafWorkload tealeaf2d_default();
TeaLeafWorkload tealeaf3d_default();

/// Deterministic per-rank load-imbalance multiplier in
/// [1−amount, 1+amount], keyed by workload name and rank.
double imbalance_factor(const std::string& workload, int rank, double amount);

}  // namespace soc::workloads
