#include "workloads/workload.h"

#include "common/error.h"
#include "workloads/op_stream.h"

namespace soc::workloads {

void validate(const BuildContext& ctx) {
  SOC_CHECK(ctx.ranks > 0, "BuildContext.ranks must be > 0");
  SOC_CHECK(ctx.nodes > 0, "BuildContext.nodes must be > 0");
  SOC_CHECK(ctx.ranks % ctx.nodes == 0,
            "BuildContext.ranks must be a multiple of BuildContext.nodes");
  SOC_CHECK(ctx.gpu_work_fraction >= 0.0 && ctx.gpu_work_fraction <= 1.0,
            "BuildContext.gpu_work_fraction must be within [0, 1]");
  SOC_CHECK(ctx.size_scale > 0.0, "BuildContext.size_scale must be > 0");
}

std::unique_ptr<OpStream> Workload::stream(const BuildContext& ctx) const {
  return std::make_unique<ProgramWalkStream>(*this, ctx);
}

}  // namespace soc::workloads
