// socbench — command-line driver for the soccluster simulator.
//
// Subcommands:
//   socbench list
//       Workloads and machine models available.
//   socbench run --workload jacobi --nodes 16 --nic 10g [--scale 1.0]
//                [--mem-model hd|zc|um] [--gpu-fraction 1.0] [--ranks N]
//                [--metrics] [--chrome-trace t.json] [--report-json r.json]
//                [--fault node-crash:node=0,t=5,down=60]
//                [--noise interval=0.01,duration=0.001]
//                [--checkpoint daly:size=4e9,bw=2e9,mtti=3600]
//       One metered run: runtime, throughput, energy, traffic, roofline.
//       --fault / --noise / --checkpoint wrap the workload's op stream in
//       scenario decorators (run, sweep, explain, and decompose all take
//       them); enabled scenarios are serialized into report JSON.
//       Observability artifacts on demand: --metrics prints the run's
//       metrics registry, --chrome-trace writes a Perfetto-loadable
//       trace, --report-json a canonical machine-readable run report.
//       Engine self-telemetry on demand: --engine-telemetry writes the
//       full soccluster-engine-telemetry/v1 artifact (deterministic
//       counters + per-shard detail + wall-clock timings),
//       --engine-counters just its byte-comparable counter section, and
//       --engine-trace a Chrome trace of the engine's own wall-clock
//       execution (coordinator + worker lanes).  replay takes the same
//       three flags.
//   socbench sweep --workload hpl --nodes 2,4,8,16 --nic both
//                  [--sweep-threads N] [--progress] [--report-json s.json]
//       Cluster-size sweep, one row per (size, NIC).  `--workload all`
//       sweeps every registered workload.  Runs shard across host
//       threads (--sweep-threads or SOC_SWEEP_THREADS; 0 = all cores) —
//       thread count never changes results, only wall-clock.
//       --report-json writes a soccluster-sweep-report/v1 document with
//       a per-run block and the sweep summary; --energy-roofline writes
//       the soccluster-energy-roofline/v1 artifact (achieved GFLOPS/W vs
//       the power-derived ceiling at each run's measured OI/NI).
//   socbench decompose --workload ft --nodes 16
//       The paper's LB/Ser/Trf efficiency decomposition (Eq. 4).
//   socbench explain --workload hpl --nodes 8 [--profile-json cp.json]
//                    [--folded cp.folded] [--energy] [--energy-json e.json]
//                    [--dvfs 0.6,0.8] [--cap-watts 10]
//       Single-pass critical-path profile: one instrumented run yields
//       the bottleneck attribution (which lane/phase/rank the end-to-end
//       time sits on), the LB/Ser/Trf factors, and what-if projections
//       (ideal network / ideal balance / uncontended lanes) without
//       re-running the engine.  --profile-json writes the deterministic
//       soccluster-critical-path/v1 artifact, --folded a
//       flamegraph-compatible folded-stacks file.  --energy prints the
//       zero-residual joule attribution (per phase / per rank / per
//       component), --energy-json the soccluster-energy-attribution/v1
//       artifact; --dvfs and --cap-watts re-time the recorded run under
//       DVFS states and whole-cluster power caps without re-running.
//   socbench frontier --workload jacobi --nodes 8,16
//                     [--gpu-fractions 0.5,0.75,1.0] [--dvfs 0.6,0.8,1.0]
//                     [--report-json f.json]
//       Perf-per-watt frontier: sweeps the CPU/GPU work split x DVFS
//       operating point x node count through the sweep runner and marks
//       each workload's Pareto-optimal points in (runtime, energy).
//       --report-json writes the soccluster-energy-frontier/v1 artifact.
//   socbench trace --workload tealeaf3d --nodes 8 --out run.soctrace
//       Record the generated per-rank programs to a trace file.
//   socbench replay --trace run.soctrace --nodes 8 [--ideal-network]
//       Replay a recorded trace (DIMEMAS-style what-if supported).
//   socbench run --workload jacobi --nodes 16 --audit-determinism
//       Determinism audit: replay the workload --repeats times serially
//       and under parallel_for; all event checksums must be bit-identical.
//       `--workload all` audits every registered workload.
//   socbench perf [--quick] [--reps 5] [--report-json BENCH_engine.json]
//                 [--explain-scaling] [--baseline BENCH_engine.json]
//       Engine-only replay throughput over the fig5/fig6 shapes:
//       events/sec, allocations per event, cost-model cache hit rate, and
//       one stable `checksum config=... events=... value=...` line per
//       case (CI diffs these between -O2 and sanitizer builds).
//       --explain-scaling adds one telemetry-attached repetition per case
//       (outside the timed region) and decomposes each sharded row's
//       serial-vs-sharded core-seconds gap into imbalance / barrier /
//       mailbox+merge / serial-residual terms that sum to the measured
//       gap exactly.  --baseline additionally gates sharded rows'
//       speedup_vs_baseline at --speedup-tolerance.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/perf.h"
#include "cluster/report.h"
#include "common/args.h"
#include "common/error.h"
#include "common/parallel.h"
#include "common/table.h"
#include "core/efficiency.h"
#include "core/extended_roofline.h"
#include "net/network.h"
#include "obs/chrome_trace.h"
#include "obs/engine_telemetry.h"
#include "obs/observers.h"
#include "prof/critical_path.h"
#include "prof/energy.h"
#include "prof/profile.h"
#include "prof/selfprof.h"
#include "sim/memo_cost.h"
#include "sim/telemetry.h"
#include "sweep/frontier.h"
#include "sweep/grid.h"
#include "sweep/sweep.h"
#include "systems/machines.h"
#include "trace/export.h"
#include "trace/timeline.h"
#include "trace/replay.h"
#include "workloads/workload.h"

namespace {

using namespace soc;

net::NicKind parse_nic(const std::string& s) {
  if (s == "1g") return net::NicKind::kGigabit;
  if (s == "10g") return net::NicKind::kTenGigabit;
  throw Error("unknown NIC '" + s + "' (use 1g or 10g)");
}

sim::MemModel parse_mem_model(const std::string& s) {
  if (s == "hd") return sim::MemModel::kHostDevice;
  if (s == "zc") return sim::MemModel::kZeroCopy;
  if (s == "um") return sim::MemModel::kUnified;
  throw Error("unknown memory model '" + s + "' (use hd, zc, or um)");
}

int natural_ranks(const workloads::Workload& w, int nodes) {
  return sweep::natural_ranks(w, nodes);
}

void print_result(const cluster::RunResult& r, const systems::NodeConfig& node,
                  int nodes, bool dp) {
  std::printf("runtime        : %.3f s\n", r.seconds);
  std::printf("throughput     : %.2f GFLOP/s\n", r.gflops);
  std::printf("energy         : %.1f J (avg %.1f W, peak %.1f W)\n",
              r.joules, r.average_watts, r.energy.peak_watts);
  std::printf("efficiency     : %.1f MFLOPS/W\n", r.mflops_per_watt);
  const power::EnergyBreakdown& e = r.energy.breakdown;
  std::printf("energy split   : idle %.0f%%, cpu %.0f%%, gpu %.0f%%, "
              "nic %.0f%%, dram %.0f%%\n", 100.0 * e.idle / r.joules,
              100.0 * e.cpu / r.joules, 100.0 * e.gpu / r.joules,
              100.0 * e.nic / r.joules, 100.0 * e.dram / r.joules);
  std::printf("network traffic: %.3f GB (%.4f GB/s)\n",
              static_cast<double>(r.stats.total_net_bytes) / 1e9,
              r.stats.net_bytes_per_second() / 1e9);
  std::printf("DRAM traffic   : %.1f GB (%.2f GB/s)\n",
              static_cast<double>(r.stats.total_dram_bytes) / 1e9,
              r.stats.dram_bytes_per_second() / 1e9);
  if (node.has_gpu && r.stats.total_gpu_flops > 0.0) {
    core::ExtendedRoofline model;
    model.peak_flops =
        dp ? node.gpu.peak_dp_flops() : node.gpu.peak_sp_flops();
    model.memory_bandwidth = node.dram.gpu_bandwidth;
    model.network_bandwidth = node.nic.effective_bandwidth;
    const auto m = core::measure_roofline(model, r.stats, nodes, "run");
    std::printf("roofline       : OI=%.2f NI=%s -> %.2f of %.2f GFLOP/s/node "
                "(%s-limited)\n",
                m.operational_intensity,
                m.network_intensity >= 1e9
                    ? "local"
                    : TextTable::num(m.network_intensity, 1).c_str(),
                m.achieved_flops / 1e9, m.attainable_flops / 1e9,
                core::limit_name(m.limiting_intensity));
  }
}

int cmd_list() {
  std::printf("workloads:\n");
  for (const std::string& name : workloads::list()) {
    const auto w = workloads::make_workload(name);
    std::printf("  %-11s %s\n", name.c_str(),
                w->gpu_accelerated() ? "(GPU-accelerated)" : "(CPU, NPB)");
  }
  std::printf("\nmachines:\n");
  std::printf("  jetson-tx1   4x Cortex-A57 + 2-SM Maxwell, 4 GB LPDDR4, "
              "1GbE/10GbE\n");
  std::printf("  thunderx     2x48 ARMv8 cores, 2x16 MB L2 (table VI "
              "comparison)\n");
  std::printf("  xeon-gtx980  8-core Xeon + GTX 980 (fig 9 comparison)\n");
  return 0;
}

/// Parallel-engine knobs shared by run and replay: --engine-threads N
/// shards the event queues across N workers (committed stream stays
/// bit-identical to serial); --engine-shards overrides the partition
/// count independently of the worker count.
sim::EngineConfig engine_from(const ArgParser& args) {
  sim::EngineConfig engine;
  if (args.given("--engine-threads")) {
    const int t = args.get_int("--engine-threads");
    SOC_CHECK(t >= 1, "--engine-threads must be >= 1");
    engine.threads = t;
    engine.shards = t;
  }
  if (args.given("--engine-shards")) {
    const int s = args.get_int("--engine-shards");
    SOC_CHECK(s >= 1, "--engine-shards must be >= 1");
    engine.shards = s;
  }
  return engine;
}

cluster::RunOptions options_from(const ArgParser& args) {
  cluster::RunOptions options;
  options.size_scale = args.get_double("--scale");
  options.mem_model = parse_mem_model(args.get("--mem-model"));
  options.gpu_work_fraction = args.get_double("--gpu-fraction");
  options.engine = engine_from(args);
  return options;
}

/// True when any --engine-telemetry / --engine-counters / --engine-trace
/// flag asks for the engine's self-telemetry (run and replay).
bool want_engine_telemetry(const ArgParser& args) {
  return args.given("--engine-telemetry") || args.given("--engine-counters") ||
         args.given("--engine-trace");
}

/// Writes whichever of the three self-telemetry artifacts the flags name.
void write_engine_telemetry(const ArgParser& args,
                            const sim::EngineTelemetry& telemetry) {
  if (args.given("--engine-telemetry")) {
    prof::write_text(args.get("--engine-telemetry"),
                     obs::engine_telemetry_json(telemetry));
    std::printf("wrote engine telemetry to %s\n",
                args.get("--engine-telemetry").c_str());
  }
  if (args.given("--engine-counters")) {
    prof::write_text(args.get("--engine-counters"),
                     obs::engine_counters_json(telemetry));
    std::printf("wrote engine counters to %s\n",
                args.get("--engine-counters").c_str());
  }
  if (args.given("--engine-trace")) {
    prof::write_text(args.get("--engine-trace"),
                     obs::engine_wallclock_trace_json(telemetry));
    std::printf("wrote engine wall-clock trace to %s\n",
                args.get("--engine-trace").c_str());
  }
}

/// Scenario decorators from the --fault / --noise / --checkpoint flags;
/// all-empty flags yield a disabled config (scenario-free run).
workloads::ScenarioConfig scenario_from(const ArgParser& args) {
  return workloads::parse_scenario(args.get("--fault"), args.get("--noise"),
                                   args.get("--checkpoint"));
}

// Audits one workload: the baseline run, --repeats serial replays, and
// --repeats parallel_for replays must all commit the identical event
// stream (RunStats::event_checksum).  Returns true when they do.
bool audit_workload(const std::string& name, const ArgParser& args) {
  const auto workload = workloads::make_workload(name);
  const int nodes = args.get_int("--nodes");
  const int ranks = args.given("--ranks") ? args.get_int("--ranks")
                                          : natural_ranks(*workload, nodes);
  const auto node = systems::jetson_tx1(parse_nic(args.get("--nic")));
  const int repeats = args.get_int("--repeats");
  SOC_CHECK(repeats >= 2, "--repeats must be at least 2");

  // Scenario decorators participate in the audit: fault/noise/checkpoint
  // streams must replay bit-identically like any workload.
  cluster::RunRequest request;
  request.workload = name;
  request.config = cluster::ClusterConfig{node, nodes, ranks};
  request.options = options_from(args);
  request.scenario = scenario_from(args);

  const auto baseline = cluster::run(request);
  bool serial_ok = true;
  for (int i = 1; i < repeats; ++i) {
    const auto r = cluster::run(request);
    serial_ok = serial_ok && r.stats.event_checksum ==
                                 baseline.stats.event_checksum;
  }

  std::vector<std::uint64_t> checksums(static_cast<std::size_t>(repeats), 0);
  parallel_for(checksums.size(), [&](std::size_t i) {
    // Each replica resolves its own workload instance from the registry
    // tag: the audit must hold with zero shared mutable state, exactly
    // like the bench sweeps.
    checksums[i] = cluster::run(request).stats.event_checksum;
  });
  bool parallel_ok = true;
  for (std::uint64_t c : checksums) {
    parallel_ok = parallel_ok && c == baseline.stats.event_checksum;
  }

  std::printf("%-11s checksum=%016llx events=%llu serial[%dx]=%s "
              "parallel[%dx]=%s\n",
              name.c_str(),
              static_cast<unsigned long long>(baseline.stats.event_checksum),
              static_cast<unsigned long long>(baseline.stats.events_committed),
              repeats, serial_ok ? "ok" : "MISMATCH", repeats,
              parallel_ok ? "ok" : "MISMATCH");
  return serial_ok && parallel_ok;
}

int cmd_audit(const ArgParser& args) {
  const std::string tag = args.get("--workload");
  const std::vector<std::string> names =
      tag == "all" ? workloads::list()
                   : std::vector<std::string>{tag};
  bool ok = true;
  for (const std::string& name : names) ok = audit_workload(name, args) && ok;
  if (!ok) {
    std::fprintf(stderr, "socbench: determinism audit FAILED — replays of "
                         "the same configuration diverged\n");
    return 1;
  }
  std::printf("determinism audit passed (%zu workload%s)\n", names.size(),
              names.size() == 1 ? "" : "s");
  return 0;
}

int cmd_run(const ArgParser& args) {
  if (args.get_bool("--audit-determinism")) return cmd_audit(args);
  const auto workload = workloads::make_workload(args.get("--workload"));
  const int nodes = args.get_int("--nodes");
  const int ranks = args.given("--ranks") ? args.get_int("--ranks")
                                          : natural_ranks(*workload, nodes);
  const auto node = systems::jetson_tx1(parse_nic(args.get("--nic")));

  // Observability: attach only what the flags ask for, so the default
  // run keeps the engine's no-observer fast path.
  const bool want_metrics =
      args.get_bool("--metrics") || args.given("--report-json");
  obs::MetricsObserver metrics;
  obs::ChromeTraceRecorder chrome;
  obs::ObserverList observers;
  if (want_metrics) observers.add(&metrics);
  if (args.given("--chrome-trace")) observers.add(&chrome);
  auto options = options_from(args);
  if (!observers.empty()) options.observer = &observers;

  cluster::RunRequest request;
  request.workload = workload->name();
  request.workload_ref = workload.get();
  request.config = cluster::ClusterConfig{node, nodes, ranks};
  request.options = options;
  request.scenario = scenario_from(args);
  sim::EngineTelemetry telemetry;
  if (want_engine_telemetry(args)) request.engine_telemetry = &telemetry;
  const auto result = cluster::run(request);
  std::printf("%s on %d x %s (%s, %d ranks)\n\n", workload->name().c_str(),
              nodes, node.name.c_str(), node.nic.name.c_str(), ranks);
  const bool dp = workload->name() != "alexnet" &&
                  workload->name() != "googlenet";
  print_result(result, node, nodes, dp);
  if (args.get_bool("--timeline")) {
    trace::TimelineOptions t;
    t.cores_per_node = node.cpu_cores;
    std::printf("\n%s", trace::render_timeline(result.stats, t).c_str());
  }
  if (args.get_bool("--metrics")) {
    std::printf("\nmetrics\n-------\n%s",
                metrics.registry().table().c_str());
  }
  if (args.given("--chrome-trace")) {
    chrome.write(args.get("--chrome-trace"));
    std::printf("\nwrote %zu spans to %s\n", chrome.span_count(),
                args.get("--chrome-trace").c_str());
  }
  if (args.given("--report-json")) {
    cluster::write_report(args.get("--report-json"), request.config, options,
                          workload->name(), result, &metrics.registry(),
                          &request.scenario);
    std::printf("wrote run report to %s\n",
                args.get("--report-json").c_str());
  }
  if (request.engine_telemetry != nullptr) {
    write_engine_telemetry(args, telemetry);
  }
  return 0;
}

/// Sweep fan-out: the --sweep-threads flag wins over SOC_SWEEP_THREADS;
/// 0 (the default) means all host cores.
unsigned sweep_threads(const ArgParser& args) {
  if (args.given("--sweep-threads")) {
    const int v = args.get_int("--sweep-threads");
    SOC_CHECK(v >= 0, "--sweep-threads must be >= 0");
    return static_cast<unsigned>(v);
  }
  if (const char* env = std::getenv("SOC_SWEEP_THREADS");
      env != nullptr && *env != '\0') {
    const int v = std::atoi(env);
    SOC_CHECK(v >= 0, "SOC_SWEEP_THREADS must be >= 0");
    return static_cast<unsigned>(v);
  }
  return 0;
}

int cmd_sweep(const ArgParser& args) {
  const std::string tag = args.get("--workload");
  sweep::Grid grid;
  grid.workloads = tag == "all" ? workloads::list()
                                : std::vector<std::string>{tag};
  grid.nodes = parse_int_list(args.get("--nodes"));
  const std::string nic_arg = args.get("--nic");
  if (nic_arg == "both") {
    grid.nics = {net::NicKind::kGigabit, net::NicKind::kTenGigabit};
  } else {
    grid.nics = {parse_nic(nic_arg)};
  }
  grid.base = options_from(args);
  grid.scenario = scenario_from(args);
  const auto requests = grid.requests();

  sweep::SweepOptions sweep_options;
  sweep_options.label = "socbench sweep";
  sweep_options.threads = sweep_threads(args);
  sweep_options.progress = args.get_bool("--progress");
  sweep::SweepRunner runner(sweep_options);
  const auto results = runner.run(requests);

  for (std::size_t w = 0; w < grid.workloads.size(); ++w) {
    TextTable table({"nodes", "NIC", "runtime (s)", "GFLOP/s", "MFLOPS/W",
                     "net GB"});
    for (std::size_t i = 0; i < grid.nodes.size(); ++i) {
      for (std::size_t n = 0; n < grid.nics.size(); ++n) {
        const auto& r = results[grid.index(w, i, n)];
        table.add_row({std::to_string(grid.nodes[i]),
                       systems::jetson_tx1(grid.nics[n]).nic.name,
                       TextTable::num(r.seconds, 2),
                       TextTable::num(r.gflops, 1),
                       TextTable::num(r.mflops_per_watt, 0),
                       TextTable::num(
                           static_cast<double>(r.stats.total_net_bytes) / 1e9,
                           2)});
      }
    }
    std::printf("%s%s\n%s", w > 0 ? "\n" : "", grid.workloads[w].c_str(),
                table.str().c_str());
  }

  if (args.given("--report-json")) {
    const std::string path = args.get("--report-json");
    std::ofstream f(path, std::ios::binary);
    SOC_CHECK(f.good(), "cannot open sweep report for writing: " + path);
    const std::string doc = sweep::sweep_report_json("socbench sweep", requests,
                                                     results, runner.summary());
    f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
    SOC_CHECK(f.good(), "failed writing sweep report: " + path);
    std::printf("\nwrote sweep report to %s\n", path.c_str());
  }

  if (args.given("--energy-roofline")) {
    // Place every run on the GFLOPS/W roofline: achieved efficiency vs
    // the power-derived ceiling at its measured (OI, NI).
    std::vector<core::EnergyRooflineMeasurement> measurements;
    measurements.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const cluster::RunRequest& req = requests[i];
      const bool dp =
          req.workload != "alexnet" && req.workload != "googlenet";
      const core::EnergyRoofline model =
          cluster::energy_roofline_model(req.config.node, dp);
      measurements.push_back(core::measure_energy_roofline(
          model, results[i].stats, results[i].energy, req.config.nodes,
          req.workload));
    }
    const std::string path = args.get("--energy-roofline");
    std::ofstream f(path, std::ios::binary);
    SOC_CHECK(f.good(), "cannot open energy roofline for writing: " + path);
    const std::string doc = cluster::energy_roofline_json(
        "socbench sweep", requests, results, measurements);
    f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
    SOC_CHECK(f.good(), "failed writing energy roofline: " + path);
    std::printf("\nwrote energy roofline to %s\n", path.c_str());
  }
  return 0;
}

int cmd_frontier(const ArgParser& args) {
  const std::string tag = args.get("--workload");
  sweep::FrontierGrid grid;
  grid.workloads = tag == "all" ? workloads::list() : parse_string_list(tag);
  grid.nodes = parse_int_list(args.get("--nodes"));
  grid.gpu_fractions = parse_double_list(args.get("--gpu-fractions"));
  grid.dvfs = parse_double_list(args.get("--dvfs"));
  grid.nic = parse_nic(args.get("--nic"));
  grid.base = options_from(args);
  const auto requests = grid.requests();

  sweep::SweepOptions sweep_options;
  sweep_options.label = "socbench frontier";
  sweep_options.threads = sweep_threads(args);
  sweep_options.progress = args.get_bool("--progress");
  sweep::SweepRunner runner(sweep_options);
  const auto results = runner.run(requests);
  const auto points = sweep::perf_per_watt_frontier(grid, results);

  TextTable table({"workload", "nodes", "gpu frac", "dvfs", "runtime (s)",
                   "energy (kJ)", "MFLOPS/W", "pareto"});
  std::size_t pareto = 0;
  for (const sweep::FrontierPoint& p : points) {
    if (p.pareto) ++pareto;
    table.add_row({p.workload, std::to_string(p.nodes),
                   TextTable::num(p.gpu_fraction, 2),
                   TextTable::num(p.dvfs, 2), TextTable::num(p.seconds, 2),
                   TextTable::num(p.joules / 1e3, 2),
                   TextTable::num(p.mflops_per_watt, 0),
                   p.pareto ? "*" : ""});
  }
  std::printf("perf-per-watt frontier (%zu points, %zu Pareto-optimal)\n\n%s",
              points.size(), pareto, table.str().c_str());

  if (args.given("--report-json")) {
    const std::string path = args.get("--report-json");
    std::ofstream f(path, std::ios::binary);
    SOC_CHECK(f.good(), "cannot open frontier report for writing: " + path);
    const std::string doc =
        sweep::frontier_json("socbench frontier", grid, points);
    f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
    SOC_CHECK(f.good(), "failed writing frontier report: " + path);
    std::printf("\nwrote frontier report to %s\n", path.c_str());
  }
  return 0;
}

int cmd_decompose(const ArgParser& args) {
  const auto workload = workloads::make_workload(args.get("--workload"));
  const int nodes = args.get_int("--nodes");
  const auto node = systems::jetson_tx1(parse_nic(args.get("--nic")));
  cluster::RunRequest request;
  request.workload = workload->name();
  request.workload_ref = workload.get();
  request.config = cluster::ClusterConfig{node, nodes,
                                          natural_ranks(*workload, nodes)};
  request.options = options_from(args);
  request.scenario = scenario_from(args);
  const auto runs = cluster::replay_scenarios(request);
  const auto d = core::decompose(runs);
  std::printf("%s on %d nodes (%s): Eq. 4 decomposition\n\n",
              workload->name().c_str(), nodes, node.nic.name.c_str());
  std::printf("  measured            : %.3f s\n", d.measured_seconds);
  std::printf("  ideal network       : %.3f s (%.2fx)\n",
              d.ideal_network_seconds,
              d.measured_seconds / d.ideal_network_seconds);
  std::printf("  ideal load balance  : %.3f s (%.2fx)\n",
              d.ideal_balance_seconds,
              d.measured_seconds / d.ideal_balance_seconds);
  std::printf("  LB = %.3f, Ser = %.3f, Trf = %.3f  ->  eta = %.3f\n",
              d.load_balance, d.serialization, d.transfer, d.efficiency);
  return 0;
}

int cmd_explain(const ArgParser& args) {
  const auto workload = workloads::make_workload(args.get("--workload"));
  const int nodes = args.get_int("--nodes");
  const int ranks = args.given("--ranks") ? args.get_int("--ranks")
                                          : natural_ranks(*workload, nodes);
  const auto node = systems::jetson_tx1(parse_nic(args.get("--nic")));

  cluster::RunRequest request;
  request.workload = workload->name();
  request.workload_ref = workload.get();
  request.config = cluster::ClusterConfig{node, nodes, ranks};
  request.options = options_from(args);
  request.scenario = scenario_from(args);
  prof::Profile profile;
  request.profile = &profile;
  if (args.given("--profile-json")) {
    request.profile_json_path = args.get("--profile-json");
  }
  if (args.given("--folded")) {
    request.profile_folded_path = args.get("--folded");
  }
  // DVFS / power-cap what-ifs re-time the recorded trace, so keep it.
  prof::RunTrace run_trace;
  const bool want_retime = args.given("--dvfs") || args.given("--cap-watts");
  if (want_retime) request.run_trace = &run_trace;
  const auto result = cluster::run(request);

  std::printf("%s on %d x %s (%s, %d ranks): critical path\n\n",
              workload->name().c_str(), nodes, node.name.c_str(),
              node.nic.name.c_str(), ranks);
  std::printf("runtime        : %.3f s (%llu events, checksum %s)\n",
              result.seconds,
              static_cast<unsigned long long>(result.stats.events_committed),
              cluster::checksum_hex(result.stats.event_checksum).c_str());

  // Where the end-to-end time went: the walked path tiles [0, makespan]
  // exactly, so the shares sum to 100%.
  const prof::CriticalPath& path = profile.attribution.path;
  TextTable table({"category", "lane", "time (s)", "share", "steps"});
  for (std::size_t c = 0; c < prof::kCategoryCount; ++c) {
    const auto category = static_cast<prof::Category>(c);
    const SimTime ns = path.by_category[c];
    if (ns == 0) continue;
    std::size_t steps = 0;
    for (const prof::PathStep& s : path.steps) {
      if (s.category == category) ++steps;
    }
    table.add_row({prof::category_name(category),
                   prof::category_lane(category),
                   TextTable::num(to_seconds(ns), 3),
                   TextTable::num(100.0 * static_cast<double>(ns) /
                                      static_cast<double>(path.total), 1) + "%",
                   std::to_string(steps)});
  }
  std::printf("\n%s", table.str().c_str());

  std::printf("\nefficiency (Eq. 4, single pass): LB = %.3f, Ser = %.3f, "
              "Trf = %.3f  ->  eta = %.3f\n",
              profile.factors.load_balance, profile.factors.serialization,
              profile.factors.transfer, profile.factors.efficiency);

  const auto project = [&](const char* label, SimTime ns) {
    std::printf("  %-22s: %.3f s (%.2fx)\n", label, to_seconds(ns),
                ns > 0 ? static_cast<double>(profile.makespan) /
                             static_cast<double>(ns)
                       : 0.0);
  };
  std::printf("what-if projections (no re-run; measured re-evaluation %s):\n",
              profile.evaluator_exact ? "exact" : "INEXACT");
  project("ideal network", profile.ideal_network);
  project("ideal load balance", profile.ideal_balance);
  project("uncontended lanes", profile.uncontended);

  if (args.get_bool("--energy") || args.given("--energy-json")) {
    SOC_CHECK(profile.has_energy, "profile carries no energy attribution");
    const prof::EnergyAttribution& e = profile.energy;
    std::printf("\nenergy attribution (%.1f J; zero-residual partition of "
                "%lld uJ)\n",
                e.joules, static_cast<long long>(e.total_uj));
    TextTable et({"phase", "end (s)", "J", "idle", "cpu", "gpu", "nic",
                  "dram"});
    for (const prof::PhaseEnergy& p : e.phases) {
      et.add_row({std::to_string(p.phase), TextTable::num(to_seconds(p.end), 3),
                  TextTable::num(static_cast<double>(p.uj) / 1e6, 2),
                  TextTable::num(static_cast<double>(p.idle_uj) / 1e6, 2),
                  TextTable::num(static_cast<double>(p.cpu_uj) / 1e6, 2),
                  TextTable::num(static_cast<double>(p.gpu_uj) / 1e6, 2),
                  TextTable::num(static_cast<double>(p.nic_uj) / 1e6, 2),
                  TextTable::num(static_cast<double>(p.dram_uj) / 1e6, 2)});
    }
    std::printf("\n%s", et.str().c_str());
    std::printf("\nper-rank shares (largest-remainder, sums to total):\n ");
    for (std::size_t r = 0; r < e.rank_uj.size(); ++r) {
      std::printf(" r%zu=%.1fJ", r, static_cast<double>(e.rank_uj[r]) / 1e6);
    }
    std::printf("\n");
    if (args.given("--energy-json")) {
      prof::write_text(args.get("--energy-json"), prof::energy_json(e));
      std::printf("wrote energy attribution to %s\n",
                  args.get("--energy-json").c_str());
    }
  }

  if (want_retime) {
    std::printf("\nenergy what-ifs (re-timed from the trace, no re-run):\n");
    const prof::Retimed base =
        prof::retime(run_trace, prof::WhatIf{}, node.power, node.cpu_cores);
    std::printf("  %-22s: %.3f s, %.1f J (reproduces measured run)\n",
                "baseline", base.seconds, base.joules);
    if (args.given("--dvfs")) {
      for (const double f : parse_double_list(args.get("--dvfs"))) {
        prof::WhatIf s;
        s.dvfs_compute = f;
        // Memory clock follows the same weakly-scaling law the DVFS
        // bench applies to bandwidth (systems::with_dvfs).
        s.dvfs_dram = 0.4 + 0.6 * f;
        const prof::Retimed r =
            prof::retime(run_trace, s, node.power, node.cpu_cores);
        std::printf("  dvfs %.2f              : %.3f s (%.2fx), %.1f J "
                    "(%.2fx), avg %.1f W\n",
                    f, r.seconds, r.seconds / base.seconds, r.joules,
                    r.joules / base.joules, r.average_watts);
      }
    }
    if (args.given("--cap-watts")) {
      for (const double cap : parse_double_list(args.get("--cap-watts"))) {
        prof::WhatIf s;
        s.power_cap_w = cap;
        const prof::Retimed r =
            prof::retime(run_trace, s, node.power, node.cpu_cores);
        std::printf("  cap %-6.1f W          : %.3f s (+%.3f s), %.1f J, "
                    "%zu bins clamped\n",
                    cap, r.seconds, r.seconds - base.seconds, r.joules,
                    r.capped_bins);
      }
    }
  }

  if (!request.profile_json_path.empty()) {
    std::printf("wrote critical-path artifact to %s\n",
                request.profile_json_path.c_str());
  }
  if (!request.profile_folded_path.empty()) {
    std::printf("wrote folded stacks to %s\n",
                request.profile_folded_path.c_str());
  }
  return 0;
}

int cmd_trace(const ArgParser& args) {
  const auto workload = workloads::make_workload(args.get("--workload"));
  const int nodes = args.get_int("--nodes");
  workloads::BuildContext ctx;
  ctx.nodes = nodes;
  ctx.ranks = args.given("--ranks") ? args.get_int("--ranks")
                                    : natural_ranks(*workload, nodes);
  ctx.size_scale = args.get_double("--scale");
  ctx.mem_model = parse_mem_model(args.get("--mem-model"));
  ctx.gpu_work_fraction = args.get_double("--gpu-fraction");
  const auto programs = workload->build(ctx);
  trace::save_trace(args.get("--out"), programs);
  std::size_t ops = 0;
  for (const auto& p : programs) ops += p.size();
  std::printf("wrote %zu ranks / %zu ops to %s\n", programs.size(), ops,
              args.get("--out").c_str());
  return 0;
}

int cmd_replay(const ArgParser& args) {
  const auto programs = trace::load_trace(args.get("--trace"));
  const int nodes = args.get_int("--nodes");
  const int ranks = static_cast<int>(programs.size());
  const auto node = systems::jetson_tx1(parse_nic(args.get("--nic")));
  cluster::ClusterCostModel cost(node, nodes, ranks,
                                 workloads::make_workload("jacobi")
                                     ->cpu_profile());
  sim::Scenario scenario;
  scenario.ideal_network = args.get_bool("--ideal-network");
  sim::EngineConfig engine_config = engine_from(args);
  sim::EngineTelemetry telemetry;
  if (want_engine_telemetry(args)) engine_config.telemetry = &telemetry;
  const sim::MemoCostModel memo(cost, /*thread_safe=*/engine_config.shards > 1);
  sim::Engine engine(sim::Placement::block(ranks, nodes), memo,
                     engine_config, scenario);
  const sim::RunStats stats = engine.run(programs);
  std::printf("replayed %d ranks on %d nodes%s: %.3f s, %.2f GFLOP/s, "
              "%.3f GB over the network\n",
              ranks, nodes, scenario.ideal_network ? " (ideal network)" : "",
              stats.seconds(), stats.flops_per_second() / 1e9,
              static_cast<double>(stats.total_net_bytes) / 1e9);
  if (engine_config.telemetry != nullptr) {
    write_engine_telemetry(args, telemetry);
  }
  return 0;
}

int cmd_perf(const ArgParser& args) {
  const bool quick = args.get_bool("--quick");
  cluster::PerfConfig config;
  config.reps = args.given("--reps") ? args.get_int("--reps")
                                     : (quick ? 2 : 5);
  config.explain_scaling = args.get_bool("--explain-scaling");
  const auto cases = cluster::default_perf_cases(quick);
  const auto report = cluster::measure_engine(cases, config);

  TextTable table({"config", "shards", "events", "events/sec", "speedup",
                   "allocs/event", "memo hit%", "wall s"});
  for (const auto& s : report.samples) {
    const double evals = static_cast<double>(s.memo_hits + s.memo_misses);
    table.add_row(
        {s.name, TextTable::num(s.shards, 0),
         TextTable::num(static_cast<double>(s.events), 0),
         TextTable::eng(s.events_per_second),
         s.baseline.empty() ? "-"
                            : TextTable::num(s.speedup_vs_baseline, 2) + "x",
         TextTable::num(s.allocs_per_event, 4),
         TextTable::num(
             evals > 0.0 ? 100.0 * static_cast<double>(s.memo_hits) / evals
                         : 0.0,
             1),
         TextTable::num(s.wall_seconds, 3)});
  }
  std::printf("%s\n", table.str().c_str());
  // Build-invariant lines (no timing): CI asserts these are identical
  // between an -O2 build and a sanitizer build.
  for (const auto& s : report.samples) {
    std::printf("checksum config=%s events=%llu value=%s\n", s.name.c_str(),
                static_cast<unsigned long long>(s.events),
                cluster::checksum_hex(s.checksum).c_str());
  }
  std::printf("\nTOTAL events/sec = %.4e (events=%.0f wall=%.3fs)%s\n",
              report.events_per_second, report.total_events,
              report.total_wall_seconds,
              report.alloc_counter_live ? "" : " [alloc counter not linked]");
  if (config.explain_scaling) {
    // Where each sharded row's core-seconds went.  The four terms sum to
    // the measured serial-vs-sharded gap exactly (prof::explain_scaling
    // asserts the zero-residual identity), so the shares explain 100% of
    // the scaling loss — or, for a negative gap, the superlinear win.
    TextTable st({"config", "workers", "speedup", "gap (core-ms)",
                  "imbalance", "barrier", "mailbox+merge", "residual"});
    const auto share = [](std::int64_t term, std::int64_t gap) {
      if (gap == 0) return std::string("-");
      if (term == 0) return std::string("0.0%");
      return TextTable::num(100.0 * static_cast<double>(term) /
                                static_cast<double>(gap),
                            1) +
             "%";
    };
    for (const auto& s : report.samples) {
      if (!s.has_scaling) continue;
      const auto& d = s.scaling;
      st.add_row({s.name, TextTable::num(d.workers, 0),
                  TextTable::num(d.speedup, 2) + "x",
                  TextTable::num(static_cast<double>(d.core_gap_ns) / 1e6, 2),
                  share(d.imbalance_ns, d.core_gap_ns),
                  share(d.barrier_ns, d.core_gap_ns),
                  share(d.mailbox_merge_ns, d.core_gap_ns),
                  share(d.serial_residual_ns, d.core_gap_ns)});
    }
    std::printf("\nscaling-loss attribution (zero residual by construction)\n"
                "\n%s",
                st.str().c_str());
  }
  if (args.given("--report-json")) {
    cluster::write_perf_report(args.get("--report-json"), report);
    std::printf("wrote %s\n", args.get("--report-json").c_str());
  }
  // The bench harness convention (bench_common.h): when
  // SOC_BENCH_JSON_DIR names a directory, drop the canonical artifact
  // there too, so CI uploads it without a flag.
  if (const char* dir = std::getenv("SOC_BENCH_JSON_DIR");
      dir != nullptr && *dir != '\0') {
    const std::string path = std::string(dir) + "/BENCH_engine.json";
    cluster::write_perf_report(path, report);
    std::printf("wrote %s\n", path.c_str());
  }
  if (args.given("--baseline")) {
    const double tolerance = args.get_double("--baseline-tolerance");
    const double speedup_tolerance = args.get_double("--speedup-tolerance");
    const auto baseline = cluster::load_perf_baseline(args.get("--baseline"));
    const std::string failures = cluster::diff_perf_baseline(
        report, baseline, tolerance, speedup_tolerance);
    if (!failures.empty()) {
      std::fprintf(stderr, "%s", failures.c_str());
      return 1;
    }
    std::printf("baseline check passed vs %s (tolerance %.2f, speedup "
                "tolerance %.2f)\n",
                args.get("--baseline").c_str(), tolerance, speedup_tolerance);
  }
  return 0;
}

int usage(const ArgParser& args) {
  // The workload line derives from the registry, so usage can never
  // drift from what make_workload accepts.
  std::string tags;
  for (const std::string& name : workloads::list()) {
    if (!tags.empty()) tags += ", ";
    tags += name;
  }
  std::printf(
      "usage: socbench <command> [flags]\n\n"
      "commands:\n"
      "  list       workloads and machine models available\n"
      "  run        one metered run (add --metrics, --chrome-trace,\n"
      "             --report-json for observability artifacts;\n"
      "             --audit-determinism for a replay audit;\n"
      "             --engine-threads N for the sharded parallel engine;\n"
      "             --engine-telemetry/--engine-counters/--engine-trace\n"
      "             for the engine's self-telemetry artifacts)\n"
      "  sweep      cluster-size sweep, one row per (size, NIC); shards\n"
      "             across host threads (--sweep-threads);\n"
      "             --energy-roofline writes the GFLOPS/W artifact\n"
      "  frontier   perf-per-watt Pareto frontier over gpu-fraction x DVFS\n"
      "             x nodes (--gpu-fractions, --dvfs, --report-json)\n"
      "  decompose  LB/Ser/Trf efficiency decomposition (paper Eq. 4)\n"
      "  explain    single-pass critical-path attribution + LB/Ser/Trf +\n"
      "             what-if projections (--profile-json, --folded);\n"
      "             --energy for the joule attribution, --dvfs/--cap-watts\n"
      "             for energy what-ifs re-timed from the trace\n"
      "  trace      record generated per-rank programs to a .soctrace file\n"
      "  replay     replay a recorded trace (what-if scenarios supported)\n"
      "  perf       engine-only replay throughput + BENCH_engine.json\n"
      "             (--quick for the CI smoke subset; --explain-scaling\n"
      "             for the zero-residual scaling-loss attribution)\n"
      "\nscenarios (run/sweep/explain/decompose): --fault injects\n"
      "deterministic node crashes, link flaps, and stragglers; --noise adds\n"
      "seeded per-rank OS jitter; --checkpoint daly:... inserts\n"
      "checkpoint/restart stalls at Daly's optimal interval.  All three\n"
      "compose, stay bit-deterministic, and are attributed with zero\n"
      "residual by 'explain' (category `injected`).\n"
      "\nworkloads: %s\n"
      "\nflags:\n%s", tags.c_str(), args.usage().c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_flag("--workload", "workload tag (see 'socbench list')", "jacobi");
  args.add_flag("--nodes", "cluster size, or CSV list for sweep", "8");
  args.add_flag("--ranks", "override the natural MPI rank count");
  args.add_flag("--nic", "1g, 10g, or both (sweep only)", "10g");
  args.add_flag("--scale", "problem-size multiplier", "1.0");
  args.add_flag("--mem-model", "CUDA memory model: hd, zc, um", "hd");
  args.add_flag("--gpu-fraction", "GPU share of offloadable work", "1.0");
  args.add_flag("--fault",
                "';'-separated fault specs: node-crash:node=N,t=S,down=S | "
                "link-flap:node=N,t0=S,t1=S | straggler:rank=R,slowdown=F");
  args.add_flag("--noise",
                "OS noise: interval=S,duration=S[,seed=N][,jitter=F]");
  args.add_flag("--checkpoint",
                "checkpoint/restart: daly:size=B,bw=B/s,mtti=S[,runtime=S]");
  args.add_flag("--out", "output trace path (trace)", "run.soctrace");
  args.add_flag("--trace", "input trace path (replay)", "run.soctrace");
  args.add_bool("--ideal-network", "replay with zero-cost network");
  args.add_bool("--timeline", "render per-node utilization strips (run)");
  args.add_bool("--audit-determinism",
                "run: verify replays are bit-identical instead of reporting");
  args.add_flag("--repeats", "replays per audit mode (audit-determinism)",
                "4");
  args.add_flag("--engine-threads",
                "run/replay: worker threads for the sharded parallel engine "
                "(committed stream is bit-identical to serial)");
  args.add_flag("--engine-shards",
                "run/replay: event-queue shard count (defaults to "
                "--engine-threads)");
  args.add_flag("--engine-telemetry",
                "run/replay: write the soccluster-engine-telemetry/v1 "
                "self-telemetry artifact here");
  args.add_flag("--engine-counters",
                "run/replay: write just the deterministic counter section "
                "(byte-identical at any shard/thread count) here");
  args.add_flag("--engine-trace",
                "run/replay: write a Chrome trace of the engine's own "
                "wall-clock execution here");
  args.add_flag("--sweep-threads",
                "sweep: host threads to shard runs across (0 = all cores; "
                "overrides SOC_SWEEP_THREADS)");
  args.add_bool("--progress", "sweep: repaint a stderr progress/ETA line");
  args.add_bool("--metrics", "run: print the metrics registry");
  args.add_flag("--chrome-trace",
                "run: write a Chrome trace-event JSON (Perfetto) here");
  args.add_flag("--report-json", "run: write a canonical run report here");
  args.add_flag("--profile-json",
                "explain: write the soccluster-critical-path/v1 artifact here");
  args.add_flag("--folded",
                "explain: write flamegraph-compatible folded stacks here");
  args.add_bool("--energy",
                "explain: print the zero-residual joule attribution");
  args.add_flag("--energy-json",
                "explain: write the soccluster-energy-attribution/v1 "
                "artifact here");
  args.add_flag("--dvfs",
                "explain/frontier: CSV of relative frequencies to re-time "
                "under", "0.6,0.8,1.0");
  args.add_flag("--cap-watts",
                "explain: CSV of whole-cluster power caps to re-time under");
  args.add_flag("--gpu-fractions",
                "frontier: CSV of GPU work fractions to sweep",
                "0.5,0.75,1.0");
  args.add_flag("--energy-roofline",
                "sweep: write the soccluster-energy-roofline/v1 artifact "
                "here");
  args.add_bool("--quick", "perf: smoke subset (serial + sharded pair per "
                           "figure family)");
  args.add_flag("--reps", "perf: timed repetitions per case");
  args.add_flag("--baseline",
                "perf: committed BENCH_engine.json to diff against (exact "
                "events/checksum, tolerant events/s)");
  args.add_flag("--baseline-tolerance",
                "perf: fail if events/s drops below this fraction of the "
                "baseline's", "0.25");
  args.add_flag("--speedup-tolerance",
                "perf: fail if a sharded row's speedup_vs_baseline drops "
                "below this fraction of the baseline's", "0.7");
  args.add_bool("--explain-scaling",
                "perf: attach telemetry (untimed rep) and decompose each "
                "sharded row's scaling loss with zero residual");

  try {
    args.parse(argc, argv);
    if (args.positional().empty()) return usage(args);
    const std::string& command = args.positional().front();
    if (command == "list") return cmd_list();
    if (command == "run") return cmd_run(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "frontier") return cmd_frontier(args);
    if (command == "decompose") return cmd_decompose(args);
    if (command == "explain") return cmd_explain(args);
    if (command == "trace") return cmd_trace(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "perf") return cmd_perf(args);
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return usage(args);
  } catch (const soc::Error& e) {
    std::fprintf(stderr, "socbench: %s\n", e.what());
    return 1;
  }
}
