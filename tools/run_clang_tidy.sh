#!/usr/bin/env sh
# clang-tidy sweep over the first-party sources, using the repo .clang-tidy
# (bugprone-*, concurrency-*, performance-*) and the compile database from
# an existing build tree.
#
#   tools/run_clang_tidy.sh [build-dir] [path-filter]
#
#   build-dir    defaults to build/ (must have been configured with
#                CMAKE_EXPORT_COMPILE_COMMANDS=ON or a generator that
#                emits compile_commands.json, e.g. Ninja)
#   path-filter  optional substring: only .cpp files whose path contains
#                it are checked, e.g. `src/sweep` or `src/prof`
#
# Exit status: 0 clean, 1 findings, 77 when clang-tidy or the compile
# database is missing (the ctest skip convention, same as check_format.sh).
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root" || exit 1

build_dir="${1:-build}"
filter="${2:-src/}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found; skipping" >&2
  exit 77
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: no $build_dir/compile_commands.json; configure with" >&2
  echo "  cmake -B $build_dir -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 77
fi

files=$(find src -name '*.cpp' | grep "$filter" | sort)
if [ -z "$files" ]; then
  echo "run_clang_tidy: no sources match '$filter'" >&2
  exit 1
fi

status=0
# shellcheck disable=SC2086
clang-tidy -p "$build_dir" --quiet $files || status=1
if [ "$status" -eq 0 ]; then
  echo "run_clang_tidy: clean ($(echo "$files" | wc -l | tr -d ' ') files)"
fi
exit $status
