#include "passes.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace soclint {
namespace {

using detail::find_token;
using detail::line_is_preprocessor;
using detail::trim;

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Appends a diagnostic unless the flagged line carries a waiver.
void emit(const SourceFile& file, std::size_t line, const char* rule,
          std::string message, std::vector<Diagnostic>& out) {
  if (file.suppressed(line, rule)) return;
  out.push_back({file.path, line, rule, std::move(message)});
}

/// FNV-1a over `text`, rendered as 16 hex digits (for baseline keys).
std::string fnv1a_hex(const std::string& text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool diag_less(const Diagnostic& a, const Diagnostic& b) {
  if (a.path != b.path) return a.path < b.path;
  if (a.line != b.line) return a.line < b.line;
  if (a.rule != b.rule) return a.rule < b.rule;
  return a.message < b.message;
}

std::string join_path_chain(const std::vector<std::string>& chain) {
  std::string out;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (i) out += " -> ";
    out += chain[i];
  }
  return out;
}

// ---------------------------------------------------------------------------
// Include-graph pass
// ---------------------------------------------------------------------------

struct IncludeEdge {
  std::size_t line = 0;      ///< 1-based line of the #include.
  std::string target;        ///< Path as written, e.g. "sim/engine.h".
  std::string target_module; ///< "" for local headers.
  std::size_t to = kUnresolved;  ///< Index into the file list, if resolved.
  static constexpr std::size_t kUnresolved = static_cast<std::size_t>(-1);
};

/// Quoted includes of one file, in source order.
std::vector<IncludeEdge> parse_includes(const SourceFile& file) {
  std::vector<IncludeEdge> edges;
  for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& code = file.code_lines[i];
    if (!line_is_preprocessor(code)) continue;
    if (code.find("include") == std::string::npos) continue;
    // The scrubber keeps string quotes; include paths live in raw lines.
    const std::string& raw = file.raw_lines[i];
    const auto open = raw.find('"');
    if (open == std::string::npos) continue;
    const auto close = raw.find('"', open + 1);
    if (close == std::string::npos) continue;
    IncludeEdge edge;
    edge.line = i + 1;
    edge.target = raw.substr(open + 1, close - open - 1);
    const auto slash = edge.target.find('/');
    if (slash != std::string::npos) {
      edge.target_module = edge.target.substr(0, slash);
    }
    edges.push_back(std::move(edge));
  }
  return edges;
}

struct IncludeGraph {
  std::vector<std::size_t> src_files;            ///< Indices into `files`.
  std::map<std::string, std::size_t> path_index; ///< "src/..." -> files idx.
  std::map<std::size_t, std::vector<IncludeEdge>> edges;  ///< By files idx.
};

IncludeGraph build_graph(const std::vector<SourceFile>& files) {
  IncludeGraph g;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i].top_dir != "src") continue;
    g.src_files.push_back(i);
    g.path_index[files[i].path] = i;
  }
  for (std::size_t i : g.src_files) {
    std::vector<IncludeEdge> edges = parse_includes(files[i]);
    for (IncludeEdge& e : edges) {
      if (e.target_module.empty()) continue;  // local "foo.h" include
      const auto it = g.path_index.find("src/" + e.target);
      if (it != g.path_index.end()) e.to = it->second;
    }
    g.edges[i] = std::move(edges);
  }
  return g;
}

/// DFS cycle detection.  Emits one `include-cycle` diagnostic per back
/// edge, carrying the full chain, at the file whose include closes it.
void check_cycles(const std::vector<SourceFile>& files, const IncludeGraph& g,
                  std::vector<Diagnostic>& out) {
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::size_t, Color> color;
  for (std::size_t i : g.src_files) color[i] = Color::kWhite;

  struct Frame {
    std::size_t node;
    std::size_t next_edge = 0;
  };
  for (std::size_t start : g.src_files) {
    if (color[start] != Color::kWhite) continue;
    std::vector<Frame> stack{{start}};
    color[start] = Color::kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& edges = g.edges.at(frame.node);
      if (frame.next_edge >= edges.size()) {
        color[frame.node] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const IncludeEdge& edge = edges[frame.next_edge++];
      if (edge.to == IncludeEdge::kUnresolved) continue;
      if (color[edge.to] == Color::kWhite) {
        color[edge.to] = Color::kGray;
        stack.push_back({edge.to});
      } else if (color[edge.to] == Color::kGray) {
        // Reconstruct the cycle from the DFS stack.
        std::vector<std::string> chain;
        std::size_t at = 0;
        while (at < stack.size() && stack[at].node != edge.to) ++at;
        for (std::size_t k = at; k < stack.size(); ++k) {
          chain.push_back(files[stack[k].node].path);
        }
        chain.push_back(files[edge.to].path);
        emit(files[frame.node], edge.line, "include-cycle",
             "#include cycle: " + join_path_chain(chain) +
                 "; the include graph must be a DAG (cycles compile "
                 "silently under #pragma once but make layering and "
                 "rebuild order meaningless)",
             out);
      }
    }
  }
}

/// Direct-edge layering (the old per-line rule, now graph-aware) plus
/// transitive reachability against the DAG closure.
void check_layering(const std::vector<SourceFile>& files,
                    const IncludeGraph& g, std::vector<Diagnostic>& out) {
  for (std::size_t i : g.src_files) {
    const SourceFile& file = files[i];
    const std::string& module = file.module_name;
    if (module.empty()) continue;
    if (allowed_includes().count(module) == 0) {
      emit(file, 1, "layering",
           "src/" + module +
               " is not registered in the soclint module DAG; add it to "
               "allowed_includes() in tools/soclint/passes.cpp (mirroring "
               "src/CMakeLists.txt) so its edges are checked",
           out);
      continue;
    }
    const std::set<std::string>& direct = allowed_includes().at(module);
    for (const IncludeEdge& edge : g.edges.at(i)) {
      if (edge.target_module.empty()) continue;
      if (allowed_includes().count(edge.target_module) == 0) continue;
      if (edge.target_module == module) continue;
      if (direct.count(edge.target_module) == 0) {
        emit(file, edge.line, "layering",
             "src/" + module + " may not include \"" + edge.target +
                 "\": dependency edges flow strictly upward (see "
                 "src/CMakeLists.txt); add the edge there first if intended",
             out);
      }
    }
  }

  // Transitive reachability: BFS the real include graph from every file
  // and require each reached module to be inside the includer's DAG
  // closure.  Length-1 paths are the direct check's job; everything
  // longer names the chain that leaks the forbidden layer in.
  for (std::size_t i : g.src_files) {
    const SourceFile& file = files[i];
    const std::string& module = file.module_name;
    if (module.empty() || allowed_includes().count(module) == 0) continue;
    const std::set<std::string>& closure = module_closure(module);

    std::map<std::size_t, std::size_t> parent;  // reached -> predecessor
    std::vector<std::size_t> queue{i};
    parent[i] = i;
    std::set<std::string> reported;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::size_t node = queue[head];
      for (const IncludeEdge& edge : g.edges.at(node)) {
        if (edge.to == IncludeEdge::kUnresolved || parent.count(edge.to)) {
          continue;
        }
        parent[edge.to] = node;
        queue.push_back(edge.to);
        const std::string& target_module = files[edge.to].module_name;
        if (target_module.empty() || target_module == module) continue;
        if (allowed_includes().count(target_module) == 0) continue;
        if (closure.count(target_module) != 0) continue;
        if (node == i) continue;  // direct edge: reported above
        if (!reported.insert(target_module).second) continue;
        // Walk parents back to the root to print the chain.
        std::vector<std::string> chain{files[edge.to].path};
        for (std::size_t at = node; at != i; at = parent.at(at)) {
          chain.push_back(files[at].path);
        }
        chain.push_back(file.path);
        std::reverse(chain.begin(), chain.end());
        emit(file, 1, "layering",
             "src/" + module + " transitively reaches src/" + target_module +
                 ", which its layer may not see, via: " +
                 join_path_chain(chain) +
                 "; break the chain or move the shared code down the DAG",
             out);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Stream-seam pass
// ---------------------------------------------------------------------------

// Intra-module seam around the operation-stream API (finer-grained than
// the module DAG, which cannot see edges inside src/workloads):
//  - the engine seam (workloads/op_stream.*) must stay generic — no
//    generator backend headers and no scenario decorators, so the engine
//    side of the API never grows backend knowledge;
//  - the scenario decorators (workloads/scenario.*) wrap streams only —
//    no generator backends, and no reaching up into cluster/ or sweep/
//    (also a module-DAG violation, re-asserted here so the seam rule is
//    complete on its own).

constexpr const char* kStreamSeamFiles[] = {
    "src/workloads/op_stream.h", "src/workloads/op_stream.cpp"};

constexpr const char* kScenarioFiles[] = {
    "src/workloads/scenario.h", "src/workloads/scenario.cpp"};

/// Workload generator backends the seam must not depend on.
constexpr const char* kBackendHeaders[] = {
    "workloads/npb.h", "workloads/scientific.h", "workloads/dnn_workloads.h"};

void stream_seam_pass(const std::vector<SourceFile>& files,
                      std::vector<Diagnostic>& out) {
  const auto is_one_of = [](const std::string& path, const auto& list) {
    for (const char* p : list) {
      if (path == p) return true;
    }
    return false;
  };
  for (const SourceFile& file : files) {
    if (file.top_dir != "src") continue;
    const bool seam = is_one_of(file.path, kStreamSeamFiles);
    const bool scenario = is_one_of(file.path, kScenarioFiles);
    if (!seam && !scenario) continue;
    for (const IncludeEdge& edge : parse_includes(file)) {
      if (is_one_of(edge.target, kBackendHeaders)) {
        emit(file, edge.line, "stream-seam",
             file.path + " may not include \"" + edge.target +
                 "\": the op-stream seam stays generic over workloads; "
                 "backends plug in via workloads::OpStream, never the "
                 "other way around",
             out);
      }
      if (seam && edge.target == "workloads/scenario.h") {
        emit(file, edge.line, "stream-seam",
             file.path + " may not include \"workloads/scenario.h\": "
                 "scenario decorators wrap the stream API; the engine seam "
                 "must not know they exist",
             out);
      }
      if (scenario && (edge.target_module == "cluster" ||
                       edge.target_module == "sweep")) {
        emit(file, edge.line, "stream-seam",
             file.path + " may not include \"" + edge.target +
                 "\": scenario decorators are workload-layer stream "
                 "wrappers and must not reach up into the run/sweep layers",
             out);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Shared-mutable-state pass
// ---------------------------------------------------------------------------

/// True if the raw line (or the raw line above) justifies shared state:
/// a non-empty `SOC_SHARED(<guard>)` comment, or a checkable
/// SOC_GUARDED_BY / SOC_PT_GUARDED_BY annotation in the code.
bool shared_state_annotated(const SourceFile& file, std::size_t line_no) {
  const auto has_marker = [](const std::string& text) {
    for (const char* marker :
         {"SOC_SHARED(", "SOC_GUARDED_BY(", "SOC_PT_GUARDED_BY("}) {
      const auto pos = text.find(marker);
      if (pos == std::string::npos) continue;
      const auto open = text.find('(', pos);
      const auto close = text.find(')', open);
      if (close != std::string::npos && close > open + 1) return true;
    }
    return false;
  };
  if (line_no >= 1 && has_marker(file.raw_lines[line_no - 1])) return true;
  if (line_no >= 2 && has_marker(file.raw_lines[line_no - 2])) return true;
  return false;
}

/// Scope kinds the `static` check distinguishes.  kOther covers function
/// bodies, lambdas, and initializer lists, where `static` is local state
/// the determinism rules already police differently.
enum class Scope { kNamespace, kType, kOther };

struct SharedDecl {
  std::size_t line = 0;   ///< 1-based.
  std::string what;       ///< Human label ("std::atomic", "mutable", ...).
  std::string name;       ///< Declared identifier, when recoverable.
  bool is_fp = false;     ///< Declared type mentions float/double.
};

/// Last identifier before the first of ';', '=', '{' in `text` starting
/// at `from` — the declared-variable-name heuristic.
std::string declared_name(const std::string& text, std::size_t from) {
  std::string last;
  std::string current;
  int angle = 0;
  for (std::size_t i = from; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '<') ++angle;
    if (c == '>' && angle > 0) --angle;
    if (ident_char(c)) {
      current += c;
      continue;
    }
    if (!current.empty() && angle == 0) last = current;
    current.clear();
    if (angle == 0 && (c == ';' || c == '=' || c == '{')) break;
  }
  if (!current.empty() && angle == 0) last = current;
  return last;
}

/// Collects every shared-mutable declaration in one src/ file, walking a
/// brace-scope tracker so namespace/class-scope statics are told apart
/// from function-local ones.
std::vector<SharedDecl> find_shared_decls(const SourceFile& file) {
  std::vector<SharedDecl> decls;

  struct TypeToken {
    const char* token;
    const char* label;
  };
  // Declaration pattern required: the token is not a member access
  // (no '.' / '->' before it) and is followed by '<' or an identifier.
  static constexpr TypeToken kPrimitives[] = {
      {"mutex", "std::mutex"},
      {"shared_mutex", "std::shared_mutex"},
      {"recursive_mutex", "std::recursive_mutex"},
      {"timed_mutex", "std::timed_mutex"},
      {"Mutex", "soc::Mutex"},
      {"atomic", "std::atomic"},
      {"atomic_flag", "std::atomic_flag"},
      {"once_flag", "std::once_flag"},
      {"condition_variable", "std::condition_variable"},
  };

  std::vector<Scope> stack;
  std::string stmt;  // code since the last ';', '{', or '}'

  for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    if (line_is_preprocessor(line)) continue;

    const auto add = [&](const char* label, std::size_t col, bool fp_hint) {
      // One diagnostic per line is plenty.
      if (!decls.empty() && decls.back().line == i + 1) return;
      SharedDecl d;
      d.line = i + 1;
      d.what = label;
      d.name = declared_name(line, col);
      d.is_fp = fp_hint || !find_token(line, "double").empty() ||
                !find_token(line, "float").empty();
      decls.push_back(std::move(d));
    };

    // Primitive-type declarations (scope-independent).
    for (const TypeToken& prim : kPrimitives) {
      for (std::size_t col : find_token(line, prim.token)) {
        if (col >= 1 && line[col - 1] == '.') continue;
        if (col >= 2 && line[col - 2] == '-' && line[col - 1] == '>') continue;
        std::size_t j = col + std::string(prim.token).size();
        const bool template_args = j < line.size() && line[j] == '<';
        while (j < line.size() &&
               std::isspace(static_cast<unsigned char>(line[j]))) {
          ++j;
        }
        const bool declares =
            template_args ||
            (j < line.size() && ident_char(line[j]) && line[j] != '<');
        if (declares) add(prim.label, col, false);
      }
    }
    for (std::size_t col : find_token(line, "thread_local")) {
      add("thread_local", col, false);
    }
    for (std::size_t col : find_token(line, "mutable")) {
      add("mutable", col, false);
    }

    // `static` needs the scope tracker: walk the line's characters,
    // updating the brace stack, and evaluate each static token at its
    // actual position.
    const std::vector<std::size_t> statics = find_token(line, "static");
    std::size_t next_static = 0;
    for (std::size_t col = 0; col <= line.size(); ++col) {
      if (next_static < statics.size() && statics[next_static] == col) {
        ++next_static;
        const bool at_shared_scope =
            stack.empty() || stack.back() == Scope::kNamespace ||
            stack.back() == Scope::kType;
        const bool is_const = !find_token(line, "const").empty() ||
                              !find_token(line, "constexpr").empty() ||
                              !find_token(line, "constinit").empty();
        if (at_shared_scope && !is_const) {
          // Variable, not function: the declarator hits ';', '=' or '{'
          // before any '('.  Look across up to three lines for the
          // decision point.
          std::string window = line.substr(col + 6);
          for (std::size_t k = i + 1; k < file.code_lines.size() && k < i + 3;
               ++k) {
            window += ' ';
            window += file.code_lines[k];
          }
          const std::size_t stop = window.find_first_of(";={(");
          if (stop != std::string::npos && window[stop] != '(') {
            add("static non-const", col, false);
          }
        }
      }
      if (col == line.size()) break;
      const char c = line[col];
      if (c == '{') {
        Scope kind = Scope::kOther;
        if (!find_token(stmt, "namespace").empty()) {
          kind = Scope::kNamespace;
        } else if (stmt.find('(') == std::string::npos &&
                   stmt.find('=') == std::string::npos &&
                   (!find_token(stmt, "class").empty() ||
                    !find_token(stmt, "struct").empty() ||
                    !find_token(stmt, "union").empty() ||
                    !find_token(stmt, "enum").empty())) {
          kind = Scope::kType;
        }
        stack.push_back(kind);
        stmt.clear();
      } else if (c == '}') {
        if (!stack.empty()) stack.pop_back();
        stmt.clear();
      } else if (c == ';') {
        stmt.clear();
      } else {
        stmt += c;
      }
    }
  }
  return decls;
}

void shared_state_file(const SourceFile& file, std::vector<Diagnostic>& out) {
  for (const SharedDecl& decl : find_shared_decls(file)) {
    if (shared_state_annotated(file, decl.line)) continue;
    std::string subject = decl.what;
    if (!decl.name.empty()) subject += " '" + decl.name + "'";
    emit(file, decl.line, "shared-mutable-state",
         subject +
             " is shared mutable state with no justification; add "
             "`// SOC_SHARED(<guard>)` naming the discipline that makes it "
             "safe (a mutex, `atomic`, `once`, `join`, `single-thread`) or "
             "a checkable SOC_GUARDED_BY annotation "
             "(src/common/thread_safety.h)",
         out);
  }
}

// ---------------------------------------------------------------------------
// Shard-local-state check (src/sim only)
// ---------------------------------------------------------------------------

/// True if the raw line (or the one above) marks the member as
/// thread-confined shard state (`// SOC_SHARD_LOCAL`, optionally with a
/// parenthesized partition note) or carries a checkable guard annotation.
bool shard_local_annotated(const SourceFile& file, std::size_t line_no) {
  const auto has_marker = [](const std::string& text) {
    if (text.find("SOC_SHARD_LOCAL") != std::string::npos) return true;
    for (const char* marker : {"SOC_GUARDED_BY(", "SOC_PT_GUARDED_BY("}) {
      const auto pos = text.find(marker);
      if (pos == std::string::npos) continue;
      const auto open = text.find('(', pos);
      const auto close = text.find(')', open);
      if (close != std::string::npos && close > open + 1) return true;
    }
    return false;
  };
  if (line_no >= 1 && has_marker(file.raw_lines[line_no - 1])) return true;
  if (line_no >= 2 && has_marker(file.raw_lines[line_no - 2])) return true;
  return false;
}

/// The parallel engine mutates everything declared inside a
/// `struct Shard { ... }` from worker threads with no locks — safe only
/// because each member is touched by exactly one worker.  That
/// confinement claim must be visible and reviewable: every data member
/// of a Shard type in src/sim carries `// SOC_SHARD_LOCAL` (or a real
/// SOC_GUARDED_BY when it genuinely is cross-thread).  The telemetry
/// counters (struct ShardCounters, sim/telemetry.h) live under the same
/// contract — workers bump them lock-free during a window — so the rule
/// covers both type names.
void shard_local_file(const SourceFile& file, std::vector<Diagnostic>& out) {
  int depth = 0;         // brace depth across the file
  int shard_depth = -1;  // body depth of the open Shard struct, -1 = none
  for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    if (line_is_preprocessor(line)) continue;
    const bool opens_shard = (!find_token(line, "Shard").empty() ||
                              !find_token(line, "ShardCounters").empty()) &&
                             (!find_token(line, "struct").empty() ||
                              !find_token(line, "class").empty());
    if (shard_depth >= 0 && depth == shard_depth) {
      // Data-member line: ends a declaration, no parentheses (member
      // functions and constructors carry their own thread contracts),
      // and type aliases hold no state.
      const std::string text = trim(line);
      if (!text.empty() && text.front() != '}' && text.back() == ';' &&
          text.find('(') == std::string::npos &&
          find_token(text, "using").empty() &&
          !shard_local_annotated(file, i + 1)) {
        emit(file, i + 1, "shard-local-state",
             "Shard member '" + declared_name(text, 0) +
                 "' is mutated from engine worker threads; mark its "
                 "confinement with `// SOC_SHARD_LOCAL` or guard it with "
                 "SOC_GUARDED_BY (src/common/thread_safety.h)",
             out);
      }
    }
    for (char c : line) {
      if (c == '{') {
        ++depth;
        if (opens_shard && shard_depth < 0) shard_depth = depth;
      } else if (c == '}') {
        if (shard_depth >= 0 && depth == shard_depth) shard_depth = -1;
        --depth;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism pass
// ---------------------------------------------------------------------------

constexpr const char* kUnorderedTokens[] = {
    "unordered_map", "unordered_multimap", "unordered_set",
    "unordered_multiset"};

constexpr const char* kStdEngines[] = {
    "mt19937",      "mt19937_64",   "minstd_rand",
    "minstd_rand0", "ranlux24",     "ranlux48",
    "knuth_b",      "default_random_engine"};

/// Files allowed to accumulate floating point into shared state: the
/// blessed reduction site (parallel_for's post-join, input-order
/// re-summation pattern lives next to it).
bool blessed_reduction_file(const std::string& path) {
  return path == "src/common/parallel.h" || path == "src/common/parallel.cpp";
}

/// Identifier ending the range expression of a range-for on this line
/// ("for (auto& x : expr)"), or "" if the line has none.
std::string range_for_target(const std::string& line) {
  for (std::size_t col : find_token(line, "for")) {
    std::size_t open = col + 3;
    while (open < line.size() &&
           std::isspace(static_cast<unsigned char>(line[open]))) {
      ++open;
    }
    if (open >= line.size() || line[open] != '(') continue;
    int depth = 0;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t j = open; j < line.size(); ++j) {
      const char c = line[j];
      if (c == '(') ++depth;
      if (c == ')') {
        --depth;
        if (depth == 0) {
          close = j;
          break;
        }
      }
      if (c == ':' && depth == 1 && colon == std::string::npos) {
        const bool scope_op = (j + 1 < line.size() && line[j + 1] == ':') ||
                              (j >= 1 && line[j - 1] == ':');
        if (!scope_op) colon = j;
      }
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    const std::string expr =
        trim(line.substr(colon + 1, close - colon - 1));
    // Last identifier of the expression: handles x, obj.member, p->member.
    std::string last;
    std::string current;
    for (char c : expr) {
      if (ident_char(c)) {
        current += c;
      } else {
        if (!current.empty()) last = current;
        current.clear();
      }
    }
    if (!current.empty()) last = current;
    if (!last.empty()) return last;
  }
  return {};
}

void determinism_file(const SourceFile& file,
                      const std::set<std::string>& shared_fp_names,
                      std::vector<Diagnostic>& out) {
  // Identifiers declared as unordered containers in this file.
  std::set<std::string> unordered_names;
  for (const std::string& line : file.code_lines) {
    for (const char* token : kUnorderedTokens) {
      for (std::size_t col : find_token(line, token)) {
        const std::string name = declared_name(line, col);
        if (!name.empty()) unordered_names.insert(name);
      }
    }
  }

  for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];

    // Range-for over an unordered container: the iteration order is
    // unspecified, so anything it feeds can differ between runs.
    const std::string target = range_for_target(line);
    if (!target.empty() && unordered_names.count(target) != 0) {
      emit(file, i + 1, "unordered-range-for",
           "range-for over unordered container '" + target +
               "': hash iteration order is unspecified, so any state or "
               "artifact this loop feeds can reorder between runs; iterate "
               "a sorted view or use soc::flat_map",
           out);
    }

    // Unseeded std <random> engine construction.
    for (const char* engine : kStdEngines) {
      for (std::size_t col : find_token(line, engine)) {
        std::size_t j = col + std::string(engine).size();
        while (j < line.size() &&
               std::isspace(static_cast<unsigned char>(line[j]))) {
          ++j;
        }
        bool unseeded = false;
        if (j < line.size() && ident_char(line[j])) {
          // Declaration: `std::mt19937 rng;` / `rng{}` / `rng{seed}`.
          while (j < line.size() && ident_char(line[j])) ++j;
          while (j < line.size() &&
                 std::isspace(static_cast<unsigned char>(line[j]))) {
            ++j;
          }
          if (j >= line.size() || line[j] == ';') {
            unseeded = true;
          } else if (line[j] == '{' || line[j] == '(') {
            const char closer = line[j] == '{' ? '}' : ')';
            std::size_t k = j + 1;
            while (k < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[k]))) {
              ++k;
            }
            unseeded = k < line.size() && line[k] == closer;
          }
        } else if (j < line.size() && (line[j] == '(' || line[j] == '{')) {
          // Temporary: `std::mt19937()` / `std::mt19937{}`.
          const char closer = line[j] == '{' ? '}' : ')';
          std::size_t k = j + 1;
          while (k < line.size() &&
                 std::isspace(static_cast<unsigned char>(line[k]))) {
            ++k;
          }
          unseeded = k < line.size() && line[k] == closer;
        }
        if (unseeded) {
          emit(file, i + 1, "unseeded-rng",
               std::string(engine) +
                   " constructed without a seed draws an implementation-"
                   "defined default; route randomness through soc::Rng "
                   "with an explicit seed",
               out);
        }
      }
    }

    // Build timestamps bake wall-clock into artifacts and binaries.
    for (const char* macro : {"__DATE__", "__TIME__", "__TIMESTAMP__"}) {
      if (!find_token(line, macro).empty()) {
        emit(file, i + 1, "build-timestamp",
             std::string(macro) +
                 " bakes the build's wall clock into the binary, so two "
                 "builds of the same source differ; derive versions from "
                 "source-controlled data instead",
             out);
      }
    }

    // FP accumulation into shared state: order-dependent rounding makes
    // totals depend on thread interleaving.
    if (!blessed_reduction_file(file.path)) {
      for (const std::string& name : shared_fp_names) {
        for (std::size_t col : find_token(line, name)) {
          std::size_t j = col + name.size();
          while (j < line.size() &&
                 std::isspace(static_cast<unsigned char>(line[j]))) {
            ++j;
          }
          if (j + 1 < line.size() && (line[j] == '+' || line[j] == '-') &&
              line[j + 1] == '=') {
            emit(file, i + 1, "shared-fp-accumulation",
                 "floating-point accumulation into shared '" + name +
                     "': FP addition is not associative, so the total "
                     "depends on arrival order; accumulate per shard and "
                     "re-sum in input order after the join (the pattern "
                     "blessed in src/common/parallel.h and "
                     "src/sweep/sweep.cpp)",
                 out);
          }
        }
      }
    }

    // std::atomic<FP> is the same hazard in one token.
    for (std::size_t col : find_token(line, "atomic")) {
      std::size_t j = col + 6;
      if (j < line.size() && line[j] == '<') {
        const auto close = line.find('>', j);
        const std::string inner =
            close == std::string::npos ? line.substr(j + 1)
                                       : line.substr(j + 1, close - j - 1);
        if (!find_token(inner, "double").empty() ||
            !find_token(inner, "float").empty()) {
          emit(file, i + 1, "shared-fp-accumulation",
               "std::atomic over floating point invites order-dependent "
               "reductions (FP addition is not associative); accumulate "
               "per shard and re-sum in input order after the join",
               out);
        }
      }
    }
  }
}

/// Names of SOC_SHARED / SOC_GUARDED_BY declarations with floating-point
/// type, across every src/ file — the cross-file watch list for
/// shared-fp-accumulation.
std::set<std::string> collect_shared_fp_names(
    const std::vector<SourceFile>& files) {
  std::set<std::string> names;
  for (const SourceFile& file : files) {
    if (file.top_dir != "src") continue;
    for (const SharedDecl& decl : find_shared_decls(file)) {
      if (decl.is_fp && !decl.name.empty()) names.insert(decl.name);
    }
    // Guarded members are not SharedDecls (the annotation is their
    // justification) but still join the FP watch list.
    for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
      const std::string& line = file.code_lines[i];
      const auto annot = line.find("SOC_GUARDED_BY(");
      if (annot == std::string::npos) continue;
      // The declared name sits before the annotation; scanning past it
      // would pick up the guard's name instead.
      const std::string decl = line.substr(0, annot);
      if (find_token(decl, "double").empty() &&
          find_token(decl, "float").empty()) {
        continue;
      }
      const std::string name = declared_name(decl, 0);
      if (!name.empty()) names.insert(name);
    }
  }
  return names;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public pass entry points
// ---------------------------------------------------------------------------

const std::map<std::string, std::set<std::string>>& allowed_includes() {
  // Mirrors the dependency comment in src/CMakeLists.txt and the DEPS
  // lists of each module.  A module may always include itself.
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"common", {}},
      {"stats", {"common"}},
      {"sim", {"common"}},
      {"obs", {"common", "sim"}},
      // prof (critical-path profiler) sits just above sim/obs/power —
      // power for the energy attribution; only cluster, sweep, bench,
      // and tools may depend on it.
      {"prof", {"common", "sim", "obs", "power"}},
      {"arch", {"common"}},
      {"mem", {"common"}},
      {"net", {"common", "sim"}},
      {"gpu", {"common", "arch", "sim"}},
      {"msg", {"common", "sim"}},
      {"power", {"common", "sim"}},
      {"trace", {"common", "sim"}},
      // core -> power: the energy-extended roofline prices its ceilings
      // with the same component power model the meter integrates.
      {"core", {"common", "stats", "sim", "arch", "trace", "power"}},
      {"systems", {"common", "arch", "gpu", "mem", "net", "power"}},
      {"workloads", {"common", "sim", "msg", "arch"}},
      {"cluster",
       {"common", "stats", "sim", "obs", "prof", "arch", "mem", "net", "gpu",
        "msg", "power", "trace", "core", "systems", "workloads"}},
      // sweep sits above cluster; only bench/ and tools/ sit above sweep,
      // so no src/ module lists it as an allowed include.
      {"sweep",
       {"common", "stats", "sim", "obs", "prof", "arch", "net", "trace",
        "systems", "workloads", "cluster"}},
  };
  return kAllowed;
}

const std::set<std::string>& module_closure(const std::string& module) {
  static const std::map<std::string, std::set<std::string>> kClosure = [] {
    std::map<std::string, std::set<std::string>> closure;
    for (const auto& [name, direct] : allowed_includes()) {
      std::set<std::string>& reach = closure[name];
      std::vector<std::string> queue(direct.begin(), direct.end());
      reach.insert(direct.begin(), direct.end());
      while (!queue.empty()) {
        const std::string at = queue.back();
        queue.pop_back();
        const auto it = allowed_includes().find(at);
        if (it == allowed_includes().end()) continue;
        for (const std::string& next : it->second) {
          if (reach.insert(next).second) queue.push_back(next);
        }
      }
    }
    return closure;
  }();
  static const std::set<std::string> kEmpty;
  const auto it = kClosure.find(module);
  return it == kClosure.end() ? kEmpty : it->second;
}

void include_graph_pass(const std::vector<SourceFile>& files,
                        std::vector<Diagnostic>& out) {
  const IncludeGraph g = build_graph(files);
  check_cycles(files, g, out);
  check_layering(files, g, out);
}

void shared_state_pass(const std::vector<SourceFile>& files,
                       std::vector<Diagnostic>& out) {
  for (const SourceFile& file : files) {
    if (file.top_dir != "src") continue;
    shared_state_file(file, out);
    if (file.path.rfind("src/sim/", 0) == 0) shard_local_file(file, out);
  }
}

void determinism_pass(const std::vector<SourceFile>& files,
                      std::vector<Diagnostic>& out) {
  const std::set<std::string> shared_fp = collect_shared_fp_names(files);
  for (const SourceFile& file : files) {
    if (file.top_dir != "src") continue;
    determinism_file(file, shared_fp, out);
  }
}

void run_passes(const std::vector<SourceFile>& files,
                std::vector<Diagnostic>& out) {
  std::vector<Diagnostic> found;
  include_graph_pass(files, found);
  stream_seam_pass(files, found);
  shared_state_pass(files, found);
  determinism_pass(files, found);
  std::sort(found.begin(), found.end(), diag_less);
  out.insert(out.end(), std::make_move_iterator(found.begin()),
             std::make_move_iterator(found.end()));
}

const std::vector<PassRule>& pass_rules() {
  static const std::vector<PassRule> kRules = {
      {"include-cycle", "the src/ #include graph must be acyclic"},
      {"layering",
       "#include edges (direct and transitive) must follow the src/ "
       "module DAG"},
      {"stream-seam",
       "the op-stream seam (workloads/op_stream.*) must not include "
       "workload backends or scenario decorators; scenario decorators "
       "must not include backends, cluster, or sweep"},
      {"shared-mutable-state",
       "sync primitives and shared-mutable declarations need "
       "SOC_SHARED(<guard>) or SOC_GUARDED_BY"},
      {"shard-local-state",
       "data members of the engine's Shard and ShardCounters structs "
       "(src/sim) must declare their thread confinement with "
       "// SOC_SHARD_LOCAL or carry SOC_GUARDED_BY"},
      {"unordered-range-for",
       "no range-for over unordered containers anywhere in src/"},
      {"unseeded-rng", "std <random> engines must be explicitly seeded"},
      {"build-timestamp", "no __DATE__/__TIME__/__TIMESTAMP__"},
      {"shared-fp-accumulation",
       "no FP accumulation into shared state outside the blessed "
       "reduction sites"},
  };
  return kRules;
}

// ---------------------------------------------------------------------------
// Baseline + report
// ---------------------------------------------------------------------------

std::vector<std::string> diagnostic_keys(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> keys;
  keys.reserve(diags.size());
  std::map<std::string, std::size_t> seen;
  for (const Diagnostic& d : diags) {
    std::string key = d.path + "#" + d.rule + "#" + fnv1a_hex(d.message);
    const std::size_t n = seen[key]++;
    key += "#" + std::to_string(n);
    keys.push_back(std::move(key));
  }
  return keys;
}

bool parse_baseline(const std::string& text, std::set<std::string>& keys) {
  keys.clear();
  if (text.find("\"soclint-baseline/v1\"") == std::string::npos) return false;
  const auto anchor = text.find("\"violations\"");
  if (anchor == std::string::npos) return false;
  const auto open = text.find('[', anchor);
  if (open == std::string::npos) return false;
  const auto close = text.find(']', open);
  if (close == std::string::npos) return false;
  std::string::size_type pos = open;
  while (pos < close) {
    const auto q1 = text.find('"', pos);
    if (q1 == std::string::npos || q1 > close) break;
    const auto q2 = text.find('"', q1 + 1);
    if (q2 == std::string::npos || q2 > close) return false;
    keys.insert(text.substr(q1 + 1, q2 - q1 - 1));
    pos = q2 + 1;
  }
  return true;
}

std::string baseline_json(const std::vector<Diagnostic>& diags) {
  const std::vector<std::string> keys = diagnostic_keys(diags);
  std::vector<std::string> sorted(keys);
  std::sort(sorted.begin(), sorted.end());
  std::ostringstream out;
  out << "{\n  \"schema\": \"soclint-baseline/v1\",\n  \"violations\": [";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    out << (i ? ",\n    " : "\n    ") << '"' << json_escape(sorted[i]) << '"';
  }
  out << (sorted.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

std::string report_json(const std::vector<Diagnostic>& diags,
                        std::size_t files_scanned,
                        const std::set<std::string>& baseline) {
  const std::vector<std::string> keys = diagnostic_keys(diags);
  std::size_t baselined = 0;
  for (const std::string& key : keys) {
    if (baseline.count(key) != 0) ++baselined;
  }
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"soclint-report/v1\",\n";
  out << "  \"files_scanned\": " << files_scanned << ",\n";
  out << "  \"total\": " << diags.size() << ",\n";
  out << "  \"new\": " << (diags.size() - baselined) << ",\n";
  out << "  \"baselined\": " << baselined << ",\n";
  out << "  \"violations\": [";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out << (i ? ",\n" : "\n");
    out << "    {\"key\": \"" << json_escape(keys[i]) << "\", \"path\": \""
        << json_escape(d.path) << "\", \"line\": " << d.line
        << ", \"rule\": \"" << json_escape(d.rule) << "\", \"baselined\": "
        << (baseline.count(keys[i]) != 0 ? "true" : "false")
        << ", \"message\": \"" << json_escape(d.message) << "\"}";
  }
  out << (diags.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

std::size_t new_violation_count(const std::vector<Diagnostic>& diags,
                                const std::set<std::string>& baseline) {
  const std::vector<std::string> keys = diagnostic_keys(diags);
  std::size_t fresh = 0;
  for (const std::string& key : keys) {
    if (baseline.count(key) == 0) ++fresh;
  }
  return fresh;
}

// ---------------------------------------------------------------------------
// Self-test
// ---------------------------------------------------------------------------

namespace {

std::size_t count_rule(const std::vector<Diagnostic>& diags,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

struct PassTest {
  int failures = 0;

  void expect(const char* name, bool ok) {
    if (!ok) {
      std::fprintf(stderr, "soclint pass self-test FAILED: %s\n", name);
      ++failures;
    }
  }

  /// Runs all passes over the (path, text) fixtures and asserts exactly
  /// `expected` findings of `rule`.
  void pass_case(const char* name,
                 const std::vector<std::pair<std::string, std::string>>& fx,
                 const std::string& rule, std::size_t expected) {
    std::vector<SourceFile> files;
    files.reserve(fx.size());
    for (const auto& [path, text] : fx) {
      files.push_back(make_source_file(path, text));
    }
    std::vector<Diagnostic> diags;
    run_passes(files, diags);
    if (count_rule(diags, rule) != expected) {
      std::fprintf(stderr, "  want %zu x [%s], got:\n", expected,
                   rule.c_str());
      for (const Diagnostic& d : diags) {
        std::fprintf(stderr, "    %s:%zu [%s] %s\n", d.path.c_str(), d.line,
                     d.rule.c_str(), d.message.c_str());
      }
      expect(name, false);
    } else {
      expect(name, true);
    }
  }
};

/// Fixture files on disk (tools/soclint/testdata/) with the repo path
/// each one pretends to live at, plus the pass findings it must produce.
struct FixtureExpectation {
  const char* disk_name;
  const char* pretend_path;
};

struct FixtureCase {
  const char* name;
  std::vector<FixtureExpectation> files;
  const char* rule;
  std::size_t expected;
};

const std::vector<FixtureCase>& fixture_cases() {
  static const std::vector<FixtureCase> kCases = {
      {"fixture: include cycle detected",
       {{"cycle_a.h", "src/sim/cycle_a.h"},
        {"cycle_b.h", "src/sim/cycle_b.h"}},
       "include-cycle",
       1},
      {"fixture: cycle files carry no layering finding",
       {{"cycle_a.h", "src/sim/cycle_a.h"},
        {"cycle_b.h", "src/sim/cycle_b.h"}},
       "layering",
       0},
      {"fixture: direct + transitive layer violation",
       {{"layer_top.h", "src/net/layer_top.h"},
        {"layer_mid.h", "src/sim/layer_mid.h"},
        {"layer_leaf.h", "src/arch/layer_leaf.h"}},
       "layering",
       2},
      {"fixture: unannotated shared state flagged",
       {{"shared_bad.cpp", "src/sim/shared_bad.cpp"}},
       "shared-mutable-state",
       3},
      {"fixture: annotated shared state clean",
       {{"shared_good.cpp", "src/sim/shared_good.cpp"}},
       "shared-mutable-state",
       0},
      {"fixture: determinism violations flagged",
       {{"determinism_bad.cpp", "src/workloads/determinism_bad.cpp"}},
       "unordered-range-for",
       1},
      {"fixture: unseeded rng flagged",
       {{"determinism_bad.cpp", "src/workloads/determinism_bad.cpp"}},
       "unseeded-rng",
       1},
      {"fixture: build timestamp flagged",
       {{"determinism_bad.cpp", "src/workloads/determinism_bad.cpp"}},
       "build-timestamp",
       1},
      {"fixture: atomic<double> flagged",
       {{"determinism_bad.cpp", "src/workloads/determinism_bad.cpp"}},
       "shared-fp-accumulation",
       2},
      {"fixture: clean determinism file",
       {{"determinism_good.cpp", "src/workloads/determinism_good.cpp"}},
       "unordered-range-for",
       0},
  };
  return kCases;
}

}  // namespace

int passes_self_test(const std::string& testdata_dir) {
  PassTest t;

  // --- include-graph: direct layering (ported from the v1 rule). ---
  using Fx = std::vector<std::pair<std::string, std::string>>;
  t.pass_case("common including sim flagged",
              Fx{{"src/common/units.h", "#pragma once\n#include \"sim/engine.h\"\n"}},
              "layering", 1);
  t.pass_case("sim including workloads flagged",
              Fx{{"src/sim/engine.cpp", "#include \"workloads/workload.h\"\n"}},
              "layering", 1);
  t.pass_case("sim including common ok",
              Fx{{"src/sim/engine.cpp", "#include \"common/units.h\"\n"}},
              "layering", 0);
  t.pass_case("cluster including workloads ok",
              Fx{{"src/cluster/cluster.cpp",
                  "#include \"workloads/workload.h\"\n"}},
              "layering", 0);
  t.pass_case("obs including cluster flagged",
              Fx{{"src/obs/metrics.cpp", "#include \"cluster/cluster.h\"\n"}},
              "layering", 1);
  t.pass_case("obs including sim ok",
              Fx{{"src/obs/observers.cpp", "#include \"sim/engine.h\"\n"}},
              "layering", 0);
  t.pass_case("obs telemetry renderer including sim telemetry ok",
              Fx{{"src/obs/engine_telemetry.cpp",
                  "#include \"sim/telemetry.h\"\n"}},
              "layering", 0);
  t.pass_case("sim including obs telemetry renderer flagged",
              Fx{{"src/sim/engine.cpp",
                  "#include \"obs/engine_telemetry.h\"\n"}},
              "layering", 1);
  t.pass_case("system header ignored",
              Fx{{"src/common/units.cpp", "#include <vector>\n"}}, "layering",
              0);
  t.pass_case("sweep including cluster ok",
              Fx{{"src/sweep/sweep.cpp", "#include \"cluster/cluster.h\"\n"}},
              "layering", 0);
  t.pass_case("cluster including sweep flagged",
              Fx{{"src/cluster/cluster.cpp", "#include \"sweep/sweep.h\"\n"}},
              "layering", 1);
  t.pass_case("prof including obs ok",
              Fx{{"src/prof/profiler.cpp", "#include \"obs/observers.h\"\n"}},
              "layering", 0);
  t.pass_case("prof including cluster flagged",
              Fx{{"src/prof/profile.cpp", "#include \"cluster/cluster.h\"\n"}},
              "layering", 1);
  t.pass_case("obs including prof flagged",
              Fx{{"src/obs/metrics.cpp", "#include \"prof/profile.h\"\n"}},
              "layering", 1);
  t.pass_case("layering waiver honored",
              Fx{{"src/obs/metrics.cpp",
                  "#include \"cluster/cluster.h\"  // soclint: allow(layering)\n"}},
              "layering", 0);
  t.pass_case("unknown module flagged",
              Fx{{"src/newmod/thing.h", "#pragma once\n"}}, "layering", 1);

  // --- include-graph: cycles. ---
  t.pass_case("two-file cycle flagged",
              Fx{{"src/sim/a.h", "#pragma once\n#include \"sim/b.h\"\n"},
                 {"src/sim/b.h", "#pragma once\n#include \"sim/a.h\"\n"}},
              "include-cycle", 1);
  t.pass_case("self-include flagged",
              Fx{{"src/sim/a.h", "#pragma once\n#include \"sim/a.h\"\n"}},
              "include-cycle", 1);
  t.pass_case("diamond is not a cycle",
              Fx{{"src/sim/a.h", "#pragma once\n#include \"sim/b.h\"\n"
                                 "#include \"sim/c.h\"\n"},
                 {"src/sim/b.h", "#pragma once\n#include \"sim/d.h\"\n"},
                 {"src/sim/c.h", "#pragma once\n#include \"sim/d.h\"\n"},
                 {"src/sim/d.h", "#pragma once\n"}},
              "include-cycle", 0);

  // --- include-graph: transitive reachability. ---
  t.pass_case(
      "transitive leak reported at both ends",
      Fx{{"src/net/top.h", "#pragma once\n#include \"sim/mid.h\"\n"},
         {"src/sim/mid.h", "#pragma once\n#include \"arch/leaf.h\"\n"},
         {"src/arch/leaf.h", "#pragma once\n"}},
      "layering", 2);  // direct at mid.h + transitive path at top.h
  t.pass_case(
      "transitive reach inside closure ok",
      Fx{{"src/sweep/top.h", "#pragma once\n#include \"cluster/mid.h\"\n"},
         {"src/cluster/mid.h", "#pragma once\n#include \"core/leaf.h\"\n"},
         {"src/core/leaf.h", "#pragma once\n"}},
      "layering", 0);

  // --- stream-seam. ---
  t.pass_case("op_stream including a backend flagged",
              Fx{{"src/workloads/op_stream.cpp",
                  "#include \"workloads/op_stream.h\"\n"
                  "#include \"workloads/npb.h\"\n"}},
              "stream-seam", 1);
  t.pass_case("op_stream including scenario flagged",
              Fx{{"src/workloads/op_stream.h",
                  "#pragma once\n#include \"workloads/scenario.h\"\n"}},
              "stream-seam", 1);
  t.pass_case("scenario including a backend flagged",
              Fx{{"src/workloads/scenario.cpp",
                  "#include \"workloads/scenario.h\"\n"
                  "#include \"workloads/scientific.h\"\n"}},
              "stream-seam", 1);
  t.pass_case("scenario including cluster flagged",
              Fx{{"src/workloads/scenario.cpp",
                  "#include \"cluster/cluster.h\"\n"}},
              "stream-seam", 1);
  t.pass_case("scenario including sweep flagged",
              Fx{{"src/workloads/scenario.h",
                  "#pragma once\n#include \"sweep/grid.h\"\n"}},
              "stream-seam", 1);
  t.pass_case("scenario including op_stream ok",
              Fx{{"src/workloads/scenario.h",
                  "#pragma once\n#include \"workloads/op_stream.h\"\n"}},
              "stream-seam", 0);
  t.pass_case("op_stream including workload interface ok",
              Fx{{"src/workloads/op_stream.h",
                  "#pragma once\n#include \"sim/op.h\"\n"
                  "#include \"workloads/workload.h\"\n"}},
              "stream-seam", 0);
  t.pass_case("backend headers free to include each other",
              Fx{{"src/workloads/npb.cpp",
                  "#include \"workloads/npb.h\"\n"
                  "#include \"workloads/scientific.h\"\n"}},
              "stream-seam", 0);

  // --- shared-mutable-state. ---
  t.pass_case("bare std::mutex flagged",
              Fx{{"src/sim/x.cpp", "std::mutex m;\n"}}, "shared-mutable-state",
              1);
  t.pass_case("SOC_SHARED on same line ok",
              Fx{{"src/sim/x.cpp", "std::mutex m;  // SOC_SHARED(self)\n"}},
              "shared-mutable-state", 0);
  t.pass_case("SOC_SHARED on line above ok",
              Fx{{"src/sim/x.cpp",
                  "// SOC_SHARED(self)\nstd::mutex m;\n"}},
              "shared-mutable-state", 0);
  t.pass_case("empty SOC_SHARED guard still flagged",
              Fx{{"src/sim/x.cpp", "std::mutex m;  // SOC_SHARED()\n"}},
              "shared-mutable-state", 1);
  t.pass_case("guarded member needs no SOC_SHARED",
              Fx{{"src/sim/x.h",
                  "#pragma once\nint pending_ SOC_GUARDED_BY(mutex_);\n"}},
              "shared-mutable-state", 0);
  t.pass_case("bare atomic flagged",
              Fx{{"src/common/x.cpp", "std::atomic<int> hits{0};\n"}},
              "shared-mutable-state", 1);
  t.pass_case("atomic include line ignored",
              Fx{{"src/common/x.cpp", "#include <atomic>\n"}},
              "shared-mutable-state", 0);
  t.pass_case("mutable member flagged",
              Fx{{"src/sim/x.h",
                  "#pragma once\nstruct C { mutable int cache_ = 0; };\n"}},
              "shared-mutable-state", 1);
  t.pass_case("namespace-scope static flagged",
              Fx{{"src/sim/x.cpp",
                  "namespace {\nstatic int g_count = 0;\n}  // namespace\n"}},
              "shared-mutable-state", 1);
  t.pass_case("static const table ok",
              Fx{{"src/sim/x.cpp",
                  "namespace {\nstatic const int kTable[] = {1, 2};\n}\n"}},
              "shared-mutable-state", 0);
  t.pass_case("function-local static not this rule's job",
              Fx{{"src/sim/x.cpp",
                  "int f() {\n  static int calls = 0;\n  return ++calls;\n}\n"}},
              "shared-mutable-state", 0);
  t.pass_case("static member function not flagged",
              Fx{{"src/sim/x.h",
                  "#pragma once\nstruct C {\n  static int parse(int v);\n};\n"}},
              "shared-mutable-state", 0);
  t.pass_case("member access to a mutex not flagged",
              Fx{{"src/sim/x.cpp", "lock(slot.mutex);\n"}},
              "shared-mutable-state", 0);
  t.pass_case("soc::Mutex declaration flagged",
              Fx{{"src/sim/x.h", "#pragma once\nsoc::Mutex mu;\n"}},
              "shared-mutable-state", 1);
  t.pass_case("Mutex reference parameter not flagged",
              Fx{{"src/sim/x.h",
                  "#pragma once\nvoid lock_it(soc::Mutex& mu);\n"}},
              "shared-mutable-state", 0);
  t.pass_case("shared-state waiver honored",
              Fx{{"src/sim/x.cpp",
                  "std::mutex m;  // soclint: allow(shared-mutable-state)\n"}},
              "shared-mutable-state", 0);
  t.pass_case("tools files exempt from shared-state pass",
              Fx{{"tools/thing.cpp", "std::mutex m;\n"}},
              "shared-mutable-state", 0);

  // --- shard-local-state. ---
  t.pass_case("bare Shard member flagged",
              Fx{{"src/sim/x.h",
                  "#pragma once\nstruct Shard {\n  int queue_depth = 0;\n"
                  "};\n"}},
              "shard-local-state", 1);
  t.pass_case("SOC_SHARD_LOCAL on same line ok",
              Fx{{"src/sim/x.h",
                  "#pragma once\nstruct Shard {\n"
                  "  int queue_depth = 0;  // SOC_SHARD_LOCAL\n};\n"}},
              "shard-local-state", 0);
  t.pass_case("SOC_SHARD_LOCAL on line above ok",
              Fx{{"src/sim/x.h",
                  "#pragma once\nstruct Shard {\n  // SOC_SHARD_LOCAL\n"
                  "  int queue_depth = 0;\n};\n"}},
              "shard-local-state", 0);
  t.pass_case("guarded Shard member ok",
              Fx{{"src/sim/x.h",
                  "#pragma once\nstruct Shard {\n"
                  "  int queue_depth SOC_GUARDED_BY(mu_) = 0;\n};\n"}},
              "shard-local-state", 0);
  t.pass_case("Shard member function not flagged",
              Fx{{"src/sim/x.h",
                  "#pragma once\nstruct Shard {\n  void drain();\n};\n"}},
              "shard-local-state", 0);
  t.pass_case("Shard type alias not flagged",
              Fx{{"src/sim/x.h",
                  "#pragma once\nstruct Shard {\n"
                  "  using Clock = int;\n};\n"}},
              "shard-local-state", 0);
  t.pass_case("Shard rule confined to src/sim",
              Fx{{"src/cluster/x.h",
                  "#pragma once\nstruct Shard {\n  int depth = 0;\n};\n"}},
              "shard-local-state", 0);
  t.pass_case("non-Shard struct members unaffected",
              Fx{{"src/sim/x.h",
                  "#pragma once\nstruct Config {\n  int depth = 0;\n};\n"}},
              "shard-local-state", 0);
  t.pass_case("shard-local waiver honored",
              Fx{{"src/sim/x.h",
                  "#pragma once\nstruct Shard {\n"
                  "  int d = 0;  // soclint: allow(shard-local-state)\n};\n"}},
              "shard-local-state", 0);
  t.pass_case("bare ShardCounters member flagged",
              Fx{{"src/sim/x.h",
                  "#pragma once\nstruct ShardCounters {\n"
                  "  int events_processed = 0;\n};\n"}},
              "shard-local-state", 1);
  t.pass_case("annotated ShardCounters member ok",
              Fx{{"src/sim/x.h",
                  "#pragma once\nstruct ShardCounters {\n"
                  "  int events_processed = 0;  // SOC_SHARD_LOCAL\n};\n"}},
              "shard-local-state", 0);
  t.pass_case("ShardCounters use outside a definition not flagged",
              Fx{{"src/sim/x.h",
                  "#pragma once\nstruct Telemetry {\n"
                  "  int shards = 0;\n};\n"
                  "inline void touch(ShardCounters& c);\n"}},
              "shard-local-state", 0);

  // --- determinism. ---
  t.pass_case("range-for over unordered flagged",
              Fx{{"src/workloads/x.cpp",
                  "std::unordered_map<int, int> m;\n"
                  "void f() {\n  for (const auto& kv : m) use(kv);\n}\n"}},
              "unordered-range-for", 1);
  t.pass_case("range-for over member unordered flagged",
              Fx{{"src/workloads/x.cpp",
                  "std::unordered_set<int> seen_;\n"
                  "void f() {\n  for (int v : seen_) use(v);\n}\n"}},
              "unordered-range-for", 1);
  t.pass_case("range-for over vector ok",
              Fx{{"src/workloads/x.cpp",
                  "std::vector<int> v;\nvoid f() {\n"
                  "  for (int x : v) use(x);\n}\n"}},
              "unordered-range-for", 0);
  t.pass_case("iterator-for over unordered not a range-for",
              Fx{{"src/workloads/x.cpp",
                  "std::unordered_map<int, int> m;\n"
                  "void f() {\n  for (auto it = m.begin(); it != m.end(); "
                  "++it) use(*it);\n}\n"}},
              "unordered-range-for", 0);
  t.pass_case("unseeded mt19937 flagged",
              Fx{{"src/sim/x.cpp", "std::mt19937 rng;\n"}}, "unseeded-rng", 1);
  t.pass_case("unseeded brace-init flagged",
              Fx{{"src/sim/x.cpp", "std::mt19937 rng{};\n"}}, "unseeded-rng",
              1);
  t.pass_case("seeded mt19937 ok",
              Fx{{"src/sim/x.cpp", "std::mt19937 rng(seed);\n"}},
              "unseeded-rng", 0);
  t.pass_case("unseeded temporary flagged",
              Fx{{"src/sim/x.cpp", "shuffle(v.begin(), v.end(), "
                                   "std::mt19937());\n"}},
              "unseeded-rng", 1);
  t.pass_case("__DATE__ flagged",
              Fx{{"src/cluster/x.cpp",
                  "const char* built = __DATE__;\n"}},
              "build-timestamp", 1);
  t.pass_case("date in comment ignored",
              Fx{{"src/cluster/x.cpp", "// __DATE__ would be bad\n"}},
              "build-timestamp", 0);
  t.pass_case("atomic<double> flagged",
              Fx{{"src/sim/x.cpp",
                  "std::atomic<double> total{0};  // SOC_SHARED(atomic)\n"}},
              "shared-fp-accumulation", 1);
  t.pass_case("shared fp accumulation flagged",
              Fx{{"src/sim/x.h",
                  "#pragma once\n"
                  "double total_ SOC_GUARDED_BY(mutex_) = 0.0;\n"},
                 {"src/sim/x.cpp",
                  "void C::tick(double s) {\n  total_ += s;\n}\n"}},
              "shared-fp-accumulation", 1);
  t.pass_case("unshared fp accumulation ok",
              Fx{{"src/sim/x.cpp",
                  "void f() {\n  double sum = 0;\n  sum += 1.0;\n}\n"}},
              "shared-fp-accumulation", 0);

  // --- baseline + report machinery. ---
  {
    std::vector<SourceFile> files{
        make_source_file("src/sim/x.cpp", "std::mutex a;\nstd::mutex b;\n")};
    std::vector<Diagnostic> diags;
    run_passes(files, diags);
    t.expect("two findings for two mutexes", diags.size() == 2);
    const std::vector<std::string> keys = diagnostic_keys(diags);
    t.expect("duplicate messages get distinct keys",
             keys.size() == 2 && keys[0] != keys[1]);

    const std::string base = baseline_json(diags);
    std::set<std::string> parsed;
    t.expect("baseline round-trips", parse_baseline(base, parsed) &&
                                         parsed.size() == 2 &&
                                         new_violation_count(diags, parsed) == 0);
    t.expect("empty baseline means all new",
             new_violation_count(diags, {}) == 2);

    const std::string r1 = report_json(diags, files.size(), parsed);
    const std::string r2 = report_json(diags, files.size(), parsed);
    t.expect("report is byte-stable", r1 == r2);
    t.expect("report carries schema",
             r1.find("\"soclint-report/v1\"") != std::string::npos);

    std::set<std::string> bogus;
    t.expect("malformed baseline rejected",
             !parse_baseline("{\"schema\": \"other\"}", bogus));
  }

  // --- fixture files on disk. ---
  if (!testdata_dir.empty()) {
    namespace fs = std::filesystem;
    for (const FixtureCase& fc : fixture_cases()) {
      std::vector<std::pair<std::string, std::string>> fx;
      bool ok = true;
      for (const FixtureExpectation& fe : fc.files) {
        std::ifstream in(fs::path(testdata_dir) / fe.disk_name,
                         std::ios::binary);
        if (!in) {
          std::fprintf(stderr,
                       "soclint pass self-test FAILED: cannot read %s/%s\n",
                       testdata_dir.c_str(), fe.disk_name);
          ++t.failures;
          ok = false;
          break;
        }
        std::ostringstream text;
        text << in.rdbuf();
        fx.emplace_back(fe.pretend_path, text.str());
      }
      if (ok) t.pass_case(fc.name, fx, fc.rule, fc.expected);
    }
  }

  if (t.failures == 0) {
    std::printf("soclint pass self-test: all cases passed%s\n",
                testdata_dir.empty() ? " (embedded only; no --testdata)" : "");
  }
  return t.failures;
}

}  // namespace soclint
