// soclint driver: walks the repository's C++ sources, applies the
// per-line rules (rules.cpp) and the whole-program passes (passes.cpp —
// include graph, shared mutable state, determinism), and diffs the
// combined findings against the checked-in baseline.
//
//   soclint --root <repo>             lint src/ bench/ tests/ tools/ examples/
//   ... --baseline <file>             suppress keys listed in the baseline;
//                                     exit 1 only on *new* findings
//   ... --report <file>               also write a "soclint-report/v1" JSON
//                                     document (byte-identical across runs)
//   ... --write-baseline <file>       regenerate the baseline from this run
//   soclint --self-test [--testdata <dir>]
//                                     prove every rule and pass on embedded
//                                     snippets (+ on-disk fixtures)
//   soclint --list-rules              print the rule catalog
//
// Exit status: 0 clean (or all findings baselined), 1 new findings,
// 2 usage/IO error.  Registered in ctest (tier-1) as `soclint` and
// `soclint_selftest`; CI uploads the report as an artifact.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "passes.h"
#include "rules.h"

namespace {

namespace fs = std::filesystem;

// Directories scanned relative to the repo root.  build/ trees are never
// under these, so generated sources are naturally excluded.
constexpr const char* kScanDirs[] = {"src", "bench", "tests", "tools",
                                     "examples"};

// The lint fixtures are violations on purpose; scanning them would make
// the repo permanently dirty.
constexpr const char* kTestdataPrefix = "tools/soclint/testdata/";

bool has_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp";
}

std::vector<std::string> collect_files(const fs::path& root) {
  std::vector<std::string> files;
  for (const char* dir : kScanDirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !has_extension(entry.path())) continue;
      std::string rel = fs::relative(entry.path(), root).generic_string();
      if (rel.rfind(kTestdataPrefix, 0) == 0) continue;
      files.push_back(std::move(rel));
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int list_rules() {
  std::printf("soclint per-line rules:\n");
  for (const soclint::Rule& rule : soclint::all_rules()) {
    std::printf("  %-24s %s\n", rule.id, rule.summary);
  }
  std::printf("\nsoclint whole-program passes:\n");
  for (const soclint::PassRule& rule : soclint::pass_rules()) {
    std::printf("  %-24s %s\n", rule.id, rule.summary);
  }
  std::printf(
      "\nwaive one line with a trailing `// soclint: allow(<rule-id>)`;\n"
      "justify shared state with `// SOC_SHARED(<guard>)` or a\n"
      "SOC_GUARDED_BY annotation (src/common/thread_safety.h)\n");
  return 0;
}

bool write_text(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

struct Options {
  fs::path root = ".";
  fs::path baseline_path;        ///< Empty: no baseline filtering.
  fs::path report_path;          ///< Empty: no report written.
  fs::path write_baseline_path;  ///< Empty: no baseline regeneration.
};

int lint_tree(const Options& opt) {
  std::error_code ec;
  if (!fs::exists(opt.root, ec) || ec) {
    std::fprintf(stderr, "soclint: root '%s' does not exist\n",
                 opt.root.string().c_str());
    return 2;
  }
  const std::vector<std::string> paths = collect_files(opt.root);
  if (paths.empty()) {
    std::fprintf(stderr, "soclint: no sources found under '%s'\n",
                 opt.root.string().c_str());
    return 2;
  }

  std::vector<soclint::SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& rel : paths) {
    std::ifstream in(opt.root / rel, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "soclint: cannot read %s\n", rel.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    files.push_back(soclint::make_source_file(rel, text.str()));
  }

  // Per-line rules, then the whole-program passes; one sorted list.
  std::vector<soclint::Diagnostic> diags;
  for (const soclint::SourceFile& file : files) {
    soclint::run_rules(file, diags);
  }
  soclint::run_passes(files, diags);
  std::sort(diags.begin(), diags.end(),
            [](const soclint::Diagnostic& a, const soclint::Diagnostic& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });

  std::set<std::string> baseline;
  if (!opt.baseline_path.empty()) {
    std::ifstream in(opt.baseline_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "soclint: cannot read baseline %s\n",
                   opt.baseline_path.string().c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (!soclint::parse_baseline(text.str(), baseline)) {
      std::fprintf(stderr,
                   "soclint: %s is not a soclint-baseline/v1 document\n",
                   opt.baseline_path.string().c_str());
      return 2;
    }
  }

  if (!opt.write_baseline_path.empty()) {
    if (!write_text(opt.write_baseline_path, soclint::baseline_json(diags))) {
      std::fprintf(stderr, "soclint: cannot write %s\n",
                   opt.write_baseline_path.string().c_str());
      return 2;
    }
    std::printf("soclint: wrote baseline (%zu keys) to %s\n", diags.size(),
                opt.write_baseline_path.string().c_str());
  }
  if (!opt.report_path.empty()) {
    if (!write_text(opt.report_path,
                    soclint::report_json(diags, files.size(), baseline))) {
      std::fprintf(stderr, "soclint: cannot write %s\n",
                   opt.report_path.string().c_str());
      return 2;
    }
  }

  const std::vector<std::string> keys = soclint::diagnostic_keys(diags);
  std::size_t fresh = 0;
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const bool baselined = baseline.count(keys[i]) != 0;
    if (!baselined) ++fresh;
    std::printf("%s:%zu: %s: [%s] %s\n", diags[i].path.c_str(),
                diags[i].line, baselined ? "warning (baselined)" : "error",
                diags[i].rule.c_str(), diags[i].message.c_str());
  }
  if (fresh != 0) {
    std::printf("soclint: %zu new finding(s) (%zu baselined) in %zu file(s) "
                "scanned\n",
                fresh, diags.size() - fresh, files.size());
    return 1;
  }
  if (!diags.empty()) {
    std::printf("soclint: clean (%zu baselined finding(s), %zu files "
                "scanned)\n",
                diags.size(), files.size());
  } else {
    std::printf("soclint: clean (%zu files scanned)\n", files.size());
  }
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: soclint [--root <dir>] [--baseline <file>] [--report <file>]\n"
      "               [--write-baseline <file>]\n"
      "       soclint --self-test [--testdata <dir>]\n"
      "       soclint --list-rules\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bool self_test = false;
  std::string testdata_dir;
  for (int i = 1; i < argc; ++i) {
    const auto flag_value = [&](const char* name, auto& slot) {
      if (std::strcmp(argv[i], name) != 0 || i + 1 >= argc) return false;
      slot = argv[++i];
      return true;
    };
    if (std::strcmp(argv[i], "--self-test") == 0) {
      self_test = true;
      continue;
    }
    if (std::strcmp(argv[i], "--list-rules") == 0) {
      return list_rules();
    }
    if (flag_value("--root", opt.root) ||
        flag_value("--baseline", opt.baseline_path) ||
        flag_value("--report", opt.report_path) ||
        flag_value("--write-baseline", opt.write_baseline_path) ||
        flag_value("--testdata", testdata_dir)) {
      continue;
    }
    return usage();
  }
  if (self_test) {
    const int failures =
        soclint::self_test() + soclint::passes_self_test(testdata_dir);
    return failures == 0 ? 0 : 1;
  }
  return lint_tree(opt);
}
