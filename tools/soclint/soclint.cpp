// soclint driver: walks the repository's C++ sources and applies the
// determinism/layering rules in rules.cpp.
//
//   soclint --root <repo>     lint src/ bench/ tests/ tools/ examples/
//   soclint --self-test       prove every rule on embedded snippets
//   soclint --list-rules      print the rule catalog
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error.  Registered in
// ctest (tier-1) as `soclint` and `soclint_selftest`.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rules.h"

namespace {

namespace fs = std::filesystem;

// Directories scanned relative to the repo root.  build/ trees are never
// under these, so generated sources are naturally excluded.
constexpr const char* kScanDirs[] = {"src", "bench", "tests", "tools",
                                     "examples"};

bool has_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp";
}

std::vector<std::string> collect_files(const fs::path& root) {
  std::vector<std::string> files;
  for (const char* dir : kScanDirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (entry.is_regular_file() && has_extension(entry.path())) {
        files.push_back(
            fs::relative(entry.path(), root).generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int list_rules() {
  std::printf("soclint rules:\n");
  for (const soclint::Rule& rule : soclint::all_rules()) {
    std::printf("  %-24s %s\n", rule.id, rule.summary);
  }
  std::printf(
      "\nwaive one line with a trailing `// soclint: allow(<rule-id>)`\n");
  return 0;
}

int lint_tree(const fs::path& root) {
  std::error_code ec;
  if (!fs::exists(root, ec) || ec) {
    std::fprintf(stderr, "soclint: root '%s' does not exist\n",
                 root.string().c_str());
    return 2;
  }
  const std::vector<std::string> files = collect_files(root);
  if (files.empty()) {
    std::fprintf(stderr, "soclint: no sources found under '%s'\n",
                 root.string().c_str());
    return 2;
  }

  std::vector<soclint::Diagnostic> diags;
  for (const std::string& rel : files) {
    std::ifstream in(root / rel, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "soclint: cannot read %s\n", rel.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    soclint::run_rules(soclint::make_source_file(rel, text.str()), diags);
  }

  for (const soclint::Diagnostic& d : diags) {
    std::printf("%s:%zu: error: [%s] %s\n", d.path.c_str(), d.line,
                d.rule.c_str(), d.message.c_str());
  }
  if (!diags.empty()) {
    std::printf("soclint: %zu finding(s) in %zu file(s) scanned\n",
                diags.size(), files.size());
    return 1;
  }
  std::printf("soclint: clean (%zu files scanned)\n", files.size());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: soclint [--root <dir>] | --self-test | --list-rules\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-test") == 0) {
      return soclint::self_test() == 0 ? 0 : 1;
    }
    if (std::strcmp(argv[i], "--list-rules") == 0) {
      return list_rules();
    }
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
      continue;
    }
    return usage();
  }
  return lint_tree(root);
}
