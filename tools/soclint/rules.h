// soclint — repo-specific static analysis for soccluster.
//
// The simulator's core promise (engine.h) is that a given (programs, cost
// model, scenario) triple always yields identical RunStats.  soclint makes
// the coding rules behind that promise machine-checkable:
//
//   banned-nondeterminism   no rand()/std::random_device/wall clocks —
//                           all randomness flows through soc::Rng, all
//                           time is simulated integer nanoseconds
//   getenv-in-library       src/ behavior may not depend on the environment
//   unordered-in-sim-state  no std::unordered_{map,set} in simulation-state
//                           modules (src/sim, src/obs, src/prof, src/msg,
//                           src/cluster, src/trace, src/sweep): iteration
//                           order is unspecified, so any walk over one can
//                           reorder replays
//   pragma-once             every header carries #pragma once
//   soc-check-message       every SOC_CHECK has a non-empty message
//
// Layering moved from a per-line rule into the whole-program include-graph
// pass (passes.h), which also rejects include cycles, checks transitive
// reachability against the src/ module DAG, and runs the shared-mutable-
// state and determinism passes.
//
// A finding can be waived for one line with a trailing
// `// soclint: allow(<rule-id>)` comment.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace soclint {

/// One finding: `path:line: [rule] message`.
struct Diagnostic {
  std::string path;
  std::size_t line = 0;  ///< 1-based.
  std::string rule;
  std::string message;
};

/// A scanned file plus the pre-computed views the rules share.
///
/// `code_lines` mirrors `raw_lines` character-for-character but with
/// comments and string/character literals blanked to spaces, so token
/// searches cannot be fooled by prose or literals and column positions
/// stay aligned between the two views.
struct SourceFile {
  std::string path;         ///< Repo-relative, '/'-separated.
  std::string top_dir;      ///< "src", "bench", "tests", "tools", "examples".
  std::string module_name;  ///< For src/<module>/**: "<module>"; else "".
  bool is_header = false;
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;

  /// True if `line_no` (1-based) carries a `soclint: allow(rule)` waiver.
  bool suppressed(std::size_t line_no, const std::string& rule) const;
};

/// Builds the scan views from file text.  `path` must be repo-relative.
SourceFile make_source_file(std::string path, const std::string& text);

using RuleFn = void (*)(const SourceFile&, std::vector<Diagnostic>&);

struct Rule {
  const char* id;
  const char* summary;
  RuleFn fn;
};

/// Every registered rule, in report order.
const std::vector<Rule>& all_rules();

/// Runs all rules over one file, appending findings (waivers applied).
void run_rules(const SourceFile& file, std::vector<Diagnostic>& out);

/// Exercises every rule against embedded good/bad snippets.  Returns the
/// number of failed expectations (0 = pass) and prints each failure.
int self_test();

namespace detail {
/// Whole-identifier occurrences of `token` in `line`; returns columns.
std::vector<std::size_t> find_token(const std::string& line,
                                    const std::string& token);
/// True when the line's first non-space character is '#'.
bool line_is_preprocessor(const std::string& code_line);
/// Strips leading/trailing whitespace.
std::string trim(const std::string& s);
}  // namespace detail

}  // namespace soclint
