// Fixture: linted as src/arch/layer_leaf.h.  Innocent by itself.
#pragma once

inline int layer_leaf() { return 42; }
