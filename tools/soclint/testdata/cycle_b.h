// Fixture: the other half of the cycle (linted as src/sim/cycle_b.h).
#pragma once

#include "sim/cycle_a.h"

inline int cycle_b() { return 0; }
