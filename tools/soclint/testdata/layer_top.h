// Fixture: linted as src/net/layer_top.h.  The direct edge net -> sim is
// allowed, but layer_mid.h leaks src/arch in — a layer net may not see —
// so the pass must report the transitive chain here.
#pragma once

#include "sim/layer_mid.h"

inline int layer_top() { return layer_mid(); }
