// Fixture: one half of a two-file include cycle (linted as
// src/sim/cycle_a.h).
#pragma once

#include "sim/cycle_b.h"

inline int cycle_a() { return cycle_b() + 1; }
