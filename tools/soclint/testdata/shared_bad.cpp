// Fixture: linted as src/sim/shared_bad.cpp.  Three pieces of shared
// mutable state, none justified — each must be flagged.
#include <atomic>
#include <mutex>

namespace soc::sim {
namespace {

std::mutex g_lock;
std::atomic<int> g_hits{0};
static int g_calls = 0;

}  // namespace

void touch() {
  g_lock.lock();
  ++g_calls;
  g_lock.unlock();
  g_hits.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace soc::sim
