// Fixture: linted as src/workloads/determinism_good.cpp.  The clean
// control: ordered containers, per-shard sums re-folded in input order.
#include <map>
#include <vector>

namespace soc::workloads {

int stable_sum(const std::map<int, int>& counts) {
  int sum = 0;
  for (const auto& [key, value] : counts) sum += value;
  return sum;
}

double fold_in_order(const std::vector<double>& shard_sums) {
  double total = 0.0;
  for (double s : shard_sums) total += s;
  return total;
}

}  // namespace soc::workloads
