// Fixture: linted as src/workloads/determinism_bad.cpp.  One of each
// determinism hazard: hash-order iteration, an unseeded engine, a build
// timestamp, and FP accumulation into shared state (twice: the
// atomic<double> declaration and the += into it).
#include <atomic>
#include <random>
#include <unordered_map>

namespace soc::workloads {
namespace {

std::atomic<double> g_total{0.0};  // SOC_SHARED(atomic)
const char* kBuildStamp = __DATE__;

}  // namespace

int churn() {
  std::unordered_map<int, int> counts;
  std::mt19937 rng;
  counts[static_cast<int>(rng())] = 1;
  int sum = 0;
  for (const auto& kv : counts) {
    sum += kv.second;
  }
  g_total += sum;
  return sum + (kBuildStamp != nullptr ? 1 : 0);
}

}  // namespace soc::workloads
