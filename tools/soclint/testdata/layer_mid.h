// Fixture: linted as src/sim/layer_mid.h.  sim may only include common,
// so this direct edge into src/arch is the layering violation that also
// poisons every file above it.
#pragma once

#include "arch/layer_leaf.h"

inline int layer_mid() { return layer_leaf(); }
