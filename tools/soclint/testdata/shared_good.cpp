// Fixture: linted as src/sim/shared_good.cpp.  The same state as
// shared_bad.cpp with every justification form the pass accepts:
// same-line SOC_SHARED, line-above SOC_SHARED, and SOC_GUARDED_BY.
#include <atomic>
#include <mutex>

namespace soc::sim {
namespace {

std::mutex g_lock;           // SOC_SHARED(self) — guards g_calls
std::atomic<int> g_hits{0};  // SOC_SHARED(atomic)
// SOC_SHARED(g_lock)
static int g_calls = 0;

}  // namespace

struct Counter {
  int pending SOC_GUARDED_BY(g_lock) = 0;
};

void touch() {
  g_lock.lock();
  ++g_calls;
  g_lock.unlock();
  g_hits.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace soc::sim
