// soclint v2 — whole-program passes.
//
// Where rules.h checks one line of one file at a time, the passes here see
// every scanned file at once and enforce the properties that matter for
// the rank-sharded PDES work (ROADMAP item 1): state isolation and
// schedule determinism have to be provable *before* engine state goes
// under concurrent mutation.
//
//   include-graph pass      parses every #include edge under src/,
//                           rejects cycles (`include-cycle`) with the
//                           offending chain printed, checks direct edges
//                           against the module DAG (`layering`), and
//                           checks *transitive* reachability against the
//                           DAG's closure so a low layer poisoned through
//                           an intermediate header is reported at the
//                           file that depends on it — with the path.
//   shared-mutable-state    every synchronization primitive or shared-
//                           mutable declaration in src/ (std::mutex,
//                           soc::Mutex, std::atomic, std::once_flag,
//                           thread_local, `mutable` members, non-const
//                           statics at namespace/class scope) must carry
//                           a `// SOC_SHARED(<guard>)` justification on
//                           its line or the line above, or a checkable
//                           SOC_GUARDED_BY annotation.
//   determinism pass        bans range-for over unordered containers
//                           anywhere in src/ (`unordered-range-for`),
//                           unseeded std <random> engine construction
//                           (`unseeded-rng`), __DATE__/__TIME__
//                           (`build-timestamp`), and floating-point
//                           accumulation into shared state outside the
//                           blessed reduction sites in src/common/parallel
//                           (`shared-fp-accumulation`).
//
// Findings are keyed (path + rule + message hash, line-number free) so CI
// diffs them against tools/soclint/baseline.json and fails only on *new*
// violations; the full run is exported as a "soclint-report/v1" JSON
// document that is byte-identical across repeated runs.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "rules.h"

namespace soclint {

/// Allowed direct #include edges between src/ modules; mirrors the
/// dependency comment in src/CMakeLists.txt and each module's DEPS list.
/// A module may always include itself.
const std::map<std::string, std::set<std::string>>& allowed_includes();

/// Transitive closure of allowed_includes(): everything `module` may
/// reach through any chain of allowed edges.
const std::set<std::string>& module_closure(const std::string& module);

/// The three passes.  Each appends diagnostics for the whole file set;
/// per-line `// soclint: allow(<rule>)` waivers are honored.
void include_graph_pass(const std::vector<SourceFile>& files,
                        std::vector<Diagnostic>& out);
void shared_state_pass(const std::vector<SourceFile>& files,
                       std::vector<Diagnostic>& out);
void determinism_pass(const std::vector<SourceFile>& files,
                      std::vector<Diagnostic>& out);

/// Runs all three passes and sorts the combined findings by
/// (path, line, rule, message) so downstream output is deterministic.
void run_passes(const std::vector<SourceFile>& files,
                std::vector<Diagnostic>& out);

/// Rule catalog for the passes (for --list-rules).
struct PassRule {
  const char* id;
  const char* summary;
};
const std::vector<PassRule>& pass_rules();

/// Stable baseline key per diagnostic, index-aligned with `diags`:
/// `<path>#<rule>#<fnv1a-hash-of-message>` plus a `#<n>` occurrence
/// counter for duplicates.  Line numbers are deliberately excluded so an
/// unrelated edit above a baselined finding does not invalidate it.
std::vector<std::string> diagnostic_keys(const std::vector<Diagnostic>& diags);

/// Parses a "soclint-baseline/v1" document into its key set.  Returns
/// false (leaving `keys` empty) on malformed input.
bool parse_baseline(const std::string& text, std::set<std::string>& keys);

/// Renders the "soclint-baseline/v1" document for the given findings.
std::string baseline_json(const std::vector<Diagnostic>& diags);

/// Renders the "soclint-report/v1" document: every finding with its key,
/// location, rule, message, and whether the baseline suppresses it.
/// Sorted input in, byte-identical output out — no timestamps, no
/// absolute paths, no environment.
std::string report_json(const std::vector<Diagnostic>& diags,
                        std::size_t files_scanned,
                        const std::set<std::string>& baseline);

/// Number of findings whose key is absent from `baseline` (the count CI
/// gates on).
std::size_t new_violation_count(const std::vector<Diagnostic>& diags,
                                const std::set<std::string>& baseline);

/// Proves the three passes on embedded snippets and, when `testdata_dir`
/// is non-empty, on the fixture files under tools/soclint/testdata/.
/// Returns the number of failed expectations (0 = pass).
int passes_self_test(const std::string& testdata_dir);

}  // namespace soclint
