#include "rules.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <set>
#include <sstream>

namespace soclint {
namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Blanks comments and string/character literals to spaces, preserving every
// newline and column, so token scans see only code.  Handles //, /* */,
// escape sequences, and R"delim(...)delim" raw strings.
std::string scrub(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_close;  // ")delim" for the active raw string.
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !ident_char(text[i - 1]))) {
          raw_close = ")";
          std::size_t j = i + 2;
          while (j < text.size() && text[j] != '(') raw_close += text[j++];
          raw_close += '"';
          state = State::kRaw;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
          out[i] = '"';  // keep the quotes; blank only the contents
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = '\'';
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRaw:
        if (text.compare(i, raw_close.size(), raw_close) == 0) {
          for (std::size_t j = 0; j < raw_close.size(); ++j) out[i + j] = ' ';
          i += raw_close.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type start = 0;
  while (start <= text.size()) {
    const auto nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

}  // namespace

// Shared with the whole-program passes (passes.cpp).
namespace detail {

std::vector<std::size_t> find_token(const std::string& line,
                                    const std::string& token) {
  std::vector<std::size_t> cols;
  std::string::size_type pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) cols.push_back(pos);
    pos = end;
  }
  return cols;
}

bool line_is_preprocessor(const std::string& code_line) {
  for (char c : code_line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return false;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace detail

namespace {

using detail::find_token;
using detail::line_is_preprocessor;
using detail::trim;

// ---------------------------------------------------------------------------
// Rule: banned-nondeterminism
// ---------------------------------------------------------------------------

struct BannedToken {
  const char* token;
  bool call_only;  ///< Require '(' after the token (for short names).
  const char* why;
};

constexpr BannedToken kBanned[] = {
    {"rand", true,
     "libc rand() is hidden-global-state nondeterminism; draw from soc::Rng"},
    {"srand", true,
     "libc srand() seeds hidden global state; seed a soc::Rng instead"},
    {"random_device", false,
     "std::random_device pulls OS entropy, so replays differ; use soc::Rng"},
    {"system_clock", false,
     "wall-clock reads are nondeterministic; simulated time is soc::SimTime"},
    {"steady_clock", false,
     "host-clock reads are nondeterministic; simulated time is soc::SimTime"},
    {"high_resolution_clock", false,
     "host-clock reads are nondeterministic; simulated time is soc::SimTime"},
    {"clock_gettime", true,
     "host-clock reads are nondeterministic; simulated time is soc::SimTime"},
    {"gettimeofday", true,
     "host-clock reads are nondeterministic; simulated time is soc::SimTime"},
};

void rule_banned(const SourceFile& file, std::vector<Diagnostic>& out) {
  for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
    const std::string& line = file.code_lines[i];
    for (const BannedToken& banned : kBanned) {
      for (std::size_t col : find_token(line, banned.token)) {
        if (banned.call_only) {
          std::size_t j = col + std::string(banned.token).size();
          while (j < line.size() &&
                 std::isspace(static_cast<unsigned char>(line[j]))) {
            ++j;
          }
          if (j >= line.size() || line[j] != '(') continue;
        }
        out.push_back({file.path, i + 1, "banned-nondeterminism",
                       std::string(banned.token) + ": " + banned.why});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: getenv-in-library
// ---------------------------------------------------------------------------

void rule_getenv(const SourceFile& file, std::vector<Diagnostic>& out) {
  if (file.top_dir != "src") return;  // tools/tests may read their environment
  for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
    for (const char* token : {"getenv", "secure_getenv"}) {
      if (!find_token(file.code_lines[i], token).empty()) {
        out.push_back({file.path, i + 1, "getenv-in-library",
                       std::string(token) +
                           ": library behavior must not depend on the "
                           "environment; thread configuration in explicitly"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unordered-in-sim-state
// ---------------------------------------------------------------------------

const std::set<std::string>& sim_state_modules() {
  static const std::set<std::string> kModules = {
      "sim", "msg", "cluster", "trace", "obs", "sweep", "prof"};
  return kModules;
}

void rule_unordered(const SourceFile& file, std::vector<Diagnostic>& out) {
  if (file.top_dir != "src" ||
      sim_state_modules().count(file.module_name) == 0) {
    return;
  }
  for (std::size_t i = 0; i < file.code_lines.size(); ++i) {
    for (const char* token : {"unordered_map", "unordered_multimap",
                              "unordered_set", "unordered_multiset"}) {
      if (!find_token(file.code_lines[i], token).empty()) {
        out.push_back(
            {file.path, i + 1, "unordered-in-sim-state",
             std::string(token) +
                 " in simulation-state code: hash iteration order is "
                 "unspecified, so any walk over it can reorder replays; use "
                 "soc::flat_map (insertion-order iteration), std::map, or a "
                 "sorted vector"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: pragma-once
// ---------------------------------------------------------------------------

void rule_pragma_once(const SourceFile& file, std::vector<Diagnostic>& out) {
  if (!file.is_header) return;
  for (const std::string& line : file.code_lines) {
    if (line.find("#pragma") != std::string::npos &&
        line.find("once") != std::string::npos) {
      return;
    }
  }
  out.push_back({file.path, 1, "pragma-once",
                 "header lacks #pragma once (the repo's include-guard "
                 "convention)"});
}

// ---------------------------------------------------------------------------
// Rule: soc-check-message
// ---------------------------------------------------------------------------

std::string join(const std::vector<std::string>& lines) {
  std::string text;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i) text += '\n';
    text += lines[i];
  }
  return text;
}

void rule_check_message(const SourceFile& file, std::vector<Diagnostic>& out) {
  const std::string code = join(file.code_lines);
  const std::string raw = join(file.raw_lines);
  std::string::size_type pos = 0;
  while ((pos = code.find("SOC_CHECK", pos)) != std::string::npos) {
    const std::size_t token = pos;
    pos += 9;  // strlen("SOC_CHECK")
    if (token > 0 && ident_char(code[token - 1])) continue;
    if (pos < code.size() && ident_char(code[pos])) continue;
    const std::size_t line_no =
        1 + static_cast<std::size_t>(
                std::count(code.begin(),
                           code.begin() + static_cast<std::ptrdiff_t>(token),
                           '\n'));
    // Skip the macro's own #define.
    const std::size_t line_start = code.rfind('\n', token);
    const std::string head = code.substr(
        line_start == std::string::npos ? 0 : line_start + 1,
        token - (line_start == std::string::npos ? 0 : line_start + 1));
    if (head.find("#define") != std::string::npos) continue;

    std::size_t open = pos;
    while (open < code.size() &&
           std::isspace(static_cast<unsigned char>(code[open]))) {
      ++open;
    }
    if (open >= code.size() || code[open] != '(') continue;

    // Balance parens over the scrubbed text (literals cannot confuse it)
    // while remembering top-level comma positions.
    int depth = 0;
    std::size_t last_comma = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t j = open; j < code.size(); ++j) {
      const char c = code[j];
      if (c == '(' || c == '[' || c == '{') {
        ++depth;
      } else if (c == ')' || c == ']' || c == '}') {
        --depth;
        if (depth == 0) {
          close = j;
          break;
        }
      } else if (c == ',' && depth == 1) {
        last_comma = j;
      }
    }
    if (close == std::string::npos) continue;  // unterminated; not ours
    if (last_comma == std::string::npos) {
      out.push_back({file.path, line_no, "soc-check-message",
                     "SOC_CHECK has no message argument; every check must "
                     "say what invariant failed"});
      continue;
    }
    const std::string msg =
        trim(raw.substr(last_comma + 1, close - last_comma - 1));
    if (msg.empty() || msg == "\"\"") {
      out.push_back({file.path, line_no, "soc-check-message",
                     "SOC_CHECK message is empty; every check must say what "
                     "invariant failed"});
    }
  }
}

}  // namespace

bool SourceFile::suppressed(std::size_t line_no, const std::string& rule) const {
  if (line_no == 0 || line_no > raw_lines.size()) return false;
  const std::string& raw = raw_lines[line_no - 1];
  const auto mark = raw.find("soclint: allow(");
  if (mark == std::string::npos) return false;
  const auto close = raw.find(')', mark);
  if (close == std::string::npos) return false;
  const std::string waived = raw.substr(mark + 15, close - mark - 15);
  return waived == rule || waived == "*";
}

SourceFile make_source_file(std::string path, const std::string& text) {
  SourceFile file;
  file.path = std::move(path);
  const auto first_slash = file.path.find('/');
  file.top_dir = file.path.substr(0, first_slash);
  if (file.top_dir == "src" && first_slash != std::string::npos) {
    const auto second_slash = file.path.find('/', first_slash + 1);
    if (second_slash != std::string::npos) {
      file.module_name =
          file.path.substr(first_slash + 1, second_slash - first_slash - 1);
    }
  }
  file.is_header = file.path.size() >= 2 &&
                   file.path.compare(file.path.size() - 2, 2, ".h") == 0;
  file.raw_lines = split_lines(text);
  file.code_lines = split_lines(scrub(text));
  return file;
}

const std::vector<Rule>& all_rules() {
  static const std::vector<Rule> kRules = {
      {"banned-nondeterminism",
       "no rand()/std::random_device/host clocks; use soc::Rng and SimTime",
       rule_banned},
      {"getenv-in-library",
       "src/ code may not read the process environment", rule_getenv},
      {"unordered-in-sim-state",
       "no std::unordered_{map,set} in "
       "src/{sim,obs,prof,msg,cluster,trace,sweep}",
       rule_unordered},
      {"pragma-once", "every header carries #pragma once", rule_pragma_once},
      {"soc-check-message", "every SOC_CHECK carries a non-empty message",
       rule_check_message},
  };
  return kRules;
}

void run_rules(const SourceFile& file, std::vector<Diagnostic>& out) {
  std::vector<Diagnostic> found;
  for (const Rule& rule : all_rules()) rule.fn(file, found);
  for (Diagnostic& d : found) {
    if (!file.suppressed(d.line, d.rule)) out.push_back(std::move(d));
  }
}

// ---------------------------------------------------------------------------
// Self-test
// ---------------------------------------------------------------------------

namespace {

std::size_t count_rule(const std::vector<Diagnostic>& diags,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

struct SelfTest {
  int failures = 0;

  void expect(const char* name, bool ok) {
    if (!ok) {
      std::fprintf(stderr, "soclint self-test FAILED: %s\n", name);
      ++failures;
    }
  }

  /// Asserts that linting `text` (as repo file `path`) produces exactly
  /// `expected` findings of `rule`.
  void lint_case(const char* name, const std::string& path,
                 const std::string& text, const std::string& rule,
                 std::size_t expected) {
    std::vector<Diagnostic> diags;
    run_rules(make_source_file(path, text), diags);
    expect(name, count_rule(diags, rule) == expected);
  }
};

}  // namespace

int self_test() {
  SelfTest t;

  // banned-nondeterminism: calls flagged; comments, literals, and
  // lookalike identifiers are not.
  t.lint_case("rand call flagged", "src/sim/x.cpp", "int v = rand();\n",
              "banned-nondeterminism", 1);
  t.lint_case("rand in comment ignored", "src/sim/x.cpp",
              "// rand() would break replays\n", "banned-nondeterminism", 0);
  t.lint_case("rand in string ignored", "src/sim/x.cpp",
              "const char* s = \"rand()\";\n", "banned-nondeterminism", 0);
  t.lint_case("operand() not rand()", "src/sim/x.cpp", "operand(3);\n",
              "banned-nondeterminism", 0);
  t.lint_case("random_device flagged", "src/common/x.cpp",
              "std::random_device rd;\n", "banned-nondeterminism", 1);
  t.lint_case("steady_clock flagged in bench too", "bench/x.cpp",
              "auto t0 = std::chrono::steady_clock::now();\n",
              "banned-nondeterminism", 1);
  t.lint_case("waiver honored", "src/sim/x.cpp",
              "int v = rand();  // soclint: allow(banned-nondeterminism)\n",
              "banned-nondeterminism", 0);

  // getenv-in-library: src/ only.
  t.lint_case("getenv in src flagged", "src/net/x.cpp",
              "const char* e = std::getenv(\"HOME\");\n", "getenv-in-library",
              1);
  t.lint_case("getenv in tools allowed", "tools/socbench.cpp",
              "const char* e = std::getenv(\"HOME\");\n", "getenv-in-library",
              0);

  // unordered-in-sim-state: simulation-state modules only.
  t.lint_case("unordered_map in sim flagged", "src/sim/engine.h",
              "#pragma once\nstd::unordered_map<int, int> m;\n",
              "unordered-in-sim-state", 1);
  t.lint_case("unordered_set in trace flagged", "src/trace/chop.cpp",
              "std::unordered_set<int> seen;\n", "unordered-in-sim-state", 1);
  t.lint_case("unordered_map outside sim state ok", "src/workloads/npb.cpp",
              "std::unordered_map<int, int> m;\n", "unordered-in-sim-state",
              0);
  t.lint_case("unordered_map in obs flagged", "src/obs/metrics.cpp",
              "std::unordered_map<int, int> m;\n", "unordered-in-sim-state",
              1);
  t.lint_case("unordered_map in sweep flagged", "src/sweep/sweep.cpp",
              "std::unordered_map<int, int> m;\n", "unordered-in-sim-state",
              1);
  t.lint_case("flat_map in sim state ok", "src/sim/engine.h",
              "#pragma once\n#include \"common/flat_map.h\"\n"
              "soc::flat_map<int, int> pending;\n",
              "unordered-in-sim-state", 0);
  t.lint_case("flat_map next to unordered still flags the unordered",
              "src/sim/engine.h",
              "soc::flat_map<int, int> ok;\nstd::unordered_map<int, int> m;\n",
              "unordered-in-sim-state", 1);
  t.lint_case("unordered_map in prof flagged", "src/prof/whatif.cpp",
              "std::unordered_map<int, int> m;\n", "unordered-in-sim-state",
              1);
  t.lint_case("flat_map in prof ok", "src/prof/profiler.cpp",
              "#include \"common/flat_map.h\"\n"
              "soc::flat_map<int, int> pending;\n",
              "unordered-in-sim-state", 0);

  // Layering cases live in passes_self_test() now (passes.cpp), where
  // the include-graph pass — which owns the rule — is exercised directly.

  // pragma-once.
  t.lint_case("header without pragma once flagged", "src/mem/dram.h",
              "struct Dram {};\n", "pragma-once", 1);
  t.lint_case("header with pragma once ok", "src/mem/dram.h",
              "#pragma once\nstruct Dram {};\n", "pragma-once", 0);
  t.lint_case("source file exempt", "src/mem/dram.cpp", "struct Dram {};\n",
              "pragma-once", 0);

  // soc-check-message.
  t.lint_case("empty message flagged", "src/sim/x.cpp",
              "SOC_CHECK(a > 0, \"\");\n", "soc-check-message", 1);
  t.lint_case("missing message flagged", "src/sim/x.cpp",
              "SOC_CHECK(a > 0);\n", "soc-check-message", 1);
  t.lint_case("good message ok", "src/sim/x.cpp",
              "SOC_CHECK(a > 0, \"a must be positive\");\n",
              "soc-check-message", 0);
  t.lint_case("multi-line call ok", "src/sim/x.cpp",
              "SOC_CHECK(a > 0 &&\n          b > 0,\n          \"sizes\");\n",
              "soc-check-message", 0);
  t.lint_case("comma inside args handled", "src/sim/x.cpp",
              "SOC_CHECK(f(a, b), \"f failed\");\n", "soc-check-message", 0);
  t.lint_case("macro definition exempt", "src/common/error.h",
              "#pragma once\n#define SOC_CHECK(cond, msg) do {} while (0)\n",
              "soc-check-message", 0);

  if (t.failures == 0) {
    std::printf("soclint self-test: all cases passed\n");
  }
  return t.failures;
}

}  // namespace soclint
