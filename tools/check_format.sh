#!/usr/bin/env sh
# Format gate: clang-format --dry-run over every first-party C++ source.
# Check-only — this script never rewrites a file; run
#   clang-format -i $(git ls-files '*.h' '*.cpp')
# yourself to apply.  Exits 0 clean, 1 on violations, and 77 (the ctest
# skip code) when clang-format is not installed.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root" || exit 1

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not found; skipping" >&2
  exit 77
fi

files=$(find src bench tests tools examples \
        -name '*.h' -o -name '*.cpp' 2>/dev/null | sort)
if [ -z "$files" ]; then
  echo "check_format: no sources found" >&2
  exit 1
fi

# shellcheck disable=SC2086
if clang-format --dry-run -Werror $files; then
  echo "check_format: clean ($(echo "$files" | wc -l | tr -d ' ') files)"
  exit 0
fi
echo "check_format: formatting violations found (see above)" >&2
exit 1
