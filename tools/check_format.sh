#!/usr/bin/env sh
# Format gate: clang-format --dry-run over every first-party C++ source.
# Check-only — this script never rewrites a file; run
#   clang-format -i $(git ls-files '*.h' '*.cpp')
# yourself to apply.
#
# Exit status: 0 clean, 1 on violations.  When clang-format is missing the
# behavior depends on where we run: in CI (the CI environment variable is
# set, as GitHub Actions always does) a missing formatter is a broken gate
# and fails loudly with exit 1; on developer machines it exits 77 (the
# ctest skip code) so a box without LLVM still runs the rest of the suite.
# Set SOC_ALLOW_MISSING_CLANG_FORMAT=1 to force the quiet 77 skip anywhere
# (e.g. a CI job that deliberately has no formatter).
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root" || exit 1

if ! command -v clang-format >/dev/null 2>&1; then
  if [ "${SOC_ALLOW_MISSING_CLANG_FORMAT:-}" = "1" ]; then
    echo "check_format: clang-format not found; skipping (explicitly allowed)" >&2
    exit 77
  fi
  if [ -n "${CI:-}" ]; then
    echo "check_format: clang-format not found but CI is set -- the format" >&2
    echo "check_format: gate must not silently skip in CI; install" >&2
    echo "check_format: clang-format or set SOC_ALLOW_MISSING_CLANG_FORMAT=1" >&2
    exit 1
  fi
  echo "check_format: clang-format not found; skipping" >&2
  exit 77
fi

# tools/soclint/testdata holds deliberate lint fixtures; keep them out of
# the format sweep too so fixture layout stays frozen.
files=$(find src bench tests tools examples \
        \( -path 'tools/soclint/testdata' -prune \) -o \
        \( -name '*.h' -o -name '*.cpp' \) -print 2>/dev/null | sort)
if [ -z "$files" ]; then
  echo "check_format: no sources found" >&2
  exit 1
fi

# shellcheck disable=SC2086
if clang-format --dry-run -Werror $files; then
  echo "check_format: clean ($(echo "$files" | wc -l | tr -d ' ') files)"
  exit 0
fi
echo "check_format: formatting violations found (see above)" >&2
exit 1
