// AI inference cluster demo: the paper's motivating emerging workload.
//
// Classifies a (synthetic) ImageNet batch with AlexNet and GoogLeNet on
// three systems — a TX1 cluster at two sizes and the Xeon + 2× GTX 980
// scale-up box — and shows the CPU/GPU balance story of Figs 9-10.
// Also runs the *functional* DNN kernels on a tiny image to demonstrate
// that the layer math behind the model is real.
//
//   $ ./build/examples/ai_cluster
#include <cstdio>

#include "cluster/cluster.h"
#include "common/table.h"
#include "net/network.h"
#include "systems/machines.h"
#include "workloads/dnn_workloads.h"
#include "workloads/kernels/dnn.h"

int main() {
  using namespace soc;

  // --- Functional sanity: a real forward pass on real arithmetic. ---
  using workloads::kernels::Tensor;
  Tensor img(3, 32, 32);
  for (std::size_t i = 0; i < img.data.size(); ++i) {
    img.data[i] = static_cast<float>((i * 37) % 255) / 255.0f;
  }
  Tensor c1 = workloads::kernels::conv2d(img, 8, 5, 1, 1);
  workloads::kernels::relu(c1);
  const Tensor p1 = workloads::kernels::maxpool(c1, 2);
  const auto logits = workloads::kernels::fully_connected(p1, 10, 2);
  const auto probs = workloads::kernels::softmax(logits);
  std::size_t best = 0;
  for (std::size_t i = 1; i < probs.size(); ++i) {
    if (probs[i] > probs[best]) best = i;
  }
  std::printf("functional check: tiny CNN classifies the test image as "
              "class %zu (p=%.3f)\n\n", best, probs[best]);

  // --- Cluster-level study. ---
  struct System {
    const char* label;
    cluster::Cluster cluster;
    double core_ghz;
  };
  const System systems[] = {
      {"TX1 x4 (10GbE)",
       cluster::Cluster(cluster::ClusterConfig{
           systems::jetson_tx1(net::NicKind::kTenGigabit), 4, 16}),
       1.73},
      {"TX1 x16 (10GbE)",
       cluster::Cluster(cluster::ClusterConfig{
           systems::jetson_tx1(net::NicKind::kTenGigabit), 16, 64}),
       1.73},
      {"Xeon + 2x GTX980",
       cluster::Cluster(cluster::ClusterConfig{systems::xeon_gtx980(), 2, 16}),
       2.4},
  };

  for (const auto network : {workloads::DnnWorkload::Network::kAlexNet,
                             workloads::DnnWorkload::Network::kGoogLeNet}) {
    const workloads::DnnWorkload workload(network);
    std::printf("%s (%.1f GFLOP/image forward pass, %d images)\n",
                workload.name().c_str(), workload.flops_per_image() / 1e9,
                4096);
    TextTable table({"system", "runtime (s)", "images/s", "energy (kJ)",
                     "avg W", "CPU core-s/s"});
    for (const System& s : systems) {
      const cluster::RunResult r = s.cluster.run(workload);
      double cpu_busy = 0.0;
      for (const sim::RankStats& rs : r.stats.ranks) {
        cpu_busy += to_seconds(rs.cpu_busy);
      }
      table.add_row({s.label, TextTable::num(r.seconds, 2),
                     TextTable::num(4096.0 / r.seconds, 0),
                     TextTable::num(r.joules / 1e3, 2),
                     TextTable::num(r.average_watts, 0),
                     TextTable::num(cpu_busy / r.seconds, 1)});
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf(
      "The 16-node SoC cluster matches the discrete GPUs' SM count but\n"
      "brings 64 decode cores instead of 16 — the CPU/GPU balance that\n"
      "wins image classification on both runtime and energy (Figs 9-10).\n");
  return 0;
}
