// Quickstart: build a 4-node Jetson TX1 cluster with 10GbE, run the
// jacobi solver on it, and print runtime, throughput, energy, and where
// the run sits on the extended Roofline model.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "cluster/cluster.h"
#include "core/extended_roofline.h"
#include "net/network.h"
#include "systems/machines.h"
#include "workloads/workload.h"

int main() {
  using namespace soc;

  // 1. Describe the cluster: 4 Jetson TX1 nodes, one MPI rank per node
  //    driving the integrated GPU, connected by the PCIe 10GbE cards.
  const systems::NodeConfig node = systems::jetson_tx1(net::NicKind::kTenGigabit);
  cluster::Cluster tx1(cluster::ClusterConfig{node, /*nodes=*/4, /*ranks=*/4});

  // 2. Pick a workload from ClusterSoCBench and run it.
  const auto jacobi = workloads::make_workload("jacobi");
  cluster::RunOptions options;
  options.size_scale = 0.25;  // keep the quickstart snappy
  const cluster::RunResult result = tx1.run(*jacobi, options);

  std::printf("jacobi on 4x TX1 (10GbE)\n");
  std::printf("  runtime        : %.2f s\n", result.seconds);
  std::printf("  throughput     : %.2f GFLOP/s\n", result.gflops);
  std::printf("  energy         : %.0f J (avg %.1f W)\n", result.joules,
              result.average_watts);
  std::printf("  efficiency     : %.1f MFLOPS/W\n", result.mflops_per_watt);
  std::printf("  net traffic    : %.3f GB\n",
              static_cast<double>(result.stats.total_net_bytes) / 1e9);
  std::printf("  DRAM traffic   : %.1f GB\n",
              static_cast<double>(result.stats.total_dram_bytes) / 1e9);

  // 3. Place the run on the paper's extended Roofline model (Eqs. 1-3).
  core::ExtendedRoofline model;
  model.peak_flops = node.gpu.peak_dp_flops();
  model.memory_bandwidth = node.dram.gpu_bandwidth;
  model.network_bandwidth = node.nic.effective_bandwidth;
  const core::RooflineMeasurement m =
      core::measure_roofline(model, result.stats, 4, "jacobi");
  std::printf("\nextended roofline position\n");
  std::printf("  operational intensity : %.3f FLOP/B\n",
              m.operational_intensity);
  std::printf("  network intensity     : %.1f FLOP/B\n", m.network_intensity);
  std::printf("  attainable            : %.2f GFLOP/s per node\n",
              m.attainable_flops / 1e9);
  std::printf("  achieved              : %.2f GFLOP/s per node (%.0f%%)\n",
              m.achieved_flops / 1e9, m.percent_of_peak);
  std::printf("  limited by            : %s intensity\n",
              core::limit_name(m.limit));
  return 0;
}
