// Scalability explorer: pick any workload and see WHY it scales the way
// it does — the paper's LB/Ser/Trf efficiency decomposition (Eq. 4) at
// each cluster size, plus the fitted extrapolation to 256 nodes.
//
//   $ ./build/examples/scalability_explorer tealeaf3d
//   $ ./build/examples/scalability_explorer cg 0.5
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cluster/cluster.h"
#include "common/error.h"
#include "common/table.h"
#include "core/efficiency.h"
#include "core/scaling.h"
#include "net/network.h"
#include "systems/machines.h"
#include "workloads/workload.h"

int main(int argc, char** argv) {
  using namespace soc;
  const std::string name = argc > 1 ? argv[1] : "tealeaf3d";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

  std::unique_ptr<workloads::Workload> workload;
  try {
    workload = workloads::make_workload(name);
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\nknown workloads:", e.what());
    for (const std::string& n : workloads::list()) {
      std::fprintf(stderr, " %s", n.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  cluster::RunOptions options;
  options.size_scale = scale;

  TextTable table({"nodes", "runtime (s)", "LB", "Ser", "Trf", "efficiency",
                   "speedup vs 2"});
  std::vector<core::ScalingSample> samples;
  double t2 = 0.0;
  for (int nodes : {2, 4, 8, 16}) {
    int ranks = nodes;
    if (name == "alexnet" || name == "googlenet") ranks = 4 * nodes;
    if (!workload->gpu_accelerated()) ranks = 2 * nodes;
    const cluster::Cluster tx(cluster::ClusterConfig{
        systems::jetson_tx1(net::NicKind::kTenGigabit), nodes, ranks});
    const auto runs = tx.replay_scenarios(*workload, options);
    const core::EfficiencyDecomposition d = core::decompose(runs);
    const double seconds = runs.measured.seconds();
    if (nodes == 2) t2 = seconds;
    samples.push_back(core::ScalingSample{nodes, seconds});
    table.add_row({std::to_string(nodes), TextTable::num(seconds, 2),
                   TextTable::num(d.load_balance, 3),
                   TextTable::num(d.serialization, 3),
                   TextTable::num(d.transfer, 3),
                   TextTable::num(d.efficiency, 3),
                   TextTable::num(t2 / seconds, 2)});
  }
  std::printf("%s on TX1 + 10GbE (size_scale=%.2f)\n\n%s\n", name.c_str(),
              scale, table.str().c_str());

  const core::ScalingModel model = core::fit_scaling(samples);
  std::printf("extrapolated speedup (vs 1 node, r2=%.3f): ", model.r2);
  for (int n : {32, 64, 128, 256}) {
    std::printf("S(%d)=%.1f  ", n, model.predict_speedup(n));
  }
  std::printf("\n");

  // What dominates? Point the user at the bottleneck the way §III-B.4 does.
  const auto runs = cluster::Cluster(
                        cluster::ClusterConfig{
                            systems::jetson_tx1(net::NicKind::kTenGigabit),
                            16,
                            workload->gpu_accelerated()
                                ? (name == "alexnet" || name == "googlenet"
                                       ? 64
                                       : 16)
                                : 32})
                        .replay_scenarios(*workload, options);
  const core::EfficiencyDecomposition d = core::decompose(runs);
  const char* bottleneck = "well balanced";
  if (d.transfer <= d.load_balance && d.transfer <= d.serialization) {
    bottleneck = "network transfer (Trf)";
  } else if (d.load_balance <= d.serialization) {
    bottleneck = "load imbalance (LB)";
  } else {
    bottleneck = "serialization / host-device sync (Ser)";
  }
  std::printf("dominant bottleneck at 16 nodes: %s\n", bottleneck);
  return 0;
}
