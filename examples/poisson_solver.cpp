// Poisson solver walkthrough: the same problem solved three ways with the
// library's functional kernels — Jacobi iteration, conjugate gradient on
// the 5-point operator, and geometric multigrid — then projected onto the
// simulated cluster to estimate time-to-solution at several node counts.
//
// Demonstrates that the workload models are backed by real numerics: the
// FLOP formulas the simulator uses are the ones these kernels execute.
//
//   $ ./build/examples/poisson_solver
#include <cmath>
#include <cstdio>

#include "cluster/cluster.h"
#include "common/table.h"
#include "net/network.h"
#include "systems/machines.h"
#include "workloads/kernels/multigrid.h"
#include "workloads/kernels/sparse.h"
#include "workloads/kernels/stencil.h"
#include "workloads/scientific.h"

int main() {
  using namespace soc;
  using namespace soc::workloads::kernels;

  const std::size_t n = 63;  // 2^6 - 1 so multigrid coarsens fully
  const double h = 1.0 / (n + 1);

  std::printf("Solving the Poisson equation on a %zux%zu grid three ways\n\n",
              n, n);
  TextTable table({"method", "iterations", "work units", "residual"});

  // 1. Jacobi (the jacobi workload's kernel).
  {
    Grid2D u(n, n, 0.0);
    Grid2D f(n, n, 1.0);
    const int iters = jacobi_solve(u, f, h, 1e-7, 50'000);
    table.add_row({"jacobi", std::to_string(iters),
                   TextTable::num(jacobi_flops_per_point() *
                                      static_cast<double>(n * n) * iters / 1e6,
                                  1) + " MFLOP",
                   "(update < 1e-7)"});
  }

  // 2. Conjugate gradient on the 5-point operator (tealeaf's solver).
  {
    const CsrMatrix a = make_laplacian_2d(n, n, 1.0);
    std::vector<double> b(a.n, h * h);
    std::vector<double> x(a.n, 0.0);
    const CgResult r = conjugate_gradient(a, b, x, 1e-10, 2000);
    table.add_row({"conjugate gradient", std::to_string(r.iterations),
                   TextTable::num(cg_iteration_flops(
                                      static_cast<double>(a.n),
                                      static_cast<double>(a.nonzeros())) *
                                      r.iterations / 1e6,
                                  1) + " MFLOP",
                   TextTable::eng(r.residual_norm)});
  }

  // 3. Geometric multigrid (NPB mg's algorithm).
  {
    Grid2D u(n, n, 0.0);
    Grid2D f(n, n, 1.0);
    int cycles = 0;
    double r = mg_residual_norm(u, f, h);
    const double target = r * 1e-8;
    while (r > target && cycles < 30) {
      r = mg_vcycle(u, f, h, 3);
      ++cycles;
    }
    table.add_row({"multigrid V-cycles", std::to_string(cycles),
                   std::to_string(mg_levels(n, 3)) + " levels",
                   TextTable::eng(r)});
  }
  std::printf("%s\n", table.str().c_str());

  // Project the full-size jacobi workload onto clusters of several sizes.
  std::printf("Projected time-to-solution for the paper-scale jacobi run\n");
  TextTable proj({"nodes", "NIC", "runtime (s)", "GFLOP/s", "MFLOPS/W"});
  for (int nodes : {2, 8, 16}) {
    for (net::NicKind nic :
         {net::NicKind::kGigabit, net::NicKind::kTenGigabit}) {
      const cluster::Cluster tx(cluster::ClusterConfig{
          systems::jetson_tx1(nic), nodes, nodes});
      const auto result = tx.run(workloads::JacobiWorkload());
      proj.add_row({std::to_string(nodes),
                    nic == net::NicKind::kGigabit ? "1GbE" : "10GbE",
                    TextTable::num(result.seconds, 1),
                    TextTable::num(result.gflops, 1),
                    TextTable::num(result.mflops_per_watt, 0)});
    }
  }
  std::printf("%s", proj.str().c_str());
  return 0;
}
