// Network upgrade study: what does swapping the Jetson's on-board 1GbE
// for the PCIe 10GbE card buy, per workload?  This is the experiment
// behind the paper's headline result (Figs 1-2): network-intensive
// workloads speed up dramatically, compute-local ones don't, and the
// extra 5 W per node pays for itself in total energy whenever runtime
// drops more than a few percent.
//
//   $ ./build/examples/network_upgrade_study [nodes] [size_scale]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cluster/cluster.h"
#include "common/table.h"
#include "net/network.h"
#include "systems/machines.h"
#include "workloads/workload.h"

namespace {

soc::cluster::Cluster make_cluster(soc::net::NicKind nic, int nodes,
                                   int ranks) {
  return soc::cluster::Cluster(soc::cluster::ClusterConfig{
      soc::systems::jetson_tx1(nic), nodes, ranks});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace soc;
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 8;
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

  TextTable table({"workload", "1GbE (s)", "10GbE (s)", "speedup",
                   "energy 1G (kJ)", "energy 10G (kJ)", "energy ratio"});

  for (const std::string& name : workloads::list()) {
    const auto workload = workloads::make_workload(name);
    // GPU workloads drive one rank per node; the DNNs use all four cores
    // as decode workers; NPB runs 2 ranks per node.
    int ranks = nodes;
    if (name == "alexnet" || name == "googlenet") ranks = 4 * nodes;
    if (!workload->gpu_accelerated()) ranks = 2 * nodes;

    cluster::RunOptions options;
    options.size_scale = scale;

    const auto slow = make_cluster(net::NicKind::kGigabit, nodes, ranks)
                          .run(*workload, options);
    const auto fast = make_cluster(net::NicKind::kTenGigabit, nodes, ranks)
                          .run(*workload, options);

    table.add_row({name, TextTable::num(slow.seconds, 1),
                   TextTable::num(fast.seconds, 1),
                   TextTable::num(slow.seconds / fast.seconds, 2),
                   TextTable::num(slow.joules / 1e3, 2),
                   TextTable::num(fast.joules / 1e3, 2),
                   TextTable::num(fast.joules / slow.joules, 2)});
  }

  std::printf("1GbE vs 10GbE on a %d-node TX1 cluster (size_scale=%.2f)\n\n%s",
              nodes, scale, table.str().c_str());
  return 0;
}
