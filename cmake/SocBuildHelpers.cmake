# Shared build conventions for all soccluster targets.
#
# Sanitizer wiring: configure with
#
#   cmake -B build -S . -DSOC_SANITIZE="address;undefined"   # or "thread"
#
# and every library, test, bench, example, and tool is instrumented.
# `address`, `undefined`, `thread`, and `leak` are accepted (comma- or
# semicolon-separated); `thread` cannot be combined with `address`/`leak`.
# Errors are fatal (-fno-sanitize-recover) so an instrumented ctest run
# fails loudly instead of printing-and-passing.

set(SOC_SANITIZE "" CACHE STRING
    "Sanitizers to instrument with: address;undefined;thread;leak (empty = none)")

set(SOC_SANITIZE_FLAGS "")
if(SOC_SANITIZE)
  string(REPLACE "," ";" _soc_san_list "${SOC_SANITIZE}")
  set(_soc_san_names "")
  foreach(_san IN LISTS _soc_san_list)
    string(STRIP "${_san}" _san)
    if(NOT _san MATCHES "^(address|undefined|thread|leak)$")
      message(FATAL_ERROR
          "SOC_SANITIZE: unknown sanitizer '${_san}' "
          "(expected address, undefined, thread, or leak)")
    endif()
    list(APPEND _soc_san_names "${_san}")
  endforeach()
  if("thread" IN_LIST _soc_san_names AND
     ("address" IN_LIST _soc_san_names OR "leak" IN_LIST _soc_san_names))
    message(FATAL_ERROR
        "SOC_SANITIZE: 'thread' cannot be combined with 'address'/'leak'")
  endif()
  list(JOIN _soc_san_names "," _soc_san_joined)
  set(SOC_SANITIZE_FLAGS
      -fsanitize=${_soc_san_joined}
      -fno-omit-frame-pointer
      -fno-sanitize-recover=all)
  message(STATUS "soccluster: sanitizers enabled (${_soc_san_joined})")
endif()

# Clang thread-safety analysis: configure with
#
#   CC=clang CXX=clang++ cmake -B build -S . -DSOC_WERROR_THREAD_SAFETY=ON
#
# and every target is compiled with -Wthread-safety promoted to an error,
# checking the SOC_GUARDED_BY/SOC_REQUIRES annotations from
# src/common/thread_safety.h.  The option is Clang-only (GCC has no such
# analysis); enabling it elsewhere fails the configure loudly rather than
# pretending the gate ran.  CI turns this on for its Clang build.
option(SOC_WERROR_THREAD_SAFETY
    "Promote Clang -Wthread-safety findings to errors (Clang builds only)"
    OFF)

set(SOC_THREAD_SAFETY_FLAGS "")
if(SOC_WERROR_THREAD_SAFETY)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(FATAL_ERROR
        "SOC_WERROR_THREAD_SAFETY requires Clang (got "
        "${CMAKE_CXX_COMPILER_ID}); configure with CC=clang CXX=clang++ "
        "or drop the option")
  endif()
  set(SOC_THREAD_SAFETY_FLAGS -Wthread-safety -Werror=thread-safety)
  message(STATUS "soccluster: Clang thread-safety analysis enforced")
endif()

# Applies the project-wide warning set and sanitizer instrumentation to one
# target.  Every target created through the soc_add_* helpers gets this;
# call it directly for targets declared with raw add_executable.
function(soc_target_conventions target)
  target_compile_options(${target} PRIVATE -Wall -Wextra)
  if(SOC_THREAD_SAFETY_FLAGS)
    target_compile_options(${target} PRIVATE ${SOC_THREAD_SAFETY_FLAGS})
  endif()
  if(SOC_SANITIZE_FLAGS)
    target_compile_options(${target} PRIVATE ${SOC_SANITIZE_FLAGS})
    target_link_options(${target} PRIVATE ${SOC_SANITIZE_FLAGS})
  endif()
endfunction()

# Declares one soccluster module library.
#
#   soc_add_library(soc_sim SOURCES engine.cpp ... DEPS soc_common)
#
# Modules are static libraries rooted at src/ (includes are written as
# "module/header.h"); DEPS name the modules this one may include from —
# tools/soclint enforces the same layering statically.
function(soc_add_library name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  if(NOT ARG_SOURCES)
    message(FATAL_ERROR "soc_add_library(${name}): SOURCES is required")
  endif()
  add_library(${name} ${ARG_SOURCES})
  target_include_directories(${name} PUBLIC ${PROJECT_SOURCE_DIR}/src)
  if(ARG_DEPS)
    target_link_libraries(${name} PUBLIC ${ARG_DEPS})
  endif()
  soc_target_conventions(${name})
endfunction()

# Declares one executable (bench, example, or tool) linked against the
# given soccluster modules.
function(soc_add_executable name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  if(NOT ARG_SOURCES)
    message(FATAL_ERROR "soc_add_executable(${name}): SOURCES is required")
  endif()
  add_executable(${name} ${ARG_SOURCES})
  if(ARG_DEPS)
    target_link_libraries(${name} PRIVATE ${ARG_DEPS})
  endif()
  soc_target_conventions(${name})
endfunction()
