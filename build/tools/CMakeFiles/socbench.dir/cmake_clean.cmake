file(REMOVE_RECURSE
  "CMakeFiles/socbench.dir/socbench.cpp.o"
  "CMakeFiles/socbench.dir/socbench.cpp.o.d"
  "socbench"
  "socbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
