# Empty compiler generated dependencies file for socbench.
# This may be replaced when dependencies are built.
