# Empty dependencies file for ai_cluster.
# This may be replaced when dependencies are built.
