file(REMOVE_RECURSE
  "CMakeFiles/ai_cluster.dir/ai_cluster.cpp.o"
  "CMakeFiles/ai_cluster.dir/ai_cluster.cpp.o.d"
  "ai_cluster"
  "ai_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ai_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
