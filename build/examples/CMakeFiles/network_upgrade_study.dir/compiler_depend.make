# Empty compiler generated dependencies file for network_upgrade_study.
# This may be replaced when dependencies are built.
