file(REMOVE_RECURSE
  "CMakeFiles/network_upgrade_study.dir/network_upgrade_study.cpp.o"
  "CMakeFiles/network_upgrade_study.dir/network_upgrade_study.cpp.o.d"
  "network_upgrade_study"
  "network_upgrade_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_upgrade_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
