# Empty compiler generated dependencies file for table6_fig8_cavium.
# This may be replaced when dependencies are built.
