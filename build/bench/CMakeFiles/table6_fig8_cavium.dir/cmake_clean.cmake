file(REMOVE_RECURSE
  "CMakeFiles/table6_fig8_cavium.dir/table6_fig8_cavium.cpp.o"
  "CMakeFiles/table6_fig8_cavium.dir/table6_fig8_cavium.cpp.o.d"
  "table6_fig8_cavium"
  "table6_fig8_cavium.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_fig8_cavium.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
