# Empty dependencies file for fig5_scalability_gpu.
# This may be replaced when dependencies are built.
