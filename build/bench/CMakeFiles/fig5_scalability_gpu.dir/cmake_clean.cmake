file(REMOVE_RECURSE
  "CMakeFiles/fig5_scalability_gpu.dir/fig5_scalability_gpu.cpp.o"
  "CMakeFiles/fig5_scalability_gpu.dir/fig5_scalability_gpu.cpp.o.d"
  "fig5_scalability_gpu"
  "fig5_scalability_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_scalability_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
