# Empty dependencies file for fig6_scalability_npb.
# This may be replaced when dependencies are built.
