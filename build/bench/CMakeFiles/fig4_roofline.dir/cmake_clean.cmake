file(REMOVE_RECURSE
  "CMakeFiles/fig4_roofline.dir/fig4_roofline.cpp.o"
  "CMakeFiles/fig4_roofline.dir/fig4_roofline.cpp.o.d"
  "fig4_roofline"
  "fig4_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
