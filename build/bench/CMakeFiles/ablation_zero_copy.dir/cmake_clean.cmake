file(REMOVE_RECURSE
  "CMakeFiles/ablation_zero_copy.dir/ablation_zero_copy.cpp.o"
  "CMakeFiles/ablation_zero_copy.dir/ablation_zero_copy.cpp.o.d"
  "ablation_zero_copy"
  "ablation_zero_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_zero_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
