file(REMOVE_RECURSE
  "CMakeFiles/fig1_2_network_choice.dir/fig1_2_network_choice.cpp.o"
  "CMakeFiles/fig1_2_network_choice.dir/fig1_2_network_choice.cpp.o.d"
  "fig1_2_network_choice"
  "fig1_2_network_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_2_network_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
