# Empty dependencies file for fig1_2_network_choice.
# This may be replaced when dependencies are built.
