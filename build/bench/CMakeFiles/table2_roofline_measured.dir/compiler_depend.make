# Empty compiler generated dependencies file for table2_roofline_measured.
# This may be replaced when dependencies are built.
