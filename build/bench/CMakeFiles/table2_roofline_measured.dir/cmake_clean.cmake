file(REMOVE_RECURSE
  "CMakeFiles/table2_roofline_measured.dir/table2_roofline_measured.cpp.o"
  "CMakeFiles/table2_roofline_measured.dir/table2_roofline_measured.cpp.o.d"
  "table2_roofline_measured"
  "table2_roofline_measured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_roofline_measured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
