# Empty compiler generated dependencies file for fig3_traffic.
# This may be replaced when dependencies are built.
