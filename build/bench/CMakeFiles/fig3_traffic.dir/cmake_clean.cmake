file(REMOVE_RECURSE
  "CMakeFiles/fig3_traffic.dir/fig3_traffic.cpp.o"
  "CMakeFiles/fig3_traffic.dir/fig3_traffic.cpp.o.d"
  "fig3_traffic"
  "fig3_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
