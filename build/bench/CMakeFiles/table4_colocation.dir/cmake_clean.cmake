file(REMOVE_RECURSE
  "CMakeFiles/table4_colocation.dir/table4_colocation.cpp.o"
  "CMakeFiles/table4_colocation.dir/table4_colocation.cpp.o.d"
  "table4_colocation"
  "table4_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
