# Empty compiler generated dependencies file for table4_colocation.
# This may be replaced when dependencies are built.
