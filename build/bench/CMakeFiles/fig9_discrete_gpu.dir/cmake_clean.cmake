file(REMOVE_RECURSE
  "CMakeFiles/fig9_discrete_gpu.dir/fig9_discrete_gpu.cpp.o"
  "CMakeFiles/fig9_discrete_gpu.dir/fig9_discrete_gpu.cpp.o.d"
  "fig9_discrete_gpu"
  "fig9_discrete_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_discrete_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
