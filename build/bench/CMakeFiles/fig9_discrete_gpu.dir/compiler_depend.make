# Empty compiler generated dependencies file for fig9_discrete_gpu.
# This may be replaced when dependencies are built.
