file(REMOVE_RECURSE
  "CMakeFiles/extension_dvfs.dir/extension_dvfs.cpp.o"
  "CMakeFiles/extension_dvfs.dir/extension_dvfs.cpp.o.d"
  "extension_dvfs"
  "extension_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
