# Empty compiler generated dependencies file for extension_dvfs.
# This may be replaced when dependencies are built.
