file(REMOVE_RECURSE
  "CMakeFiles/fig10_ai_balance.dir/fig10_ai_balance.cpp.o"
  "CMakeFiles/fig10_ai_balance.dir/fig10_ai_balance.cpp.o.d"
  "fig10_ai_balance"
  "fig10_ai_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ai_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
