# Empty dependencies file for fig10_ai_balance.
# This may be replaced when dependencies are built.
