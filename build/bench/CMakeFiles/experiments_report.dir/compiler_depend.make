# Empty compiler generated dependencies file for experiments_report.
# This may be replaced when dependencies are built.
