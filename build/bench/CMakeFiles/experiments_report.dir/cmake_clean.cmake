file(REMOVE_RECURSE
  "CMakeFiles/experiments_report.dir/experiments_report.cpp.o"
  "CMakeFiles/experiments_report.dir/experiments_report.cpp.o.d"
  "experiments_report"
  "experiments_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiments_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
