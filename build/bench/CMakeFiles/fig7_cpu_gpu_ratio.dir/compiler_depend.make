# Empty compiler generated dependencies file for fig7_cpu_gpu_ratio.
# This may be replaced when dependencies are built.
