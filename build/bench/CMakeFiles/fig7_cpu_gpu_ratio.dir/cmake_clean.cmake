file(REMOVE_RECURSE
  "CMakeFiles/fig7_cpu_gpu_ratio.dir/fig7_cpu_gpu_ratio.cpp.o"
  "CMakeFiles/fig7_cpu_gpu_ratio.dir/fig7_cpu_gpu_ratio.cpp.o.d"
  "fig7_cpu_gpu_ratio"
  "fig7_cpu_gpu_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cpu_gpu_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
