# Empty compiler generated dependencies file for table3_memory_models.
# This may be replaced when dependencies are built.
