file(REMOVE_RECURSE
  "CMakeFiles/table1_5_7_configs.dir/table1_5_7_configs.cpp.o"
  "CMakeFiles/table1_5_7_configs.dir/table1_5_7_configs.cpp.o.d"
  "table1_5_7_configs"
  "table1_5_7_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_5_7_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
