# Empty compiler generated dependencies file for table1_5_7_configs.
# This may be replaced when dependencies are built.
