
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_5_7_configs.cpp" "bench/CMakeFiles/table1_5_7_configs.dir/table1_5_7_configs.cpp.o" "gcc" "bench/CMakeFiles/table1_5_7_configs.dir/table1_5_7_configs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/soc_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/soc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/systems/CMakeFiles/soc_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/soc_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/soc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/soc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/soc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/soc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/soc_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/soc_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/soc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/soc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/soc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/soc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
