# Empty compiler generated dependencies file for extension_topology.
# This may be replaced when dependencies are built.
