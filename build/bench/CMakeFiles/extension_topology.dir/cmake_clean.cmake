file(REMOVE_RECURSE
  "CMakeFiles/extension_topology.dir/extension_topology.cpp.o"
  "CMakeFiles/extension_topology.dir/extension_topology.cpp.o.d"
  "extension_topology"
  "extension_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
