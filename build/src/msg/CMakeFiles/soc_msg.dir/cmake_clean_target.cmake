file(REMOVE_RECURSE
  "libsoc_msg.a"
)
