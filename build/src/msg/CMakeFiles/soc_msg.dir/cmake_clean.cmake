file(REMOVE_RECURSE
  "CMakeFiles/soc_msg.dir/collectives.cpp.o"
  "CMakeFiles/soc_msg.dir/collectives.cpp.o.d"
  "CMakeFiles/soc_msg.dir/program_set.cpp.o"
  "CMakeFiles/soc_msg.dir/program_set.cpp.o.d"
  "libsoc_msg.a"
  "libsoc_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
