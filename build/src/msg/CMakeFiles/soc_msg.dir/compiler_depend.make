# Empty compiler generated dependencies file for soc_msg.
# This may be replaced when dependencies are built.
