
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msg/collectives.cpp" "src/msg/CMakeFiles/soc_msg.dir/collectives.cpp.o" "gcc" "src/msg/CMakeFiles/soc_msg.dir/collectives.cpp.o.d"
  "/root/repo/src/msg/program_set.cpp" "src/msg/CMakeFiles/soc_msg.dir/program_set.cpp.o" "gcc" "src/msg/CMakeFiles/soc_msg.dir/program_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/soc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/soc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
