file(REMOVE_RECURSE
  "CMakeFiles/soc_mem.dir/dram.cpp.o"
  "CMakeFiles/soc_mem.dir/dram.cpp.o.d"
  "libsoc_mem.a"
  "libsoc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
