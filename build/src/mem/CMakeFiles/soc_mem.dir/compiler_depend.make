# Empty compiler generated dependencies file for soc_mem.
# This may be replaced when dependencies are built.
