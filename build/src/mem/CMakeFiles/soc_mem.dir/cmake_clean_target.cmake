file(REMOVE_RECURSE
  "libsoc_mem.a"
)
