file(REMOVE_RECURSE
  "libsoc_stats.a"
)
