file(REMOVE_RECURSE
  "CMakeFiles/soc_stats.dir/descriptive.cpp.o"
  "CMakeFiles/soc_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/soc_stats.dir/linreg.cpp.o"
  "CMakeFiles/soc_stats.dir/linreg.cpp.o.d"
  "CMakeFiles/soc_stats.dir/lm_fit.cpp.o"
  "CMakeFiles/soc_stats.dir/lm_fit.cpp.o.d"
  "CMakeFiles/soc_stats.dir/matrix.cpp.o"
  "CMakeFiles/soc_stats.dir/matrix.cpp.o.d"
  "CMakeFiles/soc_stats.dir/nnls.cpp.o"
  "CMakeFiles/soc_stats.dir/nnls.cpp.o.d"
  "CMakeFiles/soc_stats.dir/pls.cpp.o"
  "CMakeFiles/soc_stats.dir/pls.cpp.o.d"
  "CMakeFiles/soc_stats.dir/solve.cpp.o"
  "CMakeFiles/soc_stats.dir/solve.cpp.o.d"
  "libsoc_stats.a"
  "libsoc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
