# Empty compiler generated dependencies file for soc_stats.
# This may be replaced when dependencies are built.
