
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/soc_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/soc_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/linreg.cpp" "src/stats/CMakeFiles/soc_stats.dir/linreg.cpp.o" "gcc" "src/stats/CMakeFiles/soc_stats.dir/linreg.cpp.o.d"
  "/root/repo/src/stats/lm_fit.cpp" "src/stats/CMakeFiles/soc_stats.dir/lm_fit.cpp.o" "gcc" "src/stats/CMakeFiles/soc_stats.dir/lm_fit.cpp.o.d"
  "/root/repo/src/stats/matrix.cpp" "src/stats/CMakeFiles/soc_stats.dir/matrix.cpp.o" "gcc" "src/stats/CMakeFiles/soc_stats.dir/matrix.cpp.o.d"
  "/root/repo/src/stats/nnls.cpp" "src/stats/CMakeFiles/soc_stats.dir/nnls.cpp.o" "gcc" "src/stats/CMakeFiles/soc_stats.dir/nnls.cpp.o.d"
  "/root/repo/src/stats/pls.cpp" "src/stats/CMakeFiles/soc_stats.dir/pls.cpp.o" "gcc" "src/stats/CMakeFiles/soc_stats.dir/pls.cpp.o.d"
  "/root/repo/src/stats/solve.cpp" "src/stats/CMakeFiles/soc_stats.dir/solve.cpp.o" "gcc" "src/stats/CMakeFiles/soc_stats.dir/solve.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/soc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
