# Empty compiler generated dependencies file for soc_gpu.
# This may be replaced when dependencies are built.
