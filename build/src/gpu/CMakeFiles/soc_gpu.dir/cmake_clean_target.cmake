file(REMOVE_RECURSE
  "libsoc_gpu.a"
)
