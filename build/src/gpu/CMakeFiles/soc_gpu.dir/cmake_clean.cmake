file(REMOVE_RECURSE
  "CMakeFiles/soc_gpu.dir/device.cpp.o"
  "CMakeFiles/soc_gpu.dir/device.cpp.o.d"
  "CMakeFiles/soc_gpu.dir/occupancy.cpp.o"
  "CMakeFiles/soc_gpu.dir/occupancy.cpp.o.d"
  "libsoc_gpu.a"
  "libsoc_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
