file(REMOVE_RECURSE
  "libsoc_systems.a"
)
