# Empty compiler generated dependencies file for soc_systems.
# This may be replaced when dependencies are built.
