file(REMOVE_RECURSE
  "CMakeFiles/soc_systems.dir/machines.cpp.o"
  "CMakeFiles/soc_systems.dir/machines.cpp.o.d"
  "libsoc_systems.a"
  "libsoc_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
