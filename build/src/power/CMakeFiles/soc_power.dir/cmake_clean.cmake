file(REMOVE_RECURSE
  "CMakeFiles/soc_power.dir/power_model.cpp.o"
  "CMakeFiles/soc_power.dir/power_model.cpp.o.d"
  "libsoc_power.a"
  "libsoc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
