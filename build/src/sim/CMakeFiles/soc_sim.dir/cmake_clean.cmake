file(REMOVE_RECURSE
  "CMakeFiles/soc_sim.dir/engine.cpp.o"
  "CMakeFiles/soc_sim.dir/engine.cpp.o.d"
  "CMakeFiles/soc_sim.dir/event_queue.cpp.o"
  "CMakeFiles/soc_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/soc_sim.dir/op.cpp.o"
  "CMakeFiles/soc_sim.dir/op.cpp.o.d"
  "libsoc_sim.a"
  "libsoc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
