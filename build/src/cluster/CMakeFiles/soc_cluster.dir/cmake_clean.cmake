file(REMOVE_RECURSE
  "CMakeFiles/soc_cluster.dir/cluster.cpp.o"
  "CMakeFiles/soc_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/soc_cluster.dir/cost_model.cpp.o"
  "CMakeFiles/soc_cluster.dir/cost_model.cpp.o.d"
  "libsoc_cluster.a"
  "libsoc_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
