# Empty compiler generated dependencies file for soc_common.
# This may be replaced when dependencies are built.
