file(REMOVE_RECURSE
  "CMakeFiles/soc_common.dir/args.cpp.o"
  "CMakeFiles/soc_common.dir/args.cpp.o.d"
  "CMakeFiles/soc_common.dir/error.cpp.o"
  "CMakeFiles/soc_common.dir/error.cpp.o.d"
  "CMakeFiles/soc_common.dir/parallel.cpp.o"
  "CMakeFiles/soc_common.dir/parallel.cpp.o.d"
  "CMakeFiles/soc_common.dir/rng.cpp.o"
  "CMakeFiles/soc_common.dir/rng.cpp.o.d"
  "CMakeFiles/soc_common.dir/table.cpp.o"
  "CMakeFiles/soc_common.dir/table.cpp.o.d"
  "CMakeFiles/soc_common.dir/units.cpp.o"
  "CMakeFiles/soc_common.dir/units.cpp.o.d"
  "libsoc_common.a"
  "libsoc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
