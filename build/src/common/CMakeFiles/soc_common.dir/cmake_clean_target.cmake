file(REMOVE_RECURSE
  "libsoc_common.a"
)
