file(REMOVE_RECURSE
  "libsoc_net.a"
)
