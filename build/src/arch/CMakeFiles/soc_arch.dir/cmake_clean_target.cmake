file(REMOVE_RECURSE
  "libsoc_arch.a"
)
