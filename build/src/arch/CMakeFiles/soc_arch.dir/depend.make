# Empty dependencies file for soc_arch.
# This may be replaced when dependencies are built.
