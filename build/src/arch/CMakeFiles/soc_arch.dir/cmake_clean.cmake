file(REMOVE_RECURSE
  "CMakeFiles/soc_arch.dir/branch.cpp.o"
  "CMakeFiles/soc_arch.dir/branch.cpp.o.d"
  "CMakeFiles/soc_arch.dir/cache.cpp.o"
  "CMakeFiles/soc_arch.dir/cache.cpp.o.d"
  "CMakeFiles/soc_arch.dir/core_model.cpp.o"
  "CMakeFiles/soc_arch.dir/core_model.cpp.o.d"
  "CMakeFiles/soc_arch.dir/pmu.cpp.o"
  "CMakeFiles/soc_arch.dir/pmu.cpp.o.d"
  "CMakeFiles/soc_arch.dir/streams.cpp.o"
  "CMakeFiles/soc_arch.dir/streams.cpp.o.d"
  "CMakeFiles/soc_arch.dir/tlb.cpp.o"
  "CMakeFiles/soc_arch.dir/tlb.cpp.o.d"
  "libsoc_arch.a"
  "libsoc_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
