
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/branch.cpp" "src/arch/CMakeFiles/soc_arch.dir/branch.cpp.o" "gcc" "src/arch/CMakeFiles/soc_arch.dir/branch.cpp.o.d"
  "/root/repo/src/arch/cache.cpp" "src/arch/CMakeFiles/soc_arch.dir/cache.cpp.o" "gcc" "src/arch/CMakeFiles/soc_arch.dir/cache.cpp.o.d"
  "/root/repo/src/arch/core_model.cpp" "src/arch/CMakeFiles/soc_arch.dir/core_model.cpp.o" "gcc" "src/arch/CMakeFiles/soc_arch.dir/core_model.cpp.o.d"
  "/root/repo/src/arch/pmu.cpp" "src/arch/CMakeFiles/soc_arch.dir/pmu.cpp.o" "gcc" "src/arch/CMakeFiles/soc_arch.dir/pmu.cpp.o.d"
  "/root/repo/src/arch/streams.cpp" "src/arch/CMakeFiles/soc_arch.dir/streams.cpp.o" "gcc" "src/arch/CMakeFiles/soc_arch.dir/streams.cpp.o.d"
  "/root/repo/src/arch/tlb.cpp" "src/arch/CMakeFiles/soc_arch.dir/tlb.cpp.o" "gcc" "src/arch/CMakeFiles/soc_arch.dir/tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/soc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
