file(REMOVE_RECURSE
  "libsoc_trace.a"
)
