file(REMOVE_RECURSE
  "CMakeFiles/soc_trace.dir/chop.cpp.o"
  "CMakeFiles/soc_trace.dir/chop.cpp.o.d"
  "CMakeFiles/soc_trace.dir/export.cpp.o"
  "CMakeFiles/soc_trace.dir/export.cpp.o.d"
  "CMakeFiles/soc_trace.dir/replay.cpp.o"
  "CMakeFiles/soc_trace.dir/replay.cpp.o.d"
  "CMakeFiles/soc_trace.dir/timeline.cpp.o"
  "CMakeFiles/soc_trace.dir/timeline.cpp.o.d"
  "libsoc_trace.a"
  "libsoc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
