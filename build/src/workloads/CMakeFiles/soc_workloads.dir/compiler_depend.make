# Empty compiler generated dependencies file for soc_workloads.
# This may be replaced when dependencies are built.
