file(REMOVE_RECURSE
  "libsoc_workloads.a"
)
