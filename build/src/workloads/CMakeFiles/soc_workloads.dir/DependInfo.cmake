
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/dnn_workloads.cpp" "src/workloads/CMakeFiles/soc_workloads.dir/dnn_workloads.cpp.o" "gcc" "src/workloads/CMakeFiles/soc_workloads.dir/dnn_workloads.cpp.o.d"
  "/root/repo/src/workloads/kernels/dnn.cpp" "src/workloads/CMakeFiles/soc_workloads.dir/kernels/dnn.cpp.o" "gcc" "src/workloads/CMakeFiles/soc_workloads.dir/kernels/dnn.cpp.o.d"
  "/root/repo/src/workloads/kernels/ep.cpp" "src/workloads/CMakeFiles/soc_workloads.dir/kernels/ep.cpp.o" "gcc" "src/workloads/CMakeFiles/soc_workloads.dir/kernels/ep.cpp.o.d"
  "/root/repo/src/workloads/kernels/fft.cpp" "src/workloads/CMakeFiles/soc_workloads.dir/kernels/fft.cpp.o" "gcc" "src/workloads/CMakeFiles/soc_workloads.dir/kernels/fft.cpp.o.d"
  "/root/repo/src/workloads/kernels/linalg.cpp" "src/workloads/CMakeFiles/soc_workloads.dir/kernels/linalg.cpp.o" "gcc" "src/workloads/CMakeFiles/soc_workloads.dir/kernels/linalg.cpp.o.d"
  "/root/repo/src/workloads/kernels/multigrid.cpp" "src/workloads/CMakeFiles/soc_workloads.dir/kernels/multigrid.cpp.o" "gcc" "src/workloads/CMakeFiles/soc_workloads.dir/kernels/multigrid.cpp.o.d"
  "/root/repo/src/workloads/kernels/sort.cpp" "src/workloads/CMakeFiles/soc_workloads.dir/kernels/sort.cpp.o" "gcc" "src/workloads/CMakeFiles/soc_workloads.dir/kernels/sort.cpp.o.d"
  "/root/repo/src/workloads/kernels/sparse.cpp" "src/workloads/CMakeFiles/soc_workloads.dir/kernels/sparse.cpp.o" "gcc" "src/workloads/CMakeFiles/soc_workloads.dir/kernels/sparse.cpp.o.d"
  "/root/repo/src/workloads/kernels/ssor.cpp" "src/workloads/CMakeFiles/soc_workloads.dir/kernels/ssor.cpp.o" "gcc" "src/workloads/CMakeFiles/soc_workloads.dir/kernels/ssor.cpp.o.d"
  "/root/repo/src/workloads/kernels/stencil.cpp" "src/workloads/CMakeFiles/soc_workloads.dir/kernels/stencil.cpp.o" "gcc" "src/workloads/CMakeFiles/soc_workloads.dir/kernels/stencil.cpp.o.d"
  "/root/repo/src/workloads/npb.cpp" "src/workloads/CMakeFiles/soc_workloads.dir/npb.cpp.o" "gcc" "src/workloads/CMakeFiles/soc_workloads.dir/npb.cpp.o.d"
  "/root/repo/src/workloads/profiles.cpp" "src/workloads/CMakeFiles/soc_workloads.dir/profiles.cpp.o" "gcc" "src/workloads/CMakeFiles/soc_workloads.dir/profiles.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/soc_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/soc_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/scientific.cpp" "src/workloads/CMakeFiles/soc_workloads.dir/scientific.cpp.o" "gcc" "src/workloads/CMakeFiles/soc_workloads.dir/scientific.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/soc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/soc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/soc_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/soc_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
