file(REMOVE_RECURSE
  "CMakeFiles/soc_workloads.dir/dnn_workloads.cpp.o"
  "CMakeFiles/soc_workloads.dir/dnn_workloads.cpp.o.d"
  "CMakeFiles/soc_workloads.dir/kernels/dnn.cpp.o"
  "CMakeFiles/soc_workloads.dir/kernels/dnn.cpp.o.d"
  "CMakeFiles/soc_workloads.dir/kernels/ep.cpp.o"
  "CMakeFiles/soc_workloads.dir/kernels/ep.cpp.o.d"
  "CMakeFiles/soc_workloads.dir/kernels/fft.cpp.o"
  "CMakeFiles/soc_workloads.dir/kernels/fft.cpp.o.d"
  "CMakeFiles/soc_workloads.dir/kernels/linalg.cpp.o"
  "CMakeFiles/soc_workloads.dir/kernels/linalg.cpp.o.d"
  "CMakeFiles/soc_workloads.dir/kernels/multigrid.cpp.o"
  "CMakeFiles/soc_workloads.dir/kernels/multigrid.cpp.o.d"
  "CMakeFiles/soc_workloads.dir/kernels/sort.cpp.o"
  "CMakeFiles/soc_workloads.dir/kernels/sort.cpp.o.d"
  "CMakeFiles/soc_workloads.dir/kernels/sparse.cpp.o"
  "CMakeFiles/soc_workloads.dir/kernels/sparse.cpp.o.d"
  "CMakeFiles/soc_workloads.dir/kernels/ssor.cpp.o"
  "CMakeFiles/soc_workloads.dir/kernels/ssor.cpp.o.d"
  "CMakeFiles/soc_workloads.dir/kernels/stencil.cpp.o"
  "CMakeFiles/soc_workloads.dir/kernels/stencil.cpp.o.d"
  "CMakeFiles/soc_workloads.dir/npb.cpp.o"
  "CMakeFiles/soc_workloads.dir/npb.cpp.o.d"
  "CMakeFiles/soc_workloads.dir/profiles.cpp.o"
  "CMakeFiles/soc_workloads.dir/profiles.cpp.o.d"
  "CMakeFiles/soc_workloads.dir/registry.cpp.o"
  "CMakeFiles/soc_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/soc_workloads.dir/scientific.cpp.o"
  "CMakeFiles/soc_workloads.dir/scientific.cpp.o.d"
  "libsoc_workloads.a"
  "libsoc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
