file(REMOVE_RECURSE
  "CMakeFiles/soc_core.dir/counters_analysis.cpp.o"
  "CMakeFiles/soc_core.dir/counters_analysis.cpp.o.d"
  "CMakeFiles/soc_core.dir/efficiency.cpp.o"
  "CMakeFiles/soc_core.dir/efficiency.cpp.o.d"
  "CMakeFiles/soc_core.dir/extended_roofline.cpp.o"
  "CMakeFiles/soc_core.dir/extended_roofline.cpp.o.d"
  "CMakeFiles/soc_core.dir/roofline.cpp.o"
  "CMakeFiles/soc_core.dir/roofline.cpp.o.d"
  "CMakeFiles/soc_core.dir/scaling.cpp.o"
  "CMakeFiles/soc_core.dir/scaling.cpp.o.d"
  "libsoc_core.a"
  "libsoc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
