
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/counters_analysis.cpp" "src/core/CMakeFiles/soc_core.dir/counters_analysis.cpp.o" "gcc" "src/core/CMakeFiles/soc_core.dir/counters_analysis.cpp.o.d"
  "/root/repo/src/core/efficiency.cpp" "src/core/CMakeFiles/soc_core.dir/efficiency.cpp.o" "gcc" "src/core/CMakeFiles/soc_core.dir/efficiency.cpp.o.d"
  "/root/repo/src/core/extended_roofline.cpp" "src/core/CMakeFiles/soc_core.dir/extended_roofline.cpp.o" "gcc" "src/core/CMakeFiles/soc_core.dir/extended_roofline.cpp.o.d"
  "/root/repo/src/core/roofline.cpp" "src/core/CMakeFiles/soc_core.dir/roofline.cpp.o" "gcc" "src/core/CMakeFiles/soc_core.dir/roofline.cpp.o.d"
  "/root/repo/src/core/scaling.cpp" "src/core/CMakeFiles/soc_core.dir/scaling.cpp.o" "gcc" "src/core/CMakeFiles/soc_core.dir/scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/soc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/soc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/soc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/soc_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/soc_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
