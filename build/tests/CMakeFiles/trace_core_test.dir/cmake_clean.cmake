file(REMOVE_RECURSE
  "CMakeFiles/trace_core_test.dir/trace_core_test.cpp.o"
  "CMakeFiles/trace_core_test.dir/trace_core_test.cpp.o.d"
  "trace_core_test"
  "trace_core_test.pdb"
  "trace_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
