file(REMOVE_RECURSE
  "CMakeFiles/net_msg_test.dir/net_msg_test.cpp.o"
  "CMakeFiles/net_msg_test.dir/net_msg_test.cpp.o.d"
  "net_msg_test"
  "net_msg_test.pdb"
  "net_msg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_msg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
