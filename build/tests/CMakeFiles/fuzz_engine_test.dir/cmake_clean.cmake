file(REMOVE_RECURSE
  "CMakeFiles/fuzz_engine_test.dir/fuzz_engine_test.cpp.o"
  "CMakeFiles/fuzz_engine_test.dir/fuzz_engine_test.cpp.o.d"
  "fuzz_engine_test"
  "fuzz_engine_test.pdb"
  "fuzz_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
