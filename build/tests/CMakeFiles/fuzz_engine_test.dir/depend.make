# Empty dependencies file for fuzz_engine_test.
# This may be replaced when dependencies are built.
