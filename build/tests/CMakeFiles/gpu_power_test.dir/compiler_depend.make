# Empty compiler generated dependencies file for gpu_power_test.
# This may be replaced when dependencies are built.
