file(REMOVE_RECURSE
  "CMakeFiles/gpu_power_test.dir/gpu_power_test.cpp.o"
  "CMakeFiles/gpu_power_test.dir/gpu_power_test.cpp.o.d"
  "gpu_power_test"
  "gpu_power_test.pdb"
  "gpu_power_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_power_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
